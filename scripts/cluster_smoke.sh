#!/usr/bin/env bash
# End-to-end cluster smoke: boot two local sempe-serve workers, shard a
# quick fig10a sweep across them with sempe-sweep, and require the merged
# JSON to be byte-identical to a serial sempe-bench run. Then scrape
# GET /metrics from both live workers and fail on any missing family or a
# shard-point count that disagrees with the sweep, check the dispatch/merge
# span journal the sweep wrote, and re-run against the warm store requiring
# zero dispatches — every point must come from disk. CI runs this;
# `make smoke-cluster` (or `make obs-smoke`) runs it locally.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
cleanup() {
    kill "${w1_pid:-}" "${w2_pid:-}" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

echo "== building binaries"
go build -o "$tmp/bin/" ./cmd/sempe-bench ./cmd/sempe-serve ./cmd/sempe-sweep

echo "== starting two workers"
"$tmp/bin/sempe-serve" -addr 127.0.0.1:18081 -worker >"$tmp/w1.log" 2>&1 &
w1_pid=$!
"$tmp/bin/sempe-serve" -addr 127.0.0.1:18082 -worker >"$tmp/w2.log" 2>&1 &
w2_pid=$!
for port in 18081 18082; do
    for _ in $(seq 1 100); do
        if curl -fs "http://127.0.0.1:$port/healthz" >/dev/null 2>&1; then
            break
        fi
        sleep 0.1
    done
    curl -fs "http://127.0.0.1:$port/healthz" >/dev/null || {
        echo "worker on :$port never became healthy" >&2
        cat "$tmp"/w*.log >&2
        exit 1
    }
done

echo "== serial reference (sempe-bench)"
"$tmp/bin/sempe-bench" -exp fig10a -quick -format json -stable >"$tmp/serial.json" 2>/dev/null

echo "== distributed sweep across 2 workers"
"$tmp/bin/sempe-sweep" -scenario fig10a -quick -shard 2 \
    -workers http://127.0.0.1:18081,http://127.0.0.1:18082 \
    -store "$tmp/store" -events "$tmp/events.json" \
    >"$tmp/dist.json" 2>"$tmp/sweep-cold.log"
diff -u "$tmp/serial.json" "$tmp/dist.json" || {
    echo "FAIL: distributed output differs from serial run" >&2
    exit 1
}
echo "   byte-identical to serial"

echo "== span journal from the sweep"
for name in cluster_sweep probe dispatch merge; do
    grep -q "\"name\": \"$name\"" "$tmp/events.json" || {
        echo "FAIL: sweep journal has no '$name' span; events were:" >&2
        cat "$tmp/events.json" >&2
        exit 1
    }
done
echo "   dispatch/merge spans journaled"

echo "== scraping /metrics from both live workers"
for port in 18081 18082; do
    curl -fs "http://127.0.0.1:$port/metrics" >"$tmp/metrics-$port.txt" || {
        echo "FAIL: worker on :$port does not serve /metrics" >&2
        exit 1
    }
    for fam in sempe_http_requests_total sempe_http_request_seconds_bucket \
               sempe_shard_requests_total sempe_shard_points_total \
               sempe_runs sempe_sim_semaphore_capacity \
               sempe_attack_template_hits_total sempe_superblock_builds_total; do
        grep -q "^$fam" "$tmp/metrics-$port.txt" || {
            echo "FAIL: worker :$port exposition is missing family $fam" >&2
            cat "$tmp/metrics-$port.txt" >&2
            exit 1
        }
    done
done
# The fleet must account for exactly the sweep's 12 simulated points.
shard_points=$(awk '/^sempe_shard_points_total/ {sum += $2} END {print sum+0}' "$tmp"/metrics-*.txt)
if [ "$shard_points" != "12" ]; then
    echo "FAIL: workers report $shard_points shard points, want 12" >&2
    exit 1
fi
echo "   all families present; 12 shard points accounted for"

echo "== warm-store re-run (must simulate nothing)"
"$tmp/bin/sempe-sweep" -scenario fig10a -quick -shard 2 \
    -workers http://127.0.0.1:18081,http://127.0.0.1:18082 \
    -store "$tmp/store" >"$tmp/dist2.json" 2>"$tmp/sweep-warm.log"
diff -u "$tmp/serial.json" "$tmp/dist2.json" || {
    echo "FAIL: warm-store output differs from serial run" >&2
    exit 1
}
grep -q "12 points, 12 from store, 0 shards in 0 dispatches" "$tmp/sweep-warm.log" || {
    echo "FAIL: warm re-run dispatched work; provenance was:" >&2
    cat "$tmp/sweep-warm.log" >&2
    exit 1
}
echo "   all 12 points from the store, 0 dispatches"

echo "== graceful shutdown (SIGTERM)"
kill -TERM "$w1_pid"
wait "$w1_pid" || {
    echo "FAIL: worker exited non-zero on SIGTERM" >&2
    cat "$tmp/w1.log" >&2
    exit 1
}
grep -q "shutting down" "$tmp/w1.log" || {
    echo "FAIL: no graceful shutdown log" >&2
    cat "$tmp/w1.log" >&2
    exit 1
}
unset w1_pid

echo "cluster smoke: OK"
