#!/usr/bin/env bash
# Attack-lab smoke: a quick spectre run must find that the unprotected
# baseline leaks the secret (recovery + TVLA) and that SeMPE does not; a
# quick 4-bit key extraction must pull the whole key from a leaky victim
# on the baseline and nothing anywhere else; and both the sharded spectre
# and keyextract sweeps must merge byte-identically to their serial runs.
# CI runs this; `make smoke-attack` runs it locally.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
cleanup() {
    kill "${w1_pid:-}" "${w2_pid:-}" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

echo "== building binaries"
go build -o "$tmp/bin/" ./cmd/sempe-attack ./cmd/sempe-bench ./cmd/sempe-serve ./cmd/sempe-sweep

echo "== one-off attack check (baseline must leak, SeMPE must not)"
"$tmp/bin/sempe-attack" -trials 40 -check >"$tmp/attack.txt"

echo "== 4-bit key extraction check (baseline pulls the key, SeMPE and the CT control stay secure)"
"$tmp/bin/sempe-attack" -victim keyloop -bits 4 -trials 12 -check >"$tmp/keyextract.txt"
"$tmp/bin/sempe-attack" -victim ctcompare -bits 4 -trials 12 -check >"$tmp/ctcompare.txt"

echo "== starting two workers"
"$tmp/bin/sempe-serve" -addr 127.0.0.1:18087 -worker >"$tmp/w1.log" 2>&1 &
w1_pid=$!
"$tmp/bin/sempe-serve" -addr 127.0.0.1:18088 -worker >"$tmp/w2.log" 2>&1 &
w2_pid=$!
for port in 18087 18088; do
    for _ in $(seq 1 100); do
        if curl -fs "http://127.0.0.1:$port/healthz" >/dev/null 2>&1; then
            break
        fi
        sleep 0.1
    done
    curl -fs "http://127.0.0.1:$port/healthz" >/dev/null || {
        echo "worker on :$port never became healthy" >&2
        cat "$tmp"/w*.log >&2
        exit 1
    }
done

echo "== serial spectre reference (sempe-bench)"
"$tmp/bin/sempe-bench" -exp spectre -quick -format json -stable >"$tmp/serial.json" 2>/dev/null

echo "== distributed spectre sweep across 2 workers"
"$tmp/bin/sempe-sweep" -scenario spectre -quick -shard 1 \
    -workers http://127.0.0.1:18087,http://127.0.0.1:18088 \
    >"$tmp/dist.json" 2>"$tmp/sweep.log"
diff -u "$tmp/serial.json" "$tmp/dist.json" || {
    echo "FAIL: distributed spectre output differs from serial run" >&2
    cat "$tmp/sweep.log" >&2
    exit 1
}
echo "   byte-identical to serial"

keyparams=(-param attackers=bp,cache -param victims=keyloop -param widths=4 -param trials=8)
echo "== serial keyextract reference (sempe-bench)"
"$tmp/bin/sempe-bench" -exp keyextract -quick "${keyparams[@]}" -format json -stable >"$tmp/kserial.json" 2>/dev/null

echo "== distributed 4-bit key extraction across 2 workers"
"$tmp/bin/sempe-sweep" -scenario keyextract -quick -shard 1 "${keyparams[@]}" \
    -workers http://127.0.0.1:18087,http://127.0.0.1:18088 \
    >"$tmp/kdist.json" 2>"$tmp/ksweep.log"
diff -u "$tmp/kserial.json" "$tmp/kdist.json" || {
    echo "FAIL: distributed keyextract output differs from serial run" >&2
    cat "$tmp/ksweep.log" >&2
    exit 1
}
echo "   byte-identical to serial"

echo "attack smoke: OK"
