#!/usr/bin/env bash
# bench_record.sh — append one entry to the committed benchmark trajectory.
#
# Runs the three simulator-speed benchmarks (BenchmarkSimulatorSpeed,
# BenchmarkSteadyStatePipeline, BenchmarkSteadyStateSecure) and appends a
# {date, commit, label, minst_per_s, allocs_per_op, ipc, counters} record
# to BENCH_sim.json at the repository root. The counters object is the
# throughput-engine metric snapshot (sempe-attack -metrics: template cache,
# core pool, superblocks, trials/s) from a fixed reference attack run, so
# the trajectory records cache effectiveness alongside raw speed. The file
# is a JSON array ordered oldest-first; every perf-relevant PR appends a
# pre/post pair so the trajectory pins regressions to a commit.
#
# Usage: scripts/bench_record.sh [label]
#   label   free-form tag for the entry (default: "manual")
set -euo pipefail

cd "$(dirname "$0")/.."
LABEL="${1:-manual}"
OUT=BENCH_sim.json
BENCHTIME="${BENCHTIME:-2s}"

raw=$(go test -run=NONE \
    -bench='^(BenchmarkSimulatorSpeed|BenchmarkSteadyStatePipeline|BenchmarkSteadyStateSecure)$' \
    -benchmem -benchtime="$BENCHTIME" . 2>&1)
echo "$raw"

minst=$(echo "$raw" | awk '/^BenchmarkSimulatorSpeed/ {for (i=1;i<NF;i++) if ($(i+1)=="Minst/s") print $i}')
ipc=$(echo "$raw" | awk '/^BenchmarkSteadyStatePipeline/ {for (i=1;i<NF;i++) if ($(i+1)=="ipc") print $i}')
allocs=$(echo "$raw" | awk '/^BenchmarkSteadyStatePipeline/ {for (i=1;i<NF;i++) if ($(i+1)=="allocs/op") print $i}')
secure_ns=$(echo "$raw" | awk '/^BenchmarkSteadyStateSecure/ {for (i=1;i<NF;i++) if ($(i+1)=="ns/op") print $i}')
pipeline_ns=$(echo "$raw" | awk '/^BenchmarkSteadyStatePipeline/ {for (i=1;i<NF;i++) if ($(i+1)=="ns/op") print $i}')

if [ -z "$minst" ] || [ -z "$ipc" ]; then
    echo "bench_record: failed to parse benchmark output" >&2
    exit 1
fi

# Metric snapshot from a fixed reference attack run: the exposition's
# unlabeled sempe_* samples become the entry's "counters" object.
metrics_txt=$(mktemp)
trap 'rm -f "$metrics_txt"' EXIT
go run ./cmd/sempe-attack -attacker bp -arch baseline -trials 50 \
    -metrics "$metrics_txt" >/dev/null
counters=$(awk '!/^#/ && /^sempe_[a-z_]+ / {
    printf "%s    \"%s\": %s", sep, $1, $2; sep = ",\n"
} END { printf "\n" }' "$metrics_txt")
if [ -z "$counters" ]; then
    echo "bench_record: failed to snapshot sempe-attack -metrics" >&2
    exit 1
fi

# Provenance: the commit is resolved at RUN time (not when the entry is
# finally committed), and a dirty flag records whether the tree had
# uncommitted changes — a "pre" entry recorded mid-PR is otherwise
# indistinguishable from one recorded at the labeled commit.
commit=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
dirty=false
if ! git diff --quiet HEAD 2>/dev/null; then
    dirty=true
fi

entry=$(cat <<EOF
{
  "date": "$(date -u +%Y-%m-%dT%H:%M:%SZ)",
  "commit": "$commit",
  "dirty": $dirty,
  "label": "$LABEL",
  "host_cpus": $(nproc),
  "minst_per_s": $minst,
  "steady_ns_per_cycle": $pipeline_ns,
  "steady_secure_ns_per_cycle": $secure_ns,
  "allocs_per_op": $allocs,
  "ipc": $ipc,
  "counters": {
$counters  }
}
EOF
)

if [ ! -f "$OUT" ]; then
    echo "[" > "$OUT"
    echo "$entry" >> "$OUT"
    echo "]" >> "$OUT"
else
    # Append inside the existing array: drop the closing bracket, add a comma.
    tmp=$(mktemp)
    sed '$ d' "$OUT" > "$tmp"
    # Last entry needs a trailing comma unless the array was empty.
    if [ "$(tail -c 2 "$tmp" | head -c 1)" = "[" ] || [ "$(tail -n 1 "$tmp")" = "[" ]; then
        :
    else
        sed -i '$ s/$/,/' "$tmp"
    fi
    echo "$entry" >> "$tmp"
    echo "]" >> "$tmp"
    mv "$tmp" "$OUT"
fi

echo "bench_record: appended '$LABEL' entry ($minst Minst/s) to $OUT"
