// Package mem provides the memory substrates of the simulator: a sparse flat
// main memory and the SeMPE Scratchpad Memory (SPM) used for architectural
// register snapshots.
package mem

import (
	"encoding/binary"

	"repro/internal/isa"
)

// pageBits selects a 16 KiB page for the sparse backing store. This is a
// simulator implementation detail, unrelated to the simulated 4 MiB VM pages
// from the paper's Table II (no TLB is modeled).
const pageBits = 14

const pageSize = 1 << pageBits

// noPage is the last-page cache sentinel: page keys are addr>>pageBits, so
// the all-ones key can never occur.
const noPage = ^uint64(0)

// Memory is a sparse, byte-addressable 64-bit memory. Reads of unbacked
// addresses return zero; writes allocate pages on demand. All methods are
// deterministic, which the leak checker depends on.
//
// A one-entry last-page cache sits in front of the pages map: straight-line
// access streams (code fetch, stack traffic, sequential buffers) hit the same
// page repeatedly and skip the map lookup entirely.
type Memory struct {
	pages   map[uint64][]byte
	lastKey uint64
	lastPg  []byte
}

// NewMemory returns an empty memory image.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64][]byte), lastKey: noPage}
}

// Load copies a program image (code and data segments) into memory.
func (m *Memory) Load(p *isa.Program) {
	m.WriteBytes(p.CodeBase, p.Code)
	for _, seg := range p.Data {
		m.WriteBytes(seg.Base, seg.Bytes)
	}
}

func (m *Memory) page(addr uint64, alloc bool) []byte {
	key := addr >> pageBits
	if key == m.lastKey {
		return m.lastPg
	}
	pg, ok := m.pages[key]
	if !ok {
		if !alloc {
			return nil
		}
		pg = make([]byte, pageSize)
		m.pages[key] = pg
	}
	m.lastKey, m.lastPg = key, pg
	return pg
}

// Read8 returns the byte at addr.
func (m *Memory) Read8(addr uint64) byte {
	pg := m.page(addr, false)
	if pg == nil {
		return 0
	}
	return pg[addr&(pageSize-1)]
}

// Write8 stores one byte at addr.
func (m *Memory) Write8(addr uint64, v byte) {
	m.page(addr, true)[addr&(pageSize-1)] = v
}

// Read64 returns the little-endian 64-bit word at addr (any alignment).
func (m *Memory) Read64(addr uint64) uint64 {
	off := addr & (pageSize - 1)
	if off <= pageSize-8 {
		pg := m.page(addr, false)
		if pg == nil {
			return 0
		}
		return binary.LittleEndian.Uint64(pg[off:])
	}
	var buf [8]byte
	m.readSpan(addr, buf[:])
	return binary.LittleEndian.Uint64(buf[:])
}

// Write64 stores a little-endian 64-bit word at addr (any alignment).
func (m *Memory) Write64(addr uint64, v uint64) {
	off := addr & (pageSize - 1)
	if off <= pageSize-8 {
		binary.LittleEndian.PutUint64(m.page(addr, true)[off:], v)
		return
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	m.writeSpan(addr, buf[:])
}

// Read32 returns the little-endian 32-bit word at addr (any alignment).
func (m *Memory) Read32(addr uint64) uint32 {
	off := addr & (pageSize - 1)
	if off <= pageSize-4 {
		pg := m.page(addr, false)
		if pg == nil {
			return 0
		}
		return binary.LittleEndian.Uint32(pg[off:])
	}
	var buf [4]byte
	m.readSpan(addr, buf[:])
	return binary.LittleEndian.Uint32(buf[:])
}

// Write32 stores a little-endian 32-bit word at addr (any alignment).
func (m *Memory) Write32(addr uint64, v uint32) {
	off := addr & (pageSize - 1)
	if off <= pageSize-4 {
		binary.LittleEndian.PutUint32(m.page(addr, true)[off:], v)
		return
	}
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	m.writeSpan(addr, buf[:])
}

// readSpan fills dst from memory starting at addr, one bulk copy per page
// touched. Unbacked pages read as zero.
func (m *Memory) readSpan(addr uint64, dst []byte) {
	for len(dst) > 0 {
		off := addr & (pageSize - 1)
		n := uint64(pageSize - off)
		if uint64(len(dst)) < n {
			n = uint64(len(dst))
		}
		if pg := m.page(addr, false); pg != nil {
			copy(dst[:n], pg[off:off+n])
		} else {
			clear(dst[:n])
		}
		dst = dst[n:]
		addr += n
	}
}

// writeSpan stores src into memory starting at addr, one bulk copy per page
// touched, allocating pages on demand.
func (m *Memory) writeSpan(addr uint64, src []byte) {
	for len(src) > 0 {
		off := addr & (pageSize - 1)
		n := uint64(pageSize - off)
		if uint64(len(src)) < n {
			n = uint64(len(src))
		}
		copy(m.page(addr, true)[off:off+n], src[:n])
		src = src[n:]
		addr += n
	}
}

// ReadBytes copies n bytes starting at addr into a new slice.
func (m *Memory) ReadBytes(addr uint64, n int) []byte {
	out := make([]byte, n)
	m.readSpan(addr, out)
	return out
}

// WriteBytes copies b into memory starting at addr.
func (m *Memory) WriteBytes(addr uint64, b []byte) {
	m.writeSpan(addr, b)
}

// Reset zeroes the memory image without releasing its pages: allocated
// pages are cleared in place and stay mapped, so a reloaded program reuses
// them instead of faulting fresh ones. Zero-filled pages are
// indistinguishable from absent ones (see Equal), so a reset memory is
// semantically empty.
func (m *Memory) Reset() {
	for _, pg := range m.pages {
		clear(pg)
	}
	m.lastKey, m.lastPg = noPage, nil
}

// Clone returns a deep copy of the memory image. Used by differential tests
// that run the same image on two machines.
func (m *Memory) Clone() *Memory {
	c := NewMemory()
	for k, pg := range m.pages {
		dup := make([]byte, pageSize)
		copy(dup, pg)
		c.pages[k] = dup
	}
	return c
}

// Equal reports whether two memories hold identical contents. Zero-filled
// pages compare equal to absent pages.
func (m *Memory) Equal(o *Memory) bool {
	return m.diffAgainst(o) && o.diffAgainst(m)
}

func (m *Memory) diffAgainst(o *Memory) bool {
	for k, pg := range m.pages {
		opg := o.pages[k]
		if opg == nil {
			for _, b := range pg {
				if b != 0 {
					return false
				}
			}
			continue
		}
		for i, b := range pg {
			if b != opg[i] {
				return false
			}
		}
	}
	return true
}

// FirstDiff returns the lowest address at which the two memories differ and
// true, or 0 and false if they are identical.
func (m *Memory) FirstDiff(o *Memory) (uint64, bool) {
	seen := make(map[uint64]bool)
	var keys []uint64
	for k := range m.pages {
		keys = append(keys, k)
		seen[k] = true
	}
	for k := range o.pages {
		if !seen[k] {
			keys = append(keys, k)
		}
	}
	sortU64(keys)
	for _, k := range keys {
		base := k << pageBits
		for i := uint64(0); i < pageSize; i++ {
			if m.Read8(base+i) != o.Read8(base+i) {
				return base + i, true
			}
		}
	}
	return 0, false
}

func sortU64(s []uint64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
