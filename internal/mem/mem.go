// Package mem provides the memory substrates of the simulator: a sparse flat
// main memory and the SeMPE Scratchpad Memory (SPM) used for architectural
// register snapshots.
package mem

import "repro/internal/isa"

// pageBits selects a 16 KiB page for the sparse backing store. This is a
// simulator implementation detail, unrelated to the simulated 4 MiB VM pages
// from the paper's Table II (no TLB is modeled).
const pageBits = 14

const pageSize = 1 << pageBits

// Memory is a sparse, byte-addressable 64-bit memory. Reads of unbacked
// addresses return zero; writes allocate pages on demand. All methods are
// deterministic, which the leak checker depends on.
type Memory struct {
	pages map[uint64][]byte
}

// NewMemory returns an empty memory image.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64][]byte)}
}

// Load copies a program image (code and data segments) into memory.
func (m *Memory) Load(p *isa.Program) {
	m.WriteBytes(p.CodeBase, p.Code)
	for _, seg := range p.Data {
		m.WriteBytes(seg.Base, seg.Bytes)
	}
}

func (m *Memory) page(addr uint64, alloc bool) []byte {
	key := addr >> pageBits
	pg, ok := m.pages[key]
	if !ok && alloc {
		pg = make([]byte, pageSize)
		m.pages[key] = pg
	}
	return pg
}

// Read8 returns the byte at addr.
func (m *Memory) Read8(addr uint64) byte {
	pg := m.page(addr, false)
	if pg == nil {
		return 0
	}
	return pg[addr&(pageSize-1)]
}

// Write8 stores one byte at addr.
func (m *Memory) Write8(addr uint64, v byte) {
	m.page(addr, true)[addr&(pageSize-1)] = v
}

// Read64 returns the little-endian 64-bit word at addr (any alignment).
func (m *Memory) Read64(addr uint64) uint64 {
	// Fast path: within one page.
	off := addr & (pageSize - 1)
	if off+8 <= pageSize {
		pg := m.page(addr, false)
		if pg == nil {
			return 0
		}
		var v uint64
		for i := 7; i >= 0; i-- {
			v = v<<8 | uint64(pg[off+uint64(i)])
		}
		return v
	}
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(m.Read8(addr+uint64(i)))
	}
	return v
}

// Write64 stores a little-endian 64-bit word at addr (any alignment).
func (m *Memory) Write64(addr uint64, v uint64) {
	off := addr & (pageSize - 1)
	if off+8 <= pageSize {
		pg := m.page(addr, true)
		for i := 0; i < 8; i++ {
			pg[off+uint64(i)] = byte(v >> (8 * i))
		}
		return
	}
	for i := 0; i < 8; i++ {
		m.Write8(addr+uint64(i), byte(v>>(8*i)))
	}
}

// ReadBytes copies n bytes starting at addr into a new slice.
func (m *Memory) ReadBytes(addr uint64, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = m.Read8(addr + uint64(i))
	}
	return out
}

// WriteBytes copies b into memory starting at addr.
func (m *Memory) WriteBytes(addr uint64, b []byte) {
	for i, v := range b {
		m.Write8(addr+uint64(i), v)
	}
}

// Clone returns a deep copy of the memory image. Used by differential tests
// that run the same image on two machines.
func (m *Memory) Clone() *Memory {
	c := NewMemory()
	for k, pg := range m.pages {
		dup := make([]byte, pageSize)
		copy(dup, pg)
		c.pages[k] = dup
	}
	return c
}

// Equal reports whether two memories hold identical contents. Zero-filled
// pages compare equal to absent pages.
func (m *Memory) Equal(o *Memory) bool {
	return m.diffAgainst(o) && o.diffAgainst(m)
}

func (m *Memory) diffAgainst(o *Memory) bool {
	for k, pg := range m.pages {
		opg := o.pages[k]
		if opg == nil {
			for _, b := range pg {
				if b != 0 {
					return false
				}
			}
			continue
		}
		for i, b := range pg {
			if b != opg[i] {
				return false
			}
		}
	}
	return true
}

// FirstDiff returns the lowest address at which the two memories differ and
// true, or 0 and false if they are identical.
func (m *Memory) FirstDiff(o *Memory) (uint64, bool) {
	seen := make(map[uint64]bool)
	var keys []uint64
	for k := range m.pages {
		keys = append(keys, k)
		seen[k] = true
	}
	for k := range o.pages {
		if !seen[k] {
			keys = append(keys, k)
		}
	}
	sortU64(keys)
	for _, k := range keys {
		base := k << pageBits
		for i := uint64(0); i < pageSize; i++ {
			if m.Read8(base+i) != o.Read8(base+i) {
				return base + i, true
			}
		}
	}
	return 0, false
}

func sortU64(s []uint64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
