package mem

import (
	"errors"
	"fmt"

	"repro/internal/isa"
)

// SPM models the SeMPE Scratchpad Memory that holds ArchRS register
// snapshots. Per the paper (Table II): 216 KiB capacity, up to 30 snapshot
// slots (one per nested sJMP), and a 64 byte/cycle read/write port. The SPM
// is not part of the cache hierarchy and is invisible to the attacker.
//
// Each slot holds two architectural register states (one captured before the
// SecBlock, one after the NT path) and two modified-register bit-vectors.
type SPM struct {
	slots        []spmSlot
	depth        int // current nesting depth (number of live slots)
	bandwidth    int // bytes per cycle
	snapshotSize int // bytes charged per full register-state save

	// Stats.
	BytesSaved    uint64
	BytesRestored uint64
	StallCycles   uint64
	MaxDepth      int
}

type spmSlot struct {
	initial [isa.NumArchRegs]uint64 // state before entering the SecBlock
	ntState [isa.NumArchRegs]uint64 // state after the NT path
	ntMod   uint64                  // bit-vector: regs modified in NT path
	tMod    uint64                  // bit-vector: regs modified in T path
}

// ErrSPMOverflow is returned when secure-branch nesting exceeds the number of
// snapshot slots. The paper suggests rejecting such programs at compile time
// or raising a runtime exception; the simulator surfaces it as an error.
var ErrSPMOverflow = errors.New("mem: SPM snapshot slots exhausted (secure nesting too deep)")

// SPMConfig configures the scratchpad.
type SPMConfig struct {
	Slots     int // snapshot slots (nested sJMP depth supported)
	Bandwidth int // bytes per cycle for save/restore traffic
	// SnapshotBytes is the size of one full register-state save. The
	// default (0) charges the ArchRS cost: 48 architectural registers. The
	// PhyRS ablation (paper §IV-F, the design the authors rejected) charges
	// the full physical register file plus the RAT instead.
	SnapshotBytes int
}

// DefaultSPMConfig mirrors Table II: 30 slots, 64 B/cycle, ArchRS snapshots.
func DefaultSPMConfig() SPMConfig { return SPMConfig{Slots: 30, Bandwidth: 64} }

// PhyRSSnapshotBytes is the snapshot footprint of the rejected Physical
// Register Snapshot design: 256 physical registers of 8 bytes plus a
// 48-entry register alias table of one byte per entry.
const PhyRSSnapshotBytes = 256*8 + isa.NumArchRegs

// NewSPM builds a scratchpad with the given geometry.
func NewSPM(cfg SPMConfig) *SPM {
	if cfg.Slots <= 0 || cfg.Bandwidth <= 0 {
		panic(fmt.Sprintf("mem: bad SPM config %+v", cfg))
	}
	if cfg.SnapshotBytes == 0 {
		cfg.SnapshotBytes = SnapshotBytes
	}
	return &SPM{
		slots:        make([]spmSlot, cfg.Slots),
		bandwidth:    cfg.Bandwidth,
		snapshotSize: cfg.SnapshotBytes,
	}
}

// Depth returns the current snapshot nesting depth.
func (s *SPM) Depth() int { return s.depth }

// Slots returns the total number of snapshot slots.
func (s *SPM) Slots() int { return len(s.slots) }

// SnapshotBytes is the SPM footprint of one full architectural register
// state: 48 registers of 8 bytes.
const SnapshotBytes = isa.NumArchRegs * 8

// PushInitial captures the pre-SecBlock register state into a new slot,
// returning the stall cycles charged for the save traffic (full snapshot:
// the paper drains the pipeline and saves all architectural registers when
// the sJMP commits).
func (s *SPM) PushInitial(regs *[isa.NumArchRegs]uint64) (stall int, err error) {
	if s.depth >= len(s.slots) {
		return 0, ErrSPMOverflow
	}
	slot := &s.slots[s.depth]
	slot.initial = *regs
	slot.ntMod = 0
	slot.tMod = 0
	s.depth++
	if s.depth > s.MaxDepth {
		s.MaxDepth = s.depth
	}
	return s.charge(s.snapshotSize, true), nil
}

// MarkModified records that architectural register r was written while the
// SecBlock at nesting level (depth-1) was executing its current path.
// Writes propagate to every live nesting level, because an inner SecBlock's
// net register updates are also modifications of every enclosing path.
func (s *SPM) MarkModified(r isa.Reg, inTPath []bool) {
	for lvl := 0; lvl < s.depth; lvl++ {
		if inTPath[lvl] {
			s.slots[lvl].tMod |= 1 << uint(r)
		} else {
			s.slots[lvl].ntMod |= 1 << uint(r)
		}
	}
}

// EndNTPath is invoked when the first eosJMP of the innermost SecBlock
// commits: it saves the registers modified during the NT path and restores
// the initial state so the T path starts from the same architectural state.
// It returns the register values to restore and the stall cycles for the
// SPM traffic (save modified + restore modified).
func (s *SPM) EndNTPath(regs *[isa.NumArchRegs]uint64) (restore [isa.NumArchRegs]uint64, mask uint64, stall int) {
	slot := &s.slots[s.depth-1]
	slot.ntState = *regs
	mask = slot.ntMod
	n := popcount(mask)
	// Save the NT-modified registers plus the bit-vector, then read back the
	// initial values of those same registers.
	stall = s.charge(n*8+8, true) + s.charge(n*8, false)
	restore = slot.initial
	return restore, mask, stall
}

// EndTPath is invoked when the second eosJMP commits. taken reports the real
// branch outcome. It returns the final register values for every register
// modified in either path and the stall cycles. Crucially, the SPM traffic
// depends only on the union of the modified sets — never on the outcome —
// so restore timing cannot leak the secret: when the T path is the true
// path, the same words are read from the SPM and the current value is
// overwritten with itself.
func (s *SPM) EndTPath(taken bool, regs *[isa.NumArchRegs]uint64) (final [isa.NumArchRegs]uint64, mask uint64, stall int) {
	s.depth--
	slot := &s.slots[s.depth]
	mask = slot.ntMod | slot.tMod
	n := popcount(mask)
	stall = s.charge(n*8+8, false)
	if taken {
		// T path is the true path: the current register file already holds
		// (initial state + T-path writes); every restore is a self-overwrite.
		final = *regs
		return final, mask, stall
	}
	// NT path is the true path: registers modified in the NT path take their
	// NT-state values; registers modified only in the T path roll back to the
	// initial state.
	final = *regs
	for r := 0; r < isa.NumArchRegs; r++ {
		bit := uint64(1) << uint(r)
		if mask&bit == 0 {
			continue
		}
		if slot.ntMod&bit != 0 {
			final[r] = slot.ntState[r]
		} else {
			final[r] = slot.initial[r]
		}
	}
	return final, mask, stall
}

// DropNewest removes the newest snapshot slot without any restore, used when
// a squashed sJMP must unwind its jbTable/SPM allocation during a pipeline
// flush.
func (s *SPM) DropNewest() {
	if s.depth > 0 {
		s.depth--
	}
}

// Reset clears all snapshot state and statistics.
func (s *SPM) Reset() {
	s.depth = 0
	s.BytesSaved, s.BytesRestored, s.StallCycles = 0, 0, 0
	s.MaxDepth = 0
}

// charge accounts bytes of SPM traffic and returns the pipeline stall cycles
// implied by the port bandwidth.
func (s *SPM) charge(bytes int, save bool) int {
	if save {
		s.BytesSaved += uint64(bytes)
	} else {
		s.BytesRestored += uint64(bytes)
	}
	cycles := (bytes + s.bandwidth - 1) / s.bandwidth
	s.StallCycles += uint64(cycles)
	return cycles
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
