package mem

import "testing"

// refRead64 assembles a 64-bit little-endian value byte-by-byte, the
// obviously-correct reference the fast paths are checked against.
func refRead64(m *Memory, addr uint64) uint64 {
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(m.Read8(addr+uint64(i)))
	}
	return v
}

func refRead32(m *Memory, addr uint64) uint32 {
	var v uint32
	for i := 3; i >= 0; i-- {
		v = v<<8 | uint32(m.Read8(addr+uint64(i)))
	}
	return v
}

// TestCrossPage64 walks 64-bit reads and writes across a page boundary at
// every split (1..7 bytes in the first page) and checks them against the
// byte-wise reference.
func TestCrossPage64(t *testing.T) {
	boundary := uint64(3 * pageSize)
	for back := uint64(1); back <= 7; back++ {
		addr := boundary - back
		m := NewMemory()
		want := uint64(0x1122334455667788) + back
		m.Write64(addr, want)
		if got := m.Read64(addr); got != want {
			t.Errorf("split %d: Read64 = %#x, want %#x", back, got, want)
		}
		if got := refRead64(m, addr); got != want {
			t.Errorf("split %d: byte-wise readback = %#x, want %#x", back, got, want)
		}
		// The write must not have disturbed neighbors.
		if b := m.Read8(addr - 1); b != 0 {
			t.Errorf("split %d: byte before access clobbered: %#x", back, b)
		}
		if b := m.Read8(addr + 8); b != 0 {
			t.Errorf("split %d: byte after access clobbered: %#x", back, b)
		}
	}
}

// TestCrossPage32 covers the 32-bit cross-page splits symmetrically.
func TestCrossPage32(t *testing.T) {
	boundary := uint64(5 * pageSize)
	for back := uint64(1); back <= 3; back++ {
		addr := boundary - back
		m := NewMemory()
		want := uint32(0xCAFEBABE) + uint32(back)
		m.Write32(addr, want)
		if got := m.Read32(addr); got != want {
			t.Errorf("split %d: Read32 = %#x, want %#x", back, got, want)
		}
		if got := refRead32(m, addr); got != want {
			t.Errorf("split %d: byte-wise readback = %#x, want %#x", back, got, want)
		}
	}
}

// TestCrossPageUnbacked reads wide values spanning a backed and an unbacked
// page: the unbacked half must read as zero, and the read must not allocate.
func TestCrossPageUnbacked(t *testing.T) {
	m := NewMemory()
	addr := uint64(pageSize) - 4
	m.WriteBytes(addr, []byte{0x11, 0x22, 0x33, 0x44}) // backs page 0 only
	if got, want := m.Read64(addr), uint64(0x44332211); got != want {
		t.Errorf("Read64 over unbacked tail = %#x, want %#x", got, want)
	}
	if len(m.pages) != 1 {
		t.Errorf("read allocated %d pages, want 1", len(m.pages))
	}
	if got := m.Read64(7 * pageSize); got != 0 {
		t.Errorf("Read64 of fully unbacked page = %#x, want 0", got)
	}
}

// TestLastPageCache alternates between pages so the one-entry cache keeps
// being displaced, then checks the cache never serves stale data after pages
// appear or contents change.
func TestLastPageCache(t *testing.T) {
	m := NewMemory()
	a := uint64(0)            // page 0
	b := uint64(2 * pageSize) // page 2

	// Miss on an unbacked page must not poison the cache for a later write.
	if m.Read64(b) != 0 {
		t.Fatal("unbacked read not zero")
	}
	m.Write64(a, 1) // caches page 0
	m.Write64(b, 2) // allocates and caches page 2
	if m.Read64(b) != 2 {
		t.Error("write-after-unbacked-read lost")
	}
	for i := 0; i < 100; i++ {
		m.Write64(a, uint64(i))
		m.Write64(b, uint64(i)*3)
		if got := m.Read64(a); got != uint64(i) {
			t.Fatalf("iter %d: page A reads %d", i, got)
		}
		if got := m.Read64(b); got != uint64(i)*3 {
			t.Fatalf("iter %d: page B reads %d", i, got)
		}
	}
}

// TestSpanBytesAcrossPages round-trips a buffer spanning three pages through
// WriteBytes/ReadBytes.
func TestSpanBytesAcrossPages(t *testing.T) {
	m := NewMemory()
	start := uint64(pageSize) - 100
	buf := make([]byte, 2*pageSize+200) // covers pages 0..2 inclusive
	for i := range buf {
		buf[i] = byte(i*7 + 3)
	}
	m.WriteBytes(start, buf)
	got := m.ReadBytes(start, len(buf))
	for i := range buf {
		if got[i] != buf[i] {
			t.Fatalf("byte %d: got %#x want %#x", i, got[i], buf[i])
		}
	}
	// Clone must be unaffected by the source's cache state.
	c := m.Clone()
	if !c.Equal(m) {
		t.Error("clone differs from source")
	}
}
