package mem

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func TestMemoryReadWriteRoundTrip(t *testing.T) {
	m := NewMemory()
	m.Write64(0x1000, 0xDEADBEEFCAFEF00D)
	if got := m.Read64(0x1000); got != 0xDEADBEEFCAFEF00D {
		t.Errorf("Read64 = %#x", got)
	}
	if got := m.Read8(0x1000); got != 0x0D {
		t.Errorf("little-endian low byte = %#x", got)
	}
	if got := m.Read8(0x1007); got != 0xDE {
		t.Errorf("little-endian high byte = %#x", got)
	}
	// Unbacked reads are zero.
	if got := m.Read64(0x999999); got != 0 {
		t.Errorf("unbacked read = %#x", got)
	}
}

func TestMemoryCrossPageAccess(t *testing.T) {
	m := NewMemory()
	addr := uint64(pageSize - 3) // straddles the first page boundary
	m.Write64(addr, 0x1122334455667788)
	if got := m.Read64(addr); got != 0x1122334455667788 {
		t.Errorf("cross-page Read64 = %#x", got)
	}
}

func TestMemoryQuickRoundTrip(t *testing.T) {
	m := NewMemory()
	f := func(addr uint64, v uint64) bool {
		addr %= 1 << 30
		m.Write64(addr, v)
		return m.Read64(addr) == v
	}
	cfg := &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(9))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryCloneAndEqual(t *testing.T) {
	m := NewMemory()
	m.Write64(0x100, 42)
	c := m.Clone()
	if !m.Equal(c) {
		t.Error("clone not equal")
	}
	c.Write64(0x108, 7)
	if m.Equal(c) {
		t.Error("diverged memories compare equal")
	}
	if addr, diff := m.FirstDiff(c); !diff || addr != 0x108 {
		t.Errorf("FirstDiff = %#x,%v want 0x108,true", addr, diff)
	}
	// Zero-filled page equals absent page.
	z := NewMemory()
	z.Write64(0x100, 0)
	empty := NewMemory()
	if !z.Equal(empty) {
		t.Error("zero page != absent page")
	}
}

func TestSPMSnapshotLifecycle(t *testing.T) {
	s := NewSPM(DefaultSPMConfig())
	var regs [isa.NumArchRegs]uint64
	for i := range regs {
		regs[i] = uint64(i) * 10
	}
	stall, err := s.PushInitial(&regs)
	if err != nil {
		t.Fatal(err)
	}
	if stall != (SnapshotBytes+63)/64 {
		t.Errorf("initial save stall = %d, want %d", stall, (SnapshotBytes+63)/64)
	}
	// NT path modifies r5 and r9.
	regs[5] = 999
	s.MarkModified(5, []bool{false})
	regs[9] = 888
	s.MarkModified(9, []bool{false})
	restore, mask, _ := s.EndNTPath(&regs)
	if mask != 1<<5|1<<9 {
		t.Fatalf("NT mask = %#x", mask)
	}
	if restore[5] != 50 || restore[9] != 90 {
		t.Errorf("restore values %d,%d want 50,90", restore[5], restore[9])
	}
	// Simulate the restore, then the T path modifies r5 and r7.
	regs[5], regs[9] = 50, 90
	regs[5] = 111
	s.MarkModified(5, []bool{true})
	regs[7] = 777
	s.MarkModified(7, []bool{true})

	// Outcome taken: current values stand.
	cp := regs
	final, mask, _ := s.EndTPath(true, &cp)
	if mask != 1<<5|1<<7|1<<9 {
		t.Errorf("union mask = %#x", mask)
	}
	if final[5] != 111 || final[7] != 777 || final[9] != 90 {
		t.Errorf("taken finals: %d,%d,%d", final[5], final[7], final[9])
	}
	if s.Depth() != 0 {
		t.Errorf("depth = %d after pop", s.Depth())
	}
}

func TestSPMNotTakenRestore(t *testing.T) {
	s := NewSPM(DefaultSPMConfig())
	var regs [isa.NumArchRegs]uint64
	regs[4] = 40
	regs[6] = 60
	if _, err := s.PushInitial(&regs); err != nil {
		t.Fatal(err)
	}
	// NT path: r4 = 400.
	regs[4] = 400
	s.MarkModified(4, []bool{false})
	restore, mask, _ := s.EndNTPath(&regs)
	regs[4] = restore[4] // back to 40
	if mask != 1<<4 {
		t.Fatalf("NT mask %#x", mask)
	}
	// T path: r6 = 600.
	regs[6] = 600
	s.MarkModified(6, []bool{true})
	final, mask, _ := s.EndTPath(false, &regs)
	if mask != 1<<4|1<<6 {
		t.Errorf("union mask %#x", mask)
	}
	// NT was the true path: r4 takes its NT value, r6 rolls back.
	if final[4] != 400 || final[6] != 60 {
		t.Errorf("NT-true finals r4=%d r6=%d, want 400,60", final[4], final[6])
	}
}

func TestSPMNestedDepthAndOverflow(t *testing.T) {
	s := NewSPM(SPMConfig{Slots: 2, Bandwidth: 64})
	var regs [isa.NumArchRegs]uint64
	if _, err := s.PushInitial(&regs); err != nil {
		t.Fatal(err)
	}
	if _, err := s.PushInitial(&regs); err != nil {
		t.Fatal(err)
	}
	if _, err := s.PushInitial(&regs); err == nil {
		t.Fatal("third push on a 2-slot SPM succeeded")
	}
	if s.MaxDepth != 2 {
		t.Errorf("MaxDepth = %d", s.MaxDepth)
	}
	s.DropNewest()
	if s.Depth() != 1 {
		t.Errorf("depth after drop = %d", s.Depth())
	}
}

func TestSPMTimingIndependentOfOutcome(t *testing.T) {
	// The restore traffic (and so the stall cycles) must depend only on the
	// union of modified registers, never on the branch outcome — the
	// "overwrite with itself" rule that prevents a timing channel.
	run := func(taken bool) (int, uint64) {
		s := NewSPM(DefaultSPMConfig())
		var regs [isa.NumArchRegs]uint64
		_, _ = s.PushInitial(&regs)
		regs[3] = 1
		s.MarkModified(3, []bool{false})
		restore, _, _ := s.EndNTPath(&regs)
		regs[3] = restore[3]
		regs[8] = 2
		s.MarkModified(8, []bool{true})
		_, _, stall := s.EndTPath(taken, &regs)
		return stall, s.BytesRestored
	}
	st1, b1 := run(true)
	st2, b2 := run(false)
	if st1 != st2 || b1 != b2 {
		t.Errorf("restore timing depends on outcome: stall %d vs %d, bytes %d vs %d",
			st1, st2, b1, b2)
	}
}

func TestSPMMarkModifiedAllLevels(t *testing.T) {
	// A register written inside a nested SecBlock is a modification at
	// every enclosing nesting level.
	s := NewSPM(DefaultSPMConfig())
	var regs [isa.NumArchRegs]uint64
	_, _ = s.PushInitial(&regs) // level 0
	_, _ = s.PushInitial(&regs) // level 1
	s.MarkModified(10, []bool{false, true})
	if s.slots[0].ntMod != 1<<10 {
		t.Errorf("level 0 NT vector %#x", s.slots[0].ntMod)
	}
	if s.slots[1].tMod != 1<<10 {
		t.Errorf("level 1 T vector %#x", s.slots[1].tMod)
	}
}
