package workloads

import (
	"fmt"

	"repro/internal/lang"
)

// This file holds the constant-time kernel variants: the analogue of the
// paper's FaCT rewrites. Every algorithm-state write is gated on the
// enclosing chain mask through a ct-select, and the mask combination is
// re-evaluated per statement — matching the per-statement expression blowup
// of hand-written CTE (paper Fig. 2). Loop counters and other scaffolding
// stay plain: their bounds are public worst cases, exactly as FaCT requires.

// mset is a masked scalar assignment: name = chain ? e : name.
func mset(chain lang.Expr, name string, e lang.Expr) lang.Stmt {
	return lang.Set(name, lang.Sel(chain, e, lang.V(name)))
}

// mput is a masked array store: arr[idx] = chain ? e : arr[idx]. The element
// is read and written regardless of the mask, keeping the access pattern
// constant.
func mput(chain lang.Expr, arr string, idx, e lang.Expr) lang.Stmt {
	return lang.Put(arr, idx, lang.Sel(chain, e, lang.At(arr, idx)))
}

// ctBody returns the constant-time variant of kernel k, gated on chain.
func ctBody(k Kind, n int, chain lang.Expr) []lang.Stmt {
	switch k {
	case Fibonacci:
		return []lang.Stmt{
			mset(chain, "fa", lang.N(0)),
			mset(chain, "fb", lang.N(1)),
			lang.Set("fi", lang.N(0)),
			lang.Loop(lang.B(lang.Lt, lang.V("fi"), lang.N(int64(n))), []lang.Stmt{
				mset(chain, "ft", lang.B(lang.Add, lang.V("fa"), lang.V("fb"))),
				mset(chain, "fa", lang.V("fb")),
				mset(chain, "fb", lang.V("ft")),
				lang.Set("fi", lang.B(lang.Add, lang.V("fi"), lang.N(1))),
			}),
			mset(chain, "cksum", lang.B(lang.Add, lang.V("cksum"), lang.V("fb"))),
		}
	case Ones:
		return []lang.Stmt{
			mset(chain, "ov", lang.B(lang.Add, lang.N(12345),
				lang.B(lang.Mul, lang.V("iter"), lang.N(48271)))),
			lang.Set("oi", lang.N(0)),
			lang.Loop(lang.B(lang.Lt, lang.V("oi"), lang.N(int64(n))), []lang.Stmt{
				mset(chain, "ov", lcg("ov")),
				mput(chain, "ovec", lang.V("oi"), lang.V("ov")),
				lang.Set("oi", lang.B(lang.Add, lang.V("oi"), lang.N(1))),
			}),
			mset(chain, "ocnt", lang.N(0)),
			lang.Set("oi", lang.N(0)),
			lang.Loop(lang.B(lang.Lt, lang.V("oi"), lang.N(int64(n))), []lang.Stmt{
				mset(chain, "ocnt", lang.B(lang.Add, lang.V("ocnt"),
					lang.B(lang.And, lang.At("ovec", lang.V("oi")), lang.N(1)))),
				lang.Set("oi", lang.B(lang.Add, lang.V("oi"), lang.N(1))),
			}),
			mset(chain, "cksum", lang.B(lang.Add, lang.V("cksum"), lang.V("ocnt"))),
		}
	case Quicksort:
		return ctQuicksortBody(n, chain)
	case Queens:
		return ctQueensBody(n, chain)
	}
	panic("workloads: unknown kind")
}

// ctQuicksortBody is the oblivious replacement for quicksort: a bubble sort
// whose compare-swaps are ct-selects and whose every store is masked. The
// O(n^2) access pattern is input-independent — this asymptotic penalty is
// the main reason CTE loses so badly on sorting.
func ctQuicksortBody(n int, chain lang.Expr) []lang.Stmt {
	fill := []lang.Stmt{
		mset(chain, "qv", lang.B(lang.Add, lang.N(12345),
			lang.B(lang.Mul, lang.V("iter"), lang.N(48271)))),
		lang.Set("qi", lang.N(0)),
		lang.Loop(lang.B(lang.Lt, lang.V("qi"), lang.N(int64(n))), []lang.Stmt{
			mset(chain, "qv", lcg("qv")),
			mput(chain, "qdata", lang.V("qi"), lang.B(lang.And, lang.V("qv"), lang.N(0xFFFF))),
			lang.Set("qi", lang.B(lang.Add, lang.V("qi"), lang.N(1))),
		}),
	}
	jNext := lang.B(lang.Add, lang.V("qj"), lang.N(1))
	inner := lang.Loop(lang.B(lang.Lt, lang.V("qj"), lang.N(int64(n-1))), []lang.Stmt{
		// Every statement of the original algorithm carries the select
		// treatment (paper Fig. 2); only the loop counter stays plain.
		mset(chain, "qpiv", lang.At("qdata", lang.V("qj"))), // a
		mset(chain, "qtmp", lang.At("qdata", jNext)),        // b
		mset(chain, "qsn", lang.B(lang.Lt, lang.V("qtmp"), lang.V("qpiv"))),
		mset(chain, "qlo", lang.Sel(lang.V("qsn"), lang.V("qtmp"), lang.V("qpiv"))),
		mset(chain, "qhi", lang.Sel(lang.V("qsn"), lang.V("qpiv"), lang.V("qtmp"))),
		mput(chain, "qdata", lang.V("qj"), lang.V("qlo")),
		mput(chain, "qdata", jNext, lang.V("qhi")),
		lang.Set("qj", lang.B(lang.Add, lang.V("qj"), lang.N(1))),
	})
	var stmts []lang.Stmt
	stmts = append(stmts, fill...)
	stmts = append(stmts,
		lang.Set("qp", lang.N(0)),
		lang.Loop(lang.B(lang.Lt, lang.V("qp"), lang.N(int64(n-1))), []lang.Stmt{
			lang.Set("qj", lang.N(0)),
			inner,
			lang.Set("qp", lang.B(lang.Add, lang.V("qp"), lang.N(1))),
		}),
		mset(chain, "cksum", lang.B(lang.Add, lang.V("cksum"),
			lang.B(lang.Add, lang.At("qdata", lang.N(int64(n/2))), lang.At("qdata", lang.N(0))))),
	)
	return stmts
}

// ctQueensBody is the oblivious replacement for backtracking N-queens: an
// odometer enumerates all n^n placements and a branch-free validity product
// decides whether each counts. No pruning is possible without branching on
// board state, which is the CTE asymptotic penalty for search problems.
func ctQueensBody(n int, chain lang.Expr) []lang.Stmt {
	total := int64(1)
	for i := 0; i < n; i++ {
		total *= int64(n)
	}
	o := func(i int) string { return fmt.Sprintf("no%d", i) }

	var stmts []lang.Stmt
	// The odometer digits are iteration scaffolding (the enumeration runs
	// identically whatever the secrets are), so they reset and advance with
	// plain assignments, like loop counters.
	for i := 0; i < n; i++ {
		stmts = append(stmts, lang.Set(o(i), lang.N(0)))
	}
	stmts = append(stmts, mset(chain, "nsol", lang.N(0)))
	stmts = append(stmts, lang.Set("nk", lang.N(0)))

	// Every statement of the original safety check carries the select
	// treatment (paper Fig. 2).
	bodyStmts := []lang.Stmt{mset(chain, "nvalid", lang.N(1))}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			bodyStmts = append(bodyStmts,
				mset(chain, "nd", lang.B(lang.Sub, lang.V(o(i)), lang.V(o(j)))),
				mset(chain, "ncf", lang.B(lang.Or,
					lang.B(lang.Eq, lang.V(o(i)), lang.V(o(j))),
					lang.B(lang.Or,
						lang.B(lang.Eq, lang.V("nd"), lang.N(int64(j-i))),
						lang.B(lang.Eq, lang.V("nd"), lang.N(int64(i-j)))))),
				mset(chain, "nvalid", lang.B(lang.And, lang.V("nvalid"),
					lang.B(lang.Eq, lang.V("ncf"), lang.N(0)))),
			)
		}
	}
	bodyStmts = append(bodyStmts,
		mset(chain, "nsol", lang.B(lang.Add, lang.V("nsol"), lang.V("nvalid"))))
	// Odometer increment, branch-free: digit i absorbs the carry from digit
	// i-1. The board state is scaffolding (it enumerates every placement
	// regardless of secrets), so the carries use plain selects.
	bodyStmts = append(bodyStmts, lang.Set("ncar", lang.N(1)))
	for i := 0; i < n; i++ {
		bodyStmts = append(bodyStmts,
			lang.Set(o(i), lang.B(lang.Add, lang.V(o(i)), lang.V("ncar"))),
			lang.Set("ncar", lang.B(lang.Eq, lang.V(o(i)), lang.N(int64(n)))),
			lang.Set(o(i), lang.Sel(lang.V("ncar"), lang.N(0), lang.V(o(i)))),
		)
	}
	bodyStmts = append(bodyStmts, lang.Set("nk", lang.B(lang.Add, lang.V("nk"), lang.N(1))))

	stmts = append(stmts,
		lang.Loop(lang.B(lang.Lt, lang.V("nk"), lang.N(total)), bodyStmts),
		mset(chain, "cksum", lang.B(lang.Add, lang.V("cksum"), lang.V("nsol"))),
	)
	return stmts
}
