package workloads

import (
	"fmt"

	"repro/internal/lang"
)

// HarnessSpec parameterizes the Fig. 7 microbenchmark: W secret branches per
// iteration in an else-chained shape (nesting depth W-1), I iterations of
// the whole secure region, and the secret whose bits select which kernel
// instance the baseline actually runs.
type HarnessSpec struct {
	Kind   Kind
	Size   int    // kernel size parameter; 0 means Kind.DefaultSize()
	W      int    // secret branches per iteration (1..10)
	I      int    // iterations
	Secret uint64 // bit i-1 drives the i-th secret branch
}

func (s HarnessSpec) String() string {
	return fmt.Sprintf("%s/W=%d/I=%d", s.Kind, s.W, s.I)
}

func (s HarnessSpec) size() int {
	if s.Size > 0 {
		return s.Size
	}
	return s.Kind.DefaultSize()
}

// Harness builds the structured microbenchmark program:
//
//	for iter in 0..I:
//	    if (bit 0 of s) { kernel } else
//	    if (bit 1 of s) { kernel } else
//	    ...
//	    if (bit W-1 of s) { kernel } else { kernel }   // W+1 instances
//
// Compiled with the Plain backend it is the unprotected baseline, which
// executes exactly one kernel instance per iteration; with the SeMPE
// backend every instance executes, so the expected ideal slowdown is the
// sum of all path times (≈ W+1, paper §IV-A and Fig. 10).
func Harness(spec HarnessSpec) *lang.Program {
	if spec.W < 1 {
		panic("workloads: W must be >= 1")
	}
	n := spec.size()
	kVars, kArrs := decls(spec.Kind, n)
	vars := append([]*lang.VarDecl{
		{Name: "s", Init: int64(spec.Secret), Secret: true},
		{Name: "iter", Init: 0},
		{Name: "cksum", Init: 0},
		{Name: "bit", Init: 0},
	}, kVars...)

	var chain func(level int) []lang.Stmt
	chain = func(level int) []lang.Stmt {
		if level > spec.W {
			return body(spec.Kind, n) // the final else: instance W+1
		}
		cond := lang.B(lang.And,
			lang.B(lang.Shr, lang.V("s"), lang.N(int64(level-1))), lang.N(1))
		return []lang.Stmt{
			lang.SecretIf(cond, body(spec.Kind, n), chain(level+1)),
		}
	}

	loop := lang.Loop(lang.B(lang.Lt, lang.V("iter"), lang.N(int64(spec.I))),
		append(chain(1),
			lang.Set("iter", lang.B(lang.Add, lang.V("iter"), lang.N(1)))))

	return &lang.Program{
		Name:   fmt.Sprintf("%s_w%d", spec.Kind, spec.W),
		Vars:   vars,
		Arrays: kArrs,
		Body:   []lang.Stmt{loop},
	}
}

// HarnessCT builds the hand-written constant-time analogue of Harness — the
// program a FaCT developer would produce. All W+1 kernel instances execute
// every iteration as straight-line constant-time code; instance i's writes
// are gated on the chain mask
//
//	(1-c_1) & (1-c_2) & ... & (1-c_{i-1}) & c_i
//
// re-evaluated per statement, so per-statement cost grows with the nesting
// level — the super-linear CTE blowup of the paper's Fig. 2 and Fig. 10.
// The result is an ordinary binary for the baseline architecture.
func HarnessCT(spec HarnessSpec) *lang.Program {
	if spec.W < 1 {
		panic("workloads: W must be >= 1")
	}
	n := spec.size()
	kVars, kArrs := ctDecls(spec.Kind, n)
	vars := []*lang.VarDecl{
		{Name: "s", Init: int64(spec.Secret), Secret: true},
		{Name: "iter", Init: 0},
		{Name: "cksum", Init: 0},
	}
	condNames := make([]string, spec.W)
	for i := range condNames {
		condNames[i] = fmt.Sprintf("c%d", i+1)
		vars = append(vars, &lang.VarDecl{Name: condNames[i], Secret: true})
	}
	vars = append(vars, kVars...)

	var iterBody []lang.Stmt
	for i, c := range condNames {
		iterBody = append(iterBody, lang.Set(c,
			lang.B(lang.And, lang.B(lang.Shr, lang.V("s"), lang.N(int64(i))), lang.N(1))))
	}
	for level := 1; level <= spec.W+1; level++ {
		iterBody = append(iterBody, ctBody(spec.Kind, n, chainMask(condNames, level))...)
	}
	iterBody = append(iterBody,
		lang.Set("iter", lang.B(lang.Add, lang.V("iter"), lang.N(1))))

	loop := lang.Loop(lang.B(lang.Lt, lang.V("iter"), lang.N(int64(spec.I))), iterBody)
	return &lang.Program{
		Name:   fmt.Sprintf("%s_ct_w%d", spec.Kind, spec.W),
		Vars:   vars,
		Arrays: kArrs,
		Body:   []lang.Stmt{loop},
	}
}

// chainMask builds the level's activation expression. For level <= W it is
// the conjunction of the complements of all earlier conditions with the
// level's own condition; for level W+1 it is the conjunction of all
// complements (the final else).
func chainMask(conds []string, level int) lang.Expr {
	var e lang.Expr
	and := func(t lang.Expr) {
		if e == nil {
			e = t
		} else {
			e = lang.B(lang.And, e, t)
		}
	}
	for j := 0; j < level-1 && j < len(conds); j++ {
		and(lang.B(lang.Xor, lang.V(conds[j]), lang.N(1)))
	}
	if level <= len(conds) {
		and(lang.V(conds[level-1]))
	}
	if e == nil {
		e = lang.N(1)
	}
	return e
}

// Single builds one kernel instance run I times with no secret branches at
// all — used for unit tests and for measuring per-path kernel cost.
func Single(k Kind, n, iters int) *lang.Program {
	if n <= 0 {
		n = k.DefaultSize()
	}
	kVars, kArrs := decls(k, n)
	vars := append([]*lang.VarDecl{
		{Name: "s"}, {Name: "iter"}, {Name: "cksum"}, {Name: "bit"},
	}, kVars...)
	loop := lang.Loop(lang.B(lang.Lt, lang.V("iter"), lang.N(int64(iters))),
		append(body(k, n),
			lang.Set("iter", lang.B(lang.Add, lang.V("iter"), lang.N(1)))))
	return &lang.Program{
		Name:   fmt.Sprintf("%s_single", k),
		Vars:   vars,
		Arrays: kArrs,
		Body:   []lang.Stmt{loop},
	}
}
