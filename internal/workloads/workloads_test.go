package workloads

import (
	"testing"

	"repro/internal/compile"
	"repro/internal/emu"
	"repro/internal/lang"
)

// runCksum compiles and runs a program, returning the final cksum value.
func runCksum(t *testing.T, p *lang.Program, mode compile.Mode, secure bool) uint64 {
	t.Helper()
	out, err := compile.Compile(p, mode)
	if err != nil {
		t.Fatalf("compile %s (%v): %v", p.Name, mode, err)
	}
	m := emu.Legacy
	if secure {
		m = emu.SeMPE
	}
	mach := emu.New(m, out.Prog)
	mach.MaxInsts = 200_000_000
	if err := mach.Run(); err != nil {
		t.Fatalf("run %s (%v): %v", p.Name, mode, err)
	}
	addr, err := out.ResultAddr("cksum")
	if err != nil {
		t.Fatal(err)
	}
	return mach.Mem.Read64(addr)
}

func TestKernelsProduceKnownResults(t *testing.T) {
	// Fibonacci: fib(64) with fib(0)=1 starting pair (a=0,b=1 -> b holds
	// fib(n+1) after n steps).
	fib := func(n int) uint64 {
		a, b := uint64(0), uint64(1)
		for i := 0; i < n; i++ {
			a, b = b, a+b
		}
		return b
	}
	got := runCksum(t, Single(Fibonacci, 64, 1), compile.Plain, false)
	if got != fib(64) {
		t.Errorf("fibonacci cksum = %d, want %d", got, fib(64))
	}

	// Queens: 4x4 board has 2 solutions; 5x5 has 10; run once each.
	if got := runCksum(t, Single(Queens, 4, 1), compile.Plain, false); got != 2 {
		t.Errorf("queens(4) solutions = %d, want 2", got)
	}
	if got := runCksum(t, Single(Queens, 5, 1), compile.Plain, false); got != 10 {
		t.Errorf("queens(5) solutions = %d, want 10", got)
	}

	// Quicksort: cksum = data[n/2]+data[0] of the sorted array; compute the
	// expected value with a reference model of the same LCG.
	n := 32
	vals := make([]uint64, n)
	v := uint64(12345) // iter = 0
	for i := 0; i < n; i++ {
		v = (v*25173 + 13849) & 0xFFFFFF
		vals[i] = v & 0xFFFF
	}
	// insertion sort reference
	for i := 1; i < n; i++ {
		for j := i; j > 0 && vals[j] < vals[j-1]; j-- {
			vals[j], vals[j-1] = vals[j-1], vals[j]
		}
	}
	want := vals[n/2] + vals[0]
	if got := runCksum(t, Single(Quicksort, n, 1), compile.Plain, false); got != want {
		t.Errorf("quicksort cksum = %d, want %d", got, want)
	}

	// Ones: popcount-of-low-bit over the LCG fill.
	cnt := uint64(0)
	v = 12345
	for i := 0; i < 48; i++ {
		v = (v*25173 + 13849) & 0xFFFFFF
		cnt += v & 1
	}
	if got := runCksum(t, Single(Ones, 48, 1), compile.Plain, false); got != cnt {
		t.Errorf("ones cksum = %d, want %d", got, cnt)
	}
}

// TestHarnessAllVariantsAgree is the central semantic check: for every
// kernel and several secrets, the baseline binary, the SeMPE binary on the
// secure machine, the SeMPE binary on a legacy machine, and the hand-written
// constant-time program all compute the same checksum.
func TestHarnessAllVariantsAgree(t *testing.T) {
	for _, kind := range All() {
		for _, secret := range []uint64{0, 1, 2, 5} {
			spec := HarnessSpec{Kind: kind, W: 3, I: 2, Secret: secret}
			p := Harness(spec)
			base := runCksum(t, p, compile.Plain, false)
			sempe := runCksum(t, p, compile.SeMPE, true)
			legacy := runCksum(t, p, compile.SeMPE, false)
			ct := runCksum(t, HarnessCT(spec), compile.Plain, false)
			if sempe != base {
				t.Errorf("%s secret=%d: SeMPE cksum %d != baseline %d", spec, secret, sempe, base)
			}
			if legacy != base {
				t.Errorf("%s secret=%d: SeMPE-on-legacy cksum %d != baseline %d", spec, secret, legacy, base)
			}
			if ct != base {
				t.Errorf("%s secret=%d: CT cksum %d != baseline %d", spec, secret, ct, base)
			}
		}
	}
}

func TestHarnessDeepNesting(t *testing.T) {
	// W=10 is the paper's deepest configuration.
	spec := HarnessSpec{Kind: Fibonacci, W: 10, I: 1, Secret: 0b1000010001}
	p := Harness(spec)
	base := runCksum(t, p, compile.Plain, false)
	sempe := runCksum(t, p, compile.SeMPE, true)
	ct := runCksum(t, HarnessCT(spec), compile.Plain, false)
	if sempe != base || ct != base {
		t.Errorf("W=10: base=%d sempe=%d ct=%d", base, sempe, ct)
	}
}

func TestHarnessTaintClean(t *testing.T) {
	// Every harness must pass the taint linter: secrets reach only marked
	// branches and never memory indices.
	for _, kind := range All() {
		spec := HarnessSpec{Kind: kind, W: 2, I: 1, Secret: 1}
		if rep := lang.AnalyzeTaint(Harness(spec)); !rep.Clean() {
			t.Errorf("%v structured harness tainted: %+v", kind, rep)
		}
		if rep := lang.AnalyzeTaint(HarnessCT(spec)); !rep.Clean() {
			t.Errorf("%v CT harness tainted: %+v", kind, rep)
		}
	}
}

func TestSecureInstructionCounts(t *testing.T) {
	// The structured harness must contain exactly W static sJMPs and W
	// eosJMPs when compiled for SeMPE.
	for w := 1; w <= 5; w++ {
		out := compile.MustCompile(Harness(HarnessSpec{Kind: Fibonacci, W: w, I: 1}), compile.SeMPE)
		sjmp, eos := out.Prog.CountSecure()
		if sjmp != w || eos != w {
			t.Errorf("W=%d: sjmp=%d eos=%d", w, sjmp, eos)
		}
	}
}

func TestDynamicInstructionScaling(t *testing.T) {
	// Under SeMPE every kernel instance executes: the dynamic instruction
	// count must grow roughly linearly with W+1 relative to the baseline.
	countInsts := func(p *lang.Program, mode compile.Mode, secure bool) uint64 {
		out := compile.MustCompile(p, mode)
		m := emu.Legacy
		if secure {
			m = emu.SeMPE
		}
		mach := emu.New(m, out.Prog)
		if err := mach.Run(); err != nil {
			t.Fatal(err)
		}
		return mach.Insts
	}
	spec1 := HarnessSpec{Kind: Fibonacci, W: 1, I: 4, Secret: 0}
	spec7 := HarnessSpec{Kind: Fibonacci, W: 7, I: 4, Secret: 0}
	base1 := countInsts(Harness(spec1), compile.Plain, false)
	sec1 := countInsts(Harness(spec1), compile.SeMPE, true)
	base7 := countInsts(Harness(spec7), compile.Plain, false)
	sec7 := countInsts(Harness(spec7), compile.SeMPE, true)

	r1 := float64(sec1) / float64(base1)
	r7 := float64(sec7) / float64(base7)
	if r1 < 1.5 || r1 > 3.0 {
		t.Errorf("W=1 instruction ratio %.2f, want ~2", r1)
	}
	if r7 < 5.5 || r7 > 10.0 {
		t.Errorf("W=7 instruction ratio %.2f, want ~8", r7)
	}
}
