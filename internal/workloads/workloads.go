// Package workloads implements the paper's four microbenchmark kernels —
// Fibonacci, Ones, Quicksort, and the Eight Queens problem (§V) — each in
// two source forms:
//
//   - a structured form (plain conditionals inside secret branches), used
//     for the unprotected baseline and, via the SeMPE backend, for the
//     secure-architecture runs; and
//   - a hand-written constant-time form built from ct-select expressions,
//     the analogue of the FaCT rewrites the paper spent three weeks on.
//
// The harness (harness.go) arranges W secret branches per iteration in the
// else-chained shape of the paper's Fig. 7, so a baseline run executes
// exactly one kernel instance per iteration while SeMPE executes all W+1.
package workloads

import (
	"fmt"

	"repro/internal/lang"
)

// Kind identifies a microbenchmark kernel.
type Kind int

// The paper's four kernels.
const (
	Fibonacci Kind = iota
	Ones
	Quicksort
	Queens
)

// All returns every kernel, in the paper's order.
func All() []Kind { return []Kind{Fibonacci, Ones, Quicksort, Queens} }

// Parse returns the kernel named s ("fibonacci", "ones", "quicksort",
// "queens") — the inverse of Kind.String, shared by the scenario specs and
// the cmd tools.
func Parse(s string) (Kind, error) {
	for _, k := range All() {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("workloads: unknown kernel %q (have fibonacci|ones|quicksort|queens)", s)
}

func (k Kind) String() string {
	switch k {
	case Fibonacci:
		return "fibonacci"
	case Ones:
		return "ones"
	case Quicksort:
		return "quicksort"
	case Queens:
		return "queens"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// DefaultSize returns the kernel's size parameter used by the benchmarks.
// These are scaled down from the paper's >=100M-instruction runs so a full
// sweep simulates in minutes; EXPERIMENTS.md records the scaling.
func (k Kind) DefaultSize() int {
	switch k {
	case Fibonacci:
		return 200 // terms (wraps mod 2^64 past fib(93); the checksum is still deterministic)
	case Ones:
		return 48 // vector length
	case Quicksort:
		return 32 // array length
	case Queens:
		return 4 // board size (paper uses 8; see EXPERIMENTS.md)
	}
	return 16
}

// decls returns the scalar and array declarations one kernel instance
// needs. Kernel state is shared by all chain levels: every body initializes
// its state before reading it (write-before-read), which is what makes the
// sharing safe under SeMPE's NT-first dual-path execution.
func decls(k Kind, n int) ([]*lang.VarDecl, []*lang.ArrayDecl) {
	switch k {
	case Fibonacci:
		return []*lang.VarDecl{
			{Name: "fa"}, {Name: "fb"}, {Name: "ft"}, {Name: "fi"},
		}, nil
	case Ones:
		return []*lang.VarDecl{
				{Name: "ov"}, {Name: "oi"}, {Name: "ocnt"},
			}, []*lang.ArrayDecl{
				{Name: "ovec", Len: n},
			}
	case Quicksort:
		return []*lang.VarDecl{
				{Name: "qv"}, {Name: "qi"}, {Name: "qj"}, {Name: "qlo"},
				{Name: "qhi"}, {Name: "qsp"}, {Name: "qpiv"}, {Name: "qtmp"},
				{Name: "qsn"}, {Name: "qp"},
			}, []*lang.ArrayDecl{
				{Name: "qdata", Len: n},
				{Name: "qstk", Len: 4*n + 8},
			}
	case Queens:
		return []*lang.VarDecl{
				{Name: "nrow"}, {Name: "nc"}, {Name: "nfound"}, {Name: "nr"},
				{Name: "nok"}, {Name: "ntmp"}, {Name: "nd1"}, {Name: "nd2"},
				{Name: "ncf"}, {Name: "nsol"},
			}, []*lang.ArrayDecl{
				{Name: "ncol", Len: n},
			}
	}
	panic("workloads: unknown kind")
}

// ctDecls returns declarations for the constant-time variant (the Queens
// odometer uses different state than the backtracking version).
func ctDecls(k Kind, n int) ([]*lang.VarDecl, []*lang.ArrayDecl) {
	if k != Queens {
		return decls(k, n)
	}
	vars := []*lang.VarDecl{
		{Name: "nk"}, {Name: "nvalid"}, {Name: "ncf"}, {Name: "nd"},
		{Name: "ncar"}, {Name: "nsol"},
	}
	for i := 0; i < n; i++ {
		vars = append(vars, &lang.VarDecl{Name: fmt.Sprintf("no%d", i)})
	}
	return vars, nil
}

// seedStmt derives the kernel's data seed from the public iteration
// counter. Seeding from public state keeps kernel data independent of the
// secret, so public data-dependent branches inside the kernels (quicksort's
// comparisons) behave identically for every secret — required for the
// indistinguishability property and true of the paper's setup, where the
// secret only selects which branch path runs.
func seedStmt(dst string) lang.Stmt {
	return lang.Set(dst, lang.B(lang.Add, lang.N(12345),
		lang.B(lang.Mul, lang.V("iter"), lang.N(48271))))
}

// lcg advances v with a 16-bit-style linear congruential step.
func lcg(v string) lang.Expr {
	return lang.B(lang.And,
		lang.B(lang.Add, lang.B(lang.Mul, lang.V(v), lang.N(25173)), lang.N(13849)),
		lang.N(0xFFFFFF))
}

// body returns the structured kernel: compute, then fold the result into
// cksum. n is the size parameter.
func body(k Kind, n int) []lang.Stmt {
	switch k {
	case Fibonacci:
		return []lang.Stmt{
			lang.Set("fa", lang.N(0)),
			lang.Set("fb", lang.N(1)),
			lang.Set("fi", lang.N(0)),
			lang.Loop(lang.B(lang.Lt, lang.V("fi"), lang.N(int64(n))), []lang.Stmt{
				lang.Set("ft", lang.B(lang.Add, lang.V("fa"), lang.V("fb"))),
				lang.Set("fa", lang.V("fb")),
				lang.Set("fb", lang.V("ft")),
				lang.Set("fi", lang.B(lang.Add, lang.V("fi"), lang.N(1))),
			}),
			lang.Set("cksum", lang.B(lang.Add, lang.V("cksum"), lang.V("fb"))),
		}
	case Ones:
		return []lang.Stmt{
			seedStmt("ov"),
			lang.Set("oi", lang.N(0)),
			lang.Loop(lang.B(lang.Lt, lang.V("oi"), lang.N(int64(n))), []lang.Stmt{
				lang.Set("ov", lcg("ov")),
				lang.Put("ovec", lang.V("oi"), lang.V("ov")),
				lang.Set("oi", lang.B(lang.Add, lang.V("oi"), lang.N(1))),
			}),
			lang.Set("ocnt", lang.N(0)),
			lang.Set("oi", lang.N(0)),
			lang.Loop(lang.B(lang.Lt, lang.V("oi"), lang.N(int64(n))), []lang.Stmt{
				lang.Set("ocnt", lang.B(lang.Add, lang.V("ocnt"),
					lang.B(lang.And, lang.At("ovec", lang.V("oi")), lang.N(1)))),
				lang.Set("oi", lang.B(lang.Add, lang.V("oi"), lang.N(1))),
			}),
			lang.Set("cksum", lang.B(lang.Add, lang.V("cksum"), lang.V("ocnt"))),
		}
	case Quicksort:
		return quicksortBody(n)
	case Queens:
		return queensBody(n)
	}
	panic("workloads: unknown kind")
}

func quicksortBody(n int) []lang.Stmt {
	fill := []lang.Stmt{
		seedStmt("qv"),
		lang.Set("qi", lang.N(0)),
		lang.Loop(lang.B(lang.Lt, lang.V("qi"), lang.N(int64(n))), []lang.Stmt{
			lang.Set("qv", lcg("qv")),
			lang.Put("qdata", lang.V("qi"), lang.B(lang.And, lang.V("qv"), lang.N(0xFFFF))),
			lang.Set("qi", lang.B(lang.Add, lang.V("qi"), lang.N(1))),
		}),
	}
	partitionLoop := lang.Loop(lang.B(lang.Lt, lang.V("qj"), lang.V("qhi")), []lang.Stmt{
		lang.PublicIf(lang.B(lang.Lt, lang.At("qdata", lang.V("qj")), lang.V("qpiv")),
			[]lang.Stmt{
				lang.Set("qtmp", lang.At("qdata", lang.V("qi"))),
				lang.Put("qdata", lang.V("qi"), lang.At("qdata", lang.V("qj"))),
				lang.Put("qdata", lang.V("qj"), lang.V("qtmp")),
				lang.Set("qi", lang.B(lang.Add, lang.V("qi"), lang.N(1))),
			}, nil),
		lang.Set("qj", lang.B(lang.Add, lang.V("qj"), lang.N(1))),
	})
	sortLoop := lang.Loop(lang.B(lang.Gt, lang.V("qsp"), lang.N(0)), []lang.Stmt{
		lang.Set("qsp", lang.B(lang.Sub, lang.V("qsp"), lang.N(2))),
		lang.Set("qlo", lang.At("qstk", lang.V("qsp"))),
		lang.Set("qhi", lang.At("qstk", lang.B(lang.Add, lang.V("qsp"), lang.N(1)))),
		lang.PublicIf(lang.B(lang.Lt, lang.V("qlo"), lang.V("qhi")), []lang.Stmt{
			lang.Set("qpiv", lang.At("qdata", lang.V("qhi"))),
			lang.Set("qi", lang.V("qlo")),
			lang.Set("qj", lang.V("qlo")),
			partitionLoop,
			// Swap the pivot into place.
			lang.Set("qtmp", lang.At("qdata", lang.V("qi"))),
			lang.Put("qdata", lang.V("qi"), lang.At("qdata", lang.V("qhi"))),
			lang.Put("qdata", lang.V("qhi"), lang.V("qtmp")),
			// Push both halves.
			lang.Put("qstk", lang.V("qsp"), lang.V("qlo")),
			lang.Put("qstk", lang.B(lang.Add, lang.V("qsp"), lang.N(1)),
				lang.B(lang.Sub, lang.V("qi"), lang.N(1))),
			lang.Set("qsp", lang.B(lang.Add, lang.V("qsp"), lang.N(2))),
			lang.Put("qstk", lang.V("qsp"), lang.B(lang.Add, lang.V("qi"), lang.N(1))),
			lang.Put("qstk", lang.B(lang.Add, lang.V("qsp"), lang.N(1)), lang.V("qhi")),
			lang.Set("qsp", lang.B(lang.Add, lang.V("qsp"), lang.N(2))),
		}, nil),
	})
	var stmts []lang.Stmt
	stmts = append(stmts, fill...)
	stmts = append(stmts,
		lang.Put("qstk", lang.N(0), lang.N(0)),
		lang.Put("qstk", lang.N(1), lang.N(int64(n-1))),
		lang.Set("qsp", lang.N(2)),
		sortLoop,
		lang.Set("cksum", lang.B(lang.Add, lang.V("cksum"),
			lang.B(lang.Add, lang.At("qdata", lang.N(int64(n/2))), lang.At("qdata", lang.N(0))))),
	)
	return stmts
}

// queensBody is iterative backtracking N-queens with pruning, counting
// solutions into nsol.
func queensBody(n int) []lang.Stmt {
	nn := int64(n)
	safeCheck := []lang.Stmt{
		lang.Set("nok", lang.N(1)),
		lang.Set("nr", lang.N(0)),
		lang.Loop(lang.B(lang.Lt, lang.V("nr"), lang.V("nrow")), []lang.Stmt{
			lang.Set("ntmp", lang.At("ncol", lang.V("nr"))),
			lang.Set("nd1", lang.B(lang.Sub, lang.V("ntmp"), lang.V("nc"))),
			lang.Set("nd2", lang.B(lang.Sub, lang.V("nrow"), lang.V("nr"))),
			lang.Set("ncf", lang.B(lang.Or,
				lang.B(lang.Eq, lang.V("ntmp"), lang.V("nc")),
				lang.B(lang.Or,
					lang.B(lang.Eq, lang.V("nd1"), lang.V("nd2")),
					lang.B(lang.Eq, lang.V("nd1"), lang.B(lang.Sub, lang.N(0), lang.V("nd2")))))),
			lang.Set("nok", lang.B(lang.And, lang.V("nok"), lang.B(lang.Eq, lang.V("ncf"), lang.N(0)))),
			lang.Set("nr", lang.B(lang.Add, lang.V("nr"), lang.N(1))),
		}),
	}
	columnScan := lang.Loop(
		lang.B(lang.And,
			lang.B(lang.Lt, lang.V("nc"), lang.N(nn)),
			lang.B(lang.Eq, lang.V("nfound"), lang.N(0))),
		append(append([]lang.Stmt{}, safeCheck...),
			lang.PublicIf(lang.V("nok"),
				[]lang.Stmt{lang.Set("nfound", lang.N(1))},
				[]lang.Stmt{lang.Set("nc", lang.B(lang.Add, lang.V("nc"), lang.N(1)))},
			)),
	)
	return []lang.Stmt{
		lang.Set("nsol", lang.N(0)),
		lang.Set("nrow", lang.N(0)),
		lang.Put("ncol", lang.N(0), lang.N(-1)),
		lang.Loop(lang.B(lang.Ge, lang.V("nrow"), lang.N(0)), []lang.Stmt{
			lang.Set("nc", lang.B(lang.Add, lang.At("ncol", lang.V("nrow")), lang.N(1))),
			lang.Set("nfound", lang.N(0)),
			columnScan,
			lang.PublicIf(lang.V("nfound"),
				[]lang.Stmt{
					lang.Put("ncol", lang.V("nrow"), lang.V("nc")),
					lang.PublicIf(lang.B(lang.Eq, lang.V("nrow"), lang.N(nn-1)),
						[]lang.Stmt{lang.Set("nsol", lang.B(lang.Add, lang.V("nsol"), lang.N(1)))},
						[]lang.Stmt{
							lang.Set("nrow", lang.B(lang.Add, lang.V("nrow"), lang.N(1))),
							lang.Put("ncol", lang.V("nrow"), lang.N(-1)),
						}),
				},
				[]lang.Stmt{lang.Set("nrow", lang.B(lang.Sub, lang.V("nrow"), lang.N(1)))},
			),
		}),
		lang.Set("cksum", lang.B(lang.Add, lang.V("cksum"), lang.V("nsol"))),
	}
}
