package stattest

import (
	"math"
	"math/rand"
	"testing"
)

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("mean = %v, want 5", m)
	}
	// Sum of squared deviations is 32; unbiased variance = 32/7.
	if v, want := Variance(xs), 32.0/7.0; math.Abs(v-want) > 1e-12 {
		t.Errorf("variance = %v, want %v", v, want)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 || Variance([]float64{3}) != 0 {
		t.Errorf("degenerate mean/variance not zero")
	}
}

func TestWelchTKnownValue(t *testing.T) {
	// Hand-checked: a = {1,2,3}, b = {2,4,6}.
	// mean a=2 var a=1; mean b=4 var b=4; se = sqrt(1/3 + 4/3) = sqrt(5/3).
	a := []float64{1, 2, 3}
	b := []float64{2, 4, 6}
	want := -2.0 / math.Sqrt(5.0/3.0)
	if got := WelchT(a, b); math.Abs(got-want) > 1e-12 {
		t.Errorf("WelchT = %v, want %v", got, want)
	}
	if got := WelchT(b, a); math.Abs(got+want) > 1e-12 {
		t.Errorf("WelchT not antisymmetric: %v", got)
	}
}

func TestWelchTDegenerate(t *testing.T) {
	same := []float64{5, 5, 5}
	if got := WelchT(same, same); got != 0 {
		t.Errorf("identical point masses: t = %v, want 0", got)
	}
	if got := WelchT([]float64{6, 6}, same); got != TCap {
		t.Errorf("distinct point masses: t = %v, want TCap", got)
	}
	if got := WelchT(same, []float64{6, 6}); got != -TCap {
		t.Errorf("distinct point masses: t = %v, want -TCap", got)
	}
	if got := WelchT(nil, same); got != 0 {
		t.Errorf("empty sample: t = %v, want 0", got)
	}
}

func TestTVLADecision(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 400
	fixed := make([]float64, n)
	randomSame := make([]float64, n)
	randomShift := make([]float64, n)
	for i := 0; i < n; i++ {
		fixed[i] = rng.NormFloat64()
		randomSame[i] = rng.NormFloat64()
		randomShift[i] = rng.NormFloat64() + 2 // two-sigma mean shift
	}
	if tv, leak := TVLA(fixed, randomSame); leak {
		t.Errorf("same-distribution TVLA leaked: t = %v", tv)
	}
	if tv, leak := TVLA(fixed, randomShift); !leak {
		t.Errorf("shifted-distribution TVLA did not leak: t = %v", tv)
	}
}

func TestBinnedMI(t *testing.T) {
	// Perfectly separating observation: label 0 -> 1.0, label 1 -> 9.0.
	var obs []float64
	var labels []uint64
	for i := 0; i < 64; i++ {
		l := uint64(i % 2)
		labels = append(labels, l)
		obs = append(obs, 1+8*float64(l))
	}
	if mi := BinnedMI(obs, labels, 8); math.Abs(mi-1) > 1e-9 {
		t.Errorf("separating MI = %v, want 1 bit", mi)
	}
	// Constant observation: no information.
	flat := make([]float64, 64)
	if mi := BinnedMI(flat, labels, 8); mi != 0 {
		t.Errorf("constant MI = %v, want 0", mi)
	}
	// Independent observation: small plug-in bias but far below 1 bit.
	rng := rand.New(rand.NewSource(11))
	ind := make([]float64, 512)
	indLabels := make([]uint64, 512)
	for i := range ind {
		ind[i] = rng.Float64()
		indLabels[i] = uint64(rng.Intn(2))
	}
	if mi := BinnedMI(ind, indLabels, 8); mi > 0.1 {
		t.Errorf("independent MI = %v, want ~0", mi)
	}
}

// TestBinnedMIDegenerate pins the defined-degenerate contract: every
// input that cannot support an estimate returns exactly (0, true) — never
// NaN, never a panic — and healthy input is not flagged.
func TestBinnedMIDegenerate(t *testing.T) {
	labels := []uint64{0, 1, 0, 1}
	obs := []float64{1, 9, 1, 9}
	cases := []struct {
		name   string
		obs    []float64
		labels []uint64
		bins   int
	}{
		{"empty", nil, nil, 8},
		{"length mismatch", obs, labels[:2], 8},
		{"zero bins", obs, labels, 0},
		{"negative bins", obs, labels, -1},
		{"constant observation", []float64{3, 3, 3, 3}, labels, 8},
		{"single label", obs, []uint64{7, 7, 7, 7}, 8},
		{"NaN observation", []float64{1, math.NaN(), 2, 3}, labels, 8},
		{"+Inf observation", []float64{1, math.Inf(1), 2, 3}, labels, 8},
		{"-Inf observation", []float64{1, math.Inf(-1), 2, 3}, labels, 8},
	}
	for _, c := range cases {
		mi, degenerate := BinnedMIChecked(c.obs, c.labels, c.bins)
		if !degenerate {
			t.Errorf("%s: not flagged degenerate", c.name)
		}
		if mi != 0 {
			t.Errorf("%s: mi = %v, want exactly 0", c.name, mi)
		}
		if math.IsNaN(mi) {
			t.Errorf("%s: mi is NaN", c.name)
		}
		// The unflagged wrapper must agree on the value.
		if got := BinnedMI(c.obs, c.labels, c.bins); got != 0 {
			t.Errorf("%s: BinnedMI = %v, want 0", c.name, got)
		}
	}
	// A single bin over varying observations is a defined estimate (0 —
	// every observation in one bin carries nothing) and is not degenerate:
	// the inputs themselves are fine.
	if mi, degenerate := BinnedMIChecked(obs, labels, 1); mi != 0 || degenerate {
		t.Errorf("single bin: (%v, %v), want (0, false)", mi, degenerate)
	}
	// Healthy input: unflagged, positive.
	if mi, degenerate := BinnedMIChecked(obs, labels, 4); degenerate || mi <= 0.9 {
		t.Errorf("separating input: (%v, %v), want (~1, false)", mi, degenerate)
	}
}

func TestWilsonInterval(t *testing.T) {
	lo, hi := WilsonInterval(50, 100, 1.96)
	if !(lo < 0.5 && 0.5 < hi) {
		t.Errorf("50/100 interval [%v, %v] does not cover 0.5", lo, hi)
	}
	if lo < 0.39 || hi > 0.61 {
		t.Errorf("50/100 interval [%v, %v] implausibly wide", lo, hi)
	}
	lo, hi = WilsonInterval(100, 100, 1.96)
	if hi < 0.999 || lo < 0.95 {
		t.Errorf("100/100 interval [%v, %v], want [~0.96, ~1]", lo, hi)
	}
	lo, hi = WilsonInterval(0, 100, 1.96)
	if lo != 0 || hi > 0.05 {
		t.Errorf("0/100 interval [%v, %v], want [0, ~0.04]", lo, hi)
	}
	lo, hi = WilsonInterval(0, 0, 1.96)
	if lo != 0 || hi != 1 {
		t.Errorf("empty interval [%v, %v], want [0, 1]", lo, hi)
	}
}
