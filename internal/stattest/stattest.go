// Package stattest implements the statistical leakage-assessment toolkit
// behind the attack lab (internal/attack): Welch's t-test in the TVLA
// fixed-vs-random methodology, a binned mutual-information estimate, and
// Wilson confidence intervals for secret-recovery success rates.
//
// The simulator is deterministic, so trial distributions can collapse to
// point masses; every estimator here is defined for that corner. A Welch t
// over two identical point masses is 0 (no evidence of leakage), and over
// two distinct point masses it saturates at TCap (unambiguous leakage) —
// in both cases the TVLA verdict is the one a noisy physical measurement
// would converge to with enough traces.
package stattest

import (
	"math"
	"sort"
)

// TVLAThreshold is the |t| decision threshold of the TVLA methodology
// (Goodwill et al.): |t| >= 4.5 rejects the null "the two trace groups
// have equal means" at roughly the 1e-5 level for the trace counts TVLA
// prescribes, and is the universal pass/fail line in certification labs.
const TVLAThreshold = 4.5

// TCap is the saturated t value reported when the pooled standard error is
// zero but the means differ — a deterministic, perfectly repeatable
// difference. Finite (rather than +Inf) so t values survive JSON encoding.
const TCap = 1e6

// Mean returns the arithmetic mean, or 0 for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased (n-1) sample variance, or 0 when fewer
// than two samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs)-1)
}

// WelchT returns Welch's t statistic for the difference of means between
// two independent samples with (possibly) unequal variances:
//
//	t = (mean(a) - mean(b)) / sqrt(var(a)/na + var(b)/nb)
//
// Degenerate cases: either sample empty -> 0; zero pooled standard error
// with equal means -> 0; zero pooled standard error with different means
// -> ±TCap (the deterministic-simulator saturation described in the
// package comment).
func WelchT(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	ma, mb := Mean(a), Mean(b)
	se := math.Sqrt(Variance(a)/float64(len(a)) + Variance(b)/float64(len(b)))
	if se == 0 {
		switch {
		case ma == mb:
			return 0
		case ma > mb:
			return TCap
		default:
			return -TCap
		}
	}
	t := (ma - mb) / se
	return math.Max(-TCap, math.Min(TCap, t))
}

// TVLA runs the fixed-vs-random Welch t-test and applies the TVLAThreshold
// decision: leak is true when |t| >= 4.5.
func TVLA(fixed, random []float64) (t float64, leak bool) {
	t = WelchT(fixed, random)
	return t, math.Abs(t) >= TVLAThreshold
}

// BinnedMI estimates the mutual information I(obs; label) in bits between
// a scalar observation and a discrete label, by discretizing obs into
// `bins` equal-width bins over its observed range and computing
// I = H(bin) - H(bin|label) from the empirical joint distribution.
//
// It is a plug-in estimate: biased up by O(bins/n) on independent data,
// which is fine for the attack lab's use (distinguishing "about one bit"
// from "about zero bits"). Degenerate input yields 0; BinnedMIChecked
// exposes which inputs those were.
func BinnedMI(obs []float64, labels []uint64, bins int) float64 {
	mi, _ := BinnedMIChecked(obs, labels, bins)
	return mi
}

// BinnedMIChecked is BinnedMI with the degenerate cases surfaced: on
// input that cannot support an estimate it returns (0, true) — a defined
// zero with a flag, never NaN and never a panic — instead of leaving the
// caller to guess whether "0 bits" meant "independent" or "unmeasurable".
// Degenerate inputs are: an empty or length-mismatched sample, fewer than
// one bin, a constant observation (every x in one bin — the usual SeMPE
// case), a single label value (H(label) = 0), and any non-finite
// observation (NaN/±Inf would otherwise poison the range and the binning
// arithmetic).
func BinnedMIChecked(obs []float64, labels []uint64, bins int) (mi float64, degenerate bool) {
	n := len(obs)
	if n == 0 || len(labels) != n || bins < 1 {
		return 0, true
	}
	lo, hi := obs[0], obs[0]
	for _, x := range obs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return 0, true
		}
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	if lo == hi {
		return 0, true // constant observation carries no information
	}
	distinct := map[uint64]bool{}
	for _, l := range labels {
		distinct[l] = true
	}
	if len(distinct) < 2 {
		return 0, true // a single label value: H(label) = 0 by definition
	}
	width := (hi - lo) / float64(bins)
	binOf := func(x float64) int {
		b := int((x - lo) / width)
		if b >= bins {
			b = bins - 1 // x == hi lands in the last bin
		}
		return b
	}
	// Joint counts: bin x label. The accumulation below iterates bins and
	// sorted labels — never a Go map — so the non-associative float sum is
	// bit-reproducible across processes (the distributed-vs-serial
	// byte-identity gates diff JSON containing this value).
	labelIdx := map[uint64]int{}
	var labelVals []uint64
	for _, l := range labels {
		if _, ok := labelIdx[l]; !ok {
			labelIdx[l] = 0
			labelVals = append(labelVals, l)
		}
	}
	sort.Slice(labelVals, func(i, j int) bool { return labelVals[i] < labelVals[j] })
	for i, l := range labelVals {
		labelIdx[l] = i
	}
	joint := make([]int, bins*len(labelVals))
	binCount := make([]int, bins)
	labelCount := make([]int, len(labelVals))
	for i, x := range obs {
		b, l := binOf(x), labelIdx[labels[i]]
		joint[b*len(labelVals)+l]++
		binCount[b]++
		labelCount[l]++
	}
	mi = 0.0
	fn := float64(n)
	for b := 0; b < bins; b++ {
		for l := range labelVals {
			c := joint[b*len(labelVals)+l]
			if c == 0 {
				continue
			}
			pxy := float64(c) / fn
			px := float64(binCount[b]) / fn
			py := float64(labelCount[l]) / fn
			mi += pxy * math.Log2(pxy/(px*py))
		}
	}
	if mi < 0 {
		mi = 0 // clamp float round-off on independent data
	}
	return mi, false
}

// WilsonInterval returns the Wilson score interval for a binomial success
// rate: successes k out of n trials at confidence z (1.96 for 95%). Unlike
// the normal approximation it stays inside [0,1] and behaves at k=0 and
// k=n — exactly the endpoints a perfect or chance-level attack hits.
func WilsonInterval(successes, n int, z float64) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	p := float64(successes) / float64(n)
	fn := float64(n)
	z2 := z * z
	denom := 1 + z2/fn
	center := (p + z2/(2*fn)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/fn+z2/(4*fn*fn))
	lo = math.Max(0, center-half)
	hi = math.Min(1, center+half)
	return lo, hi
}
