package victim

import "repro/internal/lang"

// The built-in victims. `bit` is the PR-4 victim extracted verbatim from
// the old fused attacker programs; `keyloop` and `modexp` are the
// multi-bit victims the key-extraction sweeps target; `ctcompare` is the
// constant-time negative control.
func init() {
	Register(bitVictim{})
	Register(keyloopVictim{})
	Register(modexpVictim{})
	Register(ctcompareVictim{})
}

// bitVictim is the direct register-bit victim: the attacked bit is loaded
// straight into the secret scalar `s`, with no surrounding computation.
// It is exactly the secret fragment of the PR-4 fused attacker programs
// (both of them — the two bespoke pairings shared it), so the legacy
// spectre/tvla sweeps build bit-identical programs through it.
type bitVictim struct{}

func (bitVictim) Name() string     { return "bit" }
func (bitVictim) Describe() string { return "direct one-bit secret, no surrounding computation" }
func (bitVictim) Leaky() bool      { return true }

func (bitVictim) Fragment(key uint64, w, bit int) Fragment {
	return Fragment{
		Vars: []*lang.VarDecl{{Name: "s", Init: int64((key >> bit) & 1), Secret: true}},
		Cond: lang.B(lang.And, lang.V("s"), lang.N(1)),
	}
}

func (bitVictim) KeyInits(key uint64, w, bit int, put func(name string, val int64)) {
	put("s", int64((key>>bit)&1))
}

// keyloopVictim models a W-bit key consumed bit-serially: each setup
// iteration branches on one earlier key bit and does asymmetric work on
// its accumulator — the generic shape of a bit-serial crypto loop. The
// attacked bit's condition is the loop's next bit test.
type keyloopVictim struct{}

func (keyloopVictim) Name() string { return "keyloop" }
func (keyloopVictim) Describe() string {
	return "bit-serial W-bit key loop, one secret branch per key bit"
}
func (keyloopVictim) Leaky() bool { return true }

func (keyloopVictim) Fragment(key uint64, w, bit int) Fragment {
	return Fragment{
		Vars: []*lang.VarDecl{
			{Name: "kk", Init: int64(key), Secret: true},
			{Name: "kb"},
			{Name: "kv"},
			{Name: "kacc", Init: 5},
		},
		Setup: []lang.Stmt{
			lang.Loop(lang.B(lang.Lt, lang.V("kb"), lang.N(int64(bit))), []lang.Stmt{
				lang.Set("kv", lang.B(lang.And, lang.B(lang.Shr, lang.V("kk"), lang.V("kb")), lang.N(1))),
				lang.SecretIf(lang.V("kv"),
					[]lang.Stmt{lang.Set("kacc", lang.B(lang.Add, lang.B(lang.Mul, lang.V("kacc"), lang.N(3)), lang.N(1)))},
					[]lang.Stmt{lang.Set("kacc", lang.B(lang.Add, lang.B(lang.Mul, lang.V("kacc"), lang.N(5)), lang.N(7)))}),
				lang.Set("kb", lang.B(lang.Add, lang.V("kb"), lang.N(1))),
			}),
		},
		Cond: lang.B(lang.And, lang.B(lang.Shr, lang.V("kk"), lang.N(int64(bit))), lang.N(1)),
	}
}

func (keyloopVictim) KeyInits(key uint64, w, bit int, put func(name string, val int64)) {
	put("kk", int64(key))
}

// modexpVictim is the paper's Fig. 1 motivating example as an attack
// victim: square-and-multiply modular exponentiation whose multiply step
// is guarded by the secret exponent bit (modeled on examples/rsa-modexp).
// Setup runs the loop over the already-recovered exponent bits — squares
// every bit, multiplies on the set ones — plus the attacked bit's square;
// the attacked condition is that bit's multiply guard.
type modexpVictim struct{}

func (modexpVictim) Name() string { return "modexp" }
func (modexpVictim) Describe() string {
	return "square-and-multiply modexp, multiply guarded by the exponent bit (paper Fig. 1)"
}
func (modexpVictim) Leaky() bool { return true }

func (modexpVictim) Fragment(key uint64, w, bit int) Fragment {
	square := lang.Set("mr", lang.B(lang.Rem, lang.B(lang.Mul, lang.V("mr"), lang.V("mr")), lang.V("mm")))
	return Fragment{
		Vars: []*lang.VarDecl{
			{Name: "me", Init: int64(key), Secret: true},
			{Name: "mr", Init: 1},
			{Name: "mbs", Init: 7},
			{Name: "mm", Init: 1000003},
			{Name: "mi"},
			{Name: "mbit"},
		},
		Setup: []lang.Stmt{
			lang.Loop(lang.B(lang.Lt, lang.V("mi"), lang.N(int64(bit))), []lang.Stmt{
				square,
				lang.Set("mbit", lang.B(lang.And, lang.B(lang.Shr, lang.V("me"), lang.V("mi")), lang.N(1))),
				lang.SecretIf(lang.V("mbit"),
					[]lang.Stmt{lang.Set("mr", lang.B(lang.Rem, lang.B(lang.Mul, lang.V("mr"), lang.V("mbs")), lang.V("mm")))},
					nil),
				lang.Set("mi", lang.B(lang.Add, lang.V("mi"), lang.N(1))),
			}),
			square, // the attacked bit's own square step
		},
		Cond: lang.B(lang.And, lang.B(lang.Shr, lang.V("me"), lang.N(int64(bit))), lang.N(1)),
	}
}

func (modexpVictim) KeyInits(key uint64, w, bit int, put func(name string, val int64)) {
	put("me", int64(key))
}

// ctcompareGuess is the public value the constant-time compare checks the
// key against (masked to the key width).
const ctcompareGuess = 0x5AA55AA5

// ctcompareVictim is the negative control: the constant-time comparison
// idiom from internal/workloads/ct.go (branch-free ct-selects, every bit
// read and combined regardless of value). Its secret never reaches a
// branch or an address, so its Cond is a public constant — the harness
// must report SECURE for it even on the unprotected baseline, which is
// what separates "the attack works" from "the harness sees ghosts".
type ctcompareVictim struct{}

func (ctcompareVictim) Name() string { return "ctcompare" }
func (ctcompareVictim) Describe() string {
	return "constant-time W-bit compare (negative control; expected SECURE everywhere)"
}
func (ctcompareVictim) Leaky() bool { return false }

func (ctcompareVictim) Fragment(key uint64, w, bit int) Fragment {
	guess := int64(ctcompareGuess & ((1 << uint(w)) - 1))
	return Fragment{
		Vars: []*lang.VarDecl{
			{Name: "ck", Init: int64(key), Secret: true},
			{Name: "cg", Init: guess},
			{Name: "cm", Init: 1},
			{Name: "ci"},
			{Name: "cb"},
		},
		Setup: []lang.Stmt{
			// The full-width compare runs whatever bit is under attack: a
			// constant-time victim's work does not depend on the attacker's
			// alignment. Every statement is branch-free (the ct.go mset
			// idiom), so its timing is identical for every key.
			lang.Loop(lang.B(lang.Lt, lang.V("ci"), lang.N(int64(w))), []lang.Stmt{
				lang.Set("cb", lang.B(lang.Xor,
					lang.B(lang.And, lang.B(lang.Shr, lang.V("ck"), lang.V("ci")), lang.N(1)),
					lang.B(lang.And, lang.B(lang.Shr, lang.V("cg"), lang.V("ci")), lang.N(1)))),
				lang.Set("cm", lang.B(lang.And, lang.V("cm"), lang.Sel(lang.V("cb"), lang.N(0), lang.N(1)))),
				lang.Set("ci", lang.B(lang.Add, lang.V("ci"), lang.N(1))),
			}),
		},
		// The compare's outcome is consumed branch-free: what reaches the
		// scaffold's conditional is a public constant, never the secret.
		Cond: lang.B(lang.And, lang.V("cm"), lang.N(0)),
	}
}

func (ctcompareVictim) KeyInits(key uint64, w, bit int, put func(name string, val int64)) {
	put("ck", int64(key))
}
