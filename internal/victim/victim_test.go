package victim

import (
	"testing"

	"repro/internal/lang"
)

func TestRegistry(t *testing.T) {
	want := []string{"bit", "ctcompare", "keyloop", "modexp"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
	for _, n := range want {
		v, err := Lookup(n)
		if err != nil {
			t.Fatal(err)
		}
		if v.Name() != n {
			t.Errorf("Lookup(%q).Name() = %q", n, v.Name())
		}
		if v.Describe() == "" {
			t.Errorf("%s has no description", n)
		}
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("Lookup accepted an unknown victim")
	}
}

func TestLeakyFlags(t *testing.T) {
	leaky := map[string]bool{"bit": true, "keyloop": true, "modexp": true, "ctcompare": false}
	for name, want := range leaky {
		v, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if v.Leaky() != want {
			t.Errorf("%s.Leaky() = %v, want %v", name, v.Leaky(), want)
		}
	}
}

// TestFragmentsValidate: every victim's fragment, wrapped in a minimal
// program shell with the scaffold's reserved names declared, passes lang
// validation — no undeclared references, no reserved-name collisions.
func TestFragmentsValidate(t *testing.T) {
	for _, v := range All() {
		for _, w := range []int{1, 4, 8, MaxWidth} {
			for _, bit := range []int{0, w / 2, w - 1} {
				key := uint64(0x5A5A5A5A) & (1<<uint(w) - 1)
				f := v.Fragment(key, w, bit)
				if f.Cond == nil {
					t.Fatalf("%s w=%d bit=%d: nil Cond", v.Name(), w, bit)
				}
				// Shell mimicking a scaffold: reserved scalars plus a body
				// consuming the condition.
				prog := &lang.Program{
					Name: "shell",
					Vars: append(append([]*lang.VarDecl{}, f.Vars...),
						&lang.VarDecl{Name: "c"}),
					Arrays: f.Arrays,
					Body: append(append([]lang.Stmt{}, f.Setup...),
						lang.Set("c", f.Cond)),
				}
				if err := prog.Validate(); err != nil {
					t.Errorf("%s w=%d bit=%d: %v", v.Name(), w, bit, err)
				}
			}
		}
	}
}

// TestFragmentAvoidsReservedNames pins the registry-time check directly.
func TestFragmentAvoidsReservedNames(t *testing.T) {
	reserved := map[string]bool{}
	for _, n := range ReservedNames() {
		reserved[n] = true
	}
	for _, v := range All() {
		f := v.Fragment(5, 4, 1)
		for _, d := range f.Vars {
			if reserved[d.Name] {
				t.Errorf("%s declares reserved scalar %q", v.Name(), d.Name)
			}
		}
		for _, a := range f.Arrays {
			if reserved[a.Name] {
				t.Errorf("%s declares reserved array %q", v.Name(), a.Name)
			}
		}
	}
}

// TestSecretDeclared: every leaky victim must mark a secret scalar (the
// taint tracker and the SeMPE compiler key off it); the negative control
// marks its key secret too — constant-time code still holds a secret, it
// just never branches on it.
func TestSecretDeclared(t *testing.T) {
	for _, v := range All() {
		f := v.Fragment(3, 4, 1)
		found := false
		for _, d := range f.Vars {
			if d.Secret {
				found = true
			}
		}
		if !found {
			t.Errorf("%s declares no secret scalar", v.Name())
		}
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	Register(bitVictim{})
}
