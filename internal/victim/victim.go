// Package victim defines the secret-parameterised victims the attack lab
// (internal/attack) runs its attackers against. PR 4 fused the victim into
// each attacker program — a hard-coded one-bit secret branch inside the
// Spectre-PHT probe and a one-bit secret-selected load inside the
// prime+probe protocol — which limited the lab to single-bit recovery.
// This package tears the victim out: a Victim builds the secret-dependent
// program fragment in the lang DSL for one attacked bit of a W-bit key,
// and the attacker scaffolds (internal/attack's bp/cache program builders)
// wrap that fragment in their measurement protocol. Any victim composes
// with any attacker, and multi-bit key extraction (attack.ExtractKey)
// walks the key bit by bit, handing each victim the attacker's
// already-recovered prefix — the classic Spectre/modexp extraction loop
// (Kocher et al., "Spectre Attacks"; Chowdhuryy & Yao, "Leaking Secrets
// through Modern Branch Predictors").
//
// The contract between a victim and a scaffold:
//
//   - The fragment's Setup statements run once, before the attacker's
//     protocol starts (before the prime phase, before the probe loop), and
//     may contain their own secret branches — a realistic victim computes
//     on the earlier key bits before reaching the attacked one. Those
//     branches sit at their own static PCs, outside the measured windows.
//   - Cond is the victim's natural condition for the attacked bit: an
//     expression evaluating to 0 or 1 that the victim's secret-dependent
//     action branches on. The scaffold places the branch (or the
//     secret-selected load) at its measured PC and substitutes a known
//     input on probe re-executions. A constant-time victim returns a
//     public Cond — its secret never reaches any branch — which is what
//     makes it a negative control.
//   - Victims must not declare the scaffold's reserved names (see
//     ReservedNames); lang.Program.Validate rejects collisions loudly at
//     trial-build time.
//
// The measured branch's two path bodies belong to the scaffold, not the
// victim, and are instruction-for-instruction symmetric: the lab isolates
// the predictor/cache direction channel, and path-length asymmetry (SeMPE's
// other channel) is covered by the leakmatrix scenario.
package victim

import (
	"fmt"
	"sort"

	"repro/internal/lang"
)

// MaxWidth bounds the key width. Scalar initializers lower to a single
// OpLi whose immediate is a sign-extended 32 bits, so keys up to 31 bits
// keep the program layout independent of the key value (and a uint64 key
// below 2^31 survives a JSON number round trip exactly).
const MaxWidth = 31

// Fragment is a victim's contribution to one attack trial: declarations,
// setup statements, and the attacked bit's condition expression.
type Fragment struct {
	// Vars declares the victim's scalars, the secret key among them. They
	// are allocated before the scaffold's own scalars.
	Vars []*lang.VarDecl
	// Arrays declares the victim's data arrays. They are placed after the
	// scaffold's arrays, so they can never disturb the attacker's cache-set
	// layout (the marker line, the prime+probe conflict regions).
	Arrays []*lang.ArrayDecl
	// Setup runs once, before the attacker's protocol.
	Setup []lang.Stmt
	// Cond evaluates to bit `bit` of the key — or to a public value, for a
	// constant-time victim whose secret never reaches a branch.
	Cond lang.Expr
}

// Victim builds the secret-dependent fragment of an attack trial.
type Victim interface {
	// Name is the registry key ("keyloop", "modexp", ...).
	Name() string
	// Describe is the one-line description shown by -list style output.
	Describe() string
	// Leaky reports whether the victim's secret-dependent behavior is
	// observable at all: false for constant-time negative controls, whose
	// expected verdict is SECURE even on the unprotected baseline.
	Leaky() bool
	// Fragment builds the victim's fragment for attacking bit `bit`
	// (0-based, LSB first) of the w-bit key. Callers guarantee
	// 0 <= bit < w <= MaxWidth and key < 1<<w.
	Fragment(key uint64, w, bit int) Fragment
}

// KeyInits is the optional capability contract behind the attack lab's
// compile-memoization fast path. A victim implementing it guarantees that
// for fixed (w, bit) its Fragment is STRUCTURALLY identical for every key —
// same declarations in the same order, same statements, same condition —
// with the key reaching the program only through the Init values of the
// scalars reported here. KeyInits reports those (name, value) pairs for a
// given key via put; every scalar it does not report has a key-independent
// Init. The attack drivers compile one template per (victim, w, bit, ...)
// shape and patch only these slots per trial; victims that do not implement
// the interface (or violate the contract, which the patched-vs-fresh
// byte-equality test in internal/attack pins) take the full per-trial
// compilation path instead.
type KeyInits interface {
	KeyInits(key uint64, w, bit int, put func(name string, val int64))
}

// ReservedNames are the scaffold-owned declaration names a victim fragment
// must avoid. The list is shared with internal/attack's program builders;
// a collision fails lang validation when the trial program is built.
func ReservedNames() []string {
	return []string{
		"i", "c", "gi", "acc", "nv", "vv", "p1", "p2", // measurement scaffolds
		"gv", "gj", "gl", "ga", // gap-noise activity
		"mrk", "parr", "gna", // marker, conflict, and gap arrays
	}
}

var registry = map[string]Victim{}

// Register adds a victim to the registry; duplicate names and fragments
// that declare reserved names panic at init time, when the mistake is a
// code bug rather than user input.
func Register(v Victim) {
	if _, dup := registry[v.Name()]; dup {
		panic(fmt.Sprintf("victim: duplicate registration %q", v.Name()))
	}
	reserved := map[string]bool{}
	for _, n := range ReservedNames() {
		reserved[n] = true
	}
	f := v.Fragment((1<<4)-1, 4, 2) // a representative fragment
	for _, d := range f.Vars {
		if reserved[d.Name] {
			panic(fmt.Sprintf("victim %q declares reserved name %q", v.Name(), d.Name))
		}
	}
	for _, a := range f.Arrays {
		if reserved[a.Name] {
			panic(fmt.Sprintf("victim %q declares reserved array %q", v.Name(), a.Name))
		}
	}
	registry[v.Name()] = v
}

// Lookup resolves a victim by name.
func Lookup(name string) (Victim, error) {
	v, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("victim: unknown victim %q (have %v)", name, Names())
	}
	return v, nil
}

// Names lists the registered victims, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// All returns every registered victim in Names order.
func All() []Victim {
	var out []Victim
	for _, n := range Names() {
		out = append(out, registry[n])
	}
	return out
}
