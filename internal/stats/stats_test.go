package stats

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := &Table{
		Title:  "demo",
		Header: []string{"name", "value"},
	}
	tb.AddRow("alpha", Int(1))
	tb.AddRow("beta-long-name", Int(22222))
	tb.AddNote("a %s note", "formatted")
	var sb strings.Builder
	tb.Render(&sb)
	out := sb.String()
	for _, want := range []string{"demo", "====", "alpha", "beta-long-name", "note: a formatted note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Columns align: the header and first row start the value column at the
	// same offset.
	lines := strings.Split(out, "\n")
	hdr, row := lines[2], lines[4]
	if strings.Index(hdr, "value") != strings.Index(row+"     1", "1")-0 && !strings.Contains(row, "1") {
		t.Errorf("alignment off:\n%s", out)
	}
}

func TestFormatters(t *testing.T) {
	if got := Ratio(10.625).String(); got != "10.62x" && got != "10.63x" {
		t.Errorf("Ratio = %q", got)
	}
	if got := Percent(0.421).String(); got != "42.1%" {
		t.Errorf("Percent = %q", got)
	}
	if got := Float(3.14159, 3).String(); got != "3.142" {
		t.Errorf("Float = %q", got)
	}
	if got := Int(99).String(); got != "99" {
		t.Errorf("Int = %q", got)
	}
	if got := Str("plain").String(); got != "plain" {
		t.Errorf("Str = %q", got)
	}
}

// TestJSONRoundTrip: a table survives JSON encoding bit-exactly — the
// property the golden-file tests and sempe-serve rely on.
func TestJSONRoundTrip(t *testing.T) {
	tb := &Table{
		Title:  "round trip",
		Header: []string{"workload", "cycles", "slowdown", "miss", "cpi"},
	}
	tb.AddRow("fibonacci", Int(123456789), Ratio(1.9), Percent(0.042), Float(0.731, 3))
	tb.AddRow("queens", Int(0), Ratio(10.6), Percent(0), Float(1.25, 2))
	tb.AddNote("note line")

	var sb strings.Builder
	if err := tb.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var back Table
	if err := json.Unmarshal([]byte(sb.String()), &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tb, &back) {
		t.Errorf("round trip mismatch:\nin:  %+v\nout: %+v", tb, &back)
	}
}

// TestCSV: CSV carries machine values (raw fractions and multipliers), not
// display strings.
func TestCSV(t *testing.T) {
	tb := &Table{
		Title:  "csv demo",
		Header: []string{"name", "ratio", "pct"},
	}
	tb.AddRow("a,b", Ratio(1.9), Percent(0.421))
	tb.AddNote("footnote")
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# csv demo\n",
		"name,ratio,pct\n",
		"\"a,b\",1.9,0.421\n", // quoting + raw values
		"# note: footnote\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("csv missing %q:\n%s", want, out)
		}
	}
}

func TestAddRowRejectsUnknownTypes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AddRow accepted an int; want panic")
		}
	}()
	(&Table{}).AddRow(42)
}
