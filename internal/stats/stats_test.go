package stats

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := &Table{
		Title:  "demo",
		Header: []string{"name", "value"},
	}
	tb.AddRow("alpha", "1")
	tb.AddRow("beta-long-name", "22222")
	tb.AddNote("a %s note", "formatted")
	var sb strings.Builder
	tb.Render(&sb)
	out := sb.String()
	for _, want := range []string{"demo", "====", "alpha", "beta-long-name", "note: a formatted note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Columns align: the header and first row start the value column at the
	// same offset.
	lines := strings.Split(out, "\n")
	hdr, row := lines[2], lines[4]
	if strings.Index(hdr, "value") != strings.Index(row+"     1", "1")-0 && !strings.Contains(row, "1") {
		t.Errorf("alignment off:\n%s", out)
	}
}

func TestFormatters(t *testing.T) {
	if Ratio(10.625) != "10.62x" && Ratio(10.625) != "10.63x" {
		t.Errorf("Ratio = %q", Ratio(10.625))
	}
	if Percent(0.421) != "42.1%" {
		t.Errorf("Percent = %q", Percent(0.421))
	}
	if Float(3.14159, 3) != "3.142" {
		t.Errorf("Float = %q", Float(3.14159, 3))
	}
	if Int(99) != "99" {
		t.Errorf("Int = %q", Int(99))
	}
}
