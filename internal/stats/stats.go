// Package stats provides the reporting layer shared by the experiment
// scenarios, the cmd tools, and the benchmark harness: titled tables whose
// cells are typed values (not pre-formatted strings), with text, JSON, and
// CSV renderers. The text renderer reproduces the rows/series the paper's
// tables and figures report; the JSON and CSV encoders expose the same
// results to machines (sempe-serve, notebooks, diffing golden files).
package stats

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Kind classifies a table cell's value.
type Kind string

// Cell kinds. The distinction matters to the renderers: text output formats
// a ratio as "10.60x" and a percent as "42.3%", while CSV and JSON carry the
// underlying number so downstream tooling never has to parse display
// strings.
const (
	KindText    Kind = "text"
	KindInt     Kind = "int"
	KindFloat   Kind = "float"
	KindRatio   Kind = "ratio"   // slowdown/overhead multiplier
	KindPercent Kind = "percent" // fraction of 1.0
)

// Cell is one typed table cell. Exactly one of Text, Int, or Num is
// meaningful, selected by Kind; Prec is the display precision for KindFloat.
// The zero Cell renders as empty text. Cells round-trip through
// encoding/json unchanged.
type Cell struct {
	Kind Kind    `json:"kind"`
	Text string  `json:"text,omitempty"`
	Int  uint64  `json:"int,omitempty"`
	Num  float64 `json:"num,omitempty"`
	Prec int     `json:"prec,omitempty"`
}

// Str makes a text cell.
func Str(s string) Cell { return Cell{Kind: KindText, Text: s} }

// Int formats an integer count.
func Int(v uint64) Cell { return Cell{Kind: KindInt, Int: v} }

// Float carries a float rendered with a fixed precision.
func Float(v float64, prec int) Cell { return Cell{Kind: KindFloat, Num: v, Prec: prec} }

// Ratio carries a slowdown/overhead multiplier, rendered like the paper
// ("10.60x").
func Ratio(v float64) Cell { return Cell{Kind: KindRatio, Num: v} }

// Percent carries a fraction of 1.0, rendered as a percentage ("42.3%").
func Percent(v float64) Cell { return Cell{Kind: KindPercent, Num: v} }

// String renders the cell for the text table.
func (c Cell) String() string {
	switch c.Kind {
	case KindInt:
		return strconv.FormatUint(c.Int, 10)
	case KindFloat:
		return strconv.FormatFloat(c.Num, 'f', c.Prec, 64)
	case KindRatio:
		return fmt.Sprintf("%.2fx", c.Num)
	case KindPercent:
		return fmt.Sprintf("%.1f%%", 100*c.Num)
	}
	return c.Text
}

// csvValue renders the cell's machine-readable form: the raw number for
// numeric kinds (a percent cell carries the fraction, not the scaled
// display value) and the text otherwise.
func (c Cell) csvValue() string {
	switch c.Kind {
	case KindInt:
		return strconv.FormatUint(c.Int, 10)
	case KindFloat, KindRatio, KindPercent:
		return strconv.FormatFloat(c.Num, 'g', -1, 64)
	}
	return c.Text
}

// Table is a titled table of typed cells.
type Table struct {
	Title  string   `json:"title"`
	Header []string `json:"header"`
	Rows   [][]Cell `json:"rows"`
	Notes  []string `json:"notes,omitempty"`
}

// AddRow appends a row. Each cell may be a Cell or a plain string (kept for
// call-site readability: most label columns are strings).
func (t *Table) AddRow(cells ...any) {
	row := make([]Cell, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case Cell:
			row[i] = v
		case string:
			row[i] = Str(v)
		default:
			panic(fmt.Sprintf("stats: AddRow cell %d: unsupported type %T", i, c))
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a footnote line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n%s\n", t.Title, strings.Repeat("=", len(t.Title)))
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	text := make([][]string, len(t.Rows))
	for r, row := range t.Rows {
		text[r] = make([]string, len(row))
		for i, c := range row {
			text[r][i] = c.String()
			if i < len(widths) && len(text[r][i]) > widths[i] {
				widths[i] = len(text[r][i])
			}
		}
	}
	line := func(cells []string) {
		var parts []string
		for i, c := range cells {
			if i < len(widths) {
				parts = append(parts, pad(c, widths[i]))
			} else {
				parts = append(parts, c)
			}
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	var sep []string
	for _, wd := range widths {
		sep = append(sep, strings.Repeat("-", wd))
	}
	line(sep)
	for _, row := range text {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// WriteJSON writes the table as an indented JSON document.
func (t *Table) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// WriteCSV writes the table as CSV: a `# title` pragma line, the header
// row, then one record per row carrying machine-readable values (numbers,
// not display strings). Notes are appended as `# note:` pragma lines.
func (t *Table) WriteCSV(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "# %s\n", t.Title); err != nil {
			return err
		}
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	rec := make([]string, 0, len(t.Header))
	for _, row := range t.Rows {
		rec = rec[:0]
		for _, c := range row {
			rec = append(rec, c.csvValue())
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "# note: %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
