// Package stats provides small reporting helpers: text tables matching the
// rows/series the paper's tables and figures report, and formatting
// utilities shared by the cmd tools and the benchmark harness.
package stats

import (
	"fmt"
	"io"
	"strings"
)

// Table is a titled text table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a footnote line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n%s\n", t.Title, strings.Repeat("=", len(t.Title)))
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		var parts []string
		for i, c := range cells {
			if i < len(widths) {
				parts = append(parts, pad(c, widths[i]))
			} else {
				parts = append(parts, c)
			}
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	var sep []string
	for _, wd := range widths {
		sep = append(sep, strings.Repeat("-", wd))
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Ratio formats a slowdown/overhead multiplier like the paper ("10.6x").
func Ratio(v float64) string { return fmt.Sprintf("%.2fx", v) }

// Percent formats a fraction as a percentage ("42.3%").
func Percent(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// Float formats with a fixed precision.
func Float(v float64, prec int) string { return fmt.Sprintf("%.*f", prec, v) }

// Int formats an integer count.
func Int(v uint64) string { return fmt.Sprintf("%d", v) }
