package emu

import (
	"errors"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
)

func TestLegacyIgnoresSecureInstructions(t *testing.T) {
	prog := asm.MustAssemble(`
		main:
			li   r8, 1
			sbne r8, rz, t
			li   r9, 100
			jmp  j
		t:
			li   r9, 200
		j:
			eosjmp
			halt
	`)
	m := New(Legacy, prog)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Regs[9] != 200 {
		t.Errorf("r9 = %d, want 200 (taken path only)", m.Regs[9])
	}
	if m.SJmps != 0 || m.EOSJmps != 0 {
		t.Errorf("legacy mode counted secure instructions: %d %d", m.SJmps, m.EOSJmps)
	}
}

func TestSeMPEExecutesBothPathsNTFirst(t *testing.T) {
	// Both paths increment a shared memory counter; the NT path must run
	// first (its write lands first), and the register state must reflect
	// only the true path.
	prog := asm.MustAssemble(`
		.data order 32
		main:
			li   r8, 1          ; secret: taken
			la   r13, order
			li   r14, 0         ; write cursor (register, restored by HW)
			sbne r8, rz, t
			li   r9, 111        ; NT path marker
			st   r9, [r13+0]
			jmp  j
		t:
			li   r9, 222        ; T path marker
			st   r9, [r13+8]
		j:
			eosjmp
			halt
	`)
	m := New(SeMPE, prog)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	// Both stores happened (both paths executed).
	if m.Mem.Read64(prog.Sym("order")) != 111 || m.Mem.Read64(prog.Sym("order")+8) != 222 {
		t.Error("both paths should have stored their markers")
	}
	// r9 holds the true-path (taken) value after the ArchRS restore.
	if m.Regs[9] != 222 {
		t.Errorf("r9 = %d, want 222", m.Regs[9])
	}
	if m.SJmps != 1 || m.EOSJmps != 2 {
		t.Errorf("sjmp=%d eosjmp=%d", m.SJmps, m.EOSJmps)
	}
}

func TestSeMPERegisterRestoreNotTaken(t *testing.T) {
	prog := asm.MustAssemble(`
		main:
			li   r8, 0          ; secret: not taken
			li   r9, 7          ; live-in
			sbne r8, rz, t
			addi r10, r9, 1     ; NT: r10 = 8
			jmp  j
		t:
			addi r10, r9, 2     ; T: r10 = 9
			li   r9, 42         ; T also clobbers r9
		j:
			eosjmp
			halt
	`)
	m := New(SeMPE, prog)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Regs[10] != 8 {
		t.Errorf("r10 = %d, want 8 (NT path is the true path)", m.Regs[10])
	}
	if m.Regs[9] != 7 {
		t.Errorf("r9 = %d, want 7 (T-path clobber must be rolled back)", m.Regs[9])
	}
}

func TestEOSJmpWithoutSJmpFails(t *testing.T) {
	prog := asm.MustAssemble(`
		main:
			eosjmp
			halt
	`)
	m := New(SeMPE, prog)
	if err := m.Run(); !errors.Is(err, ErrJbUnder) {
		t.Errorf("err = %v, want ErrJbUnder", err)
	}
	// On a legacy machine the same binary just runs (eosjmp is a NOP).
	l := New(Legacy, prog)
	if err := l.Run(); err != nil {
		t.Errorf("legacy: %v", err)
	}
}

func TestInstructionBudget(t *testing.T) {
	prog := asm.MustAssemble(`
		main:
		loop:
			jmp loop
	`)
	m := New(Legacy, prog)
	m.MaxInsts = 1000
	if err := m.Run(); !errors.Is(err, ErrBudget) {
		t.Errorf("err = %v, want ErrBudget", err)
	}
}

func TestDeepNestingOverflow(t *testing.T) {
	// 31 nested sJMPs exceed the 30 SPM slots.
	b := asm.NewBuilder()
	b.Label("main")
	b.Emit(isa.Inst{Op: isa.OpLi, Rd: 8, Imm: 1})
	for i := 0; i < 31; i++ {
		lbl := b.FreshLabel("t")
		b.EmitRef(isa.Inst{Op: isa.OpBne, Ra: 8, Rb: 0, Secure: true}, lbl)
		b.Label(lbl) // empty NT path falling straight into the taken label
	}
	for i := 0; i < 31; i++ {
		b.Emit(isa.Inst{Op: isa.OpNop, Secure: true})
	}
	b.Emit(isa.Inst{Op: isa.OpHalt})
	prog, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	m := New(SeMPE, prog)
	if err := m.Run(); !errors.Is(err, ErrNestDepth) {
		t.Errorf("err = %v, want ErrNestDepth", err)
	}
}

func TestStepAfterHaltIsNoop(t *testing.T) {
	prog := asm.MustAssemble("main:\n halt")
	m := New(Legacy, prog)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	insts := m.Insts
	if err := m.Step(); err != nil || m.Insts != insts {
		t.Error("Step after halt executed something")
	}
}

func TestNestDepthTracking(t *testing.T) {
	prog := asm.MustAssemble(`
		main:
			li   r8, 1
			sbne r8, rz, t1
			jmp  j1
		t1:
			sbne r8, rz, t2
			jmp  j2
		t2:
			nop
		j2:
			eosjmp
		j1:
			eosjmp
			halt
	`)
	m := New(SeMPE, prog)
	maxDepth := 0
	for !m.Halted() {
		if err := m.Step(); err != nil {
			t.Fatal(err)
		}
		if d := m.NestDepth(); d > maxDepth {
			maxDepth = d
		}
	}
	if maxDepth != 2 {
		t.Errorf("max nest depth = %d, want 2", maxDepth)
	}
	if m.NestDepth() != 0 {
		t.Errorf("final nest depth = %d, want 0", m.NestDepth())
	}
}
