// Package emu implements an architectural (functional, 1-instruction-per-step)
// reference interpreter for the simulated ISA. It serves as the golden model
// for the cycle-level out-of-order core: on any program both machines must
// produce identical final registers and memory.
//
// The emulator supports two modes:
//
//   - Legacy: SecPrefix bytes are ignored, so sJMP is an ordinary branch and
//     eosJMP is a NOP. This is how a SeMPE binary behaves on a non-SeMPE core
//     (backward compatibility, paper §IV-C).
//   - SeMPE: sJMP executes both paths sequentially (not-taken first), eosJMP
//     jumps back, and the ArchRS mechanism snapshots and restores
//     architectural registers around the two paths (paper §IV-E/F).
package emu

import (
	"errors"
	"fmt"

	"repro/internal/isa"
	"repro/internal/mem"
)

// Mode selects how secure instructions are interpreted.
type Mode int

// Execution modes.
const (
	Legacy Mode = iota // ignore SecPrefix (baseline architecture)
	SeMPE              // dual-path secure execution
)

func (m Mode) String() string {
	if m == SeMPE {
		return "sempe"
	}
	return "legacy"
}

// Machine is a functional processor instance.
type Machine struct {
	Mode Mode
	Mem  *mem.Memory
	Regs [isa.NumArchRegs]uint64
	PC   uint64

	// OverflowNonSecure selects the paper's permissive overflow policy
	// (§IV-E): when secure nesting exceeds the SPM snapshot slots, the
	// exception handler continues executing the branch as non-secure
	// (single path, no protection) instead of terminating. Downgraded
	// regions are counted in NestOverflows.
	OverflowNonSecure bool
	NestOverflows     uint64
	ovfDepth          int // live downgraded regions (LIFO inside the secure nest)

	// Secure-execution state (SeMPE mode).
	jb      []jbEntry
	spm     *mem.SPM
	inTPath []bool // scratch for SPM.MarkModified, indexed by nesting level

	// Instruction budget guard against runaway programs.
	MaxInsts uint64

	// Statistics.
	Insts    uint64 // committed instructions
	SJmps    uint64 // sJMP instructions executed
	EOSJmps  uint64 // eosJMP instructions executed
	Branches uint64

	halted bool
}

// jbEntry mirrors one Jump-Back Table row: the sJMP destination address, the
// real branch outcome (T/NT), and the jump-back bit.
type jbEntry struct {
	target uint64
	taken  bool
	jb     bool
}

// Errors reported by Run.
var (
	ErrBudget    = errors.New("emu: instruction budget exhausted")
	ErrJbUnder   = errors.New("emu: eosJMP with empty jbTable")
	ErrNestDepth = errors.New("emu: secure nesting exceeds SPM slots")
)

// New creates a machine executing prog in the given mode on a fresh memory.
func New(mode Mode, prog *isa.Program) *Machine {
	m := &Machine{
		Mode:     mode,
		Mem:      mem.NewMemory(),
		PC:       prog.Entry,
		MaxInsts: 1 << 32,
		spm:      mem.NewSPM(mem.DefaultSPMConfig()),
	}
	m.Mem.Load(prog)
	m.Regs[isa.SP] = isa.DefaultStackTop
	return m
}

// NewOnMemory creates a machine running on an existing memory image.
func NewOnMemory(mode Mode, memory *mem.Memory, entry uint64) *Machine {
	m := &Machine{
		Mode:     mode,
		Mem:      memory,
		PC:       entry,
		MaxInsts: 1 << 32,
		spm:      mem.NewSPM(mem.DefaultSPMConfig()),
	}
	m.Regs[isa.SP] = isa.DefaultStackTop
	return m
}

// Halted reports whether the program has executed HALT.
func (m *Machine) Halted() bool { return m.halted }

// NestDepth returns the current secure-branch nesting depth.
func (m *Machine) NestDepth() int { return len(m.jb) }

// Run executes until HALT or error.
func (m *Machine) Run() error {
	for !m.halted {
		if err := m.Step(); err != nil {
			return err
		}
	}
	return nil
}

// Step executes one instruction.
func (m *Machine) Step() error {
	if m.halted {
		return nil
	}
	if m.Insts >= m.MaxInsts {
		return fmt.Errorf("%w (%d)", ErrBudget, m.MaxInsts)
	}
	in, size, err := m.fetch()
	if err != nil {
		return err
	}
	m.Insts++
	next := m.PC + uint64(size)

	secure := m.Mode == SeMPE
	switch {
	case in.Op == isa.OpHalt:
		m.halted = true
		m.PC = next
		return nil
	case in.IsEOSJmp() && secure:
		return m.stepEOSJmp(next)
	case in.IsSJmp() && secure:
		return m.stepSJmp(in, next)
	case in.Op == isa.OpNop:
		m.PC = next
		return nil
	case in.Op.IsBranch():
		m.Branches++
		if isa.BranchTaken(in.Op, m.Regs[in.Ra], m.Regs[in.Rb]) {
			m.PC += uint64(in.Imm)
		} else {
			m.PC = next
		}
		return nil
	case in.Op == isa.OpJmp:
		m.PC += uint64(in.Imm)
		return nil
	case in.Op == isa.OpJal:
		m.writeReg(in.Rd, next)
		m.PC += uint64(in.Imm)
		return nil
	case in.Op == isa.OpJalr:
		target := m.Regs[in.Ra] + uint64(in.Imm)
		m.writeReg(in.Rd, next)
		m.PC = target
		return nil
	case in.Op.ClassOf() == isa.ClassLoad:
		addr := isa.MemAddr(in, m.Regs[in.Ra])
		var v uint64
		if in.Op == isa.OpLd {
			v = m.Mem.Read64(addr)
		} else {
			v = uint64(m.Mem.Read8(addr))
		}
		m.writeReg(in.Rd, v)
		m.PC = next
		return nil
	case in.Op.ClassOf() == isa.ClassStore:
		addr := isa.MemAddr(in, m.Regs[in.Ra])
		if in.Op == isa.OpSt {
			m.Mem.Write64(addr, m.Regs[in.Rd])
		} else {
			m.Mem.Write8(addr, byte(m.Regs[in.Rd]))
		}
		m.PC = next
		return nil
	default:
		v, ok := isa.EvalALU(in, m.Regs[in.Ra], m.Regs[in.Rb], m.Regs[in.Rd])
		if !ok {
			return fmt.Errorf("emu: unimplemented opcode %v at pc=%#x", in.Op, m.PC)
		}
		m.writeReg(in.Rd, v)
		m.PC = next
		return nil
	}
}

// stepSJmp implements the secure jump: evaluate the real outcome, push a
// jbTable entry with the branch destination, snapshot the architectural
// registers, and always fall through to the not-taken path first, so the
// fetch stream is independent of the secret.
func (m *Machine) stepSJmp(in isa.Inst, next uint64) error {
	m.SJmps++
	m.Branches++
	taken := isa.BranchTaken(in.Op, m.Regs[in.Ra], m.Regs[in.Rb])
	target := m.PC + uint64(in.Imm)
	if m.ovfDepth > 0 || len(m.jb) >= m.spm.Slots() {
		// Nesting exceeded the SPM slots (or we are already inside a
		// downgraded region, whose nested secure branches cannot snapshot
		// either). Either fault or fall back to ordinary single-path
		// execution, per the configured policy.
		if !m.OverflowNonSecure {
			return fmt.Errorf("%w: depth %d", ErrNestDepth, len(m.jb))
		}
		m.NestOverflows++
		m.ovfDepth++
		if taken {
			m.PC = target
		} else {
			m.PC = next
		}
		return nil
	}
	if _, err := m.spm.PushInitial(&m.Regs); err != nil {
		return err
	}
	m.jb = append(m.jb, jbEntry{target: target, taken: taken})
	m.PC = next // NT path always first
	return nil
}

// stepEOSJmp implements the End-of-SecureJump marker. First commit: save the
// NT-modified registers, restore the initial state, and jump back to the
// taken-path target. Second commit: restore the correct final state per the
// branch outcome and pop the entry.
func (m *Machine) stepEOSJmp(next uint64) error {
	m.EOSJmps++
	if m.ovfDepth > 0 {
		// The innermost live region was downgraded to non-secure: its
		// single executed path reaches the join marker exactly once, and
		// the marker degenerates to a NOP. LIFO nesting guarantees this
		// eosJMP belongs to the downgraded region.
		m.ovfDepth--
		m.PC = next
		return nil
	}
	if len(m.jb) == 0 {
		return fmt.Errorf("%w at pc=%#x", ErrJbUnder, m.PC)
	}
	top := &m.jb[len(m.jb)-1]
	if !top.jb {
		restore, mask, _ := m.spm.EndNTPath(&m.Regs)
		applyMasked(&m.Regs, &restore, mask)
		top.jb = true
		m.PC = top.target
		return nil
	}
	final, mask, _ := m.spm.EndTPath(top.taken, &m.Regs)
	applyMasked(&m.Regs, &final, mask)
	m.jb = m.jb[:len(m.jb)-1]
	m.PC = next
	return nil
}

func applyMasked(dst, src *[isa.NumArchRegs]uint64, mask uint64) {
	for r := 0; r < isa.NumArchRegs; r++ {
		if mask&(1<<uint(r)) != 0 {
			dst[r] = src[r]
		}
	}
}

// writeReg writes an architectural register, honoring the hardwired zero and
// informing the SPM modified-register tracking when inside a SecBlock.
func (m *Machine) writeReg(r isa.Reg, v uint64) {
	if r == isa.RZ {
		return
	}
	m.Regs[r] = v
	if m.Mode == SeMPE && len(m.jb) > 0 {
		m.inTPath = m.inTPath[:0]
		for i := range m.jb {
			// jb set => executing the T path of level i.
			m.inTPath = append(m.inTPath, m.jb[i].jb)
		}
		m.spm.MarkModified(r, m.inTPath)
	}
}

func (m *Machine) fetch() (isa.Inst, int, error) {
	// Instructions are read through memory so self-checking programs and the
	// leak infrastructure see one consistent address space.
	var buf [12]byte
	for i := range buf {
		buf[i] = m.Mem.Read8(m.PC + uint64(i))
	}
	in, size, err := isa.Decode(buf[:], 0)
	if err != nil {
		return in, 0, fmt.Errorf("emu: decode at pc=%#x: %w", m.PC, err)
	}
	return in, size, nil
}
