// Package isa defines the instruction set architecture simulated by this
// repository: a compact 64-bit load/store ISA with an x86-style prefix-byte
// mechanism that encodes SeMPE's secure-execution extensions.
//
// The SeMPE paper (Mondelli et al., DAC 2021) extends x86_64 by reusing the
// 0x2E branch-hint prefix: a conditional branch carrying the prefix becomes a
// Secure Jump (sJMP), and the two-byte sequence prefix+NOP becomes the
// End-of-Secure-Jump (eosJMP) marker. Legacy cores ignore the prefix, so the
// same binary runs unmodified (without security guarantees) on a baseline
// machine. This package reproduces exactly that property: Decode returns the
// same instruction with Secure=true when the prefix is present, and a
// baseline core is free to ignore the flag.
//
// Instruction formats:
//
//	1 byte : NOP, HALT
//	8 bytes: op(1) rd(1) ra(1) rb(1) imm(4, little-endian int32)
//
// A SecPrefix byte (0x2E) may precede any instruction and adds one byte to
// its encoded length.
package isa

import "fmt"

// NumArchRegs is the number of architectural integer registers. The paper
// models 48 architectural registers (AMD64 GPRs + extensions); ArchRS
// snapshots save exactly this set.
const NumArchRegs = 48

// Reg identifies an architectural register, 0 <= Reg < NumArchRegs.
type Reg uint8

// Register conventions used by the assembler and compiler.
const (
	RZ Reg = 0 // hardwired zero
	LR Reg = 1 // link register (JAL/JALR)
	SP Reg = 2 // stack pointer
	// R3..R7 are compiler temporaries; R8..R47 are allocatable.
)

// String returns the assembler name of the register.
func (r Reg) String() string {
	switch r {
	case RZ:
		return "rz"
	case LR:
		return "lr"
	case SP:
		return "sp"
	default:
		return fmt.Sprintf("r%d", uint8(r))
	}
}

// SecPrefix is the byte that marks an instruction as secure. It mirrors the
// paper's reuse of the x86 0x2E static branch-hint prefix: meaningless on a
// baseline core, it turns a branch into sJMP and a NOP into eosJMP on a
// SeMPE core.
const SecPrefix byte = 0x2E

// Op is an opcode. The NOP opcode is 0x90 to mirror the x86 single-byte NOP,
// preserving the paper's "eosJMP = bytes 0x2E,0x90" encoding story.
type Op uint8

// Opcodes. Gaps are reserved; 0x2E is never an opcode (it is the SecPrefix).
const (
	OpInvalid Op = 0x00
	OpHalt    Op = 0x01 // stop execution (1-byte encoding)

	// Register-register ALU: rd = ra <op> rb.
	OpAdd  Op = 0x10
	OpSub  Op = 0x11
	OpMul  Op = 0x12
	OpDiv  Op = 0x13 // signed; div-by-zero yields -1 (non-trapping)
	OpRem  Op = 0x14 // signed; rem-by-zero yields dividend
	OpAnd  Op = 0x15
	OpOr   Op = 0x16
	OpXor  Op = 0x17
	OpShl  Op = 0x18 // shift amount masked to 6 bits
	OpShr  Op = 0x19 // logical
	OpSra  Op = 0x1A // arithmetic
	OpSlt  Op = 0x1B // rd = (ra < rb) ? 1 : 0, signed
	OpSltu Op = 0x1C // unsigned
	OpSeq  Op = 0x1D // rd = (ra == rb) ? 1 : 0

	// Register-immediate ALU: rd = ra <op> imm.
	OpAddi Op = 0x20
	OpMuli Op = 0x21
	OpAndi Op = 0x22
	OpOri  Op = 0x23
	OpXori Op = 0x24
	OpShli Op = 0x25
	OpShri Op = 0x26
	OpSrai Op = 0x27
	OpSlti Op = 0x28
	OpSeqi Op = 0x29
	OpLi   Op = 0x2A // rd = imm (sign-extended 32-bit)

	// Memory: address = ra + imm. LD/ST move 64-bit words; LDB/STB bytes.
	OpLd  Op = 0x30 // rd = Mem64[ra+imm]
	OpSt  Op = 0x31 // Mem64[ra+imm] = rd  (rd is a source)
	OpLdb Op = 0x32 // rd = zext(Mem8[ra+imm])
	OpStb Op = 0x33 // Mem8[ra+imm] = rd&0xFF

	// Control flow. Branch targets are byte offsets relative to the address
	// of the instruction's first byte (including any prefix).
	OpBeq  Op = 0x40 // if ra == rb: pc += imm
	OpBne  Op = 0x41
	OpBlt  Op = 0x42 // signed
	OpBge  Op = 0x43 // signed
	OpBltu Op = 0x44
	OpBgeu Op = 0x45
	OpJmp  Op = 0x48 // pc += imm
	OpJal  Op = 0x49 // rd = next pc; pc += imm
	OpJalr Op = 0x4A // rd = next pc; pc = ra + imm

	// Conditional moves: constant-time selects. CMOV reads rd as a third
	// source so the destination is written unconditionally in the datapath.
	OpCmovz  Op = 0x50 // rd = (ra == 0) ? rb : rd
	OpCmovnz Op = 0x51 // rd = (ra != 0) ? rb : rd

	OpNop Op = 0x90 // 1-byte encoding; SecPrefix+NOP decodes as eosJMP
)

// Class groups opcodes by the functional unit that executes them.
type Class uint8

// Functional-unit classes.
const (
	ClassNone Class = iota
	ClassALU
	ClassMul
	ClassDiv
	ClassLoad
	ClassStore
	ClassBranch // conditional branches
	ClassJump   // unconditional JMP/JAL/JALR
	ClassCMov
	ClassSys // NOP, HALT
)

type opInfo struct {
	name     string
	class    Class
	writesRd bool // rd is a destination
	readsRa  bool
	readsRb  bool
	readsRd  bool // rd is (also) a source (ST, STB, CMOV*)
	short    bool // 1-byte encoding
}

var opTable = map[Op]opInfo{
	OpHalt: {"halt", ClassSys, false, false, false, false, true},
	OpNop:  {"nop", ClassSys, false, false, false, false, true},

	OpAdd:  {"add", ClassALU, true, true, true, false, false},
	OpSub:  {"sub", ClassALU, true, true, true, false, false},
	OpMul:  {"mul", ClassMul, true, true, true, false, false},
	OpDiv:  {"div", ClassDiv, true, true, true, false, false},
	OpRem:  {"rem", ClassDiv, true, true, true, false, false},
	OpAnd:  {"and", ClassALU, true, true, true, false, false},
	OpOr:   {"or", ClassALU, true, true, true, false, false},
	OpXor:  {"xor", ClassALU, true, true, true, false, false},
	OpShl:  {"shl", ClassALU, true, true, true, false, false},
	OpShr:  {"shr", ClassALU, true, true, true, false, false},
	OpSra:  {"sra", ClassALU, true, true, true, false, false},
	OpSlt:  {"slt", ClassALU, true, true, true, false, false},
	OpSltu: {"sltu", ClassALU, true, true, true, false, false},
	OpSeq:  {"seq", ClassALU, true, true, true, false, false},

	OpAddi: {"addi", ClassALU, true, true, false, false, false},
	OpMuli: {"muli", ClassMul, true, true, false, false, false},
	OpAndi: {"andi", ClassALU, true, true, false, false, false},
	OpOri:  {"ori", ClassALU, true, true, false, false, false},
	OpXori: {"xori", ClassALU, true, true, false, false, false},
	OpShli: {"shli", ClassALU, true, true, false, false, false},
	OpShri: {"shri", ClassALU, true, true, false, false, false},
	OpSrai: {"srai", ClassALU, true, true, false, false, false},
	OpSlti: {"slti", ClassALU, true, true, false, false, false},
	OpSeqi: {"seqi", ClassALU, true, true, false, false, false},
	OpLi:   {"li", ClassALU, true, false, false, false, false},

	OpLd:  {"ld", ClassLoad, true, true, false, false, false},
	OpSt:  {"st", ClassStore, false, true, false, true, false},
	OpLdb: {"ldb", ClassLoad, true, true, false, false, false},
	OpStb: {"stb", ClassStore, false, true, false, true, false},

	OpBeq:  {"beq", ClassBranch, false, true, true, false, false},
	OpBne:  {"bne", ClassBranch, false, true, true, false, false},
	OpBlt:  {"blt", ClassBranch, false, true, true, false, false},
	OpBge:  {"bge", ClassBranch, false, true, true, false, false},
	OpBltu: {"bltu", ClassBranch, false, true, true, false, false},
	OpBgeu: {"bgeu", ClassBranch, false, true, true, false, false},
	OpJmp:  {"jmp", ClassJump, false, false, false, false, false},
	OpJal:  {"jal", ClassJump, true, false, false, false, false},
	OpJalr: {"jalr", ClassJump, true, true, false, false, false},

	OpCmovz:  {"cmovz", ClassCMov, true, true, true, true, false},
	OpCmovnz: {"cmovnz", ClassCMov, true, true, true, true, false},
}

// opInfos is opTable flattened into a dense array: opcode helpers sit on the
// simulator's per-fetch/per-rename hot path, and indexing a 256-entry array
// by the opcode byte avoids hashing the map on every call.
var opInfos [256]opInfo

// opValid mirrors opTable membership for the dense array.
var opValid [256]bool

func init() {
	for op, info := range opTable {
		opInfos[op] = info
		opValid[op] = true
	}
}

// Valid reports whether op is a defined opcode.
func (op Op) Valid() bool { return opValid[op] }

// String returns the assembler mnemonic of the opcode.
func (op Op) String() string {
	if opValid[op] {
		return opInfos[op].name
	}
	return fmt.Sprintf("op(%#02x)", uint8(op))
}

// ClassOf returns the functional-unit class of the opcode.
func (op Op) ClassOf() Class {
	return opInfos[op].class
}

// IsBranch reports whether op is a conditional branch.
func (op Op) IsBranch() bool { return op.ClassOf() == ClassBranch }

// IsJump reports whether op is an unconditional control transfer.
func (op Op) IsJump() bool { return op.ClassOf() == ClassJump }

// IsControl reports whether op changes control flow.
func (op Op) IsControl() bool { return op.IsBranch() || op.IsJump() }

// IsMem reports whether op accesses memory.
func (op Op) IsMem() bool {
	c := op.ClassOf()
	return c == ClassLoad || c == ClassStore
}

// Inst is a decoded instruction.
type Inst struct {
	Op     Op
	Rd     Reg
	Ra     Reg
	Rb     Reg
	Imm    int64 // sign-extended from the 32-bit immediate field
	Secure bool  // carried a SecPrefix byte
}

// IsSJmp reports whether the instruction is a Secure Jump: a conditional
// branch carrying the SecPrefix. On a SeMPE core an sJMP executes both paths.
func (in Inst) IsSJmp() bool { return in.Secure && in.Op.IsBranch() }

// IsEOSJmp reports whether the instruction is an End-of-Secure-Jump marker:
// SecPrefix+NOP. On a baseline core it is just a NOP.
func (in Inst) IsEOSJmp() bool { return in.Secure && in.Op == OpNop }

// WritesRd reports whether the instruction writes its Rd register.
func (in Inst) WritesRd() bool {
	return opInfos[in.Op].writesRd && in.Rd != RZ
}

// SrcRegs appends the architectural source registers of the instruction to
// dst and returns the extended slice. R0 reads are included (they are free in
// the datapath but harmless to track).
func (in Inst) SrcRegs(dst []Reg) []Reg {
	info := opInfos[in.Op]
	if info.readsRa {
		dst = append(dst, in.Ra)
	}
	if info.readsRb {
		dst = append(dst, in.Rb)
	}
	if info.readsRd {
		dst = append(dst, in.Rd)
	}
	return dst
}

// EncodedLen returns the byte length of the instruction's encoding.
func (in Inst) EncodedLen() int {
	n := 8
	if opInfos[in.Op].short {
		n = 1
	}
	if in.Secure {
		n++
	}
	return n
}

// String renders the instruction in assembler syntax.
func (in Inst) String() string {
	prefix := ""
	if in.Secure {
		if in.Op.IsBranch() {
			prefix = "s"
		} else if in.Op == OpNop {
			return "eosjmp"
		} else {
			prefix = "sec."
		}
	}
	info := opTable[in.Op]
	switch {
	case info.short:
		return prefix + info.name
	case in.Op == OpLi:
		return fmt.Sprintf("%s%s %s, %d", prefix, info.name, in.Rd, in.Imm)
	case in.Op.ClassOf() == ClassLoad:
		return fmt.Sprintf("%s%s %s, [%s%+d]", prefix, info.name, in.Rd, in.Ra, in.Imm)
	case in.Op.ClassOf() == ClassStore:
		return fmt.Sprintf("%s%s %s, [%s%+d]", prefix, info.name, in.Rd, in.Ra, in.Imm)
	case in.Op.IsBranch():
		return fmt.Sprintf("%s%s %s, %s, %+d", prefix, info.name, in.Ra, in.Rb, in.Imm)
	case in.Op == OpJmp:
		return fmt.Sprintf("%s%s %+d", prefix, info.name, in.Imm)
	case in.Op == OpJal:
		return fmt.Sprintf("%s%s %s, %+d", prefix, info.name, in.Rd, in.Imm)
	case in.Op == OpJalr:
		return fmt.Sprintf("%s%s %s, %s%+d", prefix, info.name, in.Rd, in.Ra, in.Imm)
	case info.readsRb:
		return fmt.Sprintf("%s%s %s, %s, %s", prefix, info.name, in.Rd, in.Ra, in.Rb)
	default:
		return fmt.Sprintf("%s%s %s, %s, %d", prefix, info.name, in.Rd, in.Ra, in.Imm)
	}
}
