package isa

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// maxPrefixes bounds how many prefix bytes Decode will consume, mirroring the
// x86 rule that caps legacy prefixes per instruction.
const maxPrefixes = 4

// Encoding errors.
var (
	ErrTruncated = errors.New("isa: truncated instruction")
	ErrBadOpcode = errors.New("isa: undefined opcode")
	ErrBadImm    = errors.New("isa: immediate does not fit in 32 bits")
	ErrBadReg    = errors.New("isa: register out of range")
)

// Encode appends the binary encoding of in to dst and returns the extended
// slice. It validates register numbers and the immediate range.
func Encode(dst []byte, in Inst) ([]byte, error) {
	info, ok := opTable[in.Op]
	if !ok {
		return dst, fmt.Errorf("%w: %#02x", ErrBadOpcode, uint8(in.Op))
	}
	if in.Rd >= NumArchRegs || in.Ra >= NumArchRegs || in.Rb >= NumArchRegs {
		return dst, fmt.Errorf("%w: %v", ErrBadReg, in)
	}
	if in.Imm < -1<<31 || in.Imm > 1<<31-1 {
		return dst, fmt.Errorf("%w: %d", ErrBadImm, in.Imm)
	}
	if in.Secure {
		dst = append(dst, SecPrefix)
	}
	dst = append(dst, byte(in.Op))
	if info.short {
		return dst, nil
	}
	dst = append(dst, byte(in.Rd), byte(in.Ra), byte(in.Rb))
	var imm [4]byte
	binary.LittleEndian.PutUint32(imm[:], uint32(int32(in.Imm)))
	return append(dst, imm[:]...), nil
}

// MustEncode is Encode but panics on error; for use with known-good
// compiler-generated instructions.
func MustEncode(dst []byte, in Inst) []byte {
	out, err := Encode(dst, in)
	if err != nil {
		panic(err)
	}
	return out
}

// Decode decodes one instruction starting at code[off]. It returns the
// instruction and its encoded size in bytes. SecPrefix bytes are consumed and
// recorded in Inst.Secure; a core that does not implement SeMPE simply
// ignores the flag, which is what makes SeMPE binaries backward compatible.
func Decode(code []byte, off int) (Inst, int, error) {
	var in Inst
	start := off
	for n := 0; ; n++ {
		if off >= len(code) {
			return in, 0, ErrTruncated
		}
		if code[off] != SecPrefix {
			break
		}
		if n >= maxPrefixes {
			return in, 0, fmt.Errorf("%w: too many prefixes", ErrBadOpcode)
		}
		in.Secure = true
		off++
	}
	op := Op(code[off])
	if !opValid[op] {
		return in, 0, fmt.Errorf("%w: %#02x at offset %d", ErrBadOpcode, code[off], off)
	}
	info := opInfos[op]
	in.Op = op
	off++
	if info.short {
		return in, off - start, nil
	}
	if off+7 > len(code) {
		return in, 0, ErrTruncated
	}
	in.Rd = Reg(code[off])
	in.Ra = Reg(code[off+1])
	in.Rb = Reg(code[off+2])
	if in.Rd >= NumArchRegs || in.Ra >= NumArchRegs || in.Rb >= NumArchRegs {
		return in, 0, fmt.Errorf("%w at offset %d", ErrBadReg, off)
	}
	in.Imm = int64(int32(binary.LittleEndian.Uint32(code[off+3:])))
	return in, off + 7 - start, nil
}
