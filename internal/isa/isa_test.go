package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Inst{
		{Op: OpNop},
		{Op: OpHalt},
		{Op: OpNop, Secure: true}, // eosJMP
		{Op: OpAdd, Rd: 5, Ra: 6, Rb: 7},
		{Op: OpAddi, Rd: 5, Ra: 6, Imm: -42},
		{Op: OpLi, Rd: 9, Imm: 1 << 20},
		{Op: OpLd, Rd: 3, Ra: 4, Imm: 64},
		{Op: OpSt, Rd: 3, Ra: 4, Imm: -8},
		{Op: OpBeq, Ra: 1, Rb: 2, Imm: 100},
		{Op: OpBne, Ra: 1, Rb: 2, Imm: -100, Secure: true}, // sJMP
		{Op: OpJmp, Imm: 8},
		{Op: OpJal, Rd: 1, Imm: 400},
		{Op: OpJalr, Rd: 0, Ra: 1},
		{Op: OpCmovz, Rd: 8, Ra: 9, Rb: 10},
	}
	for _, in := range cases {
		buf, err := Encode(nil, in)
		if err != nil {
			t.Fatalf("Encode(%v): %v", in, err)
		}
		if len(buf) != in.EncodedLen() {
			t.Errorf("%v: encoded %d bytes, EncodedLen=%d", in, len(buf), in.EncodedLen())
		}
		got, size, err := Decode(buf, 0)
		if err != nil {
			t.Fatalf("Decode(%v): %v", in, err)
		}
		if size != len(buf) {
			t.Errorf("%v: decode consumed %d of %d bytes", in, size, len(buf))
		}
		if got != in {
			t.Errorf("round trip: got %+v want %+v", got, in)
		}
	}
}

func TestDecodeRejectsBadInput(t *testing.T) {
	if _, _, err := Decode([]byte{0xFF, 0, 0, 0, 0, 0, 0, 0}, 0); err == nil {
		t.Error("undefined opcode accepted")
	}
	if _, _, err := Decode([]byte{byte(OpAdd), 1, 2}, 0); err == nil {
		t.Error("truncated instruction accepted")
	}
	if _, _, err := Decode([]byte{SecPrefix, SecPrefix, SecPrefix, SecPrefix, SecPrefix, byte(OpNop)}, 0); err == nil {
		t.Error("prefix flood accepted")
	}
	if _, _, err := Decode([]byte{byte(OpAdd), 99, 0, 0, 0, 0, 0, 0}, 0); err == nil {
		t.Error("out-of-range register accepted")
	}
	if _, _, err := Decode(nil, 0); err == nil {
		t.Error("empty input accepted")
	}
}

func TestEncodeRejectsBadInst(t *testing.T) {
	if _, err := Encode(nil, Inst{Op: Op(0x77)}); err == nil {
		t.Error("bad opcode accepted")
	}
	if _, err := Encode(nil, Inst{Op: OpAdd, Rd: 48}); err == nil {
		t.Error("register 48 accepted")
	}
	if _, err := Encode(nil, Inst{Op: OpLi, Imm: 1 << 40}); err == nil {
		t.Error("oversized immediate accepted")
	}
}

func TestSecureRoles(t *testing.T) {
	sjmp := Inst{Op: OpBeq, Secure: true}
	if !sjmp.IsSJmp() || sjmp.IsEOSJmp() {
		t.Errorf("secure branch roles wrong: %+v", sjmp)
	}
	eos := Inst{Op: OpNop, Secure: true}
	if !eos.IsEOSJmp() || eos.IsSJmp() {
		t.Errorf("eosJMP roles wrong: %+v", eos)
	}
	plain := Inst{Op: OpBeq}
	if plain.IsSJmp() {
		t.Error("plain branch classified secure")
	}
	// A secure prefix on a non-branch, non-NOP instruction is neither.
	odd := Inst{Op: OpAdd, Secure: true}
	if odd.IsSJmp() || odd.IsEOSJmp() {
		t.Errorf("secure ALU misclassified: %+v", odd)
	}
}

func TestEosJmpEncoding(t *testing.T) {
	// The paper's encoding story: eosJMP is exactly prefix+NOP (0x2E, 0x90).
	buf := MustEncode(nil, Inst{Op: OpNop, Secure: true})
	if len(buf) != 2 || buf[0] != 0x2E || buf[1] != 0x90 {
		t.Fatalf("eosJMP encodes as % x, want 2e 90", buf)
	}
}

func TestWritesRdAndSrcRegs(t *testing.T) {
	cases := []struct {
		in     Inst
		writes bool
		nsrcs  int
	}{
		{Inst{Op: OpAdd, Rd: 3, Ra: 1, Rb: 2}, true, 2},
		{Inst{Op: OpAdd, Rd: 0, Ra: 1, Rb: 2}, false, 2}, // rz dest
		{Inst{Op: OpSt, Rd: 3, Ra: 1}, false, 2},         // rd is a source
		{Inst{Op: OpLd, Rd: 3, Ra: 1}, true, 1},
		{Inst{Op: OpCmovz, Rd: 3, Ra: 1, Rb: 2}, true, 3},
		{Inst{Op: OpLi, Rd: 3}, true, 0},
		{Inst{Op: OpBeq, Ra: 1, Rb: 2}, false, 2},
		{Inst{Op: OpJal, Rd: 1}, true, 0},
		{Inst{Op: OpJalr, Rd: 1, Ra: 2}, true, 1},
		{Inst{Op: OpNop}, false, 0},
	}
	for _, tc := range cases {
		if got := tc.in.WritesRd(); got != tc.writes {
			t.Errorf("%v: WritesRd=%v want %v", tc.in, got, tc.writes)
		}
		if got := len(tc.in.SrcRegs(nil)); got != tc.nsrcs {
			t.Errorf("%v: %d sources, want %d", tc.in, got, tc.nsrcs)
		}
	}
}

func TestEvalALUBasics(t *testing.T) {
	check := func(op Op, a, b, want uint64) {
		t.Helper()
		got, ok := EvalALU(Inst{Op: op}, a, b, 0)
		if !ok || got != want {
			t.Errorf("%v(%d,%d) = %d,%v want %d", op, a, b, got, ok, want)
		}
	}
	check(OpAdd, 3, 4, 7)
	check(OpSub, 3, 4, ^uint64(0))
	check(OpMul, 5, 7, 35)
	check(OpDiv, 100, 7, 14)
	check(OpDiv, 100, 0, ^uint64(0)) // non-trapping
	check(OpRem, 100, 0, 100)
	check(OpDiv, uint64(1)<<63, ^uint64(0), uint64(1)<<63) // MinInt64 / -1
	check(OpRem, uint64(1)<<63, ^uint64(0), 0)
	check(OpSlt, ^uint64(0), 1, 1) // -1 < 1 signed
	check(OpSltu, ^uint64(0), 1, 0)
	check(OpSeq, 9, 9, 1)
	check(OpShl, 1, 65, 2) // shift masked to 6 bits
	check(OpSra, ^uint64(0), 5, ^uint64(0))

	// CMOV honors the old destination value.
	if v, _ := EvalALU(Inst{Op: OpCmovz}, 0, 42, 7); v != 42 {
		t.Errorf("cmovz taken: got %d", v)
	}
	if v, _ := EvalALU(Inst{Op: OpCmovz}, 1, 42, 7); v != 7 {
		t.Errorf("cmovz not taken: got %d", v)
	}
	if v, _ := EvalALU(Inst{Op: OpCmovnz}, 1, 42, 7); v != 42 {
		t.Errorf("cmovnz taken: got %d", v)
	}
}

func TestBranchTaken(t *testing.T) {
	cases := []struct {
		op   Op
		a, b uint64
		want bool
	}{
		{OpBeq, 1, 1, true},
		{OpBeq, 1, 2, false},
		{OpBne, 1, 2, true},
		{OpBlt, ^uint64(0), 0, true}, // -1 < 0 signed
		{OpBltu, ^uint64(0), 0, false},
		{OpBge, 5, 5, true},
		{OpBgeu, 0, ^uint64(0), false},
	}
	for _, tc := range cases {
		if got := BranchTaken(tc.op, tc.a, tc.b); got != tc.want {
			t.Errorf("BranchTaken(%v,%d,%d)=%v want %v", tc.op, tc.a, tc.b, got, tc.want)
		}
	}
}

// TestDecodeNeverPanics fuzzes the decoder with random bytes: it must return
// an error or a valid instruction, never panic or over-read.
func TestDecodeNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		in, size, err := Decode(data, 0)
		if err != nil {
			return true
		}
		return size > 0 && size <= len(data) && in.Op.Valid()
	}
	cfg := &quick.Config{MaxCount: 5000, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestEncodeDecodeQuick round-trips randomly generated valid instructions.
func TestEncodeDecodeQuick(t *testing.T) {
	ops := make([]Op, 0, len(opTable))
	for op := range opTable {
		ops = append(ops, op)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		in := Inst{
			Op:     ops[rng.Intn(len(ops))],
			Rd:     Reg(rng.Intn(NumArchRegs)),
			Ra:     Reg(rng.Intn(NumArchRegs)),
			Rb:     Reg(rng.Intn(NumArchRegs)),
			Imm:    int64(int32(rng.Uint32())),
			Secure: rng.Intn(2) == 0,
		}
		if opTable[in.Op].short {
			in.Rd, in.Ra, in.Rb, in.Imm = 0, 0, 0, 0
		}
		buf, err := Encode(nil, in)
		if err != nil {
			t.Fatalf("Encode(%v): %v", in, err)
		}
		got, size, err := Decode(buf, 0)
		if err != nil || size != len(buf) || got != in {
			t.Fatalf("round trip %v: got %v size=%d err=%v", in, got, size, err)
		}
	}
}
