package isa

// This file holds the pure architectural semantics of the ISA, shared by the
// functional emulator (internal/emu) and the out-of-order core
// (internal/pipeline) so the two can never disagree on a result.

// EvalALU computes the result of a non-memory, non-control instruction.
// a and b are the Ra/Rb source values and oldRd is the prior value of Rd
// (used by CMOV, which writes its destination unconditionally). ok is false
// for opcodes that have no ALU result.
func EvalALU(in Inst, a, b, oldRd uint64) (val uint64, ok bool) {
	switch in.Op {
	case OpAdd:
		return a + b, true
	case OpSub:
		return a - b, true
	case OpMul:
		return a * b, true
	case OpDiv:
		return divs(a, b), true
	case OpRem:
		return rems(a, b), true
	case OpAnd:
		return a & b, true
	case OpOr:
		return a | b, true
	case OpXor:
		return a ^ b, true
	case OpShl:
		return a << (b & 63), true
	case OpShr:
		return a >> (b & 63), true
	case OpSra:
		return uint64(int64(a) >> (b & 63)), true
	case OpSlt:
		return bool2u(int64(a) < int64(b)), true
	case OpSltu:
		return bool2u(a < b), true
	case OpSeq:
		return bool2u(a == b), true
	case OpAddi:
		return a + uint64(in.Imm), true
	case OpMuli:
		return a * uint64(in.Imm), true
	case OpAndi:
		return a & uint64(in.Imm), true
	case OpOri:
		return a | uint64(in.Imm), true
	case OpXori:
		return a ^ uint64(in.Imm), true
	case OpShli:
		return a << (uint64(in.Imm) & 63), true
	case OpShri:
		return a >> (uint64(in.Imm) & 63), true
	case OpSrai:
		return uint64(int64(a) >> (uint64(in.Imm) & 63)), true
	case OpSlti:
		return bool2u(int64(a) < in.Imm), true
	case OpSeqi:
		return bool2u(a == uint64(in.Imm)), true
	case OpLi:
		return uint64(in.Imm), true
	case OpCmovz:
		if a == 0 {
			return b, true
		}
		return oldRd, true
	case OpCmovnz:
		if a != 0 {
			return b, true
		}
		return oldRd, true
	}
	return 0, false
}

// BranchTaken evaluates a conditional branch condition on source values a, b.
// The result is undefined for non-branch opcodes.
func BranchTaken(op Op, a, b uint64) bool {
	switch op {
	case OpBeq:
		return a == b
	case OpBne:
		return a != b
	case OpBlt:
		return int64(a) < int64(b)
	case OpBge:
		return int64(a) >= int64(b)
	case OpBltu:
		return a < b
	case OpBgeu:
		return a >= b
	}
	return false
}

// MemAddr computes the effective address of a load or store given the Ra
// source value.
func MemAddr(in Inst, a uint64) uint64 {
	return a + uint64(in.Imm)
}

// MemWidth returns the access size in bytes for a memory opcode.
func MemWidth(op Op) int {
	switch op {
	case OpLd, OpSt:
		return 8
	case OpLdb, OpStb:
		return 1
	}
	return 0
}

// divs implements non-trapping signed division: divide-by-zero yields all
// ones and MinInt64/-1 yields MinInt64 (the RISC-V convention). A trapping
// divider inside a SecBlock would itself be a side channel; the paper
// requires the compiler to reject SecBlocks that can fault, and this ISA
// sidesteps the issue by defining division totally.
func divs(a, b uint64) uint64 {
	if b == 0 {
		return ^uint64(0)
	}
	if int64(a) == -1<<63 && int64(b) == -1 {
		return a
	}
	return uint64(int64(a) / int64(b))
}

func rems(a, b uint64) uint64 {
	if b == 0 {
		return a
	}
	if int64(a) == -1<<63 && int64(b) == -1 {
		return 0
	}
	return uint64(int64(a) % int64(b))
}

func bool2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
