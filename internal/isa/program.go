package isa

import (
	"fmt"
	"sort"
	"strings"
)

// Segment is a contiguous range of initialized memory.
type Segment struct {
	Base  uint64
	Bytes []byte
}

// Program is a loadable binary image: code, initialized data, and symbols.
type Program struct {
	CodeBase uint64 // address of Code[0]
	Code     []byte
	Entry    uint64            // initial program counter
	Data     []Segment         // initialized data segments
	Symbols  map[string]uint64 // label -> address
}

// Default memory layout used by the assembler and compiler. The layout keeps
// code, data, shadow copies, and the stack in disjoint regions of a 4 GiB
// window so that cache index bits exercise realistic distributions.
const (
	DefaultCodeBase  uint64 = 0x0000_1000
	DefaultDataBase  uint64 = 0x0010_0000 // 1 MiB
	DefaultStackTop  uint64 = 0x0800_0000 // 128 MiB, grows down
	DefaultHeapBase  uint64 = 0x0100_0000 // 16 MiB
	DefaultShadowOff uint64 = 0x0400_0000 // shadow copies live data+64 MiB
)

// Sym returns the address of a symbol, panicking if undefined. Intended for
// tests and harness code operating on known-good programs.
func (p *Program) Sym(name string) uint64 {
	addr, ok := p.Symbols[name]
	if !ok {
		panic(fmt.Sprintf("isa: undefined symbol %q", name))
	}
	return addr
}

// CodeEnd returns the address one past the last code byte.
func (p *Program) CodeEnd() uint64 { return p.CodeBase + uint64(len(p.Code)) }

// Disassemble renders the program's code section, one instruction per line,
// annotated with addresses and any symbols that point at them.
func (p *Program) Disassemble() string {
	type sym struct {
		addr uint64
		name string
	}
	var syms []sym
	for name, addr := range p.Symbols {
		syms = append(syms, sym{addr, name})
	}
	sort.Slice(syms, func(i, j int) bool {
		if syms[i].addr != syms[j].addr {
			return syms[i].addr < syms[j].addr
		}
		return syms[i].name < syms[j].name
	})
	var b strings.Builder
	si := 0
	for off := 0; off < len(p.Code); {
		addr := p.CodeBase + uint64(off)
		for si < len(syms) && syms[si].addr <= addr {
			if syms[si].addr == addr {
				fmt.Fprintf(&b, "%s:\n", syms[si].name)
			}
			si++
		}
		in, size, err := Decode(p.Code, off)
		if err != nil {
			fmt.Fprintf(&b, "  %08x: .byte %#02x ; %v\n", addr, p.Code[off], err)
			off++
			continue
		}
		fmt.Fprintf(&b, "  %08x: %s\n", addr, in)
		off += size
	}
	return b.String()
}

// CountSecure returns the number of sJMP and eosJMP instructions in the
// program, a quick sanity check that secure instrumentation was emitted.
func (p *Program) CountSecure() (sjmp, eosjmp int) {
	for off := 0; off < len(p.Code); {
		in, size, err := Decode(p.Code, off)
		if err != nil {
			off++
			continue
		}
		if in.IsSJmp() {
			sjmp++
		}
		if in.IsEOSJmp() {
			eosjmp++
		}
		off += size
	}
	return sjmp, eosjmp
}
