package leak

import (
	"sort"

	"repro/internal/isa"
	"repro/internal/pipeline"
)

// Speculative-window observables. The Observation channels in this package
// compare everything an attacker sees through *architectural* effects —
// committed streams, final predictor and cache state, total timing. The
// transient window is a different threat surface: wrong-path work never
// commits, yet its microarchitectural side effects (cache fills, executed
// addresses) are exactly what Spectre-class attacks read back. A
// SpecObservation captures that surface from the pipeline's spec-event
// stream: the set of addresses and branches the core touched *and then
// squashed*, per run — so a test can say "the wrong-path touch set depends
// on the secret" on the baseline and "it doesn't exist" under SeMPE.

// SpecObservation is one run's wrong-path footprint.
type SpecObservation struct {
	// WrongPathLoads/WrongPathStores are the sorted, de-duplicated memory
	// addresses accessed at execute by micro-ops that were later squashed.
	WrongPathLoads  []uint64
	WrongPathStores []uint64
	// WrongPathBranches are the sorted, de-duplicated PCs of control-flow
	// micro-ops that executed and were later squashed.
	WrongPathBranches []uint64
	// WrongPathFills are the sorted, de-duplicated cache-line addresses
	// installed (at any level) by accesses attributed to squashed micro-ops
	// — the classic transient cache-pollution channel.
	WrongPathFills []uint64

	// Counter view (always-on pipeline accounting for this run).
	WrongPathFetches  uint64
	SquashedUops      uint64
	FlushMispredicts  uint64
	FlushSecRedirects uint64
	FlushOverflows    uint64

	Events  uint64 // spec events recorded
	Dropped uint64 // events that fell off the tracer ring
}

// specTraceCap bounds the per-run tracer ring. Wrong-path activity in the
// distinguisher programs is tiny compared to this; Dropped reports overflow.
const specTraceCap = 1 << 16

// ObserveSpec runs prog to completion on a fresh core with a spec-window
// tracer armed and returns the wrong-path footprint alongside the core
// (commit-trace capture is enabled, so core.CommitPCs/MemTrace hold the
// architectural streams for contrast). Arming the tracer does not perturb
// the run: the spec hooks are cycle-inert by construction, which
// TestSpecTraceDifferential pins across every registered scenario.
func ObserveSpec(cfg pipeline.Config, prog *isa.Program) (SpecObservation, *pipeline.Core, error) {
	tr := pipeline.NewTracer(specTraceCap)
	core := pipeline.New(cfg, prog)
	core.TraceCommits = true
	core.SetSpecWatch(tr.Record)
	if err := core.Run(); err != nil {
		return SpecObservation{}, nil, err
	}
	so := specObservationOf(tr)
	so.WrongPathFetches = core.Stats.WrongPathFetches
	so.SquashedUops = core.Stats.SquashedUops
	so.FlushMispredicts = core.Stats.FlushMispredicts
	so.FlushSecRedirects = core.Stats.FlushSecRedirects
	so.FlushOverflows = core.Stats.FlushOverflows
	return so, core, nil
}

func specObservationOf(tr *pipeline.Tracer) SpecObservation {
	loads := map[uint64]bool{}
	stores := map[uint64]bool{}
	branches := map[uint64]bool{}
	fills := map[uint64]bool{}
	for _, ev := range tr.Events() {
		if ev.Disp != pipeline.DispSquashed {
			continue
		}
		switch ev.Kind {
		case pipeline.SpecMemExec:
			if ev.Write {
				stores[ev.Addr] = true
			} else {
				loads[ev.Addr] = true
			}
		case pipeline.SpecBranchExec:
			branches[ev.PC] = true
		case pipeline.SpecCacheFill:
			fills[ev.Addr] = true
		}
	}
	return SpecObservation{
		WrongPathLoads:    sortedKeys(loads),
		WrongPathStores:   sortedKeys(stores),
		WrongPathBranches: sortedKeys(branches),
		WrongPathFills:    sortedKeys(fills),
		Events:            tr.Total(),
		Dropped:           tr.Dropped(),
	}
}

func sortedKeys(m map[uint64]bool) []uint64 {
	if len(m) == 0 {
		return nil
	}
	out := make([]uint64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TouchSetsEqual reports whether two runs' wrong-path touch sets are
// identical — the spec-window analogue of "no channel distinguishes".
func TouchSetsEqual(a, b SpecObservation) bool {
	return equalU64(a.WrongPathLoads, b.WrongPathLoads) &&
		equalU64(a.WrongPathStores, b.WrongPathStores) &&
		equalU64(a.WrongPathBranches, b.WrongPathBranches) &&
		equalU64(a.WrongPathFills, b.WrongPathFills)
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ContainsAddr reports whether addr is in the sorted set.
func ContainsAddr(set []uint64, addr uint64) bool {
	i := sort.Search(len(set), func(i int) bool { return set[i] >= addr })
	return i < len(set) && set[i] == addr
}
