package leak

import (
	"reflect"
	"testing"

	"repro/internal/compile"
	"repro/internal/lang"
	"repro/internal/pipeline"
)

// specLeakProgram is the headline transient-leak demo: a secret-dependent
// branch whose condition loads from a cold line (so resolution takes a
// memory round-trip while fetch runs ahead down the predicted path), with a
// distinct array load on each side. On the unprotected baseline the
// mispredicted secret executes — and then squashes — the wrong side's load:
// a secret-dependent memory access that exists only in the transient window.
func specLeakProgram(secret uint64) *lang.Program {
	return &lang.Program{
		Name: "specleak",
		Vars: []*lang.VarDecl{{Name: "x", Init: 0}},
		Arrays: []*lang.ArrayDecl{
			{Name: "sa", Len: 8, Init: []uint64{secret}, Secret: true},
			{Name: "ta", Len: 8, Init: []uint64{11}, LiveOut: true},
			{Name: "tb", Len: 8, Init: []uint64{22}, LiveOut: true},
		},
		Body: []lang.Stmt{
			lang.SecretIf(lang.B(lang.Ne, lang.At("sa", lang.N(0)), lang.N(0)),
				[]lang.Stmt{lang.Set("x", lang.At("ta", lang.N(0)))},
				[]lang.Stmt{lang.Set("x", lang.At("tb", lang.N(0)))}),
			lang.Set("x", lang.B(lang.Add, lang.V("x"), lang.N(1))),
		},
	}
}

func observeSpecLeak(t *testing.T, mode compile.Mode, cfg pipeline.Config, secret uint64) (SpecObservation, *pipeline.Core, map[string]uint64) {
	t.Helper()
	out, err := compile.Compile(specLeakProgram(secret), mode)
	if err != nil {
		t.Fatal(err)
	}
	so, core, err := ObserveSpec(cfg, out.Prog)
	if err != nil {
		t.Fatal(err)
	}
	return so, core, out.ArrayAddrs
}

// committedAddrs decodes the commit-time memory trace (addr<<1|isWrite) into
// the set of committed access addresses — what MemWatch sees.
func committedAddrs(core *pipeline.Core) map[uint64]bool {
	m := make(map[uint64]bool, len(core.MemTrace))
	for _, rec := range core.MemTrace {
		m[rec>>1] = true
	}
	return m
}

// TestSpecWindowHeadlineDemo pins the PR's headline result end to end:
//
//  1. Baseline: the wrong-path touch set depends on the secret, the
//     secret-revealing access address is one of the two array slots, and
//     that address is invisible to the commit-time stream (what
//     MemWatch/BranchWatch observe) of the same run.
//  2. SeMPE: no wrong-path memory access touches either secret-selected
//     array in any run, and the entire wrong-path footprint is
//     bit-identical across secrets.
func TestSpecWindowHeadlineDemo(t *testing.T) {
	// --- Baseline ---
	base := map[uint64]SpecObservation{}
	cores := map[uint64]*pipeline.Core{}
	var addrs map[string]uint64
	for _, secret := range []uint64{0, 1} {
		so, core, aa := observeSpecLeak(t, compile.Plain, pipeline.DefaultConfig(), secret)
		base[secret], cores[secret], addrs = so, core, aa
	}
	taAddr, tbAddr := addrs["ta"], addrs["tb"]
	if taAddr == 0 || tbAddr == 0 {
		t.Fatalf("array addresses missing: ta=%#x tb=%#x", taAddr, tbAddr)
	}

	if TouchSetsEqual(base[0], base[1]) {
		t.Fatalf("baseline wrong-path touch sets identical across secrets:\n s=0: %+v\n s=1: %+v",
			base[0], base[1])
	}

	// Exactly one secret mispredicts the cold branch; find it by its
	// squashed wrong-path load of ta[0] or tb[0].
	leaked := uint64(0)
	var wrongAddr uint64
	found := false
	for _, secret := range []uint64{0, 1} {
		for _, a := range []uint64{taAddr, tbAddr} {
			if ContainsAddr(base[secret].WrongPathLoads, a) {
				leaked, wrongAddr, found = secret, a, true
			}
		}
	}
	if !found {
		t.Fatalf("no wrong-path load of ta[0] (%#x) or tb[0] (%#x) on the baseline:\n s=0: %+v\n s=1: %+v",
			taAddr, tbAddr, base[0], base[1])
	}

	// The transient access is invisible at commit time: the same run's
	// committed memory stream — the only thing MemWatch can ever report —
	// does not contain the wrong-path address.
	if committedAddrs(cores[leaked])[wrongAddr] {
		t.Errorf("wrong-path address %#x also appears in the committed stream; demo does not isolate the transient window", wrongAddr)
	}
	// And the squashed load polluted the cache: the transient Spectre channel.
	if len(base[leaked].WrongPathFills) == 0 {
		t.Error("mispredicted run shows no wrong-path cache fills")
	}

	// --- SeMPE ---
	sec := map[uint64]SpecObservation{}
	for _, secret := range []uint64{0, 1} {
		so, _, _ := observeSpecLeak(t, compile.SeMPE, pipeline.SecureConfig(), secret)
		sec[secret] = so
		for _, a := range []uint64{taAddr, tbAddr} {
			if ContainsAddr(so.WrongPathLoads, a) || ContainsAddr(so.WrongPathStores, a) {
				t.Errorf("SeMPE secret=%d: wrong-path access to %#x; both paths must execute architecturally", secret, a)
			}
		}
		if so.FlushMispredicts != 0 {
			// The secret branch is an sJMP: it is never predicted, so it can
			// never mispredict. (Public control flow in this program is
			// static jumps, which do not mispredict either.)
			t.Errorf("SeMPE secret=%d: %d mispredict flushes; sJMP must not be predicted", secret, so.FlushMispredicts)
		}
	}
	if !reflect.DeepEqual(sec[0], sec[1]) {
		t.Errorf("SeMPE wrong-path footprint depends on the secret:\n s=0: %+v\n s=1: %+v", sec[0], sec[1])
	}
}

// TestObserveSpecCounterConsistency cross-checks the derived touch sets
// against the always-on Stats counters on the baseline demo run.
func TestObserveSpecCounterConsistency(t *testing.T) {
	for _, secret := range []uint64{0, 1} {
		so, _, _ := observeSpecLeak(t, compile.Plain, pipeline.DefaultConfig(), secret)
		if so.Dropped != 0 {
			t.Fatalf("secret=%d: tracer dropped %d events", secret, so.Dropped)
		}
		hasWrongPath := len(so.WrongPathLoads)+len(so.WrongPathStores)+len(so.WrongPathBranches) > 0
		if hasWrongPath && so.SquashedUops == 0 {
			t.Errorf("secret=%d: wrong-path touch sets but SquashedUops=0", secret)
		}
		if so.SquashedUops > 0 && so.WrongPathFetches < so.SquashedUops {
			t.Errorf("secret=%d: WrongPathFetches=%d < SquashedUops=%d", secret, so.WrongPathFetches, so.SquashedUops)
		}
	}
}
