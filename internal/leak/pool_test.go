package leak

import (
	"testing"

	"repro/internal/compile"
	"repro/internal/pipeline"
	"repro/internal/workloads"
)

// TestObservePooledMatchesFresh: an observation from a pooled (Reset-reused)
// core must equal the fresh-core observation field for field — every digest
// included — across workloads, secrets, and both architectures. This is the
// leak-level face of the reset differential: Distinguish and DistinguishMany
// feed every registered scenario through ObservePooled, so this equality is
// what keeps all stored scenario goldens valid under core pooling.
func TestObservePooledMatchesFresh(t *testing.T) {
	for _, kind := range workloads.All() {
		for _, mode := range []compile.Mode{compile.Plain, compile.SeMPE} {
			cfg := pipeline.DefaultConfig()
			if mode == compile.SeMPE {
				cfg = pipeline.SecureConfig()
			}
			build := buildHarness(kind, 4, mode)
			for _, secret := range []uint64{0, 5, 15} {
				prog, err := build(secret)
				if err != nil {
					t.Fatal(err)
				}
				fresh, _, err := Observe(cfg, prog)
				if err != nil {
					t.Fatal(err)
				}
				// Several pooled rounds: the first may construct, later ones
				// must hit the pool's Reset path (sync.Pool never guarantees a
				// hit, but repeated single-goroutine rounds in practice reuse).
				for round := 0; round < 3; round++ {
					pooled, err := ObservePooled(cfg, prog)
					if err != nil {
						t.Fatal(err)
					}
					if pooled != fresh {
						t.Errorf("%s/%v secret=%d round %d: pooled observation differs from fresh:\nfresh:  %+v\npooled: %+v",
							kind, mode, secret, round, fresh, pooled)
					}
				}
			}
		}
	}
}
