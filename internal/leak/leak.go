// Package leak implements the side-channel distinguisher used to validate
// SeMPE's security claim: run the same binary (or a family of binaries
// parameterized by a secret) on a simulated core and compare everything the
// paper's threat model lets an attacker observe — coarse timing, the
// committed instruction-address stream, the memory-access address stream,
// branch-predictor state, and cache state. Under SeMPE every observable must
// be bit-identical across secrets; on the unprotected baseline the
// conditional-branch channels show through.
package leak

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/isa"
	"repro/internal/pipeline"
)

// Observation captures one run's attacker-visible footprint.
type Observation struct {
	Cycles       uint64
	Insts        uint64
	CommitDigest uint64 // committed-PC stream
	MemDigest    uint64 // committed load/store address stream
	BPDigest     uint64 // TAGE + ITTAGE + RAS state
	IL1Digest    uint64 // resident lines + LRU order
	DL1Digest    uint64
	L2Digest     uint64
	IL1MissRate  float64
	DL1MissRate  float64
	L2MissRate   float64
}

// Observe runs prog to completion on a core with the given configuration
// and collects the observation.
func Observe(cfg pipeline.Config, prog *isa.Program) (Observation, *pipeline.Core, error) {
	return ObserveWith(cfg, prog, nil)
}

// ObserveWith is Observe with a pre-run configuration callback: setup (when
// non-nil) receives the fresh core before the run starts, which is where
// the attack lab installs its commit-time watch hooks (Core.MemWatch,
// Core.BranchWatch) to turn one run into per-segment timings.
func ObserveWith(cfg pipeline.Config, prog *isa.Program, setup func(*pipeline.Core)) (Observation, *pipeline.Core, error) {
	core := pipeline.New(cfg, prog)
	if setup != nil {
		setup(core)
	}
	if err := core.Run(); err != nil {
		return Observation{}, nil, err
	}
	return observationOf(core), core, nil
}

func observationOf(core *pipeline.Core) Observation {
	return Observation{
		Cycles:       core.Cycles(),
		Insts:        core.Stats.Insts,
		CommitDigest: core.CommitDigest(),
		MemDigest:    core.MemDigest(),
		BPDigest:     core.BP.Digest(),
		IL1Digest:    core.Hier.IL1.Digest(),
		DL1Digest:    core.Hier.DL1.Digest(),
		L2Digest:     core.Hier.L2.Digest(),
		IL1MissRate:  core.Hier.IL1.Stats.MissRate(),
		DL1MissRate:  core.Hier.DL1.Stats.MissRate(),
		L2MissRate:   core.Hier.L2.Stats.MissRate(),
	}
}

// corePools recycles cores per configuration for observation paths whose
// callers never see the core (Distinguish, DistinguishMany). A recycled
// core is Reset onto the next program — cycle- and event-identical to a
// fresh construction (pinned by pipeline's TestCoreResetDifferential) —
// which removes per-observation core construction from sweep loops. The
// pipeline.Prototype free list survives GC cycles (unlike sync.Pool), so
// long sweeps re-enter the construction cold path at most once per
// configuration per worker.
var corePools sync.Map // pipeline.Config -> *pipeline.Prototype

// ObservePooled is Observe on a pooled core. Use it only where the core
// itself is not needed after the run; the returned observation is identical
// to Observe's.
func ObservePooled(cfg pipeline.Config, prog *isa.Program) (Observation, error) {
	pi, _ := corePools.LoadOrStore(cfg, pipeline.NewPrototype(cfg, nil))
	proto := pi.(*pipeline.Prototype)
	core := proto.NewCoreFor(prog)
	if err := core.Run(); err != nil {
		// A failed run leaves the core mid-flight; drop it rather than
		// reasoning about partial state.
		return Observation{}, err
	}
	o := observationOf(core)
	// Recycle strips caller-armed hooks (and trace capture) before the core
	// becomes visible to unrelated callers; Reset deliberately preserves
	// them, so stripping happens at the pool boundary.
	proto.Recycle(core)
	return o, nil
}

// Channel names one observable side channel.
type Channel string

// The observable channels compared by the distinguisher.
const (
	ChannelTiming    Channel = "timing"           // total cycles
	ChannelPCTrace   Channel = "pc-trace"         // committed instruction addresses
	ChannelMemTrace  Channel = "mem-trace"        // memory access addresses
	ChannelPredictor Channel = "branch-predictor" // predictor state
	ChannelIL1       Channel = "il1-state"
	ChannelDL1       Channel = "dl1-state"
	ChannelL2        Channel = "l2-state"
)

// AllChannels returns every observable channel, in report order.
func AllChannels() []Channel {
	return []Channel{ChannelTiming, ChannelPCTrace, ChannelMemTrace,
		ChannelPredictor, ChannelIL1, ChannelDL1, ChannelL2}
}

// Report is the outcome of comparing two observations.
type Report struct {
	Leaking []Channel
	A, B    Observation
}

// Leaks reports whether any channel distinguishes the two runs.
func (r Report) Leaks() bool { return len(r.Leaking) > 0 }

// String renders the report for humans.
func (r Report) String() string {
	if !r.Leaks() {
		return "no channel distinguishes the two secrets (all observables identical)"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d channel(s) leak:", len(r.Leaking))
	for _, ch := range r.Leaking {
		fmt.Fprintf(&b, " %s", ch)
		if ch == ChannelTiming {
			fmt.Fprintf(&b, "(%d vs %d cycles)", r.A.Cycles, r.B.Cycles)
		}
	}
	return b.String()
}

// Compare diffs every observable channel.
func Compare(a, b Observation) Report {
	r := Report{A: a, B: b}
	add := func(cond bool, ch Channel) {
		if cond {
			r.Leaking = append(r.Leaking, ch)
		}
	}
	add(a.Cycles != b.Cycles, ChannelTiming)
	add(a.CommitDigest != b.CommitDigest, ChannelPCTrace)
	add(a.MemDigest != b.MemDigest, ChannelMemTrace)
	add(a.BPDigest != b.BPDigest, ChannelPredictor)
	add(a.IL1Digest != b.IL1Digest, ChannelIL1)
	add(a.DL1Digest != b.DL1Digest, ChannelDL1)
	add(a.L2Digest != b.L2Digest, ChannelL2)
	return r
}

// Distinguish builds the program for each secret, runs both on the given
// core configuration, and reports which channels tell the secrets apart.
func Distinguish(cfg pipeline.Config, build func(secret uint64) (*isa.Program, error), s1, s2 uint64) (Report, error) {
	p1, err := build(s1)
	if err != nil {
		return Report{}, err
	}
	p2, err := build(s2)
	if err != nil {
		return Report{}, err
	}
	o1, err := ObservePooled(cfg, p1)
	if err != nil {
		return Report{}, fmt.Errorf("leak: run secret=%d: %w", s1, err)
	}
	o2, err := ObservePooled(cfg, p2)
	if err != nil {
		return Report{}, fmt.Errorf("leak: run secret=%d: %w", s2, err)
	}
	return Compare(o1, o2), nil
}

// DistinguishMany generalizes Distinguish to a whole family of secrets: it
// observes the program built for every secret and reports the union of
// channels on which any observation differs from the first. A channel
// absent from the report is bit-identical across ALL secrets — the
// indistinguishability property the leakmatrix scenario asserts per grid
// point. Report.A is the first secret's observation and Report.B the first
// observation that differed on any channel (or the last one when none did).
func DistinguishMany(cfg pipeline.Config, build func(secret uint64) (*isa.Program, error), secrets []uint64) (Report, error) {
	if len(secrets) < 2 {
		return Report{}, fmt.Errorf("leak: need at least 2 secrets, have %d", len(secrets))
	}
	observe := func(s uint64) (Observation, error) {
		p, err := build(s)
		if err != nil {
			return Observation{}, err
		}
		o, err := ObservePooled(cfg, p)
		if err != nil {
			return Observation{}, fmt.Errorf("leak: run secret=%d: %w", s, err)
		}
		return o, nil
	}
	first, err := observe(secrets[0])
	if err != nil {
		return Report{}, err
	}
	leaking := map[Channel]bool{}
	out := Report{A: first}
	for _, s := range secrets[1:] {
		o, err := observe(s)
		if err != nil {
			return Report{}, err
		}
		r := Compare(first, o)
		// B tracks the first differing observation; until one differs it
		// trails the latest, leaving B = last when nothing ever leaked.
		if !out.Leaks() {
			out.B = o
		}
		for _, ch := range r.Leaking {
			if !leaking[ch] {
				leaking[ch] = true
				out.Leaking = append(out.Leaking, ch)
			}
		}
	}
	return out, nil
}

// FirstDivergence runs both programs with full commit-trace capture and
// returns the index and PCs of the first differing committed instruction,
// for diagnosing an unexpected leak. ok is false when the traces agree
// (any leak must then be in another channel).
func FirstDivergence(cfg pipeline.Config, p1, p2 *isa.Program) (idx int, pc1, pc2 uint64, ok bool, err error) {
	run := func(p *isa.Program) (*pipeline.Core, error) {
		c := pipeline.New(cfg, p)
		c.TraceCommits = true
		if err := c.Run(); err != nil {
			return nil, err
		}
		return c, nil
	}
	c1, err := run(p1)
	if err != nil {
		return 0, 0, 0, false, err
	}
	c2, err := run(p2)
	if err != nil {
		return 0, 0, 0, false, err
	}
	n := len(c1.CommitPCs)
	if len(c2.CommitPCs) < n {
		n = len(c2.CommitPCs)
	}
	for i := 0; i < n; i++ {
		if c1.CommitPCs[i] != c2.CommitPCs[i] {
			return i, c1.CommitPCs[i], c2.CommitPCs[i], true, nil
		}
	}
	if len(c1.CommitPCs) != len(c2.CommitPCs) {
		return n, 0, 0, true, nil
	}
	return 0, 0, 0, false, nil
}
