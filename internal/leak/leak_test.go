package leak

import (
	"testing"

	"repro/internal/compile"
	"repro/internal/isa"
	"repro/internal/jpegsim"
	"repro/internal/pipeline"
	"repro/internal/workloads"
)

// buildHarness returns a builder closure producing the microbenchmark
// binary for a given secret, in the requested compilation mode.
func buildHarness(kind workloads.Kind, w int, mode compile.Mode) func(uint64) (*isa.Program, error) {
	return func(secret uint64) (*isa.Program, error) {
		spec := workloads.HarnessSpec{Kind: kind, W: w, I: 2, Secret: secret}
		p := workloads.Harness(spec)
		out, err := compile.Compile(p, mode)
		if err != nil {
			return nil, err
		}
		return out.Prog, nil
	}
}

// TestBaselineLeaksEveryWorkload: the unprotected binary must be
// distinguishable — the side channel the paper sets out to close exists.
func TestBaselineLeaksEveryWorkload(t *testing.T) {
	for _, kind := range workloads.All() {
		rep, err := Distinguish(pipeline.DefaultConfig(),
			buildHarness(kind, 2, compile.Plain), 0, 3)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if !rep.Leaks() {
			t.Errorf("%v: baseline does not leak; the experiment is vacuous", kind)
		}
		// The committed-PC channel (SDBCB itself) must be among them.
		found := false
		for _, ch := range rep.Leaking {
			if ch == ChannelPCTrace {
				found = true
			}
		}
		if !found {
			t.Errorf("%v: baseline leak misses the pc-trace channel: %v", kind, rep.Leaking)
		}
	}
}

// TestSeMPEClosesEveryChannel: under SeMPE every observable the threat
// model grants the attacker is identical for different secrets.
func TestSeMPEClosesEveryChannel(t *testing.T) {
	for _, kind := range workloads.All() {
		rep, err := Distinguish(pipeline.SecureConfig(),
			buildHarness(kind, 2, compile.SeMPE), 0, 3)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if rep.Leaks() {
			t.Errorf("%v under SeMPE: %v", kind, rep)
		}
	}
}

// TestSeMPEDeepNestingNoLeak exercises the full W=10 nesting depth with
// several secret pairs.
func TestSeMPEDeepNestingNoLeak(t *testing.T) {
	pairs := [][2]uint64{{0, 1023}, {1, 512}, {0b1010101010, 0b0101010101}}
	for _, p := range pairs {
		rep, err := Distinguish(pipeline.SecureConfig(),
			buildHarness(workloads.Fibonacci, 10, compile.SeMPE), p[0], p[1])
		if err != nil {
			t.Fatal(err)
		}
		if rep.Leaks() {
			t.Errorf("secrets %d vs %d: %v", p[0], p[1], rep)
		}
	}
}

// TestCTAlsoConstantTime: the hand-written constant-time variant must be
// indistinguishable on the plain baseline core — that is the guarantee CTE
// buys at its much higher cost.
func TestCTAlsoConstantTime(t *testing.T) {
	build := func(secret uint64) (*isa.Program, error) {
		spec := workloads.HarnessSpec{Kind: workloads.Fibonacci, W: 3, I: 2, Secret: secret}
		out, err := compile.Compile(workloads.HarnessCT(spec), compile.Plain)
		if err != nil {
			return nil, err
		}
		return out.Prog, nil
	}
	rep, err := Distinguish(pipeline.DefaultConfig(), build, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Leaks() {
		t.Errorf("constant-time variant leaks: %v", rep)
	}
}

// TestDjpegImageContentLeak reproduces the paper's libjpeg story: on the
// baseline, two images of the same size but different content are
// distinguishable (busy blocks decode slower); under SeMPE they are not.
func TestDjpegImageContentLeak(t *testing.T) {
	build := func(mode compile.Mode) func(uint64) (*isa.Program, error) {
		return func(seed uint64) (*isa.Program, error) {
			spec := jpegsim.ImageSpec{Format: jpegsim.PPM, Blocks: 8, Sparsity: 50, Seed: seed}
			out, err := compile.Compile(jpegsim.BuildProgram(spec), mode)
			if err != nil {
				return nil, err
			}
			return out.Prog, nil
		}
	}
	base, err := Distinguish(pipeline.DefaultConfig(), build(compile.Plain), 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !base.Leaks() {
		t.Error("baseline djpeg does not leak image content")
	}
	sec, err := Distinguish(pipeline.SecureConfig(), build(compile.SeMPE), 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sec.Leaks() {
		t.Errorf("SeMPE djpeg leaks: %v", sec)
	}
}

// TestSeMPEBinaryOnLegacyCoreStillLeaks: backward compatibility means the
// instrumented binary runs on an old core — but without protection. The
// leak checker must show the channel reopens.
func TestSeMPEBinaryOnLegacyCoreStillLeaks(t *testing.T) {
	rep, err := Distinguish(pipeline.DefaultConfig(),
		buildHarness(workloads.Fibonacci, 2, compile.SeMPE), 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Leaks() {
		t.Error("SeMPE binary on a legacy core shows no leak; expected the channel to reopen")
	}
}

func TestFirstDivergenceDiagnostics(t *testing.T) {
	b := buildHarness(workloads.Fibonacci, 2, compile.Plain)
	p1, err := b(0)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := b(3)
	if err != nil {
		t.Fatal(err)
	}
	idx, pc1, pc2, ok, err := FirstDivergence(pipeline.DefaultConfig(), p1, p2)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("baseline traces agree; expected divergence")
	}
	if pc1 == pc2 && pc1 != 0 {
		t.Errorf("divergence at %d reports equal PCs %#x", idx, pc1)
	}
	// And the SeMPE traces must NOT diverge.
	sb := buildHarness(workloads.Fibonacci, 2, compile.SeMPE)
	s1, _ := sb(0)
	s2, _ := sb(3)
	if _, _, _, ok, err := FirstDivergence(pipeline.SecureConfig(), s1, s2); err != nil {
		t.Fatal(err)
	} else if ok {
		t.Error("SeMPE commit traces diverge")
	}
}

func TestCompareReportsChannels(t *testing.T) {
	a := Observation{Cycles: 100, CommitDigest: 1, MemDigest: 2, BPDigest: 3}
	b := a
	if rep := Compare(a, b); rep.Leaks() {
		t.Errorf("identical observations compare unequal: %v", rep)
	}
	b.Cycles = 101
	b.BPDigest = 4
	rep := Compare(a, b)
	if len(rep.Leaking) != 2 {
		t.Errorf("want 2 leaking channels, got %v", rep.Leaking)
	}
	if rep.String() == "" {
		t.Error("empty report string")
	}
}
