package prefetch

import (
	"testing"

	"repro/internal/cache"
)

func newDL1() *cache.Cache {
	mem := &cache.MainMemory{Latency: 100}
	return cache.New(cache.Config{Name: "dl1", SizeBytes: 32 << 10, Ways: 2, HitLatency: 2}, mem)
}

func TestStrideDetectsAndPrefetches(t *testing.T) {
	dl1 := newDL1()
	pf := NewStride(dl1, 64, 2)
	pc := uint64(0x1000)
	stride := uint64(256) // 4 lines apart so prefetches are visible
	// Train: first three accesses establish the stride.
	for i := 0; i < 4; i++ {
		addr := uint64(0x100000) + uint64(i)*stride
		pf.OnAccess(pc, addr, true)
	}
	if pf.Issued == 0 {
		t.Fatal("no prefetches issued after a confirmed stride")
	}
	// The next strided address should now hit.
	next := uint64(0x100000) + 4*stride
	if !dl1.Contains(next) {
		t.Errorf("next strided line %#x not prefetched", next)
	}
}

func TestStrideIgnoresIrregularPCs(t *testing.T) {
	dl1 := newDL1()
	pf := NewStride(dl1, 64, 2)
	addrs := []uint64{0x1000, 0x9000, 0x2000, 0xF000, 0x3000}
	for _, a := range addrs {
		pf.OnAccess(0x4000, a, true)
	}
	if pf.Issued != 0 {
		t.Errorf("issued %d prefetches on an irregular stream", pf.Issued)
	}
}

func TestStrideDistinguishesPCs(t *testing.T) {
	dl1 := newDL1()
	pf := NewStride(dl1, 64, 1)
	// Two interleaved strided streams from different PCs must both train.
	for i := 0; i < 5; i++ {
		pf.OnAccess(0x1000, uint64(0x200000)+uint64(i)*128, false)
		pf.OnAccess(0x2000, uint64(0x400000)+uint64(i)*192, false)
	}
	if !dl1.Contains(0x200000+5*128) || !dl1.Contains(0x400000+5*192) {
		t.Error("interleaved streams not both prefetched")
	}
}

func TestStreamPrefetchesSequentialMisses(t *testing.T) {
	mem := &cache.MainMemory{Latency: 100}
	l2 := cache.New(cache.Config{Name: "l2", SizeBytes: 256 << 10, Ways: 2, HitLatency: 12}, mem)
	pf := NewStream(l2, 16, 2)
	base := uint64(0x300000)
	pf.OnAccess(0, base, true)
	pf.OnAccess(0, base+cache.LineSize, true) // sequential miss -> stream
	if pf.Matches() == 0 {
		t.Fatal("sequential miss pattern not detected")
	}
	if !l2.Contains(base + 2*cache.LineSize) {
		t.Error("next line of the stream not prefetched")
	}
	if !l2.Contains(base + 3*cache.LineSize) {
		t.Error("depth-2 line of the stream not prefetched")
	}
}

func TestStreamIgnoresHitsAndRandomMisses(t *testing.T) {
	mem := &cache.MainMemory{Latency: 100}
	l2 := cache.New(cache.Config{Name: "l2", SizeBytes: 256 << 10, Ways: 2, HitLatency: 12}, mem)
	pf := NewStream(l2, 8, 1)
	pf.OnAccess(0, 0x10000, false) // hit: ignored
	pf.OnAccess(0, 0x50000, true)
	pf.OnAccess(0, 0x90000, true) // unrelated misses
	if pf.Matches() != 0 || pf.Issued != 0 {
		t.Errorf("stream fired on random misses: matches=%d issued=%d", pf.Matches(), pf.Issued)
	}
}
