// Package prefetch implements the two hardware prefetchers from the paper's
// Table II: a per-PC stride prefetcher attached to the DL1 and a
// sequential-stream prefetcher attached to the L2. Both observe the demand
// access stream of their cache via cache.Observer and install lines with
// Cache.Prefetch.
package prefetch

import "repro/internal/cache"

// Stride is a classic reference-prediction-table stride prefetcher: it
// tracks (last address, stride, confidence) per load/store PC and, once the
// stride has been confirmed twice, prefetches Degree lines ahead.
type Stride struct {
	target  *cache.Cache
	entries []strideEntry
	mask    uint64
	degree  int

	Issued uint64 // prefetches issued
}

type strideEntry struct {
	pc     uint64
	last   uint64
	stride int64
	conf   int8
}

// NewStride builds a stride prefetcher with a power-of-two table size.
func NewStride(target *cache.Cache, tableSize, degree int) *Stride {
	if tableSize&(tableSize-1) != 0 {
		panic("prefetch: stride table size must be a power of two")
	}
	return &Stride{
		target:  target,
		entries: make([]strideEntry, tableSize),
		mask:    uint64(tableSize - 1),
		degree:  degree,
	}
}

// OnAccess implements cache.Observer.
func (s *Stride) OnAccess(pc, addr uint64, miss bool) {
	if pc == 0 {
		return
	}
	// Mix high PC bits into the index: instruction addresses are often
	// aligned, and a plain shift would alias distinct loops onto entry 0.
	e := &s.entries[(pc^(pc>>7))&s.mask]
	if e.pc != pc {
		*e = strideEntry{pc: pc, last: addr}
		return
	}
	stride := int64(addr) - int64(e.last)
	switch {
	case stride == 0:
		return
	case stride == e.stride:
		if e.conf < 3 {
			e.conf++
		}
	default:
		e.stride = stride
		e.conf = 0
	}
	e.last = addr
	if e.conf >= 2 {
		for d := 1; d <= s.degree; d++ {
			next := uint64(int64(addr) + e.stride*int64(d))
			s.target.Prefetch(next)
			s.Issued++
		}
	}
}

// Reset restores the prefetcher to fresh-construction state without
// reallocating its table.
func (s *Stride) Reset() {
	clear(s.entries)
	s.Issued = 0
}

// Stream is a next-line stream prefetcher: on a demand miss it checks for a
// recent miss to the previous line and, when found, prefetches the following
// Depth lines. This is the "stream pref. (L2)" of Table II.
type Stream struct {
	target  *cache.Cache
	recent  []uint64 // recent miss line addresses (ring)
	head    int
	depth   int
	Issued  uint64
	matched uint64
}

// NewStream builds a stream prefetcher tracking the given number of recent
// misses and prefetching depth lines ahead on a detected stream.
func NewStream(target *cache.Cache, window, depth int) *Stream {
	return &Stream{
		target: target,
		recent: make([]uint64, window),
		depth:  depth,
	}
}

// OnAccess implements cache.Observer.
func (s *Stream) OnAccess(pc, addr uint64, miss bool) {
	if !miss {
		return
	}
	line := addr / cache.LineSize
	for _, prev := range s.recent {
		if prev != 0 && prev+1 == line {
			s.matched++
			for d := 1; d <= s.depth; d++ {
				s.target.Prefetch((line + uint64(d)) * cache.LineSize)
				s.Issued++
			}
			break
		}
	}
	s.recent[s.head] = line
	s.head = (s.head + 1) % len(s.recent)
}

// Reset restores the prefetcher to fresh-construction state without
// reallocating its miss window.
func (s *Stream) Reset() {
	clear(s.recent)
	s.head = 0
	s.Issued, s.matched = 0, 0
}

// Matches returns how many stream patterns were detected.
func (s *Stream) Matches() uint64 { return s.matched }
