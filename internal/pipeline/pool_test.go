package pipeline

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
)

// TestUopPoolResetOnReuse sets every commonly-leaked field on a recycled
// micro-op and checks that the pool hands it back fully zeroed: stale
// operand, flag, or squash state surviving reuse would silently corrupt the
// next instruction that lands in the same slot.
func TestUopPoolResetOnReuse(t *testing.T) {
	var p uopPool
	i := p.get()
	u := &p.arena[i]
	u.seq = 99
	u.ps1, u.ps2, u.ps3 = 7, 8, 9
	u.pd, u.oldPd = 10, 11
	u.hasDest = true
	u.issued = true
	u.completed = true
	u.result = 0xdeadbeef
	u.isLoad, u.isStore = true, true
	u.memAddr, u.storeData = 0x1234, 0x5678
	u.predTaken, u.actualTaken, u.mispredict = true, true, true
	u.isSJmp, u.isEOSJmp = true, true
	u.squashed = true
	p.put(i)

	got := p.get()
	if got != i {
		t.Fatalf("pool did not recycle: got slot %d want %d", got, i)
	}
	if p.arena[got] != (uop{}) {
		t.Errorf("recycled uop not zeroed: %+v", p.arena[got])
	}
}

// TestUopPoolGetRawSkipsZeroing documents the superblock-replay contract:
// getRaw hands back a dirty slot (the caller overwrites the whole struct
// with a prototype), while get zeroes it.
func TestUopPoolGetRawSkipsZeroing(t *testing.T) {
	var p uopPool
	i := p.get()
	p.arena[i].seq = 42
	p.put(i)
	j := p.getRaw()
	if j != i {
		t.Fatalf("pool did not recycle: got slot %d want %d", j, i)
	}
	if p.arena[j].seq != 42 {
		t.Errorf("getRaw zeroed the slot; want stale seq 42, got %d", p.arena[j].seq)
	}
}

// TestUopRingFIFO exercises wraparound ordering of the fixed-capacity ring.
func TestUopRingFIFO(t *testing.T) {
	r := newUopRing(4)
	var p uopPool
	us := make([]uref, 6)
	for i := range us {
		us[i] = p.get()
		p.arena[us[i]].seq = uint64(i)
	}
	r.push(us[0])
	r.push(us[1])
	r.push(us[2])
	if r.pop() != us[0] || r.pop() != us[1] {
		t.Fatal("pops out of order")
	}
	r.push(us[3])
	r.push(us[4])
	r.push(us[5]) // wraps around the backing array
	if !r.full() {
		t.Errorf("ring with 4 entries of capacity 4 not full")
	}
	for want := 2; want <= 5; want++ {
		if got := r.pop(); p.arena[got].seq != uint64(want) {
			t.Errorf("pop = seq %d, want %d", p.arena[got].seq, want)
		}
	}
	if r.len() != 0 {
		t.Errorf("ring not empty after draining")
	}
}

// TestPoolReuseAcrossFlushes runs a branch-heavy program whose outcomes an
// LCG makes effectively unpredictable, so the pipeline flushes constantly and
// every micro-op slot is recycled through wrong-path squashes many times. The
// architectural results must still match the golden-model emulator exactly —
// any operand/flag state leaking through the pool would diverge.
func TestPoolReuseAcrossFlushes(t *testing.T) {
	prog := asm.MustAssemble(`
		main:
			li   r8, 0          ; loop counter
			li   r9, 12345      ; lcg state
			li   r10, 0         ; taken-path accumulator
			li   r11, 0         ; fallthrough-path accumulator
		loop:
			muli r9, r9, 1103515245
			addi r9, r9, 12345
			shri r12, r9, 16
			andi r12, r12, 1
			bne  r12, rz, taken
			addi r11, r11, 3
			jmp  join
		taken:
			addi r10, r10, 5
		join:
			addi r8, r8, 1
			slti r13, r8, 400
			bne  r13, rz, loop
			halt
	`)
	_, core := runBoth(t, prog, false)
	if core.Stats.BranchMispredicts == 0 {
		t.Fatal("test program produced no mispredicts; flush path not exercised")
	}
	if core.Stats.Flushes == 0 {
		t.Fatal("no flushes recorded")
	}
}

// TestPoolReuseAcrossSecureFlushes drives the SeMPE commit-time redirects
// (eosJMP jump-backs squash the front-end buffers) with data-dependent
// secure branches, checking the recycled front-end micro-ops against the
// golden model.
func TestPoolReuseAcrossSecureFlushes(t *testing.T) {
	prog := asm.MustAssemble(`
		main:
			li   r8, 0
			li   r9, 0xAC
			li   r10, 0
		loop:
			shri r11, r9, 1
			andi r12, r9, 1
			sbeq r12, rz, even
			addi r10, r10, 7
			jmp  odd_done
		even:
			addi r10, r10, 2
		odd_done:
			eosjmp
			add  r9, r11, rz
			addi r8, r8, 1
			slti r13, r8, 8
			bne  r13, rz, loop
			halt
	`)
	_, core := runBoth(t, prog, true)
	if core.Stats.SecRedirects == 0 {
		t.Fatal("no secure redirects; eosJMP recycle path not exercised")
	}
}

// TestPredecodeCacheConsistency checks that the per-PC pre-decode cache
// returns the same instruction stream as decoding from bytes every fetch: a
// program where the same static pc is fetched from both paths of a branch
// must commit identical instruction counts to the emulator (runBoth asserts
// that), and the cache must never serve an entry for a different pc.
func TestPredecodeCacheConsistency(t *testing.T) {
	prog := asm.MustAssemble(`
		main:
			li   r8, 10
			li   r9, 0
		loop:
			add  r9, r9, r8
			addi r8, r8, -1
			bne  r8, rz, loop
			halt
	`)
	_, core := runBoth(t, prog, false)
	if core.ArchRegs()[9] != 55 {
		t.Errorf("sum = %d, want 55", core.ArchRegs()[9])
	}
	// Every committed instruction came from a cached decode after the first
	// iteration; spot-check the cache contents against a fresh decode.
	for off := 0; off < len(core.prog.Code); {
		in, size, err := isa.Decode(core.prog.Code, off)
		if err != nil {
			t.Fatalf("decode at %d: %v", off, err)
		}
		if d := core.decoded[off]; d.size != 0 {
			if d.inst != in || int(d.size) != size {
				t.Errorf("cache at off %d: %v/%d, fresh decode %v/%d", off, d.inst, d.size, in, size)
			}
		}
		off += size
	}
}
