package pipeline

import (
	"reflect"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
)

// runWrongPathTriple executes prog three ways — superblock replay with
// wrong-path replay allowed, with wrong-path replay force-disabled, and on
// the legacy walk — and requires the full observable surface to agree
// pairwise (runPair covers replay vs legacy; this adds the knob'd run).
// Returns the replay-enabled core for counter assertions.
func runWrongPathTriple(t *testing.T, cfg Config, prog *isa.Program) *Core {
	t.Helper()
	on := runPair(t, cfg, prog)
	wpCfg := cfg
	wpCfg.DisableWrongPathReplay = true
	wp := New(wpCfg, prog)
	if err := wp.Run(); err != nil {
		t.Fatalf("wrong-path-replay-off core: %v", err)
	}
	if on.ArchRegs() != wp.ArchRegs() {
		t.Errorf("architectural registers differ with wrong-path replay off")
	}
	if on.Stats != wp.Stats {
		t.Errorf("pipeline stats differ with wrong-path replay off:\non:  %+v\noff: %+v", on.Stats, wp.Stats)
	}
	if on.CommitDigest() != wp.CommitDigest() || on.MemDigest() != wp.MemDigest() {
		t.Errorf("digests differ with wrong-path replay off")
	}
	if on.BP.Digest() != wp.BP.Digest() {
		t.Errorf("predictor digests differ with wrong-path replay off")
	}
	return on
}

// wrongPathNestedProg: the outer branch depends on a load (resolves late),
// the inner one on register arithmetic (resolves early), so a mispredicted
// inner branch can redirect fetch while the core is already past an
// unresolved — and wrong — outer prediction: a nested mispredict inside a
// wrong-path region. Both data patterns are irregular enough that TAGE
// keeps mispredicting throughout.
func wrongPathNestedProg() *isa.Program {
	return asm.MustAssemble(`
		main:
			li   r8, 0
			li   r9, 120
			li   r12, 4096
		loop:
			st   r9, [r12+0]
			ld   r11, [r12+0]
			andi r11, r11, 5
			beq  r11, rz, skip
			andi r13, r9, 3
			beq  r13, rz, inner
			addi r10, r10, 3
		inner:
			addi r10, r10, 1
		skip:
			add  r8, r8, r9
			addi r9, r9, -1
			bne  r9, rz, loop
			halt
	`)
}

// TestWrongPathNestedMispredict: replay through nested wrong-path regions
// must stay cycle- and event-identical to both the legacy walk and the
// knob'd (no wrong-path replay) run, while actually exercising the
// machinery: squashed replayed micro-ops and cursor re-keys onto cached
// redirect targets must both occur.
func TestWrongPathNestedMispredict(t *testing.T) {
	on := runWrongPathTriple(t, DefaultConfig(), wrongPathNestedProg())
	if on.Stats.BranchMispredicts == 0 {
		t.Fatal("workload produced no mispredicts; the wrong-path edge is untested")
	}
	if on.SBStats.WrongPathReplays == 0 {
		t.Error("no replayed micro-op was ever squashed (WrongPathReplays=0)")
	}
	if on.SBStats.ReKeys == 0 {
		t.Error("no redirect ever re-keyed the cursor onto a cached block (ReKeys=0)")
	}
}

// TestWrongPathSecureRedirectMidSuperblock: under SeMPE the commit-time
// eosJMP controller redirects fetch while the replay cursor is mid-block.
// The redirect must re-key (or drop) the cursor exactly like the legacy
// walk's pc tracking — for both secret values — and the secure redirects
// must actually land on a live cursor.
func TestWrongPathSecureRedirectMidSuperblock(t *testing.T) {
	for _, secret := range []int64{0, 1} {
		on := runWrongPathTriple(t, SecureConfig(), secureBranchProg(secret))
		if on.Stats.EOSJmps == 0 {
			t.Fatalf("secret=%d: no secure redirects; test needs a SeMPE program", secret)
		}
		if on.SBStats.ReKeys+on.SBStats.Invalidate == 0 {
			t.Errorf("secret=%d: no redirect ever hit a live cursor", secret)
		}
	}
}

// wrongPathColdTargetProg: the guarded branch is never taken, but the cold
// predictor guesses taken on its first encounter, so fetch redirects to
// `never` — code no path ever reaches — while the div feeding the branch
// resolves. That target is uncached, so the replay engine builds a fresh
// superblock entirely on the wrong path; the flush must charge it to
// WrongPathBuilds, and the cached block must persist harmlessly (static
// traces are path-independent).
func wrongPathColdTargetProg() *isa.Program {
	return asm.MustAssemble(`
		main:
			li   r9, 6
			li   r8, 0
			li   r10, 1
		loop:
			div  r11, r9, r10
			beq  r11, rz, never
			add  r8, r8, r9
			addi r9, r9, -1
			bne  r9, rz, loop
			halt
		never:
			addi r8, r8, 99
			xori r8, r8, 5
			halt
	`)
}

// TestWrongPathFlushDuringBuild: flushes that arrive while wrong-path
// fetch has been building superblocks must truncate the build stamps into
// WrongPathBuilds without perturbing any observable, and later correct-path
// fetch must replay the (path-independent) cached blocks.
func TestWrongPathFlushDuringBuild(t *testing.T) {
	on := runWrongPathTriple(t, DefaultConfig(), wrongPathColdTargetProg())
	if on.Stats.BranchMispredicts == 0 {
		t.Fatal("workload produced no mispredicts; the wrong-path edge is untested")
	}
	if on.SBStats.WrongPathBuilds == 0 {
		t.Error("no superblock build was ever charged to a wrong path (WrongPathBuilds=0)")
	}
	if on.SBStats.Replays == 0 {
		t.Error("engine never replayed")
	}
}

// TestWrongPathReplayZeroAlloc: with wrong-path replay explicitly enabled
// and a mispredict-heavy workload keeping speculative fetch hot, the
// steady-state cycle loop must stay at 0 allocs/op — cursor re-keying,
// build-stamp truncation, and the bulk squash may not allocate. The core
// comes from a prototype clone, the spin-up path the benchmark and cluster
// workers use, so the gate covers the shared-decode-table fast path too.
func TestWrongPathReplayZeroAlloc(t *testing.T) {
	prog := asm.MustAssemble(`
		main:
			li   r8, 0
			li   r9, 60000
			li   r12, 4096
		loop:
			st   r9, [r12+0]
			ld   r11, [r12+0]
			andi r11, r11, 5
			beq  r11, rz, skip
			andi r13, r9, 3
			beq  r13, rz, inner
			addi r10, r10, 3
		inner:
			addi r10, r10, 1
		skip:
			add  r8, r8, r9
			addi r9, r9, -1
			bne  r9, rz, loop
			halt
	`)
	proto := NewPrototype(DefaultConfig(), prog)
	core := NewFromPrototype(proto)
	if core.wpOff {
		t.Fatal("wrong-path replay disabled; another test leaked a default")
	}
	for i := 0; i < 20_000 && !core.Halted(); i++ {
		if err := core.StepCycle(); err != nil {
			t.Fatal(err)
		}
	}
	if core.Halted() {
		t.Fatal("workload halted during warmup; allocation window needs live cycles")
	}
	if core.SBStats.WrongPathReplays == 0 {
		t.Fatal("warmup squashed no replayed micro-ops; the gate is not exercising wrong-path replay")
	}
	var stepErr error
	halted := false
	allocs := testing.AllocsPerRun(100, func() {
		if core.Halted() {
			halted = true
			return
		}
		if err := core.StepCycle(); err != nil {
			stepErr = err
		}
	})
	if stepErr != nil {
		t.Fatal(stepErr)
	}
	if halted {
		t.Fatal("workload halted inside the allocation window")
	}
	if allocs != 0 {
		t.Errorf("steady-state StepCycle with wrong-path replay enabled: %.1f allocs/op, want 0", allocs)
	}
}

// TestWrongPathSpecWatchDivert: arming a spec watch mid-run diverts fetch
// from replay to the legacy walk (the emission points live there). The
// event stream recorded from the diverted core must be byte-identical —
// kinds, seqs, addresses, dispositions — to one recorded on a core that
// never used the replay path at all.
func TestWrongPathSpecWatchDivert(t *testing.T) {
	prog := wrongPathNestedProg()
	const armAt = 150
	run := func(disableSB bool) ([]SpecEvent, Stats, uint64) {
		cfg := DefaultConfig()
		cfg.DisableSuperblock = disableSB
		c := New(cfg, prog)
		var events []SpecEvent
		armed := false
		for !c.Halted() {
			if !armed && c.Cycles() >= armAt {
				armed = true
				c.SetSpecWatch(func(e SpecEvent) { events = append(events, e) })
			}
			if err := c.StepCycle(); err != nil {
				t.Fatal(err)
			}
		}
		return events, c.Stats, c.CommitDigest()
	}
	evOn, sOn, digOn := run(false)
	evOff, sOff, digOff := run(true)
	if sOn != sOff {
		t.Errorf("stats differ:\nreplay: %+v\nlegacy: %+v", sOn, sOff)
	}
	if digOn != digOff {
		t.Error("commit digests differ")
	}
	if len(evOn) == 0 {
		t.Fatal("spec watch observed nothing after arming")
	}
	if !reflect.DeepEqual(evOn, evOff) {
		n := len(evOn)
		if len(evOff) < n {
			n = len(evOff)
		}
		for i := 0; i < n; i++ {
			if evOn[i] != evOff[i] {
				t.Fatalf("spec event %d differs:\nreplay: %+v\nlegacy: %+v", i, evOn[i], evOff[i])
			}
		}
		t.Fatalf("spec event streams differ in length: replay=%d legacy=%d", len(evOn), len(evOff))
	}
}
