package pipeline

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/sempe"
)

// deepNestProg builds count nested secure branches (all taken) around a
// single body instruction.
func deepNestProg(count int) *isa.Program {
	b := asm.NewBuilder()
	b.Label("main")
	b.Emit(isa.Inst{Op: isa.OpLi, Rd: 8, Imm: 1})
	joins := make([]string, count)
	for i := 0; i < count; i++ {
		taken := b.FreshLabel("t")
		joins[i] = b.FreshLabel("j")
		b.EmitRef(isa.Inst{Op: isa.OpBne, Ra: 8, Rb: 0, Secure: true}, taken)
		// NT path: bump r9 and jump to the join.
		b.Emit(isa.Inst{Op: isa.OpAddi, Rd: 9, Ra: 9, Imm: 1})
		b.EmitRef(isa.Inst{Op: isa.OpJmp}, joins[i])
		b.Label(taken)
	}
	b.Emit(isa.Inst{Op: isa.OpAddi, Rd: 10, Ra: 10, Imm: 1}) // innermost body
	for i := count - 1; i >= 0; i-- {
		b.Label(joins[i])
		b.Emit(isa.Inst{Op: isa.OpNop, Secure: true}) // eosJMP
	}
	b.Emit(isa.Inst{Op: isa.OpHalt})
	prog, err := b.Finish()
	if err != nil {
		panic(err)
	}
	return prog
}

func TestNestingOverflowFaults(t *testing.T) {
	cfg := SecureConfig()
	core := New(cfg, deepNestProg(31))
	err := core.Run()
	if !errors.Is(err, sempe.ErrOverflow) {
		t.Fatalf("err = %v, want jbTable overflow", err)
	}
}

func TestNestingOverflowDowngrades(t *testing.T) {
	cfg := SecureConfig()
	cfg.OverflowNonSecure = true
	core := New(cfg, deepNestProg(33))
	if err := core.Run(); err != nil {
		t.Fatal(err)
	}
	if core.Stats.NestOverflows != 3 {
		t.Errorf("overflows = %d, want 3", core.Stats.NestOverflows)
	}
	regs := core.ArchRegs()
	// All branches taken: the body runs once, and every NT-path register
	// bump is rolled back by the ArchRS restore (the taken path is the true
	// path), so r9 ends at 0.
	if regs[10] != 1 {
		t.Errorf("body executed %d times, want 1", regs[10])
	}
	if regs[9] != 0 {
		t.Errorf("r9 = %d, want 0 (NT effects restored)", regs[9])
	}
	// Dual-path execution happened for exactly the 30 protected levels...
	if core.Stats.SecRedirects != 30 {
		t.Errorf("jump-backs = %d, want 30", core.Stats.SecRedirects)
	}
	// ...and every join marker committed: twice for protected regions, once
	// for downgraded ones.
	if core.Stats.EOSJmps != 2*30+3 {
		t.Errorf("eosJMP commits = %d, want 63", core.Stats.EOSJmps)
	}

	// The functional machine agrees under the same policy.
	m := emu.New(emu.SeMPE, deepNestProg(33))
	m.OverflowNonSecure = true
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Regs[9] != regs[9] || m.Regs[10] != regs[10] {
		t.Errorf("emu disagrees: r9=%d r10=%d vs core r9=%d r10=%d",
			m.Regs[9], m.Regs[10], regs[9], regs[10])
	}
	if m.NestOverflows != 3 {
		t.Errorf("emu overflows = %d, want 3", m.NestOverflows)
	}
}

func TestDowngradeNotTakenPath(t *testing.T) {
	// Overflowing sJMP whose condition is false: the fall-through is
	// already correct, no redirect needed, and the eosJMP is a NOP.
	b := asm.NewBuilder()
	b.Label("main")
	b.Emit(isa.Inst{Op: isa.OpLi, Rd: 8, Imm: 1})
	// Fill all 30 slots with enclosing taken regions.
	joins := make([]string, 30)
	for i := range joins {
		tk := b.FreshLabel("t")
		joins[i] = b.FreshLabel("j")
		b.EmitRef(isa.Inst{Op: isa.OpBne, Ra: 8, Rb: 0, Secure: true}, tk)
		b.EmitRef(isa.Inst{Op: isa.OpJmp}, joins[i])
		b.Label(tk)
	}
	// The 31st secure branch is not taken (r8 == 1, beq fails... use beq).
	tk := b.FreshLabel("t31")
	j31 := b.FreshLabel("j31")
	b.EmitRef(isa.Inst{Op: isa.OpBeq, Ra: 8, Rb: 0, Secure: true}, tk)
	b.Emit(isa.Inst{Op: isa.OpAddi, Rd: 11, Ra: 11, Imm: 5}) // NT body (true path)
	b.EmitRef(isa.Inst{Op: isa.OpJmp}, j31)
	b.Label(tk)
	b.Emit(isa.Inst{Op: isa.OpAddi, Rd: 11, Ra: 11, Imm: 9}) // taken body
	b.Label(j31)
	b.Emit(isa.Inst{Op: isa.OpNop, Secure: true})
	for i := 29; i >= 0; i-- {
		b.Label(joins[i])
		b.Emit(isa.Inst{Op: isa.OpNop, Secure: true})
	}
	b.Emit(isa.Inst{Op: isa.OpHalt})
	prog, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	cfg := SecureConfig()
	cfg.OverflowNonSecure = true
	core := New(cfg, prog)
	if err := core.Run(); err != nil {
		t.Fatal(err)
	}
	if got := core.ArchRegs()[11]; got != 5 {
		t.Errorf("r11 = %d, want 5 (single NT path of the downgraded region)", got)
	}
	if core.Stats.NestOverflows != 1 {
		t.Errorf("overflows = %d, want 1", core.Stats.NestOverflows)
	}
}

func TestWatchdogFires(t *testing.T) {
	// A jump into the data region breaks fetch permanently; the watchdog
	// must convert the hang into an error.
	prog := asm.MustAssemble(`
		.data pit 8
		main:
			la   r8, pit
			jalr rz, [r8+0]
	`)
	cfg := DefaultConfig()
	cfg.WatchdogCycles = 2000
	core := New(cfg, prog)
	if err := core.Run(); !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want deadlock", err)
	}
}

func TestMaxCyclesBudget(t *testing.T) {
	prog := asm.MustAssemble(`
		main:
		loop:
			addi r8, r8, 1
			jmp loop
	`)
	cfg := DefaultConfig()
	cfg.MaxCycles = 5000
	core := New(cfg, prog)
	if err := core.Run(); !errors.Is(err, ErrMaxCycles) {
		t.Fatalf("err = %v, want cycle budget", err)
	}
}

func TestWrongPathFetchRecovery(t *testing.T) {
	// A conditional branch that jumps over a HALT: wrong-path fetch may
	// reach the HALT or run off the code end, and recovery must still
	// produce the architecturally correct result.
	prog := asm.MustAssemble(`
		main:
			li   r8, 1
			li   r9, 100
		loop:
			addi r9, r9, -1
			beq  r9, rz, done
			jmp  loop
		done:
			li   r10, 77
			halt
	`)
	_, core := runBoth(t, prog, false)
	if core.ArchRegs()[10] != 77 {
		t.Errorf("r10 = %d", core.ArchRegs()[10])
	}
}

func TestCMOVDataPath(t *testing.T) {
	// CMOV reads its old destination as a third operand through rename.
	prog := asm.MustAssemble(`
		main:
			li     r8, 0
			li     r9, 42
			li     r10, 7
			cmovz  r10, r8, r9    ; r8==0 -> r10 = 42
			li     r11, 5
			cmovnz r11, r8, r9    ; r8==0 -> r11 stays 5
			halt
	`)
	_, core := runBoth(t, prog, false)
	regs := core.ArchRegs()
	if regs[10] != 42 || regs[11] != 5 {
		t.Errorf("cmov results r10=%d r11=%d, want 42 5", regs[10], regs[11])
	}
}

func TestILnMissStallsAccounted(t *testing.T) {
	// A program large enough to stream through the IL1 must record fetch
	// stalls and IL1 misses.
	b := asm.NewBuilder()
	b.Label("main")
	for i := 0; i < 4000; i++ {
		b.Emit(isa.Inst{Op: isa.OpAddi, Rd: 8, Ra: 8, Imm: 1})
	}
	b.Emit(isa.Inst{Op: isa.OpHalt})
	prog, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	core := New(DefaultConfig(), prog)
	if err := core.Run(); err != nil {
		t.Fatal(err)
	}
	if core.Hier.IL1.Stats.Misses == 0 {
		t.Error("no IL1 misses on a 32KB code stream")
	}
	if core.Stats.FetchStallCycles == 0 {
		t.Error("no fetch stalls recorded")
	}
	if core.ArchRegs()[8] != 4000 {
		t.Errorf("r8 = %d", core.ArchRegs()[8])
	}
}

func TestStatsInvariants(t *testing.T) {
	prog := secureBranchProg(1)
	core := New(SecureConfig(), prog)
	if err := core.Run(); err != nil {
		t.Fatal(err)
	}
	s := core.Stats
	if s.EOSJmps != 2*s.SJmps {
		t.Errorf("eosJMP commits %d != 2 x sJMP %d", s.EOSJmps, s.SJmps)
	}
	if s.SecRedirects != s.SJmps {
		t.Errorf("jump-backs %d != sJMPs %d", s.SecRedirects, s.SJmps)
	}
	if s.CPI() <= 0 || s.IPC() <= 0 {
		t.Error("degenerate CPI/IPC")
	}
	if core.SPM.Depth() != 0 {
		t.Errorf("SPM depth %d after completion", core.SPM.Depth())
	}
	if core.JB.Depth() != 0 {
		t.Errorf("jbTable depth %d after completion", core.JB.Depth())
	}
}

// TestCoreRandomSecurePrograms is the SeMPE-mode differential fuzz: random
// secure-branch programs (assembled directly, mixing secure and plain
// control flow) must produce identical architectural results on the OoO
// core and the functional machine.
func TestCoreRandomSecurePrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		prog := randomSecureProgram(rng)
		ref := emu.New(emu.SeMPE, prog)
		ref.MaxInsts = 500000
		if err := ref.Run(); err != nil {
			t.Fatalf("trial %d: emu: %v\n%s", trial, err, prog.Disassemble())
		}
		core := New(SecureConfig(), prog)
		if err := core.Run(); err != nil {
			t.Fatalf("trial %d: core: %v\n%s", trial, err, prog.Disassemble())
		}
		regs := core.ArchRegs()
		for r := 0; r < isa.NumArchRegs; r++ {
			if regs[r] != ref.Regs[r] {
				t.Fatalf("trial %d: r%d core=%#x emu=%#x\n%s",
					trial, r, regs[r], ref.Regs[r], prog.Disassemble())
			}
		}
		if _, diff := core.Mem().FirstDiff(ref.Mem); diff {
			t.Fatalf("trial %d: memory differs", trial)
		}
	}
}

// randomSecureProgram builds a terminating program with nested secure
// branches (depth <= 3) whose bodies are random ALU/memory work and plain
// branches. Structure: a counted loop around a random secure-region tree.
func randomSecureProgram(rng *rand.Rand) *isa.Program {
	b := asm.NewBuilder()
	b.Data("arr", 256)
	b.Label("main")
	b.EmitRef(isa.Inst{Op: isa.OpLi, Rd: 20}, "arr")
	b.Emit(isa.Inst{Op: isa.OpLi, Rd: 21, Imm: int64(rng.Intn(6) + 2)}) // loop count
	for r := 8; r < 16; r++ {
		b.Emit(isa.Inst{Op: isa.OpLi, Rd: isa.Reg(r), Imm: int64(rng.Intn(64))})
	}
	b.Label("loop")

	reg := func() isa.Reg { return isa.Reg(8 + rng.Intn(8)) }
	emitWork := func(n int) {
		ops := []isa.Op{isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpXor, isa.OpAnd, isa.OpOr}
		for i := 0; i < n; i++ {
			switch rng.Intn(5) {
			case 0, 1, 2:
				b.Emit(isa.Inst{Op: ops[rng.Intn(len(ops))], Rd: reg(), Ra: reg(), Rb: reg()})
			case 3:
				b.Emit(isa.Inst{Op: isa.OpSt, Rd: reg(), Ra: 20, Imm: int64(rng.Intn(32)) * 8})
			case 4:
				b.Emit(isa.Inst{Op: isa.OpLd, Rd: reg(), Ra: 20, Imm: int64(rng.Intn(32)) * 8})
			}
		}
	}
	var emitRegion func(depth int)
	emitRegion = func(depth int) {
		cond := reg()
		b.Emit(isa.Inst{Op: isa.OpAndi, Rd: 3, Ra: cond, Imm: 1})
		taken := b.FreshLabel("sec_t")
		join := b.FreshLabel("sec_j")
		b.EmitRef(isa.Inst{Op: isa.OpBne, Ra: 3, Rb: 0, Secure: true}, taken)
		emitWork(rng.Intn(4) + 1) // NT path
		if depth < 3 && rng.Intn(2) == 0 {
			emitRegion(depth + 1)
		}
		b.EmitRef(isa.Inst{Op: isa.OpJmp}, join)
		b.Label(taken)
		emitWork(rng.Intn(4) + 1) // T path
		if depth < 3 && rng.Intn(2) == 0 {
			emitRegion(depth + 1)
		}
		b.Label(join)
		b.Emit(isa.Inst{Op: isa.OpNop, Secure: true})
	}
	emitRegion(0)
	emitWork(rng.Intn(5))
	b.Emit(isa.Inst{Op: isa.OpAddi, Rd: 21, Ra: 21, Imm: -1})
	b.EmitRef(isa.Inst{Op: isa.OpBne, Ra: 21, Rb: 0}, "loop")
	b.Emit(isa.Inst{Op: isa.OpHalt})
	prog, err := b.Finish()
	if err != nil {
		panic(err)
	}
	return prog
}

func TestDisassemblyShowsSecureMarks(t *testing.T) {
	prog := deepNestProg(2)
	dis := prog.Disassemble()
	if !strings.Contains(dis, "sbne") || !strings.Contains(dis, "eosjmp") {
		t.Errorf("disassembly missing secure mnemonics:\n%s", dis)
	}
}
