package pipeline

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
)

// obs is one observation from a watch hook, comparable for exact diffing.
type obs struct {
	a, b  uint64
	flag1 bool
	flag2 bool
}

// runPair executes prog on two fresh cores — superblock engine on and
// force-disabled — and requires the complete observable surface to match:
// final registers, cycle counts, every pipeline statistic, the commit and
// memory digests, predictor state, and per-level cache statistics. It
// returns the superblock-enabled core for engagement assertions.
func runPair(t *testing.T, cfg Config, prog *isa.Program) *Core {
	t.Helper()
	on := New(cfg, prog)
	if err := on.Run(); err != nil {
		t.Fatalf("superblock core: %v", err)
	}
	offCfg := cfg
	offCfg.DisableSuperblock = true
	off := New(offCfg, prog)
	if err := off.Run(); err != nil {
		t.Fatalf("legacy core: %v", err)
	}
	if on.ArchRegs() != off.ArchRegs() {
		t.Errorf("architectural registers differ")
	}
	if on.Stats != off.Stats {
		t.Errorf("pipeline stats differ:\non:  %+v\noff: %+v", on.Stats, off.Stats)
	}
	if on.CommitDigest() != off.CommitDigest() {
		t.Errorf("commit digests differ")
	}
	if on.MemDigest() != off.MemDigest() {
		t.Errorf("memory digests differ")
	}
	if on.BP.Digest() != off.BP.Digest() {
		t.Errorf("predictor digests differ")
	}
	for _, pair := range []struct {
		name      string
		con, coff interface{ MissRate() float64 }
	}{
		{"IL1", on.Hier.IL1.Stats, off.Hier.IL1.Stats},
		{"DL1", on.Hier.DL1.Stats, off.Hier.DL1.Stats},
		{"L2", on.Hier.L2.Stats, off.Hier.L2.Stats},
	} {
		if pair.con != pair.coff {
			t.Errorf("%s stats differ: %+v vs %+v", pair.name, pair.con, pair.coff)
		}
	}
	return on
}

// TestSuperblockSecBlockBoundaryMidTrace: the sJMP and the eosJMP marker sit
// in the middle of straight-line runs, so superblocks span SecBlock
// boundaries. Replay must reproduce the drains, the jump-back redirect, and
// the register restores exactly — for both secret values.
func TestSuperblockSecBlockBoundaryMidTrace(t *testing.T) {
	for _, secret := range []int64{0, 1} {
		on := runPair(t, SecureConfig(), secureBranchProg(secret))
		if on.SBStats.Replays == 0 {
			t.Errorf("secret=%d: engine never engaged (0 replays)", secret)
		}
		if on.Stats.SJmps != 1 || on.Stats.EOSJmps != 2 {
			t.Errorf("secret=%d: sjmp=%d eosjmp=%d, want 1,2",
				secret, on.Stats.SJmps, on.Stats.EOSJmps)
		}
	}
}

// TestSuperblockMispredictHeavy: a data-dependent branch pattern exercises
// redirects that land mid-superblock, dropping and re-validating the replay
// cursor continuously.
func TestSuperblockMispredictHeavy(t *testing.T) {
	prog := asm.MustAssemble(`
		main:
			li   r8, 0
			li   r9, 200
			li   r10, 0
		loop:
			andi r11, r9, 5
			beq  r11, rz, skip
			addi r10, r10, 3
		skip:
			add  r8, r8, r9
			addi r9, r9, -1
			bne  r9, rz, loop
			halt
	`)
	on := runPair(t, DefaultConfig(), prog)
	if on.SBStats.Replays == 0 {
		t.Error("engine never engaged")
	}
	if on.Stats.BranchMispredicts == 0 {
		t.Error("workload produced no mispredicts; the redirect edge is untested")
	}
}

// TestSuperblockProgramChangeAcrossRuns: two different programs whose
// instructions occupy the same addresses run back to back on fresh cores.
// Each pipeline.New starts with an empty superblock cache, so no trace from
// the first program can replay into the second; both runs must match their
// own legacy-path executions exactly.
func TestSuperblockProgramChangeAcrossRuns(t *testing.T) {
	progA := asm.MustAssemble(`
		main:
			li   r8, 10
			li   r9, 20
			add  r10, r8, r9
			halt
	`)
	progB := asm.MustAssemble(`
		main:
			li   r8, 10
			li   r9, 20
			mul  r10, r8, r9
			halt
	`)
	if progA.CodeBase != progB.CodeBase {
		t.Fatal("programs must share a code base for the test to bite")
	}
	a := runPair(t, DefaultConfig(), progA)
	b := runPair(t, DefaultConfig(), progB)
	if a.ArchRegs()[10] != 30 || b.ArchRegs()[10] != 200 {
		t.Errorf("r10: progA=%d progB=%d, want 30, 200 — a stale trace replayed",
			a.ArchRegs()[10], b.ArchRegs()[10])
	}
}

// TestSuperblockWatchHooksMidRun: watch hooks fire at retire, independent of
// whether the uop arrived via replay or the legacy decode walk, so arming a
// hook mid-run must produce the exact event stream — addresses AND cycle
// stamps — a never-superblocked core produces.
func TestSuperblockWatchHooksMidRun(t *testing.T) {
	prog := asm.MustAssemble(`
		main:
			li   r8, 0
			li   r9, 50
			li   r12, 4096
		loop:
			st   r9, [r12+0]
			ld   r10, [r12+0]
			add  r8, r8, r10
			addi r9, r9, -1
			bne  r9, rz, loop
			halt
	`)
	const armAt = 100
	run := func(disable bool) (Stats, []obs, []obs, uint64) {
		cfg := DefaultConfig()
		cfg.DisableSuperblock = disable
		c := New(cfg, prog)
		var mems, branches []obs
		armed := false
		for !c.Halted() {
			if !armed && c.Cycles() >= armAt {
				armed = true
				c.MemWatch = func(addr uint64, write bool, cycle uint64) {
					mems = append(mems, obs{a: addr, b: cycle, flag1: write})
				}
				c.BranchWatch = func(pc uint64, taken, mispredicted bool, cycle uint64) {
					branches = append(branches, obs{a: pc, b: cycle, flag1: taken, flag2: mispredicted})
				}
			}
			if err := c.StepCycle(); err != nil {
				t.Fatal(err)
			}
		}
		return c.Stats, mems, branches, c.CommitDigest()
	}
	sOn, memOn, brOn, digOn := run(false)
	sOff, memOff, brOff, digOff := run(true)
	if sOn != sOff {
		t.Errorf("stats differ:\non:  %+v\noff: %+v", sOn, sOff)
	}
	if digOn != digOff {
		t.Error("commit digests differ")
	}
	if len(memOn) == 0 || len(brOn) == 0 {
		t.Fatalf("hooks observed nothing after arming (mem=%d, branch=%d)", len(memOn), len(brOn))
	}
	for i := range memOn {
		if i >= len(memOff) || memOn[i] != memOff[i] {
			t.Fatalf("memory observation %d differs", i)
		}
	}
	for i := range brOn {
		if i >= len(brOff) || brOn[i] != brOff[i] {
			t.Fatalf("branch observation %d differs", i)
		}
	}
}

// TestSuperblockRepeatedRunsDeterministic: the same program on consecutive
// fresh cores (arena pools, trace caches, and predictor state all rebuilt by
// pipeline.New) is bit-for-bit deterministic — replay caches carry nothing
// across constructions.
func TestSuperblockRepeatedRunsDeterministic(t *testing.T) {
	prog := secureBranchProg(1)
	var first *Core
	for i := 0; i < 3; i++ {
		c := New(SecureConfig(), prog)
		if err := c.Run(); err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = c
			continue
		}
		if c.Stats != first.Stats || c.CommitDigest() != first.CommitDigest() ||
			c.MemDigest() != first.MemDigest() || c.BP.Digest() != first.BP.Digest() {
			t.Fatalf("run %d diverged from run 0", i)
		}
		if c.SBStats != first.SBStats {
			t.Fatalf("run %d superblock stats diverged: %+v vs %+v", i, c.SBStats, first.SBStats)
		}
	}
}
