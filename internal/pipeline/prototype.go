package pipeline

import (
	"sync"

	"repro/internal/isa"
)

// Prototype is the shared, immutable part of core construction for one
// (config, program) pair, plus a free list of recycled cores. New spends
// most of its time sizing per-core state and (lazily, via predecAt) decoding
// the program; a prototype does the program decode exactly once, eagerly,
// and hands the resulting table to every core it vends as a read-only
// shared slice. Spin-up from a warm prototype is then a pooled Reset — no
// allocation, no decode — which TestCoreResetDifferential and
// TestPrototypeMatchesNew pin as cycle- and event-identical to a fresh New.
//
// prog may be nil: the prototype then acts as a plain per-configuration core
// pool (NewCoreFor) with no shared decode table, which is what callers
// running a different program per trial (leak sweeps, experiment points)
// use. With a non-nil prog, NewFromPrototype vends cores that share the
// prototype's fully resolved pre-decode table.
//
// The shared table is safe across concurrently running cores because it is
// fully resolved at construction: every offset is either decoded (size>0)
// or marked undecodable (size<0), so the lazy fill in predecAt — the only
// writer — never fires.
type Prototype struct {
	cfg     Config
	prog    *isa.Program
	decoded []predec // fully resolved, shared read-only; nil when prog is nil

	mu   sync.Mutex
	free []*Core
}

// NewPrototype builds a prototype for cfg. With a non-nil prog the program
// is decoded eagerly at every code offset, exactly as predecAt would have
// lazily (undecodable bytes — wrong-path fetch targets — mark size<0).
func NewPrototype(cfg Config, prog *isa.Program) *Prototype {
	p := &Prototype{cfg: cfg, prog: prog}
	if prog != nil {
		p.decoded = make([]predec, len(prog.Code))
		for off := range p.decoded {
			d := &p.decoded[off]
			inst, size, err := isa.Decode(prog.Code, off)
			if err != nil {
				d.size = -1
				continue
			}
			d.inst, d.size = inst, int8(size)
			fillStatic(d)
		}
	}
	return p
}

// NewFromPrototype vends a core running the prototype's program: a recycled
// core Reset in place when one is free, otherwise a fresh construction.
// Either way the core shares the prototype's pre-decode table. The caller
// returns the core with Recycle when done.
func NewFromPrototype(p *Prototype) *Core {
	return p.NewCoreFor(p.prog)
}

// NewCoreFor vends a core running prog, recycling a pooled core when one is
// free. When prog is the prototype's own program the core shares the
// prototype's pre-decode table; for any other program it keeps a private
// table (Reset detaches a shared one before clearing).
func (p *Prototype) NewCoreFor(prog *isa.Program) *Core {
	p.mu.Lock()
	var c *Core
	if n := len(p.free); n > 0 {
		c = p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
	}
	p.mu.Unlock()
	if c != nil {
		c.Reset(prog)
	} else {
		c = New(p.cfg, prog)
	}
	if prog != nil && prog == p.prog && c.sharedDecoded != prog {
		c.decoded = p.decoded
		c.sharedDecoded = prog
	}
	return c
}

// Recycle returns a core to the prototype's free list. Caller-armed
// observability (MemWatch/BranchWatch hooks, trace capture, an explicit
// spec watch) is stripped first, since Reset deliberately preserves it and
// the next borrower is unrelated. The core must not be used after Recycle.
func (p *Prototype) Recycle(c *Core) {
	c.MemWatch = nil
	c.BranchWatch = nil
	c.TraceCommits = false
	c.SetSpecWatch(nil)
	p.mu.Lock()
	p.free = append(p.free, c)
	p.mu.Unlock()
}
