package pipeline

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/isa"
)

// TestPrototypeMatchesNew: a core vended by a prototype — on the cold
// construction path, the pooled-Reset path, and repeatedly — must produce a
// run snapshot DeepEqual to a fresh New core's, cycle count included. This
// is the equivalence BenchmarkSimulatorSpeed leans on when it measures
// prototype-vended cores.
func TestPrototypeMatchesNew(t *testing.T) {
	progs := []struct {
		name string
		prog *isa.Program
	}{
		{"storeload", storeLoadProg()},
		{"mispredict", mispredictHeavyProg()},
		{"callret", callRetProg()},
		{"secure1", secureBranchProg(1)},
	}
	cfgs := []struct {
		name string
		cfg  Config
	}{
		{"default", DefaultConfig()},
		{"secure", SecureConfig()},
	}
	for _, cfg := range cfgs {
		for _, p := range progs {
			t.Run(fmt.Sprintf("%s/%s", cfg.name, p.name), func(t *testing.T) {
				want := freshSnap(t, cfg.cfg, p.prog)
				proto := NewPrototype(cfg.cfg, p.prog)
				for round := 0; round < 3; round++ {
					c := NewFromPrototype(proto)
					if c.sharedDecoded != p.prog {
						t.Fatalf("round %d: vended core does not share the prototype decode table", round)
					}
					rec := armRecorder(c)
					mustRun(t, c)
					if got := snapshot(c, rec); !reflect.DeepEqual(got, want) {
						t.Fatalf("round %d: prototype core diverged from fresh core:\nfresh: %+v\nproto: %+v",
							round, want, got)
					}
					proto.Recycle(c)
				}
			})
		}
	}
}

// TestPrototypeForeignProgramDetaches: vending a pooled core for a program
// other than the prototype's must detach the shared decode table (Reset
// would otherwise clear the prototype's backing array in place), and the
// prototype must keep vending correct cores for its own program afterwards.
func TestPrototypeForeignProgramDetaches(t *testing.T) {
	home := storeLoadProg()
	foreign := mispredictHeavyProg()
	cfg := DefaultConfig()
	proto := NewPrototype(cfg, home)

	// Seed the pool with a core carrying the shared table.
	proto.Recycle(NewFromPrototype(proto))

	wantForeign := freshSnap(t, cfg, foreign)
	c := proto.NewCoreFor(foreign)
	if c.sharedDecoded != nil {
		t.Fatal("core reset onto a foreign program still marked as sharing the prototype table")
	}
	rec := armRecorder(c)
	mustRun(t, c)
	if got := snapshot(c, rec); !reflect.DeepEqual(got, wantForeign) {
		t.Fatalf("foreign-program pooled core diverged from fresh core:\nfresh: %+v\npooled: %+v", wantForeign, got)
	}
	proto.Recycle(c)

	// The prototype's table must be intact: its own program still runs
	// exactly like a fresh core, from both the pooled and the cold path.
	wantHome := freshSnap(t, cfg, home)
	for round := 0; round < 2; round++ {
		c := NewFromPrototype(proto)
		rec := armRecorder(c)
		mustRun(t, c)
		if got := snapshot(c, rec); !reflect.DeepEqual(got, wantHome) {
			t.Fatalf("round %d: prototype table corrupted by foreign-program reset:\nfresh: %+v\nproto: %+v",
				round, wantHome, got)
		}
		proto.Recycle(c)
	}
}

// TestPrototypeRecycleStripsHooks: Reset preserves caller-armed hooks by
// design, so the pool boundary (Recycle) must strip them — a borrower must
// never observe another caller's watch hooks or trace capture.
func TestPrototypeRecycleStripsHooks(t *testing.T) {
	proto := NewPrototype(DefaultConfig(), storeLoadProg())
	c := NewFromPrototype(proto)
	armRecorder(c)
	c.TraceCommits = true
	mustRun(t, c)
	proto.Recycle(c)
	c2 := NewFromPrototype(proto)
	if c2 != c {
		t.Fatal("expected the recycled core back from the pool")
	}
	if c2.MemWatch != nil || c2.BranchWatch != nil || c2.TraceCommits {
		t.Error("recycled core still carries the previous borrower's hooks or trace capture")
	}
}
