package pipeline

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
)

// mispredictStormProg loops over an irregular bit pattern, branching on each
// bit: the data-driven direction stream defeats TAGE warm-up and produces a
// storm of mispredicted flushes with wrong-path work in flight.
func mispredictStormProg() *isa.Program {
	b := asm.NewBuilder()
	b.Label("main")
	b.Emit(isa.Inst{Op: isa.OpLi, Rd: 8, Imm: 64})         // iteration count
	b.Emit(isa.Inst{Op: isa.OpLi, Rd: 9, Imm: 0x5bd1e995}) // bit pattern
	b.Label("loop")
	b.Emit(isa.Inst{Op: isa.OpAndi, Rd: 10, Ra: 9, Imm: 1})
	b.EmitRef(isa.Inst{Op: isa.OpBne, Ra: 10, Rb: 0}, "odd")
	b.Emit(isa.Inst{Op: isa.OpAddi, Rd: 11, Ra: 11, Imm: 1})
	b.EmitRef(isa.Inst{Op: isa.OpJmp}, "next")
	b.Label("odd")
	b.Emit(isa.Inst{Op: isa.OpAddi, Rd: 12, Ra: 12, Imm: 1})
	b.Label("next")
	b.Emit(isa.Inst{Op: isa.OpShri, Rd: 9, Ra: 9, Imm: 1})
	b.Emit(isa.Inst{Op: isa.OpAddi, Rd: 8, Ra: 8, Imm: -1})
	b.EmitRef(isa.Inst{Op: isa.OpBne, Ra: 8, Rb: 0}, "loop")
	b.Emit(isa.Inst{Op: isa.OpHalt})
	prog, err := b.Finish()
	if err != nil {
		panic(err)
	}
	return prog
}

// collectSpec runs prog with an event-collecting spec watch armed and
// returns the events alongside the core.
func collectSpec(t *testing.T, cfg Config, prog *isa.Program) ([]SpecEvent, *Core) {
	t.Helper()
	var events []SpecEvent
	core := New(cfg, prog)
	core.SetSpecWatch(func(ev SpecEvent) { events = append(events, ev) })
	if err := core.Run(); err != nil {
		t.Fatal(err)
	}
	return events, core
}

// checkFlushAgreement asserts the event-stream/counter invariants between
// the SpecFlush stream and the Stats wrong-path accounting.
func checkFlushAgreement(t *testing.T, events []SpecEvent, s Stats) {
	t.Helper()
	var byCause [4]uint64
	var squashed, dropped uint64
	for _, ev := range events {
		if ev.Kind != SpecFlush {
			continue
		}
		byCause[ev.Cause]++
		squashed += uint64(ev.SquashedROB)
		dropped += uint64(ev.DroppedFE)
	}
	if got, want := byCause[FlushMispredict], s.FlushMispredicts; got != want {
		t.Errorf("mispredict flush events = %d, Stats.FlushMispredicts = %d", got, want)
	}
	if got, want := byCause[FlushSecureRedirect], s.FlushSecRedirects; got != want {
		t.Errorf("secure-redirect flush events = %d, Stats.FlushSecRedirects = %d", got, want)
	}
	if got, want := byCause[FlushOverflow], s.FlushOverflows; got != want {
		t.Errorf("overflow flush events = %d, Stats.FlushOverflows = %d", got, want)
	}
	if s.FlushMispredicts+s.FlushOverflows != s.Flushes {
		t.Errorf("cause split %d+%d != Stats.Flushes %d",
			s.FlushMispredicts, s.FlushOverflows, s.Flushes)
	}
	if s.FlushSecRedirects != s.SecRedirects {
		t.Errorf("FlushSecRedirects %d != SecRedirects %d", s.FlushSecRedirects, s.SecRedirects)
	}
	if squashed != s.SquashedUops {
		t.Errorf("sum of flush-event SquashedROB = %d, Stats.SquashedUops = %d", squashed, s.SquashedUops)
	}
	if squashed+dropped != s.WrongPathFetches {
		t.Errorf("squashed+dropped = %d, Stats.WrongPathFetches = %d", squashed+dropped, s.WrongPathFetches)
	}
}

func TestSpecFlushAccountingMispredictStorm(t *testing.T) {
	prog := mispredictStormProg()
	events, core := collectSpec(t, DefaultConfig(), prog)
	s := core.Stats
	if s.FlushMispredicts == 0 {
		t.Fatal("storm produced no mispredict flushes; test program is broken")
	}
	if s.WrongPathFetches == 0 {
		t.Error("mispredict flushes but WrongPathFetches = 0")
	}
	checkFlushAgreement(t, events, s)

	// Arming the watch must not perturb the machine: cycle count and every
	// Stats field must match an unarmed run on the superblock fast path.
	plain := New(DefaultConfig(), prog)
	if err := plain.Run(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Stats, core.Stats) {
		t.Errorf("stats diverge with spec watch armed:\narmed:   %+v\nunarmed: %+v", core.Stats, plain.Stats)
	}
}

func TestSpecFlushAccountingSecureRedirect(t *testing.T) {
	for _, secret := range []int64{0, 1} {
		prog := secureBranchProg(secret)
		events, core := collectSpec(t, SecureConfig(), prog)
		s := core.Stats
		if s.SecRedirects != 1 {
			t.Fatalf("secret=%d: SecRedirects=%d, want 1", secret, s.SecRedirects)
		}
		if s.FlushSecRedirects != 1 {
			t.Errorf("secret=%d: FlushSecRedirects=%d, want 1", secret, s.FlushSecRedirects)
		}
		checkFlushAgreement(t, events, s)

		// The redirect's flush event must carry the secure-redirect cause,
		// never mispredict: eosJMP jump-backs are unconditional by design.
		for _, ev := range events {
			if ev.Kind == SpecFlush && ev.Cause == FlushSecureRedirect && ev.SquashedROB != 0 {
				t.Errorf("secret=%d: secure redirect squashed %d renamed ops; the drain guarantees zero",
					secret, ev.SquashedROB)
			}
		}
	}
}

func TestSpecWatchCycleInertUnderSeMPE(t *testing.T) {
	for _, secret := range []int64{0, 1} {
		prog := secureBranchProg(secret)
		_, armed := collectSpec(t, SecureConfig(), prog)
		plain := New(SecureConfig(), prog)
		if err := plain.Run(); err != nil {
			t.Fatal(err)
		}
		if armed.Cycles() != plain.Cycles() {
			t.Errorf("secret=%d: %d cycles armed vs %d unarmed", secret, armed.Cycles(), plain.Cycles())
		}
		if armed.CommitDigest() != plain.CommitDigest() || armed.MemDigest() != plain.MemDigest() {
			t.Errorf("secret=%d: committed streams diverge with spec watch armed", secret)
		}
	}
}

func TestSpecWatchResetSemantics(t *testing.T) {
	prog := mispredictStormProg()

	// A caller-armed hook survives Reset, like MemWatch.
	core := New(DefaultConfig(), prog)
	core.SetSpecWatch(func(SpecEvent) {})
	core.Reset(prog)
	if !core.SpecWatchArmed() {
		t.Error("caller-armed spec watch did not survive Reset")
	}
	core.SetSpecWatch(nil)
	core.Reset(prog)
	if core.SpecWatchArmed() {
		t.Error("disarmed spec watch re-armed itself with no default set")
	}

	// A default-armed hook follows the process default across Reset.
	prev := SetSpecWatchDefault(func(SpecEvent) {})
	defer SetSpecWatchDefault(prev)
	core2 := New(DefaultConfig(), prog)
	if !core2.SpecWatchArmed() {
		t.Fatal("New did not pick up the process default spec watch")
	}
	SetSpecWatchDefault(nil)
	core2.Reset(prog)
	if core2.SpecWatchArmed() {
		t.Error("default-armed spec watch survived Reset after the default was cleared")
	}
}

func TestTracerDispositionsAndRendering(t *testing.T) {
	prog := mispredictStormProg()
	tr := NewTracer(1 << 14)
	core := New(DefaultConfig(), prog)
	core.SetSpecWatch(tr.Record)
	if err := core.Run(); err != nil {
		t.Fatal(err)
	}
	if tr.Dropped() != 0 {
		t.Fatalf("ring too small for the storm: %d dropped", tr.Dropped())
	}

	// Every squashed per-uop event must postdate some flush's seq, and the
	// squashed wrong-path profile must be non-empty for the storm.
	events := tr.Events()
	var sq, committed uint64
	for _, ev := range events {
		switch ev.Disp {
		case DispSquashed:
			sq++
		case DispCommitted:
			committed++
		}
	}
	if sq == 0 {
		t.Error("no event resolved to squashed despite mispredict flushes")
	}
	if committed == 0 {
		t.Error("no event resolved to committed")
	}
	if got := tr.SquashedCounts(); len(got) == 0 {
		t.Error("SquashedCounts empty")
	}

	var text strings.Builder
	if err := tr.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "MISPREDICT") {
		t.Error("text trace missing mispredict marker")
	}
	if !strings.Contains(text.String(), "cause=mispredict") {
		t.Error("text trace missing flush cause")
	}

	var js strings.Builder
	if err := tr.WriteChromeJSON(&js); err != nil {
		t.Fatal(err)
	}
	out := js.String()
	if !strings.HasPrefix(out, "[") || !strings.Contains(out, `"ph":"i"`) {
		t.Error("chrome trace not in trace_event array format")
	}
}

func TestTracerRingWrap(t *testing.T) {
	tr := NewTracer(4)
	for seq := uint64(0); seq < 10; seq++ {
		tr.Record(SpecEvent{Kind: SpecFetch, Seq: seq, Cycle: seq})
	}
	if tr.Total() != 10 || tr.Dropped() != 6 {
		t.Fatalf("total=%d dropped=%d, want 10, 6", tr.Total(), tr.Dropped())
	}
	events := tr.Events()
	if len(events) != 4 || events[0].Seq != 6 || events[3].Seq != 9 {
		t.Fatalf("retained window wrong: %+v", events)
	}
	// A flush resolving a seq that fell off the ring must not corrupt the
	// retained window; seqs still inside resolve to squashed.
	tr.Record(SpecEvent{Kind: SpecFlush, Seq: 5})
	for _, ev := range tr.Events() {
		if ev.Kind == SpecFetch && ev.Seq >= 6 && ev.Disp != DispSquashed {
			t.Errorf("seq %d not squashed after covering flush", ev.Seq)
		}
	}
}
