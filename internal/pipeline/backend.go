package pipeline

import (
	"repro/internal/isa"
)

// waitNode is one issue-queue wakeup registration: the micro-op in slot ref
// (validated by seq, so a recycled slot or a squashed op is skipped lazily)
// is waiting for some physical register to become ready. Nodes live in a
// flat index-linked pool — like the uop arena, the whole wait network is
// pointer-free, so registration and wakeup incur no GC write barriers.
type waitNode struct {
	seq  uint64
	ref  uref
	next int32 // next node in this register's chain, -1 ends it
}

// regWait pushes a wakeup registration for micro-op i onto register p's
// waiter chain. Free nodes are chained through their next field
// (waitFreeHead), so recycling touches no slice headers — and therefore no
// GC write barriers — on the per-instruction wakeup traffic.
func (c *Core) regWait(p int16, i uref, seq uint64) {
	n := c.waitFreeHead
	if n >= 0 {
		c.waitFreeHead = c.waitNodes[n].next
	} else {
		n = int32(len(c.waitNodes))
		c.waitNodes = append(c.waitNodes, waitNode{})
	}
	nd := &c.waitNodes[n]
	nd.ref, nd.seq = i, seq
	nd.next = c.waitHead[p]
	c.waitHead[p] = n
}

// wakePreg delivers the ready event for physical register p to every
// registered waiter: each live waiter's pending-source count drops by one
// (an op waiting twice on p registered twice), and ops that reach zero
// enter the ready list. Stale registrations — squashed ops, or slots since
// recycled to a different micro-op — fail the seq check and are dropped.
func (c *Core) wakePreg(p int16) {
	n := c.waitHead[p]
	if n < 0 {
		return
	}
	c.waitHead[p] = -1
	arena := c.pool.arena
	nodes := c.waitNodes
	for n >= 0 {
		nd := &nodes[n]
		next := nd.next
		u := &arena[nd.ref]
		if u.seq == nd.seq && !u.squashed {
			u.notReady--
			if u.notReady == 0 {
				c.readyInsert(nd.ref)
			}
		}
		nd.next = c.waitFreeHead
		c.waitFreeHead = n
		n = next
	}
}

// readyInsert adds i to readyList keeping it sorted by seq, so issue always
// selects oldest-first — the same order the full queue scan produced. The
// buffer is preallocated at IQSize (readyCount can never exceed issue-queue
// occupancy), so insertion writes no slice header.
func (c *Core) readyInsert(i uref) {
	arena := c.pool.arena
	s := arena[i].seq
	rl := c.readyList
	j := c.readyCount
	for j > 0 && arena[rl[j-1]].seq > s {
		rl[j] = rl[j-1]
		j--
	}
	rl[j] = i
	c.readyCount++
}

// issue selects ready micro-ops (oldest first, up to IssueWidth and the
// per-class functional-unit limits), reads their operands, computes
// results, and schedules completion. Operand readiness is maintained
// event-driven (see wakePreg), so only genuinely ready work is visited:
// entries still here after a pass were held back by functional-unit caps or
// memory disambiguation, which are re-evaluated each cycle just as the full
// scan did.
func (c *Core) issue() {
	if c.readyCount == 0 {
		return
	}
	issued := 0
	// Remaining per-class functional-unit slots this cycle, counted down so
	// the inner loop compares against zero instead of re-loading config.
	alu, muldiv := c.cfg.NumALU, c.cfg.NumMulDiv
	load, store, branch := c.cfg.NumLoad, c.cfg.NumStore, c.cfg.NumBranch
	width := c.cfg.IssueWidth
	arena := c.pool.arena
	rl := c.readyList
	kept := 0
	for idx := 0; idx < c.readyCount; idx++ {
		i := rl[idx]
		if issued >= width {
			rl[kept] = i
			kept++
			continue
		}
		u := &arena[i]
		var ok bool
		switch u.cl {
		case isa.ClassALU, isa.ClassCMov:
			if alu > 0 {
				alu--
				ok = true
			}
		case isa.ClassMul, isa.ClassDiv:
			if muldiv > 0 {
				muldiv--
				ok = true
			}
		case isa.ClassLoad:
			if load > 0 && c.loadCanExecute(u) {
				load--
				ok = true
			}
		case isa.ClassStore:
			if store > 0 {
				store--
				ok = true
			}
		case isa.ClassBranch, isa.ClassJump:
			if branch > 0 {
				branch--
				ok = true
			}
		}
		if !ok {
			rl[kept] = i
			kept++
			continue
		}
		c.execute(i, u)
		issued++
	}
	c.readyCount = kept
}

// execute computes u's result and schedules its completion. u must be
// c.u(i); the caller passes the pointer it already resolved. Unused sources
// read the psNone sentinel (always zero), so no per-operand branch.
func (c *Core) execute(i uref, u *uop) {
	u.issued = true
	c.iqCount--
	in := u.inst
	a := c.physVal[u.ps1]
	b := c.physVal[u.ps2]
	old := c.physVal[u.ps3]

	spec := c.specWatch != nil && specWatched(u)
	if spec {
		c.emitSpec(SpecEvent{Kind: SpecIssue, Seq: u.seq, PC: u.pc})
	}

	switch u.cl {
	case isa.ClassBranch:
		u.actualTaken = isa.BranchTaken(in.Op, a, b)
		u.actualTarget = u.pc + uint64(in.Imm)
		if !u.actualTaken {
			u.actualTarget = u.npc
		}
		if u.isSJmp {
			// sJMP never redirects at execute: the fall-through (NT) path is
			// architecturally first, and the commit-time controller uses the
			// computed target. The taken target is stored regardless of the
			// outcome so jbTable contents never depend on the secret's
			// data-path timing.
			u.actualTarget = u.pc + uint64(in.Imm)
			u.mispredict = false
		} else {
			predPC := u.npc
			if u.predTaken {
				predPC = u.predTarget
			}
			u.mispredict = u.actualTarget != predPC
		}
		if spec {
			c.emitSpec(SpecEvent{Kind: SpecBranchExec, Seq: u.seq, PC: u.pc, Addr: u.actualTarget,
				Taken: u.actualTaken, Mispredict: u.mispredict})
		}
		u.doneCycle = c.cycle + uint64(c.cfg.LatBranch)
	case isa.ClassJump:
		switch in.Op {
		case isa.OpJmp:
			u.actualTarget = u.pc + uint64(in.Imm)
		case isa.OpJal:
			u.actualTarget = u.pc + uint64(in.Imm)
			u.result = u.npc
		case isa.OpJalr:
			u.actualTarget = a + uint64(in.Imm)
			u.result = u.npc
		}
		u.actualTaken = true
		u.mispredict = u.actualTarget != u.predTarget
		if spec {
			c.emitSpec(SpecEvent{Kind: SpecBranchExec, Seq: u.seq, PC: u.pc, Addr: u.actualTarget,
				Taken: true, Mispredict: u.mispredict})
		}
		u.doneCycle = c.cycle + uint64(c.cfg.LatBranch)
	case isa.ClassLoad:
		u.memAddr = isa.MemAddr(in, a)
		if spec {
			// Attribute DL1/L2 fills (and triggered prefetches) to this load.
			c.specPC, c.specSeq = u.pc, u.seq
		}
		lat, forwarded, val := c.loadAccess(u)
		u.result = val
		_ = forwarded
		if spec {
			c.emitSpec(SpecEvent{Kind: SpecMemExec, Seq: u.seq, PC: u.pc, Addr: u.memAddr, Lat: uint16(lat)})
		}
		u.doneCycle = c.cycle + uint64(c.cfg.LatAGU+lat)
	case isa.ClassStore:
		u.memAddr = isa.MemAddr(in, a)
		u.storeData = old // ps3 carries the data register
		if spec {
			c.emitSpec(SpecEvent{Kind: SpecMemExec, Seq: u.seq, PC: u.pc, Addr: u.memAddr, Write: true})
		}
		u.doneCycle = c.cycle + uint64(c.cfg.LatAGU)
	case isa.ClassMul:
		u.result, _ = isa.EvalALU(in, a, b, old)
		u.doneCycle = c.cycle + uint64(c.cfg.LatMul)
	case isa.ClassDiv:
		u.result, _ = isa.EvalALU(in, a, b, old)
		u.doneCycle = c.cycle + uint64(c.cfg.LatDiv)
	default:
		u.result, _ = isa.EvalALU(in, a, b, old)
		u.doneCycle = c.cycle + uint64(c.cfg.LatALU)
	}
	// File into the completion calendar. calNext trails the arena lazily;
	// any slot beyond its length has never been filed.
	if int(i) >= len(c.calNext) {
		for len(c.calNext) < len(c.pool.arena) {
			c.calNext = append(c.calNext, -1)
		}
	}
	if u.doneCycle-c.cycle <= c.calMask {
		b := u.doneCycle & c.calMask
		c.calNext[i] = c.calBuckets[b]
		c.calBuckets[b] = i
	} else {
		c.calOverflow = append(c.calOverflow, i)
	}
	c.execCount++
}

// loadCanExecute implements conservative memory disambiguation: a load may
// execute only when every older store in the store queue has computed its
// address, and any overlapping older store either fully covers the load
// (store-to-load forwarding) or has already left the queue.
func (c *Core) loadCanExecute(u *uop) bool {
	arena := c.pool.arena
	for _, si := range c.sq {
		s := &arena[si]
		if s.seq >= u.seq {
			break
		}
		if !s.issued {
			return false // unknown address: wait
		}
	}
	// All older store addresses known; check overlap.
	if s := c.youngestOverlapping(u); s != nil {
		if covers(s, u) {
			return true // will forward
		}
		return false // partial overlap: wait for the store to commit
	}
	return true
}

func (c *Core) youngestOverlapping(u *uop) *uop {
	var found *uop
	arena := c.pool.arena
	for _, si := range c.sq {
		s := &arena[si]
		if s.seq >= u.seq {
			break
		}
		if overlaps(s, u) {
			found = s
		}
	}
	return found
}

func overlaps(s, l *uop) bool {
	sEnd := s.memAddr + uint64(s.memWidth)
	lEnd := l.memAddr + uint64(l.memWidth)
	return s.memAddr < lEnd && l.memAddr < sEnd
}

func covers(s, l *uop) bool {
	return s.memAddr <= l.memAddr &&
		s.memAddr+uint64(s.memWidth) >= l.memAddr+uint64(l.memWidth)
}

// loadAccess returns (cache latency, forwarded, value) for a load whose
// address is computed. A forwarded load is satisfied from the store queue
// and does not access the cache, matching conventional store-to-load
// forwarding.
func (c *Core) loadAccess(u *uop) (int, bool, uint64) {
	if s := c.youngestOverlapping(u); s != nil && covers(s, u) {
		c.Stats.LoadForwards++
		off := u.memAddr - s.memAddr
		val := s.storeData >> (8 * off)
		if u.memWidth == 1 {
			val &= 0xFF
		}
		return 1, true, val
	}
	var val uint64
	if u.memWidth == 8 {
		val = c.mem.Read64(u.memAddr)
	} else {
		val = uint64(c.mem.Read8(u.memAddr))
	}
	lat := c.Hier.DL1.AccessPC(u.pc, u.memAddr, false)
	return lat, false, val
}

// writeback completes executed micro-ops whose latency has elapsed, wakes
// dependents, and resolves branch mispredictions (oldest first). The
// completion calendar makes this O(completions this cycle): the current
// wheel bucket holds exactly the ops whose doneCycle is now (every entry is
// filed less than a full wheel turn ahead and buckets are drained every
// cycle), plus any ops a flush squashed mid-flight, which are reclaimed
// when their bucket comes due.
func (c *Core) writeback() {
	if c.execCount == 0 {
		return
	}
	b := c.cycle & c.calMask
	n := c.calBuckets[b]
	if n < 0 && len(c.calOverflow) == 0 {
		return
	}
	c.calBuckets[b] = -1
	// wbScratch is preallocated at ROBSize (the calendar never holds more
	// than the in-flight window), so these appends never grow it and the
	// header need not be stored back — no GC write barrier.
	due := c.wbScratch[:0]
	for n >= 0 {
		due = append(due, n)
		n = c.calNext[n]
	}
	// The bucket chain is LIFO over filing order and filing order is close
	// to seq order (issue executes oldest-first), so the chain walk yields a
	// mostly-descending list. Reverse it so the oldest-first insertion sort
	// below sees near-sorted input and runs near-linear instead of quadratic.
	for l, r := 0, len(due)-1; l < r; l, r = l+1, r-1 {
		due[l], due[r] = due[r], due[l]
	}
	if len(c.calOverflow) > 0 {
		// Degenerate-config safety net: latencies past the wheel are scanned
		// linearly. Unreachable with the shipped configurations.
		keep := c.calOverflow[:0]
		for _, i := range c.calOverflow {
			u := &c.pool.arena[i]
			if u.squashed || u.doneCycle <= c.cycle {
				due = append(due, i)
			} else {
				keep = append(keep, i)
			}
		}
		c.calOverflow = keep
	}
	arena := c.pool.arena
	// Oldest-first: mispredict resolution order must match the full scan's
	// seq order. The due list is tiny (completions of one cycle).
	for i := 1; i < len(due); i++ {
		for j := i; j > 0 && arena[due[j]].seq < arena[due[j-1]].seq; j-- {
			due[j], due[j-1] = due[j-1], due[j]
		}
	}
	for _, i := range due {
		u := &arena[i]
		c.execCount--
		if u.squashed {
			// Flushed while in flight: the calendar held the last live
			// reference (flushAfter removed it from every other structure).
			c.pool.put(i)
			continue
		}
		if u.hasDest {
			c.physVal[u.pd] = u.result
			c.physReady[u.pd] = true
			if c.waitHead[u.pd] >= 0 {
				c.wakePreg(u.pd)
			}
		}
		u.completed = true
		if u.mispredict {
			c.Stats.BranchMispredicts++
			c.flushAfter(u, u.actualTarget, FlushMispredict)
			// Younger due ops now carry the squashed mark and are reclaimed
			// by the check above as this loop reaches them.
		}
	}
}
