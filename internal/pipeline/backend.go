package pipeline

import (
	"repro/internal/isa"
)

// issue selects ready micro-ops from the issue queue (oldest first, up to
// IssueWidth and the per-class functional-unit limits), reads their
// operands, computes results, and schedules completion.
func (c *Core) issue() {
	issued := 0
	alu, muldiv, load, store, branch := 0, 0, 0, 0, 0
	out := c.iq[:0]
	for _, u := range c.iq {
		if issued >= c.cfg.IssueWidth {
			out = append(out, u)
			continue
		}
		if !c.operandsReady(u) {
			out = append(out, u)
			continue
		}
		cl := u.class()
		var ok bool
		switch cl {
		case isa.ClassALU, isa.ClassCMov:
			if alu < c.cfg.NumALU {
				alu++
				ok = true
			}
		case isa.ClassMul, isa.ClassDiv:
			if muldiv < c.cfg.NumMulDiv {
				muldiv++
				ok = true
			}
		case isa.ClassLoad:
			if load < c.cfg.NumLoad && c.loadCanExecute(u) {
				load++
				ok = true
			}
		case isa.ClassStore:
			if store < c.cfg.NumStore {
				store++
				ok = true
			}
		case isa.ClassBranch, isa.ClassJump:
			if branch < c.cfg.NumBranch {
				branch++
				ok = true
			}
		}
		if !ok {
			out = append(out, u)
			continue
		}
		c.execute(u)
		issued++
	}
	c.iq = out
}

// operandsReady reports whether all renamed sources have produced values.
func (c *Core) operandsReady(u *uop) bool {
	if u.ps1 >= 0 && !c.physReady[u.ps1] {
		return false
	}
	if u.ps2 >= 0 && !c.physReady[u.ps2] {
		return false
	}
	if u.ps3 >= 0 && !c.physReady[u.ps3] {
		return false
	}
	return true
}

func (c *Core) srcVal(p int) uint64 {
	if p < 0 {
		return 0
	}
	return c.physVal[p]
}

// execute computes u's result and schedules its completion.
func (c *Core) execute(u *uop) {
	u.issued = true
	in := u.inst
	a := c.srcVal(u.ps1)
	b := c.srcVal(u.ps2)
	old := c.srcVal(u.ps3)

	switch u.class() {
	case isa.ClassBranch:
		u.actualTaken = isa.BranchTaken(in.Op, a, b)
		u.actualTarget = u.pc + uint64(in.Imm)
		if !u.actualTaken {
			u.actualTarget = u.npc
		}
		if u.isSJmp {
			// sJMP never redirects at execute: the fall-through (NT) path is
			// architecturally first, and the commit-time controller uses the
			// computed target. The taken target is stored regardless of the
			// outcome so jbTable contents never depend on the secret's
			// data-path timing.
			u.actualTarget = u.pc + uint64(in.Imm)
			u.mispredict = false
		} else {
			predPC := u.npc
			if u.predTaken {
				predPC = u.predTarget
			}
			u.mispredict = u.actualTarget != predPC
		}
		u.doneCycle = c.cycle + uint64(c.cfg.LatBranch)
	case isa.ClassJump:
		switch in.Op {
		case isa.OpJmp:
			u.actualTarget = u.pc + uint64(in.Imm)
		case isa.OpJal:
			u.actualTarget = u.pc + uint64(in.Imm)
			u.result = u.npc
		case isa.OpJalr:
			u.actualTarget = a + uint64(in.Imm)
			u.result = u.npc
		}
		u.actualTaken = true
		u.mispredict = u.actualTarget != u.predTarget
		u.doneCycle = c.cycle + uint64(c.cfg.LatBranch)
	case isa.ClassLoad:
		u.memAddr = isa.MemAddr(in, a)
		lat, forwarded, val := c.loadAccess(u)
		u.result = val
		_ = forwarded
		u.doneCycle = c.cycle + uint64(c.cfg.LatAGU+lat)
	case isa.ClassStore:
		u.memAddr = isa.MemAddr(in, a)
		u.storeData = old // ps3 carries the data register
		u.doneCycle = c.cycle + uint64(c.cfg.LatAGU)
	case isa.ClassMul:
		u.result, _ = isa.EvalALU(in, a, b, old)
		u.doneCycle = c.cycle + uint64(c.cfg.LatMul)
	case isa.ClassDiv:
		u.result, _ = isa.EvalALU(in, a, b, old)
		u.doneCycle = c.cycle + uint64(c.cfg.LatDiv)
	default:
		u.result, _ = isa.EvalALU(in, a, b, old)
		u.doneCycle = c.cycle + uint64(c.cfg.LatALU)
	}
	c.exec = append(c.exec, u)
}

// loadCanExecute implements conservative memory disambiguation: a load may
// execute only when every older store in the store queue has computed its
// address, and any overlapping older store either fully covers the load
// (store-to-load forwarding) or has already left the queue.
func (c *Core) loadCanExecute(u *uop) bool {
	for _, s := range c.sq {
		if s.seq >= u.seq {
			break
		}
		if !s.issued {
			return false // unknown address: wait
		}
	}
	// All older store addresses known; check overlap.
	if s := c.youngestOverlapping(u); s != nil {
		if covers(s, u) {
			return true // will forward
		}
		return false // partial overlap: wait for the store to commit
	}
	return true
}

func (c *Core) youngestOverlapping(u *uop) *uop {
	var found *uop
	for _, s := range c.sq {
		if s.seq >= u.seq {
			break
		}
		if overlaps(s, u) {
			found = s
		}
	}
	return found
}

func overlaps(s, l *uop) bool {
	sEnd := s.memAddr + uint64(s.memWidth)
	lEnd := l.memAddr + uint64(l.memWidth)
	return s.memAddr < lEnd && l.memAddr < sEnd
}

func covers(s, l *uop) bool {
	return s.memAddr <= l.memAddr &&
		s.memAddr+uint64(s.memWidth) >= l.memAddr+uint64(l.memWidth)
}

// loadAccess returns (cache latency, forwarded, value) for a load whose
// address is computed. Forwarded loads still probe the DL1 for timing/stats
// realism? No: a forwarded load is satisfied from the store queue and does
// not access the cache, matching conventional store-to-load forwarding.
func (c *Core) loadAccess(u *uop) (int, bool, uint64) {
	if s := c.youngestOverlapping(u); s != nil && covers(s, u) {
		c.Stats.LoadForwards++
		off := u.memAddr - s.memAddr
		val := s.storeData >> (8 * off)
		if u.memWidth == 1 {
			val &= 0xFF
		}
		return 1, true, val
	}
	var val uint64
	if u.memWidth == 8 {
		val = c.mem.Read64(u.memAddr)
	} else {
		val = uint64(c.mem.Read8(u.memAddr))
	}
	lat := c.Hier.DL1.AccessPC(u.pc, u.memAddr, false)
	return lat, false, val
}

// writeback completes executed micro-ops whose latency has elapsed, wakes
// dependents, and resolves branch mispredictions (oldest first).
func (c *Core) writeback() {
	// exec is kept in program order (issue preserves order of insertion by
	// seq within a cycle and ROB order across cycles is close enough for
	// oldest-first resolution; sort defensively by seq).
	insertionSortBySeq(c.exec)
	out := c.exec[:0]
	for _, u := range c.exec {
		if u.squashed {
			// Flushed while in flight: exec held the last live reference
			// (flushAfter already removed it from every other structure).
			c.pool.put(u)
			continue
		}
		if u.doneCycle > c.cycle {
			out = append(out, u)
			continue
		}
		if u.hasDest {
			c.physVal[u.pd] = u.result
			c.physReady[u.pd] = true
		}
		u.completed = true
		if u.mispredict {
			c.Stats.BranchMispredicts++
			c.flushAfter(u, u.actualTarget)
			// flushAfter marked younger ops squashed; drop any already
			// copied into out and recycle them (their flush deferred the
			// free to us).
			rebuilt := out[:0]
			for _, v := range out {
				if !v.squashed {
					rebuilt = append(rebuilt, v)
				} else {
					c.pool.put(v)
				}
			}
			out = rebuilt
		}
	}
	c.exec = out
}

func insertionSortBySeq(s []*uop) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].seq < s[j-1].seq; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
