package pipeline

import "repro/internal/isa"

// uop is one in-flight micro-operation. The simulated ISA maps 1:1 from
// instructions to micro-ops.
type uop struct {
	seq  uint64 // global program-order sequence number
	inst isa.Inst
	pc   uint64 // address of the first byte (including SecPrefix)
	npc  uint64 // next sequential pc

	// Front-end prediction state.
	predTaken  bool
	predTarget uint64

	// Rename state. Negative physical register indices mean "unused".
	ps1, ps2, ps3 int // sources: Ra, Rb, old-Rd (ST data / CMOV old value)
	pd            int // destination physical register
	oldPd         int // previous mapping of Rd, freed at commit
	hasDest       bool

	// Execution state.
	issued    bool
	completed bool
	doneCycle uint64
	result    uint64

	// Memory state.
	isLoad    bool
	isStore   bool
	memAddr   uint64
	memWidth  int
	storeData uint64

	// Control-flow resolution.
	actualTaken  bool
	actualTarget uint64
	mispredict   bool

	// SeMPE roles (set only when the core runs with SeMPE enabled).
	isSJmp   bool
	isEOSJmp bool

	squashed bool
}

// class returns the functional-unit class of the micro-op.
func (u *uop) class() isa.Class { return u.inst.Op.ClassOf() }

// uopChunk is how many micro-ops the pool allocates at a time. One chunk
// covers a full 192-entry ROB plus front-end buffers, so steady state runs
// allocation-free after the second chunk.
const uopChunk = 256

// uopPool recycles micro-ops so the pipeline loop performs no per-uop heap
// allocation in steady state. Ops are backed by arena chunks; get always
// returns a fully zeroed uop, so no operand, flag, or squash state can leak
// from a previous (possibly flushed) use.
type uopPool struct {
	free []*uop
}

func (p *uopPool) get() *uop {
	if len(p.free) == 0 {
		chunk := make([]uop, uopChunk)
		if cap(p.free) < uopChunk {
			p.free = make([]*uop, 0, 2*uopChunk)
		}
		for i := range chunk {
			p.free = append(p.free, &chunk[i])
		}
	}
	u := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	*u = uop{}
	return u
}

func (p *uopPool) put(u *uop) {
	p.free = append(p.free, u)
}

// uopRing is a fixed-capacity FIFO of in-flight micro-ops. The front-end
// buffers (fetchBuf, decodeQ) pop from the head every cycle; a ring keeps
// that O(1) with zero allocation, unlike the append-and-reslice pattern,
// whose backing array drifts and forces append to reallocate.
type uopRing struct {
	buf  []*uop
	head int
	n    int
}

func newUopRing(capacity int) uopRing {
	return uopRing{buf: make([]*uop, capacity)}
}

func (r *uopRing) len() int   { return r.n }
func (r *uopRing) full() bool { return r.n == len(r.buf) }

func (r *uopRing) push(u *uop) {
	r.buf[(r.head+r.n)%len(r.buf)] = u
	r.n++
}

func (r *uopRing) front() *uop { return r.buf[r.head] }

func (r *uopRing) pop() *uop {
	u := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return u
}
