package pipeline

import "repro/internal/isa"

// uop is one in-flight micro-operation. The simulated ISA maps 1:1 from
// instructions to micro-ops.
type uop struct {
	seq  uint64 // global program-order sequence number
	inst isa.Inst
	pc   uint64 // address of the first byte (including SecPrefix)
	npc  uint64 // next sequential pc

	// Front-end prediction state.
	predTaken  bool
	predTarget uint64

	// Rename state. Negative physical register indices mean "unused".
	ps1, ps2, ps3 int // sources: Ra, Rb, old-Rd (ST data / CMOV old value)
	pd            int // destination physical register
	oldPd         int // previous mapping of Rd, freed at commit
	hasDest       bool

	// Execution state.
	issued    bool
	completed bool
	doneCycle uint64
	result    uint64

	// Memory state.
	isLoad    bool
	isStore   bool
	memAddr   uint64
	memWidth  int
	storeData uint64

	// Control-flow resolution.
	actualTaken  bool
	actualTarget uint64
	mispredict   bool

	// SeMPE roles (set only when the core runs with SeMPE enabled).
	isSJmp   bool
	isEOSJmp bool

	squashed bool
}

// class returns the functional-unit class of the micro-op.
func (u *uop) class() isa.Class { return u.inst.Op.ClassOf() }
