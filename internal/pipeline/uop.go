package pipeline

import "repro/internal/isa"

// uop is one in-flight micro-operation. The simulated ISA maps 1:1 from
// instructions to micro-ops. Micro-ops live in a flat per-core arena and are
// referenced everywhere by index (uref), never by pointer: the ROB, issue
// queue, memory queues, and front-end rings are all []uref, which keeps the
// whole in-flight window invisible to the garbage collector — no pointer
// slots to scan and no write barriers on the per-cycle queue traffic, which
// profiles showed costing ~15% of simulation time.
// Field order groups same-width fields so the struct packs without padding
// holes (128 bytes instead of 152 declaration-ordered): superblock replay
// copies a whole prototype uop per fetched instruction, so struct size is
// copy cost.
type uop struct {
	// 8-byte fields.
	seq          uint64 // global program-order sequence number
	pc           uint64 // address of the first byte (including SecPrefix)
	npc          uint64 // next sequential pc
	predTarget   uint64 // front-end predicted target
	doneCycle    uint64 // execution completes at this cycle
	result       uint64
	memAddr      uint64
	storeData    uint64
	actualTarget uint64 // resolved control-flow target

	inst isa.Inst

	// Rename state (2-byte). Unused sources rename to the psNone sentinel
	// (always ready, value 0); pd/oldPd use -1 for "none" (guarded by
	// hasDest). int16 holds any PhysRegs size in use.
	ps1, ps2, ps3 int16 // sources: Ra, Rb, old-Rd (ST data / CMOV old value)
	pd            int16 // destination physical register
	oldPd         int16 // previous mapping of Rd, freed at commit

	// Static per-instruction metadata (1-byte), resolved once at fetch
	// (legacy walk) or once per superblock build (replay copies it with the
	// prototype): functional-unit class, the architectural source registers
	// rename must map into ps1..ps3 (-1 = unused), the destination-write
	// flag, and the memory-op shape.
	cl               isa.Class
	sra1, sra2, sra3 int8
	writesRd         bool
	isLoad           bool
	isStore          bool
	memWidth         uint8

	// Dynamic flags (1-byte).
	predTaken   bool
	notReady    int8 // pending source-operand count (issue wakeup)
	hasDest     bool
	issued      bool
	completed   bool
	actualTaken bool
	mispredict  bool
	isSJmp      bool // SeMPE roles, set only when the core runs with SeMPE
	isEOSJmp    bool
	squashed    bool
	fromReplay  bool // fetched via superblock replay (wrong-path accounting)
}

// uref is an index into the core's uop arena. nilRef means "no micro-op".
type uref = int32

const nilRef uref = -1

// uopChunk is how many micro-ops the arena grows by at a time. One chunk
// covers a full 192-entry ROB plus front-end buffers, so steady state runs
// allocation-free after the second chunk.
const uopChunk = 256

// uopPool recycles micro-ops so the pipeline loop performs no per-uop heap
// allocation in steady state. Ops live in a single growable arena; indices
// stay valid across growth (unlike pointers), so every pipeline structure
// stores uref indices. get returns a fully zeroed uop, so no operand, flag,
// or squash state can leak from a previous (possibly flushed) use; getRaw
// skips the zeroing for callers that overwrite the whole struct (superblock
// replay copies a complete prototype over the slot).
//
// Invariant: no *uop obtained from the arena may be held across a get/getRaw
// call — growth can move the backing array.
type uopPool struct {
	arena []uop
	free  []uref
}

func (p *uopPool) grow() {
	if cap(p.free) < uopChunk {
		p.free = make([]uref, 0, 2*uopChunk)
	}
	base := len(p.arena)
	var zero [uopChunk]uop
	p.arena = append(p.arena, zero[:]...)
	for i := uopChunk - 1; i >= 0; i-- {
		p.free = append(p.free, uref(base+i))
	}
}

// reserve guarantees the next n get/getRaw calls will not grow (and so not
// move) the arena, letting hot loops hoist the arena pointer across them.
func (p *uopPool) reserve(n int) {
	if len(p.free) < n {
		p.grow()
	}
}

func (p *uopPool) getRaw() uref {
	if len(p.free) == 0 {
		p.grow()
	}
	i := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	return i
}

func (p *uopPool) get() uref {
	i := p.getRaw()
	p.arena[i] = uop{}
	return i
}

func (p *uopPool) put(i uref) {
	p.free = append(p.free, i)
}

// reset returns every arena slot to the free list, highest index first, so
// the next get sequence hands out ascending indices — the same order a
// fresh pool's lazy growth produces. Slot contents are not zeroed here:
// get zeroes on acquisition and getRaw callers overwrite the whole struct.
func (p *uopPool) reset() {
	if cap(p.free) < len(p.arena) {
		p.free = make([]uref, 0, len(p.arena)+uopChunk)
	}
	p.free = p.free[:0]
	for i := len(p.arena) - 1; i >= 0; i-- {
		p.free = append(p.free, uref(i))
	}
}

// uopRing is a fixed-capacity FIFO of in-flight micro-op references. The
// front-end buffers (fetchBuf, decodeQ) pop from the head every cycle; the
// backing store is rounded up to a power of two so head arithmetic is a mask
// instead of an integer division, while full() still honors the configured
// (possibly non-power-of-two) capacity.
type uopRing struct {
	buf  []uref
	mask int
	head int
	n    int
	cap  int
}

func newUopRing(capacity int) uopRing {
	sz := 1
	for sz < capacity {
		sz <<= 1
	}
	return uopRing{buf: make([]uref, sz), mask: sz - 1, cap: capacity}
}

func (r *uopRing) len() int   { return r.n }
func (r *uopRing) full() bool { return r.n == r.cap }

func (r *uopRing) push(i uref) {
	r.buf[(r.head+r.n)&r.mask] = i
	r.n++
}

func (r *uopRing) front() uref { return r.buf[r.head] }

func (r *uopRing) pop() uref {
	i := r.buf[r.head]
	r.head = (r.head + 1) & r.mask
	r.n--
	return i
}

// feRing fuses the fetch buffer and the decode queue into one ring buffer.
// Micro-ops flow fetch → decode → rename strictly FIFO through both stages,
// so the decode stage does not need to move elements between two rings: the
// ring holds [head, head+nDec) as the decode queue (rename pops the head)
// followed by nFetch fetched-but-undecoded entries, and decode just moves
// the boundary. Capacity limits of both logical buffers are enforced
// separately, so flow control (fetch stalling on a full fetch buffer, decode
// stalling on a full decode queue) is cycle-identical to the two-ring form.
type feRing struct {
	buf      []uref
	mask     int
	head     int
	nDec     int // decoded entries, available to rename
	nFetch   int // fetched entries, not yet past the decode boundary
	decCap   int
	fetchCap int
}

func newFERing(decCap, fetchCap int) feRing {
	sz := 1
	for sz < decCap+fetchCap {
		sz <<= 1
	}
	return feRing{buf: make([]uref, sz), mask: sz - 1, decCap: decCap, fetchCap: fetchCap}
}

func (r *feRing) fetchFull() bool { return r.nFetch == r.fetchCap }
func (r *feRing) empty() bool     { return r.nDec == 0 && r.nFetch == 0 }
func (r *feRing) decLen() int     { return r.nDec }
func (r *feRing) frontDec() uref  { return r.buf[r.head] }

func (r *feRing) pushFetched(i uref) {
	r.buf[(r.head+r.nDec+r.nFetch)&r.mask] = i
	r.nFetch++
}

// decodeAdvance moves up to max fetched entries across the decode boundary,
// bounded by the decode queue's free space — the whole decode stage in O(1).
func (r *feRing) decodeAdvance(max int) {
	k := r.decCap - r.nDec
	if k > r.nFetch {
		k = r.nFetch
	}
	if k > max {
		k = max
	}
	r.nDec += k
	r.nFetch -= k
}

func (r *feRing) popDec() uref {
	i := r.buf[r.head]
	r.head = (r.head + 1) & r.mask
	r.nDec--
	return i
}

// popAny removes the oldest entry regardless of stage (front-end flush).
func (r *feRing) popAny() uref {
	i := r.buf[r.head]
	r.head = (r.head + 1) & r.mask
	if r.nDec > 0 {
		r.nDec--
	} else {
		r.nFetch--
	}
	return i
}
