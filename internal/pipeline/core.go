package pipeline

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/prefetch"
	"repro/internal/sempe"
)

// superblockDefaultOn is the process-wide default for the superblock engine,
// captured by New into each core. It exists for differential testing (run
// the same grid with the engine force-disabled and diff the artifacts) and
// is not meant to be toggled mid-run: cores read it once at construction.
var superblockDefaultOn atomic.Bool

func init() { superblockDefaultOn.Store(true) }

// SetSuperblockDefault flips the process-wide superblock default and returns
// the previous value. Tests use it to run entire scenario grids with the
// cached-trace front end off; per-core control is Config.DisableSuperblock.
func SetSuperblockDefault(on bool) bool { return superblockDefaultOn.Swap(on) }

// wrongPathReplayDefaultOn is the process-wide default for superblock
// replay through speculative (potentially wrong-path) fetch, captured by
// New into each core like superblockDefaultOn.
var wrongPathReplayDefaultOn atomic.Bool

func init() { wrongPathReplayDefaultOn.Store(true) }

// SetWrongPathReplayDefault flips the process-wide wrong-path replay
// default and returns the previous value. With it off, cores divert to the
// legacy fetch walk whenever a control-flow op is in flight; per-core
// control is Config.DisableWrongPathReplay.
func SetWrongPathReplayDefault(on bool) bool { return wrongPathReplayDefaultOn.Swap(on) }

// Core is one simulated processor instance. A Core runs a single program to
// completion; construct a fresh Core per run.
type Core struct {
	cfg  Config
	prog *isa.Program
	mem  *mem.Memory

	Hier *cache.Hierarchy
	BP   *bpred.Unit
	JB   *sempe.JBTable
	SPM  *mem.SPM

	stridePF *prefetch.Stride
	streamPF *prefetch.Stream

	cycle uint64
	seq   uint64

	// Committed architectural state.
	archRegs [isa.NumArchRegs]uint64
	halted   bool

	// Rename structures. rat, physVal, and physReady each carry one sentinel
	// slot past their architectural/physical size: rat[sraNone] is pinned to
	// psNone, physVal[psNone] to 0, and physReady[psNone] to true, so rename
	// and execute index them unconditionally for unused source operands
	// instead of branching on a -1 marker per operand.
	rat       [isa.NumArchRegs + 1]int16
	physVal   []uint64
	physReady []bool
	freeList  []int16

	// Reorder buffer: a ring of in-flight micro-op references.
	rob      []uref
	robHead  int
	robCount int

	// Scheduler. The issue queue is event-driven rather than scanned: a
	// dispatched micro-op counts its not-yet-ready sources (notReady) and
	// registers itself on the waiter list of each pending physical register;
	// when a register is written (writeback or an ArchRS restore) its waiters
	// are woken, and ops whose count hits zero are inserted seq-ordered into
	// readyList. issue therefore touches only ready work — selection order
	// and outcome are identical to an oldest-first full scan, at O(ready)
	// instead of O(IQSize) per cycle. iqCount tracks occupancy for the
	// dispatch structural check (the queue itself has no other use).
	// readyList is a fixed-capacity buffer (IQSize) with an explicit count:
	// insertions and compaction never store a slice header back into the
	// Core, so the per-wakeup traffic incurs no GC write barriers.
	iqCount      int
	readyList    []uref
	readyCount   int
	waitHead     []int32 // per-physreg chain head into waitNodes, -1 empty
	waitNodes    []waitNode
	waitFreeHead int32 // free-node chain through waitNode.next, -1 empty

	// Memory queues (kept in program order).
	lq []uref
	sq []uref

	// Completion calendar: executed micro-ops are filed into a time-wheel
	// bucket keyed by doneCycle, chained through calNext (parallel to the
	// uop arena), so writeback touches exactly the ops completing this cycle
	// instead of re-scanning everything in flight. The wheel is sized at New
	// to exceed the largest latency execute can produce; calOverflow catches
	// anything longer (unreachable with sane configs) with a linear scan.
	// Squashed ops stay filed and are reclaimed when their bucket drains.
	calBuckets  []int32 // per-slot chain head (uref), -1 empty
	calNext     []int32 // parallel to pool.arena: next op in the same bucket
	calMask     uint64
	calOverflow []uref
	execCount   int    // scheduled, not-yet-drained ops (incl. squashed)
	wbScratch   []uref // writeback's per-cycle due list

	// Front end.
	fetchPC         uint64
	fetchStallUntil uint64
	fetchHalted     bool   // fetched a HALT; wait for commit or flush
	fetchBroken     bool   // undecodable bytes (wrong path); wait for flush
	fe              feRing // fused fetch buffer + decode queue

	// Pre-decode cache, indexed by pc-CodeBase: each static instruction is
	// decoded once, not on every fetch of the same pc. When sharedDecoded is
	// non-nil the table belongs to a Prototype for that program: it is fully
	// resolved (so predecAt's lazy fill never writes) and shared with other
	// cores, and Reset must detach rather than clear it in place.
	decoded       []predec
	sharedDecoded *isa.Program

	// Superblock engine (see superblock.go): cached decoded straight-line
	// traces replayed by fetch, plus the replay cursor.
	sbOff bool // engine disabled for this core (config or process default)
	// Wrong-path replay control (differential testing): with wpOff set,
	// fetch diverts to the legacy walk whenever specCtl — the number of
	// renamed, unresolved control-flow ops — is nonzero, so the replay path
	// never fetches down a potentially mispredicted path. specCtl is
	// maintained only when wpOff (rename increments; retire and squash
	// decrement), keeping the default path free of the bookkeeping.
	wpOff    bool
	specCtl  int
	sbIndex  []int32
	sbBlocks []superblock
	sbCur    int32 // block being replayed, -1 when none
	sbCurIdx int32 // next entry within sbCur
	SBStats  SuperblockStats
	// sbEntryPool recycles superblock entry slices across Reset, so a pooled
	// core's rebuilds after reset are allocation-free at steady state.
	sbEntryPool [][]sbEntry
	// sbBuildSeqs stamps each build with the seq it was triggered at, in
	// ascending order; flushes truncate the wrong-path tail into
	// SBStats.WrongPathBuilds (sbCountWrongPathBuilds).
	sbBuildSeqs []uint64

	// Micro-op recycling (zero-alloc steady state).
	pool      uopPool
	squashTmp []uref // scratch for flushAfter's deferred frees

	// SeMPE sequencing. renameBlocked holds rename while an eosJMP is in
	// flight (pipeline drain 2/3 of the paper's Fig. 6); renameStallUntil
	// serializes the ArchRS save/restore SPM traffic after drains; ovfDepth
	// counts live secure regions downgraded to non-secure by the overflow
	// policy.
	renameBlocked    bool
	renameStallUntil uint64
	ovfDepth         int
	inTScratch       []bool

	// Observable digests for the leak checker.
	commitDigest uint64
	memDigest    uint64

	// Optional full-trace capture (leak diffing in tests).
	TraceCommits bool
	CommitPCs    []uint64
	MemTrace     []uint64

	// Commit-time observability hooks for the attack lab (internal/attack).
	// MemWatch, when non-nil, is invoked for every committed load and store
	// with the access address, kind, and commit cycle — the harness installs
	// it to timestamp marker stores, turning the committed-access stream
	// into per-segment timings an attacker program "measures". BranchWatch,
	// when non-nil, sees every committed conditional branch with its outcome
	// and whether it mispredicted. Both are nil in normal runs and cost one
	// nil check per committed op. Both hooks fire at retire, independent of
	// which fetch path produced the micro-op, so arming them composes with
	// the superblock replay front end (whose cycle-level equivalence the
	// differential scenario suite pins).
	MemWatch    func(addr uint64, write bool, cycle uint64)
	BranchWatch func(pc uint64, taken, mispredicted bool, cycle uint64)

	// Speculative-window observability (spec.go). specWatch, when armed,
	// receives execute-time SpecEvents for all in-flight work — wrong-path
	// included — and forces fetch onto the legacy walk (the emission points
	// live there). specFromDefault records that the hook came from the
	// process default so Reset can re-read it; an explicitly armed hook is
	// caller-owned and preserved like MemWatch. specPC/specSeq stamp the
	// access context cache-fill events are attributed to; specEmitted and
	// specPub feed the process-wide counters (publishSpecCounters).
	specWatch       func(SpecEvent)
	specFromDefault bool
	specPC, specSeq uint64
	specEmitted     uint64
	specPub         SpecCounters

	lastCommitCycle uint64

	Stats Stats
}

// SuperblockStats counts superblock-engine activity. It lives outside Stats
// so artifact rows never serialize it: replay counts differ between
// superblock-enabled and force-disabled runs of the same program even though
// every architectural and cycle-level observable is identical.
type SuperblockStats struct {
	Builds     uint64 // superblocks constructed
	Replays    uint64 // instructions fetched via cached traces
	LegacyOps  uint64 // instructions fetched via the per-instruction walk
	FastTAGE   uint64 // (reserved) predictor fast-path hits, see bpred
	Invalidate uint64 // cursor drops from redirects into uncached targets
	ReKeys     uint64 // cursor re-keys onto a cached block at the redirect target
	// Wrong-path replay accounting: work the engine performed on paths that
	// a later flush or secure redirect discarded. Replays counts replayed
	// micro-ops squashed in the ROB or dropped from the front-end buffers;
	// Builds counts trace builds triggered by such fetches (the cached block
	// survives — static traces are path-independent).
	WrongPathBuilds  uint64
	WrongPathReplays uint64
}

// u resolves a micro-op reference. The returned pointer must not be held
// across a pool get/getRaw call (arena growth moves the backing array).
func (c *Core) u(i uref) *uop { return &c.pool.arena[i] }

// sraNone is the architectural-source sentinel: rat[sraNone] is pinned to
// psNone, so an unused source renames to the always-ready, always-zero
// sentinel physical register without a branch.
const sraNone = int8(isa.NumArchRegs)

// psNone is the sentinel physical register index (one past the configured
// register file).
func (c *Core) psNone() int16 { return int16(c.cfg.PhysRegs) }

// Errors returned by Run.
var (
	ErrMaxCycles = errors.New("pipeline: cycle budget exhausted")
	ErrDeadlock  = errors.New("pipeline: watchdog expired (no commits)")
)

// New builds a core for the given program. The memory image is created from
// the program; use NewOnMemory to supply a prepared image.
func New(cfg Config, prog *isa.Program) *Core {
	m := mem.NewMemory()
	m.Load(prog)
	return NewOnMemory(cfg, prog, m)
}

// NewOnMemory builds a core running prog on an existing memory image.
func NewOnMemory(cfg Config, prog *isa.Program, memory *mem.Memory) *Core {
	c := &Core{
		cfg:          cfg,
		prog:         prog,
		mem:          memory,
		Hier:         cache.NewHierarchy(cfg.Caches),
		BP:           bpred.NewUnit(),
		JB:           sempe.NewJBTable(cfg.SPM.Slots),
		SPM:          mem.NewSPM(cfg.SPM),
		physVal:      make([]uint64, cfg.PhysRegs+1),
		physReady:    make([]bool, cfg.PhysRegs+1),
		rob:          make([]uref, cfg.ROBSize),
		readyList:    make([]uref, cfg.IQSize),
		waitHead:     make([]int32, cfg.PhysRegs+1),
		waitNodes:    make([]waitNode, 0, 4*cfg.IQSize),
		waitFreeHead: -1,
		lq:           make([]uref, 0, cfg.LQSize),
		sq:           make([]uref, 0, cfg.SQSize),
		wbScratch:    make([]uref, 0, cfg.ROBSize+8),
		freeList:     make([]int16, 0, cfg.PhysRegs),
		fe:           newFERing(cfg.DecodeQSize, cfg.FetchBufSize),
		decoded:      make([]predec, len(prog.Code)),
		fetchPC:      prog.Entry,
		sbCur:        -1,
	}
	c.sbOff = cfg.DisableSuperblock || !superblockDefaultOn.Load()
	c.wpOff = cfg.DisableWrongPathReplay || !wrongPathReplayDefaultOn.Load()
	if !c.sbOff {
		c.sbIndex = make([]int32, len(prog.Code))
		for i := range c.sbIndex {
			c.sbIndex[i] = -1
		}
	}
	if cfg.StridePrefetchTable > 0 {
		c.stridePF = prefetch.NewStride(c.Hier.DL1, cfg.StridePrefetchTable, cfg.StridePrefetchDegree)
		c.Hier.DL1.SetObserver(c.stridePF)
	}
	if cfg.StreamWindow > 0 {
		c.streamPF = prefetch.NewStream(c.Hier.L2, cfg.StreamWindow, cfg.StreamDepth)
		c.Hier.L2.SetObserver(c.streamPF)
	}
	for p := range c.waitHead {
		c.waitHead[p] = -1
	}
	// Size the completion wheel past the longest latency execute can charge:
	// a load that misses DL1 and L2 and goes to memory, or the slowest ALU op.
	maxLat := cfg.LatAGU + cfg.Caches.DL1.HitLatency + cfg.Caches.L2.HitLatency + cfg.Caches.MemLatency
	for _, l := range []int{cfg.LatBranch, cfg.LatALU, cfg.LatMul, cfg.LatDiv} {
		if l > maxLat {
			maxLat = l
		}
	}
	wheel := 1
	for wheel < maxLat+2 {
		wheel <<= 1
	}
	c.calBuckets = make([]int32, wheel)
	for i := range c.calBuckets {
		c.calBuckets[i] = -1
	}
	c.calMask = uint64(wheel - 1)
	// Initial rename map: architectural register r lives in physical r.
	c.archRegs[isa.SP] = isa.DefaultStackTop
	for r := 0; r < isa.NumArchRegs; r++ {
		c.rat[r] = int16(r)
		c.physVal[r] = c.archRegs[r]
		c.physReady[r] = true
	}
	// Sentinel slots for unused source operands (see the rat field comment).
	c.rat[sraNone] = c.psNone()
	c.physReady[c.psNone()] = true
	for p := isa.NumArchRegs; p < cfg.PhysRegs; p++ {
		c.freeList = append(c.freeList, int16(p))
	}
	c.commitDigest = fnvOffset
	c.memDigest = fnvOffset
	c.armSpecDefault()
	return c
}

// Mem exposes the memory image (for result checking after a run).
func (c *Core) Mem() *mem.Memory { return c.mem }

// ArchRegs returns the committed architectural register file.
func (c *Core) ArchRegs() [isa.NumArchRegs]uint64 { return c.archRegs }

// Halted reports whether HALT has committed.
func (c *Core) Halted() bool { return c.halted }

// Cycles returns the current cycle count.
func (c *Core) Cycles() uint64 { return c.cycle }

// CommitDigest returns a fingerprint of the committed-PC stream, one of the
// attacker-observable traces the leak checker compares.
func (c *Core) CommitDigest() uint64 { return c.commitDigest }

// MemDigest returns a fingerprint of the committed memory-access address
// stream (addresses and read/write kinds, in commit order).
func (c *Core) MemDigest() uint64 { return c.memDigest }

// Run simulates until HALT commits. It returns an error on cycle-budget
// exhaustion, deadlock, or a SeMPE protocol violation (e.g. jbTable
// overflow).
func (c *Core) Run() error {
	defer c.publishSpecCounters()
	for !c.halted {
		if err := c.StepCycle(); err != nil {
			return err
		}
		if c.cfg.MaxCycles > 0 && c.cycle > c.cfg.MaxCycles {
			return fmt.Errorf("%w (%d)", ErrMaxCycles, c.cfg.MaxCycles)
		}
		if c.cfg.WatchdogCycles > 0 && c.cycle-c.lastCommitCycle > c.cfg.WatchdogCycles {
			return fmt.Errorf("%w at cycle %d (pc=%#x rob=%d)", ErrDeadlock, c.cycle, c.fetchPC, c.robCount)
		}
	}
	return nil
}

// StepCycle advances the machine one clock. Stages run in reverse pipeline
// order so that each consumes state produced in earlier cycles.
func (c *Core) StepCycle() error {
	// Idle fast-forward: when the whole window is empty and the only pending
	// event is the front end waking from an IL1-miss stall, every intervening
	// cycle does exactly one thing — increment FetchStallCycles. Batch those
	// cycles in one step. This is cycle-exact by construction: no queue holds
	// work, rename is neither blocked nor SPM-stalled (so no Drain/SPM stall
	// counters would tick), and fetch cannot run before fetchStallUntil. The
	// jump is clamped so Run's MaxCycles and watchdog checks fire on the same
	// cycle they would have.
	if c.cycle+1 < c.fetchStallUntil &&
		c.robCount == 0 && c.iqCount == 0 && c.execCount == 0 &&
		c.fe.empty() &&
		!c.renameBlocked && c.renameStallUntil <= c.cycle+1 &&
		!c.fetchHalted && !c.fetchBroken && !c.halted {
		target := c.fetchStallUntil - 1 // last idle cycle
		if c.cfg.MaxCycles > 0 && target > c.cfg.MaxCycles {
			target = c.cfg.MaxCycles // Run errors at MaxCycles+1, reached below
		}
		if c.cfg.WatchdogCycles > 0 {
			if wd := c.lastCommitCycle + c.cfg.WatchdogCycles; target > wd {
				target = wd // Run's watchdog trips at wd+1, reached below
			}
		}
		if target > c.cycle {
			skipped := target - c.cycle
			c.cycle = target
			c.Stats.FetchStallCycles += skipped
		}
	}
	c.cycle++
	c.Stats.Cycles = c.cycle
	if err := c.retire(); err != nil {
		return err
	}
	if c.halted {
		return nil
	}
	c.writeback()
	c.issue()
	c.rename()
	c.decode()
	c.fetch()
	return nil
}

const (
	fnvOffset = 1469598103934665603
	fnvPrime  = 1099511628211
)

// fnvMix folds v into the FNV-1a digest h, least-significant byte first.
// Fully unrolled: this runs once per committed op plus once per committed
// memory access, and the byte loop was a measurable slice of retire.
func fnvMix(h, v uint64) uint64 {
	h = (h ^ (v & 0xFF)) * fnvPrime
	h = (h ^ ((v >> 8) & 0xFF)) * fnvPrime
	h = (h ^ ((v >> 16) & 0xFF)) * fnvPrime
	h = (h ^ ((v >> 24) & 0xFF)) * fnvPrime
	h = (h ^ ((v >> 32) & 0xFF)) * fnvPrime
	h = (h ^ ((v >> 40) & 0xFF)) * fnvPrime
	h = (h ^ ((v >> 48) & 0xFF)) * fnvPrime
	h = (h ^ (v >> 56)) * fnvPrime
	return h
}
