package pipeline

import (
	"errors"
	"fmt"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/prefetch"
	"repro/internal/sempe"
)

// Core is one simulated processor instance. A Core runs a single program to
// completion; construct a fresh Core per run.
type Core struct {
	cfg  Config
	prog *isa.Program
	mem  *mem.Memory

	Hier *cache.Hierarchy
	BP   *bpred.Unit
	JB   *sempe.JBTable
	SPM  *mem.SPM

	stridePF *prefetch.Stride
	streamPF *prefetch.Stream

	cycle uint64
	seq   uint64

	// Committed architectural state.
	archRegs [isa.NumArchRegs]uint64
	halted   bool

	// Rename structures.
	rat       [isa.NumArchRegs]int
	physVal   []uint64
	physReady []bool
	freeList  []int

	// Reorder buffer: a ring of in-flight micro-ops.
	rob      []*uop
	robHead  int
	robCount int

	// Scheduler and memory queues (kept in program order).
	iq   []*uop
	lq   []*uop
	sq   []*uop
	exec []*uop

	// Front end.
	fetchPC         uint64
	fetchStallUntil uint64
	fetchHalted     bool // fetched a HALT; wait for commit or flush
	fetchBroken     bool // undecodable bytes (wrong path); wait for flush
	fetchBuf        uopRing
	decodeQ         uopRing

	// Pre-decode cache, indexed by pc-CodeBase: each static instruction is
	// decoded once, not on every fetch of the same pc.
	decoded []predec

	// Micro-op recycling (zero-alloc steady state).
	pool      uopPool
	squashTmp []*uop // scratch for flushAfter's deferred frees

	// SeMPE sequencing. renameBlocked holds rename while an eosJMP is in
	// flight (pipeline drain 2/3 of the paper's Fig. 6); renameStallUntil
	// serializes the ArchRS save/restore SPM traffic after drains; ovfDepth
	// counts live secure regions downgraded to non-secure by the overflow
	// policy.
	renameBlocked    bool
	renameStallUntil uint64
	ovfDepth         int
	inTScratch       []bool

	// Observable digests for the leak checker.
	commitDigest uint64
	memDigest    uint64

	// Optional full-trace capture (leak diffing in tests).
	TraceCommits bool
	CommitPCs    []uint64
	MemTrace     []uint64

	// Commit-time observability hooks for the attack lab (internal/attack).
	// MemWatch, when non-nil, is invoked for every committed load and store
	// with the access address, kind, and commit cycle — the harness installs
	// it to timestamp marker stores, turning the committed-access stream
	// into per-segment timings an attacker program "measures". BranchWatch,
	// when non-nil, sees every committed conditional branch with its outcome
	// and whether it mispredicted. Both are nil in normal runs and cost one
	// nil check per committed op.
	MemWatch    func(addr uint64, write bool, cycle uint64)
	BranchWatch func(pc uint64, taken, mispredicted bool, cycle uint64)

	lastCommitCycle uint64

	Stats Stats
}

// Errors returned by Run.
var (
	ErrMaxCycles = errors.New("pipeline: cycle budget exhausted")
	ErrDeadlock  = errors.New("pipeline: watchdog expired (no commits)")
)

// New builds a core for the given program. The memory image is created from
// the program; use NewOnMemory to supply a prepared image.
func New(cfg Config, prog *isa.Program) *Core {
	m := mem.NewMemory()
	m.Load(prog)
	return NewOnMemory(cfg, prog, m)
}

// NewOnMemory builds a core running prog on an existing memory image.
func NewOnMemory(cfg Config, prog *isa.Program, memory *mem.Memory) *Core {
	c := &Core{
		cfg:       cfg,
		prog:      prog,
		mem:       memory,
		Hier:      cache.NewHierarchy(cfg.Caches),
		BP:        bpred.NewUnit(),
		JB:        sempe.NewJBTable(cfg.SPM.Slots),
		SPM:       mem.NewSPM(cfg.SPM),
		physVal:   make([]uint64, cfg.PhysRegs),
		physReady: make([]bool, cfg.PhysRegs),
		rob:       make([]*uop, cfg.ROBSize),
		iq:        make([]*uop, 0, cfg.IQSize),
		lq:        make([]*uop, 0, cfg.LQSize),
		sq:        make([]*uop, 0, cfg.SQSize),
		exec:      make([]*uop, 0, cfg.ROBSize),
		freeList:  make([]int, 0, cfg.PhysRegs),
		fetchBuf:  newUopRing(cfg.FetchBufSize),
		decodeQ:   newUopRing(cfg.DecodeQSize),
		decoded:   make([]predec, len(prog.Code)),
		fetchPC:   prog.Entry,
	}
	if cfg.StridePrefetchTable > 0 {
		c.stridePF = prefetch.NewStride(c.Hier.DL1, cfg.StridePrefetchTable, cfg.StridePrefetchDegree)
		c.Hier.DL1.SetObserver(c.stridePF)
	}
	if cfg.StreamWindow > 0 {
		c.streamPF = prefetch.NewStream(c.Hier.L2, cfg.StreamWindow, cfg.StreamDepth)
		c.Hier.L2.SetObserver(c.streamPF)
	}
	// Initial rename map: architectural register r lives in physical r.
	c.archRegs[isa.SP] = isa.DefaultStackTop
	for r := 0; r < isa.NumArchRegs; r++ {
		c.rat[r] = r
		c.physVal[r] = c.archRegs[r]
		c.physReady[r] = true
	}
	for p := isa.NumArchRegs; p < cfg.PhysRegs; p++ {
		c.freeList = append(c.freeList, p)
	}
	c.commitDigest = fnvOffset
	c.memDigest = fnvOffset
	return c
}

// Mem exposes the memory image (for result checking after a run).
func (c *Core) Mem() *mem.Memory { return c.mem }

// ArchRegs returns the committed architectural register file.
func (c *Core) ArchRegs() [isa.NumArchRegs]uint64 { return c.archRegs }

// Halted reports whether HALT has committed.
func (c *Core) Halted() bool { return c.halted }

// Cycles returns the current cycle count.
func (c *Core) Cycles() uint64 { return c.cycle }

// CommitDigest returns a fingerprint of the committed-PC stream, one of the
// attacker-observable traces the leak checker compares.
func (c *Core) CommitDigest() uint64 { return c.commitDigest }

// MemDigest returns a fingerprint of the committed memory-access address
// stream (addresses and read/write kinds, in commit order).
func (c *Core) MemDigest() uint64 { return c.memDigest }

// Run simulates until HALT commits. It returns an error on cycle-budget
// exhaustion, deadlock, or a SeMPE protocol violation (e.g. jbTable
// overflow).
func (c *Core) Run() error {
	for !c.halted {
		if err := c.StepCycle(); err != nil {
			return err
		}
		if c.cfg.MaxCycles > 0 && c.cycle > c.cfg.MaxCycles {
			return fmt.Errorf("%w (%d)", ErrMaxCycles, c.cfg.MaxCycles)
		}
		if c.cfg.WatchdogCycles > 0 && c.cycle-c.lastCommitCycle > c.cfg.WatchdogCycles {
			return fmt.Errorf("%w at cycle %d (pc=%#x rob=%d)", ErrDeadlock, c.cycle, c.fetchPC, c.robCount)
		}
	}
	return nil
}

// StepCycle advances the machine one clock. Stages run in reverse pipeline
// order so that each consumes state produced in earlier cycles.
func (c *Core) StepCycle() error {
	c.cycle++
	c.Stats.Cycles = c.cycle
	if err := c.retire(); err != nil {
		return err
	}
	if c.halted {
		return nil
	}
	c.writeback()
	c.issue()
	c.rename()
	c.decode()
	c.fetch()
	return nil
}

const fnvOffset = 1469598103934665603

func fnvMix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= (v >> (8 * i)) & 0xFF
		h *= 1099511628211
	}
	return h
}
