package pipeline

import (
	"fmt"
	"io"
	"sort"
)

// Tracer is a bounded ring-buffer recorder for SpecEvents. Arm it with
// Core.SetSpecWatch(t.Record): every speculative-window event is stored in a
// preallocated ring (oldest events drop when the ring wraps), and the
// committed/squashed disposition of each per-uop event is stamped in place
// when the covering SpecCommit or SpecFlush arrives — so a finished trace
// reads like a post-mortem: every retained event knows how it resolved.
//
// Record is allocation-free: the ring and the pending-resolution window are
// sized at construction and never grow. A Tracer serves one core; it is not
// safe for concurrent use (the parallel trial engines need a shared sink,
// not a shared ring — see SetSpecWatchDefault).
type Tracer struct {
	ring  []SpecEvent
	total uint64 // absolute count of events recorded

	byKind  [specKindCount]uint64
	squashK [specKindCount]uint64 // retained-at-resolution squashed events, by kind

	// Disposition back-patching. Per-uop events register in a window of
	// pending slots keyed by seq; SpecCommit resolves its own seq and
	// SpecFlush resolves every registered seq above its own. The window is
	// sized past the maximum number of in-flight sequence numbers (ROB +
	// front-end buffers), so a slot is never reused before its op resolves.
	pend   []pendSlot
	maxSeq uint64 // highest seq registered so far
}

type pendSlot struct {
	seq uint64
	n   uint8
	idx [8]uint64 // absolute ring indices of this seq's events
}

// specPendWindow bounds in-flight sequence numbers: ROB (192) + fetch/decode
// buffers (32) with generous slack. Power of two for cheap modulo.
const specPendWindow = 512

// NewTracer builds a tracer retaining the most recent capacity events.
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{
		ring: make([]SpecEvent, capacity),
		pend: make([]pendSlot, specPendWindow),
	}
}

// Record stores one event and performs disposition resolution. Pass it to
// Core.SetSpecWatch.
func (t *Tracer) Record(ev SpecEvent) {
	switch ev.Kind {
	case SpecCommit:
		t.resolve(ev.Seq, DispCommitted)
	case SpecFlush:
		ev.Disp = DispCommitted // the flush itself is an architectural fact
		// Everything younger than the flushing op is squashed. Seq numbers
		// are dense and machine-ordered, so the scan is bounded by the
		// in-flight window.
		for s := ev.Seq + 1; s <= t.maxSeq; s++ {
			t.resolve(s, DispSquashed)
		}
	}
	pos := t.total % uint64(len(t.ring))
	t.ring[pos] = ev
	t.byKind[ev.Kind]++
	abs := t.total
	t.total++
	if ev.Disp == DispSpeculative && perUopKind(ev.Kind) {
		slot := &t.pend[ev.Seq%specPendWindow]
		if slot.seq != ev.Seq || slot.n == 0 {
			slot.seq, slot.n = ev.Seq, 0
		}
		if int(slot.n) < len(slot.idx) {
			slot.idx[slot.n] = abs
			slot.n++
		}
		if ev.Seq > t.maxSeq {
			t.maxSeq = ev.Seq
		}
	}
}

// perUopKind reports whether a kind's events are emitted speculatively and
// resolved later (as opposed to SpecBPUpdate/SpecCommit, which are commit
// facts, and SpecFlush, a machine-level event).
func perUopKind(k SpecKind) bool {
	switch k {
	case SpecFetch, SpecBPLookup, SpecIssue, SpecBranchExec, SpecMemExec,
		SpecCacheFill, SpecCacheEvict:
		return true
	}
	return false
}

func (t *Tracer) resolve(seq uint64, disp SpecDisp) {
	slot := &t.pend[seq%specPendWindow]
	if slot.seq != seq || slot.n == 0 {
		return
	}
	capR := uint64(len(t.ring))
	for i := 0; i < int(slot.n); i++ {
		abs := slot.idx[i]
		if t.total-abs <= capR { // still retained in the ring
			ev := &t.ring[abs%capR]
			ev.Disp = disp
			if disp == DispSquashed {
				t.squashK[ev.Kind]++
			}
		}
	}
	slot.n = 0
}

// Total returns how many events were recorded (including dropped ones).
func (t *Tracer) Total() uint64 { return t.total }

// Dropped returns how many events fell off the ring.
func (t *Tracer) Dropped() uint64 {
	if t.total > uint64(len(t.ring)) {
		return t.total - uint64(len(t.ring))
	}
	return 0
}

// Events returns the retained events in recording order (a copy).
func (t *Tracer) Events() []SpecEvent {
	n := t.total
	capR := uint64(len(t.ring))
	if n > capR {
		n = capR
	}
	out := make([]SpecEvent, 0, n)
	start := t.total - n
	for abs := start; abs < t.total; abs++ {
		out = append(out, t.ring[abs%capR])
	}
	return out
}

// KindCounts returns the per-kind totals over all recorded events.
func (t *Tracer) KindCounts() map[string]uint64 {
	m := make(map[string]uint64, specKindCount)
	for k := SpecKind(0); k < specKindCount; k++ {
		if t.byKind[k] > 0 {
			m[k.String()] = t.byKind[k]
		}
	}
	return m
}

// SquashedCounts returns, per kind, how many retained events resolved to
// DispSquashed — the wrong-path activity profile of the run.
func (t *Tracer) SquashedCounts() map[string]uint64 {
	m := make(map[string]uint64)
	for k := SpecKind(0); k < specKindCount; k++ {
		if t.squashK[k] > 0 {
			m[k.String()] = t.squashK[k]
		}
	}
	return m
}

// WriteText renders the retained events as a cycle-ordered timeline, one
// event per line, with a trailing per-kind summary.
func (t *Tracer) WriteText(w io.Writer) error {
	events := t.Events()
	if _, err := fmt.Fprintf(w, "# spec trace: %d events recorded, %d retained, %d dropped\n",
		t.Total(), len(events), t.Dropped()); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%10s %8s  %-11s %-11s %-18s %s\n",
		"cycle", "seq", "disp", "kind", "pc", "detail"); err != nil {
		return err
	}
	for i := range events {
		ev := &events[i]
		if _, err := fmt.Fprintf(w, "%10d %8d  %-11s %-11s %#-18x %s\n",
			ev.Cycle, ev.Seq, ev.Disp, ev.Kind, ev.PC, specDetail(ev)); err != nil {
			return err
		}
	}
	keys := make([]string, 0, specKindCount)
	counts := t.KindCounts()
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "# %-11s %d\n", k, counts[k]); err != nil {
			return err
		}
	}
	return nil
}

// specDetail renders the kind-specific fields of one event.
func specDetail(ev *SpecEvent) string {
	switch ev.Kind {
	case SpecFetch, SpecBPLookup:
		dir := "nt"
		if ev.Taken {
			dir = "taken"
		}
		if ev.Addr != 0 {
			return fmt.Sprintf("pred=%s target=%#x", dir, ev.Addr)
		}
		return "pred=" + dir
	case SpecBranchExec:
		dir := "nt"
		if ev.Taken {
			dir = "taken"
		}
		if ev.Mispredict {
			return fmt.Sprintf("%s target=%#x MISPREDICT", dir, ev.Addr)
		}
		return fmt.Sprintf("%s target=%#x", dir, ev.Addr)
	case SpecMemExec:
		if ev.Write {
			return fmt.Sprintf("store addr=%#x", ev.Addr)
		}
		return fmt.Sprintf("load addr=%#x lat=%d", ev.Addr, ev.Lat)
	case SpecCacheFill:
		return fmt.Sprintf("%s fill line=%#x", SpecLevelName(ev.Level), ev.Addr)
	case SpecCacheEvict:
		return fmt.Sprintf("%s evict line=%#x", SpecLevelName(ev.Level), ev.Addr)
	case SpecBPUpdate:
		dir := "nt"
		if ev.Taken {
			dir = "taken"
		}
		return fmt.Sprintf("train %s target=%#x", dir, ev.Addr)
	case SpecFlush:
		return fmt.Sprintf("cause=%s target=%#x squashed=%d dropped=%d",
			ev.Cause, ev.Addr, ev.SquashedROB, ev.DroppedFE)
	default:
		return ""
	}
}

// WriteChromeJSON renders the retained events in Chrome's trace_event JSON
// array format (load in chrome://tracing or Perfetto; 1 cycle = 1 µs).
// Events are instant events on one process, with a thread per kind so the
// viewer groups fetch/execute/cache/flush activity into separate rows.
func (t *Tracer) WriteChromeJSON(w io.Writer) error {
	events := t.Events()
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	for i := range events {
		ev := &events[i]
		sep := ","
		if i == len(events)-1 {
			sep = ""
		}
		_, err := fmt.Fprintf(w,
			`  {"name":%q,"ph":"i","s":"t","ts":%d,"pid":1,"tid":%d,`+
				`"args":{"seq":%d,"pc":"%#x","disp":%q,"detail":%q}}%s`+"\n",
			ev.Kind.String(), ev.Cycle, int(ev.Kind)+1,
			ev.Seq, ev.PC, ev.Disp.String(), specDetail(ev), sep)
		if err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]\n")
	return err
}
