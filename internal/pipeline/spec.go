package pipeline

import (
	"sync/atomic"

	"repro/internal/isa"
)

// Speculative-window observability. The PR-4 MemWatch/BranchWatch hooks fire
// at retirement, so by construction they can never see transient work — the
// wrong-path fetches, executions, and cache fills that Spectre-style attacks
// exploit and that SeMPE exists to neutralize. SpecWatch is the execute-time
// counterpart: when armed, the core reports every microarchitecturally
// visible action of every in-flight micro-op, wrong-path included, as a
// stream of SpecEvents. Each per-uop event is emitted speculatively (the core
// cannot yet know whether the op will commit) and its disposition is settled
// later by the SpecCommit/SpecFlush events covering its sequence number; the
// Tracer performs that back-patching for recorded streams.
//
// Arming a spec watch diverts fetch onto the legacy per-instruction walk
// (the superblock replay path copies prototype micro-ops out of cached
// traces and would bypass the per-fetch emission points). The two paths are
// cycle-identical by construction — the same guarantee the superblock
// differential suite pins — so arming the hook observes the run without
// perturbing it; TestSpecTraceDifferential asserts exactly that over every
// registered scenario.

// SpecKind identifies what a SpecEvent describes.
type SpecKind uint8

const (
	// SpecFetch: a watched instruction (branch, jump, load, store, or SeMPE
	// marker) entered the machine. Taken/Addr carry the fetch-time
	// prediction (predicted direction and target for control flow).
	SpecFetch SpecKind = iota
	// SpecBPLookup: the branch predictor was consulted at fetch for this op
	// (conditional direction or indirect target). Never emitted for sJMP:
	// secure branches are unpredicted by the SeMPE rule.
	SpecBPLookup
	// SpecIssue: the op left the issue queue for a functional unit.
	SpecIssue
	// SpecBranchExec: a branch or jump resolved at execute. Taken/Addr carry
	// the actual outcome and target; Mispredict is set when the front end
	// went the wrong way.
	SpecBranchExec
	// SpecMemExec: a load computed its address and accessed the DL1 (or
	// forwarded from the store queue), or a store computed its address.
	// Addr is the access address, Lat the observed latency (loads only),
	// Write distinguishes stores.
	SpecMemExec
	// SpecCacheFill: a cache level installed a new line. Addr is the line
	// address, Level the cache level; PC/Seq attribute the fill to the
	// access that triggered it (including prefetches it set off).
	SpecCacheFill
	// SpecCacheEvict: the fill at the same cycle displaced a resident line.
	SpecCacheEvict
	// SpecBPUpdate: the predictor was trained at commit (direction or
	// indirect target). Always carries DispCommitted: only retiring ops
	// train the predictor.
	SpecBPUpdate
	// SpecCommit: the op retired. Resolves every earlier per-uop event with
	// the same Seq to DispCommitted.
	SpecCommit
	// SpecFlush: the pipeline squashed everything younger than Seq. Cause
	// says why; SquashedROB and DroppedFE count the discarded micro-ops
	// (renamed window vs fetched-but-not-renamed). Resolves every per-uop
	// event with a greater Seq to DispSquashed.
	SpecFlush

	specKindCount
)

var specKindNames = [specKindCount]string{
	"fetch", "bp-lookup", "issue", "branch-exec", "mem-exec",
	"cache-fill", "cache-evict", "bp-update", "commit", "flush",
}

// String returns the stable lower-case name used in trace renderings.
func (k SpecKind) String() string {
	if int(k) < len(specKindNames) {
		return specKindNames[k]
	}
	return "unknown"
}

// SpecDisp is the resolution state of a per-uop event.
type SpecDisp uint8

const (
	// DispSpeculative: in flight; commit or squash has not yet resolved it.
	DispSpeculative SpecDisp = iota
	// DispCommitted: the op retired; this action reached architectural state.
	DispCommitted
	// DispSquashed: the op was flushed; this action was wrong-path work whose
	// microarchitectural side effects (cache fills, predictor state) persist.
	DispSquashed
)

// String returns the stable lower-case name used in trace renderings.
func (d SpecDisp) String() string {
	switch d {
	case DispCommitted:
		return "committed"
	case DispSquashed:
		return "squashed"
	default:
		return "speculative"
	}
}

// FlushCause distinguishes why a pipeline flush happened.
type FlushCause uint8

const (
	// FlushNone: the event is not a flush.
	FlushNone FlushCause = iota
	// FlushMispredict: a branch or jump resolved against its prediction.
	FlushMispredict
	// FlushSecureRedirect: a SeMPE eosJMP's commit-time jump-back into the
	// taken path. Not a misprediction — the redirect is unconditional and
	// secret-independent by design.
	FlushSecureRedirect
	// FlushOverflow: a nesting-overflow-downgraded sJMP resolved taken and
	// redirected like an ordinary branch (Config.OverflowNonSecure).
	FlushOverflow
)

// String returns the stable lower-case name used in trace renderings.
func (f FlushCause) String() string {
	switch f {
	case FlushMispredict:
		return "mispredict"
	case FlushSecureRedirect:
		return "secure-redirect"
	case FlushOverflow:
		return "overflow"
	default:
		return "none"
	}
}

// Cache levels named in SpecCacheFill/SpecCacheEvict events.
const (
	SpecIL1 uint8 = 1
	SpecDL1 uint8 = 2
	SpecL2  uint8 = 3
)

// SpecLevelName names a cache level carried by a fill/evict event.
func SpecLevelName(level uint8) string {
	switch level {
	case SpecIL1:
		return "il1"
	case SpecDL1:
		return "dl1"
	case SpecL2:
		return "l2"
	default:
		return "?"
	}
}

// SpecEvent is one speculative-window observation. The struct is flat and
// pointer-free so rings of them are GC-inert and Record stays allocation-free.
type SpecEvent struct {
	Cycle uint64
	Seq   uint64 // dynamic-instruction sequence number (machine order)
	PC    uint64
	Addr  uint64 // memory address, branch target, or cache line address

	SquashedROB uint32 // SpecFlush: renamed in-flight ops squashed
	DroppedFE   uint32 // SpecFlush: fetched-but-not-renamed ops dropped

	Lat   uint16 // SpecMemExec loads: observed access latency
	Kind  SpecKind
	Disp  SpecDisp
	Cause FlushCause
	Level uint8 // SpecCacheFill/Evict: cache level (SpecIL1/SpecDL1/SpecL2)

	Taken      bool // branch direction (predicted at fetch, actual at exec)
	Mispredict bool
	Write      bool // memory events: store vs load
}

// specDefault is the process-wide default spec watch, captured by New into
// each core and re-read at Reset — the same pattern as the superblock
// default. It exists for differential testing (arm a sink across entire
// scenario grids, including pooled cores, and diff the artifacts); a default
// sink must be safe for concurrent calls because the trial engines run cores
// on parallel workers.
var specDefault atomic.Value // of specWatchBox

type specWatchBox struct{ fn func(SpecEvent) }

// SetSpecWatchDefault installs fn as the process-wide default spec watch and
// returns the previous default. nil disarms. Cores created by New — and
// pooled cores at their next Reset — pick the default up; a core armed
// explicitly via SetSpecWatch keeps its own hook.
func SetSpecWatchDefault(fn func(SpecEvent)) (old func(SpecEvent)) {
	prev, _ := specDefault.Swap(specWatchBox{fn}).(specWatchBox)
	return prev.fn
}

func loadSpecWatchDefault() func(SpecEvent) {
	box, _ := specDefault.Load().(specWatchBox)
	return box.fn
}

// SetSpecWatch arms (or, with nil, disarms) the execute-time spec watch on
// this core and wires the cache-fill observers that feed SpecCacheFill/Evict
// events. An explicitly armed hook survives Reset, like MemWatch; pass nil to
// return the core to the process default at its next Reset.
func (c *Core) SetSpecWatch(fn func(SpecEvent)) {
	c.specWatch = fn
	c.specFromDefault = false
	c.wireSpecCache()
}

// SpecWatchArmed reports whether a spec watch (explicit or default) is live.
func (c *Core) SpecWatchArmed() bool { return c.specWatch != nil }

// armSpecDefault captures the process default (New and Reset call it when the
// core has no explicitly armed hook).
func (c *Core) armSpecDefault() {
	d := loadSpecWatchDefault()
	c.specWatch = d
	c.specFromDefault = d != nil
	c.wireSpecCache()
}

// wireSpecCache installs or removes the per-level fill observers. The
// closures attribute each fill to the access the core most recently stamped
// into specPC/specSeq (the instruction fetch, load execute, or store commit
// that is running the access — prefetcher-triggered fills inherit the demand
// access that woke the prefetcher).
func (c *Core) wireSpecCache() {
	if c.specWatch == nil {
		c.Hier.IL1.FillWatch = nil
		c.Hier.DL1.FillWatch = nil
		c.Hier.L2.FillWatch = nil
		return
	}
	mk := func(level uint8) func(line, victim uint64, evicted bool) {
		return func(line, victim uint64, evicted bool) {
			c.emitSpec(SpecEvent{Kind: SpecCacheFill, Seq: c.specSeq, PC: c.specPC, Addr: line, Level: level})
			if evicted {
				c.emitSpec(SpecEvent{Kind: SpecCacheEvict, Seq: c.specSeq, PC: c.specPC, Addr: victim, Level: level})
			}
		}
	}
	c.Hier.IL1.FillWatch = mk(SpecIL1)
	c.Hier.DL1.FillWatch = mk(SpecDL1)
	c.Hier.L2.FillWatch = mk(SpecL2)
}

// emitSpec stamps the current cycle and delivers ev to the armed watch.
// Callers have already checked c.specWatch != nil.
func (c *Core) emitSpec(ev SpecEvent) {
	ev.Cycle = c.cycle
	c.specEmitted++
	c.specWatch(ev)
}

// specWatched reports whether a micro-op's class is covered by the spec
// event stream: control flow, memory, and the SeMPE markers. Straight-line
// ALU work is not traced — it has no microarchitecturally observable side
// channel in this model — which keeps armed traces proportional to the
// interesting activity.
func specWatched(u *uop) bool {
	if u.isSJmp || u.isEOSJmp {
		return true
	}
	return u.cl == isa.ClassBranch || u.cl == isa.ClassJump || u.isLoad || u.isStore
}

// SpecCounters aggregates the process-wide wrong-path accounting published
// by every Run (and harvested by the obs scrape families). The counters are
// always on — they are plain Stats increments inside flush handling, never
// dependent on a spec watch being armed.
type SpecCounters struct {
	WrongPathFetches  uint64 // fetched micro-ops discarded without committing
	SquashedUops      uint64 // renamed, in-flight micro-ops squashed by flushes
	FlushMispredicts  uint64
	FlushSecRedirects uint64
	FlushOverflows    uint64
	SpecEvents        uint64 // SpecEvents delivered to armed watches
}

func (a SpecCounters) sub(b SpecCounters) SpecCounters {
	return SpecCounters{
		WrongPathFetches:  a.WrongPathFetches - b.WrongPathFetches,
		SquashedUops:      a.SquashedUops - b.SquashedUops,
		FlushMispredicts:  a.FlushMispredicts - b.FlushMispredicts,
		FlushSecRedirects: a.FlushSecRedirects - b.FlushSecRedirects,
		FlushOverflows:    a.FlushOverflows - b.FlushOverflows,
		SpecEvents:        a.SpecEvents - b.SpecEvents,
	}
}

var globalSpec struct {
	wrongPathFetches  atomic.Uint64
	squashedUops      atomic.Uint64
	flushMispredicts  atomic.Uint64
	flushSecRedirects atomic.Uint64
	flushOverflows    atomic.Uint64
	specEvents        atomic.Uint64
}

// GlobalSpecCounters returns the process-wide wrong-path totals accumulated
// across every completed Run (scrape-time read; see internal/attack/obs.go
// for the metric families built on it).
func GlobalSpecCounters() SpecCounters {
	return SpecCounters{
		WrongPathFetches:  globalSpec.wrongPathFetches.Load(),
		SquashedUops:      globalSpec.squashedUops.Load(),
		FlushMispredicts:  globalSpec.flushMispredicts.Load(),
		FlushSecRedirects: globalSpec.flushSecRedirects.Load(),
		FlushOverflows:    globalSpec.flushOverflows.Load(),
		SpecEvents:        globalSpec.specEvents.Load(),
	}
}

// publishSpecCounters adds this core's not-yet-published deltas to the
// process-wide totals. Run defers it so partial runs (cycle budget,
// watchdog) still publish; the delta bookkeeping makes it idempotent and
// Reset re-bases it with the Stats wipe.
func (c *Core) publishSpecCounters() {
	cur := SpecCounters{
		WrongPathFetches:  c.Stats.WrongPathFetches,
		SquashedUops:      c.Stats.SquashedUops,
		FlushMispredicts:  c.Stats.FlushMispredicts,
		FlushSecRedirects: c.Stats.FlushSecRedirects,
		FlushOverflows:    c.Stats.FlushOverflows,
		SpecEvents:        c.specEmitted,
	}
	d := cur.sub(c.specPub)
	if d != (SpecCounters{}) {
		globalSpec.wrongPathFetches.Add(d.WrongPathFetches)
		globalSpec.squashedUops.Add(d.SquashedUops)
		globalSpec.flushMispredicts.Add(d.FlushMispredicts)
		globalSpec.flushSecRedirects.Add(d.FlushSecRedirects)
		globalSpec.flushOverflows.Add(d.FlushOverflows)
		globalSpec.specEvents.Add(d.SpecEvents)
	}
	c.specPub = cur
}
