package pipeline

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/sempe"
)

// retire commits completed micro-ops from the ROB head, up to RetireWidth
// per cycle. Commit is where the SeMPE controller acts: an sJMP pushes its
// jbTable entry and triggers the initial ArchRS snapshot; an eosJMP either
// jumps back into the taken path (first commit) or restores the final
// register state and pops the entry (second commit). Doing this work at
// commit, after a drain, is what makes the mechanism simple: the committed
// register file is the architectural state by construction.
func (c *Core) retire() error {
	arena := c.pool.arena
	for n := 0; n < c.cfg.RetireWidth && c.robCount > 0; n++ {
		i := c.rob[c.robHead]
		u := &arena[i]
		if !u.completed {
			return nil
		}

		// Observable commit trace.
		c.commitDigest = fnvMix(c.commitDigest, u.pc)
		if c.TraceCommits {
			c.CommitPCs = append(c.CommitPCs, u.pc)
		}

		// Architectural register update.
		if u.hasDest {
			rd := u.inst.Rd
			c.archRegs[rd] = c.physVal[u.pd]
			c.freeList = append(c.freeList, u.oldPd)
			c.markModified(rd)
		}

		// Memory commit. The committing op is the oldest in its memory
		// queue (queues are program-ordered and the ROB head is the oldest
		// in-flight op), so removal is a head pop.
		if u.isStore {
			if u.memWidth == 8 {
				c.mem.Write64(u.memAddr, u.storeData)
			} else {
				c.mem.Write8(u.memAddr, byte(u.storeData))
			}
			if c.specWatch != nil {
				// Attribute commit-time DL1 fills to the retiring store.
				c.specPC, c.specSeq = u.pc, u.seq
			}
			c.Hier.DL1.AccessPC(u.pc, u.memAddr, true)
			c.memDigest = fnvMix(c.memDigest, u.memAddr<<1|1)
			if c.TraceCommits {
				c.MemTrace = append(c.MemTrace, u.memAddr<<1|1)
			}
			if c.MemWatch != nil {
				c.MemWatch(u.memAddr, true, c.cycle)
			}
			c.sq = removeHead(c.sq, i)
		}
		if u.isLoad {
			c.memDigest = fnvMix(c.memDigest, u.memAddr<<1)
			if c.TraceCommits {
				c.MemTrace = append(c.MemTrace, u.memAddr<<1)
			}
			if c.MemWatch != nil {
				c.MemWatch(u.memAddr, false, c.cycle)
			}
			c.lq = removeHead(c.lq, i)
		}

		// Predictor training. sJMP never touches the predictor: that is the
		// SeMPE rule that closes the branch-predictor channel.
		switch {
		case u.isSJmp:
			// handled below
		case u.cl == isa.ClassBranch:
			c.Stats.Branches++
			c.BP.UpdateBranch(u.pc, u.actualTaken)
			if c.specWatch != nil {
				c.emitSpec(SpecEvent{Kind: SpecBPUpdate, Seq: u.seq, PC: u.pc, Addr: u.actualTarget,
					Disp: DispCommitted, Taken: u.actualTaken, Mispredict: u.mispredict})
			}
			if c.BranchWatch != nil {
				c.BranchWatch(u.pc, u.actualTaken, u.mispredict, c.cycle)
			}
		case u.inst.Op == isa.OpJalr:
			c.Stats.IndirectJumps++
			if !(u.inst.Rd == isa.RZ && u.inst.Ra == isa.LR) {
				c.BP.UpdateIndirect(u.pc, u.actualTarget)
				if c.specWatch != nil {
					c.emitSpec(SpecEvent{Kind: SpecBPUpdate, Seq: u.seq, PC: u.pc, Addr: u.actualTarget,
						Disp: DispCommitted, Taken: true, Mispredict: u.mispredict})
				}
			}
		}

		if c.wpOff && (u.cl == isa.ClassBranch || u.cl == isa.ClassJump) {
			c.specCtl-- // resolved: this control op is no longer speculative
		}

		// Pop from the ROB before any controller action so that the
		// controller sees an empty window (drains guarantee it). Ring
		// contents beyond the live window are never read, so the vacated
		// slot needs no nilRef store.
		c.robHead++
		if c.robHead >= c.cfg.ROBSize {
			c.robHead = 0
		}
		c.robCount--
		c.Stats.Insts++
		c.lastCommitCycle = c.cycle
		if c.specWatch != nil && specWatched(u) {
			// Settles the disposition of every earlier event with this seq;
			// emitted before any controller redirect so a recorded stream
			// resolves the op before the flush it may trigger.
			c.emitSpec(SpecEvent{Kind: SpecCommit, Seq: u.seq, PC: u.pc, Disp: DispCommitted})
		}

		switch {
		case u.isSJmp:
			c.Stats.Branches++
			c.Stats.SJmps++
			err := c.commitSJmp(u)
			c.pool.put(i)
			return err // snapshot serializes the rest of the cycle
		case u.isEOSJmp:
			c.Stats.EOSJmps++
			err := c.commitEOSJmp(u)
			c.pool.put(i)
			return err
		case u.inst.Op == isa.OpHalt:
			c.halted = true
			c.pool.put(i)
			return nil
		}
		// The ROB held the last reference (mem ops left lq/sq above, and a
		// committed op was dropped from exec when it completed).
		c.pool.put(i)
	}
	return nil
}

// commitSJmp pushes the jbTable entry (Valid set: the destination address
// was computed at execute and is written at commit, the paper's step 2) and
// captures the initial ArchRS snapshot into the SPM. On nesting overflow it
// either faults or — under the permissive policy — downgrades the region to
// an ordinary single-path branch.
func (c *Core) commitSJmp(u *uop) error {
	if c.ovfDepth > 0 || c.JB.Depth() >= c.JB.Cap() {
		if !c.cfg.OverflowNonSecure {
			return fmt.Errorf("pipeline: at pc=%#x: %w (depth %d)", u.pc, sempe.ErrOverflow, c.JB.Depth())
		}
		// Downgrade: behave like a resolved branch. Fetch already went down
		// the fall-through; a taken outcome must redirect, which costs a
		// flush exactly like a misprediction.
		c.Stats.NestOverflows++
		c.ovfDepth++
		if u.actualTaken {
			c.flushAfter(u, u.actualTarget, FlushOverflow)
		}
		return nil
	}
	if err := c.JB.Push(u.actualTarget, u.actualTaken); err != nil {
		return fmt.Errorf("pipeline: at pc=%#x: %w", u.pc, err)
	}
	if c.JB.Depth() > c.Stats.MaxNestDepth {
		c.Stats.MaxNestDepth = c.JB.Depth()
	}
	stall, err := c.SPM.PushInitial(&c.archRegs)
	if err != nil {
		return fmt.Errorf("pipeline: at pc=%#x: %w", u.pc, err)
	}
	// The register save serializes rename (Fig. 6: "Initial Register save"
	// occupies the SPM after pipeline drain 1).
	c.renameStallUntil = c.cycle + uint64(stall)
	return nil
}

// commitEOSJmp implements both visits to the join-point marker.
func (c *Core) commitEOSJmp(u *uop) error {
	if c.ovfDepth > 0 {
		// Join marker of a downgraded (non-secure) region: a NOP. LIFO
		// nesting guarantees the innermost live region is the downgraded
		// one, so this marker is its single visit.
		c.ovfDepth--
		c.renameBlocked = false
		return nil
	}
	top, err := c.JB.Top()
	if err != nil {
		return fmt.Errorf("pipeline: eosJMP at pc=%#x: %w", u.pc, err)
	}
	if !top.JB {
		// First commit: save NT-modified registers, restore the initial
		// snapshot, set the jb bit, and jump back into the taken path.
		restore, mask, stall := c.SPM.EndNTPath(&c.archRegs)
		c.applyRegs(&restore, mask)
		top.JB = true
		c.Stats.SecRedirects++
		c.Stats.FlushSecRedirects++
		c.renameBlocked = false
		// The drain guarantees an empty window, so a secure redirect only
		// drops never-renamed front-end work — it squashes nothing in the ROB.
		dropped := c.redirectFrontEnd(top.Target)
		c.sbCountWrongPathBuilds(u.seq)
		c.Stats.WrongPathFetches += dropped
		if c.specWatch != nil {
			c.emitSpec(SpecEvent{Kind: SpecFlush, Seq: u.seq, PC: u.pc, Addr: top.Target,
				Cause: FlushSecureRedirect, DroppedFE: uint32(dropped)})
		}
		c.renameStallUntil = c.cycle + uint64(stall)
		return nil
	}
	// Second commit: the secure region is complete. Restore the correct
	// final values for every register modified in either path; the SPM
	// traffic depends only on the union of the modified sets, never on the
	// secret outcome.
	final, mask, stall := c.SPM.EndTPath(top.Taken, &c.archRegs)
	c.applyRegs(&final, mask)
	if err := c.JB.Pop(); err != nil {
		return err
	}
	c.renameBlocked = false
	c.renameStallUntil = c.cycle + uint64(stall)
	return nil
}

// applyRegs writes restored architectural values through to the committed
// register file and the physical registers currently mapped by the RAT. The
// ROB is empty here (the eosJMP drained the window), so the speculative and
// committed maps agree.
func (c *Core) applyRegs(vals *[isa.NumArchRegs]uint64, mask uint64) {
	for r := 0; r < isa.NumArchRegs; r++ {
		if mask&(1<<uint(r)) == 0 {
			continue
		}
		c.archRegs[r] = vals[r]
		p := c.rat[r]
		c.physVal[p] = vals[r]
		c.physReady[p] = true
		c.wakePreg(p)
	}
}

// markModified attributes a committed register write to the per-path
// modified bit-vectors of every live SecBlock nesting level.
func (c *Core) markModified(rd isa.Reg) {
	if !c.cfg.SeMPE || c.JB.Depth() == 0 {
		return
	}
	c.inTScratch = c.JB.InTPathFlags(c.inTScratch)
	c.SPM.MarkModified(rd, c.inTScratch)
}

// removeHead drops i from q. The committing op is q's head in every
// reachable state (memory queues are program-ordered); the scan fallback
// keeps the function total if that invariant is ever disturbed.
func removeHead(q []uref, i uref) []uref {
	if len(q) > 0 && q[0] == i {
		copy(q, q[1:])
		return q[:len(q)-1]
	}
	out := q[:0]
	for _, v := range q {
		if v != i {
			out = append(out, v)
		}
	}
	return out
}
