package pipeline

import (
	"math/rand"
	"testing"

	"repro/internal/asm"
	"repro/internal/emu"
	"repro/internal/isa"
)

// runBoth executes prog on the emulator and the OoO core in the same mode
// and requires identical final registers and memory.
func runBoth(t *testing.T, prog *isa.Program, secure bool) (*emu.Machine, *Core) {
	t.Helper()
	mode := emu.Legacy
	cfg := DefaultConfig()
	if secure {
		mode = emu.SeMPE
		cfg = SecureConfig()
	}
	ref := emu.New(mode, prog)
	if err := ref.Run(); err != nil {
		t.Fatalf("emu: %v", err)
	}
	core := New(cfg, prog)
	if err := core.Run(); err != nil {
		t.Fatalf("core: %v", err)
	}
	regs := core.ArchRegs()
	for r := 0; r < isa.NumArchRegs; r++ {
		if regs[r] != ref.Regs[r] {
			t.Errorf("r%d: core=%#x emu=%#x", r, regs[r], ref.Regs[r])
		}
	}
	if addr, diff := core.Mem().FirstDiff(ref.Mem); diff {
		t.Errorf("memory differs at %#x: core=%#x emu=%#x",
			addr, core.Mem().Read64(addr), ref.Mem.Read64(addr))
	}
	if core.Stats.Insts != ref.Insts {
		t.Errorf("committed %d insts, emu executed %d", core.Stats.Insts, ref.Insts)
	}
	return ref, core
}

func TestCoreStraightLine(t *testing.T) {
	prog := asm.MustAssemble(`
		main:
			li   r8, 5
			li   r9, 7
			add  r10, r8, r9
			mul  r11, r8, r9
			div  r12, r11, r9
			halt
	`)
	_, core := runBoth(t, prog, false)
	regs := core.ArchRegs()
	if regs[10] != 12 || regs[11] != 35 || regs[12] != 5 {
		t.Errorf("wrong results: %v", regs[8:13])
	}
}

func TestCoreLoopAndBranches(t *testing.T) {
	prog := asm.MustAssemble(`
		main:
			li   r8, 0
			li   r9, 100
		loop:
			add  r8, r8, r9
			addi r9, r9, -1
			bne  r9, rz, loop
			halt
	`)
	_, core := runBoth(t, prog, false)
	if core.ArchRegs()[8] != 5050 {
		t.Errorf("sum = %d, want 5050", core.ArchRegs()[8])
	}
	if core.Stats.Branches != 100 {
		t.Errorf("branches = %d, want 100", core.Stats.Branches)
	}
}

func TestCoreMemoryDependences(t *testing.T) {
	prog := asm.MustAssemble(`
		.data buf 128
		main:
			la   r8, buf
			li   r9, 1234
			st   r9, [r8+0]
			ld   r10, [r8+0]      ; forwarded or post-commit
			st   r10, [r8+8]
			ld   r11, [r8+8]
			stb  r9, [r8+16]      ; byte store (0xD2)
			ldb  r12, [r8+16]
			ld   r13, [r8+16]     ; partial overlap: must wait for commit
			halt
	`)
	_, core := runBoth(t, prog, false)
	regs := core.ArchRegs()
	if regs[10] != 1234 || regs[11] != 1234 {
		t.Errorf("word forwarding wrong: r10=%d r11=%d", regs[10], regs[11])
	}
	if regs[12] != 1234&0xFF {
		t.Errorf("byte load = %d, want %d", regs[12], 1234&0xFF)
	}
	if regs[13] != 1234&0xFF {
		t.Errorf("partial-overlap load = %d, want %d", regs[13], 1234&0xFF)
	}
}

func TestCoreCallRet(t *testing.T) {
	prog := asm.MustAssemble(`
		main:
			li   r8, 0
			li   r9, 20
		loop:
			call inc
			addi r9, r9, -1
			bne  r9, rz, loop
			halt
		inc:
			addi r8, r8, 1
			ret
	`)
	_, core := runBoth(t, prog, false)
	if core.ArchRegs()[8] != 20 {
		t.Errorf("r8 = %d, want 20", core.ArchRegs()[8])
	}
}

func secureBranchProg(secret int64) *isa.Program {
	b := asm.NewBuilder()
	b.Data("scratch", 64)
	b.Label("main")
	b.Emit(isa.Inst{Op: isa.OpLi, Rd: 8, Imm: secret})
	// if (secret != 0) { r10 = 111 } else { r10 = 222 }  -- via sJMP with
	// hardware register restore (no shadow needed for registers).
	b.EmitRef(isa.Inst{Op: isa.OpBne, Ra: 8, Rb: 0, Secure: true}, "taken")
	b.Emit(isa.Inst{Op: isa.OpLi, Rd: 10, Imm: 222}) // NT path
	b.Emit(isa.Inst{Op: isa.OpLi, Rd: 11, Imm: 1})
	b.EmitRef(isa.Inst{Op: isa.OpJmp}, "join")
	b.Label("taken")
	b.Emit(isa.Inst{Op: isa.OpLi, Rd: 10, Imm: 111}) // T path
	b.Emit(isa.Inst{Op: isa.OpLi, Rd: 12, Imm: 2})
	b.Label("join")
	b.Emit(isa.Inst{Op: isa.OpNop, Secure: true}) // eosJMP
	b.Emit(isa.Inst{Op: isa.OpAddi, Rd: 13, Ra: 10, Imm: 0})
	b.Emit(isa.Inst{Op: isa.OpHalt})
	prog, err := b.Finish()
	if err != nil {
		panic(err)
	}
	return prog
}

func TestCoreSecureBranchBothOutcomes(t *testing.T) {
	for _, secret := range []int64{0, 1} {
		prog := secureBranchProg(secret)
		ref, core := runBoth(t, prog, true)
		want := uint64(222)
		if secret != 0 {
			want = 111
		}
		if core.ArchRegs()[10] != want {
			t.Errorf("secret=%d: r10=%d want %d", secret, core.ArchRegs()[10], want)
		}
		if core.Stats.SJmps != 1 || core.Stats.EOSJmps != 2 {
			t.Errorf("secret=%d: sjmp=%d eosjmp=%d, want 1,2",
				secret, core.Stats.SJmps, core.Stats.EOSJmps)
		}
		if core.Stats.SecRedirects != 1 {
			t.Errorf("secret=%d: redirects=%d want 1", secret, core.Stats.SecRedirects)
		}
		_ = ref
	}
}

func TestCoreSecureObservablesIndependentOfSecret(t *testing.T) {
	// The committed-PC stream, memory trace, total cycles, and predictor
	// digests must be identical for both secrets under SeMPE.
	var digests [2]uint64
	var cycles [2]uint64
	var memd [2]uint64
	var bpd [2]uint64
	for i, secret := range []int64{0, 1} {
		core := New(SecureConfig(), secureBranchProg(secret))
		if err := core.Run(); err != nil {
			t.Fatal(err)
		}
		digests[i] = core.CommitDigest()
		cycles[i] = core.Cycles()
		memd[i] = core.MemDigest()
		bpd[i] = core.BP.Digest()
	}
	if digests[0] != digests[1] {
		t.Error("committed-PC stream depends on the secret")
	}
	if cycles[0] != cycles[1] {
		t.Errorf("timing leaks: %d vs %d cycles", cycles[0], cycles[1])
	}
	if memd[0] != memd[1] {
		t.Error("memory trace depends on the secret")
	}
	if bpd[0] != bpd[1] {
		t.Error("branch predictor state depends on the secret")
	}
}

func TestCoreBaselineLeaksSecret(t *testing.T) {
	// Sanity check for the test above: on the unprotected baseline the same
	// binary's committed-PC stream does depend on the secret.
	var digests [2]uint64
	for i, secret := range []int64{0, 1} {
		core := New(DefaultConfig(), secureBranchProg(secret))
		if err := core.Run(); err != nil {
			t.Fatal(err)
		}
		digests[i] = core.CommitDigest()
	}
	if digests[0] == digests[1] {
		t.Error("baseline hides the secret; expected a leak")
	}
}

func TestCoreNestedSecureBranches(t *testing.T) {
	// if (a) { if (b) r10=3 else r10=2 } else { r10=1 } with register
	// restore; checks LIFO discipline of the jbTable.
	build := func(a, b int64) *isa.Program {
		bl := asm.NewBuilder()
		bl.Label("main")
		bl.Emit(isa.Inst{Op: isa.OpLi, Rd: 8, Imm: a})
		bl.Emit(isa.Inst{Op: isa.OpLi, Rd: 9, Imm: b})
		bl.EmitRef(isa.Inst{Op: isa.OpBne, Ra: 8, Rb: 0, Secure: true}, "a_taken")
		bl.Emit(isa.Inst{Op: isa.OpLi, Rd: 10, Imm: 1}) // outer NT
		bl.EmitRef(isa.Inst{Op: isa.OpJmp}, "join_a")
		bl.Label("a_taken")
		bl.EmitRef(isa.Inst{Op: isa.OpBne, Ra: 9, Rb: 0, Secure: true}, "b_taken")
		bl.Emit(isa.Inst{Op: isa.OpLi, Rd: 10, Imm: 2}) // inner NT
		bl.EmitRef(isa.Inst{Op: isa.OpJmp}, "join_b")
		bl.Label("b_taken")
		bl.Emit(isa.Inst{Op: isa.OpLi, Rd: 10, Imm: 3})
		bl.Label("join_b")
		bl.Emit(isa.Inst{Op: isa.OpNop, Secure: true})
		bl.Label("join_a")
		bl.Emit(isa.Inst{Op: isa.OpNop, Secure: true})
		bl.Emit(isa.Inst{Op: isa.OpHalt})
		prog, err := bl.Finish()
		if err != nil {
			panic(err)
		}
		return prog
	}
	wants := map[[2]int64]uint64{
		{0, 0}: 1, {0, 1}: 1, {1, 0}: 2, {1, 1}: 3,
	}
	var obs []uint64
	for key, want := range wants {
		prog := build(key[0], key[1])
		_, core := runBoth(t, prog, true)
		if got := core.ArchRegs()[10]; got != want {
			t.Errorf("a=%d b=%d: r10=%d want %d", key[0], key[1], got, want)
		}
		if core.Stats.MaxNestDepth < 1 {
			t.Errorf("a=%d b=%d: nest depth %d", key[0], key[1], core.Stats.MaxNestDepth)
		}
		obs = append(obs, core.Cycles())
	}
	// Note: cycle counts differ across (a,b) only because the *outer* taken
	// path contains the inner secure region in this CFG; within a fixed CFG
	// shape all four secrets execute every block. The important check above
	// is functional correctness; the indistinguishability property for a
	// fixed well-formed program is covered by the leak tests.
	_ = obs
}

func TestCoreSecureBranchInsideLoop(t *testing.T) {
	// A secure branch exercised many times under a non-secret loop, with a
	// non-secret inner branch in one path.
	src := `
		.data out 64
		main:
			li   r8, 50        ; loop counter
			li   r9, 0         ; accumulator
			li   r14, 3        ; secret-ish value (constant here)
		loop:
			andi r10, r8, 1    ; alternate branch outcome
			sbne r10, rz, odd
			addi r9, r9, 1     ; NT path
			jmp  join
		odd:
			addi r9, r9, 10    ; T path
			blt  r9, r14, small ; non-secret branch inside SecBlock
			addi r9, r9, 100
		small:
		join:
			eosjmp
			addi r8, r8, -1
			bne  r8, rz, loop
			la   r11, out
			st   r9, [r11+0]
			halt
	`
	prog := asm.MustAssemble(src)
	runBoth(t, prog, true)
	runBoth(t, prog, false) // same binary on the baseline
}

func TestCoreMispredictRecovery(t *testing.T) {
	// A data-dependent branch pattern that defeats the predictor enough to
	// force recoveries, checked against the emulator.
	b := asm.NewBuilder()
	b.Label("main")
	b.Emit(isa.Inst{Op: isa.OpLi, Rd: 8, Imm: 0})      // acc
	b.Emit(isa.Inst{Op: isa.OpLi, Rd: 9, Imm: 200})    // counter
	b.Emit(isa.Inst{Op: isa.OpLi, Rd: 10, Imm: 12345}) // lcg state
	b.Label("loop")
	b.Emit(isa.Inst{Op: isa.OpMuli, Rd: 10, Ra: 10, Imm: 1103515245})
	b.Emit(isa.Inst{Op: isa.OpAddi, Rd: 10, Ra: 10, Imm: 12345})
	b.Emit(isa.Inst{Op: isa.OpShri, Rd: 11, Ra: 10, Imm: 16})
	b.Emit(isa.Inst{Op: isa.OpAndi, Rd: 11, Ra: 11, Imm: 1})
	b.EmitRef(isa.Inst{Op: isa.OpBeq, Ra: 11, Rb: 0, Imm: 0}, "skip")
	b.Emit(isa.Inst{Op: isa.OpAddi, Rd: 8, Ra: 8, Imm: 3})
	b.Label("skip")
	b.Emit(isa.Inst{Op: isa.OpAddi, Rd: 9, Ra: 9, Imm: -1})
	b.EmitRef(isa.Inst{Op: isa.OpBne, Ra: 9, Rb: 0, Imm: 0}, "loop")
	b.Emit(isa.Inst{Op: isa.OpHalt})
	prog, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	_, core := runBoth(t, prog, false)
	if core.Stats.BranchMispredicts == 0 {
		t.Error("expected at least one misprediction")
	}
}

// TestCoreRandomPrograms cross-checks the OoO core against the emulator on
// generated straight-line-with-loops programs.
func TestCoreRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		prog := randomProgram(rng)
		ref := emu.New(emu.Legacy, prog)
		ref.MaxInsts = 200000
		if err := ref.Run(); err != nil {
			continue // skip budget-exhausted generations
		}
		core := New(DefaultConfig(), prog)
		if err := core.Run(); err != nil {
			t.Fatalf("trial %d: core: %v\n%s", trial, err, prog.Disassemble())
		}
		regs := core.ArchRegs()
		for r := 0; r < isa.NumArchRegs; r++ {
			if regs[r] != ref.Regs[r] {
				t.Fatalf("trial %d: r%d core=%#x emu=%#x\n%s",
					trial, r, regs[r], ref.Regs[r], prog.Disassemble())
			}
		}
		if _, diff := core.Mem().FirstDiff(ref.Mem); diff {
			t.Fatalf("trial %d: memory differs", trial)
		}
	}
}

// randomProgram emits a random but always-terminating program: a counted
// outer loop whose body is random ALU/memory ops plus forward branches.
func randomProgram(rng *rand.Rand) *isa.Program {
	b := asm.NewBuilder()
	b.Data("arr", 512)
	b.Label("main")
	b.EmitRef(isa.Inst{Op: isa.OpLi, Rd: 20}, "arr")
	b.Emit(isa.Inst{Op: isa.OpLi, Rd: 21, Imm: int64(rng.Intn(40) + 10)}) // counter
	for r := 8; r < 16; r++ {
		b.Emit(isa.Inst{Op: isa.OpLi, Rd: isa.Reg(r), Imm: int64(rng.Intn(1000))})
	}
	b.Label("loop")
	n := rng.Intn(20) + 5
	aluOps := []isa.Op{isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpAnd, isa.OpOr,
		isa.OpXor, isa.OpSlt, isa.OpSltu, isa.OpSeq, isa.OpDiv, isa.OpRem}
	for i := 0; i < n; i++ {
		reg := func() isa.Reg { return isa.Reg(8 + rng.Intn(8)) }
		switch rng.Intn(6) {
		case 0, 1, 2:
			b.Emit(isa.Inst{Op: aluOps[rng.Intn(len(aluOps))], Rd: reg(), Ra: reg(), Rb: reg()})
		case 3:
			off := int64(rng.Intn(64)) * 8
			b.Emit(isa.Inst{Op: isa.OpSt, Rd: reg(), Ra: 20, Imm: off})
		case 4:
			off := int64(rng.Intn(64)) * 8
			b.Emit(isa.Inst{Op: isa.OpLd, Rd: reg(), Ra: 20, Imm: off})
		case 5:
			// Forward branch over one instruction.
			skip := b.FreshLabel("skip")
			b.EmitRef(isa.Inst{Op: isa.OpBlt, Ra: reg(), Rb: reg()}, skip)
			b.Emit(isa.Inst{Op: aluOps[rng.Intn(len(aluOps))], Rd: reg(), Ra: reg(), Rb: reg()})
			b.Label(skip)
		}
	}
	b.Emit(isa.Inst{Op: isa.OpAddi, Rd: 21, Ra: 21, Imm: -1})
	b.EmitRef(isa.Inst{Op: isa.OpBne, Ra: 21, Rb: 0}, "loop")
	b.Emit(isa.Inst{Op: isa.OpHalt})
	prog, err := b.Finish()
	if err != nil {
		panic(err)
	}
	return prog
}
