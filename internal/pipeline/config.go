// Package pipeline implements a cycle-level out-of-order processor core with
// optional SeMPE secure multi-path execution. The microarchitecture follows
// the paper's Table II baseline (Haswell-like widths, 192-entry ROB, 256
// physical registers, TAGE/ITTAGE prediction, 3-level cache hierarchy,
// stride/stream prefetching) and layers the SeMPE mechanisms on top: the
// jbTable LIFO, pipeline drains around SecBlocks, ArchRS register snapshots
// in the scratchpad memory, and commit-time eosJMP redirection.
package pipeline

import (
	"repro/internal/cache"
	"repro/internal/mem"
)

// Config describes the simulated core. The zero value is not valid; start
// from DefaultConfig.
type Config struct {
	// Widths (instructions or micro-ops per cycle).
	FetchWidth  int
	DecodeWidth int
	RenameWidth int
	IssueWidth  int
	RetireWidth int

	// Structure capacities.
	ROBSize      int
	IQSize       int
	LQSize       int
	SQSize       int
	PhysRegs     int
	FetchBufSize int
	DecodeQSize  int

	// Functional units available per cycle.
	NumALU    int
	NumMulDiv int
	NumLoad   int // "load issue" ports in Table II
	NumStore  int
	NumBranch int

	// Latencies in cycles.
	LatALU    int
	LatMul    int
	LatDiv    int
	LatBranch int
	LatAGU    int

	// RedirectPenalty is charged on every front-end redirect (branch
	// misprediction or eosJMP jump-back) on top of the natural refill time.
	RedirectPenalty int

	// SeMPE enables secure multi-path execution. When false the core is the
	// unprotected baseline: SecPrefix bytes are decoded and ignored, which is
	// the paper's backward-compatibility story.
	SeMPE bool

	// SPM configures the snapshot scratchpad (SeMPE only).
	SPM mem.SPMConfig

	// OverflowNonSecure selects the paper's permissive policy for secure
	// nesting beyond the SPM snapshot slots (§IV-E): instead of raising a
	// runtime exception, the offending sJMP executes as an ordinary
	// single-path branch (no protection) and its eosJMP degenerates to a
	// NOP. Default false: overflow is an error.
	OverflowNonSecure bool

	// Caches configures the three-level hierarchy.
	Caches cache.HierarchyConfig

	// StridePrefetchTable/Degree configure the DL1 stride prefetcher;
	// StreamWindow/Depth configure the L2 stream prefetcher. Zero disables.
	StridePrefetchTable  int
	StridePrefetchDegree int
	StreamWindow         int
	StreamDepth          int

	// DisableSuperblock forces this core onto the legacy per-instruction
	// fetch walk instead of the cached-trace replay path (superblock.go).
	// The two are cycle-identical by construction; the switch exists for
	// differential testing and as an escape hatch. The process-wide default
	// can also be flipped with SetSuperblockDefault.
	DisableSuperblock bool

	// DisableWrongPathReplay keeps the superblock engine but forbids it
	// from fetching while any control-flow op is in flight (renamed and not
	// yet resolved): potentially wrong-path fetch then runs on the legacy
	// walk. Replay and walk are cycle-identical, so this changes no
	// observable; the switch exists for differential testing of the
	// wrong-path replay machinery. The process-wide default can also be
	// flipped with SetWrongPathReplayDefault.
	DisableWrongPathReplay bool

	// MaxCycles aborts runaway simulations (0 = no limit).
	MaxCycles uint64
	// WatchdogCycles aborts when no instruction commits for this many
	// cycles, which indicates a simulator or program deadlock.
	WatchdogCycles uint64
}

// DefaultConfig mirrors the paper's Table II baseline model.
func DefaultConfig() Config {
	return Config{
		FetchWidth:  8,
		DecodeWidth: 8,
		RenameWidth: 8,
		IssueWidth:  8,
		RetireWidth: 12,

		ROBSize:      192,
		IQSize:       60,
		LQSize:       32,
		SQSize:       32,
		PhysRegs:     256,
		FetchBufSize: 16,
		DecodeQSize:  16,

		NumALU:    4,
		NumMulDiv: 2,
		NumLoad:   2,
		NumStore:  2,
		NumBranch: 2,

		LatALU:    1,
		LatMul:    3,
		LatDiv:    12,
		LatBranch: 1,
		LatAGU:    1,

		RedirectPenalty: 3,

		SeMPE: false,
		SPM:   mem.DefaultSPMConfig(),

		Caches: cache.DefaultHierarchyConfig(),

		StridePrefetchTable:  64,
		StridePrefetchDegree: 2,
		StreamWindow:         16,
		StreamDepth:          2,

		MaxCycles:      0,
		WatchdogCycles: 2_000_000,
	}
}

// SecureConfig returns the Table II model with SeMPE enabled.
func SecureConfig() Config {
	cfg := DefaultConfig()
	cfg.SeMPE = true
	return cfg
}

// Stats aggregates everything the evaluation section reports.
type Stats struct {
	Cycles uint64
	Insts  uint64 // committed instructions

	Branches          uint64 // committed conditional branches (incl. sJMP)
	BranchMispredicts uint64
	IndirectJumps     uint64
	Flushes           uint64

	SJmps            uint64 // committed secure jumps
	EOSJmps          uint64 // committed eosJMP markers
	SecRedirects     uint64 // jump-backs into taken paths
	DrainStallCycles uint64 // rename stalled waiting for ROB drain
	SPMStallCycles   uint64 // retire/fetch stalled on SPM traffic
	MaxNestDepth     int
	NestOverflows    uint64 // secure regions downgraded to non-secure

	FetchStallCycles uint64 // front-end stalled on IL1 misses or redirects
	LoadForwards     uint64 // store-to-load forwards

	// Wrong-path accounting (always on; see spec.go). Invariants pinned by
	// tests: FlushMispredicts+FlushOverflows == Flushes, and
	// FlushSecRedirects == SecRedirects. Artifact rows never serialize these
	// (they pick individual fields), so adding them cannot move golden JSON.
	WrongPathFetches  uint64 // fetched micro-ops discarded without committing
	SquashedUops      uint64 // renamed in-flight micro-ops squashed by flushes
	FlushMispredicts  uint64 // flushAfter calls caused by mispredictions
	FlushSecRedirects uint64 // eosJMP commit-time jump-back redirects
	FlushOverflows    uint64 // overflow-downgraded sJMPs that redirected
}

// CPI returns cycles per committed instruction.
func (s Stats) CPI() float64 {
	if s.Insts == 0 {
		return 0
	}
	return float64(s.Cycles) / float64(s.Insts)
}

// IPC returns committed instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Insts) / float64(s.Cycles)
}
