package pipeline

import (
	"repro/internal/cache"
	"repro/internal/isa"
)

// Superblock engine: the front end caches decoded straight-line traces
// ("superblocks") and replays them on re-entry instead of re-walking the
// per-instruction decode/classify/predecode machinery.
//
// A superblock is the run of static instructions starting at some pc and
// ending at the first unconditional transfer (JMP/JAL/JALR), HALT,
// undecodable byte, end of the code image, or the sbMaxEntries cap.
// Conditional branches and SeMPE markers do NOT end a block: their dynamic
// behavior (prediction, RAS traffic, sJMP/eosJMP marking) is resolved at
// replay time by calling the same predecode used by the legacy walk, so a
// block replays correctly whether the branch falls through (replay
// continues inside the block) or redirects (the fetch group ends and the
// cursor is dropped).
//
// Each entry carries a prototype micro-op with everything that is a pure
// function of the instruction bytes precomputed — decoded instruction, pc,
// npc, functional-unit class — plus the IL1 line addresses its bytes touch.
// Replay copies the prototype over a raw pool slot, assigns the dynamic
// sequence number, charges the IL1 exactly like the legacy walk (same
// last-line dedup, same miss-retry recharging), and runs predecode only for
// entries whose front-end behavior is dynamic. Prediction state, cache
// state, stall cycles, and the fetch group shape are therefore identical to
// the legacy path by construction; the differential scenario test
// (superblock_test.go) asserts this end to end.
//
// The replay cursor (sbCur/sbCurIdx) is self-validating: it is only resumed
// when the entry it points at matches fetchPC, so redirects, IL1-miss
// retries, and block exhaustion need no invalidation bookkeeping beyond the
// pc check. Blocks cache nothing about cache/predictor state, so there are
// no staleness edges to invalidate for; the only way a cached block could
// go stale is the program's code bytes changing, which cannot happen within
// a run (the ISA has no stores to the code image) — across runs every
// pipeline.New starts with an empty superblock cache, and Core.Reset drops
// every cached block (recycling the entry slices) before loading the next
// program.

// sbKind classifies how an entry's front-end behavior is produced at replay.
// Beyond the original sequential/dynamic split, the build resolves each
// control-flow shape to its own kind with the static taken target
// precomputed, so replay dispatches directly instead of re-deriving the
// shape from the opcode in predecode. Instructions whose front-end behavior
// depends on dynamic predictor state beyond a direction lookup (JALR's
// RAS/ITTAGE target) or on SeMPE marking fall back to the shared predecode.
type sbKind uint8

const (
	// sbSeq: plain sequential instruction; predecode would take its default
	// case, so replay fast-forwards fetchPC = npc without calling it.
	sbSeq sbKind = iota
	// sbPredecode: JALR or SeMPE marker; replay calls predecode so dynamic
	// target prediction and sJMP/eosJMP marking stay on the single code path.
	sbPredecode
	// sbHalt: HALT; sequential predecode plus the fetch-side halt latch.
	sbHalt
	// sbBranch: conditional branch (non-secure); direction from the TAGE
	// lookup, taken target static.
	sbBranch
	// sbJmp: unconditional direct jump; always redirects to the static target.
	sbJmp
	// sbJal: direct call; like sbJmp plus an optional RAS push (pushRet).
	sbJal
)

// sbMaxEntries caps a superblock's length so a pathological straight-line
// region cannot produce an unbounded build.
const sbMaxEntries = 64

// sbEntry is one cached instruction slot in a superblock.
type sbEntry struct {
	proto  uop       // inst/pc/npc/cl filled; dynamic fields zero
	lines  [2]uint64 // IL1 lines the instruction bytes touch, in order
	target uint64    // static taken target (sbBranch/sbJmp/sbJal)
	nlines uint8     // 1 or 2 (an instruction is at most 9 bytes)
	kind   sbKind
	// newLine is false when the entry stays entirely on the previous entry's
	// last IL1 line: replaying it directly after its predecessor in the same
	// fetch group charges nothing, so the per-line loop can be skipped
	// statically. The first entry of every group still runs the full check
	// (the legacy walk resets its line dedup each cycle).
	newLine bool
	pushRet bool // sbJal with Rd==LR: push the return address at replay
}

// superblock is one cached straight-line trace.
type superblock struct {
	entries []sbEntry
}

// fetchSuperblock is the replay fetch path. It mirrors fetchLegacy's
// per-cycle shape exactly: up to FetchWidth instructions, one shared
// last-line IL1 dedup across the whole group (including across block
// boundaries within the group), stall-and-retry on IL1 miss with the
// current entry re-charged after the fill, group end on predicted-taken
// transfers, and the halt/broken latches at the same instruction positions.
func (c *Core) fetchSuperblock() {
	// Reserve pool slots for the whole group up front so the arena cannot
	// move mid-loop and its pointer can be hoisted.
	c.pool.reserve(c.cfg.FetchWidth)
	arena := c.pool.arena
	var lastLine uint64 = ^uint64(0)
	n := 0
	for n < c.cfg.FetchWidth && !c.fe.fetchFull() {
		// Establish a valid cursor: resume only when the cursor entry is the
		// instruction fetch wants next.
		if c.sbCur < 0 || int(c.sbCurIdx) >= len(c.sbBlocks[c.sbCur].entries) ||
			c.sbBlocks[c.sbCur].entries[c.sbCurIdx].proto.pc != c.fetchPC {
			if !c.sbLookup() {
				return // fetchBroken latched, same as the legacy walk
			}
		}
		blk := &c.sbBlocks[c.sbCur]
		for n < c.cfg.FetchWidth && !c.fe.fetchFull() && int(c.sbCurIdx) < len(blk.entries) {
			e := &blk.entries[c.sbCurIdx]
			// Charge IL1 for each distinct line, exactly like the legacy
			// walk: lastLine is updated even on a miss, and a miss retries
			// the whole instruction after the stall (recharging its lines).
			// Entries statically known to stay on their predecessor's line
			// (newLine false) skip the loop whenever that predecessor was
			// replayed earlier in this same group (n > 0); the group's first
			// instruction always runs the full check, matching the legacy
			// walk's per-cycle dedup reset.
			if e.newLine || n == 0 {
				for li := 0; li < int(e.nlines); li++ {
					a := e.lines[li]
					if a == lastLine {
						continue
					}
					lat := c.Hier.IL1.AccessPC(e.proto.pc, a, false)
					lastLine = a
					if lat > c.cfg.Caches.IL1.HitLatency {
						c.fetchStallUntil = c.cycle + uint64(lat)
						return // cursor still points here: retried after the fill
					}
				}
			}

			i := c.pool.getRaw()
			u := &arena[i]
			*u = e.proto
			u.seq = c.seq
			c.seq++
			c.sbCurIdx++
			c.SBStats.Replays++
			c.fe.pushFetched(i)
			n++

			// Direct dispatch on the build-time kind; every arm mirrors the
			// corresponding predecode case exactly.
			switch e.kind {
			case sbSeq:
				c.fetchPC = u.npc
			case sbBranch:
				u.predTaken = c.BP.PredictBranch(u.pc)
				u.predTarget = e.target
				if u.predTaken {
					c.fetchPC = e.target
					return // one taken control transfer per fetch group
				}
				c.fetchPC = u.npc
			case sbJmp, sbJal:
				u.predTaken = true
				u.predTarget = e.target
				if e.pushRet {
					c.BP.PushReturn(u.npc)
				}
				c.fetchPC = e.target
				return
			case sbHalt:
				c.fetchPC = u.npc
				c.fetchHalted = true
				return
			default: // sbPredecode: JALR or SeMPE marker
				if c.predecode(u) {
					// The cursor is left as-is; the pc check above
					// re-validates or drops it.
					return
				}
			}
		}
		// Block exhausted mid-group: the outer loop re-establishes a cursor
		// at fetchPC (building a new block if needed), continuing the same
		// fetch group in the same cycle — block end is not group end.
	}
}

// sbLookup points the cursor at a block starting at fetchPC, building one
// on first touch. It returns false after latching fetchBroken when fetchPC
// is outside the code image or undecodable — the same conditions, detected
// at the same instruction position in the fetch group, as the legacy walk.
func (c *Core) sbLookup() bool {
	pc := c.fetchPC
	if pc < c.prog.CodeBase || pc >= c.prog.CodeEnd() {
		c.fetchBroken = true
		return false
	}
	off := int(pc - c.prog.CodeBase)
	bi := c.sbIndex[off]
	if bi < 0 {
		bi = c.sbBuild(off)
		if bi < 0 {
			c.fetchBroken = true
			return false
		}
	}
	c.sbCur = bi
	c.sbCurIdx = 0
	return true
}

// sbBuild decodes a superblock starting at code offset off and registers it
// in sbIndex. It returns -1 when the first instruction is undecodable (the
// caller latches fetchBroken, as the legacy walk would at that pc). A later
// undecodable instruction just ends the block: replay will re-look-up at
// that pc and only then latch fetchBroken, matching legacy timing.
func (c *Core) sbBuild(off int) int32 {
	var entries []sbEntry
	if n := len(c.sbEntryPool); n > 0 {
		entries = c.sbEntryPool[n-1]
		c.sbEntryPool = c.sbEntryPool[:n-1]
	} else {
		entries = make([]sbEntry, 0, 16)
	}
	pos := off
	for len(entries) < sbMaxEntries && pos < len(c.prog.Code) {
		// Goes through the shared predecode cache, so a run that mixes
		// replay and legacy fetches (e.g. a hook armed mid-run) sees one
		// decode and identical static metadata on both paths.
		d := c.predecAt(pos)
		if d == nil {
			break
		}
		size := int(d.size)
		pc := c.prog.CodeBase + uint64(pos)

		var e sbEntry
		e.proto.inst = d.inst
		e.proto.pc = pc
		e.proto.npc = pc + uint64(size)
		e.proto.cl = d.cl
		e.proto.sra1, e.proto.sra2, e.proto.sra3 = d.sra1, d.sra2, d.sra3
		e.proto.writesRd = d.writesRd
		e.proto.isLoad, e.proto.isStore = d.isLoad, d.isStore
		e.proto.memWidth = d.memWidth
		e.proto.fromReplay = true
		for a := pc &^ (cache.LineSize - 1); a < pc+uint64(size); a += cache.LineSize {
			e.lines[e.nlines] = a
			e.nlines++
		}
		if n := len(entries); n > 0 {
			prev := &entries[n-1]
			e.newLine = e.nlines != 1 || e.lines[0] != prev.lines[prev.nlines-1]
		} else {
			e.newLine = true
		}
		op := d.inst.Op
		switch {
		case op == isa.OpHalt:
			e.kind = sbHalt
		case c.cfg.SeMPE && (d.inst.IsSJmp() || d.inst.IsEOSJmp()):
			// SeMPE markers: sJMP must skip prediction and eosJMP is a
			// secure NOP that predecode must mark so rename drains. Without
			// SeMPE both decode as their plain shapes (backward compat) and
			// take the direct-dispatch kinds below.
			e.kind = sbPredecode
		case op.IsBranch():
			e.kind = sbBranch
			e.target = pc + uint64(d.inst.Imm)
		case op == isa.OpJmp:
			e.kind = sbJmp
			e.target = pc + uint64(d.inst.Imm)
		case op == isa.OpJal:
			e.kind = sbJal
			e.target = pc + uint64(d.inst.Imm)
			e.pushRet = d.inst.Rd == isa.LR
		case op.IsControl():
			e.kind = sbPredecode // JALR: dynamic target prediction
		default:
			e.kind = sbSeq
		}
		entries = append(entries, e)
		pos += size
		if e.kind == sbHalt || op.IsJump() {
			break // unconditional transfer / halt always ends the trace
		}
	}
	if len(entries) == 0 {
		return -1
	}
	bi := int32(len(c.sbBlocks))
	c.sbBlocks = append(c.sbBlocks, superblock{entries: entries})
	c.sbIndex[off] = bi
	c.SBStats.Builds++
	// Stamp the build with the next sequence number: a later flush whose
	// boundary seq is older counts it as wrong-path work (the fetch that
	// triggered it was squashed or dropped). The block itself stays cached —
	// static traces are path-independent.
	c.sbBuildSeqs = append(c.sbBuildSeqs, c.seq)
	return bi
}

// sbCountWrongPathBuilds attributes builds stamped younger than boundary to
// wrong-path work. Stamps are appended in seq order, so the wrong-path tail
// is a binary-search truncation; counted stamps are dropped so a build is
// attributed at most once.
func (c *Core) sbCountWrongPathBuilds(boundary uint64) {
	s := c.sbBuildSeqs
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] <= boundary {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if n := len(s) - lo; n > 0 {
		c.SBStats.WrongPathBuilds += uint64(n)
		c.sbBuildSeqs = s[:lo]
	}
}
