package pipeline

import (
	"repro/internal/isa"
)

// Reset restores the core to the state NewOnMemory would have produced for
// prog on a zeroed memory image, without reallocating any of the core's
// structures: pipeline rings, ROB, scheduler, completion calendar, uop
// arena, pre-decode cache, superblock cache, predictors, caches,
// prefetchers, SPM/jbTable, and the memory image are all recycled in place.
// The attack and experiment drivers pool cores per configuration and Reset
// them per trial, which removes per-run construction (the dominant flat
// cost of high-trial sweeps) from the hot loop; TestCoreResetDifferential
// pins cycle- and event-stream equality against a fresh core.
//
// Caller-owned observability state (MemWatch/BranchWatch hooks and the
// TraceCommits flag) is preserved; captured traces are truncated. SBStats
// is zeroed — harvest it before Reset when accumulating across runs.
func (c *Core) Reset(prog *isa.Program) {
	// Memory image: zero in place and reload, exactly New's Load on a fresh
	// image (zeroed pages are indistinguishable from absent ones).
	c.mem.Reset()
	c.mem.Load(prog)
	c.prog = prog

	// Attached components.
	c.Hier.Reset()
	c.BP.Reset()
	c.JB.Reset()
	c.SPM.Reset()
	if c.stridePF != nil {
		c.stridePF.Reset()
	}
	if c.streamPF != nil {
		c.streamPF.Reset()
	}

	c.cycle, c.seq = 0, 0
	c.archRegs = [isa.NumArchRegs]uint64{}
	c.archRegs[isa.SP] = isa.DefaultStackTop
	c.halted = false

	// Rename state: identity map, architectural registers live in physical
	// r0..r(N-1), everything above is free (pushed in ascending order, the
	// same order New leaves the free list in).
	clear(c.physVal)
	clear(c.physReady)
	for r := 0; r < isa.NumArchRegs; r++ {
		c.rat[r] = int16(r)
		c.physVal[r] = c.archRegs[r]
		c.physReady[r] = true
	}
	c.rat[sraNone] = c.psNone()
	c.physReady[c.psNone()] = true
	c.freeList = c.freeList[:0]
	for p := isa.NumArchRegs; p < c.cfg.PhysRegs; p++ {
		c.freeList = append(c.freeList, int16(p))
	}

	// ROB and scheduler. Ring contents beyond the live window are never
	// read, so resetting the head/count suffices.
	c.robHead, c.robCount = 0, 0
	c.iqCount, c.readyCount = 0, 0
	for p := range c.waitHead {
		c.waitHead[p] = -1
	}
	c.waitNodes = c.waitNodes[:0]
	c.waitFreeHead = -1
	c.lq = c.lq[:0]
	c.sq = c.sq[:0]

	// Completion calendar: all buckets empty. calNext entries are only read
	// by chain walks from a bucket head, so stale links are unreachable.
	for i := range c.calBuckets {
		c.calBuckets[i] = -1
	}
	c.calOverflow = c.calOverflow[:0]
	c.execCount = 0
	c.wbScratch = c.wbScratch[:0]

	// Front end.
	c.fetchPC = prog.Entry
	c.fetchStallUntil = 0
	c.fetchHalted, c.fetchBroken = false, false
	c.fe.head, c.fe.nDec, c.fe.nFetch = 0, 0, 0
	switch {
	case c.sharedDecoded == prog:
		// Prototype-shared table for this very program: fully resolved and
		// immutable, nothing to clear.
	case c.sharedDecoded != nil:
		// Shared table for a different program: it belongs to the prototype
		// and other cores, so detach onto a fresh private table instead of
		// clearing the shared backing array in place.
		c.decoded = make([]predec, len(prog.Code))
		c.sharedDecoded = nil
	default:
		c.decoded = resizeCleared(c.decoded, len(prog.Code))
	}

	// Superblock cache: recycle every block's entry slice through the build
	// pool so steady-state rebuilds stay allocation-free. sbOff re-reads the
	// process default, matching what New would capture right now.
	c.sbOff = c.cfg.DisableSuperblock || !superblockDefaultOn.Load()
	c.wpOff = c.cfg.DisableWrongPathReplay || !wrongPathReplayDefaultOn.Load()
	c.specCtl = 0
	for i := range c.sbBlocks {
		c.sbEntryPool = append(c.sbEntryPool, c.sbBlocks[i].entries[:0])
	}
	c.sbBlocks = c.sbBlocks[:0]
	if c.sbOff {
		c.sbIndex = nil
	} else {
		c.sbIndex = resizeCleared(c.sbIndex, len(prog.Code))
		for i := range c.sbIndex {
			c.sbIndex[i] = -1
		}
	}
	c.sbCur, c.sbCurIdx = -1, 0
	c.sbBuildSeqs = c.sbBuildSeqs[:0]
	c.SBStats = SuperblockStats{}

	// Micro-op recycling: every arena slot returns to the free list, lowest
	// index on top, the order a fresh core hands slots out in.
	c.pool.reset()
	c.squashTmp = c.squashTmp[:0]

	// SeMPE sequencing.
	c.renameBlocked = false
	c.renameStallUntil = 0
	c.ovfDepth = 0

	c.commitDigest = fnvOffset
	c.memDigest = fnvOffset
	c.CommitPCs = c.CommitPCs[:0]
	c.MemTrace = c.MemTrace[:0]
	c.lastCommitCycle = 0
	c.Stats = Stats{}

	// Spec-watch state. A caller-armed hook is preserved like MemWatch; a
	// hook picked up from the process default (or no hook at all) re-reads
	// the default, matching what New would capture right now. The published
	// counter snapshot re-bases with the Stats wipe; harvest the global
	// counters before Reset when accumulating across runs.
	if c.specFromDefault || c.specWatch == nil {
		c.armSpecDefault()
	}
	c.specPC, c.specSeq = 0, 0
	c.specEmitted = 0
	c.specPub = SpecCounters{}
}

// resizeCleared returns s resized to n elements, all zero, reusing the
// backing array when capacity allows.
func resizeCleared[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	clear(s)
	return s
}
