package pipeline

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/asm"
	"repro/internal/cache"
	"repro/internal/isa"
)

// resetSnap is the complete observable surface of a finished run: final
// architectural registers, cycle count, every pipeline statistic, the
// commit/memory digests, predictor state, per-level cache statistics,
// superblock engine statistics, and the full watch-hook event streams.
// A Reset core and a fresh core must produce DeepEqual snapshots.
type resetSnap struct {
	regs     [isa.NumArchRegs]uint64
	cycles   uint64
	stats    Stats
	sb       SuperblockStats
	commit   uint64
	mem      uint64
	bp       uint64
	il1      cache.Stats
	dl1      cache.Stats
	l2       cache.Stats
	mems     []obs
	branches []obs
}

// recorder collects watch-hook events. The hooks close over the recorder, so
// one armed core can record multiple runs across Reset (which preserves
// hooks); clear() starts a new stream.
type recorder struct {
	mems, branches []obs
}

func (rec *recorder) clear() {
	rec.mems, rec.branches = rec.mems[:0], rec.branches[:0]
}

func armRecorder(c *Core) *recorder {
	rec := &recorder{}
	c.MemWatch = func(addr uint64, write bool, cycle uint64) {
		rec.mems = append(rec.mems, obs{a: addr, b: cycle, flag1: write})
	}
	c.BranchWatch = func(pc uint64, taken, mispredicted bool, cycle uint64) {
		rec.branches = append(rec.branches, obs{a: pc, b: cycle, flag1: taken, flag2: mispredicted})
	}
	return rec
}

func snapshot(c *Core, rec *recorder) resetSnap {
	return resetSnap{
		regs:     c.ArchRegs(),
		cycles:   c.Cycles(),
		stats:    c.Stats,
		sb:       c.SBStats,
		commit:   c.CommitDigest(),
		mem:      c.MemDigest(),
		bp:       c.BP.Digest(),
		il1:      c.Hier.IL1.Stats,
		dl1:      c.Hier.DL1.Stats,
		l2:       c.Hier.L2.Stats,
		mems:     append([]obs(nil), rec.mems...),
		branches: append([]obs(nil), rec.branches...),
	}
}

func mustRun(t *testing.T, c *Core) {
	t.Helper()
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
}

// freshSnap runs prog on a brand-new core with hooks armed and snapshots it —
// the reference every reset path is compared against.
func freshSnap(t *testing.T, cfg Config, prog *isa.Program) resetSnap {
	t.Helper()
	c := New(cfg, prog)
	rec := armRecorder(c)
	mustRun(t, c)
	return snapshot(c, rec)
}

func storeLoadProg() *isa.Program {
	return asm.MustAssemble(`
		main:
			li   r8, 0
			li   r9, 50
			li   r12, 4096
		loop:
			st   r9, [r12+0]
			ld   r10, [r12+0]
			add  r8, r8, r10
			addi r9, r9, -1
			bne  r9, rz, loop
			halt
	`)
}

func mispredictHeavyProg() *isa.Program {
	return asm.MustAssemble(`
		main:
			li   r8, 0
			li   r9, 200
			li   r10, 0
		loop:
			andi r11, r9, 5
			beq  r11, rz, skip
			addi r10, r10, 3
		skip:
			add  r8, r8, r9
			addi r9, r9, -1
			bne  r9, rz, loop
			halt
	`)
}

func callRetProg() *isa.Program {
	return asm.MustAssemble(`
		main:
			li   r8, 0
			li   r9, 20
		loop:
			call inc
			addi r9, r9, -1
			bne  r9, rz, loop
			halt
		inc:
			addi r8, r8, 1
			ret
	`)
}

// TestCoreResetDifferential: Reset must restore a dirtied core to exactly the
// state pipeline.New produces. Every (dirty program, target program) pair in
// the matrix runs on both configurations: the core first executes the dirty
// program with watch hooks armed, is Reset onto the target, and the target
// run's complete snapshot — cycle count included — must DeepEqual a fresh
// core's. The matrix crosses loads/stores, heavy mispredicts, call/ret, and
// SeMPE multi-path programs so the recycled predictor, cache, superblock, and
// rename state are each exercised.
func TestCoreResetDifferential(t *testing.T) {
	progs := []struct {
		name string
		prog *isa.Program
	}{
		{"storeload", storeLoadProg()},
		{"mispredict", mispredictHeavyProg()},
		{"callret", callRetProg()},
		{"secure0", secureBranchProg(0)},
		{"secure1", secureBranchProg(1)},
	}
	cfgs := []struct {
		name string
		cfg  Config
	}{
		{"default", DefaultConfig()},
		{"secure", SecureConfig()},
	}
	for _, cfg := range cfgs {
		for _, dirty := range progs {
			for _, target := range progs {
				name := fmt.Sprintf("%s/%s-then-%s", cfg.name, dirty.name, target.name)
				t.Run(name, func(t *testing.T) {
					want := freshSnap(t, cfg.cfg, target.prog)
					c := New(cfg.cfg, dirty.prog)
					rec := armRecorder(c)
					mustRun(t, c)
					rec.clear()
					c.Reset(target.prog)
					mustRun(t, c)
					got := snapshot(c, rec)
					if !reflect.DeepEqual(got, want) {
						t.Errorf("reset core diverged from fresh core:\nfresh: %+v\nreset: %+v", want, got)
					}
				})
			}
		}
	}
}

// TestCoreResetRepeated: many resets in a row onto the same program must be
// bit-for-bit deterministic — no drift accumulates in recycled pools, the
// pre-decode cache, or the superblock arena.
func TestCoreResetRepeated(t *testing.T) {
	prog := secureBranchProg(1)
	cfg := SecureConfig()
	want := freshSnap(t, cfg, prog)
	c := New(cfg, prog)
	rec := armRecorder(c)
	mustRun(t, c)
	for i := 0; i < 5; i++ {
		rec.clear()
		c.Reset(prog)
		mustRun(t, c)
		if got := snapshot(c, rec); !reflect.DeepEqual(got, want) {
			t.Fatalf("reset iteration %d diverged from fresh run", i)
		}
	}
}

// TestCoreResetWithWatchHooksArmed: hooks installed before the first run must
// survive Reset — the attack runner installs its marker watch once and relies
// on it firing for every pooled trial. The second run's event stream must be
// event-for-event identical to a fresh core's, with no rearming.
func TestCoreResetWithWatchHooksArmed(t *testing.T) {
	prog := storeLoadProg()
	cfg := DefaultConfig()
	want := freshSnap(t, cfg, prog)
	if len(want.mems) == 0 || len(want.branches) == 0 {
		t.Fatalf("reference run observed no events (mem=%d, branch=%d)", len(want.mems), len(want.branches))
	}
	c := New(cfg, prog)
	rec := armRecorder(c)
	mustRun(t, c)
	rec.clear()
	c.Reset(prog) // hooks must persist across this
	mustRun(t, c)
	got := snapshot(c, rec)
	if !reflect.DeepEqual(got.mems, want.mems) {
		t.Errorf("memory event stream after reset differs from fresh (got %d events, want %d)",
			len(got.mems), len(want.mems))
	}
	if !reflect.DeepEqual(got.branches, want.branches) {
		t.Errorf("branch event stream after reset differs from fresh (got %d events, want %d)",
			len(got.branches), len(want.branches))
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("full snapshot after reset differs from fresh")
	}
}

// TestCoreResetMidSuperblockTrace: Reset while a superblock replay is in
// flight (the core stepped mid-run with the trace engine engaged, cursor
// live) must fully retract the cached traces and replay cursor; the next run
// must match a fresh core exactly.
func TestCoreResetMidSuperblockTrace(t *testing.T) {
	prog := storeLoadProg()
	cfg := DefaultConfig()
	c := New(cfg, prog)
	rec := armRecorder(c)
	// Step until replay is demonstrably engaged, well before the program ends.
	for c.SBStats.Replays == 0 || c.Cycles() < 120 {
		if c.Halted() {
			t.Fatal("program halted before the superblock engine engaged; test needs a longer program")
		}
		if err := c.StepCycle(); err != nil {
			t.Fatal(err)
		}
	}
	for _, target := range []*isa.Program{prog, mispredictHeavyProg()} {
		want := freshSnap(t, cfg, target)
		rec.clear()
		c.Reset(target)
		mustRun(t, c)
		if got := snapshot(c, rec); !reflect.DeepEqual(got, want) {
			t.Errorf("reset mid-superblock-trace diverged from fresh:\nfresh: %+v\nreset: %+v", want, got)
		}
	}
}

// TestCoreResetAfterRedirectHeavyRun: a run dominated by branch mispredicts
// leaves squashed uops, dropped replay cursors, and trained predictor state
// behind; Reset must scrub all of it. The dirty run must itself have
// mispredicted for the test to bite.
func TestCoreResetAfterRedirectHeavyRun(t *testing.T) {
	dirty := mispredictHeavyProg()
	cfg := DefaultConfig()
	c := New(cfg, dirty)
	rec := armRecorder(c)
	mustRun(t, c)
	if c.Stats.BranchMispredicts == 0 {
		t.Fatal("dirty run produced no mispredicts; the redirect edge is untested")
	}
	for _, target := range []*isa.Program{dirty, storeLoadProg(), secureBranchProg(1)} {
		want := freshSnap(t, cfg, target)
		rec.clear()
		c.Reset(target)
		mustRun(t, c)
		if got := snapshot(c, rec); !reflect.DeepEqual(got, want) {
			t.Errorf("reset after redirect-heavy run diverged from fresh:\nfresh: %+v\nreset: %+v", want, got)
		}
	}
}
