package pipeline

import (
	"repro/internal/cache"
	"repro/internal/isa"
)

// predec is one pre-decode cache entry. size==0 means not yet decoded;
// size<0 means the bytes at this pc are undecodable (wrong-path fetch).
// Alongside the decoded instruction it caches every piece of per-op
// metadata that is a pure function of the instruction bytes, so neither
// fetch path nor rename re-derives it per dynamic instruction.
type predec struct {
	inst isa.Inst
	size int8

	cl               isa.Class
	sra1, sra2, sra3 int8 // arch sources for ps1..ps3, sraNone unused
	writesRd         bool
	isLoad, isStore  bool
	memWidth         uint8
}

// fillStatic derives the cached static metadata from d.inst. The source
// mapping mirrors renameOne's historical per-class switch exactly
// (including the default case taking at most the first two SrcRegs).
func fillStatic(d *predec) {
	in := d.inst
	d.cl = in.Op.ClassOf()
	d.sra1, d.sra2, d.sra3 = sraNone, sraNone, sraNone
	d.writesRd = in.WritesRd()
	switch {
	case d.cl == isa.ClassStore:
		d.sra1, d.sra3 = int8(in.Ra), int8(in.Rd) // address base, store data
		d.isStore = true
		d.memWidth = uint8(isa.MemWidth(in.Op))
	case d.cl == isa.ClassLoad:
		d.sra1 = int8(in.Ra)
		d.isLoad = true
		d.memWidth = uint8(isa.MemWidth(in.Op))
	case d.cl == isa.ClassCMov:
		d.sra1, d.sra2 = int8(in.Ra), int8(in.Rb)
		d.sra3 = int8(in.Rd) // old destination value
	case d.cl == isa.ClassBranch:
		d.sra1, d.sra2 = int8(in.Ra), int8(in.Rb)
	case in.Op == isa.OpJalr:
		d.sra1 = int8(in.Ra)
	default:
		var srcs [3]isa.Reg
		ss := in.SrcRegs(srcs[:0])
		if len(ss) > 0 {
			d.sra1 = int8(ss[0])
		}
		if len(ss) > 1 {
			d.sra2 = int8(ss[1])
		}
	}
}

// predecAt returns the pre-decode entry for code offset off, decoding and
// filling it on first touch. A nil return means the bytes are undecodable.
func (c *Core) predecAt(off int) *predec {
	d := &c.decoded[off]
	if d.size == 0 {
		inst, size, err := isa.Decode(c.prog.Code, off)
		if err != nil {
			d.size = -1
		} else {
			d.inst, d.size = inst, int8(size)
			fillStatic(d)
		}
	}
	if d.size < 0 {
		return nil
	}
	return d
}

// fetch reads and predecodes up to FetchWidth instructions per cycle from
// the program image, consulting the IL1 for every distinct cache line
// touched and the branch predictors for control flow. Secure branches are
// never predicted: under SeMPE an sJMP always falls through into the
// not-taken path, so the fetch stream carries no information about the
// secret (and the predictor state is never updated by it).
//
// Two implementations produce identical cycle-level behavior: the legacy
// per-instruction walk (decode, classify, and predecode each pc on every
// dynamic fetch) and the superblock replay path (superblock.go), which
// copies prototype micro-ops out of cached straight-line traces. The replay
// path is used whenever the engine is enabled; the MemWatch/BranchWatch
// hooks fire at retire and observe identical streams on either path (the
// differential scenario suite pins the equivalence), so arming them no
// longer forces the legacy walk.
func (c *Core) fetch() {
	if c.fetchHalted || c.fetchBroken {
		return
	}
	if c.cycle < c.fetchStallUntil {
		c.Stats.FetchStallCycles++
		return
	}
	if c.sbOff || c.specWatch != nil || c.specCtl > 0 {
		// A live spec watch diverts to the legacy walk: the per-fetch
		// emission points live there, and the superblock replay path is
		// cycle-identical by construction (the differential suite pins it),
		// so the diversion observes without perturbing. specCtl > 0 is the
		// wrong-path-replay-off divert: unresolved control flow is in
		// flight, so fetch may be on a mispredicted path (the counter is
		// only ever raised when Config.DisableWrongPathReplay is set).
		c.fetchLegacy()
		return
	}
	c.fetchSuperblock()
}

// fetchLegacy is the per-instruction fetch walk (the pre-superblock code
// path, kept as the fallback and differential-testing reference).
func (c *Core) fetchLegacy() {
	var lastLine uint64 = ^uint64(0)
	for n := 0; n < c.cfg.FetchWidth && !c.fe.fetchFull(); n++ {
		pc := c.fetchPC
		if pc < c.prog.CodeBase || pc >= c.prog.CodeEnd() {
			// Fetch wandered outside the code image: only possible on a
			// wrong path. Stall until a flush redirects us.
			c.fetchBroken = true
			return
		}
		off := int(pc - c.prog.CodeBase)
		d := c.predecAt(off)
		if d == nil {
			c.fetchBroken = true
			return
		}
		size := int(d.size)
		if c.specWatch != nil {
			// Attribute IL1 fills (and any prefetches they trigger) to this
			// fetch. c.seq is the sequence number the micro-op is about to get.
			c.specPC, c.specSeq = pc, c.seq
		}
		// Charge IL1 for each distinct line the instruction bytes touch.
		for a := pc &^ (cache.LineSize - 1); a < pc+uint64(size); a += cache.LineSize {
			if a == lastLine {
				continue
			}
			lat := c.Hier.IL1.AccessPC(pc, a, false)
			lastLine = a
			if lat > c.cfg.Caches.IL1.HitLatency {
				// Instruction miss: stall the front end; retry this
				// instruction when the fill completes.
				c.fetchStallUntil = c.cycle + uint64(lat)
				return
			}
		}

		i := c.pool.get()
		u := c.u(i)
		u.seq = c.seq
		u.inst = d.inst
		u.pc = pc
		u.npc = pc + uint64(size)
		u.cl = d.cl
		u.sra1, u.sra2, u.sra3 = d.sra1, d.sra2, d.sra3
		u.writesRd = d.writesRd
		u.isLoad, u.isStore = d.isLoad, d.isStore
		u.memWidth = d.memWidth
		c.seq++
		c.SBStats.LegacyOps++

		redirected := c.predecode(u)
		if c.specWatch != nil && specWatched(u) {
			c.emitSpec(SpecEvent{Kind: SpecFetch, Seq: u.seq, PC: u.pc, Addr: u.predTarget, Taken: u.predTaken})
		}
		c.fe.pushFetched(i)
		if u.inst.Op == isa.OpHalt {
			c.fetchHalted = true
			return
		}
		if redirected {
			// One taken control transfer per fetch group.
			return
		}
	}
}

// predecode sets the front-end prediction state of u and advances fetchPC.
// It reports whether the fetch group must end because of a (predicted-)
// taken control transfer. Both fetch paths funnel every control-flow or
// SeMPE-marker instruction through here, so prediction, RAS traffic, and
// sJMP/eosJMP marking have a single source of truth.
func (c *Core) predecode(u *uop) bool {
	in := u.inst
	secureMode := c.cfg.SeMPE
	switch {
	case in.IsSJmp() && secureMode:
		u.isSJmp = true
		// No branch-predictor consultation: always fall through to the
		// not-taken SecBlock first.
		u.predTaken = false
		c.fetchPC = u.npc
		return false
	case in.IsEOSJmp() && secureMode:
		u.isEOSJmp = true
		// The jump-back, if any, happens at commit; fetch continues
		// sequentially and is flushed on redirect.
		c.fetchPC = u.npc
		return false
	case in.Op.IsBranch():
		u.predTaken = c.BP.PredictBranch(u.pc)
		u.predTarget = u.pc + uint64(in.Imm)
		if c.specWatch != nil {
			c.emitSpec(SpecEvent{Kind: SpecBPLookup, Seq: u.seq, PC: u.pc, Addr: u.predTarget, Taken: u.predTaken})
		}
		if u.predTaken {
			c.fetchPC = u.predTarget
			return true
		}
		c.fetchPC = u.npc
		return false
	case in.Op == isa.OpJmp:
		u.predTaken = true
		u.predTarget = u.pc + uint64(in.Imm)
		c.fetchPC = u.predTarget
		return true
	case in.Op == isa.OpJal:
		u.predTaken = true
		u.predTarget = u.pc + uint64(in.Imm)
		if in.Rd == isa.LR {
			c.BP.PushReturn(u.npc)
		}
		c.fetchPC = u.predTarget
		return true
	case in.Op == isa.OpJalr:
		u.predTaken = true
		if in.Rd == isa.RZ && in.Ra == isa.LR {
			// Return idiom: predict via the return-address stack.
			if t, ok := c.BP.PopReturn(); ok {
				u.predTarget = t
			} else {
				u.predTarget = u.npc
			}
		} else {
			if t, ok := c.BP.PredictIndirect(u.pc); ok {
				u.predTarget = t
			} else {
				u.predTarget = u.npc
			}
			if in.Rd == isa.LR {
				c.BP.PushReturn(u.npc)
			}
		}
		if c.specWatch != nil {
			c.emitSpec(SpecEvent{Kind: SpecBPLookup, Seq: u.seq, PC: u.pc, Addr: u.predTarget, Taken: true})
		}
		c.fetchPC = u.predTarget
		return true
	default:
		c.fetchPC = u.npc
		return false
	}
}

// decode moves predecoded micro-ops into the decode queue. The two buffers
// share one ring (feRing), so the move is a boundary shift, not a copy.
func (c *Core) decode() {
	c.fe.decodeAdvance(c.cfg.DecodeWidth)
}

// rename allocates physical registers and dispatches micro-ops into the
// ROB, issue queue, and load/store queues. Under SeMPE it implements the
// paper's pipeline drains: an sJMP or eosJMP only renames once the ROB is
// empty, and rename stays blocked after an eosJMP until it commits, so the
// instruction window never holds instructions from both paths at once.
func (c *Core) rename() {
	if c.renameBlocked {
		c.Stats.DrainStallCycles++
		return
	}
	if c.cycle < c.renameStallUntil {
		c.Stats.SPMStallCycles++
		return
	}
	arena := c.pool.arena
	secure := c.cfg.SeMPE
	for n := 0; n < c.cfg.RenameWidth && c.fe.decLen() > 0; n++ {
		i := c.fe.frontDec()
		u := &arena[i]
		if secure && (u.isSJmp || u.isEOSJmp) && c.robCount > 0 {
			// Drain: wait until every older instruction has committed.
			c.Stats.DrainStallCycles++
			return
		}
		if !c.renameOne(i, u) {
			return
		}
		c.fe.popDec()
		if secure && u.isEOSJmp {
			// Stay drained until the eosJMP commits and the ArchRS
			// controller has restored register state.
			c.renameBlocked = true
			return
		}
	}
}

// renameOne performs the structural-resource checks, register renaming, and
// dispatch for one micro-op, reporting false (with no state changed) when a
// resource is exhausted and rename must stall this cycle. The per-class
// source analysis was done once at predecode (fillStatic); here it is three
// unconditional rename-map lookups (unused sources read the sraNone/psNone
// sentinels). u must be c.u(i).
func (c *Core) renameOne(i uref, u *uop) bool {
	if c.robCount >= c.cfg.ROBSize {
		return false
	}
	cl := u.cl
	switch cl {
	case isa.ClassSys:
		// NOP, HALT, eosJMP: no issue-queue slot.
	case isa.ClassLoad:
		if len(c.lq) >= c.cfg.LQSize || c.iqCount >= c.cfg.IQSize {
			return false
		}
	case isa.ClassStore:
		if len(c.sq) >= c.cfg.SQSize || c.iqCount >= c.cfg.IQSize {
			return false
		}
	default:
		if c.iqCount >= c.cfg.IQSize {
			return false
		}
	}
	if u.writesRd && len(c.freeList) == 0 {
		return false
	}

	u.ps1 = c.rat[u.sra1]
	u.ps2 = c.rat[u.sra2]
	u.ps3 = c.rat[u.sra3]

	u.pd, u.oldPd = -1, -1
	if u.writesRd {
		rd := u.inst.Rd
		u.hasDest = true
		u.oldPd = c.rat[rd]
		u.pd = c.freeList[len(c.freeList)-1]
		c.freeList = c.freeList[:len(c.freeList)-1]
		c.physReady[u.pd] = false
		c.rat[rd] = u.pd
	}

	// ROB allocation (the ring size is not a power of two, so wrap with a
	// compare instead of a modulo — this is per-rename hot-path arithmetic).
	pos := c.robHead + c.robCount
	if pos >= c.cfg.ROBSize {
		pos -= c.cfg.ROBSize
	}
	c.rob[pos] = i
	c.robCount++

	switch cl {
	case isa.ClassSys:
		// NOP, HALT, eosJMP: nothing to execute.
		u.completed = true
		u.doneCycle = c.cycle
		return true
	case isa.ClassLoad:
		c.lq = append(c.lq, i)
	case isa.ClassStore:
		c.sq = append(c.sq, i)
	case isa.ClassBranch, isa.ClassJump:
		if c.wpOff {
			// Wrong-path replay disabled: track unresolved control flow so
			// fetch diverts to the legacy walk until this op retires or is
			// squashed (the matching decrements).
			c.specCtl++
		}
	}
	c.iqCount++

	// Wakeup registration: count pending sources and subscribe to their
	// producing registers; an op with none is ready immediately. The psNone
	// sentinel is always ready, so unused sources take no branch here.
	nr := int8(0)
	if !c.physReady[u.ps1] {
		nr++
		c.regWait(u.ps1, i, u.seq)
	}
	if !c.physReady[u.ps2] {
		nr++
		c.regWait(u.ps2, i, u.seq)
	}
	if !c.physReady[u.ps3] {
		nr++
		c.regWait(u.ps3, i, u.seq)
	}
	u.notReady = nr
	if nr == 0 {
		c.readyInsert(i)
	}
	return true
}

// flushAfter squashes every micro-op younger than u, repairs the rename map
// by walking the ROB from youngest to oldest, and redirects fetch to target.
// Cleanup of the scheduler structures is squash-aware rather than per-uop:
// the ready list and the memory queues are seq-sorted and every squashed op
// is younger than u, so the squashed entries form a suffix that a binary
// search truncates in one step; squashed ops still in flight in the
// completion calendar are cancelled out of their wheel buckets in one pass
// per touched bucket, returning their arena slots eagerly instead of leaving
// them filed until the bucket's cycle comes around.
// cause tags the flush for the wrong-path accounting (Stats.FlushMispredicts
// vs FlushOverflows — secure redirects never come through here, they flush
// only the never-renamed front end via redirectFrontEnd at commitEOSJmp).
func (c *Core) flushAfter(u *uop, target uint64, cause FlushCause) {
	c.Stats.Flushes++
	switch cause {
	case FlushMispredict:
		c.Stats.FlushMispredicts++
	case FlushOverflow:
		c.Stats.FlushOverflows++
	}
	boundary := u.seq
	arena := c.pool.arena
	// Walk the ROB backwards, undoing rename state. Ring contents beyond the
	// live window are never read, so the vacated slots need no nilRef store.
	// Ops not in flight in the calendar lose their last reference here (the
	// seq-sorted queues are truncated below) and are recycled immediately;
	// in-flight ops are collected for the calendar cancellation pass.
	c.squashTmp = c.squashTmp[:0]
	nsq := uint64(0)
	for c.robCount > 0 {
		pos := c.robHead + c.robCount - 1
		if pos >= c.cfg.ROBSize {
			pos -= c.cfg.ROBSize
		}
		yi := c.rob[pos]
		y := &arena[yi]
		if y.seq <= boundary {
			break
		}
		if y.hasDest {
			c.rat[y.inst.Rd] = y.oldPd
			c.freeList = append(c.freeList, y.pd)
		}
		y.squashed = true
		c.robCount--
		nsq++
		if y.fromReplay {
			c.SBStats.WrongPathReplays++
		}
		if c.wpOff && (y.cl == isa.ClassBranch || y.cl == isa.ClassJump) {
			c.specCtl--
		}
		if y.issued && !y.completed {
			c.squashTmp = append(c.squashTmp, yi)
		} else {
			if !y.issued && y.cl != isa.ClassSys {
				c.iqCount--
			}
			c.pool.put(yi)
		}
	}
	// Bulk-cancel the squashed suffix of each seq-sorted structure. The
	// recycled slots above still hold their seq values (put does not clear),
	// so the boundary search stays valid until the next pool get.
	c.readyCount = seqBoundary(arena, c.readyList[:c.readyCount], boundary)
	c.lq = c.lq[:seqBoundary(arena, c.lq, boundary)]
	c.sq = c.sq[:seqBoundary(arena, c.sq, boundary)]
	// Cancel in-flight squashed ops out of the completion calendar: one
	// filtering pass per touched wheel bucket (repeat visits walk an
	// already-clean chain and remove nothing). Ops whose bucket was already
	// drained into writeback's due list this cycle are not in any chain;
	// writeback reclaims those when the due loop reaches them. Waiter lists
	// are still cleaned lazily: wakePreg drops squashed entries by seq check.
	overflowTouched := false
	for _, yi := range c.squashTmp {
		y := &arena[yi]
		if d := y.doneCycle - c.cycle; d <= c.calMask {
			b := y.doneCycle & c.calMask
			if c.calBuckets[b] >= 0 {
				c.calCancelBucket(b)
			}
		} else {
			overflowTouched = true
		}
	}
	if overflowTouched {
		keep := c.calOverflow[:0]
		for _, i := range c.calOverflow {
			if arena[i].squashed {
				c.pool.put(i)
				c.execCount--
			} else {
				keep = append(keep, i)
			}
		}
		c.calOverflow = keep
	}
	dropped := c.redirectFrontEnd(target)
	c.sbCountWrongPathBuilds(boundary)
	c.Stats.SquashedUops += nsq
	c.Stats.WrongPathFetches += nsq + dropped
	if c.specWatch != nil {
		c.emitSpec(SpecEvent{Kind: SpecFlush, Seq: u.seq, PC: u.pc, Addr: target, Cause: cause,
			SquashedROB: uint32(nsq), DroppedFE: uint32(dropped)})
	}
}

// seqBoundary returns the number of leading entries of q with seq <= boundary.
// q must be seq-sorted ascending — true for readyList (sorted insertion) and
// the memory queues (appended in rename order).
func seqBoundary(arena []uop, q []uref, boundary uint64) int {
	lo, hi := 0, len(q)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if arena[q[mid]].seq <= boundary {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// calCancelBucket rebuilds wheel bucket b's chain without its squashed ops,
// recycling their arena slots. The calendar held the last live reference to
// each (flushAfter already truncated every other structure).
func (c *Core) calCancelBucket(b uint64) {
	arena := c.pool.arena
	head := int32(-1)
	n := c.calBuckets[b]
	for n >= 0 {
		next := c.calNext[n]
		if arena[n].squashed {
			c.pool.put(n)
			c.execCount--
		} else {
			c.calNext[n] = head
			head = n
		}
		n = next
	}
	// The surviving chain was rebuilt in reverse; reverse it back so drain
	// order (and therefore the due list's near-sortedness) is unchanged.
	n, head = head, -1
	for n >= 0 {
		next := c.calNext[n]
		c.calNext[n] = head
		head = n
		n = next
	}
	c.calBuckets[b] = head
}

// redirectFrontEnd clears all fetched-but-not-renamed state and restarts
// fetch at target after the redirect penalty, returning how many fetched
// micro-ops it dropped (wrong-path accounting). Drained micro-ops were never
// renamed, so the front-end buffers hold their only references and they can
// be recycled directly.
//
// The superblock replay cursor survives the redirect by re-keying on the
// target pc: when a cached block already starts there, the next fetch group
// resumes replay without the validate-miss/re-lookup step. A redirect into
// unknown territory (no block at target yet, or target outside the code
// image) drops the cursor and the next fetch builds or re-looks-up as usual.
// Either way replay state never carries stale context across the redirect —
// the per-step pc check in fetchSuperblock remains the only validity rule.
func (c *Core) redirectFrontEnd(target uint64) uint64 {
	var dropped uint64
	arena := c.pool.arena
	for !c.fe.empty() {
		i := c.fe.popAny()
		if arena[i].fromReplay {
			c.SBStats.WrongPathReplays++
		}
		c.pool.put(i)
		dropped++
	}
	c.fetchPC = target
	c.fetchHalted = false
	c.fetchBroken = false
	c.fetchStallUntil = c.cycle + uint64(c.cfg.RedirectPenalty)
	if c.sbCur >= 0 {
		c.sbCur = -1
		if !c.sbOff && target >= c.prog.CodeBase && target < c.prog.CodeEnd() {
			if bi := c.sbIndex[target-c.prog.CodeBase]; bi >= 0 {
				c.sbCur, c.sbCurIdx = bi, 0
				c.SBStats.ReKeys++
			}
		}
		if c.sbCur < 0 {
			c.SBStats.Invalidate++
		}
	}
	return dropped
}
