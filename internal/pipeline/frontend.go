package pipeline

import (
	"repro/internal/cache"
	"repro/internal/isa"
)

// predec is one pre-decode cache entry. size==0 means not yet decoded;
// size<0 means the bytes at this pc are undecodable (wrong-path fetch).
type predec struct {
	inst isa.Inst
	size int8
}

// fetch reads and predecodes up to FetchWidth instructions per cycle from
// the program image, consulting the IL1 for every distinct cache line
// touched and the branch predictors for control flow. Secure branches are
// never predicted: under SeMPE an sJMP always falls through into the
// not-taken path, so the fetch stream carries no information about the
// secret (and the predictor state is never updated by it). Decoded
// instructions are cached per pc, so each static instruction is decoded
// once per run rather than on every dynamic fetch.
func (c *Core) fetch() {
	if c.fetchHalted || c.fetchBroken {
		return
	}
	if c.cycle < c.fetchStallUntil {
		c.Stats.FetchStallCycles++
		return
	}
	var lastLine uint64 = ^uint64(0)
	for n := 0; n < c.cfg.FetchWidth && !c.fetchBuf.full(); n++ {
		pc := c.fetchPC
		if pc < c.prog.CodeBase || pc >= c.prog.CodeEnd() {
			// Fetch wandered outside the code image: only possible on a
			// wrong path. Stall until a flush redirects us.
			c.fetchBroken = true
			return
		}
		off := int(pc - c.prog.CodeBase)
		d := &c.decoded[off]
		if d.size == 0 {
			inst, size, err := isa.Decode(c.prog.Code, off)
			if err != nil {
				d.size = -1
			} else {
				d.inst, d.size = inst, int8(size)
			}
		}
		if d.size < 0 {
			c.fetchBroken = true
			return
		}
		size := int(d.size)
		// Charge IL1 for each distinct line the instruction bytes touch.
		for a := pc &^ (cache.LineSize - 1); a < pc+uint64(size); a += cache.LineSize {
			if a == lastLine {
				continue
			}
			lat := c.Hier.IL1.AccessPC(pc, a, false)
			lastLine = a
			if lat > c.cfg.Caches.IL1.HitLatency {
				// Instruction miss: stall the front end; retry this
				// instruction when the fill completes.
				c.fetchStallUntil = c.cycle + uint64(lat)
				return
			}
		}

		u := c.pool.get()
		u.seq = c.seq
		u.inst = d.inst
		u.pc = pc
		u.npc = pc + uint64(size)
		c.seq++

		redirected := c.predecode(u)
		c.fetchBuf.push(u)
		if u.inst.Op == isa.OpHalt {
			c.fetchHalted = true
			return
		}
		if redirected {
			// One taken control transfer per fetch group.
			return
		}
	}
}

// predecode sets the front-end prediction state of u and advances fetchPC.
// It reports whether the fetch group must end because of a (predicted-)
// taken control transfer.
func (c *Core) predecode(u *uop) bool {
	in := u.inst
	secureMode := c.cfg.SeMPE
	switch {
	case in.IsSJmp() && secureMode:
		u.isSJmp = true
		// No branch-predictor consultation: always fall through to the
		// not-taken SecBlock first.
		u.predTaken = false
		c.fetchPC = u.npc
		return false
	case in.IsEOSJmp() && secureMode:
		u.isEOSJmp = true
		// The jump-back, if any, happens at commit; fetch continues
		// sequentially and is flushed on redirect.
		c.fetchPC = u.npc
		return false
	case in.Op.IsBranch():
		u.predTaken = c.BP.PredictBranch(u.pc)
		u.predTarget = u.pc + uint64(in.Imm)
		if u.predTaken {
			c.fetchPC = u.predTarget
			return true
		}
		c.fetchPC = u.npc
		return false
	case in.Op == isa.OpJmp:
		u.predTaken = true
		u.predTarget = u.pc + uint64(in.Imm)
		c.fetchPC = u.predTarget
		return true
	case in.Op == isa.OpJal:
		u.predTaken = true
		u.predTarget = u.pc + uint64(in.Imm)
		if in.Rd == isa.LR {
			c.BP.PushReturn(u.npc)
		}
		c.fetchPC = u.predTarget
		return true
	case in.Op == isa.OpJalr:
		u.predTaken = true
		if in.Rd == isa.RZ && in.Ra == isa.LR {
			// Return idiom: predict via the return-address stack.
			if t, ok := c.BP.PopReturn(); ok {
				u.predTarget = t
			} else {
				u.predTarget = u.npc
			}
		} else {
			if t, ok := c.BP.PredictIndirect(u.pc); ok {
				u.predTarget = t
			} else {
				u.predTarget = u.npc
			}
			if in.Rd == isa.LR {
				c.BP.PushReturn(u.npc)
			}
		}
		c.fetchPC = u.predTarget
		return true
	default:
		c.fetchPC = u.npc
		return false
	}
}

// decode moves predecoded micro-ops into the decode queue.
func (c *Core) decode() {
	n := 0
	for n < c.cfg.DecodeWidth && c.fetchBuf.len() > 0 && !c.decodeQ.full() {
		c.decodeQ.push(c.fetchBuf.pop())
		n++
	}
}

// rename allocates physical registers and dispatches micro-ops into the
// ROB, issue queue, and load/store queues. Under SeMPE it implements the
// paper's pipeline drains: an sJMP or eosJMP only renames once the ROB is
// empty, and rename stays blocked after an eosJMP until it commits, so the
// instruction window never holds instructions from both paths at once.
func (c *Core) rename() {
	if c.renameBlocked {
		c.Stats.DrainStallCycles++
		return
	}
	if c.cycle < c.renameStallUntil {
		c.Stats.SPMStallCycles++
		return
	}
	for n := 0; n < c.cfg.RenameWidth && c.decodeQ.len() > 0; n++ {
		u := c.decodeQ.front()
		if c.cfg.SeMPE && (u.isSJmp || u.isEOSJmp) && c.robCount > 0 {
			// Drain: wait until every older instruction has committed.
			c.Stats.DrainStallCycles++
			return
		}
		if !c.dispatchReady(u) {
			return
		}
		c.decodeQ.pop()
		c.renameOne(u)
		if c.cfg.SeMPE && u.isEOSJmp {
			// Stay drained until the eosJMP commits and the ArchRS
			// controller has restored register state.
			c.renameBlocked = true
			return
		}
	}
}

// dispatchReady checks structural resources for one micro-op.
func (c *Core) dispatchReady(u *uop) bool {
	if c.robCount >= c.cfg.ROBSize {
		return false
	}
	needsDest := u.inst.WritesRd()
	if needsDest && len(c.freeList) == 0 {
		return false
	}
	cl := u.class()
	switch cl {
	case isa.ClassLoad:
		if len(c.lq) >= c.cfg.LQSize {
			return false
		}
	case isa.ClassStore:
		if len(c.sq) >= c.cfg.SQSize {
			return false
		}
	}
	if cl != isa.ClassSys && len(c.iq) >= c.cfg.IQSize {
		return false
	}
	return true
}

// renameOne performs register renaming and dispatch for one micro-op.
func (c *Core) renameOne(u *uop) {
	in := u.inst
	u.ps1, u.ps2, u.ps3 = -1, -1, -1
	cl := u.class()

	switch {
	case cl == isa.ClassStore:
		u.ps1 = c.rat[in.Ra] // address base
		u.ps3 = c.rat[in.Rd] // store data
		u.isStore = true
		u.memWidth = isa.MemWidth(in.Op)
	case cl == isa.ClassLoad:
		u.ps1 = c.rat[in.Ra]
		u.isLoad = true
		u.memWidth = isa.MemWidth(in.Op)
	case cl == isa.ClassCMov:
		u.ps1 = c.rat[in.Ra]
		u.ps2 = c.rat[in.Rb]
		u.ps3 = c.rat[in.Rd] // old destination value
	case cl == isa.ClassBranch:
		u.ps1 = c.rat[in.Ra]
		u.ps2 = c.rat[in.Rb]
	case in.Op == isa.OpJalr:
		u.ps1 = c.rat[in.Ra]
	default:
		var srcs [3]isa.Reg
		for _, r := range in.SrcRegs(srcs[:0]) {
			if u.ps1 < 0 {
				u.ps1 = c.rat[r]
			} else if u.ps2 < 0 {
				u.ps2 = c.rat[r]
			}
		}
	}

	u.pd, u.oldPd = -1, -1
	if in.WritesRd() {
		u.hasDest = true
		u.oldPd = c.rat[in.Rd]
		u.pd = c.freeList[len(c.freeList)-1]
		c.freeList = c.freeList[:len(c.freeList)-1]
		c.physReady[u.pd] = false
		c.rat[in.Rd] = u.pd
	}

	// ROB allocation.
	pos := (c.robHead + c.robCount) % c.cfg.ROBSize
	c.rob[pos] = u
	c.robCount++

	switch cl {
	case isa.ClassSys:
		// NOP, HALT, eosJMP: nothing to execute.
		u.completed = true
		u.doneCycle = c.cycle
	case isa.ClassLoad:
		c.lq = append(c.lq, u)
		c.iq = append(c.iq, u)
	case isa.ClassStore:
		c.sq = append(c.sq, u)
		c.iq = append(c.iq, u)
	default:
		c.iq = append(c.iq, u)
	}
}

// flushAfter squashes every micro-op younger than u, repairs the rename map
// by walking the ROB from youngest to oldest, and redirects fetch to target.
// Squashed ops are recycled into the pool immediately unless they are still
// in flight in exec; those stay marked squashed and writeback recycles them
// when it drops them (recycling here would leave exec holding dangling,
// possibly-reused micro-ops mid-iteration).
func (c *Core) flushAfter(u *uop, target uint64) {
	c.Stats.Flushes++
	// Walk the ROB backwards, undoing rename state.
	c.squashTmp = c.squashTmp[:0]
	for c.robCount > 0 {
		pos := (c.robHead + c.robCount - 1) % c.cfg.ROBSize
		y := c.rob[pos]
		if y.seq <= u.seq {
			break
		}
		if y.hasDest {
			c.rat[y.inst.Rd] = y.oldPd
			c.freeList = append(c.freeList, y.pd)
		}
		y.squashed = true
		c.rob[pos] = nil
		c.robCount--
		c.squashTmp = append(c.squashTmp, y)
	}
	c.iq = filterSquashed(c.iq)
	c.lq = filterSquashed(c.lq)
	c.sq = filterSquashed(c.sq)
	// exec is not compacted here: writeback iterates it and drops squashed
	// entries itself (compacting the shared backing array mid-iteration
	// would corrupt the walk).
	for i, y := range c.squashTmp {
		if !(y.issued && !y.completed) {
			// Not in exec: every remaining reference was just removed.
			c.pool.put(y)
		}
		c.squashTmp[i] = nil
	}
	c.redirectFrontEnd(target)
}

// redirectFrontEnd clears all fetched-but-not-renamed state and restarts
// fetch at target after the redirect penalty. Drained micro-ops were never
// renamed, so the front-end buffers hold their only references and they can
// be recycled directly.
func (c *Core) redirectFrontEnd(target uint64) {
	for c.fetchBuf.len() > 0 {
		c.pool.put(c.fetchBuf.pop())
	}
	for c.decodeQ.len() > 0 {
		c.pool.put(c.decodeQ.pop())
	}
	c.fetchPC = target
	c.fetchHalted = false
	c.fetchBroken = false
	c.fetchStallUntil = c.cycle + uint64(c.cfg.RedirectPenalty)
}

func filterSquashed(q []*uop) []*uop {
	out := q[:0]
	for _, u := range q {
		if !u.squashed {
			out = append(out, u)
		}
	}
	return out
}
