// Package scenario is the declarative sweep engine behind every evaluation
// in this repository. A Scenario names a sweep (a Sweep: axes plus a
// per-point runner) and a renderer turning the sweep's typed rows into
// stats.Tables; scenarios register themselves into a central registry that
// cmd/sempe-bench and cmd/sempe-serve resolve by name.
//
// The engine — not the individual experiments — owns grid expansion
// (row-major over the axes, so result order is deterministic), the bounded
// worker pool fanning points across goroutines, per-point timing, progress
// reporting, and sweep-row memoization. Several scenarios may share one
// Sweep (Fig. 10a, Fig. 10b, and Table I are three renderings of the same
// microbenchmark grid); a RowCache lets one invocation simulate that grid
// once.
package scenario

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/stats"
)

// Spec parameterizes one run of a scenario. Quick selects the scenario's
// reduced grid (seconds instead of minutes); Params carries
// scenario-specific overrides as strings ("ws": "1,4,10"), the form they
// arrive in from flags and HTTP requests; Workers bounds the worker pool
// and never changes results, only wall time.
type Spec struct {
	Quick   bool              `json:"quick,omitempty"`
	Workers int               `json:"workers,omitempty"`
	Params  map[string]string `json:"params,omitempty"`
}

// Param returns the named parameter, or def when unset. An empty string is
// a set value (e.g. an explicitly empty axis).
func (s Spec) Param(key, def string) string {
	if v, ok := s.Params[key]; ok {
		return v
	}
	return def
}

// Key is the spec's canonical identity: quick plus the sorted params.
// Workers is deliberately excluded — every grid point simulates on an
// independent core, so results are bit-identical at any worker count, and
// caches keyed by (scenario, spec) must hit across worker settings.
func (s Spec) Key() string {
	keys := make([]string, 0, len(s.Params))
	for k := range s.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	fmt.Fprintf(&b, "quick=%t", s.Quick)
	for _, k := range keys {
		fmt.Fprintf(&b, ";%s=%s", k, s.Params[k])
	}
	return b.String()
}

// Axis is one sweep dimension: a name and the display value of each
// position along it.
type Axis struct {
	Name   string   `json:"name"`
	Values []string `json:"values"`
}

// Point is one cell of an expanded grid: its index in row-major order and
// its coordinate along each axis.
type Point struct {
	Index  int
	Coords []int
}

// Labels returns the point's axis values, for error messages and timing
// reports.
func (p Point) Labels(axes []Axis) []string {
	out := make([]string, len(p.Coords))
	for i, c := range p.Coords {
		out[i] = axes[i].Values[c]
	}
	return out
}

// Expand enumerates the grid in row-major order (last axis fastest). Zero
// axes expand to a single point with no coordinates — a scenario with no
// sweep, like the Table II configuration echo. An axis with no values
// expands to an empty grid.
func Expand(axes []Axis) []Point {
	n := 1
	for _, a := range axes {
		n *= len(a.Values)
	}
	if n == 0 {
		return nil
	}
	pts := make([]Point, n)
	for i := 0; i < n; i++ {
		coords := make([]int, len(axes))
		rem := i
		for d := len(axes) - 1; d >= 0; d-- {
			coords[d] = rem % len(axes[d].Values)
			rem /= len(axes[d].Values)
		}
		pts[i] = Point{Index: i, Coords: coords}
	}
	return pts
}

// Grid evaluates fn(i) for every i in [0, n), fanning the calls across a
// bounded pool of worker goroutines. The caller writes results into a
// pre-sized slice indexed by i, which keeps output order deterministic
// regardless of scheduling; the returned error is the lowest-indexed
// failure, so error reporting is deterministic too. workers <= 1 runs
// serially.
func Grid(n, workers int, fn func(i int) error) error {
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Sweep is a named grid shared by one or more scenarios: the axes for a
// given spec and the runner producing one typed row per grid point. Run
// receives the point's coordinates into the Axes slices; it must be safe
// for concurrent calls (every evaluation point constructs an independent
// simulated core).
type Sweep struct {
	ID   string
	Axes func(Spec) ([]Axis, error)
	Run  func(Spec, Point) (any, error)

	// DecodeRow, when set, decodes one JSON-encoded row back into the
	// sweep's typed row — the inverse of json.Marshal on Run's result.
	// Declaring it makes the sweep shardable: the cluster coordinator can
	// merge rows computed by remote workers, and the on-disk store can
	// rehydrate persisted points. A sweep whose rows do not survive a JSON
	// round trip would leave it nil and stay local-only; every registered
	// sweep declares one.
	DecodeRow func(json.RawMessage) (any, error)
}

// Shardable reports whether the sweep's rows survive a JSON round trip,
// which is what cluster distribution and on-disk row persistence require.
func (sw *Sweep) Shardable() bool { return sw.DecodeRow != nil }

// Scenario is one registered evaluation: a sweep plus a renderer turning
// the sweep's rows into tables.
type Scenario struct {
	Name        string
	Description string
	Sweep       *Sweep
	Render      func(Spec, []any) []*stats.Table
}

// PointStat reports one grid point's wall time.
type PointStat struct {
	Labels []string `json:"labels,omitempty"`
	Millis float64  `json:"millis"`
}

// Result is a completed scenario run: the spec it ran under, the expanded
// axes, the rendered tables, and timing. Rows carries the sweep's typed
// per-point rows for Go callers; it is not serialized (the tables are the
// structured wire form).
type Result struct {
	Scenario      string         `json:"scenario"`
	Spec          Spec           `json:"spec"`
	Axes          []Axis         `json:"axes,omitempty"`
	Points        int            `json:"points"`
	Tables        []*stats.Table `json:"tables"`
	ElapsedMillis float64        `json:"elapsed_ms,omitempty"`
	Slowest       *PointStat     `json:"slowest_point,omitempty"`
	Rows          []any          `json:"-"`
}

// Stable returns a copy of the result with every nondeterministic field
// zeroed: wall times, the slowest-point report, the worker count (which
// never affects rows), and the in-memory Rows. Two runs of the same
// (scenario, spec) — serial, parallel, or distributed across a cluster —
// encode their stable forms to byte-identical JSON; cmd/sempe-bench
// -stable, cmd/sempe-sweep, the golden tests, and the CI cluster smoke
// job all diff stable encodings.
func (r *Result) Stable() *Result {
	out := *r
	out.ElapsedMillis = 0
	out.Slowest = nil
	out.Spec.Workers = 0
	out.Rows = nil
	return &out
}

// RunOptions tunes one engine invocation. Progress, when set, is called
// after every completed grid point with (done, total); it may be called
// from multiple goroutines but never concurrently. Rows, when set,
// memoizes sweep rows by (sweep, spec) so scenarios sharing a sweep — or
// repeated runs of the same spec — simulate the grid once. Context, when
// set, cancels the sweep between grid points: in-flight points finish,
// remaining points are skipped, and the run returns the context's error.
// Journal, when set, receives a per-sweep span plus one span per grid
// point (labels and wall time); a nil Journal records nothing and costs
// nothing — the observability differential test pins that instrumented
// and uninstrumented runs are byte-identical.
type RunOptions struct {
	Progress func(done, total int)
	Rows     *RowCache
	Context  context.Context
	Journal  *obs.Journal
}

// Run executes the scenario's sweep under spec and renders its tables.
func Run(sc *Scenario, spec Spec, opts RunOptions) (*Result, error) {
	axes, err := sc.Sweep.Axes(spec)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", sc.Name, err)
	}
	pts := Expand(axes)
	start := time.Now()
	var sweepSpan obs.Span
	if opts.Journal != nil {
		sweepSpan = opts.Journal.Begin("sweep", obs.Fields{
			"scenario": sc.Name, "sweep": sc.Sweep.ID, "points": len(pts)})
	}
	rows, slowest, err := sweepRows(sc.Sweep, spec, axes, pts, opts)
	if err != nil {
		sweepSpan.End(obs.Fields{"error": err.Error()})
		return nil, fmt.Errorf("%s: %w", sc.Name, err)
	}
	sweepSpan.End(nil)
	return &Result{
		Scenario:      sc.Name,
		Spec:          spec,
		Axes:          axes,
		Points:        len(pts),
		Tables:        sc.Render(spec, rows),
		ElapsedMillis: float64(time.Since(start)) / float64(time.Millisecond),
		Slowest:       slowest,
		Rows:          rows,
	}, nil
}

// SweepRows runs just the sweep for spec and returns its rows in
// deterministic row-major order — the entry point for typed wrappers
// (experiments.Fig10, experiments.Fig8) that want rows without rendering.
func SweepRows(sw *Sweep, spec Spec, opts RunOptions) ([]any, error) {
	axes, err := sw.Axes(spec)
	if err != nil {
		return nil, err
	}
	rows, _, err := sweepRows(sw, spec, axes, Expand(axes), opts)
	return rows, err
}

func sweepRows(sw *Sweep, spec Spec, axes []Axis, pts []Point, opts RunOptions) ([]any, *PointStat, error) {
	if opts.Rows != nil {
		rows, slowest, err := opts.Rows.rows(sw.ID+"|"+spec.Key(), func() ([]any, *PointStat, error) {
			return runPoints(sw, spec, axes, pts, opts)
		})
		if err != nil {
			return nil, nil, err
		}
		if opts.Progress != nil {
			opts.Progress(len(pts), len(pts))
		}
		return rows, slowest, nil
	}
	return runPoints(sw, spec, axes, pts, opts)
}

func runPoints(sw *Sweep, spec Spec, axes []Axis, pts []Point, opts RunOptions) ([]any, *PointStat, error) {
	rows := make([]any, len(pts))
	millis := make([]float64, len(pts))
	var mu sync.Mutex
	done := 0
	err := Grid(len(pts), spec.Workers, func(i int) error {
		if opts.Context != nil && opts.Context.Err() != nil {
			return opts.Context.Err()
		}
		var pointSpan obs.Span
		if opts.Journal != nil {
			pointSpan = opts.Journal.Begin("point", obs.Fields{
				"index": i, "labels": pts[i].Labels(axes)})
		}
		t0 := time.Now()
		row, err := sw.Run(spec, pts[i])
		millis[i] = float64(time.Since(t0)) / float64(time.Millisecond)
		if err != nil {
			pointSpan.End(obs.Fields{"error": err.Error()})
			return fmt.Errorf("point %v: %w", pts[i].Labels(axes), err)
		}
		pointSpan.End(nil)
		rows[i] = row
		if opts.Progress != nil {
			mu.Lock()
			done++
			opts.Progress(done, len(pts))
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	var slowest *PointStat
	for i, ms := range millis {
		if slowest == nil || ms > slowest.Millis {
			slowest = &PointStat{Labels: pts[i].Labels(axes), Millis: ms}
		}
	}
	return rows, slowest, nil
}

// RowCache memoizes sweep rows (and the slowest-point timing from the
// compute that ran them) by (sweep ID, spec key) with single-flight
// semantics: concurrent requests for the same key run the sweep once and
// share the result.
type RowCache struct {
	mu sync.Mutex
	m  map[string]*rowEntry
}

type rowEntry struct {
	once    sync.Once
	rows    []any
	slowest *PointStat
	err     error
}

// NewRowCache returns an empty cache.
func NewRowCache() *RowCache { return &RowCache{m: map[string]*rowEntry{}} }

func (c *RowCache) rows(key string, compute func() ([]any, *PointStat, error)) ([]any, *PointStat, error) {
	c.mu.Lock()
	e, ok := c.m[key]
	if !ok {
		e = &rowEntry{}
		c.m[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.rows, e.slowest, e.err = compute() })
	if e.err != nil {
		// Failures — a canceled context included — must not poison the
		// key: drop the entry so a later identical request recomputes.
		c.mu.Lock()
		if c.m[key] == e {
			delete(c.m, key)
		}
		c.mu.Unlock()
	}
	return e.rows, e.slowest, e.err
}
