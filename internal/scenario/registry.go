package scenario

import (
	"fmt"
	"sort"
	"sync"
)

// The central scenario registry. Scenarios register at package init time
// (internal/experiments registers the paper's figures and tables plus the
// leakmatrix security sweep); cmd/sempe-bench and cmd/sempe-serve resolve
// names through it, so adding an evaluation means registering one Scenario,
// not growing either binary.
var (
	regMu   sync.Mutex
	byName  = map[string]*Scenario{}
	inOrder []*Scenario
)

// Register adds a scenario to the registry. It panics on a missing name,
// missing sweep or renderer, or a duplicate name — all programmer errors
// at init time.
func Register(sc *Scenario) {
	switch {
	case sc == nil || sc.Name == "":
		panic("scenario: Register without a name")
	case sc.Sweep == nil || sc.Sweep.Axes == nil || sc.Sweep.Run == nil:
		panic(fmt.Sprintf("scenario: %q registered without a complete sweep", sc.Name))
	case sc.Render == nil:
		panic(fmt.Sprintf("scenario: %q registered without a renderer", sc.Name))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := byName[sc.Name]; dup {
		panic(fmt.Sprintf("scenario: duplicate registration of %q", sc.Name))
	}
	byName[sc.Name] = sc
	inOrder = append(inOrder, sc)
}

// Lookup resolves a scenario by name.
func Lookup(name string) (*Scenario, bool) {
	regMu.Lock()
	defer regMu.Unlock()
	sc, ok := byName[name]
	return sc, ok
}

// Names returns every registered name, sorted — the list unknown-name
// errors and -list print.
func Names() []string {
	regMu.Lock()
	defer regMu.Unlock()
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Scenarios returns every scenario in registration order — the order
// `-exp all` runs and renders them in.
func Scenarios() []*Scenario {
	regMu.Lock()
	defer regMu.Unlock()
	return append([]*Scenario(nil), inOrder...)
}
