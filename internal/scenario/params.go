package scenario

import (
	"fmt"
	"strings"
)

// ParamFlag collects repeated -param key=value command-line flags into
// the map Spec.Params carries — the one implementation shared by every
// binary that parameterizes scenarios (sempe-bench, sempe-sweep). It
// satisfies flag.Value.
type ParamFlag map[string]string

func (p ParamFlag) String() string { return fmt.Sprintf("%v", map[string]string(p)) }

// Set records one key=value pair.
func (p ParamFlag) Set(s string) error {
	k, v, found := strings.Cut(s, "=")
	if !found || k == "" {
		return fmt.Errorf("want key=value, got %q", s)
	}
	p[k] = v
	return nil
}
