package scenario

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/stats"
)

func TestExpandRowMajor(t *testing.T) {
	axes := []Axis{
		{Name: "a", Values: []string{"x", "y"}},
		{Name: "b", Values: []string{"1", "2", "3"}},
	}
	pts := Expand(axes)
	if len(pts) != 6 {
		t.Fatalf("got %d points, want 6", len(pts))
	}
	want := [][]int{{0, 0}, {0, 1}, {0, 2}, {1, 0}, {1, 1}, {1, 2}}
	for i, p := range pts {
		if p.Index != i || !reflect.DeepEqual(p.Coords, want[i]) {
			t.Errorf("point %d = %+v, want coords %v", i, p, want[i])
		}
	}
	if got := pts[4].Labels(axes); !reflect.DeepEqual(got, []string{"y", "2"}) {
		t.Errorf("labels = %v", got)
	}
}

func TestExpandDegenerate(t *testing.T) {
	// No axes: a single point (a scenario without a sweep grid).
	if pts := Expand(nil); len(pts) != 1 || len(pts[0].Coords) != 0 {
		t.Errorf("no axes: %+v", pts)
	}
	// An empty axis: an empty grid.
	if pts := Expand([]Axis{{Name: "a"}}); pts != nil {
		t.Errorf("empty axis: %+v", pts)
	}
}

// TestGridErrorDeterministic: the reported error is the lowest-indexed one
// regardless of worker interleaving.
func TestGridErrorDeterministic(t *testing.T) {
	failAt := map[int]bool{3: true, 7: true}
	for _, workers := range []int{1, 4} {
		err := Grid(10, workers, func(i int) error {
			if failAt[i] {
				return fmt.Errorf("point %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "point 3 failed" {
			t.Errorf("workers=%d: error = %v, want point 3", workers, err)
		}
	}
}

// testSweep squares the grid index; rows land in deterministic order at
// any worker count.
func testSweep(calls *atomic.Int64) *Sweep {
	return &Sweep{
		ID: "square",
		Axes: func(spec Spec) ([]Axis, error) {
			n := 4
			if spec.Quick {
				n = 2
			}
			vals := make([]string, n)
			for i := range vals {
				vals[i] = fmt.Sprintf("%d", i)
			}
			return []Axis{{Name: "i", Values: vals}}, nil
		},
		Run: func(spec Spec, p Point) (any, error) {
			if calls != nil {
				calls.Add(1)
			}
			return p.Coords[0] * p.Coords[0], nil
		},
	}
}

func testScenario(calls *atomic.Int64) *Scenario {
	return &Scenario{
		Name:        "square",
		Description: "squares the axis",
		Sweep:       testSweep(calls),
		Render: func(spec Spec, rows []any) []*stats.Table {
			tb := &stats.Table{Title: "squares", Header: []string{"i", "i^2"}}
			for i, r := range rows {
				tb.AddRow(fmt.Sprintf("%d", i), stats.Int(uint64(r.(int))))
			}
			return []*stats.Table{tb}
		},
	}
}

func TestRunDeterministicAcrossWorkers(t *testing.T) {
	sc := testScenario(nil)
	serial, err := Run(sc, Spec{Workers: 1}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(sc, Spec{Workers: 4}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Rows, par.Rows) || !reflect.DeepEqual(serial.Tables, par.Tables) {
		t.Errorf("parallel differs from serial:\n%+v\n%+v", serial.Rows, par.Rows)
	}
	if serial.Points != 4 || len(serial.Axes) != 1 {
		t.Errorf("result shape: %+v", serial)
	}
}

func TestRunProgressAndTiming(t *testing.T) {
	sc := testScenario(nil)
	var last, total int
	res, err := Run(sc, Spec{}, RunOptions{Progress: func(d, n int) { last, total = d, n }})
	if err != nil {
		t.Fatal(err)
	}
	if last != 4 || total != 4 {
		t.Errorf("progress ended at %d/%d, want 4/4", last, total)
	}
	if res.Slowest == nil || len(res.Slowest.Labels) != 1 {
		t.Errorf("slowest point missing: %+v", res.Slowest)
	}
}

// TestRowCacheSharesSweep: two scenarios over the same sweep (and repeated
// runs of the same spec) simulate the grid once.
func TestRowCacheSharesSweep(t *testing.T) {
	var calls atomic.Int64
	sc := testScenario(&calls)
	cache := NewRowCache()
	for i := 0; i < 3; i++ {
		res, err := Run(sc, Spec{Workers: 2}, RunOptions{Rows: cache})
		if err != nil {
			t.Fatal(err)
		}
		// The per-point timing from the compute that ran the grid is
		// preserved through the cache.
		if res.Slowest == nil {
			t.Errorf("run %d: Slowest missing with RowCache", i)
		}
	}
	if calls.Load() != 4 {
		t.Errorf("sweep points ran %d times, want 4 (one grid)", calls.Load())
	}
	// A different spec key misses the cache.
	if _, err := Run(sc, Spec{Quick: true}, RunOptions{Rows: cache}); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 6 {
		t.Errorf("quick grid did not run: %d calls", calls.Load())
	}
}

func TestRunWrapsPointErrors(t *testing.T) {
	boom := errors.New("boom")
	sc := testScenario(nil)
	sc.Sweep = &Sweep{
		ID:   "fail",
		Axes: sc.Sweep.Axes,
		Run: func(Spec, Point) (any, error) {
			return nil, boom
		},
	}
	_, err := Run(sc, Spec{}, RunOptions{})
	if err == nil || !errors.Is(err, boom) || !strings.Contains(err.Error(), "square") {
		t.Errorf("err = %v, want wrapped boom naming the scenario", err)
	}
}

func TestSpecKey(t *testing.T) {
	a := Spec{Workers: 1, Params: map[string]string{"b": "2", "a": "1"}}
	b := Spec{Workers: 8, Params: map[string]string{"a": "1", "b": "2"}}
	if a.Key() != b.Key() {
		t.Errorf("keys differ across worker counts / map order: %q vs %q", a.Key(), b.Key())
	}
	c := Spec{Quick: true, Params: map[string]string{"a": "1", "b": "2"}}
	if a.Key() == c.Key() {
		t.Errorf("quick not part of the key: %q", c.Key())
	}
}

func TestRegistry(t *testing.T) {
	sc := testScenario(nil)
	sc.Name = "registry-test-scenario"
	Register(sc)
	got, ok := Lookup(sc.Name)
	if !ok || got != sc {
		t.Fatalf("Lookup(%q) = %v, %t", sc.Name, got, ok)
	}
	found := false
	for _, n := range Names() {
		if n == sc.Name {
			found = true
		}
	}
	if !found {
		t.Errorf("Names() missing %q: %v", sc.Name, Names())
	}
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	Register(sc)
}
