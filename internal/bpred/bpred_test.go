package bpred

import (
	"math/rand"
	"testing"
)

func TestTAGELearnsBias(t *testing.T) {
	tg := NewTAGE(DefaultTAGEConfig())
	pc := uint64(0x4000)
	for i := 0; i < 200; i++ {
		tg.Update(pc, true)
	}
	if !tg.Predict(pc) {
		t.Error("always-taken branch predicted not-taken after training")
	}
	if rate := tg.MispredictRate(); rate > 0.1 {
		t.Errorf("mispredict rate %.2f on a constant branch", rate)
	}
}

func TestTAGELearnsAlternation(t *testing.T) {
	tg := NewTAGE(DefaultTAGEConfig())
	pc := uint64(0x4100)
	// T,N,T,N... requires one history bit: tagged tables must pick it up.
	for i := 0; i < 2000; i++ {
		tg.Update(pc, i%2 == 0)
	}
	// Measure on the last 200.
	before := tg.Mispredict
	for i := 2000; i < 2200; i++ {
		tg.Update(pc, i%2 == 0)
	}
	miss := tg.Mispredict - before
	if miss > 20 {
		t.Errorf("%d/200 mispredicts on an alternating branch; TAGE should learn it", miss)
	}
}

func TestTAGELearnsLoopExit(t *testing.T) {
	tg := NewTAGE(DefaultTAGEConfig())
	pc := uint64(0x4200)
	// A loop of period 9: taken 8 times, then not taken.
	for rounds := 0; rounds < 400; rounds++ {
		for i := 0; i < 8; i++ {
			tg.Update(pc, true)
		}
		tg.Update(pc, false)
	}
	before := tg.Mispredict
	total := uint64(0)
	for rounds := 0; rounds < 40; rounds++ {
		for i := 0; i < 8; i++ {
			tg.Update(pc, true)
			total++
		}
		tg.Update(pc, false)
		total++
	}
	miss := tg.Mispredict - before
	if float64(miss)/float64(total) > 0.15 {
		t.Errorf("%d/%d mispredicts on a periodic loop branch", miss, total)
	}
}

func TestTAGEBeatsBimodalOnHistory(t *testing.T) {
	// A pattern that defeats a bimodal counter (unbiased) but is perfectly
	// history-predictable: outcome = previous outcome of another branch.
	tg := NewTAGE(DefaultTAGEConfig())
	rng := rand.New(rand.NewSource(5))
	var last bool
	// Train.
	for i := 0; i < 6000; i++ {
		lead := rng.Intn(2) == 0
		tg.Update(0x5000, lead)
		tg.Update(0x5100, last)
		last = lead
	}
	before := tg.Mispredict
	count := uint64(0)
	for i := 0; i < 500; i++ {
		lead := rng.Intn(2) == 0
		tg.Update(0x5000, lead)
		count++
		tg.Update(0x5100, last)
		count++
		last = lead
	}
	missRate := float64(tg.Mispredict-before) / float64(count)
	// The correlated branch is fully predictable; the lead branch is a coin
	// flip, so the floor is ~25% overall. Bimodal alone would sit near 50%.
	if missRate > 0.40 {
		t.Errorf("correlated-pattern miss rate %.2f, want < 0.40", missRate)
	}
}

func TestTAGEDigestTracksState(t *testing.T) {
	a := NewTAGE(DefaultTAGEConfig())
	b := NewTAGE(DefaultTAGEConfig())
	if a.Digest() != b.Digest() {
		t.Error("fresh predictors digest differently")
	}
	a.Update(0x100, true)
	if a.Digest() == b.Digest() {
		t.Error("update not reflected in digest")
	}
	b.Update(0x100, true)
	if a.Digest() != b.Digest() {
		t.Error("same update sequence, different digests")
	}
}

func TestITTAGELearnsTargets(t *testing.T) {
	it := NewITTAGE(DefaultITTAGEConfig())
	pc := uint64(0x6000)
	for i := 0; i < 50; i++ {
		it.Update(pc, 0xBEEF)
	}
	if tgt, ok := it.Predict(pc); !ok || tgt != 0xBEEF {
		t.Errorf("Predict = %#x,%v want 0xBEEF", tgt, ok)
	}
	// Target changes: the predictor must eventually follow.
	for i := 0; i < 50; i++ {
		it.Update(pc, 0xCAFE)
	}
	if tgt, _ := it.Predict(pc); tgt != 0xCAFE {
		t.Errorf("after retraining Predict = %#x want 0xCAFE", tgt)
	}
}

func TestITTAGEHistoryCorrelatedTargets(t *testing.T) {
	// An indirect branch alternating between two targets in lockstep with a
	// conditional's history: tagged components should help.
	it := NewITTAGE(DefaultITTAGEConfig())
	for i := 0; i < 4000; i++ {
		it.Update(0x7000, uint64(0x100+(i%2)*0x100))
	}
	before := it.Mispredict
	for i := 4000; i < 4400; i++ {
		it.Update(0x7000, uint64(0x100+(i%2)*0x100))
	}
	miss := it.Mispredict - before
	if miss > 100 {
		t.Errorf("%d/400 target mispredicts on an alternating indirect", miss)
	}
}

func TestRAS(t *testing.T) {
	u := NewUnit()
	u.PushReturn(0x100)
	u.PushReturn(0x200)
	if tgt, ok := u.PopReturn(); !ok || tgt != 0x200 {
		t.Errorf("pop = %#x,%v want 0x200", tgt, ok)
	}
	if tgt, ok := u.PopReturn(); !ok || tgt != 0x100 {
		t.Errorf("pop = %#x,%v want 0x100", tgt, ok)
	}
	if _, ok := u.PopReturn(); ok {
		t.Error("pop on empty RAS succeeded")
	}
	// Overflow keeps the newest entries.
	for i := 0; i < RASDepth+5; i++ {
		u.PushReturn(uint64(i))
	}
	if tgt, ok := u.PopReturn(); !ok || tgt != uint64(RASDepth+4) {
		t.Errorf("post-overflow pop = %d want %d", tgt, RASDepth+4)
	}
}

func TestUnitDigestCoversAllStructures(t *testing.T) {
	a, b := NewUnit(), NewUnit()
	if a.Digest() != b.Digest() {
		t.Error("fresh units differ")
	}
	a.PushReturn(1)
	if a.Digest() == b.Digest() {
		t.Error("RAS state not in digest")
	}
	b.PushReturn(1)
	a.UpdateIndirect(0x10, 0x20)
	if a.Digest() == b.Digest() {
		t.Error("ITTAGE state not in digest")
	}
}

func TestFoldedHistoryWindow(t *testing.T) {
	// Folding must be invertible over a window: pushing N bits and then the
	// exact same N bits again returns the fold to a consistent state
	// whenever the window length divides the sequence length.
	tg := NewTAGE(TAGEConfig{BaseBits: 8, TableBits: 7, TagBits: 8, HistLens: []int{8}})
	seq := []bool{true, false, true, true, false, false, true, false}
	// Fill the window.
	for _, b := range seq {
		tg.pushHistory(b)
	}
	v1 := tg.tables[0].idxFold.value
	// Push the identical window again: the folded image of the last 8 bits
	// is the same.
	for _, b := range seq {
		tg.pushHistory(b)
	}
	v2 := tg.tables[0].idxFold.value
	if v1 != v2 {
		t.Errorf("folded history not window-consistent: %#x vs %#x", v1, v2)
	}
}
