// Package bpred implements the branch predictors of the paper's Table II: a
// TAGE conditional-branch predictor (~31 KB), an ITTAGE indirect-target
// predictor (~6 KB), and a return-address stack. History is updated
// non-speculatively at commit, which keeps the model deterministic and —
// crucially for SeMPE — lets the leak checker digest predictor state after a
// run: sJMP instructions never touch the predictor, so under SeMPE the
// digest is independent of the secret.
package bpred

// TAGE is a TAgged GEometric-history-length predictor: a bimodal base table
// plus tagged components indexed with geometrically increasing history
// lengths. Prediction comes from the longest-history matching component;
// allocation on a misprediction claims an entry in a longer table.
type TAGE struct {
	base      []int8 // bimodal 2-bit counters
	baseMask  uint64
	tables    []tageTable
	hist      history
	useAltCtr int8 // bias toward altpred for newly allocated entries

	// Stats
	Lookups    uint64
	Mispredict uint64
	allocs     uint64
	uTick      uint64

	// Memoized fast path. A prediction is a pure function of (pc, predictor
	// state), and every piece of that state — counters, tags, useful bits,
	// useAltCtr, folded histories — mutates only inside Update. gen counts
	// Updates; Predict records its resolved (provider, pred, altPred) tagged
	// with the current gen, and Update reuses the record instead of re-walking
	// the tagged tables when the generation (and pc) still match. A stale
	// generation falls back to predictInternal, so the fast path can never
	// diverge from the cycle-exact result. FastHits counts reuses.
	gen      uint64
	memo     [tageMemoSize]tageMemoEntry
	FastHits uint64
}

// tageMemoSize is the direct-mapped memo capacity; a small power of two
// suffices because reuse only ever targets the most recent generation.
const tageMemoSize = 64

type tageMemoEntry struct {
	pc       uint64
	gen      uint64
	provider int16
	pred     bool
	altPred  bool
}

type tageTable struct {
	entries  []tageEntry
	mask     uint64
	histLen  int
	tagBits  uint
	idxFold  folded
	tagFold1 folded
	tagFold2 folded
}

type tageEntry struct {
	tag  uint16
	ctr  int8 // 3-bit signed: -4..3; >=0 predicts taken
	use  uint8
	live bool
}

// TAGEConfig sizes the predictor.
type TAGEConfig struct {
	BaseBits  int   // log2 of bimodal entries
	TableBits int   // log2 of entries per tagged table
	TagBits   uint  // tag width
	HistLens  []int // geometric history lengths, shortest first
}

// DefaultTAGEConfig approximates the paper's 31 KB budget: a 16K-entry
// bimodal base (4 KB) and six 2K-entry tagged tables at 2 bytes per entry
// (24 KB), plus folded-history registers.
func DefaultTAGEConfig() TAGEConfig {
	return TAGEConfig{
		BaseBits:  14,
		TableBits: 11,
		TagBits:   11,
		HistLens:  []int{5, 11, 22, 44, 88, 176},
	}
}

// NewTAGE builds a predictor.
func NewTAGE(cfg TAGEConfig) *TAGE {
	t := &TAGE{
		base:     make([]int8, 1<<cfg.BaseBits),
		baseMask: 1<<cfg.BaseBits - 1,
		gen:      1, // so zero-valued memo entries can never match
	}
	maxLen := 0
	for _, hl := range cfg.HistLens {
		if hl > maxLen {
			maxLen = hl
		}
	}
	t.hist.init(maxLen)
	for _, hl := range cfg.HistLens {
		tbl := tageTable{
			entries: make([]tageEntry, 1<<cfg.TableBits),
			mask:    1<<cfg.TableBits - 1,
			histLen: hl,
			tagBits: cfg.TagBits,
		}
		tbl.idxFold.init(hl, uint(cfg.TableBits))
		tbl.tagFold1.init(hl, cfg.TagBits)
		tbl.tagFold2.init(hl, cfg.TagBits-1)
		t.tables = append(t.tables, tbl)
	}
	return t
}

func (tb *tageTable) index(pc uint64) uint64 {
	h := uint64(tb.idxFold.value)
	return (pc ^ (pc >> 5) ^ h) & tb.mask
}

func (tb *tageTable) tag(pc uint64) uint16 {
	t := pc ^ uint64(tb.tagFold1.value) ^ (uint64(tb.tagFold2.value) << 1)
	return uint16(t & (1<<tb.tagBits - 1))
}

// Predict returns the predicted direction for the branch at pc.
func (t *TAGE) Predict(pc uint64) bool {
	m := &t.memo[pc&(tageMemoSize-1)]
	if m.pc == pc && m.gen == t.gen {
		// Re-prediction of a pc already resolved in this generation: tight
		// loops and wrong-path refetches after a flush re-predict the same
		// branch before any commit trains the tables, so the recorded result
		// is still exact. Nothing invalidates the memo on a flush — predictor
		// state only moves at Update — which is what keeps the fast path live
		// across wrong-path execution.
		t.FastHits++
		return m.pred
	}
	taken, provider, altPred := t.predictInternal(pc)
	m.provider, m.pred, m.altPred = int16(provider), taken, altPred
	return taken
}

// predictInternal returns (prediction, provider table index or -1, altpred).
func (t *TAGE) predictInternal(pc uint64) (bool, int, bool) {
	provider := -1
	alt := -1
	for i := len(t.tables) - 1; i >= 0; i-- {
		tb := &t.tables[i]
		e := &tb.entries[tb.index(pc)]
		if e.live && e.tag == tb.tag(pc) {
			if provider < 0 {
				provider = i
			} else {
				alt = i
				break
			}
		}
	}
	basePred := t.base[pc&t.baseMask] >= 0
	altPred := basePred
	if alt >= 0 {
		tb := &t.tables[alt]
		altPred = tb.entries[tb.index(pc)].ctr >= 0
	}
	if provider < 0 {
		return basePred, -1, basePred
	}
	tb := &t.tables[provider]
	e := &tb.entries[tb.index(pc)]
	pred := e.ctr >= 0
	// Newly allocated, weak entries defer to altpred when the use-alt
	// counter says they are unreliable.
	if t.useAltCtr >= 0 && e.use == 0 && (e.ctr == 0 || e.ctr == -1) {
		return altPred, provider, altPred
	}
	return pred, provider, altPred
}

// Update trains the predictor with the committed outcome of the branch at
// pc. It must be called exactly once per committed conditional branch, in
// program order.
func (t *TAGE) Update(pc uint64, taken bool) {
	t.Lookups++
	var (
		pred, altPred bool
		provider      int
	)
	if m := &t.memo[pc&(tageMemoSize-1)]; m.pc == pc && m.gen == t.gen {
		// No state has changed since this branch was predicted: reuse the
		// resolved provider/altpred instead of re-walking the tagged tables.
		pred, provider, altPred = m.pred, int(m.provider), m.altPred
		t.FastHits++
	} else {
		pred, provider, altPred = t.predictInternal(pc)
	}
	if pred != taken {
		t.Mispredict++
	}

	if provider >= 0 {
		tb := &t.tables[provider]
		e := &tb.entries[tb.index(pc)]
		// Useful bit: provider disagreed with altpred and was right/wrong.
		if pred != altPred {
			if pred == taken {
				if e.use < 3 {
					e.use++
				}
			} else if e.use > 0 {
				e.use--
			}
		}
		e.ctr = satUpdate(e.ctr, taken, -4, 3)
		if e.use == 0 && (e.ctr == 0 || e.ctr == -1) {
			if altPred == taken {
				t.useAltCtr = satUpdate(t.useAltCtr, true, -8, 7)
			} else {
				t.useAltCtr = satUpdate(t.useAltCtr, false, -8, 7)
			}
		}
	} else {
		i := pc & t.baseMask
		t.base[i] = satUpdate(t.base[i], taken, -2, 1)
	}

	// Allocate a longer-history entry on a misprediction.
	if pred != taken && provider < len(t.tables)-1 {
		t.allocate(pc, taken, provider)
	}

	// Finally, push the outcome into the global history, and advance the
	// generation: every mutation above happened inside this Update, so
	// memo entries recorded before it are now stale.
	t.pushHistory(taken)
	t.gen++
}

func (t *TAGE) allocate(pc uint64, taken bool, provider int) {
	start := provider + 1
	// Find a table with a dead or non-useful entry; prefer the shortest.
	for i := start; i < len(t.tables); i++ {
		tb := &t.tables[i]
		e := &tb.entries[tb.index(pc)]
		if !e.live || e.use == 0 {
			e.live = true
			e.tag = tb.tag(pc)
			if taken {
				e.ctr = 0
			} else {
				e.ctr = -1
			}
			e.use = 0
			t.allocs++
			return
		}
	}
	// All candidates useful: age them so future allocations succeed.
	for i := start; i < len(t.tables); i++ {
		tb := &t.tables[i]
		e := &tb.entries[tb.index(pc)]
		if e.use > 0 {
			e.use--
		}
	}
	// Periodic graceful reset of useful counters.
	t.uTick++
	if t.uTick%(1<<18) == 0 {
		for i := range t.tables {
			for j := range t.tables[i].entries {
				if t.tables[i].entries[j].use > 0 {
					t.tables[i].entries[j].use--
				}
			}
		}
	}
}

func (t *TAGE) pushHistory(taken bool) {
	bit := uint8(0)
	if taken {
		bit = 1
	}
	old := t.hist.push(bit)
	for i := range t.tables {
		tb := &t.tables[i]
		out := old.at(tb.histLen)
		tb.idxFold.update(bit, out, tb.histLen)
		tb.tagFold1.update(bit, out, tb.histLen)
		tb.tagFold2.update(bit, out, tb.histLen)
	}
}

// Reset restores the predictor to its fresh-construction state without
// reallocating: tables, history, folded registers, statistics, and the
// memoized fast path all return to the values NewTAGE left them with, so a
// reset predictor is indistinguishable (per Digest and per prediction
// stream) from a new one.
func (t *TAGE) Reset() {
	clear(t.base)
	for i := range t.tables {
		tb := &t.tables[i]
		clear(tb.entries)
		tb.idxFold.value = 0
		tb.tagFold1.value = 0
		tb.tagFold2.value = 0
	}
	clear(t.hist.bits)
	t.hist.head = 0
	t.useAltCtr = 0
	t.Lookups, t.Mispredict, t.allocs, t.uTick = 0, 0, 0, 0
	t.gen = 1
	clear(t.memo[:])
	t.FastHits = 0
}

// BaseCounter exposes the bimodal base counter for the branch at pc — the
// observability hook internal/attack's tests use to assert what predictor
// state a victim run left behind. Read-only.
func (t *TAGE) BaseCounter(pc uint64) int8 { return t.base[pc&t.baseMask] }

// MispredictRate returns the fraction of mispredicted lookups.
func (t *TAGE) MispredictRate() float64 {
	if t.Lookups == 0 {
		return 0
	}
	return float64(t.Mispredict) / float64(t.Lookups)
}

// Digest fingerprints all predictor state (tables + history) so the leak
// checker can verify that two runs with different secrets left the predictor
// in the identical state under SeMPE.
func (t *TAGE) Digest() uint64 {
	h := newFNV()
	for _, c := range t.base {
		h.mix(uint64(uint8(c)))
	}
	for i := range t.tables {
		for _, e := range t.tables[i].entries {
			v := uint64(e.tag)<<16 | uint64(uint8(e.ctr))<<8 | uint64(e.use)<<1
			if e.live {
				v |= 1
			}
			h.mix(v)
		}
	}
	for _, b := range t.hist.bits {
		h.mix(uint64(b))
	}
	return h.sum
}

// history is a ring buffer of branch-outcome bits with per-table access to
// the bit falling out of each geometric window.
type history struct {
	bits []uint8
	head int // next write position
	lens []int
}

func (h *history) init(maxLen int) {
	h.bits = make([]uint8, maxLen+1)
}

// push inserts a new bit and returns, per registered length (in the order
// tables were created), the bit that left each window. To keep the
// interface simple the caller passes window lengths at update time; push
// returns a getter closure instead of a slice.
func (h *history) push(bit uint8) *historyView {
	view := &historyView{h: h, prevHead: h.head}
	h.bits[h.head] = bit
	h.head = (h.head + 1) % len(h.bits)
	return view
}

type historyView struct {
	h        *history
	prevHead int
}

// at returns the outcome bit that fell out of a window of length l when the
// newest bit was pushed: the bit l positions before the pushed one.
func (v historyView) at(l int) uint8 {
	idx := v.prevHead - l
	n := len(v.h.bits)
	idx = ((idx % n) + n) % n
	return v.h.bits[idx]
}

// folded maintains a circular-shift folded image of the most recent histLen
// history bits compressed to width bits, updated incrementally.
type folded struct {
	value uint32
	width uint
	// outPoint is where the outgoing bit lands after histLen rotations.
	outPoint uint
}

func (f *folded) init(histLen int, width uint) {
	f.width = width
	f.outPoint = uint(histLen) % width
}

func (f *folded) update(in, out uint8, histLen int) {
	v := f.value
	// Rotate left by one and insert the new bit.
	v = (v << 1) | uint32(in)
	v ^= v >> f.width // fold the bit rotated out of the window back in
	v &= 1<<f.width - 1
	// Remove the bit that exits the history window.
	v ^= uint32(out) << f.outPoint
	f.value = v
}

func satUpdate(c int8, up bool, lo, hi int8) int8 {
	if up {
		if c < hi {
			return c + 1
		}
		return c
	}
	if c > lo {
		return c - 1
	}
	return c
}

type fnv struct{ sum uint64 }

func newFNV() *fnv { return &fnv{sum: 1469598103934665603} }

func (f *fnv) mix(v uint64) {
	for i := 0; i < 8; i++ {
		f.sum ^= (v >> (8 * i)) & 0xFF
		f.sum *= 1099511628211
	}
}
