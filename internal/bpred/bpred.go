package bpred

// Unit bundles the front-end prediction structures the core consults:
// TAGE for conditional directions, ITTAGE for indirect targets, and a
// return-address stack. Secure branches (sJMP) must never call into this
// unit — the SeMPE rule that eliminates the branch-predictor side channel.
type Unit struct {
	TAGE   *TAGE
	ITTAGE *ITTAGE
	ras    []uint64
	rasTop int // number of live entries

	// Lookups counts consultations of the prediction structures. Lookup
	// counts accumulate at fetch time and therefore include wrong-path
	// activity (a mispredicted path keeps predicting until the flush);
	// Updates accumulate at commit and count only architectural training.
	// The spec-window observability layer (internal/pipeline/spec.go)
	// surfaces the difference. Pure accounting: never part of Digest.
	Lookups LookupStats
}

// LookupStats is the predictor-consultation accounting on a Unit.
type LookupStats struct {
	Branch   uint64 // conditional-direction predictions (TAGE)
	Indirect uint64 // indirect-target predictions (ITTAGE)
	RASPush  uint64 // return-address pushes at fetch
	RASPop   uint64 // return-address pops at fetch
	Updates  uint64 // commit-time trainings (direction + indirect)
}

// RASDepth is the return-address-stack capacity.
const RASDepth = 32

// NewUnit builds a predictor unit with the default Table II budgets.
func NewUnit() *Unit {
	return &Unit{
		TAGE:   NewTAGE(DefaultTAGEConfig()),
		ITTAGE: NewITTAGE(DefaultITTAGEConfig()),
		ras:    make([]uint64, RASDepth),
	}
}

// PredictBranch returns the predicted direction for a conditional branch.
func (u *Unit) PredictBranch(pc uint64) bool {
	u.Lookups.Branch++
	return u.TAGE.Predict(pc)
}

// UpdateBranch trains the direction predictor at commit.
func (u *Unit) UpdateBranch(pc uint64, taken bool) {
	u.Lookups.Updates++
	u.TAGE.Update(pc, taken)
}

// PredictIndirect returns a predicted target for a JALR at pc.
func (u *Unit) PredictIndirect(pc uint64) (uint64, bool) {
	u.Lookups.Indirect++
	return u.ITTAGE.Predict(pc)
}

// UpdateIndirect trains the target predictor at commit.
func (u *Unit) UpdateIndirect(pc, target uint64) {
	u.Lookups.Updates++
	u.ITTAGE.Update(pc, target)
}

// PushReturn records a return address at fetch time (JAL/JALR that links).
func (u *Unit) PushReturn(addr uint64) {
	u.Lookups.RASPush++
	if u.rasTop < len(u.ras) {
		u.ras[u.rasTop] = addr
		u.rasTop++
		return
	}
	// Overflow: overwrite the oldest by shifting (rare; depth 32).
	copy(u.ras, u.ras[1:])
	u.ras[len(u.ras)-1] = addr
}

// PopReturn predicts the target of a return (JALR through the link
// register), or reports no prediction when the stack is empty.
func (u *Unit) PopReturn() (uint64, bool) {
	u.Lookups.RASPop++
	if u.rasTop == 0 {
		return 0, false
	}
	u.rasTop--
	return u.ras[u.rasTop], true
}

// Reset restores the whole unit to fresh-construction state without
// reallocating. The RAS contents above rasTop are never read (Push
// overwrites, Pop reads below the top, Digest mixes only live entries), so
// resetting the top pointer suffices.
func (u *Unit) Reset() {
	u.TAGE.Reset()
	u.ITTAGE.Reset()
	u.rasTop = 0
	u.Lookups = LookupStats{}
}

// Digest fingerprints every predictor structure. Under SeMPE the digest
// after a run must not depend on any secret.
func (u *Unit) Digest() uint64 {
	h := newFNV()
	h.mix(u.TAGE.Digest())
	h.mix(u.ITTAGE.Digest())
	h.mix(uint64(u.rasTop))
	for i := 0; i < u.rasTop; i++ {
		h.mix(u.ras[i])
	}
	return h.sum
}
