package bpred

// mix64 is a splitmix64-style finalizer with full avalanche.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// ITTAGE predicts indirect-branch targets with the same tagged
// geometric-history structure as TAGE, storing full targets instead of
// direction counters (~6 KB per Table II). In this ISA only JALR needs it;
// returns are handled by the RAS first and fall back here.
type ITTAGE struct {
	base   map[uint64]ittEntry // base table keyed by pc hash
	mask   uint64
	tables []ittTable
	hist   history

	Lookups    uint64
	Mispredict uint64
}

type ittTable struct {
	entries []ittEntry
	mask    uint64
	histLen int
	tagBits uint
	idxFold folded
	tagFold folded
}

type ittEntry struct {
	tag    uint16
	target uint64
	conf   int8
	live   bool
}

// ITTAGEConfig sizes the target predictor.
type ITTAGEConfig struct {
	TableBits int
	TagBits   uint
	HistLens  []int
}

// DefaultITTAGEConfig approximates the 6 KB budget of Table II: four
// 128-entry tables of ~10-byte entries.
func DefaultITTAGEConfig() ITTAGEConfig {
	return ITTAGEConfig{TableBits: 7, TagBits: 9, HistLens: []int{4, 16, 64, 128}}
}

// NewITTAGE builds an indirect-target predictor.
func NewITTAGE(cfg ITTAGEConfig) *ITTAGE {
	it := &ITTAGE{base: make(map[uint64]ittEntry), mask: 255}
	maxLen := 0
	for _, hl := range cfg.HistLens {
		if hl > maxLen {
			maxLen = hl
		}
	}
	it.hist.init(maxLen)
	for _, hl := range cfg.HistLens {
		tb := ittTable{
			entries: make([]ittEntry, 1<<cfg.TableBits),
			mask:    1<<cfg.TableBits - 1,
			histLen: hl,
			tagBits: cfg.TagBits,
		}
		tb.idxFold.init(hl, uint(cfg.TableBits))
		tb.tagFold.init(hl, cfg.TagBits)
		it.tables = append(it.tables, tb)
	}
	return it
}

func (tb *ittTable) index(pc uint64) uint64 {
	return (pc ^ (pc >> 7) ^ uint64(tb.idxFold.value)) & tb.mask
}

func (tb *ittTable) tag(pc uint64) uint16 {
	return uint16((pc ^ uint64(tb.tagFold.value)) & (1<<tb.tagBits - 1))
}

// Predict returns the predicted target of the indirect branch at pc and
// whether any component had a prediction.
func (it *ITTAGE) Predict(pc uint64) (uint64, bool) {
	for i := len(it.tables) - 1; i >= 0; i-- {
		tb := &it.tables[i]
		e := &tb.entries[tb.index(pc)]
		if e.live && e.tag == tb.tag(pc) && e.conf >= 0 {
			return e.target, true
		}
	}
	if e, ok := it.base[pc&it.mask]; ok {
		return e.target, true
	}
	return 0, false
}

// Update trains the predictor with the committed target, in program order.
func (it *ITTAGE) Update(pc, target uint64) {
	it.Lookups++
	pred, ok := it.Predict(pc)
	correct := ok && pred == target
	if !correct {
		it.Mispredict++
	}

	// Train the matching component, or allocate one on a miss.
	provider := -1
	for i := len(it.tables) - 1; i >= 0; i-- {
		tb := &it.tables[i]
		e := &tb.entries[tb.index(pc)]
		if e.live && e.tag == tb.tag(pc) {
			provider = i
			if e.target == target {
				e.conf = satUpdate(e.conf, true, -2, 1)
			} else if e.conf <= -2 || !ok {
				e.target = target
				e.conf = 0
			} else {
				e.conf = satUpdate(e.conf, false, -2, 1)
			}
			break
		}
	}
	if !correct {
		start := provider + 1
		for i := start; i < len(it.tables); i++ {
			tb := &it.tables[i]
			e := &tb.entries[tb.index(pc)]
			if !e.live || e.conf < 0 {
				*e = ittEntry{tag: tb.tag(pc), target: target, conf: 0, live: true}
				break
			}
		}
	}
	it.base[pc&it.mask] = ittEntry{target: target, live: true}

	// Push a target-derived history bit. A full avalanche mix is needed
	// here: targets that differ in one bit (or a pure multiplicative hash
	// of them) can agree on any fixed output bit, which would make
	// alternating-target patterns inseparable by the tagged components.
	bit := uint8(mix64(target)) & 1
	old := it.hist.push(bit)
	for i := range it.tables {
		tb := &it.tables[i]
		out := old.at(tb.histLen)
		tb.idxFold.update(bit, out, tb.histLen)
		tb.tagFold.update(bit, out, tb.histLen)
	}
}

// Reset restores the predictor to its fresh-construction state without
// reallocating tables (the base map keeps its buckets across clear, so a
// reset-heavy trial loop stays allocation-free at steady state).
func (it *ITTAGE) Reset() {
	clear(it.base)
	for i := range it.tables {
		tb := &it.tables[i]
		clear(tb.entries)
		tb.idxFold.value = 0
		tb.tagFold.value = 0
	}
	clear(it.hist.bits)
	it.hist.head = 0
	it.Lookups, it.Mispredict = 0, 0
}

// Digest fingerprints all table and history state.
func (it *ITTAGE) Digest() uint64 {
	h := newFNV()
	// The base map is keyed by a bounded hash; iterate keys in order.
	for k := uint64(0); k <= it.mask; k++ {
		if e, ok := it.base[k]; ok {
			h.mix(k)
			h.mix(e.target)
		}
	}
	for i := range it.tables {
		for _, e := range it.tables[i].entries {
			if e.live {
				h.mix(uint64(e.tag))
				h.mix(e.target)
				h.mix(uint64(uint8(e.conf)))
			} else {
				h.mix(0)
			}
		}
	}
	for _, b := range it.hist.bits {
		h.mix(uint64(b))
	}
	return h.sum
}
