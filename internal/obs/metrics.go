// Package obs is the repository's observability layer: a dependency-free,
// goroutine-safe metrics registry rendering Prometheus text exposition
// format, and a structured run-event journal of ordered JSON events with
// monotonic timestamps and span begin/end pairs.
//
// The layer is designed to be architecturally inert: nothing in it touches
// simulator state, metric reads happen at scrape time (func metrics read
// existing atomic counters), and a nil *Journal is a valid no-op sink — so
// instrumented and uninstrumented runs produce byte-identical results and
// the steady-state pipeline loop stays allocation-free. The experiments
// package pins both properties with a differential test.
//
// Metric families follow Prometheus conventions: a name, a help string, a
// type (counter, gauge, histogram), and an optional fixed label set. The
// process-wide Default registry carries simulator-global counters (the
// attack throughput engine registers its template/core/superblock counters
// there); servers create their own registry for per-server state and render
// both on GET /metrics.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// defaultRegistry carries process-wide metric families (simulator counters
// registered from package inits). Servers render it after their own.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// kind is a metric family's type, in exposition-format spelling.
type kind string

const (
	kindCounter   kind = "counter"
	kindGauge     kind = "gauge"
	kindHistogram kind = "histogram"
)

// Registry is a set of metric families. All methods are safe for
// concurrent use; registration is idempotent (re-registering a name
// returns the existing family) and panics on a type or label-arity
// mismatch, which is a programming error.
type Registry struct {
	mu         sync.Mutex
	families   []*family // registration order, which is render order
	byName     map[string]*family
	collectors []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

// family is one named metric family with zero or more labeled children.
type family struct {
	name    string
	help    string
	kind    kind
	labels  []string
	buckets []float64 // histograms only

	mu       sync.Mutex
	children map[string]*child
	order    []string // child keys, sorted at render

	fn func() float64 // func metrics: read at scrape, no children
}

// child is one label combination's value storage.
type child struct {
	labelValues []string

	count atomic.Uint64 // counter value (integer-valued)
	bits  atomic.Uint64 // gauge value as float64 bits

	hmu    sync.Mutex // histograms: buckets + sum under one lock
	bucket []uint64
	sum    float64
	total  uint64
}

func (r *Registry) register(name, help string, k kind, labels []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != k || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s with %d labels (was %s with %d)",
				name, k, len(labels), f.kind, len(f.labels)))
		}
		return f
	}
	f := &family{name: name, help: help, kind: k, labels: labels, buckets: buckets,
		children: map[string]*child{}}
	r.byName[name] = f
	r.families = append(r.families, f)
	return f
}

// OnScrape registers a collector invoked at the start of every WriteText
// and Snapshot — the hook for gauges computed from live state (semaphore
// occupancy, runs by status) without per-event bookkeeping.
func (r *Registry) OnScrape(fn func()) {
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

func (f *family) child(values ...string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q got %d label values, want %d", f.name, len(values), len(f.labels)))
	}
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.children[key]
	if !ok {
		c = &child{labelValues: append([]string(nil), values...)}
		if f.kind == kindHistogram {
			c.bucket = make([]uint64, len(f.buckets))
		}
		f.children[key] = c
		f.order = append(f.order, key)
		sort.Strings(f.order)
	}
	return c
}

// ---- counters ----

// Counter is a monotonically increasing integer-valued metric.
type Counter struct{ c *child }

// Inc adds one.
func (c Counter) Inc() { c.c.count.Add(1) }

// Add adds n.
func (c Counter) Add(n uint64) { c.c.count.Add(n) }

// Value returns the current count.
func (c Counter) Value() uint64 { return c.c.count.Load() }

// Counter registers (or fetches) an unlabeled counter.
func (r *Registry) Counter(name, help string) Counter {
	return Counter{r.register(name, help, kindCounter, nil, nil).child()}
}

// CounterVec is a counter family with a fixed label set.
type CounterVec struct{ f *family }

// CounterVec registers (or fetches) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) CounterVec {
	return CounterVec{r.register(name, help, kindCounter, labels, nil)}
}

// With returns the child counter for the given label values.
func (v CounterVec) With(values ...string) Counter { return Counter{v.f.child(values...)} }

// CounterFunc registers a counter whose value is read at scrape time —
// the zero-hot-path-cost bridge from existing atomic counters (template
// memo hits, superblock builds, core resets) to the exposition.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, help, kindCounter, nil, nil).fn = fn
}

// ---- gauges ----

// Gauge is a metric that can go up and down.
type Gauge struct{ c *child }

// Set stores v.
func (g Gauge) Set(v float64) { g.c.bits.Store(math.Float64bits(v)) }

// Add adds delta (CAS loop; contention is scrape-rate, not hot-path).
func (g Gauge) Add(delta float64) {
	for {
		old := g.c.bits.Load()
		v := math.Float64frombits(old) + delta
		if g.c.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value.
func (g Gauge) Value() float64 { return math.Float64frombits(g.c.bits.Load()) }

// Gauge registers (or fetches) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) Gauge {
	return Gauge{r.register(name, help, kindGauge, nil, nil).child()}
}

// GaugeVec is a gauge family with a fixed label set.
type GaugeVec struct{ f *family }

// GaugeVec registers (or fetches) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) GaugeVec {
	return GaugeVec{r.register(name, help, kindGauge, labels, nil)}
}

// With returns the child gauge for the given label values.
func (v GaugeVec) With(values ...string) Gauge { return Gauge{v.f.child(values...)} }

// GaugeFunc registers a gauge computed at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, kindGauge, nil, nil).fn = fn
}

// ---- histograms ----

// DefBuckets are the default latency buckets, in seconds: µs-scale cache
// hits through multi-minute sweeps.
var DefBuckets = []float64{0.0005, 0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10, 60}

// Histogram accumulates observations into fixed cumulative buckets.
type Histogram struct {
	f *family
	c *child
}

// Observe records one observation.
func (h Histogram) Observe(v float64) {
	h.c.hmu.Lock()
	for i, ub := range h.f.buckets {
		if v <= ub {
			h.c.bucket[i]++
		}
	}
	h.c.total++
	h.c.sum += v
	h.c.hmu.Unlock()
}

// Histogram registers (or fetches) an unlabeled histogram with the given
// upper bounds (nil means DefBuckets). Bounds must be sorted ascending.
func (r *Registry) Histogram(name, help string, buckets []float64) Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	f := r.register(name, help, kindHistogram, nil, buckets)
	return Histogram{f, f.child()}
}

// HistogramVec is a histogram family with a fixed label set.
type HistogramVec struct{ f *family }

// HistogramVec registers (or fetches) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	return HistogramVec{r.register(name, help, kindHistogram, labels, buckets)}
}

// With returns the child histogram for the given label values.
func (v HistogramVec) With(values ...string) Histogram {
	return Histogram{v.f, v.f.child(values...)}
}

// ---- exposition ----

// WriteText renders the registry in Prometheus text exposition format
// (version 0.0.4): families in registration order, children in sorted
// label order, histograms as cumulative _bucket/_sum/_count series.
// OnScrape collectors run first.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	collectors := append([]func(){}, r.collectors...)
	families := append([]*family{}, r.families...)
	r.mu.Unlock()
	for _, fn := range collectors {
		fn()
	}
	var b strings.Builder
	for _, f := range families {
		f.writeText(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *family) writeText(b *strings.Builder) {
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)
	if f.fn != nil {
		fmt.Fprintf(b, "%s %s\n", f.name, formatValue(f.fn()))
		return
	}
	f.mu.Lock()
	order := append([]string{}, f.order...)
	children := make([]*child, len(order))
	for i, key := range order {
		children[i] = f.children[key]
	}
	f.mu.Unlock()
	for _, c := range children {
		switch f.kind {
		case kindHistogram:
			c.hmu.Lock()
			bucket := append([]uint64{}, c.bucket...)
			sum, total := c.sum, c.total
			c.hmu.Unlock()
			for i, ub := range f.buckets {
				fmt.Fprintf(b, "%s_bucket%s %d\n", f.name,
					labelString(f.labels, c.labelValues, "le", formatValue(ub)), bucket[i])
			}
			fmt.Fprintf(b, "%s_bucket%s %d\n", f.name,
				labelString(f.labels, c.labelValues, "le", "+Inf"), total)
			fmt.Fprintf(b, "%s_sum%s %s\n", f.name, labelString(f.labels, c.labelValues, "", ""), formatValue(sum))
			fmt.Fprintf(b, "%s_count%s %d\n", f.name, labelString(f.labels, c.labelValues, "", ""), total)
		case kindGauge:
			fmt.Fprintf(b, "%s%s %s\n", f.name, labelString(f.labels, c.labelValues, "", ""),
				formatValue(math.Float64frombits(c.bits.Load())))
		default:
			fmt.Fprintf(b, "%s%s %d\n", f.name, labelString(f.labels, c.labelValues, "", ""), c.count.Load())
		}
	}
}

// Snapshot flattens the registry into series-name -> value: counters and
// gauges directly, histograms as their _count and _sum series. OnScrape
// collectors run first. The map is the programmatic twin of WriteText —
// one snapshot API for CLIs and scripts.
func (r *Registry) Snapshot() map[string]float64 {
	r.mu.Lock()
	collectors := append([]func(){}, r.collectors...)
	families := append([]*family{}, r.families...)
	r.mu.Unlock()
	for _, fn := range collectors {
		fn()
	}
	out := map[string]float64{}
	for _, f := range families {
		if f.fn != nil {
			out[f.name] = f.fn()
			continue
		}
		f.mu.Lock()
		for _, key := range f.order {
			c := f.children[key]
			series := f.name + labelString(f.labels, c.labelValues, "", "")
			switch f.kind {
			case kindHistogram:
				c.hmu.Lock()
				out[f.name+"_count"+labelString(f.labels, c.labelValues, "", "")] = float64(c.total)
				out[f.name+"_sum"+labelString(f.labels, c.labelValues, "", "")] = c.sum
				c.hmu.Unlock()
			case kindGauge:
				out[series] = math.Float64frombits(c.bits.Load())
			default:
				out[series] = float64(c.count.Load())
			}
		}
		f.mu.Unlock()
	}
	return out
}

// labelString renders {k="v",...}, merging an extra label (histogram "le")
// when given. No labels renders as the empty string.
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", n, escapeLabel(values[i]))
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extraName, extraValue)
	}
	b.WriteByte('}')
	return b.String()
}

// formatValue renders a float the way Prometheus expects: integers
// without a decimal point, everything else via %g.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	// %q in labelString already escapes quotes and backslashes; strip
	// newlines, which %q would render as \n anyway.
	return s
}
