package obs

import (
	"sync"
	"time"
)

// Fields is a journal event's structured payload.
type Fields map[string]any

// Event is one journal entry. Events are strictly ordered by Seq; AtMicros
// is the monotonic time since the journal was created, so event order and
// timestamps agree even across goroutines. Span events come in begin/end
// pairs sharing a Span id; the end event carries the span's duration.
type Event struct {
	Seq      int    `json:"seq"`
	AtMicros int64  `json:"t_us"`
	Name     string `json:"name"`
	Phase    string `json:"phase,omitempty"` // "begin" | "end" for spans, empty for point events
	Span     int    `json:"span,omitempty"`  // pairs begin/end; 0 for point events
	DurUS    int64  `json:"dur_us,omitempty"`
	Fields   Fields `json:"fields,omitempty"`
}

// Journal is an append-only, goroutine-safe run-event log. A nil *Journal
// is a valid no-op sink: every method short-circuits, so instrumented code
// paths need no enabled-checks and stay inert when no one is listening.
type Journal struct {
	mu     sync.Mutex
	start  time.Time
	events []Event
	spans  int
}

// NewJournal returns an empty journal anchored at the current monotonic
// time.
func NewJournal() *Journal {
	return &Journal{start: time.Now()}
}

// Event appends a point event.
func (j *Journal) Event(name string, fields Fields) {
	if j == nil {
		return
	}
	j.append(Event{Name: name, Fields: fields})
}

// Span is an in-flight begin/end pair. The zero Span (from a nil journal)
// is valid; End on it is a no-op.
type Span struct {
	j    *Journal
	id   int
	name string
	t0   time.Time
}

// Begin appends a span-begin event and returns the span to End.
func (j *Journal) Begin(name string, fields Fields) Span {
	if j == nil {
		return Span{}
	}
	j.mu.Lock()
	j.spans++
	id := j.spans
	j.appendLocked(Event{Name: name, Phase: "begin", Span: id, Fields: fields})
	j.mu.Unlock()
	return Span{j: j, id: id, name: name, t0: time.Now()}
}

// End appends the span-end event with the span's wall-clock duration.
func (s Span) End(fields Fields) {
	if s.j == nil {
		return
	}
	s.j.append(Event{Name: s.name, Phase: "end", Span: s.id,
		DurUS: time.Since(s.t0).Microseconds(), Fields: fields})
}

func (j *Journal) append(e Event) {
	j.mu.Lock()
	j.appendLocked(e)
	j.mu.Unlock()
}

// appendLocked stamps and stores one event; the caller holds j.mu.
func (j *Journal) appendLocked(e Event) {
	e.Seq = len(j.events)
	e.AtMicros = time.Since(j.start).Microseconds()
	j.events = append(j.events, e)
}

// Events returns a copy of the journal so far, in append order.
func (j *Journal) Events() []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]Event(nil), j.events...)
}

// Len returns the number of events appended so far.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.events)
}
