package obs

import (
	"encoding/json"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCounterExposition pins the exposition format for counters, plain and
// labeled: HELP/TYPE headers, registration-order families, sorted children.
func TestCounterExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "operations")
	c.Inc()
	c.Add(4)
	v := r.CounterVec("test_requests_total", "requests", "route", "code")
	v.With("GET /runs", "200").Add(3)
	v.With("GET /runs", "404").Inc()
	v.With("GET /b", "200").Inc()

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_ops_total operations
# TYPE test_ops_total counter
test_ops_total 5
# HELP test_requests_total requests
# TYPE test_requests_total counter
test_requests_total{route="GET /b",code="200"} 1
test_requests_total{route="GET /runs",code="200"} 3
test_requests_total{route="GET /runs",code="404"} 1
`
	if b.String() != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

// TestGaugeAndFuncMetrics: gauges set/add, func metrics read at scrape.
func TestGaugeAndFuncMetrics(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test_occupancy", "slots in use")
	g.Set(2)
	g.Add(-0.5)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
	live := 7.0
	r.GaugeFunc("test_live", "read at scrape", func() float64 { return live })
	r.CounterFunc("test_cum_total", "cumulative", func() float64 { return 42 })

	var b strings.Builder
	r.WriteText(&b)
	for _, line := range []string{"test_occupancy 1.5", "test_live 7", "test_cum_total 42"} {
		if !strings.Contains(b.String(), line+"\n") {
			t.Errorf("exposition missing %q:\n%s", line, b.String())
		}
	}
	live = 8
	b.Reset()
	r.WriteText(&b)
	if !strings.Contains(b.String(), "test_live 8\n") {
		t.Errorf("func metric not re-read at scrape:\n%s", b.String())
	}
}

// TestHistogramExposition: cumulative buckets, +Inf, _sum and _count, and
// label merging with le.
func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramVec("test_seconds", "latency", []float64{0.1, 1}, "route")
	ch := h.With("GET /x")
	for _, v := range []float64{0.05, 0.5, 0.5, 5} {
		ch.Observe(v)
	}
	var b strings.Builder
	r.WriteText(&b)
	want := `# HELP test_seconds latency
# TYPE test_seconds histogram
test_seconds_bucket{route="GET /x",le="0.1"} 1
test_seconds_bucket{route="GET /x",le="1"} 3
test_seconds_bucket{route="GET /x",le="+Inf"} 4
test_seconds_sum{route="GET /x"} 6.05
test_seconds_count{route="GET /x"} 4
`
	if b.String() != want {
		t.Errorf("histogram exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

// expositionLine matches every legal sample line; the serve tests reuse the
// same shape for scrape validity.
var expositionLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (-?[0-9.e+\-]+|\+Inf|NaN)$`)

// TestExpositionValidity: every non-comment line of a mixed registry
// parses as a sample, and every family has HELP and TYPE headers.
func TestExpositionValidity(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "a").Inc()
	r.GaugeVec("b", "b", "x").With(`quo"te`).Set(1)
	r.Histogram("c_seconds", "c", nil).Observe(0.2)
	var b strings.Builder
	r.WriteText(&b)
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	helps, types := 0, 0
	for _, line := range lines {
		if strings.HasPrefix(line, "# HELP") {
			helps++
			continue
		}
		if strings.HasPrefix(line, "# TYPE") {
			types++
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Errorf("invalid sample line %q", line)
		}
	}
	if helps != 3 || types != 3 {
		t.Errorf("got %d HELP / %d TYPE headers, want 3/3", helps, types)
	}
}

// TestRegistrationIdempotent: same name and shape returns the same family;
// a type mismatch panics.
func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x")
	b := r.Counter("x_total", "x")
	a.Inc()
	b.Inc()
	if a.Value() != 2 {
		t.Fatalf("re-registered counter not shared: %d", a.Value())
	}
	defer func() {
		if recover() == nil {
			t.Error("re-registering as a different type did not panic")
		}
	}()
	r.Gauge("x_total", "x")
}

// TestSnapshot: the flattened map agrees with the typed accessors and runs
// OnScrape collectors.
func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("s_total", "s").Add(3)
	g := r.Gauge("s_gauge", "g")
	r.OnScrape(func() { g.Set(9) })
	h := r.Histogram("s_seconds", "h", []float64{1})
	h.Observe(0.5)
	h.Observe(2)
	snap := r.Snapshot()
	for series, want := range map[string]float64{
		"s_total": 3, "s_gauge": 9, "s_seconds_count": 2, "s_seconds_sum": 2.5,
	} {
		if snap[series] != want {
			t.Errorf("snapshot[%q] = %v, want %v (full: %v)", series, snap[series], want, snap)
		}
	}
}

// TestConcurrentUse hammers counters, a histogram, and scrapes from many
// goroutines; run under -race this is the registry's thread-safety gate.
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.CounterVec("cc_total", "c", "w")
	h := r.Histogram("ch_seconds", "h", nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lbl := string(rune('a' + i%3))
			for n := 0; n < 500; n++ {
				c.With(lbl).Inc()
				h.Observe(float64(n) / 1000)
				if n%100 == 0 {
					var b strings.Builder
					r.WriteText(&b)
				}
			}
		}(i)
	}
	wg.Wait()
	snap := r.Snapshot()
	if total := snap[`cc_total{w="a"}`] + snap[`cc_total{w="b"}`] + snap[`cc_total{w="c"}`]; total != 4000 {
		t.Errorf("lost increments: total = %v, want 4000", total)
	}
	if snap["ch_seconds_count"] != 4000 {
		t.Errorf("histogram count = %v, want 4000", snap["ch_seconds_count"])
	}
}

// TestJournalOrderingAndSpans: events are strictly sequenced, timestamps
// are monotone, and span begin/end pairs share an id with a duration on
// the end event.
func TestJournalOrderingAndSpans(t *testing.T) {
	j := NewJournal()
	j.Event("start", Fields{"k": "v"})
	sp := j.Begin("work", Fields{"shard": 1})
	time.Sleep(time.Millisecond)
	j.Event("mid", nil)
	sp.End(Fields{"ok": true})
	ev := j.Events()
	if len(ev) != 4 {
		t.Fatalf("got %d events, want 4", len(ev))
	}
	for i, e := range ev {
		if e.Seq != i {
			t.Errorf("event %d has seq %d", i, e.Seq)
		}
		if i > 0 && e.AtMicros < ev[i-1].AtMicros {
			t.Errorf("timestamps not monotone at %d: %d < %d", i, e.AtMicros, ev[i-1].AtMicros)
		}
	}
	begin, end := ev[1], ev[3]
	if begin.Phase != "begin" || end.Phase != "end" || begin.Span != end.Span || begin.Span == 0 {
		t.Errorf("span pair broken: begin=%+v end=%+v", begin, end)
	}
	if end.DurUS < 1000 {
		t.Errorf("span duration %dus, want >= 1ms", end.DurUS)
	}
	if begin.Fields["shard"] != 1 {
		t.Errorf("begin fields lost: %+v", begin.Fields)
	}
}

// TestJournalNilSafe: a nil journal accepts the full API as no-ops — the
// inertness contract instrumented code relies on.
func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	j.Event("x", nil)
	sp := j.Begin("y", Fields{"a": 1})
	sp.End(nil)
	if j.Events() != nil || j.Len() != 0 {
		t.Error("nil journal returned events")
	}
}

// TestJournalJSONRoundTrip: the wire schema (seq/t_us/name/phase/span/
// dur_us/fields) survives a JSON round trip.
func TestJournalJSONRoundTrip(t *testing.T) {
	j := NewJournal()
	sp := j.Begin("dispatch", Fields{"worker": "http://w1", "points": 4})
	sp.End(Fields{"ok": true})
	raw, err := json.Marshal(j.Events())
	if err != nil {
		t.Fatal(err)
	}
	var back []Event
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0].Name != "dispatch" || back[0].Fields["worker"] != "http://w1" {
		t.Errorf("round trip mangled events: %s", raw)
	}
	if back[1].Span != back[0].Span {
		t.Errorf("span ids diverged in JSON: %s", raw)
	}
}

// TestJournalConcurrentAppend: parallel appends never lose or duplicate a
// sequence number (the -race gate for the journal).
func TestJournalConcurrentAppend(t *testing.T) {
	j := NewJournal()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 200; n++ {
				sp := j.Begin("e", nil)
				sp.End(nil)
			}
		}()
	}
	wg.Wait()
	ev := j.Events()
	if len(ev) != 3200 {
		t.Fatalf("got %d events, want 3200", len(ev))
	}
	for i, e := range ev {
		if e.Seq != i {
			t.Fatalf("seq %d at position %d", e.Seq, i)
		}
	}
}
