package compile

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/lang"
)

// shadowPlan records, for one secret If, the arrays that must be privatized
// with ShadowMemory: arrays written somewhere inside the region that are
// observable afterwards (live-out or read outside the region). Registers
// never need privatization under SeMPE — the ArchRS hardware restores them
// — which is the mechanism's key advantage over software schemes.
type shadowPlan struct {
	entries []shadowEntry
}

type shadowEntry struct {
	orig   string // original array name (pre-remap)
	shT    string // taken-path shadow
	shNT   string // not-taken-path shadow
	length int
}

// planShadows allocates shadow arrays for every secret If in the program.
func (c *compiler) planShadows() error {
	c.shadowInfo = make(map[*lang.If]*shadowPlan)
	var walk func(ss []lang.Stmt) error
	walk = func(ss []lang.Stmt) error {
		for _, s := range ss {
			switch s := s.(type) {
			case *lang.If:
				if s.Secret {
					if err := c.planShadowsFor(s); err != nil {
						return err
					}
				}
				if err := walk(s.Then); err != nil {
					return err
				}
				if err := walk(s.Else); err != nil {
					return err
				}
			case *lang.While:
				if err := walk(s.Body); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return walk(c.prog.Body)
}

func (c *compiler) planShadowsFor(node *lang.If) error {
	written := map[string]bool{}
	collectWrites(node.Then, written)
	collectWrites(node.Else, written)
	if len(written) == 0 {
		return nil
	}
	plan := &shadowPlan{}
	for _, a := range c.prog.Arrays {
		if !written[a.Name] {
			continue
		}
		if !a.LiveOut && !readOutside(c.prog.Body, node, a.Name) {
			continue // scratch data: both paths may dirty it freely
		}
		shT := fmt.Sprintf("%s__shT%d", a.Name, c.shadowID)
		shNT := fmt.Sprintf("%s__shNT%d", a.Name, c.shadowID)
		c.shadowID++
		c.arrAddr[shT] = c.b.Data(shT, 8*a.Len)
		c.arrAddr[shNT] = c.b.Data(shNT, 8*a.Len)
		plan.entries = append(plan.entries, shadowEntry{
			orig: a.Name, shT: shT, shNT: shNT, length: a.Len,
		})
	}
	if len(plan.entries) > 0 {
		c.shadowInfo[node] = plan
	}
	return nil
}

func collectWrites(ss []lang.Stmt, out map[string]bool) {
	for _, s := range ss {
		switch s := s.(type) {
		case *lang.Store:
			out[s.Arr] = true
		case *lang.If:
			collectWrites(s.Then, out)
			collectWrites(s.Else, out)
		case *lang.While:
			collectWrites(s.Body, out)
		}
	}
}

// readOutside reports whether array arr is read anywhere in the program
// outside the subtree rooted at node.
func readOutside(body []lang.Stmt, node *lang.If, arr string) bool {
	var inExpr func(e lang.Expr) bool
	inExpr = func(e lang.Expr) bool {
		switch e := e.(type) {
		case lang.Index:
			return e.Arr == arr || inExpr(e.Idx)
		case lang.Bin:
			return inExpr(e.A) || inExpr(e.B)
		}
		return false
	}
	var walk func(ss []lang.Stmt) bool
	walk = func(ss []lang.Stmt) bool {
		for _, s := range ss {
			switch s := s.(type) {
			case *lang.Assign:
				if inExpr(s.E) {
					return true
				}
			case *lang.Store:
				if inExpr(s.Idx) || inExpr(s.Val) {
					return true
				}
			case *lang.If:
				if s == node {
					continue // skip the subtree under analysis
				}
				if inExpr(s.Cond) || walk(s.Then) || walk(s.Else) {
					return true
				}
			case *lang.While:
				if inExpr(s.Cond) || walk(s.Body) {
					return true
				}
			}
		}
		return false
	}
	return walk(body)
}

// sempeIf lowers a secret conditional into a secure region:
//
//	     <evaluate cond>
//	     [spill cond; copy arr -> shadows]     ; only when merging
//	     sBNE cond, rz, L_T                    ; sJMP
//	     <else body (NT path), arrays remapped to NT shadows>
//	     JMP  L_join
//	L_T: <then body (T path), arrays remapped to T shadows>
//	L_join:
//	     eosJMP
//	     [reload cond; CMOV-merge shadows]
//
// On a SeMPE core both paths execute and commit; on a legacy core the
// prefix is ignored and exactly one path runs — same result, no protection.
func (c *compiler) sempeIf(s *lang.If, remap map[string]string) error {
	if c.secDepth >= MaxSecretNesting {
		return fmt.Errorf("secret nesting exceeds %d (SPM snapshot slots)", MaxSecretNesting)
	}
	plan := c.shadowInfo[s]

	cond, err := c.expr(s.Cond, remap)
	if err != nil {
		return err
	}

	condSlot := int64(c.condSlotBase) + 8*int64(c.secDepth)
	if plan != nil {
		// Spill the condition: the copy-in loops need every temporary, and
		// the merge after eosJMP needs the condition again. The slot write
		// happens outside the secure region, so it is not path state.
		t := c.mustTemp()
		c.emit(isa.Inst{Op: isa.OpLi, Rd: t, Imm: condSlot})
		c.emit(isa.Inst{Op: isa.OpSt, Rd: cond.reg, Ra: t})
		c.release(t)
		c.freeValue(cond)
		for _, e := range plan.entries {
			src := c.remapArr(e.orig, remap)
			c.emitCopyIn(src, e.shT, e.shNT, e.length)
		}
		// Reload the condition for the sJMP itself.
		t2 := c.mustTemp()
		c.emit(isa.Inst{Op: isa.OpLi, Rd: t2, Imm: condSlot})
		c.emit(isa.Inst{Op: isa.OpLd, Rd: t2, Ra: t2})
		cond = value{t2, true}
	}

	thenL := c.b.FreshLabel("sec_t")
	joinL := c.b.FreshLabel("sec_join")
	c.emitRef(isa.Inst{Op: isa.OpBne, Ra: cond.reg, Rb: isa.RZ, Secure: true}, thenL)
	c.freeValue(cond)

	c.secDepth++
	// Not-taken path first: the else body.
	ntRemap := composeRemap(remap, plan, false)
	if err := c.stmts(s.Else, ntRemap); err != nil {
		return err
	}
	c.emitRef(isa.Inst{Op: isa.OpJmp}, joinL)
	c.b.Label(thenL)
	tRemap := composeRemap(remap, plan, true)
	if err := c.stmts(s.Then, tRemap); err != nil {
		return err
	}
	c.b.Label(joinL)
	c.emit(isa.Inst{Op: isa.OpNop, Secure: true}) // eosJMP
	c.secDepth--

	if plan != nil {
		// Merge: for every privatized array, select the true path's values
		// with CMOV. The loop's work is identical for both outcomes.
		c.emit(isa.Inst{Op: isa.OpLi, Rd: scratchRegA, Imm: condSlot})
		c.emit(isa.Inst{Op: isa.OpLd, Rd: scratchRegA, Ra: scratchRegA})
		for _, e := range plan.entries {
			dst := c.remapArr(e.orig, remap)
			c.emitMerge(dst, e.shT, e.shNT, e.length)
		}
	}
	return c.b.Err()
}

// composeRemap layers a shadow plan's path-specific substitutions on top of
// the enclosing remapping.
func composeRemap(remap map[string]string, plan *shadowPlan, takenPath bool) map[string]string {
	if plan == nil {
		return remap
	}
	out := make(map[string]string, len(remap)+len(plan.entries))
	for k, v := range remap {
		out[k] = v
	}
	for _, e := range plan.entries {
		if takenPath {
			out[e.orig] = e.shT
		} else {
			out[e.orig] = e.shNT
		}
	}
	return out
}

// emitCopyIn copies src into both shadow arrays with one loop:
// ShadowMemory contents start as a copy of the memory before the region.
func (c *compiler) emitCopyIn(src, shT, shNT string, length int) {
	ts := c.mustTemp()
	tt := c.mustTemp()
	tn := c.mustTemp()
	tc := c.mustTemp()
	tv := c.mustTemp()
	c.emit(isa.Inst{Op: isa.OpLi, Rd: ts, Imm: int64(c.arrAddr[src])})
	c.emit(isa.Inst{Op: isa.OpLi, Rd: tt, Imm: int64(c.arrAddr[shT])})
	c.emit(isa.Inst{Op: isa.OpLi, Rd: tn, Imm: int64(c.arrAddr[shNT])})
	c.emit(isa.Inst{Op: isa.OpLi, Rd: tc, Imm: int64(length)})
	loopL := c.b.FreshLabel("copyin")
	c.b.Label(loopL)
	c.emit(isa.Inst{Op: isa.OpLd, Rd: tv, Ra: ts})
	c.emit(isa.Inst{Op: isa.OpSt, Rd: tv, Ra: tt})
	c.emit(isa.Inst{Op: isa.OpSt, Rd: tv, Ra: tn})
	c.emit(isa.Inst{Op: isa.OpAddi, Rd: ts, Ra: ts, Imm: 8})
	c.emit(isa.Inst{Op: isa.OpAddi, Rd: tt, Ra: tt, Imm: 8})
	c.emit(isa.Inst{Op: isa.OpAddi, Rd: tn, Ra: tn, Imm: 8})
	c.emit(isa.Inst{Op: isa.OpAddi, Rd: tc, Ra: tc, Imm: -1})
	c.emitRef(isa.Inst{Op: isa.OpBne, Ra: tc, Rb: isa.RZ}, loopL)
	c.release(ts)
	c.release(tt)
	c.release(tn)
	c.release(tc)
	c.release(tv)
}

// emitMerge writes the true path's values back into dst. scratchRegA holds
// the spilled condition. Both shadow arrays are read and a CMOV selects,
// so cache and timing behavior are outcome-independent — the paper's
// "overwrite with itself" discipline.
func (c *compiler) emitMerge(dst, shT, shNT string, length int) {
	tt := c.mustTemp()
	tn := c.mustTemp()
	td := c.mustTemp()
	tc := c.mustTemp()
	tv := c.mustTemp()
	c.emit(isa.Inst{Op: isa.OpLi, Rd: tt, Imm: int64(c.arrAddr[shT])})
	c.emit(isa.Inst{Op: isa.OpLi, Rd: tn, Imm: int64(c.arrAddr[shNT])})
	c.emit(isa.Inst{Op: isa.OpLi, Rd: td, Imm: int64(c.arrAddr[dst])})
	c.emit(isa.Inst{Op: isa.OpLi, Rd: tc, Imm: int64(length)})
	loopL := c.b.FreshLabel("merge")
	c.b.Label(loopL)
	c.emit(isa.Inst{Op: isa.OpLd, Rd: tv, Ra: tt})          // T value
	c.emit(isa.Inst{Op: isa.OpLd, Rd: scratchRegB, Ra: tn}) // NT value
	c.emit(isa.Inst{Op: isa.OpCmovz, Rd: tv, Ra: scratchRegA, Rb: scratchRegB})
	c.emit(isa.Inst{Op: isa.OpSt, Rd: tv, Ra: td})
	c.emit(isa.Inst{Op: isa.OpAddi, Rd: tt, Ra: tt, Imm: 8})
	c.emit(isa.Inst{Op: isa.OpAddi, Rd: tn, Ra: tn, Imm: 8})
	c.emit(isa.Inst{Op: isa.OpAddi, Rd: td, Ra: td, Imm: 8})
	c.emit(isa.Inst{Op: isa.OpAddi, Rd: tc, Ra: tc, Imm: -1})
	c.emitRef(isa.Inst{Op: isa.OpBne, Ra: tc, Rb: isa.RZ}, loopL)
	c.release(tt)
	c.release(tn)
	c.release(td)
	c.release(tc)
	c.release(tv)
}
