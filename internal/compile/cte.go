package compile

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/lang"
)

// This file implements the FaCT-style Constant-Time Expression backend.
// A secret condition becomes a full-width mask; both paths execute as
// straight-line code; every assignment and store becomes a masked select.
// Each select must combine the masks of *all* enclosing secret conditions
// (with the else-side masks complemented), so per-statement cost grows with
// nesting depth — the super-linear blowup the paper measures in Fig. 10.

// cteIf lowers a secret conditional to masked straight-line code.
func (c *compiler) cteIf(s *lang.If, remap map[string]string) error {
	if len(c.maskStack) >= maxMaskDepth {
		return fmt.Errorf("CTE: secret nesting exceeds %d (mask registers)", maxMaskDepth)
	}
	cond, err := c.expr(s.Cond, remap)
	if err != nil {
		return err
	}
	m := isa.Reg(firstMaskReg + len(c.maskStack))
	// Normalize to 0/1, then widen: m = -(cond != 0).
	c.emit(isa.Inst{Op: isa.OpSltu, Rd: m, Ra: isa.RZ, Rb: cond.reg})
	c.emit(isa.Inst{Op: isa.OpSub, Rd: m, Ra: isa.RZ, Rb: m})
	c.freeValue(cond)

	c.maskStack = append(c.maskStack, maskLevel{reg: m})
	if err := c.stmts(s.Then, remap); err != nil {
		return err
	}
	c.maskStack[len(c.maskStack)-1].negated = true
	if err := c.stmts(s.Else, remap); err != nil {
		return err
	}
	c.maskStack = c.maskStack[:len(c.maskStack)-1]
	return c.b.Err()
}

// effMask materializes the conjunction of every enclosing mask into
// scratchRegA. The chain is recomputed per statement, reproducing the
// expression blowup of hand-written CTE (paper Fig. 2: each statement's
// select embeds the logical combination of all condition binaries).
func (c *compiler) effMask() {
	for i, lvl := range c.maskStack {
		src := lvl.reg
		if lvl.negated {
			c.emit(isa.Inst{Op: isa.OpXori, Rd: scratchRegB, Ra: lvl.reg, Imm: -1})
			src = scratchRegB
		}
		if i == 0 {
			c.emit(isa.Inst{Op: isa.OpAdd, Rd: scratchRegA, Ra: src, Rb: isa.RZ})
		} else {
			c.emit(isa.Inst{Op: isa.OpAnd, Rd: scratchRegA, Ra: scratchRegA, Rb: src})
		}
	}
}

// cteAssign lowers "x = e" under the active mask stack:
//
//	x = (e & E) | (x & ^E)   where E = m1 & m2 & ... & md
func (c *compiler) cteAssign(s *lang.Assign, remap map[string]string) error {
	v, err := c.expr(s.E, remap)
	if err != nil {
		return err
	}
	vo := c.own(v)
	c.effMask()
	x := c.varReg[s.Name]
	c.emit(isa.Inst{Op: isa.OpAnd, Rd: vo.reg, Ra: vo.reg, Rb: scratchRegA})
	c.emit(isa.Inst{Op: isa.OpXori, Rd: scratchRegA, Ra: scratchRegA, Imm: -1})
	c.emit(isa.Inst{Op: isa.OpAnd, Rd: scratchRegA, Ra: x, Rb: scratchRegA})
	c.emit(isa.Inst{Op: isa.OpOr, Rd: x, Ra: vo.reg, Rb: scratchRegA})
	c.freeValue(vo)
	return nil
}

// cteStore lowers "arr[i] = v" under the active mask stack. The element is
// always loaded and stored regardless of the masks, keeping the memory
// access pattern constant:
//
//	arr[i] = (v & E) | (arr[i] & ^E)
func (c *compiler) cteStore(s *lang.Store, remap map[string]string) error {
	arr := c.remapArr(s.Arr, remap)
	addr, err := c.elemAddr(arr, s.Idx, remap)
	if err != nil {
		return err
	}
	v, err := c.expr(s.Val, remap)
	if err != nil {
		c.freeValue(addr)
		return err
	}
	vo := c.own(v)
	c.effMask()
	old := c.mustTemp()
	c.emit(isa.Inst{Op: isa.OpLd, Rd: old, Ra: addr.reg})
	c.emit(isa.Inst{Op: isa.OpAnd, Rd: vo.reg, Ra: vo.reg, Rb: scratchRegA})
	c.emit(isa.Inst{Op: isa.OpXori, Rd: scratchRegA, Ra: scratchRegA, Imm: -1})
	c.emit(isa.Inst{Op: isa.OpAnd, Rd: old, Ra: old, Rb: scratchRegA})
	c.emit(isa.Inst{Op: isa.OpOr, Rd: vo.reg, Ra: vo.reg, Rb: old})
	c.emit(isa.Inst{Op: isa.OpSt, Rd: vo.reg, Ra: addr.reg})
	c.release(old)
	c.freeValue(vo)
	c.freeValue(addr)
	return nil
}
