package compile

import (
	"testing"

	"repro/internal/emu"
	"repro/internal/lang"
	"repro/internal/pipeline"
)

// thenChain builds if(b0){if(b1){...{x=42}}} over the bits of s — the shape
// the paper's §IV-E collapse optimization targets. iters > 1 wraps the chain
// in a repetition loop so steady-state costs dominate cold-start effects.
func thenChain(depth int, secret int64, iters int) *lang.Program {
	body := []lang.Stmt{lang.Set("x", lang.N(42))}
	for i := depth - 1; i >= 0; i-- {
		cond := lang.B(lang.And, lang.B(lang.Shr, lang.V("s"), lang.N(int64(i))), lang.N(1))
		body = []lang.Stmt{lang.SecretIf(cond, body, nil)}
	}
	if iters > 1 {
		body = append(body, lang.Set("i", lang.B(lang.Add, lang.V("i"), lang.N(1))))
		body = []lang.Stmt{lang.Loop(lang.B(lang.Lt, lang.V("i"), lang.N(int64(iters))), body)}
	}
	return &lang.Program{
		Vars: []*lang.VarDecl{
			{Name: "s", Init: secret, Secret: true},
			{Name: "x", Init: 7},
			{Name: "i", Init: 0},
		},
		Body: body,
	}
}

// TestCollapsePreservesSemanticsEndToEnd compiles the collapsed and
// uncollapsed programs with every backend and checks agreement for secrets
// that hit all combinations of the chain.
func TestCollapsePreservesSemanticsEndToEnd(t *testing.T) {
	for _, secret := range []int64{0, 1, 0b111, 0b101, 0b011} {
		orig := thenChain(3, secret, 1)
		collapsed := thenChain(3, secret, 1)
		if n := lang.CollapseNested(collapsed); n != 2 {
			t.Fatalf("collapses = %d, want 2", n)
		}
		want := runOutput(t, MustCompile(orig, Plain), false)["x"]
		for _, mode := range []Mode{Plain, SeMPE, CTE} {
			secure := mode == SeMPE
			got := runOutput(t, MustCompile(collapsed, mode), secure)["x"]
			if got != want {
				t.Errorf("secret=%#b mode=%v: x=%d want %d", secret, mode, got, want)
			}
		}
	}
}

// TestCollapseReducesHardwareNesting verifies the optimization's purpose:
// fewer sJMPs, shallower jbTable/SPM usage, and fewer dual-path cycles.
func TestCollapseReducesHardwareNesting(t *testing.T) {
	run := func(p *lang.Program) *pipeline.Core {
		out := MustCompile(p, SeMPE)
		core := pipeline.New(pipeline.SecureConfig(), out.Prog)
		if err := core.Run(); err != nil {
			t.Fatal(err)
		}
		return core
	}
	orig := run(thenChain(5, 0b10101, 50))
	coll := thenChain(5, 0b10101, 50)
	lang.CollapseNested(coll)
	opt := run(coll)

	if opt.Stats.SJmps >= orig.Stats.SJmps {
		t.Errorf("sJMPs not reduced: %d -> %d", orig.Stats.SJmps, opt.Stats.SJmps)
	}
	if opt.Stats.MaxNestDepth >= orig.Stats.MaxNestDepth {
		t.Errorf("nesting not reduced: %d -> %d", orig.Stats.MaxNestDepth, opt.Stats.MaxNestDepth)
	}
	if opt.Stats.Cycles >= orig.Stats.Cycles {
		t.Errorf("cycles not reduced: %d -> %d", orig.Stats.Cycles, opt.Stats.Cycles)
	}
}

// TestCollapseEnablesDeepPrograms: a 40-deep then-chain exceeds the SPM
// slots uncollapsed, but compiles and runs after collapsing.
func TestCollapseEnablesDeepPrograms(t *testing.T) {
	deep := thenChain(40, 0, 1)
	if _, err := Compile(deep, SeMPE); err == nil {
		t.Fatal("40-deep chain compiled without collapse; expected nesting error")
	}
	if n := lang.CollapseNested(deep); n != 39 {
		t.Fatalf("collapses = %d, want 39", n)
	}
	out, err := Compile(deep, SeMPE)
	if err != nil {
		t.Fatal(err)
	}
	m := emu.New(emu.SeMPE, out.Prog)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	addr, _ := out.ResultAddr("x")
	if got := m.Mem.Read64(addr); got != 7 {
		t.Errorf("x = %d, want 7 (secret 0 takes no branch)", got)
	}
}
