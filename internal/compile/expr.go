package compile

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/lang"
)

// expr lowers an expression, returning the register holding its value.
func (c *compiler) expr(e lang.Expr, remap map[string]string) (value, error) {
	switch e := e.(type) {
	case lang.IntLit:
		t := c.mustTemp()
		if e.V < -1<<31 || e.V > 1<<31-1 {
			return value{}, fmt.Errorf("literal %d exceeds 32-bit immediate", e.V)
		}
		c.emit(isa.Inst{Op: isa.OpLi, Rd: t, Imm: e.V})
		if e.Slot != "" {
			c.b.MarkImmSlot(e.Slot)
		}
		return value{t, true}, nil
	case lang.VarRef:
		r, ok := c.varReg[e.Name]
		if !ok {
			return value{}, fmt.Errorf("undefined variable %q", e.Name)
		}
		return value{r, false}, nil
	case lang.Index:
		return c.loadElem(c.remapArr(e.Arr, remap), e.Idx, remap)
	case lang.Bin:
		return c.binExpr(e, remap)
	case lang.Select:
		return c.selectExpr(e, remap)
	default:
		return value{}, fmt.Errorf("unknown expression %T", e)
	}
}

// selectExpr lowers the constant-time select: result = cond != 0 ? a : b,
// computed branch-free with full-width masks:
//
//	m = -(cond != 0); result = (a & m) | (b & ^m)
func (c *compiler) selectExpr(e lang.Select, remap map[string]string) (value, error) {
	cond, err := c.expr(e.Cond, remap)
	if err != nil {
		return value{}, err
	}
	m := c.mustTemp()
	c.emit(isa.Inst{Op: isa.OpSltu, Rd: m, Ra: isa.RZ, Rb: cond.reg})
	c.emit(isa.Inst{Op: isa.OpSub, Rd: m, Ra: isa.RZ, Rb: m})
	c.freeValue(cond)
	a, err := c.expr(e.A, remap)
	if err != nil {
		c.release(m)
		return value{}, err
	}
	ao := c.own(a)
	c.emit(isa.Inst{Op: isa.OpAnd, Rd: ao.reg, Ra: ao.reg, Rb: m})
	b, err := c.expr(e.B, remap)
	if err != nil {
		c.release(m)
		c.freeValue(ao)
		return value{}, err
	}
	c.emit(isa.Inst{Op: isa.OpXori, Rd: m, Ra: m, Imm: -1})
	bo := c.own(b)
	c.emit(isa.Inst{Op: isa.OpAnd, Rd: bo.reg, Ra: bo.reg, Rb: m})
	c.emit(isa.Inst{Op: isa.OpOr, Rd: ao.reg, Ra: ao.reg, Rb: bo.reg})
	c.release(m)
	c.freeValue(bo)
	return ao, nil
}

// immOp returns the immediate-form opcode for a binary operator, if any.
func immOp(op lang.BinOp) (isa.Op, bool) {
	switch op {
	case lang.Add:
		return isa.OpAddi, true
	case lang.Mul:
		return isa.OpMuli, true
	case lang.And:
		return isa.OpAndi, true
	case lang.Or:
		return isa.OpOri, true
	case lang.Xor:
		return isa.OpXori, true
	case lang.Shl:
		return isa.OpShli, true
	case lang.Shr:
		return isa.OpShri, true
	case lang.Lt:
		return isa.OpSlti, true
	case lang.Eq:
		return isa.OpSeqi, true
	}
	return 0, false
}

// regOp returns the register-form opcode plus post-processing needs.
func regOp(op lang.BinOp) (isa.Op, bool /*invert result*/, bool /*swap operands*/, error) {
	switch op {
	case lang.Add:
		return isa.OpAdd, false, false, nil
	case lang.Sub:
		return isa.OpSub, false, false, nil
	case lang.Mul:
		return isa.OpMul, false, false, nil
	case lang.Div:
		return isa.OpDiv, false, false, nil
	case lang.Rem:
		return isa.OpRem, false, false, nil
	case lang.And:
		return isa.OpAnd, false, false, nil
	case lang.Or:
		return isa.OpOr, false, false, nil
	case lang.Xor:
		return isa.OpXor, false, false, nil
	case lang.Shl:
		return isa.OpShl, false, false, nil
	case lang.Shr:
		return isa.OpShr, false, false, nil
	case lang.Lt:
		return isa.OpSlt, false, false, nil
	case lang.Ltu:
		return isa.OpSltu, false, false, nil
	case lang.Eq:
		return isa.OpSeq, false, false, nil
	case lang.Ne:
		return isa.OpSeq, true, false, nil
	case lang.Ge:
		return isa.OpSlt, true, false, nil
	case lang.Gt:
		return isa.OpSlt, false, true, nil
	}
	return 0, false, false, fmt.Errorf("unknown operator %d", op)
}

func (c *compiler) binExpr(e lang.Bin, remap map[string]string) (value, error) {
	// Immediate fast path: op with a literal right operand. Slotted
	// literals are excluded — a template patches the imm32 of a plain LI,
	// so they must never fold into a fused immediate form.
	if lit, ok := e.B.(lang.IntLit); ok && lit.Slot == "" && fitsImm(lit.V) {
		if op, ok := immOp(e.Op); ok {
			a, err := c.expr(e.A, remap)
			if err != nil {
				return value{}, err
			}
			t := c.mustTemp()
			c.emit(isa.Inst{Op: op, Rd: t, Ra: a.reg, Imm: lit.V})
			c.freeValue(a)
			return value{t, true}, nil
		}
		if e.Op == lang.Sub && fitsImm(-lit.V) {
			a, err := c.expr(e.A, remap)
			if err != nil {
				return value{}, err
			}
			t := c.mustTemp()
			c.emit(isa.Inst{Op: isa.OpAddi, Rd: t, Ra: a.reg, Imm: -lit.V})
			c.freeValue(a)
			return value{t, true}, nil
		}
	}
	op, invert, swap, err := regOp(e.Op)
	if err != nil {
		return value{}, err
	}
	// Evaluate the deeper operand first (Sethi-Ullman order): expressions
	// are pure, so evaluation order is free, and doing the heavy side first
	// means at most one temporary is held across the heavy recursion. This
	// keeps register pressure constant even for right-deep trees.
	var a, b value
	if exprDepth(e.B) > exprDepth(e.A) {
		b, err = c.expr(e.B, remap)
		if err != nil {
			return value{}, err
		}
		a, err = c.expr(e.A, remap)
		if err != nil {
			c.freeValue(b)
			return value{}, err
		}
	} else {
		a, err = c.expr(e.A, remap)
		if err != nil {
			return value{}, err
		}
		b, err = c.expr(e.B, remap)
		if err != nil {
			c.freeValue(a)
			return value{}, err
		}
	}
	ra, rb := a.reg, b.reg
	if swap {
		ra, rb = rb, ra
	}
	t := c.mustTemp()
	c.emit(isa.Inst{Op: op, Rd: t, Ra: ra, Rb: rb})
	if invert {
		c.emit(isa.Inst{Op: isa.OpXori, Rd: t, Ra: t, Imm: 1})
	}
	c.freeValue(a)
	c.freeValue(b)
	return value{t, true}, nil
}

func fitsImm(v int64) bool { return v >= -1<<31 && v <= 1<<31-1 }

// exprDepth measures tree depth for evaluation-order selection (capped; the
// exact value only matters for choosing which side to evaluate first).
func exprDepth(e lang.Expr) int {
	switch e := e.(type) {
	case lang.Bin:
		da, db := exprDepth(e.A), exprDepth(e.B)
		if db > da {
			da = db
		}
		return da + 1
	case lang.Select:
		d := exprDepth(e.Cond)
		if x := exprDepth(e.A); x > d {
			d = x
		}
		if x := exprDepth(e.B); x > d {
			d = x
		}
		return d + 1
	case lang.Index:
		return exprDepth(e.Idx) + 1
	default:
		return 0
	}
}

// elemAddr computes the address of arr[idx] into an owned register.
func (c *compiler) elemAddr(arr string, idx lang.Expr, remap map[string]string) (value, error) {
	base, ok := c.arrAddr[arr]
	if !ok {
		return value{}, fmt.Errorf("undefined array %q", arr)
	}
	// Constant indices fold base+8*idx into one LI — unless the literal is
	// slotted, whose LI must carry the raw value for template patching.
	if lit, isLit := idx.(lang.IntLit); isLit && lit.Slot == "" {
		t := c.mustTemp()
		c.emit(isa.Inst{Op: isa.OpLi, Rd: t, Imm: int64(base) + 8*lit.V})
		return value{t, true}, nil
	}
	iv, err := c.expr(idx, remap)
	if err != nil {
		return value{}, err
	}
	t := c.mustTemp()
	c.emit(isa.Inst{Op: isa.OpShli, Rd: t, Ra: iv.reg, Imm: 3})
	c.freeValue(iv)
	tb := c.mustTemp()
	c.emit(isa.Inst{Op: isa.OpLi, Rd: tb, Imm: int64(base)})
	c.emit(isa.Inst{Op: isa.OpAdd, Rd: t, Ra: t, Rb: tb})
	c.release(tb)
	return value{t, true}, nil
}

// loadElem loads arr[idx] into an owned register.
func (c *compiler) loadElem(arr string, idx lang.Expr, remap map[string]string) (value, error) {
	addr, err := c.elemAddr(arr, idx, remap)
	if err != nil {
		return value{}, err
	}
	c.emit(isa.Inst{Op: isa.OpLd, Rd: addr.reg, Ra: addr.reg})
	return addr, nil
}

// storeElem stores val into arr[idx].
func (c *compiler) storeElem(arr string, idx lang.Expr, val value, remap map[string]string) error {
	addr, err := c.elemAddr(arr, idx, remap)
	if err != nil {
		return err
	}
	c.emit(isa.Inst{Op: isa.OpSt, Rd: val.reg, Ra: addr.reg})
	c.freeValue(addr)
	return nil
}
