// Package compile lowers lang programs to the simulated ISA through three
// interchangeable backends, mirroring the paper's methodology:
//
//   - Plain: ordinary conditional branches. This is the unprotected baseline
//     and the exact program CTE and SeMPE are compared against.
//   - SeMPE: secret ifs become sJMP/eosJMP secure regions. Registers need no
//     software privatization (the ArchRS hardware restores them); arrays that
//     outlive a secure region are privatized via ShadowMemory copies and
//     merged after the region with constant-time CMOV selects.
//   - CTE: secret ifs become FaCT-style straight-line code: conditions turn
//     into full-width masks and every assignment in either path executes with
//     a masked select. Each statement pays for the conjunction of all
//     enclosing masks, which is why CTE cost grows super-linearly with
//     nesting depth (paper Fig. 2 and Fig. 10).
//
// One lang program therefore produces three binaries whose measured cycle
// counts regenerate the paper's comparisons.
package compile

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/lang"
)

// Mode selects the lowering backend.
type Mode int

// Backends.
const (
	Plain Mode = iota
	SeMPE
	CTE
)

func (m Mode) String() string {
	switch m {
	case Plain:
		return "plain"
	case SeMPE:
		return "sempe"
	case CTE:
		return "cte"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Register plan. Temporaries serve expression evaluation; scratch registers
// serve CTE selects and shadow merges; mask registers hold the CTE mask
// stack; everything from firstVarReg up to the mode's limit holds program
// scalars.
const (
	firstTempReg = 3
	numTempRegs  = 5 // r3..r7
	firstVarReg  = 8
	lastVarReg   = 35 // r8..r35: up to 28 scalars
	firstMaskReg = 36 // r36..r45: CTE mask stack, depth 10
	maxMaskDepth = 10
	scratchRegA  = 46
	scratchRegB  = 47
)

// MaxSecretNesting bounds SeMPE secret-region nesting, matching the SPM's
// 30 snapshot slots.
const MaxSecretNesting = 30

// Output is a compiled program plus the metadata harnesses need.
type Output struct {
	Prog    *isa.Program
	Mode    Mode
	VarRegs map[string]isa.Reg
	// ResultBase is the address of the result block: one 64-bit slot per
	// scalar variable, in declaration order, stored just before halt.
	ResultBase uint64
	VarOrder   []string
	ArrayAddrs map[string]uint64
	// ImmSlots maps each named literal slot (lang.NS) to the code byte
	// offsets (relative to Prog.CodeBase) of the load-immediate
	// instructions carrying it; nil when the program declares none.
	ImmSlots map[string][]int
}

// ResultAddr returns the address of a variable's result slot.
func (o *Output) ResultAddr(name string) (uint64, error) {
	for i, n := range o.VarOrder {
		if n == name {
			return o.ResultBase + uint64(8*i), nil
		}
	}
	return 0, fmt.Errorf("compile: no result slot for %q", name)
}

// Compile lowers p with the selected backend.
func Compile(p *lang.Program, mode Mode) (*Output, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	c := &compiler{
		mode:    mode,
		b:       asm.NewBuilder(),
		prog:    p,
		varReg:  make(map[string]isa.Reg),
		arrays:  make(map[string]*lang.ArrayDecl),
		arrAddr: make(map[string]uint64),
	}
	out, err := c.compile()
	if err != nil {
		return nil, fmt.Errorf("compile(%v): %w", mode, err)
	}
	return out, nil
}

// MustCompile panics on error; for harness code with known-good programs.
func MustCompile(p *lang.Program, mode Mode) *Output {
	out, err := Compile(p, mode)
	if err != nil {
		panic(err)
	}
	return out
}

type compiler struct {
	mode    Mode
	b       *asm.Builder
	prog    *lang.Program
	varReg  map[string]isa.Reg
	arrays  map[string]*lang.ArrayDecl
	arrAddr map[string]uint64

	tempInUse [numTempRegs]bool

	// SeMPE state.
	secDepth     int
	condSlotBase uint64
	shadowID     int
	shadowInfo   map[*lang.If]*shadowPlan

	// CTE state: the mask stack. Each level is the register holding the
	// full-width mask of that secret condition plus whether the current
	// path is the else side (mask complemented).
	maskStack []maskLevel
}

type maskLevel struct {
	reg     isa.Reg
	negated bool
}

func (c *compiler) compile() (*Output, error) {
	// Declarations.
	for _, a := range c.prog.Arrays {
		addr := c.b.DataWords(a.Name, paddedInit(a))
		c.arrays[a.Name] = a
		c.arrAddr[a.Name] = addr
	}
	if len(c.prog.Vars) > lastVarReg-firstVarReg+1 {
		return nil, fmt.Errorf("too many scalars (%d, max %d)",
			len(c.prog.Vars), lastVarReg-firstVarReg+1)
	}
	varOrder := make([]string, 0, len(c.prog.Vars))
	for i, v := range c.prog.Vars {
		c.varReg[v.Name] = isa.Reg(firstVarReg + i)
		varOrder = append(varOrder, v.Name)
	}
	resultBase := c.b.Data("__result", 8*len(c.prog.Vars)+8)
	c.condSlotBase = c.b.Data("__sempe_cond", 8*MaxSecretNesting)

	// Shadow planning must happen before code generation so shadow arrays
	// exist as data segments.
	if c.mode == SeMPE {
		if err := c.planShadows(); err != nil {
			return nil, err
		}
	}

	// Prologue: initialize scalars.
	c.b.Label("main")
	for _, v := range c.prog.Vars {
		c.emit(isa.Inst{Op: isa.OpLi, Rd: c.varReg[v.Name], Imm: v.Init})
	}

	if err := c.stmts(c.prog.Body, nil); err != nil {
		return nil, err
	}

	// Epilogue: spill every scalar to its result slot, then halt.
	for i, v := range c.prog.Vars {
		t := c.mustTemp()
		c.emit(isa.Inst{Op: isa.OpLi, Rd: t, Imm: int64(resultBase + uint64(8*i))})
		c.emit(isa.Inst{Op: isa.OpSt, Rd: c.varReg[v.Name], Ra: t})
		c.release(t)
	}
	c.emit(isa.Inst{Op: isa.OpHalt})

	prog, err := c.b.Finish()
	if err != nil {
		return nil, err
	}
	return &Output{
		Prog:       prog,
		Mode:       c.mode,
		VarRegs:    c.varReg,
		ResultBase: resultBase,
		VarOrder:   varOrder,
		ArrayAddrs: c.arrAddr,
		ImmSlots:   c.b.ImmSlotOffsets(),
	}, nil
}

func paddedInit(a *lang.ArrayDecl) []uint64 {
	words := make([]uint64, a.Len)
	copy(words, a.Init)
	return words
}

func (c *compiler) emit(in isa.Inst) { c.b.Emit(in) }

func (c *compiler) emitRef(in isa.Inst, label string) { c.b.EmitRef(in, label) }

// Temporary register management.

func (c *compiler) mustTemp() isa.Reg {
	for i := range c.tempInUse {
		if !c.tempInUse[i] {
			c.tempInUse[i] = true
			return isa.Reg(firstTempReg + i)
		}
	}
	panic("compile: expression too deep (out of temporaries)")
}

func (c *compiler) release(r isa.Reg) {
	if r >= firstTempReg && r < firstTempReg+numTempRegs {
		c.tempInUse[r-firstTempReg] = false
	}
}

// value is an expression result: a register plus whether the compiler owns
// it (temporaries are owned and must be released; variable registers are
// borrowed and must not be written).
type value struct {
	reg   isa.Reg
	owned bool
}

func (c *compiler) freeValue(v value) {
	if v.owned {
		c.release(v.reg)
	}
}

// own returns a register that may be written: v itself when owned, or a
// fresh temporary holding a copy.
func (c *compiler) own(v value) value {
	if v.owned {
		return v
	}
	t := c.mustTemp()
	c.emit(isa.Inst{Op: isa.OpAdd, Rd: t, Ra: v.reg, Rb: isa.RZ})
	return value{t, true}
}

// stmts lowers a statement list under the given array remapping (SeMPE
// ShadowMemory substitution; nil means identity).
func (c *compiler) stmts(ss []lang.Stmt, remap map[string]string) error {
	for _, s := range ss {
		if err := c.stmt(s, remap); err != nil {
			return err
		}
	}
	return nil
}

func (c *compiler) stmt(s lang.Stmt, remap map[string]string) error {
	switch s := s.(type) {
	case *lang.Assign:
		if c.mode == CTE && len(c.maskStack) > 0 {
			return c.cteAssign(s, remap)
		}
		v, err := c.expr(s.E, remap)
		if err != nil {
			return err
		}
		c.emit(isa.Inst{Op: isa.OpAdd, Rd: c.varReg[s.Name], Ra: v.reg, Rb: isa.RZ})
		c.freeValue(v)
		return nil
	case *lang.Store:
		if c.mode == CTE && len(c.maskStack) > 0 {
			return c.cteStore(s, remap)
		}
		val, err := c.expr(s.Val, remap)
		if err != nil {
			return err
		}
		err = c.storeElem(c.remapArr(s.Arr, remap), s.Idx, val, remap)
		c.freeValue(val)
		return err
	case *lang.If:
		if s.Secret {
			switch c.mode {
			case SeMPE:
				return c.sempeIf(s, remap)
			case CTE:
				return c.cteIf(s, remap)
			}
		}
		return c.plainIf(s, remap)
	case *lang.While:
		return c.while(s, remap)
	default:
		return fmt.Errorf("unknown statement %T", s)
	}
}

// plainIf lowers a conditional to an ordinary branch (used by the Plain
// backend for everything, and by all backends for public conditions).
func (c *compiler) plainIf(s *lang.If, remap map[string]string) error {
	cond, err := c.expr(s.Cond, remap)
	if err != nil {
		return err
	}
	elseL := c.b.FreshLabel("else")
	endL := c.b.FreshLabel("endif")
	c.emitRef(isa.Inst{Op: isa.OpBeq, Ra: cond.reg, Rb: isa.RZ}, elseL)
	c.freeValue(cond)
	if err := c.stmts(s.Then, remap); err != nil {
		return err
	}
	if len(s.Else) > 0 {
		c.emitRef(isa.Inst{Op: isa.OpJmp}, endL)
	}
	c.b.Label(elseL)
	if err := c.stmts(s.Else, remap); err != nil {
		return err
	}
	c.b.Label(endL)
	return c.b.Err()
}

func (c *compiler) while(s *lang.While, remap map[string]string) error {
	if c.mode == CTE && len(c.maskStack) > 0 {
		return fmt.Errorf("CTE: loop inside a secret region is not supported (bound it and rewrite obliviously)")
	}
	loopL := c.b.FreshLabel("loop")
	endL := c.b.FreshLabel("endloop")
	c.b.Label(loopL)
	cond, err := c.expr(s.Cond, remap)
	if err != nil {
		return err
	}
	c.emitRef(isa.Inst{Op: isa.OpBeq, Ra: cond.reg, Rb: isa.RZ}, endL)
	c.freeValue(cond)
	if err := c.stmts(s.Body, remap); err != nil {
		return err
	}
	c.emitRef(isa.Inst{Op: isa.OpJmp}, loopL)
	c.b.Label(endL)
	return c.b.Err()
}

func (c *compiler) remapArr(name string, remap map[string]string) string {
	if remap != nil {
		if to, ok := remap[name]; ok {
			return to
		}
	}
	return name
}
