package compile

import (
	"encoding/binary"
	"sort"
	"sync"

	"repro/internal/isa"
	"repro/internal/lang"
)

// Template is a compiled program whose per-run scalar initial values can be
// patched directly into the code image, skipping the AST walk and the full
// lowering pipeline for every trial that shares the program's shape. The
// attack drivers compile one template per trial-invariant skeleton and then
// specialize it per trial by rewriting only the prologue's load-immediate
// operands (the initial register values the key, the calibration seed, and
// the gap seed flow through).
//
// Beyond the prologue, a program may declare named literal slots in its body
// (lang.NS): the compiler records the code offset of each slot's
// load-immediate, and the template patches those sites too. Named slots
// occupy the patch-value indices after the prologue scalars, in sorted name
// order; a name appearing at several code points is one slot patched at
// every site.
//
// Patchability is proven, not assumed: NewTemplate decodes the prologue and
// verifies it is exactly one OpLi per scalar, in declaration order, targeting
// the variable's assigned register, and that every named-slot site is a plain
// OpLi whose immediate matches the slot's base value. Any mismatch — a
// compiler change, an unexpected prefix, a variable whose value reaches the
// program some other way — marks the template non-patchable and callers fall
// back to a full recompilation, so the fast path can never silently produce
// a program that differs from what Compile would emit.
type Template struct {
	Out *Output

	// immOffs[i] is the byte offset inside Out.Prog.Code of the 4-byte
	// little-endian immediate of the prologue OpLi initializing VarOrder[i].
	// nil when the prologue could not be proven patchable.
	immOffs []int

	// namedOffs[j] lists the immediate byte offsets of every code site
	// carrying the j-th named slot (sorted by slot name); its patch value
	// lives at index len(immOffs)+j.
	namedOffs [][]int

	// baseInits[i] is the immediate the template was compiled with —
	// prologue scalars first, then named slots — the default a Specialize
	// caller starts from for values that do not change per trial.
	baseInits []int64

	// slotIdx maps a scalar or named-slot name to its patch-value index.
	slotIdx map[string]int
}

// NewTemplate compiles p and analyzes the result for patchability.
func NewTemplate(p *lang.Program, mode Mode) (*Template, error) {
	out, err := Compile(p, mode)
	if err != nil {
		return nil, err
	}
	t := &Template{Out: out}
	t.analyze()
	return t, nil
}

// analyze locates the prologue's load-immediate slots and verifies the named
// body slots. The prologue starts at the entry point (code emission begins at
// Label("main")) and consists of one OpLi per scalar in declaration order;
// each named-slot site must decode as a plain OpLi carrying the slot's base
// value. Anything else leaves the template non-patchable.
func (t *Template) analyze() {
	prog := t.Out.Prog
	off := int(prog.Entry - prog.CodeBase)
	offs := make([]int, 0, len(t.Out.VarOrder))
	inits := make([]int64, 0, len(t.Out.VarOrder))
	idx := make(map[string]int, len(t.Out.VarOrder)+len(t.Out.ImmSlots))
	for i, name := range t.Out.VarOrder {
		in, size, err := isa.Decode(prog.Code, off)
		if err != nil || in.Op != isa.OpLi || in.Secure || in.Rd != t.Out.VarRegs[name] {
			return
		}
		// The immediate is the last 4 bytes of a non-short encoding:
		// opcode, Rd, Ra, Rb, imm32 (little endian).
		offs = append(offs, off+size-4)
		inits = append(inits, in.Imm)
		idx[name] = i
		off += size
	}

	names := make([]string, 0, len(t.Out.ImmSlots))
	for name := range t.Out.ImmSlots {
		names = append(names, name)
	}
	sort.Strings(names)
	named := make([][]int, 0, len(names))
	for _, name := range names {
		if _, dup := idx[name]; dup {
			return // a named slot shadowing a scalar is ambiguous
		}
		sites := make([]int, 0, len(t.Out.ImmSlots[name]))
		var base int64
		for k, start := range t.Out.ImmSlots[name] {
			in, size, err := isa.Decode(prog.Code, start)
			if err != nil || in.Op != isa.OpLi || in.Secure {
				return
			}
			if k == 0 {
				base = in.Imm
			} else if in.Imm != base {
				return // sites disagree; one patch value cannot serve both
			}
			sites = append(sites, start+size-4)
		}
		idx[name] = len(offs) + len(named)
		named = append(named, sites)
		inits = append(inits, base)
	}

	t.immOffs = offs
	t.namedOffs = named
	t.baseInits = inits
	t.slotIdx = idx
}

// Patchable reports whether Specialize can rewrite this template.
func (t *Template) Patchable() bool { return t.immOffs != nil }

// NumSlots returns the number of patchable value slots: the prologue
// scalars followed by the named literal slots.
func (t *Template) NumSlots() int { return len(t.immOffs) + len(t.namedOffs) }

// BaseInits returns the immediates the template was compiled with —
// Output.VarOrder scalars first, then named slots in sorted name order.
// Callers must treat the slice as read-only.
func (t *Template) BaseInits() []int64 { return t.baseInits }

// SlotIndex returns the patch-value index for a scalar or named-slot name.
func (t *Template) SlotIndex(name string) (int, bool) {
	i, ok := t.slotIdx[name]
	return i, ok
}

// Specialize appends a copy of the template's code with vals patched into
// the prologue and named-slot immediates to buf[:0] and returns it. It fails
// (ok=false) when the template is not patchable or a value does not fit the
// 4-byte immediate encoding; callers then recompile from source. Data
// segments and all other Output metadata are shared with the template:
// nothing but the patched immediates varies per trial.
func (t *Template) Specialize(vals []int64, buf []byte) (code []byte, ok bool) {
	if t.immOffs == nil || len(vals) != t.NumSlots() {
		return nil, false
	}
	for _, v := range vals {
		if int64(int32(v)) != v {
			return nil, false
		}
	}
	code = append(buf[:0], t.Out.Prog.Code...)
	for i, off := range t.immOffs {
		binary.LittleEndian.PutUint32(code[off:], uint32(int32(vals[i])))
	}
	for j, sites := range t.namedOffs {
		v := uint32(int32(vals[len(t.immOffs)+j]))
		for _, off := range sites {
			binary.LittleEndian.PutUint32(code[off:], v)
		}
	}
	return code, true
}

// memoCap bounds a Memo's size. Attack sweeps produce at most a few hundred
// distinct skeletons; the cap only guards against unbounded growth if a
// caller keys on something trial-variant by mistake. On overflow the whole
// map is dropped (the next misses rebuild it) — simpler than LRU and
// harmless at this hit rate.
const memoCap = 4096

// Memo is a concurrency-safe content-keyed template cache. The key type is
// a caller-chosen comparable struct capturing everything the program's shape
// depends on; keeping it generic avoids boxing the key on every lookup in
// the trial hot loop.
type Memo[K comparable] struct {
	mu        sync.Mutex
	m         map[K]*Template
	hits      uint64
	misses    uint64
	evictions uint64
}

// NewMemo returns an empty template cache.
func NewMemo[K comparable]() *Memo[K] {
	return &Memo[K]{m: make(map[K]*Template)}
}

// Get returns the cached template for key, or nil on a miss.
func (m *Memo[K]) Get(key K) *Template {
	m.mu.Lock()
	defer m.mu.Unlock()
	t := m.m[key]
	if t != nil {
		m.hits++
	} else {
		m.misses++
	}
	return t
}

// Put inserts a template, evicting everything first when the cache is full.
func (m *Memo[K]) Put(key K, t *Template) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.m) >= memoCap {
		clear(m.m)
		m.evictions++
	}
	m.m[key] = t
}

// Counters returns the cumulative hit/miss/eviction counts.
func (m *Memo[K]) Counters() (hits, misses, evictions uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hits, m.misses, m.evictions
}
