package compile

import (
	"math/rand"
	"testing"

	"repro/internal/emu"
	"repro/internal/lang"
	"repro/internal/pipeline"
)

// runOutput executes a compiled program on the functional machine in the
// mode matching its backend and returns the result-slot values by name.
func runOutput(t *testing.T, out *Output, secure bool) map[string]uint64 {
	t.Helper()
	mode := emu.Legacy
	if secure {
		mode = emu.SeMPE
	}
	m := emu.New(mode, out.Prog)
	m.MaxInsts = 50_000_000
	if err := m.Run(); err != nil {
		t.Fatalf("%v run: %v\n%s", out.Mode, err, out.Prog.Disassemble())
	}
	res := make(map[string]uint64)
	for _, name := range out.VarOrder {
		addr, err := out.ResultAddr(name)
		if err != nil {
			t.Fatal(err)
		}
		res[name] = m.Mem.Read64(addr)
	}
	return res
}

// checkAllBackendsAgree compiles p three ways and checks that the final
// variable values agree (CTE and plain on the legacy machine, SeMPE on the
// secure machine).
func checkAllBackendsAgree(t *testing.T, p *lang.Program) map[string]uint64 {
	t.Helper()
	plain := runOutput(t, MustCompile(p, Plain), false)
	sempeOut := MustCompile(p, SeMPE)
	sempe := runOutput(t, sempeOut, true)
	cte := runOutput(t, MustCompile(p, CTE), false)
	for name, want := range plain {
		if got := sempe[name]; got != want {
			t.Errorf("SeMPE %s = %d, plain = %d\n%s", name, got, want, sempeOut.Prog.Disassemble())
		}
		if got := cte[name]; got != want {
			t.Errorf("CTE %s = %d, plain = %d", name, got, want)
		}
	}
	// The SeMPE binary must also run correctly (one path only) on a legacy
	// machine: backward compatibility.
	legacy := runOutput(t, sempeOut, false)
	for name, want := range plain {
		if got := legacy[name]; got != want {
			t.Errorf("SeMPE-binary-on-legacy %s = %d, plain = %d", name, got, want)
		}
	}
	return plain
}

func TestSimpleSecretIf(t *testing.T) {
	for _, secret := range []int64{0, 1} {
		p := &lang.Program{
			Name: "simple",
			Vars: []*lang.VarDecl{
				{Name: "s", Init: secret, Secret: true},
				{Name: "x", Init: 10},
				{Name: "y", Init: 0},
			},
			Body: []lang.Stmt{
				lang.SecretIf(lang.V("s"),
					[]lang.Stmt{lang.Set("y", lang.B(lang.Add, lang.V("x"), lang.N(1)))},
					[]lang.Stmt{lang.Set("y", lang.B(lang.Mul, lang.V("x"), lang.N(3)))},
				),
			},
		}
		res := checkAllBackendsAgree(t, p)
		want := uint64(30)
		if secret != 0 {
			want = 11
		}
		if res["y"] != want {
			t.Errorf("secret=%d: y=%d want %d", secret, res["y"], want)
		}
	}
}

func TestNestedSecretIf(t *testing.T) {
	for a := int64(0); a < 2; a++ {
		for b := int64(0); b < 2; b++ {
			// The paper's Fig. 2 example: j and k updates under nested
			// secret conditions A and B/C.
			p := &lang.Program{
				Name: "fig2",
				Vars: []*lang.VarDecl{
					{Name: "A", Init: a, Secret: true},
					{Name: "C", Init: b, Secret: true},
					{Name: "j", Init: 100},
					{Name: "k", Init: 200},
				},
				Body: []lang.Stmt{
					lang.SecretIf(lang.V("A"),
						[]lang.Stmt{lang.Set("j", lang.B(lang.Add, lang.V("j"), lang.N(1)))},
						[]lang.Stmt{
							lang.SecretIf(lang.V("C"),
								[]lang.Stmt{lang.Set("k", lang.B(lang.Add, lang.V("k"), lang.N(1)))},
								[]lang.Stmt{lang.Set("k", lang.B(lang.Sub, lang.V("k"), lang.N(1)))},
							),
						},
					),
				},
			}
			res := checkAllBackendsAgree(t, p)
			wantJ, wantK := uint64(100), uint64(200)
			if a != 0 {
				wantJ = 101
			} else if b != 0 {
				wantK = 201
			} else {
				wantK = 199
			}
			if res["j"] != wantJ || res["k"] != wantK {
				t.Errorf("A=%d C=%d: j=%d k=%d want %d %d", a, b, res["j"], res["k"], wantJ, wantK)
			}
		}
	}
}

func TestSecretIfWithArrayShadow(t *testing.T) {
	// The secret paths write a live-out array: the SeMPE backend must
	// privatize it with shadow copies and CMOV-merge afterwards.
	for _, secret := range []int64{0, 1} {
		p := &lang.Program{
			Name: "shadow",
			Vars: []*lang.VarDecl{
				{Name: "s", Init: secret, Secret: true},
				{Name: "sum", Init: 0},
				{Name: "i", Init: 0},
			},
			Arrays: []*lang.ArrayDecl{
				{Name: "out", Len: 8, LiveOut: true},
			},
			Body: []lang.Stmt{
				lang.SecretIf(lang.V("s"),
					[]lang.Stmt{
						lang.Put("out", lang.N(0), lang.N(111)),
						lang.Put("out", lang.N(3), lang.N(333)),
					},
					[]lang.Stmt{
						lang.Put("out", lang.N(0), lang.N(222)),
						lang.Put("out", lang.N(5), lang.N(555)),
					},
				),
				// Read the array after the region so it is observably live.
				lang.Set("i", lang.N(0)),
				lang.Loop(lang.B(lang.Lt, lang.V("i"), lang.N(8)), []lang.Stmt{
					lang.Set("sum", lang.B(lang.Add, lang.V("sum"), lang.At("out", lang.V("i")))),
					lang.Set("i", lang.B(lang.Add, lang.V("i"), lang.N(1))),
				}),
			},
		}
		res := checkAllBackendsAgree(t, p)
		want := uint64(222 + 555)
		if secret != 0 {
			want = 111 + 333
		}
		if res["sum"] != want {
			t.Errorf("secret=%d: sum=%d want %d", secret, res["sum"], want)
		}
	}
}

func TestSecretIfInLoop(t *testing.T) {
	// Modular-exponentiation shape: a secret branch exercised per loop
	// iteration (the paper's Fig. 1 motif with key bits).
	for _, key := range []int64{0b1011, 0b0100, 0} {
		p := modexpShape(key)
		res := checkAllBackendsAgree(t, p)
		// Reference: acc = acc*3+1 per set bit, acc += 7 otherwise, 4 bits.
		acc := uint64(1)
		for i := 0; i < 4; i++ {
			if key>>i&1 != 0 {
				acc = acc*3 + 1
			} else {
				acc += 7
			}
		}
		if res["acc"] != acc {
			t.Errorf("key=%b: acc=%d want %d", key, res["acc"], acc)
		}
	}
}

func modexpShape(key int64) *lang.Program {
	return &lang.Program{
		Name: "modexp",
		Vars: []*lang.VarDecl{
			{Name: "key", Init: key, Secret: true},
			{Name: "acc", Init: 1},
			{Name: "i", Init: 0},
			{Name: "bit", Init: 0},
		},
		Body: []lang.Stmt{
			lang.Loop(lang.B(lang.Lt, lang.V("i"), lang.N(4)), []lang.Stmt{
				lang.Set("bit", lang.B(lang.And, lang.B(lang.Shr, lang.V("key"), lang.V("i")), lang.N(1))),
				lang.SecretIf(lang.V("bit"),
					[]lang.Stmt{lang.Set("acc", lang.B(lang.Add, lang.B(lang.Mul, lang.V("acc"), lang.N(3)), lang.N(1)))},
					[]lang.Stmt{lang.Set("acc", lang.B(lang.Add, lang.V("acc"), lang.N(7)))},
				),
				lang.Set("i", lang.B(lang.Add, lang.V("i"), lang.N(1))),
			}),
		},
	}
}

func TestPublicControlFlowInsideSecretPath(t *testing.T) {
	// A public loop and public if inside a secret path must work under
	// SeMPE (they are ordinary predicted branches inside the SecBlock).
	for _, secret := range []int64{0, 1} {
		p := &lang.Program{
			Name: "mixed",
			Vars: []*lang.VarDecl{
				{Name: "s", Init: secret, Secret: true},
				{Name: "acc", Init: 0},
				{Name: "i", Init: 0},
			},
			Body: []lang.Stmt{
				lang.SecretIf(lang.V("s"),
					[]lang.Stmt{
						lang.Set("i", lang.N(0)),
						lang.Loop(lang.B(lang.Lt, lang.V("i"), lang.N(10)), []lang.Stmt{
							lang.PublicIf(lang.B(lang.And, lang.V("i"), lang.N(1)),
								[]lang.Stmt{lang.Set("acc", lang.B(lang.Add, lang.V("acc"), lang.N(2)))},
								[]lang.Stmt{lang.Set("acc", lang.B(lang.Add, lang.V("acc"), lang.N(5)))},
							),
							lang.Set("i", lang.B(lang.Add, lang.V("i"), lang.N(1))),
						}),
					},
					[]lang.Stmt{lang.Set("acc", lang.N(1))},
				),
			},
		}
		// CTE cannot express a loop inside a secret region; check plain vs
		// SeMPE only.
		plain := runOutput(t, MustCompile(p, Plain), false)
		sempe := runOutput(t, MustCompile(p, SeMPE), true)
		if plain["acc"] != sempe["acc"] {
			t.Errorf("secret=%d: plain acc=%d sempe acc=%d", secret, plain["acc"], sempe["acc"])
		}
		want := uint64(1)
		if secret != 0 {
			want = 5*2 + 5*5
		}
		if plain["acc"] != want {
			t.Errorf("secret=%d: acc=%d want %d", secret, plain["acc"], want)
		}
	}
}

func TestCTELoopInSecretRegionRejected(t *testing.T) {
	p := &lang.Program{
		Vars: []*lang.VarDecl{{Name: "s", Init: 1, Secret: true}, {Name: "x", Init: 0}},
		Body: []lang.Stmt{
			lang.SecretIf(lang.V("s"),
				[]lang.Stmt{lang.Loop(lang.V("x"), []lang.Stmt{lang.Set("x", lang.N(0))})},
				nil,
			),
		},
	}
	if _, err := Compile(p, CTE); err == nil {
		t.Fatal("CTE compile of loop inside secret region succeeded, want error")
	}
	if _, err := Compile(p, Plain); err != nil {
		t.Fatalf("plain compile failed: %v", err)
	}
}

func TestDeepNestingLimits(t *testing.T) {
	deep := func(depth int) *lang.Program {
		body := []lang.Stmt{lang.Set("x", lang.N(1))}
		for i := 0; i < depth; i++ {
			body = []lang.Stmt{lang.SecretIf(lang.V("s"), body, []lang.Stmt{lang.Set("x", lang.N(2))})}
		}
		return &lang.Program{
			Vars: []*lang.VarDecl{{Name: "s", Init: 1, Secret: true}, {Name: "x", Init: 0}},
			Body: body,
		}
	}
	// Depth 10 compiles everywhere.
	if _, err := Compile(deep(10), SeMPE); err != nil {
		t.Errorf("SeMPE depth 10: %v", err)
	}
	if _, err := Compile(deep(10), CTE); err != nil {
		t.Errorf("CTE depth 10: %v", err)
	}
	// CTE is capped at the mask-register depth.
	if _, err := Compile(deep(11), CTE); err == nil {
		t.Error("CTE depth 11 compiled, want error")
	}
	// SeMPE is capped at the SPM snapshot depth.
	if _, err := Compile(deep(31), SeMPE); err == nil {
		t.Error("SeMPE depth 31 compiled, want error")
	}
}

func TestCompiledSecureCounts(t *testing.T) {
	p := modexpShape(0b1010)
	out := MustCompile(p, SeMPE)
	sjmp, eos := out.Prog.CountSecure()
	if sjmp != 1 || eos != 1 {
		t.Errorf("static secure counts: sjmp=%d eos=%d, want 1,1", sjmp, eos)
	}
	plainOut := MustCompile(p, Plain)
	if s, e := plainOut.Prog.CountSecure(); s != 0 || e != 0 {
		t.Errorf("plain binary contains secure instructions: %d %d", s, e)
	}
	cteOut := MustCompile(p, CTE)
	if s, e := cteOut.Prog.CountSecure(); s != 0 || e != 0 {
		t.Errorf("CTE binary contains secure instructions: %d %d", s, e)
	}
}

// TestRandomSecretProgramsAgree generates random nested secret/public
// control flow over scalars and checks all three backends agree for several
// secrets — the semantic-preservation property test.
func TestRandomSecretProgramsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		for _, secret := range []int64{0, 1, 5} {
			p := randomSecretProgram(rng, secret)
			plain := runOutput(t, MustCompile(p, Plain), false)
			sempe := runOutput(t, MustCompile(p, SeMPE), true)
			cte := runOutput(t, MustCompile(p, CTE), false)
			for name, want := range plain {
				if sempe[name] != want {
					t.Fatalf("trial %d secret %d: SeMPE %s=%d plain=%d",
						trial, secret, name, sempe[name], want)
				}
				if cte[name] != want {
					t.Fatalf("trial %d secret %d: CTE %s=%d plain=%d",
						trial, secret, name, cte[name], want)
				}
			}
		}
	}
}

// randomSecretProgram builds a random tree of secret ifs (depth <= 4) whose
// leaves are random arithmetic on a handful of variables.
func randomSecretProgram(rng *rand.Rand, secret int64) *lang.Program {
	vars := []*lang.VarDecl{
		{Name: "s", Init: secret, Secret: true},
		{Name: "a", Init: int64(rng.Intn(100))},
		{Name: "b", Init: int64(rng.Intn(100))},
		{Name: "c", Init: int64(rng.Intn(100))},
	}
	names := []string{"a", "b", "c"}
	ops := []lang.BinOp{lang.Add, lang.Sub, lang.Mul, lang.Xor, lang.And, lang.Or}
	randExpr := func() lang.Expr {
		e := lang.Expr(lang.V(names[rng.Intn(len(names))]))
		for i := 0; i < rng.Intn(3); i++ {
			if rng.Intn(2) == 0 {
				e = lang.B(ops[rng.Intn(len(ops))], e, lang.V(names[rng.Intn(len(names))]))
			} else {
				e = lang.B(ops[rng.Intn(len(ops))], e, lang.N(int64(rng.Intn(50))))
			}
		}
		return e
	}
	var randStmts func(depth int) []lang.Stmt
	randStmts = func(depth int) []lang.Stmt {
		var ss []lang.Stmt
		n := rng.Intn(3) + 1
		for i := 0; i < n; i++ {
			if depth < 4 && rng.Intn(3) == 0 {
				cond := lang.B(lang.And, lang.B(lang.Shr, lang.V("s"), lang.N(int64(rng.Intn(3)))), lang.N(1))
				ss = append(ss, lang.SecretIf(cond, randStmts(depth+1), randStmts(depth+1)))
			} else {
				ss = append(ss, lang.Set(names[rng.Intn(len(names))], randExpr()))
			}
		}
		return ss
	}
	return &lang.Program{Name: "rand", Vars: vars, Body: randStmts(0)}
}

func TestTaintAnalysis(t *testing.T) {
	p := &lang.Program{
		Vars: []*lang.VarDecl{
			{Name: "key", Init: 3, Secret: true},
			{Name: "derived", Init: 0},
			{Name: "pub", Init: 1},
		},
		Arrays: []*lang.ArrayDecl{{Name: "tbl", Len: 4}},
		Body: []lang.Stmt{
			lang.Set("derived", lang.B(lang.And, lang.V("key"), lang.N(1))),
			// Unmarked secret branch: must be flagged.
			lang.PublicIf(lang.V("derived"), []lang.Stmt{lang.Set("pub", lang.N(2))}, nil),
			// Secret-indexed access: must be flagged.
			lang.Set("pub", lang.At("tbl", lang.V("key"))),
		},
	}
	rep := lang.AnalyzeTaint(p)
	if len(rep.UnmarkedBranches) != 1 {
		t.Errorf("unmarked branches: %v", rep.UnmarkedBranches)
	}
	if len(rep.SecretIndices) == 0 {
		t.Errorf("secret indices not flagged")
	}
	if rep.Clean() {
		t.Error("report should not be clean")
	}

	good := modexpShape(5)
	if rep := lang.AnalyzeTaint(good); !rep.Clean() {
		t.Errorf("well-annotated program flagged: %+v", rep)
	}
}

func TestSeMPEBinaryRunsOnPipeline(t *testing.T) {
	// End-to-end: compiled SeMPE binary on the cycle-level secure core,
	// compared against the functional machine.
	out := MustCompile(modexpShape(0b1101), SeMPE)
	ref := emu.New(emu.SeMPE, out.Prog)
	if err := ref.Run(); err != nil {
		t.Fatal(err)
	}
	core := pipeline.New(pipeline.SecureConfig(), out.Prog)
	if err := core.Run(); err != nil {
		t.Fatal(err)
	}
	accAddr, _ := out.ResultAddr("acc")
	if g, w := core.Mem().Read64(accAddr), ref.Mem.Read64(accAddr); g != w {
		t.Errorf("pipeline acc=%d emu acc=%d", g, w)
	}
}
