package compile

import (
	"strings"
	"testing"

	"repro/internal/emu"
	"repro/internal/lang"
)

func TestTooManyScalarsRejected(t *testing.T) {
	var vars []*lang.VarDecl
	for i := 0; i < 40; i++ {
		vars = append(vars, &lang.VarDecl{Name: strings.Repeat("v", i+1)})
	}
	p := &lang.Program{Vars: vars}
	if _, err := Compile(p, Plain); err == nil || !strings.Contains(err.Error(), "too many scalars") {
		t.Errorf("err = %v, want scalar-limit error", err)
	}
}

func TestLiteralRangeRejected(t *testing.T) {
	p := &lang.Program{
		Vars: []*lang.VarDecl{{Name: "x"}},
		Body: []lang.Stmt{lang.Set("x", lang.N(1<<40))},
	}
	if _, err := Compile(p, Plain); err == nil {
		t.Error("40-bit literal accepted")
	}
}

func TestShadowInsideLoopRecopiesEachIteration(t *testing.T) {
	// A secret region with a live-out array inside a loop: each iteration
	// must re-copy and re-merge, and the final contents must match plain
	// semantics for every secret.
	build := func(secret int64) *lang.Program {
		return &lang.Program{
			Vars: []*lang.VarDecl{
				{Name: "s", Init: secret, Secret: true},
				{Name: "i", Init: 0},
				{Name: "bit", Init: 0},
				{Name: "sum", Init: 0},
			},
			Arrays: []*lang.ArrayDecl{{Name: "acc", Len: 4, LiveOut: true}},
			Body: []lang.Stmt{
				lang.Loop(lang.B(lang.Lt, lang.V("i"), lang.N(3)), []lang.Stmt{
					lang.Set("bit", lang.B(lang.And, lang.B(lang.Shr, lang.V("s"), lang.V("i")), lang.N(1))),
					lang.SecretIf(lang.V("bit"),
						[]lang.Stmt{lang.Put("acc", lang.N(0),
							lang.B(lang.Add, lang.At("acc", lang.N(0)), lang.N(10)))},
						[]lang.Stmt{lang.Put("acc", lang.N(1),
							lang.B(lang.Add, lang.At("acc", lang.N(1)), lang.N(1)))},
					),
					lang.Set("i", lang.B(lang.Add, lang.V("i"), lang.N(1))),
				}),
				lang.Set("sum", lang.B(lang.Add,
					lang.B(lang.Mul, lang.At("acc", lang.N(0)), lang.N(100)),
					lang.At("acc", lang.N(1)))),
			},
		}
	}
	for _, secret := range []int64{0, 0b111, 0b101, 0b010} {
		res := checkAllBackendsAgree(t, build(secret))
		// Reference: acc[0] gains 10 per set bit, acc[1] gains 1 per clear bit.
		set := 0
		for i := 0; i < 3; i++ {
			if secret>>i&1 == 1 {
				set++
			}
		}
		want := uint64(set*10*100 + (3 - set))
		if res["sum"] != want {
			t.Errorf("secret=%#b: sum=%d want %d", secret, res["sum"], want)
		}
	}
}

func TestNestedShadowComposition(t *testing.T) {
	// Nested secret regions both writing the same live-out array: the inner
	// region's shadows must compose with the outer region's remapping
	// (shadow-of-shadow).
	build := func(a, b int64) *lang.Program {
		return &lang.Program{
			Vars: []*lang.VarDecl{
				{Name: "A", Init: a, Secret: true},
				{Name: "B", Init: b, Secret: true},
				{Name: "out", Init: 0},
			},
			Arrays: []*lang.ArrayDecl{{Name: "buf", Len: 2, LiveOut: true}},
			Body: []lang.Stmt{
				lang.SecretIf(lang.V("A"),
					[]lang.Stmt{
						lang.Put("buf", lang.N(0), lang.N(1)),
						lang.SecretIf(lang.V("B"),
							[]lang.Stmt{lang.Put("buf", lang.N(1), lang.N(2))},
							[]lang.Stmt{lang.Put("buf", lang.N(1), lang.N(3))},
						),
					},
					[]lang.Stmt{lang.Put("buf", lang.N(0), lang.N(9))},
				),
				lang.Set("out", lang.B(lang.Add,
					lang.B(lang.Mul, lang.At("buf", lang.N(0)), lang.N(10)),
					lang.At("buf", lang.N(1)))),
			},
		}
	}
	wants := map[[2]int64]uint64{
		{1, 1}: 12, {1, 0}: 13, {0, 1}: 90, {0, 0}: 90,
	}
	for key, want := range wants {
		res := checkAllBackendsAgree(t, build(key[0], key[1]))
		if res["out"] != want {
			t.Errorf("A=%d B=%d: out=%d want %d", key[0], key[1], res["out"], want)
		}
	}
}

func TestScratchArrayNotShadowed(t *testing.T) {
	// An array written inside secret paths but never read outside them and
	// not live-out must not get shadow copies (the fast path the paper's
	// microbenchmarks rely on).
	p := &lang.Program{
		Vars: []*lang.VarDecl{
			{Name: "s", Init: 1, Secret: true},
			{Name: "x", Init: 0},
		},
		Arrays: []*lang.ArrayDecl{{Name: "scratch", Len: 8}},
		Body: []lang.Stmt{
			lang.SecretIf(lang.V("s"),
				[]lang.Stmt{
					lang.Put("scratch", lang.N(0), lang.N(5)),
					lang.Set("x", lang.At("scratch", lang.N(0))),
				},
				[]lang.Stmt{
					lang.Put("scratch", lang.N(0), lang.N(6)),
					lang.Set("x", lang.At("scratch", lang.N(0))),
				},
			),
		},
	}
	out := MustCompile(p, SeMPE)
	for name := range out.ArrayAddrs {
		if strings.Contains(name, "__sh") {
			t.Errorf("scratch array was shadowed: %s", name)
		}
	}
	// And the semantics still hold.
	res := runOutput(t, out, true)
	if res["x"] != 5 {
		t.Errorf("x = %d, want 5", res["x"])
	}
}

func TestLiveOutForcesShadow(t *testing.T) {
	p := &lang.Program{
		Vars: []*lang.VarDecl{{Name: "s", Init: 1, Secret: true}},
		Arrays: []*lang.ArrayDecl{
			{Name: "outbuf", Len: 4, LiveOut: true},
		},
		Body: []lang.Stmt{
			lang.SecretIf(lang.V("s"),
				[]lang.Stmt{lang.Put("outbuf", lang.N(0), lang.N(1))},
				[]lang.Stmt{lang.Put("outbuf", lang.N(0), lang.N(2))},
			),
		},
	}
	out := MustCompile(p, SeMPE)
	found := false
	for name := range out.ArrayAddrs {
		if strings.Contains(name, "outbuf__sh") {
			found = true
		}
	}
	if !found {
		t.Error("live-out array written in secret paths was not shadowed")
	}
}

func TestSelectExpression(t *testing.T) {
	for _, c := range []int64{0, 1, -5, 1 << 20} {
		p := &lang.Program{
			Vars: []*lang.VarDecl{
				{Name: "c", Init: c},
				{Name: "x", Init: 0},
				{Name: "y", Init: 0},
			},
			Body: []lang.Stmt{
				lang.Set("x", lang.Sel(lang.V("c"), lang.N(111), lang.N(222))),
				// Nested select as an operand.
				lang.Set("y", lang.B(lang.Add,
					lang.Sel(lang.V("c"), lang.N(1), lang.N(2)), lang.N(10))),
			},
		}
		out := MustCompile(p, Plain)
		m := emu.New(emu.Legacy, out.Prog)
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		xAddr, _ := out.ResultAddr("x")
		yAddr, _ := out.ResultAddr("y")
		wantX, wantY := uint64(222), uint64(12)
		if c != 0 {
			wantX, wantY = 111, 11
		}
		if got := m.Mem.Read64(xAddr); got != wantX {
			t.Errorf("c=%d: x=%d want %d", c, got, wantX)
		}
		if got := m.Mem.Read64(yAddr); got != wantY {
			t.Errorf("c=%d: y=%d want %d", c, got, wantY)
		}
	}
}

func TestSelectIsBranchFree(t *testing.T) {
	p := &lang.Program{
		Vars: []*lang.VarDecl{{Name: "c", Init: 1}, {Name: "x"}},
		Body: []lang.Stmt{lang.Set("x", lang.Sel(lang.V("c"), lang.N(1), lang.N(2)))},
	}
	out := MustCompile(p, Plain)
	dis := out.Prog.Disassemble()
	for _, forbidden := range []string{"beq", "bne", "blt", "bge"} {
		if strings.Contains(dis, forbidden) {
			t.Errorf("select lowered with a branch (%s):\n%s", forbidden, dis)
		}
	}
}

func TestCTEDivergentValuesStillMerge(t *testing.T) {
	// Division inside masked CTE paths: both sides compute, the select
	// keeps the right one; non-trapping division makes this safe.
	for _, secret := range []int64{0, 1} {
		p := &lang.Program{
			Vars: []*lang.VarDecl{
				{Name: "s", Init: secret, Secret: true},
				{Name: "x", Init: 100},
				{Name: "d", Init: 0}, // divide by zero on one path
			},
			Body: []lang.Stmt{
				lang.SecretIf(lang.V("s"),
					[]lang.Stmt{lang.Set("x", lang.B(lang.Div, lang.V("x"), lang.V("d")))},
					[]lang.Stmt{lang.Set("x", lang.B(lang.Div, lang.V("x"), lang.N(5)))},
				),
			},
		}
		res := checkAllBackendsAgree(t, p)
		want := uint64(20)
		if secret != 0 {
			want = ^uint64(0) // non-trapping divide-by-zero yields all ones
		}
		if res["x"] != want {
			t.Errorf("secret=%d: x=%#x want %#x", secret, res["x"], want)
		}
	}
}
