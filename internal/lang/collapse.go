package lang

// CollapseNested implements the compiler optimization the paper proposes for
// reducing secure-branch nesting depth (§IV-E): "if (A) {if (B) ...} can be
// converted into if (A and B) {...}". Each collapse removes one jbTable/SPM
// nesting level at the cost of a slightly larger condition expression.
//
// The rewrite applies when a secret if with no else branch contains, as its
// entire then branch, another secret if with no else branch. The combined
// condition normalizes both operands ((A != 0) & (B != 0)) so arbitrary
// integer conditions compose correctly. The transformation preserves
// semantics and the secret-ness of the condition; it changes which branches
// exist, so dual-path work can shrink (the collapsed region's single body
// replaces two nested bodies).
//
// It returns the number of collapses performed. The program is rewritten in
// place (statement slices are replaced, shared Expr nodes are reused).
func CollapseNested(p *Program) int {
	n := 0
	p.Body = collapseStmts(p.Body, &n)
	return n
}

func collapseStmts(ss []Stmt, n *int) []Stmt {
	for i, s := range ss {
		switch s := s.(type) {
		case *If:
			ss[i] = collapseIf(s, n)
		case *While:
			s.Body = collapseStmts(s.Body, n)
		}
	}
	return ss
}

func collapseIf(node *If, n *int) Stmt {
	node.Then = collapseStmts(node.Then, n)
	node.Else = collapseStmts(node.Else, n)
	collapsed := false
	for node.Secret && len(node.Else) == 0 && len(node.Then) == 1 {
		inner, ok := node.Then[0].(*If)
		if !ok || !inner.Secret || len(inner.Else) != 0 {
			break
		}
		// Build a left-deep conjunction: once the accumulated condition is
		// a 0/1 conjunction it needs no re-normalization, and left-deep
		// trees evaluate with constant register pressure.
		if !collapsed {
			node.Cond = Bin{Ne, node.Cond, IntLit{V: 0}}
		}
		node.Cond = Bin{And, node.Cond, Bin{Ne, inner.Cond, IntLit{V: 0}}}
		node.Then = inner.Then
		collapsed = true
		*n++
	}
	return node
}
