package lang

import (
	"strings"
	"testing"
)

func TestValidateCatchesErrors(t *testing.T) {
	cases := []struct {
		name string
		p    *Program
		want string
	}{
		{
			"duplicate var",
			&Program{Vars: []*VarDecl{{Name: "x"}, {Name: "x"}}},
			"duplicate",
		},
		{
			"duplicate array/var",
			&Program{Vars: []*VarDecl{{Name: "x"}}, Arrays: []*ArrayDecl{{Name: "x", Len: 4}}},
			"duplicate",
		},
		{
			"zero-length array",
			&Program{Arrays: []*ArrayDecl{{Name: "a", Len: 0}}},
			"length",
		},
		{
			"oversized init",
			&Program{Arrays: []*ArrayDecl{{Name: "a", Len: 2, Init: []uint64{1, 2, 3}}}},
			"init longer",
		},
		{
			"undefined variable",
			&Program{Body: []Stmt{Set("x", N(1))}},
			"undefined",
		},
		{
			"undefined array",
			&Program{Vars: []*VarDecl{{Name: "x"}}, Body: []Stmt{Set("x", At("a", N(0)))}},
			"undefined array",
		},
		{
			"constant index out of bounds",
			&Program{
				Vars:   []*VarDecl{{Name: "x"}},
				Arrays: []*ArrayDecl{{Name: "a", Len: 4}},
				Body:   []Stmt{Set("x", At("a", N(4)))},
			},
			"out of bounds",
		},
		{
			"undefined in select",
			&Program{Vars: []*VarDecl{{Name: "x"}},
				Body: []Stmt{Set("x", Sel(V("nope"), N(1), N(2)))}},
			"undefined",
		},
	}
	for _, tc := range cases {
		err := tc.p.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	p := &Program{
		Vars:   []*VarDecl{{Name: "x"}, {Name: "s", Secret: true}},
		Arrays: []*ArrayDecl{{Name: "a", Len: 8, Init: []uint64{1, 2}}},
		Body: []Stmt{
			Set("x", B(Add, V("x"), N(1))),
			Put("a", V("x"), Sel(V("s"), N(1), N(2))),
			SecretIf(V("s"), []Stmt{Set("x", N(1))}, nil),
			PublicIf(V("x"), nil, []Stmt{Set("x", N(0))}),
			Loop(B(Lt, V("x"), N(10)), []Stmt{Set("x", B(Add, V("x"), N(1)))}),
		},
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestExprStrings(t *testing.T) {
	e := B(Add, V("x"), N(1))
	if e.String() != "(x + 1)" {
		t.Errorf("Bin.String = %q", e.String())
	}
	if s := At("a", V("i")).String(); s != "a[i]" {
		t.Errorf("Index.String = %q", s)
	}
	if s := Sel(V("c"), N(1), N(0)).String(); s != "sel(c, 1, 0)" {
		t.Errorf("Select.String = %q", s)
	}
}

func TestTaintThroughArrays(t *testing.T) {
	// A secret stored into an array taints the array; a branch on an
	// element read back must be flagged.
	p := &Program{
		Vars:   []*VarDecl{{Name: "k", Secret: true}, {Name: "x"}},
		Arrays: []*ArrayDecl{{Name: "buf", Len: 4}},
		Body: []Stmt{
			Put("buf", N(0), V("k")),
			PublicIf(At("buf", N(0)), []Stmt{Set("x", N(1))}, nil),
		},
	}
	rep := AnalyzeTaint(p)
	if len(rep.UnmarkedBranches) != 1 {
		t.Errorf("unmarked = %v", rep.UnmarkedBranches)
	}
}

func TestTaintImplicitFlowFromUnmarkedBranch(t *testing.T) {
	// Writes under an unmarked secret branch taint their targets; a later
	// branch on such a target must also be flagged.
	p := &Program{
		Vars: []*VarDecl{{Name: "k", Secret: true}, {Name: "x"}, {Name: "y"}},
		Body: []Stmt{
			PublicIf(V("k"), []Stmt{Set("x", N(1))}, nil), // flagged + taints x
			PublicIf(V("x"), []Stmt{Set("y", N(1))}, nil), // flagged via implicit flow
		},
	}
	rep := AnalyzeTaint(p)
	if len(rep.UnmarkedBranches) != 2 {
		t.Errorf("unmarked = %v, want 2 findings", rep.UnmarkedBranches)
	}
}

func TestTaintMarkedPublicNote(t *testing.T) {
	p := &Program{
		Vars: []*VarDecl{{Name: "pub"}, {Name: "x"}},
		Body: []Stmt{
			SecretIf(V("pub"), []Stmt{Set("x", N(1))}, nil),
		},
	}
	rep := AnalyzeTaint(p)
	if len(rep.MarkedPublic) != 1 {
		t.Errorf("marked-public = %v", rep.MarkedPublic)
	}
	if !rep.Clean() {
		t.Error("marked-public is advisory; the report should still be clean")
	}
}

func TestTaintSecretLoopAndIndex(t *testing.T) {
	p := &Program{
		Vars:   []*VarDecl{{Name: "k", Secret: true}, {Name: "x"}},
		Arrays: []*ArrayDecl{{Name: "t", Len: 8}},
		Body: []Stmt{
			Loop(V("k"), []Stmt{Set("x", N(1))}),
			Set("x", At("t", V("k"))),
		},
	}
	rep := AnalyzeTaint(p)
	if len(rep.SecretLoopConds) != 1 {
		t.Errorf("loop conds = %v", rep.SecretLoopConds)
	}
	if len(rep.SecretIndices) != 1 {
		t.Errorf("indices = %v", rep.SecretIndices)
	}
}
