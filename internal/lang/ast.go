// Package lang defines a tiny structured language used to express the
// paper's workloads once and lower them three ways (internal/compile):
// unprotected branches (baseline), SeMPE sJMP/eosJMP instrumentation, and
// FaCT-style constant-time expressions (CTE).
//
// The language is deliberately FaCT-shaped: integer scalars and fixed-size
// arrays, expressions, assignments, while loops, and if statements that can
// be marked secret (the paper's "@secret" directive). There are no function
// calls, function pointers, or floating point — the same restrictions the
// paper reports for FaCT.
package lang

import "fmt"

// Program is a compilation unit: declarations plus a statement body. The
// body ends with an implicit halt.
type Program struct {
	Name   string
	Vars   []*VarDecl
	Arrays []*ArrayDecl
	Body   []Stmt
}

// VarDecl declares a scalar (64-bit) variable, register-allocated by the
// compiler. Secret marks the value as sensitive; the compiler's taint
// checker warns when a secret value reaches an unprotected branch.
type VarDecl struct {
	Name   string
	Init   int64
	Secret bool
}

// ArrayDecl declares a fixed-size array of 64-bit words in data memory.
// LiveOut marks the contents as observable after the program ends (e.g. an
// output buffer); arrays written inside secret branch paths need shadow
// copies only when they are live-out or read later.
type ArrayDecl struct {
	Name    string
	Len     int
	Init    []uint64
	Secret  bool
	LiveOut bool
}

// Expr is an expression node.
type Expr interface {
	isExpr()
	String() string
}

// IntLit is an integer literal. A non-empty Slot names the literal as a
// patchable template slot: the compiler records the code offset of the
// load-immediate carrying it (and never folds it into a fused immediate
// form), so compile.Template can rewrite the value per run without
// recompiling. The slot name has no effect on program semantics.
type IntLit struct {
	V    int64
	Slot string
}

// VarRef reads a scalar variable.
type VarRef struct{ Name string }

// Index reads an array element: Arr[Idx].
type Index struct {
	Arr string
	Idx Expr
}

// BinOp enumerates binary operators.
type BinOp int

// Binary operators.
const (
	Add BinOp = iota
	Sub
	Mul
	Div
	Rem
	And
	Or
	Xor
	Shl
	Shr
	Lt  // signed <, yields 0/1
	Ltu // unsigned <
	Eq
	Ne
	Ge // signed >=
	Gt // signed >
)

var binOpNames = map[BinOp]string{
	Add: "+", Sub: "-", Mul: "*", Div: "/", Rem: "%",
	And: "&", Or: "|", Xor: "^", Shl: "<<", Shr: ">>",
	Lt: "<", Ltu: "<u", Eq: "==", Ne: "!=", Ge: ">=", Gt: ">",
}

// Bin applies a binary operator.
type Bin struct {
	Op   BinOp
	A, B Expr
}

// Select is a constant-time conditional expression: Cond != 0 ? A : B,
// lowered branch-free with full-width masks. It is the ct_select primitive
// constant-time code (FaCT's ternary on secrets) is built from; hand-written
// CT workload variants use it instead of secret ifs.
type Select struct {
	Cond Expr
	A, B Expr
}

func (IntLit) isExpr() {}
func (VarRef) isExpr() {}
func (Index) isExpr()  {}
func (Bin) isExpr()    {}
func (Select) isExpr() {}

func (e Select) String() string {
	return fmt.Sprintf("sel(%s, %s, %s)", e.Cond, e.A, e.B)
}

func (e IntLit) String() string { return fmt.Sprintf("%d", e.V) }
func (e VarRef) String() string { return e.Name }
func (e Index) String() string  { return fmt.Sprintf("%s[%s]", e.Arr, e.Idx) }
func (e Bin) String() string {
	return fmt.Sprintf("(%s %s %s)", e.A, binOpNames[e.Op], e.B)
}

// Stmt is a statement node.
type Stmt interface {
	isStmt()
}

// Assign sets a scalar: Name = E.
type Assign struct {
	Name string
	E    Expr
}

// Store writes an array element: Arr[Idx] = Val.
type Store struct {
	Arr string
	Idx Expr
	Val Expr
}

// If is a conditional. Secret marks the condition as secret-dependent: the
// SeMPE backend lowers it to sJMP/eosJMP, the CTE backend to masked
// straight-line code, and the plain backend to an ordinary branch (leaky).
type If struct {
	Cond   Expr
	Secret bool
	Then   []Stmt
	Else   []Stmt
}

// While loops while Cond is nonzero. Secret loop conditions are rejected by
// every backend (the paper's restriction: collapse or bound such loops).
type While struct {
	Cond Expr
	Body []Stmt
}

func (*Assign) isStmt() {}
func (*Store) isStmt()  {}
func (*If) isStmt()     {}
func (*While) isStmt()  {}

// Convenience constructors keep workload definitions readable.

// N builds an integer literal.
func N(v int64) Expr { return IntLit{V: v} }

// NS builds an integer literal carried in a named template patch slot. The
// same slot name may appear at several points in a program; a template
// patches every such site with one value, so all sites of a slot must be
// built with the same base literal.
func NS(slot string, v int64) Expr { return IntLit{V: v, Slot: slot} }

// V reads a variable.
func V(name string) Expr { return VarRef{name} }

// At reads arr[idx].
func At(arr string, idx Expr) Expr { return Index{arr, idx} }

// B applies a binary operator.
func B(op BinOp, a, b Expr) Expr { return Bin{op, a, b} }

// Sel builds a constant-time select expression.
func Sel(cond, a, b Expr) Expr { return Select{cond, a, b} }

// Set assigns a scalar.
func Set(name string, e Expr) Stmt { return &Assign{name, e} }

// Put stores to an array element.
func Put(arr string, idx, val Expr) Stmt { return &Store{arr, idx, val} }

// SecretIf builds a secret-dependent conditional.
func SecretIf(cond Expr, then, els []Stmt) Stmt {
	return &If{Cond: cond, Secret: true, Then: then, Else: els}
}

// PublicIf builds an ordinary conditional.
func PublicIf(cond Expr, then, els []Stmt) Stmt {
	return &If{Cond: cond, Then: then, Else: els}
}

// Loop builds a while loop.
func Loop(cond Expr, body []Stmt) Stmt { return &While{Cond: cond, Body: body} }

// Validate checks structural well-formedness: unique names, defined
// references, array bounds on constant indices, and no secret loop
// conditions.
func (p *Program) Validate() error {
	vars := map[string]bool{}
	arrays := map[string]int{}
	for _, v := range p.Vars {
		if vars[v.Name] || arrays[v.Name] != 0 {
			return fmt.Errorf("lang: duplicate declaration %q", v.Name)
		}
		vars[v.Name] = true
	}
	for _, a := range p.Arrays {
		if vars[a.Name] || arrays[a.Name] != 0 {
			return fmt.Errorf("lang: duplicate declaration %q", a.Name)
		}
		if a.Len <= 0 {
			return fmt.Errorf("lang: array %q has length %d", a.Name, a.Len)
		}
		if len(a.Init) > a.Len {
			return fmt.Errorf("lang: array %q init longer than array", a.Name)
		}
		arrays[a.Name] = a.Len
	}
	var checkExpr func(e Expr) error
	checkExpr = func(e Expr) error {
		switch e := e.(type) {
		case IntLit:
			return nil
		case VarRef:
			if !vars[e.Name] {
				return fmt.Errorf("lang: undefined variable %q", e.Name)
			}
		case Index:
			n, ok := arrays[e.Arr]
			if !ok {
				return fmt.Errorf("lang: undefined array %q", e.Arr)
			}
			if lit, isLit := e.Idx.(IntLit); isLit && (lit.V < 0 || lit.V >= int64(n)) {
				return fmt.Errorf("lang: %s[%d] out of bounds (len %d)", e.Arr, lit.V, n)
			}
			return checkExpr(e.Idx)
		case Bin:
			if err := checkExpr(e.A); err != nil {
				return err
			}
			return checkExpr(e.B)
		case Select:
			if err := checkExpr(e.Cond); err != nil {
				return err
			}
			if err := checkExpr(e.A); err != nil {
				return err
			}
			return checkExpr(e.B)
		}
		return nil
	}
	var checkStmts func(ss []Stmt) error
	checkStmts = func(ss []Stmt) error {
		for _, s := range ss {
			switch s := s.(type) {
			case *Assign:
				if !vars[s.Name] {
					return fmt.Errorf("lang: assignment to undefined %q", s.Name)
				}
				if err := checkExpr(s.E); err != nil {
					return err
				}
			case *Store:
				if _, ok := arrays[s.Arr]; !ok {
					return fmt.Errorf("lang: store to undefined array %q", s.Arr)
				}
				if err := checkExpr(s.Idx); err != nil {
					return err
				}
				if err := checkExpr(s.Val); err != nil {
					return err
				}
			case *If:
				if err := checkExpr(s.Cond); err != nil {
					return err
				}
				if err := checkStmts(s.Then); err != nil {
					return err
				}
				if err := checkStmts(s.Else); err != nil {
					return err
				}
			case *While:
				if err := checkExpr(s.Cond); err != nil {
					return err
				}
				if err := checkStmts(s.Body); err != nil {
					return err
				}
			default:
				return fmt.Errorf("lang: unknown statement %T", s)
			}
		}
		return nil
	}
	return checkStmts(p.Body)
}
