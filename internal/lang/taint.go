package lang

import "fmt"

// TaintReport lists places where secret data influences control flow or
// addresses without protection. It implements the paper's programming
// model: the developer marks secrets, and every conditional whose condition
// is secret-tainted must carry the Secret flag (so the compiler emits sJMP).
// Secret-dependent memory indices are reported too: they are outside
// SeMPE's threat model (the paper defers them to ORAM) and the programmer
// should know.
type TaintReport struct {
	UnmarkedBranches []string // secret condition on a non-secret if
	SecretLoopConds  []string // secret condition on a while (unsupported)
	SecretIndices    []string // secret-tainted array index
	MarkedPublic     []string // Secret flag on a condition with no taint (harmless)
}

// Clean reports whether no findings of consequence were produced.
func (r *TaintReport) Clean() bool {
	return len(r.UnmarkedBranches) == 0 && len(r.SecretLoopConds) == 0 &&
		len(r.SecretIndices) == 0
}

// AnalyzeTaint runs a flow-insensitive taint analysis over the program:
// variables declared Secret (and arrays declared Secret) are sources; any
// value computed from a tainted value is tainted; assignments propagate
// taint to their targets until a fixed point.
func AnalyzeTaint(p *Program) *TaintReport {
	tVar := map[string]bool{}
	tArr := map[string]bool{}
	for _, v := range p.Vars {
		if v.Secret {
			tVar[v.Name] = true
		}
	}
	for _, a := range p.Arrays {
		if a.Secret {
			tArr[a.Name] = true
		}
	}

	var exprTainted func(e Expr) bool
	exprTainted = func(e Expr) bool {
		switch e := e.(type) {
		case IntLit:
			return false
		case VarRef:
			return tVar[e.Name]
		case Index:
			return tArr[e.Arr] || exprTainted(e.Idx)
		case Bin:
			return exprTainted(e.A) || exprTainted(e.B)
		case Select:
			// A constant-time select propagates data taint but — unlike a
			// branch — creates no control-flow channel.
			return exprTainted(e.Cond) || exprTainted(e.A) || exprTainted(e.B)
		}
		return false
	}

	// Propagate to a fixed point: loops and cross-statement flows converge
	// because taint only ever grows.
	changed := true
	var propagate func(ss []Stmt, pathTaint bool)
	propagate = func(ss []Stmt, pathTaint bool) {
		for _, s := range ss {
			switch s := s.(type) {
			case *Assign:
				if (exprTainted(s.E) || pathTaint) && !tVar[s.Name] {
					tVar[s.Name] = true
					changed = true
				}
			case *Store:
				if (exprTainted(s.Val) || exprTainted(s.Idx) || pathTaint) && !tArr[s.Arr] {
					tArr[s.Arr] = true
					changed = true
				}
			case *If:
				// Writes under an *unmarked* secret-tainted condition carry
				// implicit flow: their targets become tainted. A marked
				// secret if is protected by the backend (sJMP dual-path or
				// CTE masking), which closes the control-flow channel; the
				// values written may still differ per path, but since both
				// paths compute from the same (public-pattern) state, the
				// analysis follows the paper's model and treats them as
				// data, not control leaks.
				pt := pathTaint || (exprTainted(s.Cond) && !s.Secret)
				propagate(s.Then, pt)
				propagate(s.Else, pt)
			case *While:
				pt := pathTaint || exprTainted(s.Cond)
				propagate(s.Body, pt)
			}
		}
	}
	for changed {
		changed = false
		propagate(p.Body, false)
	}

	// Report.
	rep := &TaintReport{}
	var indexTaintedIn func(e Expr) bool
	indexTaintedIn = func(e Expr) bool {
		switch e := e.(type) {
		case Index:
			return exprTainted(e.Idx) || indexTaintedIn(e.Idx)
		case Bin:
			return indexTaintedIn(e.A) || indexTaintedIn(e.B)
		case Select:
			return indexTaintedIn(e.Cond) || indexTaintedIn(e.A) || indexTaintedIn(e.B)
		}
		return false
	}
	var walk func(ss []Stmt)
	walk = func(ss []Stmt) {
		for _, s := range ss {
			switch s := s.(type) {
			case *Assign:
				if indexTaintedIn(s.E) {
					rep.SecretIndices = append(rep.SecretIndices,
						fmt.Sprintf("assignment to %s reads a secret-indexed element", s.Name))
				}
			case *Store:
				if exprTainted(s.Idx) {
					rep.SecretIndices = append(rep.SecretIndices,
						fmt.Sprintf("store to %s uses a secret index", s.Arr))
				}
				if indexTaintedIn(s.Val) {
					rep.SecretIndices = append(rep.SecretIndices,
						fmt.Sprintf("store to %s reads a secret-indexed element", s.Arr))
				}
			case *If:
				tainted := exprTainted(s.Cond)
				switch {
				case tainted && !s.Secret:
					rep.UnmarkedBranches = append(rep.UnmarkedBranches,
						fmt.Sprintf("if (%s) has a secret-dependent condition but no @secret mark", s.Cond))
				case !tainted && s.Secret:
					rep.MarkedPublic = append(rep.MarkedPublic,
						fmt.Sprintf("if (%s) is marked secret but its condition is public", s.Cond))
				}
				walk(s.Then)
				walk(s.Else)
			case *While:
				if exprTainted(s.Cond) {
					rep.SecretLoopConds = append(rep.SecretLoopConds,
						fmt.Sprintf("while (%s) has a secret-dependent condition", s.Cond))
				}
				walk(s.Body)
			}
		}
	}
	walk(p.Body)
	return rep
}
