package lang

import "testing"

func deepThenChain(depth int, leaf Stmt) *Program {
	body := []Stmt{leaf}
	for i := depth - 1; i >= 0; i-- {
		body = []Stmt{SecretIf(B(And, B(Shr, V("s"), N(int64(i))), N(1)), body, nil)}
	}
	return &Program{
		Vars: []*VarDecl{{Name: "s", Init: 7, Secret: true}, {Name: "x", Init: 0}},
		Body: body,
	}
}

func countMaxSecretDepth(ss []Stmt) int {
	max := 0
	var walk func(ss []Stmt, d int)
	walk = func(ss []Stmt, d int) {
		for _, s := range ss {
			switch s := s.(type) {
			case *If:
				nd := d
				if s.Secret {
					nd++
				}
				if nd > max {
					max = nd
				}
				walk(s.Then, nd)
				walk(s.Else, nd)
			case *While:
				walk(s.Body, d)
			}
		}
	}
	walk(ss, 0)
	return max
}

func TestCollapseNestedReducesDepth(t *testing.T) {
	p := deepThenChain(5, Set("x", N(1)))
	if d := countMaxSecretDepth(p.Body); d != 5 {
		t.Fatalf("pre-collapse depth %d, want 5", d)
	}
	n := CollapseNested(p)
	if n != 4 {
		t.Errorf("collapses = %d, want 4", n)
	}
	if d := countMaxSecretDepth(p.Body); d != 1 {
		t.Errorf("post-collapse depth %d, want 1", d)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCollapseStopsAtElse(t *testing.T) {
	// An else branch blocks collapsing (the semantics differ).
	p := &Program{
		Vars: []*VarDecl{{Name: "s", Secret: true}, {Name: "x"}},
		Body: []Stmt{
			SecretIf(V("s"),
				[]Stmt{SecretIf(V("s"), []Stmt{Set("x", N(1))}, []Stmt{Set("x", N(2))})},
				nil),
		},
	}
	if n := CollapseNested(p); n != 0 {
		t.Errorf("collapsed across an else branch: %d", n)
	}
}

func TestCollapseStopsAtPublic(t *testing.T) {
	// A public inner if must not merge into a secret condition.
	p := &Program{
		Vars: []*VarDecl{{Name: "s", Secret: true}, {Name: "x"}},
		Body: []Stmt{
			SecretIf(V("s"),
				[]Stmt{PublicIf(V("x"), []Stmt{Set("x", N(1))}, nil)},
				nil),
		},
	}
	if n := CollapseNested(p); n != 0 {
		t.Errorf("collapsed a public if: %d", n)
	}
}

func TestCollapseInsideLoopsAndElses(t *testing.T) {
	inner := SecretIf(V("s"), []Stmt{SecretIf(V("x"), []Stmt{Set("x", N(3))}, nil)}, nil)
	p := &Program{
		Vars: []*VarDecl{{Name: "s", Secret: true}, {Name: "x"}},
		Body: []Stmt{
			Loop(B(Lt, V("x"), N(2)), []Stmt{
				PublicIf(V("x"), nil, []Stmt{inner}),
				Set("x", B(Add, V("x"), N(1))),
			}),
		},
	}
	if n := CollapseNested(p); n != 1 {
		t.Errorf("collapses = %d, want 1 (inside loop/else)", n)
	}
}
