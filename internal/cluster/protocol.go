// The cluster wire protocol: what a coordinator POSTs to a worker's
// /shards endpoint and what comes back. A shard is an arbitrary subset of
// a scenario's expanded grid, named by row-major point indices — indices
// rather than ranges because the coordinator re-dispatches store-missed
// and failed points, which are rarely contiguous.
package cluster

import (
	"encoding/json"

	"repro/internal/scenario"
)

// ShardPath is the worker endpoint (POST).
const ShardPath = "/shards"

// ShardRequest asks a worker to simulate a subset of a scenario's grid.
type ShardRequest struct {
	// Scenario resolves the sweep through the worker's registry.
	Scenario string `json:"scenario"`
	// Spec is the full sweep spec; the worker expands the same grid the
	// coordinator did.
	Spec scenario.Spec `json:"spec"`
	// Indices are the row-major grid points to simulate.
	Indices []int `json:"indices"`
	// Total is the coordinator's expanded grid size. A worker whose
	// expansion disagrees (diverged code, different registry) rejects the
	// shard rather than return rows from a different grid.
	Total int `json:"total"`
	// Version is the coordinator's store.CodeVersion; a worker built at a
	// different version rejects the shard so mixed fleets fail loudly
	// instead of merging incompatible rows.
	Version string `json:"version"`
}

// ShardResponse carries one JSON-encoded row per requested index, in
// request order.
type ShardResponse struct {
	Rows   []json.RawMessage `json:"rows"`
	Millis float64           `json:"elapsed_ms"`
}
