// Internal tests (package cluster): white-box pins on coordinator wiring.
// The behavioral suite lives in cluster_test.go (external package).
package cluster

import (
	"net/http"
	"testing"
)

// TestCoordinatorsShareKeepAliveClient pins the dispatch-client reuse: every
// coordinator built without an explicit client must use the one process-wide
// keep-alive client, so per-scenario coordinators (sempe-sweep builds one per
// scenario) reuse warm worker connections instead of re-dialing. The
// byte-identity of sharded results over this client is pinned separately by
// TestKeyExtractThroughCluster and TestDistributedMatchesSerial.
func TestCoordinatorsShareKeepAliveClient(t *testing.T) {
	a := New(Options{})
	b := New(Options{})
	if a.opts.Client != b.opts.Client {
		t.Error("two default coordinators got different clients; shard dispatch re-dials per coordinator")
	}
	if a.opts.Client != sharedClient {
		t.Error("default coordinator does not use the shared keep-alive client")
	}
	tr, ok := sharedClient.Transport.(*http.Transport)
	if !ok {
		t.Fatalf("shared client transport is %T, want *http.Transport", sharedClient.Transport)
	}
	if tr.DisableKeepAlives {
		t.Error("shared transport has keep-alives disabled")
	}
	if tr.MaxIdleConnsPerHost < 2 {
		t.Errorf("MaxIdleConnsPerHost = %d; parallel shard dispatch to one worker will re-dial", tr.MaxIdleConnsPerHost)
	}
	own := &http.Client{}
	if c := New(Options{Client: own}); c.opts.Client != own {
		t.Error("explicit Options.Client was not honored")
	}
}
