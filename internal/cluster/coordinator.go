// Package cluster distributes scenario sweeps across a fleet of worker
// processes (sempe-serve -worker). The coordinator expands the grid
// exactly as a local engine run would, serves every point it can from the
// on-disk store, chunks the rest into shards, dispatches them over HTTP,
// and merges rows back in row-major order — so the merged result is
// bit-identical to a serial registry run. Worker failure is survived by
// bounded retry: a failed shard is re-queued for the surviving workers,
// and a worker that keeps failing is dropped from the fleet.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/scenario"
	"repro/internal/store"
)

// ErrNotShardable marks a scenario whose sweep rows cannot round-trip
// through JSON (no DecodeRow); run those locally through the engine.
var ErrNotShardable = errors.New("scenario's sweep is not shardable (no row codec)")

// ErrNoReachableWorkers marks a fleet in which the startup health probe
// found no live worker at all — a configuration or deployment problem,
// reported before any shard is built rather than discovered through a
// storm of mid-sweep retries.
var ErrNoReachableWorkers = errors.New("cluster: no worker reachable at startup")

// Options configures a coordinator.
type Options struct {
	// Workers are worker base URLs ("http://host:8080"). Empty means
	// compute locally in-process — the sweep still flows through the store,
	// which is how a warm store is built or verified without a fleet.
	Workers []string
	// ShardSize is the number of grid points per dispatched shard; 0
	// means 8. Smaller shards spread better and lose less work to a dying
	// worker; larger shards amortize HTTP overhead.
	ShardSize int
	// MaxAttempts bounds how many times one shard is dispatched before
	// the sweep fails; 0 means 3.
	MaxAttempts int
	// WorkerFailLimit drops a worker from the fleet after this many
	// consecutive request failures; 0 means 2.
	WorkerFailLimit int
	// Timeout bounds one shard request; 0 means 10 minutes.
	Timeout time.Duration
	// Client is the HTTP client; nil means the process-wide shared
	// keep-alive client (see sharedClient).
	Client *http.Client
	// Store, when set, serves already-computed points without dispatching
	// and persists every newly computed row.
	Store *store.Store
}

// Report describes where a distributed run's points came from and what
// the dispatcher had to survive.
type Report struct {
	Points      int `json:"points"`
	StorePoints int `json:"store_points"` // served from the on-disk store
	Shards      int `json:"shards"`       // shards built for the missing points
	Dispatched  int `json:"dispatched"`   // shard POSTs attempted
	Retries     int `json:"retries"`      // failed POSTs that were re-queued
	// Unreachable lists workers the startup health probe dropped before
	// the first dispatch; DroppedWorkers lists workers dropped mid-sweep
	// after repeated shard failures.
	Unreachable    []string `json:"unreachable_workers,omitempty"`
	DroppedWorkers []string `json:"dropped_workers,omitempty"`
}

// Coordinator shards sweeps across workers. Safe for sequential reuse;
// one Run at a time.
type Coordinator struct {
	opts Options
}

// sharedClient is the process-wide default shard-dispatch client. Every
// coordinator built without an explicit Options.Client reuses it, so
// repeated shard POSTs to the same worker ride one keep-alive connection
// pool instead of re-dialing per coordinator — a sweep driver that builds
// a coordinator per scenario (sempe-sweep, the experiment harness) would
// otherwise discard warm connections between scenarios. The transport
// mirrors http.DefaultTransport's dial behavior with keep-alives pinned on
// and enough idle connections per worker to cover parallel dispatch.
var sharedClient = &http.Client{
	Transport: &http.Transport{
		Proxy: http.ProxyFromEnvironment,
		DialContext: (&net.Dialer{
			Timeout:   30 * time.Second,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		ForceAttemptHTTP2:   true,
		MaxIdleConns:        100,
		MaxIdleConnsPerHost: 16,
		IdleConnTimeout:     90 * time.Second,
	},
}

// New builds a coordinator, applying option defaults.
func New(opts Options) *Coordinator {
	if opts.ShardSize <= 0 {
		opts.ShardSize = 8
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 3
	}
	if opts.WorkerFailLimit <= 0 {
		opts.WorkerFailLimit = 2
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 10 * time.Minute
	}
	if opts.Client == nil {
		opts.Client = sharedClient
	}
	return &Coordinator{opts: opts}
}

// Run executes the scenario's sweep — store first, then the worker fleet
// (or in-process when no workers are configured) — and renders the same
// Result a local engine run would produce, plus a Report of point
// provenance.
func (c *Coordinator) Run(ctx context.Context, sc *scenario.Scenario, spec scenario.Spec) (*scenario.Result, *Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	sw := sc.Sweep
	if !sw.Shardable() {
		return nil, nil, fmt.Errorf("%s: %w", sc.Name, ErrNotShardable)
	}
	axes, err := sw.Axes(spec)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", sc.Name, err)
	}
	pts := scenario.Expand(axes)
	specKey := spec.Key()
	rep := &Report{Points: len(pts)}
	start := time.Now()

	rows := make([]any, len(pts))
	var missing []int
	for i := range pts {
		if c.opts.Store != nil {
			if raw, ok := c.opts.Store.GetRow(sw.ID, specKey, i); ok {
				if row, err := sw.DecodeRow(raw); err == nil {
					rows[i] = row
					rep.StorePoints++
					continue
				}
			}
		}
		missing = append(missing, i)
	}

	if len(missing) > 0 {
		if len(c.opts.Workers) == 0 {
			err = c.runLocal(ctx, sw, spec, specKey, axes, pts, missing, rows)
		} else {
			err = c.dispatch(ctx, sc.Name, sw, spec, specKey, pts, missing, rows, rep)
		}
		if err != nil {
			return nil, rep, fmt.Errorf("%s: %w", sc.Name, err)
		}
	}

	return &scenario.Result{
		Scenario:      sc.Name,
		Spec:          spec,
		Axes:          axes,
		Points:        len(pts),
		Tables:        sc.Render(spec, rows),
		ElapsedMillis: float64(time.Since(start)) / float64(time.Millisecond),
		Rows:          rows,
	}, rep, nil
}

// runLocal computes the missing points in-process (no fleet configured),
// persisting each row as it lands.
func (c *Coordinator) runLocal(ctx context.Context, sw *scenario.Sweep, spec scenario.Spec, specKey string, axes []scenario.Axis, pts []scenario.Point, missing []int, rows []any) error {
	return scenario.Grid(len(missing), spec.Workers, func(j int) error {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		i := missing[j]
		row, err := sw.Run(spec, pts[i])
		if err != nil {
			return fmt.Errorf("point %v: %w", pts[i].Labels(axes), err)
		}
		rows[i] = row
		c.putRow(sw, specKey, i, row)
		return nil
	})
}

// putRow persists one computed row, best-effort: a full disk never fails
// a sweep whose rows are already in memory.
func (c *Coordinator) putRow(sw *scenario.Sweep, specKey string, i int, row any) {
	if c.opts.Store == nil {
		return
	}
	if raw, err := json.Marshal(row); err == nil {
		c.opts.Store.PutRow(sw.ID, specKey, i, raw)
	}
}

// task is one shard's dispatch state.
type task struct {
	indices  []int
	attempts int
}

// probeTimeout bounds one startup health probe; liveness answers in
// milliseconds, so anything slower is as good as down.
const probeTimeout = 10 * time.Second

// probeWorkers GETs every worker's /healthz concurrently before the first
// dispatch. Unreachable workers are dropped from the fleet up front and
// recorded in the report — a dead address would otherwise surface as
// puzzling mid-sweep retries — and an entirely unreachable fleet fails
// fast with ErrNoReachableWorkers.
func (c *Coordinator) probeWorkers(ctx context.Context, rep *Report) ([]string, error) {
	timeout := probeTimeout
	if c.opts.Timeout < timeout {
		timeout = c.opts.Timeout
	}
	ok := make([]bool, len(c.opts.Workers))
	errs := make([]error, len(c.opts.Workers))
	var wg sync.WaitGroup
	for i, url := range c.opts.Workers {
		wg.Add(1)
		go func(i int, url string) {
			defer wg.Done()
			rctx, cancel := context.WithTimeout(ctx, timeout)
			defer cancel()
			req, err := http.NewRequestWithContext(rctx, http.MethodGet,
				strings.TrimRight(url, "/")+"/healthz", nil)
			if err != nil {
				errs[i] = err
				return
			}
			resp, err := c.opts.Client.Do(req)
			if err != nil {
				errs[i] = err
				return
			}
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("health probe: %s", resp.Status)
				return
			}
			ok[i] = true
		}(i, url)
	}
	wg.Wait()

	var alive []string
	for i, url := range c.opts.Workers {
		if ok[i] {
			alive = append(alive, url)
			continue
		}
		rep.Unreachable = append(rep.Unreachable, url)
	}
	if len(alive) == 0 {
		first := errs[0]
		for _, err := range errs {
			if err != nil {
				first = err
				break
			}
		}
		return nil, fmt.Errorf("%w: %d workers probed, first failure: %v",
			ErrNoReachableWorkers, len(c.opts.Workers), first)
	}
	return alive, nil
}

// dispatch fans the missing points across the worker fleet (the workers
// the startup health probe found alive).
func (c *Coordinator) dispatch(ctx context.Context, name string, sw *scenario.Sweep, spec scenario.Spec, specKey string, pts []scenario.Point, missing []int, rows []any, rep *Report) error {
	workers, err := c.probeWorkers(ctx, rep)
	if err != nil {
		return err
	}
	var tasks []*task
	for lo := 0; lo < len(missing); lo += c.opts.ShardSize {
		hi := min(lo+c.opts.ShardSize, len(missing))
		tasks = append(tasks, &task{indices: missing[lo:hi]})
	}
	rep.Shards = len(tasks)

	// Capacity covers every send that can ever happen (initial queue plus
	// every retry), so a worker goroutine re-queueing never blocks.
	pending := make(chan *task, len(tasks)*c.opts.MaxAttempts)
	for _, t := range tasks {
		pending <- t
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	allDone := make(chan struct{})
	var (
		mu        sync.Mutex
		remaining = len(tasks)
		alive     = len(workers)
		firstErr  error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}

	var wg sync.WaitGroup
	for _, url := range workers {
		wg.Add(1)
		go func(url string) {
			defer wg.Done()
			consecutive := 0
			for {
				var t *task
				select {
				case <-cctx.Done():
					return
				case <-allDone:
					return
				case t = <-pending:
				}
				mu.Lock()
				rep.Dispatched++
				mu.Unlock()
				resp, fatal, err := c.postShard(cctx, url, ShardRequest{
					Scenario: name,
					Spec:     spec,
					Indices:  t.indices,
					Total:    len(pts),
					Version:  store.CodeVersion,
				})
				if err != nil {
					if cctx.Err() != nil {
						return
					}
					if fatal {
						fail(fmt.Errorf("worker %s: %w", url, err))
						return
					}
					// Transient failure: re-queue the shard for whoever is
					// still alive, and drop this worker once it has failed
					// WorkerFailLimit shards in a row.
					mu.Lock()
					rep.Retries++
					t.attempts++
					exhausted := t.attempts >= c.opts.MaxAttempts
					mu.Unlock()
					if exhausted {
						fail(fmt.Errorf("shard %v failed %d times, last on %s: %w",
							shardLabel(t.indices), t.attempts, url, err))
						return
					}
					pending <- t
					consecutive++
					if consecutive >= c.opts.WorkerFailLimit {
						mu.Lock()
						rep.DroppedWorkers = append(rep.DroppedWorkers, url)
						alive--
						last := alive == 0
						mu.Unlock()
						if last {
							fail(fmt.Errorf("no surviving workers (last failure on %s: %v)", url, err))
						}
						return
					}
					continue
				}
				consecutive = 0
				if len(resp.Rows) != len(t.indices) {
					fail(fmt.Errorf("worker %s: shard %v returned %d rows, want %d",
						url, shardLabel(t.indices), len(resp.Rows), len(t.indices)))
					return
				}
				for j, idx := range t.indices {
					row, err := sw.DecodeRow(resp.Rows[j])
					if err != nil {
						fail(fmt.Errorf("worker %s: point %d: undecodable row: %w", url, idx, err))
						return
					}
					rows[idx] = row
					if c.opts.Store != nil {
						c.opts.Store.PutRow(sw.ID, specKey, idx, resp.Rows[j])
					}
				}
				mu.Lock()
				remaining--
				done := remaining == 0
				mu.Unlock()
				if done {
					close(allDone)
					return
				}
			}
		}(url)
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if firstErr != nil {
		return firstErr
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if remaining > 0 {
		return fmt.Errorf("%d shards undispatched with no surviving workers", remaining)
	}
	return nil
}

// postShard performs one shard request. fatal marks errors that retrying
// on another worker cannot fix: a rejected request (bad spec, unknown
// scenario, version or grid mismatch) will be rejected by every worker.
func (c *Coordinator) postShard(ctx context.Context, url string, req ShardRequest) (resp *ShardResponse, fatal bool, err error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, true, err
	}
	rctx, rcancel := context.WithTimeout(ctx, c.opts.Timeout)
	defer rcancel()
	hreq, err := http.NewRequestWithContext(rctx, http.MethodPost,
		strings.TrimRight(url, "/")+ShardPath, bytes.NewReader(body))
	if err != nil {
		return nil, true, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := c.opts.Client.Do(hreq)
	if err != nil {
		return nil, false, err
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(hresp.Body, 4096))
		err := fmt.Errorf("shard request: %s: %s", hresp.Status, strings.TrimSpace(string(msg)))
		return nil, hresp.StatusCode >= 400 && hresp.StatusCode < 500, err
	}
	var out ShardResponse
	if err := json.NewDecoder(hresp.Body).Decode(&out); err != nil {
		return nil, false, fmt.Errorf("shard response: %w", err)
	}
	return &out, false, nil
}

func shardLabel(indices []int) string {
	if len(indices) == 0 {
		return "[]"
	}
	return fmt.Sprintf("[%d..%d:%d]", indices[0], indices[len(indices)-1], len(indices))
}
