// Package cluster distributes scenario sweeps across a fleet of worker
// processes (sempe-serve -worker). The coordinator expands the grid
// exactly as a local engine run would, serves every point it can from the
// on-disk store, chunks the rest into shards, dispatches them over HTTP,
// and merges rows back in row-major order — so the merged result is
// bit-identical to a serial registry run. Worker failure is survived by
// bounded retry: a failed shard is re-queued for the surviving workers,
// and a worker that keeps failing is dropped from the fleet.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/store"
)

// ErrNotShardable marks a scenario whose sweep rows cannot round-trip
// through JSON (no DecodeRow); run those locally through the engine.
var ErrNotShardable = errors.New("scenario's sweep is not shardable (no row codec)")

// ErrNoReachableWorkers marks a fleet in which the startup health probe
// found no live worker at all — a configuration or deployment problem,
// reported before any shard is built rather than discovered through a
// storm of mid-sweep retries.
var ErrNoReachableWorkers = errors.New("cluster: no worker reachable at startup")

// Options configures a coordinator.
type Options struct {
	// Workers are worker base URLs ("http://host:8080"). Empty means
	// compute locally in-process — the sweep still flows through the store,
	// which is how a warm store is built or verified without a fleet.
	Workers []string
	// ShardSize is the number of grid points per dispatched shard; 0
	// means 8. Smaller shards spread better and lose less work to a dying
	// worker; larger shards amortize HTTP overhead.
	ShardSize int
	// MaxAttempts bounds how many times one shard is dispatched before
	// the sweep fails; 0 means 3.
	MaxAttempts int
	// WorkerFailLimit drops a worker from the fleet after this many
	// consecutive request failures; 0 means 2.
	WorkerFailLimit int
	// Timeout bounds one shard request; 0 means 10 minutes.
	Timeout time.Duration
	// Client is the HTTP client; nil means the process-wide shared
	// keep-alive client (see sharedClient).
	Client *http.Client
	// Store, when set, serves already-computed points without dispatching
	// and persists every newly computed row.
	Store *store.Store
	// Journal, when set, receives the coordinator's span stream (probe,
	// dispatch, retry, merge) — a front end passes the run's journal so
	// GET /runs/{id}/events shows the distributed execution. Nil means the
	// coordinator journals into a private journal; either way the events
	// are embedded in the provenance Report.
	Journal *obs.Journal
	// Logger receives structured dispatch logs (unreachable workers, shard
	// retries, dropped workers — each with the worker address and reason).
	// Nil means slog.Default().
	Logger *slog.Logger
}

// Report describes where a distributed run's points came from and what
// the dispatcher had to survive.
type Report struct {
	Points      int `json:"points"`
	StorePoints int `json:"store_points"` // served from the on-disk store
	Shards      int `json:"shards"`       // shards built for the missing points
	Dispatched  int `json:"dispatched"`   // shard POSTs attempted
	Retries     int `json:"retries"`      // failed POSTs that were re-queued
	// Unreachable lists workers the startup health probe dropped before
	// the first dispatch; DroppedWorkers lists workers dropped mid-sweep
	// after repeated shard failures.
	Unreachable    []string `json:"unreachable_workers,omitempty"`
	DroppedWorkers []string `json:"dropped_workers,omitempty"`
	// ShardStats records, per shard, the wall-clock duration of the
	// successful dispatch, the worker that completed it, and how many
	// attempts it took — slow or flaky workers are identifiable post-run.
	ShardStats []ShardStat `json:"shard_stats,omitempty"`
	// WorkerStats aggregates per-worker health and throughput.
	WorkerStats []WorkerStat `json:"worker_stats,omitempty"`
	// Events embeds the coordinator's run-event journal: ordered spans for
	// the health probe and every shard dispatch, retry, and merge.
	Events []obs.Event `json:"events,omitempty"`
}

// ShardStat is one shard's dispatch provenance.
type ShardStat struct {
	Shard    int     `json:"shard"`
	Indices  string  `json:"indices"` // "[lo..hi:n]" grid-point label
	Points   int     `json:"points"`
	Worker   string  `json:"worker,omitempty"` // worker that completed it ("" = local/store)
	Attempts int     `json:"attempts"`
	Millis   float64 `json:"millis"` // wall clock of the successful dispatch
}

// WorkerStat is one worker's health and throughput over the sweep.
type WorkerStat struct {
	URL          string  `json:"url"`
	Healthy      bool    `json:"healthy"`           // startup probe outcome
	Dropped      bool    `json:"dropped,omitempty"` // dropped mid-sweep
	Shards       int     `json:"shards"`            // shards completed
	Points       int     `json:"points"`
	Failures     int     `json:"failures"` // failed dispatches charged to it
	BusyMillis   float64 `json:"busy_millis"`
	PointsPerSec float64 `json:"points_per_sec"`
}

// Coordinator shards sweeps across workers. Safe for sequential reuse;
// one Run at a time.
type Coordinator struct {
	opts Options
	log  *slog.Logger
}

// sharedClient is the process-wide default shard-dispatch client. Every
// coordinator built without an explicit Options.Client reuses it, so
// repeated shard POSTs to the same worker ride one keep-alive connection
// pool instead of re-dialing per coordinator — a sweep driver that builds
// a coordinator per scenario (sempe-sweep, the experiment harness) would
// otherwise discard warm connections between scenarios. The transport
// mirrors http.DefaultTransport's dial behavior with keep-alives pinned on
// and enough idle connections per worker to cover parallel dispatch.
var sharedClient = &http.Client{
	Transport: &http.Transport{
		Proxy: http.ProxyFromEnvironment,
		DialContext: (&net.Dialer{
			Timeout:   30 * time.Second,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		ForceAttemptHTTP2:   true,
		MaxIdleConns:        100,
		MaxIdleConnsPerHost: 16,
		IdleConnTimeout:     90 * time.Second,
	},
}

// New builds a coordinator, applying option defaults.
func New(opts Options) *Coordinator {
	if opts.ShardSize <= 0 {
		opts.ShardSize = 8
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 3
	}
	if opts.WorkerFailLimit <= 0 {
		opts.WorkerFailLimit = 2
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 10 * time.Minute
	}
	if opts.Client == nil {
		opts.Client = sharedClient
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.Default()
	}
	return &Coordinator{opts: opts, log: logger}
}

// Run executes the scenario's sweep — store first, then the worker fleet
// (or in-process when no workers are configured) — and renders the same
// Result a local engine run would produce, plus a Report of point
// provenance.
func (c *Coordinator) Run(ctx context.Context, sc *scenario.Scenario, spec scenario.Spec) (*scenario.Result, *Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	sw := sc.Sweep
	if !sw.Shardable() {
		return nil, nil, fmt.Errorf("%s: %w", sc.Name, ErrNotShardable)
	}
	axes, err := sw.Axes(spec)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", sc.Name, err)
	}
	pts := scenario.Expand(axes)
	specKey := spec.Key()
	rep := &Report{Points: len(pts)}
	start := time.Now()

	// The journal records the distributed execution: every span lands in
	// rep.Events, and a caller-supplied journal (the serve front end's
	// per-run journal) additionally surfaces them on /runs/{id}/events.
	j := c.opts.Journal
	if j == nil {
		j = obs.NewJournal()
	}
	sweepSpan := j.Begin("cluster_sweep", obs.Fields{
		"scenario": sc.Name, "points": len(pts), "workers": len(c.opts.Workers)})

	rows := make([]any, len(pts))
	var missing []int
	for i := range pts {
		if c.opts.Store != nil {
			if raw, ok := c.opts.Store.GetRow(sw.ID, specKey, i); ok {
				if row, err := sw.DecodeRow(raw); err == nil {
					rows[i] = row
					rep.StorePoints++
					continue
				}
			}
		}
		missing = append(missing, i)
	}
	if c.opts.Store != nil {
		j.Event("store_scan", obs.Fields{"points": len(pts), "store_points": rep.StorePoints})
	}

	if len(missing) > 0 {
		if len(c.opts.Workers) == 0 {
			localSpan := j.Begin("local", obs.Fields{"points": len(missing)})
			err = c.runLocal(ctx, sw, spec, specKey, axes, pts, missing, rows)
			if err != nil {
				localSpan.End(obs.Fields{"error": err.Error()})
			} else {
				localSpan.End(nil)
			}
		} else {
			err = c.dispatch(ctx, sc.Name, sw, spec, specKey, pts, missing, rows, rep, j)
		}
		if err != nil {
			sweepSpan.End(obs.Fields{"error": err.Error()})
			rep.Events = j.Events()
			return nil, rep, fmt.Errorf("%s: %w", sc.Name, err)
		}
	}
	sweepSpan.End(nil)
	rep.Events = j.Events()

	return &scenario.Result{
		Scenario:      sc.Name,
		Spec:          spec,
		Axes:          axes,
		Points:        len(pts),
		Tables:        sc.Render(spec, rows),
		ElapsedMillis: float64(time.Since(start)) / float64(time.Millisecond),
		Rows:          rows,
	}, rep, nil
}

// runLocal computes the missing points in-process (no fleet configured),
// persisting each row as it lands.
func (c *Coordinator) runLocal(ctx context.Context, sw *scenario.Sweep, spec scenario.Spec, specKey string, axes []scenario.Axis, pts []scenario.Point, missing []int, rows []any) error {
	return scenario.Grid(len(missing), spec.Workers, func(j int) error {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		i := missing[j]
		row, err := sw.Run(spec, pts[i])
		if err != nil {
			return fmt.Errorf("point %v: %w", pts[i].Labels(axes), err)
		}
		rows[i] = row
		c.putRow(sw, specKey, i, row)
		return nil
	})
}

// putRow persists one computed row, best-effort: a full disk never fails
// a sweep whose rows are already in memory.
func (c *Coordinator) putRow(sw *scenario.Sweep, specKey string, i int, row any) {
	if c.opts.Store == nil {
		return
	}
	if raw, err := json.Marshal(row); err == nil {
		c.opts.Store.PutRow(sw.ID, specKey, i, raw)
	}
}

// task is one shard's dispatch state.
type task struct {
	shard    int // position in the shard list, for stats and spans
	indices  []int
	attempts int
}

// probeTimeout bounds one startup health probe; liveness answers in
// milliseconds, so anything slower is as good as down.
const probeTimeout = 10 * time.Second

// probeWorkers GETs every worker's /healthz concurrently before the first
// dispatch. Unreachable workers are dropped from the fleet up front and
// recorded in the report — a dead address would otherwise surface as
// puzzling mid-sweep retries — and an entirely unreachable fleet fails
// fast with ErrNoReachableWorkers.
func (c *Coordinator) probeWorkers(ctx context.Context, rep *Report, j *obs.Journal) ([]string, error) {
	probeSpan := j.Begin("probe", obs.Fields{"workers": len(c.opts.Workers)})
	timeout := probeTimeout
	if c.opts.Timeout < timeout {
		timeout = c.opts.Timeout
	}
	ok := make([]bool, len(c.opts.Workers))
	errs := make([]error, len(c.opts.Workers))
	var wg sync.WaitGroup
	for i, url := range c.opts.Workers {
		wg.Add(1)
		go func(i int, url string) {
			defer wg.Done()
			rctx, cancel := context.WithTimeout(ctx, timeout)
			defer cancel()
			req, err := http.NewRequestWithContext(rctx, http.MethodGet,
				strings.TrimRight(url, "/")+"/healthz", nil)
			if err != nil {
				errs[i] = err
				return
			}
			resp, err := c.opts.Client.Do(req)
			if err != nil {
				errs[i] = err
				return
			}
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("health probe: %s", resp.Status)
				return
			}
			ok[i] = true
		}(i, url)
	}
	wg.Wait()

	var alive []string
	for i, url := range c.opts.Workers {
		if ok[i] {
			alive = append(alive, url)
			continue
		}
		rep.Unreachable = append(rep.Unreachable, url)
		reason := "unknown"
		if errs[i] != nil {
			reason = errs[i].Error()
		}
		c.log.Warn("cluster: worker unreachable at startup, dropped from fleet",
			"worker", url, "reason", reason)
		j.Event("worker_unreachable", obs.Fields{"worker": url, "reason": reason})
	}
	probeSpan.End(obs.Fields{"alive": len(alive)})
	if len(alive) == 0 {
		first := errs[0]
		for _, err := range errs {
			if err != nil {
				first = err
				break
			}
		}
		return nil, fmt.Errorf("%w: %d workers probed, first failure: %v",
			ErrNoReachableWorkers, len(c.opts.Workers), first)
	}
	return alive, nil
}

// dispatch fans the missing points across the worker fleet (the workers
// the startup health probe found alive).
func (c *Coordinator) dispatch(ctx context.Context, name string, sw *scenario.Sweep, spec scenario.Spec, specKey string, pts []scenario.Point, missing []int, rows []any, rep *Report, j *obs.Journal) error {
	wstats := make(map[string]*WorkerStat, len(c.opts.Workers))
	for _, url := range c.opts.Workers {
		wstats[url] = &WorkerStat{URL: url}
	}
	workers, err := c.probeWorkers(ctx, rep, j)
	if err != nil {
		return err
	}
	for _, url := range workers {
		wstats[url].Healthy = true
	}
	var tasks []*task
	for lo := 0; lo < len(missing); lo += c.opts.ShardSize {
		hi := min(lo+c.opts.ShardSize, len(missing))
		tasks = append(tasks, &task{shard: len(tasks), indices: missing[lo:hi]})
	}
	rep.Shards = len(tasks)
	shardStats := make([]*ShardStat, len(tasks))

	// Capacity covers every send that can ever happen (initial queue plus
	// every retry), so a worker goroutine re-queueing never blocks.
	pending := make(chan *task, len(tasks)*c.opts.MaxAttempts)
	for _, t := range tasks {
		pending <- t
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	allDone := make(chan struct{})
	var (
		mu        sync.Mutex
		remaining = len(tasks)
		alive     = len(workers)
		firstErr  error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}

	var wg sync.WaitGroup
	for _, url := range workers {
		wg.Add(1)
		go func(url string) {
			defer wg.Done()
			consecutive := 0
			for {
				var t *task
				select {
				case <-cctx.Done():
					return
				case <-allDone:
					return
				case t = <-pending:
				}
				mu.Lock()
				rep.Dispatched++
				mu.Unlock()
				label := shardLabel(t.indices)
				dispatchSpan := j.Begin("dispatch", obs.Fields{
					"shard": t.shard, "indices": label, "worker": url, "points": len(t.indices)})
				t0 := time.Now()
				resp, fatal, err := c.postShard(cctx, url, ShardRequest{
					Scenario: name,
					Spec:     spec,
					Indices:  t.indices,
					Total:    len(pts),
					Version:  store.CodeVersion,
				})
				elapsed := float64(time.Since(t0)) / float64(time.Millisecond)
				if err != nil {
					dispatchSpan.End(obs.Fields{"error": err.Error()})
					mu.Lock()
					ws := wstats[url]
					ws.Failures++
					ws.BusyMillis += elapsed
					mu.Unlock()
					if cctx.Err() != nil {
						return
					}
					if fatal {
						fail(fmt.Errorf("worker %s: %w", url, err))
						return
					}
					// Transient failure: re-queue the shard for whoever is
					// still alive, and drop this worker once it has failed
					// WorkerFailLimit shards in a row.
					mu.Lock()
					rep.Retries++
					t.attempts++
					exhausted := t.attempts >= c.opts.MaxAttempts
					mu.Unlock()
					c.log.Warn("cluster: shard dispatch failed, re-queueing",
						"shard", label, "worker", url, "reason", err.Error(), "attempt", t.attempts)
					if exhausted {
						fail(fmt.Errorf("shard %v failed %d times, last on %s: %w",
							label, t.attempts, url, err))
						return
					}
					j.Event("retry", obs.Fields{
						"shard": t.shard, "indices": label, "worker": url,
						"reason": err.Error(), "attempt": t.attempts})
					pending <- t
					consecutive++
					if consecutive >= c.opts.WorkerFailLimit {
						mu.Lock()
						rep.DroppedWorkers = append(rep.DroppedWorkers, url)
						wstats[url].Dropped = true
						alive--
						last := alive == 0
						mu.Unlock()
						c.log.Warn("cluster: worker dropped after repeated failures",
							"worker", url, "consecutive_failures", consecutive, "reason", err.Error())
						j.Event("worker_dropped", obs.Fields{"worker": url, "reason": err.Error()})
						if last {
							fail(fmt.Errorf("no surviving workers (last failure on %s: %v)", url, err))
						}
						return
					}
					continue
				}
				dispatchSpan.End(nil)
				consecutive = 0
				if len(resp.Rows) != len(t.indices) {
					fail(fmt.Errorf("worker %s: shard %v returned %d rows, want %d",
						url, label, len(resp.Rows), len(t.indices)))
					return
				}
				mergeSpan := j.Begin("merge", obs.Fields{"shard": t.shard, "worker": url})
				for k, idx := range t.indices {
					row, err := sw.DecodeRow(resp.Rows[k])
					if err != nil {
						mergeSpan.End(obs.Fields{"error": err.Error()})
						fail(fmt.Errorf("worker %s: point %d: undecodable row: %w", url, idx, err))
						return
					}
					rows[idx] = row
					if c.opts.Store != nil {
						c.opts.Store.PutRow(sw.ID, specKey, idx, resp.Rows[k])
					}
				}
				mergeSpan.End(obs.Fields{"points": len(t.indices)})
				mu.Lock()
				shardStats[t.shard] = &ShardStat{
					Shard: t.shard, Indices: label, Points: len(t.indices),
					Worker: url, Attempts: t.attempts + 1, Millis: elapsed,
				}
				ws := wstats[url]
				ws.Shards++
				ws.Points += len(t.indices)
				ws.BusyMillis += elapsed
				remaining--
				done := remaining == 0
				mu.Unlock()
				if done {
					close(allDone)
					return
				}
			}
		}(url)
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	for _, st := range shardStats {
		if st != nil {
			rep.ShardStats = append(rep.ShardStats, *st)
		}
	}
	for _, url := range c.opts.Workers {
		ws := *wstats[url]
		if ws.BusyMillis > 0 {
			ws.PointsPerSec = float64(ws.Points) / (ws.BusyMillis / 1000)
		}
		rep.WorkerStats = append(rep.WorkerStats, ws)
	}
	if firstErr != nil {
		return firstErr
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if remaining > 0 {
		return fmt.Errorf("%d shards undispatched with no surviving workers", remaining)
	}
	return nil
}

// postShard performs one shard request. fatal marks errors that retrying
// on another worker cannot fix: a rejected request (bad spec, unknown
// scenario, version or grid mismatch) will be rejected by every worker.
func (c *Coordinator) postShard(ctx context.Context, url string, req ShardRequest) (resp *ShardResponse, fatal bool, err error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, true, err
	}
	rctx, rcancel := context.WithTimeout(ctx, c.opts.Timeout)
	defer rcancel()
	hreq, err := http.NewRequestWithContext(rctx, http.MethodPost,
		strings.TrimRight(url, "/")+ShardPath, bytes.NewReader(body))
	if err != nil {
		return nil, true, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := c.opts.Client.Do(hreq)
	if err != nil {
		return nil, false, err
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(hresp.Body, 4096))
		err := fmt.Errorf("shard request: %s: %s", hresp.Status, strings.TrimSpace(string(msg)))
		return nil, hresp.StatusCode >= 400 && hresp.StatusCode < 500, err
	}
	var out ShardResponse
	if err := json.NewDecoder(hresp.Body).Decode(&out); err != nil {
		return nil, false, fmt.Errorf("shard response: %w", err)
	}
	return &out, false, nil
}

func shardLabel(indices []int) string {
	if len(indices) == 0 {
		return "[]"
	}
	return fmt.Sprintf("[%d..%d:%d]", indices[0], indices[len(indices)-1], len(indices))
}
