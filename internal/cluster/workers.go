package cluster

import (
	"fmt"
	"strings"
)

// ParseWorkers parses a comma-separated worker list ("-workers" on
// sempe-sweep) into base URLs, enforcing fleet hygiene at startup: an
// empty entry ("a,,b" or a trailing comma) and a duplicate address are
// both configuration mistakes — a duplicate would silently dispatch
// shards to the same process twice while halving the apparent fleet — and
// are rejected with a clear error instead of surfacing later as puzzling
// scheduling. Entries are trimmed and compared with trailing slashes
// stripped ("http://a:1/" duplicates "http://a:1"). The empty string is a
// valid empty fleet (compute in-process).
func ParseWorkers(s string) ([]string, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	seen := map[string]int{}
	var out []string
	for i, f := range strings.Split(s, ",") {
		u := strings.TrimSpace(f)
		if u == "" {
			return nil, fmt.Errorf("cluster: empty worker entry at position %d in %q", i+1, s)
		}
		key := strings.TrimRight(u, "/")
		if prev, dup := seen[key]; dup {
			return nil, fmt.Errorf("cluster: duplicate worker %q (positions %d and %d)", u, prev, i+1)
		}
		seen[key] = i + 1
		out = append(out, u)
	}
	return out, nil
}
