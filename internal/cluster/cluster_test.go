// External test package: the tests boot real workers through internal/serve
// (which imports cluster for the shard protocol), so an internal test
// package would cycle.
package cluster_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/cluster"
	_ "repro/internal/experiments" // registers the paper's scenarios
	"repro/internal/scenario"
	"repro/internal/serve"
	"repro/internal/store"
)

// startWorker boots one in-process worker (sempe-serve -worker).
func startWorker(t *testing.T) *httptest.Server {
	t.Helper()
	srv := serve.New(serve.Options{MaxWorkers: 2, MaxConcurrentRuns: 2, Worker: true})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func lookup(t *testing.T, name string) *scenario.Scenario {
	t.Helper()
	sc, ok := scenario.Lookup(name)
	if !ok {
		t.Fatalf("scenario %q not registered", name)
	}
	return sc
}

// smallSpec is a fast fig10 grid: 2 kernels x 2 depths = 4 points.
func smallSpec() scenario.Spec {
	return scenario.Spec{Params: map[string]string{"kinds": "fibonacci,ones", "ws": "1,2", "iters": "2"}}
}

func stableJSON(t *testing.T, res *scenario.Result) string {
	t.Helper()
	out, err := json.MarshalIndent(res.Stable(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// TestDistributedMatchesSerial is the tentpole acceptance check: a sweep
// sharded across two workers (shard size 1, so every point crosses the
// wire) renders byte-identical stable JSON to a serial engine run.
func TestDistributedMatchesSerial(t *testing.T) {
	sc := lookup(t, "fig10a")
	spec := smallSpec()

	serialSpec := spec
	serialSpec.Workers = 1
	serial, err := scenario.Run(sc, serialSpec, scenario.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}

	co := cluster.New(cluster.Options{
		Workers:   []string{startWorker(t).URL, startWorker(t).URL},
		ShardSize: 1,
	})
	dist, rep, err := co.Run(context.Background(), sc, spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Points != 4 || rep.Shards != 4 || rep.StorePoints != 0 {
		t.Errorf("report = %+v, want 4 points in 4 shards, none from store", rep)
	}
	got, want := stableJSON(t, dist), stableJSON(t, serial)
	if got != want {
		t.Errorf("distributed stable JSON differs from serial:\n--- serial ---\n%s\n--- distributed ---\n%s", want, got)
	}
	// The typed rows came through the JSON codec bit-identically too.
	for i := range serial.Rows {
		if serial.Rows[i] != dist.Rows[i] {
			t.Errorf("row %d: serial %+v != distributed %+v", i, serial.Rows[i], dist.Rows[i])
		}
	}
}

// TestWorkerDiesMidSweep: one worker starts failing after its first shard
// (and one is dead from the start); the coordinator re-dispatches to the
// survivor and still merges a correct, complete result.
func TestWorkerDiesMidSweep(t *testing.T) {
	sc := lookup(t, "fig10a")
	spec := smallSpec()

	healthy := startWorker(t)

	// dying serves exactly one shard, then every request fails — the
	// observable behavior of a worker process killed mid-sweep.
	inner := serve.New(serve.Options{MaxWorkers: 2, Worker: true}).Handler()
	var served atomic.Int32
	dying := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if served.Add(1) > 1 {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(dying.Close)

	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // connection refused from the first dial

	co := cluster.New(cluster.Options{
		Workers:     []string{dying.URL, dead.URL, healthy.URL},
		ShardSize:   1,
		MaxAttempts: 5,
	})
	dist, rep, err := co.Run(context.Background(), sc, spec)
	if err != nil {
		t.Fatalf("sweep failed despite a surviving worker: %v (report %+v)", err, rep)
	}
	if rep.Retries == 0 {
		t.Error("no retries recorded; the dying workers were never exercised")
	}
	if len(rep.DroppedWorkers) == 0 {
		t.Error("no workers dropped")
	}

	serial, err := scenario.Run(sc, spec, scenario.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := stableJSON(t, dist), stableJSON(t, serial); got != want {
		t.Error("result after worker failure differs from serial run")
	}
}

// TestAllWorkersDead: with no survivors the sweep fails with a clear
// error instead of hanging.
func TestAllWorkersDead(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	co := cluster.New(cluster.Options{Workers: []string{dead.URL}, MaxAttempts: 10})
	_, _, err := co.Run(context.Background(), lookup(t, "fig10a"), smallSpec())
	if err == nil {
		t.Fatal("sweep against a dead fleet succeeded")
	}
}

// TestWarmStoreSkipsSimulation: a second sweep over a warm store serves
// every point from disk — nothing is dispatched, nothing simulates.
func TestWarmStoreSkipsSimulation(t *testing.T) {
	sc := lookup(t, "fig10a")
	spec := smallSpec()
	dir := t.TempDir()

	st1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cold := cluster.New(cluster.Options{Workers: []string{startWorker(t).URL}, ShardSize: 2, Store: st1})
	first, rep1, err := cold.Run(context.Background(), sc, spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.StorePoints != 0 || rep1.Dispatched == 0 {
		t.Fatalf("cold report = %+v", rep1)
	}

	// Fresh store handle, no workers at all: the warm run must not need
	// any compute — and a re-chunked sweep (different shard size) still
	// hits, because rows are stored per point.
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	warm := cluster.New(cluster.Options{Store: st2, ShardSize: 3})
	second, rep2, err := warm.Run(context.Background(), sc, spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.StorePoints != rep2.Points || rep2.Dispatched != 0 || rep2.Shards != 0 {
		t.Errorf("warm report = %+v, want all %d points from store", rep2, rep2.Points)
	}
	if got, want := stableJSON(t, second), stableJSON(t, first); got != want {
		t.Error("warm result differs from cold result")
	}
}

// TestCorruptStoreEntryRecomputed: a damaged entry is detected, the point
// recomputed, and the merged result stays correct.
func TestCorruptStoreEntryRecomputed(t *testing.T) {
	sc := lookup(t, "fig10a")
	spec := smallSpec()
	dir := t.TempDir()

	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	co := cluster.New(cluster.Options{Store: st})
	first, _, err := co.Run(context.Background(), sc, spec)
	if err != nil {
		t.Fatal(err)
	}

	// Truncate one entry file.
	var corrupted bool
	err = filepath.Walk(dir, func(p string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || corrupted {
			return err
		}
		corrupted = true
		return os.Truncate(p, info.Size()/2)
	})
	if err != nil || !corrupted {
		t.Fatalf("corrupting store: %v (corrupted=%t)", err, corrupted)
	}

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	co2 := cluster.New(cluster.Options{Store: st2})
	second, rep, err := co2.Run(context.Background(), sc, spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.StorePoints != rep.Points-1 {
		t.Errorf("report = %+v, want exactly one recomputed point", rep)
	}
	if c := st2.Counters(); c.Corrupt != 1 {
		t.Errorf("corrupt counter = %d, want 1", c.Corrupt)
	}
	if got, want := stableJSON(t, second), stableJSON(t, first); got != want {
		t.Error("result after corruption recovery differs")
	}
}

// TestNotShardable: a sweep without a row codec is rejected up front.
// (Every registered sweep declares one, so the case is synthetic.)
func TestNotShardable(t *testing.T) {
	sc := &scenario.Scenario{
		Name: "local-only",
		Sweep: &scenario.Sweep{
			ID:   "local-only",
			Axes: func(scenario.Spec) ([]scenario.Axis, error) { return nil, nil },
			Run:  func(scenario.Spec, scenario.Point) (any, error) { return struct{}{}, nil },
		},
	}
	co := cluster.New(cluster.Options{Workers: []string{"http://unused"}})
	_, _, err := co.Run(context.Background(), sc, scenario.Spec{})
	if !errors.Is(err, cluster.ErrNotShardable) {
		t.Fatalf("err = %v, want ErrNotShardable", err)
	}
}

// TestFig8ThroughCluster: the djpeg grid — shardable now that Fig8Row
// carries plain statistics instead of live cores — sharded across two
// workers (shard size 1, every point crosses the wire) renders
// byte-identical stable JSON to the serial engine run, and the typed rows
// survive the codec exactly.
func TestFig8ThroughCluster(t *testing.T) {
	sc := lookup(t, "fig8")
	spec := scenario.Spec{Params: map[string]string{"sizes": "tiny:8,256k"}}

	serialSpec := spec
	serialSpec.Workers = 1
	serial, err := scenario.Run(sc, serialSpec, scenario.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}

	co := cluster.New(cluster.Options{
		Workers:   []string{startWorker(t).URL, startWorker(t).URL},
		ShardSize: 1,
	})
	dist, rep, err := co.Run(context.Background(), sc, spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Points != 6 || rep.Shards != 6 {
		t.Errorf("report = %+v, want 6 points (3 formats x 2 sizes) in 6 shards", rep)
	}
	got, want := stableJSON(t, dist), stableJSON(t, serial)
	if got != want {
		t.Errorf("distributed fig8 stable JSON differs from serial:\n--- serial ---\n%s\n--- distributed ---\n%s", want, got)
	}
	for i := range serial.Rows {
		if serial.Rows[i] != dist.Rows[i] {
			t.Errorf("row %d: serial %+v != distributed %+v", i, serial.Rows[i], dist.Rows[i])
		}
	}
}

// TestVersionMismatch: a worker built at a different code version rejects
// shards, and the coordinator fails fast instead of retrying forever.
func TestVersionMismatch(t *testing.T) {
	srv := serve.New(serve.Options{Worker: true, ShardVersion: "some-other-sim"})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	co := cluster.New(cluster.Options{Workers: []string{ts.URL}, MaxAttempts: 100})
	_, rep, err := co.Run(context.Background(), lookup(t, "fig10a"), smallSpec())
	if err == nil {
		t.Fatal("mixed-version fleet merged rows")
	}
	if rep.Dispatched > 1 {
		t.Errorf("version mismatch dispatched %d times; want fail-fast after 1", rep.Dispatched)
	}
}

// TestAblationThroughCluster: the new ablation scenario is shardable end
// to end — the satellite requirement that it runs through the cluster.
func TestAblationThroughCluster(t *testing.T) {
	sc := lookup(t, "ablation")
	spec := scenario.Spec{Params: map[string]string{
		"kind": "ones", "w": "2", "iters": "1", "slots": "2,30", "bws": "64"}}
	co := cluster.New(cluster.Options{Workers: []string{startWorker(t).URL}, ShardSize: 1})
	dist, _, err := co.Run(context.Background(), sc, spec)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := scenario.Run(sc, spec, scenario.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := stableJSON(t, dist), stableJSON(t, serial); got != want {
		t.Errorf("distributed ablation differs from serial:\n%s\nvs\n%s", got, want)
	}
}

// TestSpectreThroughCluster is the attack lab's distribution acceptance
// check: the spectre sweep sharded across two local workers renders
// byte-identical stable JSON to the serial engine run, and its typed
// assessment rows survive the wire codec exactly.
func TestSpectreThroughCluster(t *testing.T) {
	sc := lookup(t, "spectre")
	spec := scenario.Spec{Quick: true, Params: map[string]string{"trials": "12"}}

	serialSpec := spec
	serialSpec.Workers = 1
	serial, err := scenario.Run(sc, serialSpec, scenario.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}

	co := cluster.New(cluster.Options{
		Workers:   []string{startWorker(t).URL, startWorker(t).URL},
		ShardSize: 1,
	})
	dist, rep, err := co.Run(context.Background(), sc, spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Points != 4 || rep.Shards != 4 {
		t.Errorf("report = %+v, want 4 points in 4 shards", rep)
	}
	got, want := stableJSON(t, dist), stableJSON(t, serial)
	if got != want {
		t.Errorf("distributed spectre stable JSON differs from serial:\n--- serial ---\n%s\n--- distributed ---\n%s", want, got)
	}
	for i := range serial.Rows {
		if !reflect.DeepEqual(serial.Rows[i], dist.Rows[i]) {
			t.Errorf("row %d: serial %+v != distributed %+v", i, serial.Rows[i], dist.Rows[i])
		}
	}
}

// TestKeyExtractThroughCluster: the multi-bit key-extraction sweep
// sharded across two local workers (shard size 1, every point crosses the
// wire) renders byte-identical stable JSON to the serial engine run, and
// its KeyRecovery rows survive the wire codec exactly.
func TestKeyExtractThroughCluster(t *testing.T) {
	sc := lookup(t, "keyextract")
	spec := scenario.Spec{Params: map[string]string{
		"trials": "6", "attackers": "bp", "victims": "keyloop,ctcompare",
		"widths": "2", "gaps": "0", "archs": "baseline,sempe"}}

	serialSpec := spec
	serialSpec.Workers = 1
	serial, err := scenario.Run(sc, serialSpec, scenario.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}

	co := cluster.New(cluster.Options{
		Workers:   []string{startWorker(t).URL, startWorker(t).URL},
		ShardSize: 1,
	})
	dist, rep, err := co.Run(context.Background(), sc, spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Points != 4 || rep.Shards != 4 || len(rep.Unreachable) != 0 {
		t.Errorf("report = %+v, want 4 points in 4 shards with a fully reachable fleet", rep)
	}
	got, want := stableJSON(t, dist), stableJSON(t, serial)
	if got != want {
		t.Errorf("distributed keyextract stable JSON differs from serial:\n--- serial ---\n%s\n--- distributed ---\n%s", want, got)
	}
	for i := range serial.Rows {
		if !reflect.DeepEqual(serial.Rows[i], dist.Rows[i]) {
			t.Errorf("row %d: serial %+v != distributed %+v", i, serial.Rows[i], dist.Rows[i])
		}
	}
}

// TestUnreachableWorkerDroppedAtStartup: a fleet with one dead address
// completes without a single mid-sweep retry — the health probe drops the
// dead worker before the first dispatch and reports it.
func TestUnreachableWorkerDroppedAtStartup(t *testing.T) {
	sc := lookup(t, "fig10a")
	spec := smallSpec()

	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	live := startWorker(t)

	co := cluster.New(cluster.Options{Workers: []string{dead.URL, live.URL}, ShardSize: 1})
	dist, rep, err := co.Run(context.Background(), sc, spec)
	if err != nil {
		t.Fatalf("sweep failed despite a live worker: %v (report %+v)", err, rep)
	}
	if len(rep.Unreachable) != 1 || rep.Unreachable[0] != dead.URL {
		t.Errorf("unreachable = %v, want [%s]", rep.Unreachable, dead.URL)
	}
	if rep.Retries != 0 {
		t.Errorf("retries = %d, want 0 (the dead worker must never be dispatched to)", rep.Retries)
	}
	if len(rep.DroppedWorkers) != 0 {
		t.Errorf("dropped mid-sweep = %v, want none", rep.DroppedWorkers)
	}
	serial, err := scenario.Run(sc, spec, scenario.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := stableJSON(t, dist), stableJSON(t, serial); got != want {
		t.Error("result with a startup-dropped worker differs from serial run")
	}
}

// TestAllWorkersUnreachableNamedError: a fully dead fleet fails fast with
// the named startup error, before any shard is built.
func TestAllWorkersUnreachableNamedError(t *testing.T) {
	dead1 := httptest.NewServer(http.NotFoundHandler())
	dead1.Close()
	dead2 := httptest.NewServer(http.NotFoundHandler())
	dead2.Close()
	co := cluster.New(cluster.Options{Workers: []string{dead1.URL, dead2.URL}})
	_, rep, err := co.Run(context.Background(), lookup(t, "fig10a"), smallSpec())
	if !errors.Is(err, cluster.ErrNoReachableWorkers) {
		t.Fatalf("err = %v, want ErrNoReachableWorkers", err)
	}
	if len(rep.Unreachable) != 2 {
		t.Errorf("unreachable = %v, want both workers", rep.Unreachable)
	}
	if rep.Dispatched != 0 {
		t.Errorf("dispatched = %d, want 0", rep.Dispatched)
	}
}

func TestParseWorkers(t *testing.T) {
	good := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"  ", nil},
		{"http://a:1", []string{"http://a:1"}},
		{"http://a:1, http://b:2", []string{"http://a:1", "http://b:2"}},
	}
	for _, c := range good {
		got, err := cluster.ParseWorkers(c.in)
		if err != nil {
			t.Errorf("ParseWorkers(%q): unexpected error %v", c.in, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseWorkers(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	bad := []string{
		"http://a:1,,http://b:2",
		"http://a:1,",
		",http://a:1",
		"http://a:1,http://a:1",
		"http://a:1,http://a:1/",
		"http://a:1, http://a:1 ",
	}
	for _, in := range bad {
		if _, err := cluster.ParseWorkers(in); err == nil {
			t.Errorf("ParseWorkers(%q): no error", in)
		}
	}
}
