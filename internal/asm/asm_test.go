package asm

import (
	"strings"
	"testing"

	"repro/internal/emu"
	"repro/internal/isa"
)

func TestAssembleAndRunLoop(t *testing.T) {
	prog, err := Assemble(`
		; sum 1..10 into r8
		main:
			li   r8, 0
			li   r9, 10
		loop:
			add  r8, r8, r9
			addi r9, r9, -1
			bne  r9, rz, loop
			halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	m := emu.New(emu.Legacy, prog)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Regs[8] != 55 {
		t.Errorf("sum = %d, want 55", m.Regs[8])
	}
}

func TestAssembleDataAndMemory(t *testing.T) {
	prog, err := Assemble(`
		.word tbl 5 6 7
		.data buf 64
		main:
			la  r8, tbl
			ld  r9, [r8+8]     ; 6
			la  r10, buf
			st  r9, [r10+0]
			ldb r11, [r10+0]   ; low byte of 6
			halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	m := emu.New(emu.Legacy, prog)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Regs[9] != 6 || m.Regs[11] != 6 {
		t.Errorf("r9=%d r11=%d, want 6 6", m.Regs[9], m.Regs[11])
	}
	if got := m.Mem.Read64(prog.Sym("buf")); got != 6 {
		t.Errorf("buf = %d, want 6", got)
	}
}

func TestAssembleCallRet(t *testing.T) {
	prog, err := Assemble(`
		main:
			li   r8, 21
			call double
			halt
		double:
			add  r8, r8, r8
			ret
	`)
	if err != nil {
		t.Fatal(err)
	}
	m := emu.New(emu.Legacy, prog)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Regs[8] != 42 {
		t.Errorf("r8 = %d, want 42", m.Regs[8])
	}
}

func TestSecureMnemonics(t *testing.T) {
	prog, err := Assemble(`
		main:
			li    r8, 1
			sbne  r8, rz, taken
			addi  r9, r9, 1   ; NT path
			jmp   join
		taken:
			addi  r10, r10, 1 ; T path
		join:
			eosjmp
			halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	sjmp, eos := prog.CountSecure()
	if sjmp != 1 || eos != 1 {
		t.Fatalf("CountSecure = %d,%d want 1,1", sjmp, eos)
	}
	// Legacy execution takes only the true path.
	leg := emu.New(emu.Legacy, prog)
	if err := leg.Run(); err != nil {
		t.Fatal(err)
	}
	if leg.Regs[9] != 0 || leg.Regs[10] != 1 {
		t.Errorf("legacy: r9=%d r10=%d, want 0 1", leg.Regs[9], leg.Regs[10])
	}
	// SeMPE executes both paths but restores the registers so the final
	// state matches the true path.
	sec := emu.New(emu.SeMPE, prog)
	if err := sec.Run(); err != nil {
		t.Fatal(err)
	}
	if sec.Regs[9] != 0 || sec.Regs[10] != 1 {
		t.Errorf("sempe: r9=%d r10=%d, want 0 1", sec.Regs[9], sec.Regs[10])
	}
	if sec.Insts <= leg.Insts {
		t.Errorf("sempe executed %d insts, legacy %d: dual-path should execute more", sec.Insts, leg.Insts)
	}
}

func TestAssembleErrors(t *testing.T) {
	bad := []string{
		"bogus r1, r2, r3",
		"add r1, r2",
		"add r99, r2, r3",
		"ld r1, r2",
		"beq r1, r2, nowhere\nhalt",
		"main:\nmain:\nhalt",
		".data x notanumber",
		".word",
	}
	for _, src := range bad {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q) succeeded, want error", src)
		}
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	prog := MustAssemble(`
		main:
			li r8, 7
			sbne r8, rz, t
			jmp j
		t:
			nop
		j:
			eosjmp
			halt
	`)
	dis := prog.Disassemble()
	for _, want := range []string{"sbne", "eosjmp", "halt", "main:"} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing %q:\n%s", want, dis)
		}
	}
}

func TestBuilderDataAlignment(t *testing.T) {
	b := NewBuilder()
	a1 := b.Data("a", 10)
	a2 := b.Data("b", 10)
	if a1%64 != 0 || a2%64 != 0 {
		t.Errorf("data not 64-byte aligned: %#x %#x", a1, a2)
	}
	if a2 <= a1 {
		t.Errorf("segments overlap: %#x %#x", a1, a2)
	}
}

func TestBranchOffsetsAccountForPrefix(t *testing.T) {
	// A backwards secure branch over a mix of short and long instructions
	// must land exactly on the label.
	prog := MustAssemble(`
		main:
			li r8, 3
		loop:
			nop
			addi r8, r8, -1
			bne r8, rz, loop
			halt
	`)
	m := emu.New(emu.Legacy, prog)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Regs[8] != 0 {
		t.Errorf("r8 = %d, want 0", m.Regs[8])
	}
	if m.Insts != 1+3*3+1 {
		t.Errorf("executed %d instructions, want 11", m.Insts)
	}
}

func TestProgramSymbols(t *testing.T) {
	prog := MustAssemble(`
		.word x 42
		main:
			halt
	`)
	if prog.Entry != prog.Sym("main") {
		t.Errorf("entry %#x != main %#x", prog.Entry, prog.Sym("main"))
	}
	if prog.Sym("x") < isa.DefaultDataBase {
		t.Errorf("data symbol %#x below data base", prog.Sym("x"))
	}
}
