// Package asm implements a two-pass text assembler for the simulated ISA,
// plus a programmatic Builder used by the compiler. The syntax is
// line-oriented:
//
//	; comment
//	.data buf 256          ; reserve 256 bytes, symbol "buf"
//	.word tbl 1 2 3        ; initialized 64-bit words, symbol "tbl"
//	main:                  ; label
//	    li   r8, 10
//	loop:
//	    addi r8, r8, -1
//	    bne  r8, rz, loop
//	    sbne r8, rz, loop  ; an "s"-prefixed branch assembles as sJMP
//	    eosjmp             ; assembles as SecPrefix+NOP
//	    halt
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/isa"
)

// Assemble parses source text and produces a program. The entry point is the
// symbol "main" if defined, otherwise the first instruction.
func Assemble(src string) (*isa.Program, error) {
	b := NewBuilder()
	if err := b.parse(src); err != nil {
		return nil, err
	}
	return b.Finish()
}

// MustAssemble is Assemble, panicking on error; for tests and examples with
// known-good source.
func MustAssemble(src string) *isa.Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

// Builder assembles a program incrementally. The compiler targets this API
// directly; the text assembler is a thin parser on top of it.
type Builder struct {
	insts  []isa.Inst
	labels []string // pending label name for branch/jump fixup, "" if none
	// fixups[i] is the symbol the i-th instruction's Imm must be resolved
	// against (pc-relative for control flow, absolute for LI).
	symbols  map[string]uint64
	codeSyms map[string]int // symbol -> instruction index (resolved in Finish)
	data     []isa.Segment
	dataNext uint64
	genLabel int
	err      error

	// immSlots maps a template patch-slot name to the indices of the
	// instructions carrying it (see MarkImmSlot); immSlotOffs is the same
	// map resolved to code byte offsets by Finish.
	immSlots    map[string][]int
	immSlotOffs map[string][]int
}

// NewBuilder returns an empty Builder with the default memory layout.
func NewBuilder() *Builder {
	return &Builder{
		symbols:  make(map[string]uint64),
		codeSyms: make(map[string]int),
		dataNext: isa.DefaultDataBase,
	}
}

// Err returns the first error recorded by emit helpers.
func (b *Builder) Err() error { return b.err }

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("asm: "+format, args...)
	}
}

// Label defines a code label at the current position.
func (b *Builder) Label(name string) {
	if _, dup := b.codeSyms[name]; dup {
		b.fail("duplicate label %q", name)
		return
	}
	if _, dup := b.symbols[name]; dup {
		b.fail("label %q collides with data symbol", name)
		return
	}
	b.codeSyms[name] = len(b.insts)
}

// FreshLabel returns a unique generated label with the given prefix.
func (b *Builder) FreshLabel(prefix string) string {
	b.genLabel++
	return fmt.Sprintf(".%s_%d", prefix, b.genLabel)
}

// MarkImmSlot tags the most recently emitted instruction as carrying the
// immediate of the named template patch slot. The instruction's code byte
// offset is resolved in Finish and published via ImmSlotOffsets; a name may
// be marked at several instructions.
func (b *Builder) MarkImmSlot(name string) {
	if len(b.insts) == 0 {
		b.fail("MarkImmSlot(%q) before any instruction", name)
		return
	}
	if b.immSlots == nil {
		b.immSlots = make(map[string][]int)
	}
	b.immSlots[name] = append(b.immSlots[name], len(b.insts)-1)
}

// ImmSlotOffsets returns the code byte offset (relative to the code base) of
// the start of every instruction marked with MarkImmSlot, keyed by slot
// name. Valid only after Finish; nil when nothing was marked.
func (b *Builder) ImmSlotOffsets() map[string][]int { return b.immSlotOffs }

// Emit appends a fully-resolved instruction.
func (b *Builder) Emit(in isa.Inst) {
	b.insts = append(b.insts, in)
	b.labels = append(b.labels, "")
}

// EmitRef appends an instruction whose immediate refers to symbol. For
// control-flow opcodes the immediate becomes pc-relative; for others (LI) it
// becomes the symbol's absolute address.
func (b *Builder) EmitRef(in isa.Inst, symbol string) {
	b.insts = append(b.insts, in)
	b.labels = append(b.labels, symbol)
}

// Data reserves size zero bytes and returns the symbol's address.
func (b *Builder) Data(name string, size int) uint64 {
	return b.DataBytes(name, make([]byte, size))
}

// DataBytes places initialized bytes and returns the symbol's address.
func (b *Builder) DataBytes(name string, bytes []byte) uint64 {
	addr := b.dataNext
	if name != "" {
		if _, dup := b.symbols[name]; dup {
			b.fail("duplicate data symbol %q", name)
			return 0
		}
		b.symbols[name] = addr
	}
	b.data = append(b.data, isa.Segment{Base: addr, Bytes: bytes})
	// Keep segments 64-byte aligned so distinct arrays never share a cache
	// line; this keeps shadow-copy locality effects interpretable.
	sz := uint64(len(bytes))
	b.dataNext = (addr + sz + 63) &^ 63
	return addr
}

// DataWords places initialized 64-bit words and returns the symbol address.
func (b *Builder) DataWords(name string, words []uint64) uint64 {
	bytes := make([]byte, 8*len(words))
	for i, w := range words {
		for j := 0; j < 8; j++ {
			bytes[8*i+j] = byte(w >> (8 * j))
		}
	}
	return b.DataBytes(name, bytes)
}

// SymbolAddr returns the address of a data symbol defined so far.
func (b *Builder) SymbolAddr(name string) (uint64, bool) {
	a, ok := b.symbols[name]
	return a, ok
}

// Finish lays out the code, resolves label references, and returns the
// program.
func (b *Builder) Finish() (*isa.Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	// First pass: compute the byte offset of every instruction.
	offsets := make([]int, len(b.insts)+1)
	off := 0
	for i, in := range b.insts {
		offsets[i] = off
		off += in.EncodedLen()
	}
	offsets[len(b.insts)] = off

	if len(b.immSlots) > 0 {
		b.immSlotOffs = make(map[string][]int, len(b.immSlots))
		for name, idxs := range b.immSlots {
			offs := make([]int, len(idxs))
			for i, idx := range idxs {
				offs[i] = offsets[idx]
			}
			b.immSlotOffs[name] = offs
		}
	}

	base := isa.DefaultCodeBase
	syms := make(map[string]uint64, len(b.symbols)+len(b.codeSyms))
	for name, addr := range b.symbols {
		syms[name] = addr
	}
	for name, idx := range b.codeSyms {
		syms[name] = base + uint64(offsets[idx])
	}

	// Second pass: resolve references and encode.
	code := make([]byte, 0, off)
	for i, in := range b.insts {
		if label := b.labels[i]; label != "" {
			target, ok := syms[label]
			if !ok {
				return nil, fmt.Errorf("asm: undefined symbol %q", label)
			}
			if in.Op.IsControl() {
				in.Imm = int64(target) - int64(base+uint64(offsets[i]))
			} else {
				in.Imm = int64(target)
			}
		}
		var err error
		code, err = isa.Encode(code, in)
		if err != nil {
			return nil, fmt.Errorf("asm: instruction %d (%v): %w", i, in, err)
		}
	}

	entry := base
	if e, ok := syms["main"]; ok {
		entry = e
	}
	return &isa.Program{
		CodeBase: base,
		Code:     code,
		Entry:    entry,
		Data:     b.data,
		Symbols:  syms,
	}, nil
}

// parse implements the text syntax on top of the Builder.
func (b *Builder) parse(src string) error {
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if err := b.parseLine(line); err != nil {
			return fmt.Errorf("asm: line %d: %w", lineNo+1, err)
		}
	}
	return b.err
}

func (b *Builder) parseLine(line string) error {
	if strings.HasPrefix(line, ".") {
		return b.parseDirective(line)
	}
	if strings.HasSuffix(line, ":") {
		name := strings.TrimSuffix(line, ":")
		if name == "" {
			return fmt.Errorf("empty label")
		}
		b.Label(name)
		return b.err
	}
	return b.parseInst(line)
}

func (b *Builder) parseDirective(line string) error {
	fields := strings.Fields(line)
	switch fields[0] {
	case ".data":
		if len(fields) != 3 {
			return fmt.Errorf("usage: .data name size")
		}
		size, err := strconv.Atoi(fields[2])
		if err != nil || size < 0 {
			return fmt.Errorf("bad size %q", fields[2])
		}
		b.Data(fields[1], size)
		return b.err
	case ".word":
		if len(fields) < 3 {
			return fmt.Errorf("usage: .word name v0 [v1 ...]")
		}
		words := make([]uint64, 0, len(fields)-2)
		for _, f := range fields[2:] {
			v, err := strconv.ParseInt(f, 0, 64)
			if err != nil {
				return fmt.Errorf("bad word %q", f)
			}
			words = append(words, uint64(v))
		}
		b.DataWords(fields[1], words)
		return b.err
	default:
		return fmt.Errorf("unknown directive %q", fields[0])
	}
}

var mnemonics = map[string]isa.Op{
	"nop": isa.OpNop, "halt": isa.OpHalt,
	"add": isa.OpAdd, "sub": isa.OpSub, "mul": isa.OpMul, "div": isa.OpDiv,
	"rem": isa.OpRem, "and": isa.OpAnd, "or": isa.OpOr, "xor": isa.OpXor,
	"shl": isa.OpShl, "shr": isa.OpShr, "sra": isa.OpSra,
	"slt": isa.OpSlt, "sltu": isa.OpSltu, "seq": isa.OpSeq,
	"addi": isa.OpAddi, "muli": isa.OpMuli, "andi": isa.OpAndi,
	"ori": isa.OpOri, "xori": isa.OpXori, "shli": isa.OpShli,
	"shri": isa.OpShri, "srai": isa.OpSrai, "slti": isa.OpSlti,
	"seqi": isa.OpSeqi, "li": isa.OpLi,
	"ld": isa.OpLd, "st": isa.OpSt, "ldb": isa.OpLdb, "stb": isa.OpStb,
	"beq": isa.OpBeq, "bne": isa.OpBne, "blt": isa.OpBlt, "bge": isa.OpBge,
	"bltu": isa.OpBltu, "bgeu": isa.OpBgeu,
	"jmp": isa.OpJmp, "jal": isa.OpJal, "jalr": isa.OpJalr,
	"cmovz": isa.OpCmovz, "cmovnz": isa.OpCmovnz,
}

func (b *Builder) parseInst(line string) error {
	mnem, rest, _ := strings.Cut(line, " ")
	mnem = strings.ToLower(mnem)
	secure := false
	if mnem == "eosjmp" {
		b.Emit(isa.Inst{Op: isa.OpNop, Secure: true})
		return nil
	}
	op, ok := mnemonics[mnem]
	if !ok && strings.HasPrefix(mnem, "s") {
		// "s"-prefixed branch mnemonics assemble the SecPrefix: sbeq, sbne...
		if bop, ok2 := mnemonics[mnem[1:]]; ok2 && bop.IsBranch() {
			op, ok, secure = bop, true, true
		}
	}
	if !ok {
		// Pseudo-instructions.
		switch mnem {
		case "mov": // mov rd, ra  ->  add rd, ra, rz
			ops, err := splitOperands(rest, 2)
			if err != nil {
				return err
			}
			rd, err := parseReg(ops[0])
			if err != nil {
				return err
			}
			ra, err := parseReg(ops[1])
			if err != nil {
				return err
			}
			b.Emit(isa.Inst{Op: isa.OpAdd, Rd: rd, Ra: ra, Rb: isa.RZ})
			return nil
		case "la": // la rd, symbol  ->  li rd, addr(symbol)
			ops, err := splitOperands(rest, 2)
			if err != nil {
				return err
			}
			rd, err := parseReg(ops[0])
			if err != nil {
				return err
			}
			b.EmitRef(isa.Inst{Op: isa.OpLi, Rd: rd}, ops[1])
			return nil
		case "ret": // ret -> jalr rz, lr+0
			b.Emit(isa.Inst{Op: isa.OpJalr, Rd: isa.RZ, Ra: isa.LR})
			return nil
		case "call": // call label -> jal lr, label
			ops, err := splitOperands(rest, 1)
			if err != nil {
				return err
			}
			b.EmitRef(isa.Inst{Op: isa.OpJal, Rd: isa.LR}, ops[0])
			return nil
		}
		return fmt.Errorf("unknown mnemonic %q", mnem)
	}

	in := isa.Inst{Op: op, Secure: secure}
	info := op.ClassOf()
	switch {
	case op == isa.OpNop || op == isa.OpHalt:
		b.Emit(in)
		return nil
	case op == isa.OpLi:
		ops, err := splitOperands(rest, 2)
		if err != nil {
			return err
		}
		if in.Rd, err = parseReg(ops[0]); err != nil {
			return err
		}
		if imm, err2 := strconv.ParseInt(ops[1], 0, 64); err2 == nil {
			in.Imm = imm
			b.Emit(in)
		} else {
			b.EmitRef(in, ops[1]) // li rd, symbol
		}
		return nil
	case info == isa.ClassLoad || info == isa.ClassStore:
		// ld rd, [ra+imm] / st rd, [ra+imm]
		ops, err := splitOperands(rest, 2)
		if err != nil {
			return err
		}
		if in.Rd, err = parseReg(ops[0]); err != nil {
			return err
		}
		if in.Ra, in.Imm, err = parseMemOperand(ops[1]); err != nil {
			return err
		}
		b.Emit(in)
		return nil
	case op.IsBranch():
		ops, err := splitOperands(rest, 3)
		if err != nil {
			return err
		}
		if in.Ra, err = parseReg(ops[0]); err != nil {
			return err
		}
		if in.Rb, err = parseReg(ops[1]); err != nil {
			return err
		}
		b.EmitRef(in, ops[2])
		return nil
	case op == isa.OpJmp:
		ops, err := splitOperands(rest, 1)
		if err != nil {
			return err
		}
		b.EmitRef(in, ops[0])
		return nil
	case op == isa.OpJal:
		ops, err := splitOperands(rest, 2)
		if err != nil {
			return err
		}
		if in.Rd, err = parseReg(ops[0]); err != nil {
			return err
		}
		b.EmitRef(in, ops[1])
		return nil
	case op == isa.OpJalr:
		ops, err := splitOperands(rest, 2)
		if err != nil {
			return err
		}
		if in.Rd, err = parseReg(ops[0]); err != nil {
			return err
		}
		if in.Ra, in.Imm, err = parseMemOperand(ops[1]); err != nil {
			if in.Ra, err = parseReg(ops[1]); err != nil {
				return err
			}
			in.Imm = 0
		}
		b.Emit(in)
		return nil
	default:
		// Three-operand ALU / CMOV: rd, ra, rb  or  rd, ra, imm.
		ops, err := splitOperands(rest, 3)
		if err != nil {
			return err
		}
		if in.Rd, err = parseReg(ops[0]); err != nil {
			return err
		}
		if in.Ra, err = parseReg(ops[1]); err != nil {
			return err
		}
		if rb, err2 := parseReg(ops[2]); err2 == nil {
			in.Rb = rb
		} else if imm, err3 := strconv.ParseInt(ops[2], 0, 64); err3 == nil {
			in.Imm = imm
		} else {
			return fmt.Errorf("bad operand %q", ops[2])
		}
		b.Emit(in)
		return nil
	}
}

func splitOperands(s string, n int) ([]string, error) {
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	if len(parts) != n || (n > 0 && parts[0] == "") {
		return nil, fmt.Errorf("expected %d operands in %q", n, s)
	}
	return parts, nil
}

func parseReg(s string) (isa.Reg, error) {
	switch strings.ToLower(s) {
	case "rz", "r0":
		return isa.RZ, nil
	case "lr", "r1":
		return isa.LR, nil
	case "sp", "r2":
		return isa.SP, nil
	}
	if len(s) >= 2 && (s[0] == 'r' || s[0] == 'R') {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n < isa.NumArchRegs {
			return isa.Reg(n), nil
		}
	}
	return 0, fmt.Errorf("bad register %q", s)
}

// parseMemOperand parses "[ra+imm]", "[ra-imm]", or "[ra]".
func parseMemOperand(s string) (isa.Reg, int64, error) {
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	inner := s[1 : len(s)-1]
	sep := strings.IndexAny(inner, "+-")
	if sep < 0 {
		r, err := parseReg(strings.TrimSpace(inner))
		return r, 0, err
	}
	r, err := parseReg(strings.TrimSpace(inner[:sep]))
	if err != nil {
		return 0, 0, err
	}
	imm, err := strconv.ParseInt(strings.TrimSpace(inner[sep:]), 0, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad offset in %q", s)
	}
	return r, imm, nil
}
