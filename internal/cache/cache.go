// Package cache models a set-associative cache hierarchy with LRU
// replacement and per-level statistics, sized per the paper's Table II:
// 16 KiB 2-way IL1, 32 KiB 2-way DL1, and a shared 256 KiB 2-way L2 in front
// of main memory. Prefetchers (internal/prefetch) hook the demand-access
// stream via the Observer callback.
package cache

import "fmt"

// LineSize is the cache line size in bytes for every level.
const LineSize = 64

// Stats accumulates per-level access counts.
type Stats struct {
	Accesses   uint64
	Misses     uint64
	Evictions  uint64
	Prefetches uint64 // lines installed by a prefetcher
}

// MissRate returns Misses/Accesses, or 0 when idle.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Level is anything that can serve a line fill: a cache or main memory.
type Level interface {
	// Access looks up the line containing addr, filling on miss, and
	// returns the total latency in cycles. write marks the line dirty.
	Access(addr uint64, write bool) (latency int)
	// Name identifies the level in reports.
	Name() string
}

// MainMemory is the terminal level with a fixed access latency.
type MainMemory struct {
	Latency int
	Stats   Stats
}

// Access always "hits" main memory at fixed latency.
func (m *MainMemory) Access(addr uint64, write bool) int {
	m.Stats.Accesses++
	return m.Latency
}

// Name implements Level.
func (m *MainMemory) Name() string { return "mem" }

// Observer is notified of every demand access to a cache, letting
// prefetchers watch the stream. pc is the program counter of the
// instruction performing the access (0 for fills from lower levels).
type Observer interface {
	OnAccess(pc, addr uint64, miss bool)
}

// Cache is one set-associative level.
type Cache struct {
	name       string
	sets       int
	ways       int
	hitLatency int
	next       Level
	tags       []uint64 // sets*ways entries; tag 0 means invalid via valid bit
	valid      []bool
	dirty      []bool
	lruAge     []uint64 // larger = more recently used
	clock      uint64
	observer   Observer

	// Set selection is a mask/shift pair (set counts are enforced powers of
	// two in New), and memoLine/memoIdx remember the slot of the most recent
	// demand hit. The memo is a pure lookup shortcut: a memoized hit applies
	// exactly the side effects of the associative search finding the same
	// slot (access count, LRU clock, dirty bit, observer callback). Any fill
	// — demand or prefetch — can move or evict lines, so fill() always drops
	// the memo.
	setMask  uint64
	setShift uint
	memoLine uint64
	memoIdx  int32 // flat tags[] index of the memoized line, -1 = none

	// FillWatch, when non-nil, observes every line installation (demand miss
	// or prefetch): line is the installed line's address, victim the evicted
	// line's address when evicted is true. It is a pure observer — fills are
	// reported after all replacement state is updated — and costs one nil
	// check per fill when disarmed. The pipeline's spec watch (see
	// internal/pipeline/spec.go) uses it to surface wrong-path cache fills;
	// Reset leaves it armed, like the prefetcher observer.
	FillWatch func(line, victim uint64, evicted bool)

	Stats Stats
}

// Config describes one cache level.
type Config struct {
	Name       string
	SizeBytes  int
	Ways       int
	HitLatency int
}

// New builds a cache level in front of next.
func New(cfg Config, next Level) *Cache {
	if cfg.SizeBytes%(LineSize*cfg.Ways) != 0 {
		panic(fmt.Sprintf("cache %s: size %d not divisible by ways*line", cfg.Name, cfg.SizeBytes))
	}
	sets := cfg.SizeBytes / (LineSize * cfg.Ways)
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache %s: set count %d not a power of two", cfg.Name, sets))
	}
	shift := uint(0)
	for 1<<shift < sets {
		shift++
	}
	n := sets * cfg.Ways
	return &Cache{
		name:       cfg.Name,
		sets:       sets,
		ways:       cfg.Ways,
		hitLatency: cfg.HitLatency,
		next:       next,
		tags:       make([]uint64, n),
		valid:      make([]bool, n),
		dirty:      make([]bool, n),
		lruAge:     make([]uint64, n),
		setMask:    uint64(sets - 1),
		setShift:   shift,
		memoIdx:    -1,
	}
}

// SetObserver registers a demand-stream observer (prefetcher).
func (c *Cache) SetObserver(o Observer) { c.observer = o }

// Name implements Level.
func (c *Cache) Name() string { return c.name }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

func (c *Cache) index(addr uint64) (set int, tag uint64) {
	line := addr / LineSize
	return int(line & c.setMask), line >> c.setShift
}

// Access implements Level for demand accesses (no PC attribution).
func (c *Cache) Access(addr uint64, write bool) int {
	return c.AccessPC(0, addr, write)
}

// AccessPC performs a demand access attributed to the instruction at pc,
// returning the latency. Misses recurse into the next level and fill.
func (c *Cache) AccessPC(pc, addr uint64, write bool) int {
	c.Stats.Accesses++
	line := addr / LineSize
	c.clock++
	// Last-hit memo: repeated accesses to the same line (the common case for
	// sequential instruction fetch and stack traffic) skip the associative
	// search. Valid only because fill() drops the memo on every line motion.
	if line == c.memoLine && c.memoIdx >= 0 {
		i := c.memoIdx
		c.lruAge[i] = c.clock
		if write {
			c.dirty[i] = true
		}
		if c.observer != nil {
			c.observer.OnAccess(pc, addr, false)
		}
		return c.hitLatency
	}
	set := int(line & c.setMask)
	tag := line >> c.setShift
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == tag {
			c.lruAge[i] = c.clock
			if write {
				c.dirty[i] = true
			}
			c.memoLine, c.memoIdx = line, int32(i)
			if c.observer != nil {
				c.observer.OnAccess(pc, addr, false)
			}
			return c.hitLatency
		}
	}
	// Miss: fetch from the next level, then fill.
	c.Stats.Misses++
	lat := c.hitLatency + c.next.Access(addr, false)
	c.fill(set, tag, write)
	if c.observer != nil {
		c.observer.OnAccess(pc, addr, true)
	}
	return lat
}

// Contains reports whether the line holding addr is resident (no state
// change). Used by tests and by the leak checker's cache-state digests.
func (c *Cache) Contains(addr uint64) bool {
	set, tag := c.index(addr)
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == tag {
			return true
		}
	}
	return false
}

// ProbeLatency returns the latency a demand access to addr would observe
// right now, without changing any cache state (no fill, no LRU update, no
// stats): the hit latency when the line is resident, otherwise the hit
// latency plus the next level's probed latency. It is the read-only state
// oracle the attack lab's tests use to confirm primed and evicted lines
// (see internal/attack's prime+probe test). An unknown custom level
// cannot be probed statelessly and contributes zero.
func (c *Cache) ProbeLatency(addr uint64) int {
	if c.Contains(addr) {
		return c.hitLatency
	}
	next := 0
	switch n := c.next.(type) {
	case *Cache:
		next = n.ProbeLatency(addr)
	case *MainMemory:
		next = n.Latency
	}
	return c.hitLatency + next
}

// Prefetch installs the line containing addr without charging any demand
// latency (fill bandwidth is not modeled). It still propagates to the next
// level so inclusive behavior and L2 stats stay sensible.
func (c *Cache) Prefetch(addr uint64) {
	set, tag := c.index(addr)
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == tag {
			return // already resident
		}
	}
	c.Stats.Prefetches++
	c.next.Access(addr, false)
	c.fill(set, tag, false)
}

func (c *Cache) fill(set int, tag uint64, write bool) {
	c.memoIdx = -1 // any fill can evict or shadow the memoized slot
	base := set * c.ways
	victim := base
	for w := 1; w < c.ways; w++ {
		i := base + w
		if !c.valid[i] {
			victim = i
			break
		}
		if c.lruAge[i] < c.lruAge[victim] {
			victim = i
		}
	}
	evicted := c.valid[victim]
	var victimLine uint64
	if evicted {
		c.Stats.Evictions++
		victimLine = c.victimAddr(set, c.tags[victim])
		// Write-back traffic is accounted in the next level's access count
		// only for dirty lines; latency is hidden by the write buffer.
		if c.dirty[victim] {
			c.next.Access(victimLine, true)
		}
	}
	c.clock++
	c.valid[victim] = true
	c.tags[victim] = tag
	c.dirty[victim] = write
	c.lruAge[victim] = c.clock
	if c.FillWatch != nil {
		c.FillWatch(c.victimAddr(set, tag), victimLine, evicted)
	}
}

func (c *Cache) victimAddr(set int, tag uint64) uint64 {
	return (tag*uint64(c.sets) + uint64(set)) * LineSize
}

// Reset restores the level to fresh-construction state without reallocating
// its arrays. lruAge must be cleared along with the tags: Digest orders ways
// by age, so stale ages on an otherwise-empty cache would fingerprint
// differently from a new one.
func (c *Cache) Reset() {
	clear(c.tags)
	clear(c.valid)
	clear(c.dirty)
	clear(c.lruAge)
	c.clock = 0
	c.memoLine, c.memoIdx = 0, -1
	c.Stats = Stats{}
}

// Digest returns a deterministic fingerprint of the cache's resident-line
// state (tags and LRU order). The leak checker compares digests produced by
// runs with different secrets: under SeMPE they must be identical.
func (c *Cache) Digest() uint64 {
	var h uint64 = 1469598103934665603 // FNV-64 offset basis
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xFF
			h *= 1099511628211
		}
	}
	for set := 0; set < c.sets; set++ {
		base := set * c.ways
		// Order ways by age so the digest reflects LRU state, not the
		// arbitrary way index.
		type entry struct {
			age, tag uint64
			valid    bool
		}
		var es []entry
		for w := 0; w < c.ways; w++ {
			i := base + w
			es = append(es, entry{c.lruAge[i], c.tags[i], c.valid[i]})
		}
		for i := 1; i < len(es); i++ {
			for j := i; j > 0 && es[j].age < es[j-1].age; j-- {
				es[j], es[j-1] = es[j-1], es[j]
			}
		}
		for _, e := range es {
			if e.valid {
				mix(e.tag + 1)
			} else {
				mix(0)
			}
		}
	}
	return h
}

// Hierarchy bundles the three levels from Table II plus main memory.
type Hierarchy struct {
	IL1 *Cache
	DL1 *Cache
	L2  *Cache
	Mem *MainMemory
}

// HierarchyConfig sizes the three levels.
type HierarchyConfig struct {
	IL1, DL1, L2 Config
	MemLatency   int
}

// DefaultHierarchyConfig mirrors Table II with conventional latencies.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		IL1:        Config{Name: "il1", SizeBytes: 16 << 10, Ways: 2, HitLatency: 1},
		DL1:        Config{Name: "dl1", SizeBytes: 32 << 10, Ways: 2, HitLatency: 2},
		L2:         Config{Name: "l2", SizeBytes: 256 << 10, Ways: 2, HitLatency: 12},
		MemLatency: 150,
	}
}

// Reset restores every level (and the main-memory stats) to
// fresh-construction state without reallocating.
func (h *Hierarchy) Reset() {
	h.IL1.Reset()
	h.DL1.Reset()
	h.L2.Reset()
	h.Mem.Stats = Stats{}
}

// NewHierarchy wires IL1 and DL1 in front of a shared L2 and main memory.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	memory := &MainMemory{Latency: cfg.MemLatency}
	l2 := New(cfg.L2, memory)
	return &Hierarchy{
		IL1: New(cfg.IL1, l2),
		DL1: New(cfg.DL1, l2),
		L2:  l2,
		Mem: memory,
	}
}
