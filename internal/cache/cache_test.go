package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func newTestCache(sizeKB, ways int) (*Cache, *MainMemory) {
	mem := &MainMemory{Latency: 100}
	c := New(Config{Name: "t", SizeBytes: sizeKB << 10, Ways: ways, HitLatency: 2}, mem)
	return c, mem
}

func TestColdMissThenHit(t *testing.T) {
	c, _ := newTestCache(16, 2)
	if lat := c.Access(0x1000, false); lat <= c.hitLatency {
		t.Errorf("cold access latency %d, want a miss", lat)
	}
	if lat := c.Access(0x1000, false); lat != 2 {
		t.Errorf("second access latency %d, want hit (2)", lat)
	}
	if lat := c.Access(0x1038, false); lat != 2 {
		t.Errorf("same-line access latency %d, want hit", lat)
	}
	if c.Stats.Accesses != 3 || c.Stats.Misses != 1 {
		t.Errorf("stats %+v, want 3 accesses 1 miss", c.Stats)
	}
}

func TestLRUReplacement(t *testing.T) {
	c, _ := newTestCache(16, 2) // 128 sets, 2 ways
	setStride := uint64(c.Sets() * LineSize)
	a, b, d := uint64(0x0000), setStride, 2*setStride // same set
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // a is now MRU
	c.Access(d, false) // evicts b (LRU)
	if !c.Contains(a) || !c.Contains(d) {
		t.Error("a and d should be resident")
	}
	if c.Contains(b) {
		t.Error("b should have been evicted (LRU)")
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	c, mem := newTestCache(16, 2)
	setStride := uint64(c.Sets() * LineSize)
	c.Access(0, true) // dirty
	before := mem.Stats.Accesses
	c.Access(setStride, false)
	c.Access(2*setStride, false) // evicts line 0, dirty -> write back
	if mem.Stats.Accesses != before+3 {
		t.Errorf("memory accesses %d, want %d (2 fills + 1 writeback)",
			mem.Stats.Accesses, before+3)
	}
}

func TestPrefetchInstallsWithoutDemandStats(t *testing.T) {
	c, _ := newTestCache(16, 2)
	c.Prefetch(0x4000)
	if c.Stats.Accesses != 0 || c.Stats.Misses != 0 {
		t.Errorf("prefetch counted as demand access: %+v", c.Stats)
	}
	if c.Stats.Prefetches != 1 {
		t.Errorf("prefetches = %d, want 1", c.Stats.Prefetches)
	}
	if lat := c.Access(0x4000, false); lat != 2 {
		t.Errorf("post-prefetch access latency %d, want hit", lat)
	}
	// Prefetching a resident line is a no-op.
	c.Prefetch(0x4000)
	if c.Stats.Prefetches != 1 {
		t.Errorf("redundant prefetch counted: %d", c.Stats.Prefetches)
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	// Cold: DL1 miss -> L2 miss -> memory.
	lat1 := h.DL1.Access(0x10000, false)
	if lat1 < 150 {
		t.Errorf("cold load latency %d, want >= memory latency", lat1)
	}
	// Warm DL1.
	if lat := h.DL1.Access(0x10000, false); lat != 2 {
		t.Errorf("warm DL1 latency %d, want 2", lat)
	}
	// A second core-side structure (IL1) misses but hits the shared L2.
	lat3 := h.IL1.Access(0x10000, false)
	if lat3 != 1+12 {
		t.Errorf("IL1-miss/L2-hit latency %d, want 13", lat3)
	}
}

func TestDigestReflectsState(t *testing.T) {
	a, _ := newTestCache(16, 2)
	b, _ := newTestCache(16, 2)
	if a.Digest() != b.Digest() {
		t.Error("empty caches digest differently")
	}
	a.Access(0x1000, false)
	if a.Digest() == b.Digest() {
		t.Error("resident line not reflected in digest")
	}
	b.Access(0x1000, false)
	if a.Digest() != b.Digest() {
		t.Error("identical state digests differently")
	}
	// LRU order within a set matters: use two lines of the same set.
	l0 := uint64(0)
	l1 := uint64(a.Sets() * LineSize)
	a.Access(l0, false)
	a.Access(l1, false)
	a.Access(l0, false) // a: l0 is MRU
	b.Access(l0, false)
	b.Access(l1, false) // b: l1 is MRU
	if a.Digest() == b.Digest() {
		t.Error("different same-set LRU order produced the same digest")
	}
}

// TestAccessAlwaysFindsAfterFill: property — any address accessed is
// resident immediately afterwards.
func TestAccessAlwaysFindsAfterFill(t *testing.T) {
	c, _ := newTestCache(16, 2)
	f := func(addr uint64, write bool) bool {
		c.Access(addr, write)
		return c.Contains(addr)
	}
	cfg := &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestSetBounds: property — lines never land outside their set, i.e. an
// access to address A never evicts a line from a different set.
func TestSetBounds(t *testing.T) {
	c, _ := newTestCache(16, 2)
	rng := rand.New(rand.NewSource(4))
	resident := map[uint64]bool{} // by line address
	for i := 0; i < 5000; i++ {
		addr := uint64(rng.Intn(1 << 22))
		c.Access(addr, false)
		resident[addr/LineSize] = true
		// Sample a few previously-seen lines from other sets: if absent,
		// they must have been evicted by same-set traffic only, which we
		// cannot directly observe; instead assert the invariant that the
		// just-accessed line is resident and its set holds <= ways lines.
		set, _ := c.index(addr)
		count := 0
		for w := 0; w < c.ways; w++ {
			if c.valid[set*c.ways+w] {
				count++
			}
		}
		if count > c.ways {
			t.Fatalf("set %d holds %d lines", set, count)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	mem := &MainMemory{Latency: 1}
	mustPanic(t, func() { New(Config{Name: "x", SizeBytes: 1000, Ways: 3, HitLatency: 1}, mem) })
	mustPanic(t, func() { New(Config{Name: "x", SizeBytes: 192 * LineSize, Ways: 1, HitLatency: 1}, mem) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}
