package experiments

import (
	"fmt"
	"testing"

	"repro/internal/workloads"
)

// TestFig10ParallelDeterministic checks the worker-pool sweep against the
// serial sweep: every grid point simulates on an independent core, so the
// rows — cycle counts included — must be bit-identical and in the same
// order no matter how the scheduler interleaves workers.
func TestFig10ParallelDeterministic(t *testing.T) {
	spec := Fig10Spec{
		Kinds: []workloads.Kind{workloads.Fibonacci, workloads.Ones},
		Ws:    []int{1, 2},
		Iters: 2,
	}
	serial, err := Fig10(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Workers = 4
	par, err := Fig10(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(par) {
		t.Fatalf("row counts differ: %d vs %d", len(serial), len(par))
	}
	for i := range serial {
		if serial[i] != par[i] {
			t.Errorf("row %d differs:\nserial:   %+v\nparallel: %+v", i, serial[i], par[i])
		}
	}
}

// TestFig8ParallelDeterministic does the same for the djpeg grid (cycle
// counts and cache miss counters must match exactly).
func TestFig8ParallelDeterministic(t *testing.T) {
	spec := DefaultFig8Spec()
	spec.Sizes = spec.Sizes[:1]
	serial, err := Fig8(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Workers = 3
	par, err := Fig8(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(par) {
		t.Fatalf("row counts differ: %d vs %d", len(serial), len(par))
	}
	for i := range serial {
		s, p := serial[i], par[i]
		if s.Format != p.Format || s.Size != p.Size || s.Overhead != p.Overhead {
			t.Errorf("row %d differs: %+v vs %+v", i, s, p)
		}
		if s.Base.Stats != p.Base.Stats || s.Secure.Stats != p.Secure.Stats {
			t.Errorf("row %d core stats differ", i)
		}
		if s.Secure.Hier.DL1.Stats != p.Secure.Hier.DL1.Stats {
			t.Errorf("row %d DL1 stats differ", i)
		}
	}
}

// TestRunGridErrorDeterministic checks that the reported error is the
// lowest-indexed one regardless of worker interleaving.
func TestRunGridErrorDeterministic(t *testing.T) {
	failAt := map[int]bool{3: true, 7: true}
	for _, workers := range []int{1, 4} {
		err := runGrid(10, workers, func(i int) error {
			if failAt[i] {
				return errIndexed(i)
			}
			return nil
		})
		if err == nil || err.Error() != errIndexed(3).Error() {
			t.Errorf("workers=%d: error = %v, want %v", workers, err, errIndexed(3))
		}
	}
}

type errIndexed int

func (e errIndexed) Error() string { return fmt.Sprintf("point %d failed", int(e)) }
