package experiments

import (
	"fmt"
	"strconv"

	"repro/internal/compile"
	"repro/internal/pipeline"
	"repro/internal/scenario"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// AblationRow is one (jbTable depth, SPM bandwidth) point of the SPM
// geometry ablation named in the ROADMAP: the secure core re-simulated
// with the scratchpad's slot count (which is also the jbTable's depth —
// the core sizes both from SPM.Slots) and its save/restore bandwidth
// swept, against the fixed unprotected baseline.
type AblationRow struct {
	Slots       int
	Bandwidth   int // bytes per cycle
	BaseCycles  uint64
	SeMPECycles uint64
	Slowdown    float64 // SeMPE / unprotected baseline
	// SPMStallCycles is how long retire/fetch sat waiting on snapshot
	// traffic — the quantity the bandwidth axis moves.
	SPMStallCycles uint64
	// NestOverflows counts secure regions downgraded to ordinary branches
	// because nesting exceeded the slots (§IV-E's permissive policy) — the
	// quantity the depth axis moves. A downgraded region is UNPROTECTED.
	NestOverflows uint64
	MaxNestDepth  int
}

// AblationSpec parameterizes the ablation: one deeply nested kernel run
// across the SPM geometry grid.
type AblationSpec struct {
	Kind    workloads.Kind
	W       int // nesting depth of the kernel harness
	Iters   int
	Slots   []int
	Bws     []int
	Workers int
}

// DefaultAblationSpec sweeps slot counts from starved (2) to the paper's
// Table II figure (30) against bandwidths around the 64 B/cycle default,
// on the fibonacci kernel at a depth that overflows the small geometries.
func DefaultAblationSpec() AblationSpec {
	return AblationSpec{
		Kind:  workloads.Fibonacci,
		W:     8,
		Iters: 4,
		Slots: []int{2, 4, 8, 16, 30},
		Bws:   []int{8, 16, 32, 64, 128},
	}
}

// QuickAblationSpec is the reduced grid: geometry corners only.
func QuickAblationSpec() AblationSpec {
	s := DefaultAblationSpec()
	s.Slots = []int{2, 30}
	s.Bws = []int{16, 64}
	s.Iters = 2
	return s
}

func ablationSpecOf(spec scenario.Spec) (AblationSpec, error) {
	if err := checkParams(spec, "kind", "w", "iters", "slots", "bws"); err != nil {
		return AblationSpec{}, err
	}
	f := DefaultAblationSpec()
	if spec.Quick {
		f = QuickAblationSpec()
	}
	var err error
	if v, ok := spec.Params["kind"]; ok {
		if f.Kind, err = workloads.Parse(v); err != nil {
			return AblationSpec{}, fmt.Errorf("kind: %w", err)
		}
	}
	if v, ok := spec.Params["w"]; ok {
		if f.W, err = strconv.Atoi(v); err != nil {
			return AblationSpec{}, fmt.Errorf("w: %w", err)
		}
	}
	if v, ok := spec.Params["iters"]; ok {
		if f.Iters, err = strconv.Atoi(v); err != nil {
			return AblationSpec{}, fmt.Errorf("iters: %w", err)
		}
	}
	if v, ok := spec.Params["slots"]; ok {
		if f.Slots, err = parseInts(v); err != nil {
			return AblationSpec{}, fmt.Errorf("slots: %w", err)
		}
	}
	if v, ok := spec.Params["bws"]; ok {
		if f.Bws, err = parseInts(v); err != nil {
			return AblationSpec{}, fmt.Errorf("bws: %w", err)
		}
	}
	for _, s := range f.Slots {
		if s <= 0 {
			return AblationSpec{}, fmt.Errorf("slots: %d is not positive", s)
		}
	}
	for _, b := range f.Bws {
		if b <= 0 {
			return AblationSpec{}, fmt.Errorf("bws: %d is not positive", b)
		}
	}
	f.Workers = spec.Workers
	return f, nil
}

var ablationSweep = &scenario.Sweep{
	ID: "ablation",
	Axes: func(spec scenario.Spec) ([]scenario.Axis, error) {
		f, err := ablationSpecOf(spec)
		if err != nil {
			return nil, err
		}
		slots := make([]string, len(f.Slots))
		for i, s := range f.Slots {
			slots[i] = strconv.Itoa(s)
		}
		bws := make([]string, len(f.Bws))
		for i, b := range f.Bws {
			bws[i] = strconv.Itoa(b)
		}
		return []scenario.Axis{
			{Name: "slots", Values: slots},
			{Name: "bandwidth", Values: bws},
		}, nil
	},
	Run: func(spec scenario.Spec, p scenario.Point) (any, error) {
		f, err := ablationSpecOf(spec)
		if err != nil {
			return nil, err
		}
		return ablationPoint(f, f.Slots[p.Coords[0]], f.Bws[p.Coords[1]])
	},
	DecodeRow: decodeRowAs[AblationRow],
}

// ablationPoint simulates one SPM geometry. Overflow runs under the
// paper's permissive §IV-E policy (downgrade to an ordinary branch)
// instead of erroring, so geometries too small for the kernel's nesting
// still produce a row — with NestOverflows counting the unprotected
// regions.
func ablationPoint(spec AblationSpec, slots, bw int) (AblationRow, error) {
	hs := workloads.HarnessSpec{Kind: spec.Kind, W: spec.W, I: spec.Iters}
	structured := workloads.Harness(hs)
	base, err := mustRun(pipeline.DefaultConfig(), structured, compile.Plain)
	if err != nil {
		return AblationRow{}, fmt.Errorf("ablation slots=%d bw=%d base: %w", slots, bw, err)
	}
	cfg := pipeline.SecureConfig()
	cfg.SPM.Slots = slots
	cfg.SPM.Bandwidth = bw
	cfg.OverflowNonSecure = true
	sec, err := mustRun(cfg, structured, compile.SeMPE)
	if err != nil {
		return AblationRow{}, fmt.Errorf("ablation slots=%d bw=%d sempe: %w", slots, bw, err)
	}
	row := AblationRow{
		Slots:          slots,
		Bandwidth:      bw,
		BaseCycles:     base.Stats.Cycles,
		SeMPECycles:    sec.Stats.Cycles,
		Slowdown:       float64(sec.Stats.Cycles) / float64(base.Stats.Cycles),
		SPMStallCycles: sec.Stats.SPMStallCycles,
		NestOverflows:  sec.Stats.NestOverflows,
		MaxNestDepth:   sec.Stats.MaxNestDepth,
	}
	releaseCore(pipeline.DefaultConfig(), base)
	releaseCore(cfg, sec)
	return row, nil
}

// Ablation runs the SPM geometry grid through the engine sweep.
func Ablation(spec AblationSpec) ([]AblationRow, error) {
	rows, err := scenario.SweepRows(ablationSweep, spec.engineSpec(), scenario.RunOptions{})
	if err != nil {
		return nil, err
	}
	return ablationRows(rows), nil
}

func (f AblationSpec) engineSpec() scenario.Spec {
	return scenario.Spec{
		Workers: f.Workers,
		Params: map[string]string{
			"kind":  f.Kind.String(),
			"w":     strconv.Itoa(f.W),
			"iters": strconv.Itoa(f.Iters),
			"slots": intsCSV(f.Slots),
			"bws":   intsCSV(f.Bws),
		},
	}
}

func ablationRows(rows []any) []AblationRow {
	out := make([]AblationRow, len(rows))
	for i, r := range rows {
		out[i] = r.(AblationRow)
	}
	return out
}

// RenderAblation renders the geometry grid with the two effects the axes
// isolate: snapshot-traffic stalls (bandwidth) and unprotected overflow
// downgrades (depth).
func RenderAblation(spec scenario.Spec, rows []AblationRow) *stats.Table {
	f, _ := ablationSpecOf(spec)
	t := &stats.Table{
		Title: fmt.Sprintf("SPM geometry ablation: jbTable depth x bandwidth (%s, W=%d, I=%d)",
			f.Kind, f.W, f.Iters),
		Header: []string{"slots", "B/cyc", "base cycles", "SeMPE cycles", "slowdown", "SPM stalls", "overflows", "max nest"},
	}
	for _, r := range rows {
		t.AddRow(strconv.Itoa(r.Slots), strconv.Itoa(r.Bandwidth),
			stats.Int(r.BaseCycles), stats.Int(r.SeMPECycles), stats.Ratio(r.Slowdown),
			stats.Int(r.SPMStallCycles), stats.Int(r.NestOverflows),
			strconv.Itoa(r.MaxNestDepth))
	}
	t.AddNote("Table II baseline geometry: 30 slots, 64 B/cycle; overflow rows run §IV-E's permissive downgrade, so every overflow is an UNPROTECTED region")
	return t
}
