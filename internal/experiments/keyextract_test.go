package experiments

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/attack"
	"repro/internal/scenario"
	"repro/internal/stattest"
)

// TestKeyExtractAcceptance is the issue's acceptance grid through the
// registry: on the baseline core both attacker families extract every bit
// of an 8-bit key from the leaky victims at >= 99% per-bit accuracy, the
// constant-time control stays SECURE everywhere, and SeMPE sits at
// per-bit chance with every |t| under the TVLA threshold.
func TestKeyExtractAcceptance(t *testing.T) {
	sc, ok := scenario.Lookup("keyextract")
	if !ok {
		t.Fatal("keyextract not registered")
	}
	res, err := scenario.Run(sc, scenario.Spec{Params: map[string]string{"trials": "36"}}, scenario.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 12 {
		t.Fatalf("rows = %d, want 12 (2 attackers x 3 victims x 1 width x 1 gap x 2 archs)", len(res.Rows))
	}
	for _, r := range res.Rows {
		k := r.(attack.KeyRecovery)
		leaky := k.Victim != "ctcompare"
		switch {
		case k.Arch == "baseline" && leaky:
			if k.Width != 8 || !k.FullExtraction() {
				t.Errorf("%s/%s/%s: extracted %d/%d, recovered %#x want %#x",
					k.Attacker, k.Victim, k.Arch, k.BitsExtracted, k.Width, k.Recovered, k.Key)
			}
			if k.MinAccuracy < 0.99 {
				t.Errorf("%s/%s/%s: min per-bit accuracy %.3f, want >= 0.99", k.Attacker, k.Victim, k.Arch, k.MinAccuracy)
			}
		default: // SeMPE, and the negative control on any arch
			if k.Leaks() {
				t.Errorf("%s/%s/%s: leaks (%d bits, max |t| %.1f), want SECURE",
					k.Attacker, k.Victim, k.Arch, k.BitsExtracted, k.MaxAbsT)
			}
			if k.MaxAbsT >= stattest.TVLAThreshold {
				t.Errorf("%s/%s/%s: max |t| %.1f >= %.1f", k.Attacker, k.Victim, k.Arch, k.MaxAbsT, stattest.TVLAThreshold)
			}
			// Per-bit chance: no bit's recovery interval clears 50% on the
			// high side (the low side fluctuates binomially on no signal —
			// the tie-biased guess is 0 while the secret stream is random).
			for _, b := range k.Bits {
				if b.RecLo > 0.5 {
					t.Errorf("%s/%s/%s bit %d: recovery CI %.3f..%.3f clears chance",
						k.Attacker, k.Victim, k.Arch, b.Bit, b.RecLo, b.RecHi)
				}
			}
		}
		if !k.MeetsExpectation(leaky) {
			t.Errorf("%s/%s/%s: check gate failed", k.Attacker, k.Victim, k.Arch)
		}
	}
}

// TestKeyExtractRowRoundTrip: both extraction sweeps must be shardable
// with rows surviving the JSON codec exactly.
func TestKeyExtractRowRoundTrip(t *testing.T) {
	for _, sw := range []*scenario.Sweep{keyExtractSweep, noiseSweep} {
		if !sw.Shardable() {
			t.Fatalf("%s sweep is not shardable", sw.ID)
		}
		spec := scenario.Spec{Quick: true, Params: map[string]string{
			"trials": "5", "attackers": "bp", "victims": "keyloop", "widths": "2", "gaps": "0", "archs": "baseline"}}
		rows, err := scenario.SweepRows(sw, spec, scenario.RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for i, row := range rows {
			raw, err := json.Marshal(row)
			if err != nil {
				t.Fatal(err)
			}
			back, err := sw.DecodeRow(raw)
			if err != nil {
				t.Fatalf("%s row %d: %v", sw.ID, i, err)
			}
			if !reflect.DeepEqual(row, back) {
				t.Errorf("%s row %d did not round-trip:\n%+v\n%+v", sw.ID, i, row, back)
			}
		}
	}
}

// TestNoiseDegradesExtraction: through the registry, the noise scenario's
// cache rows must lose extraction quality as the gap grows (the bp probe
// is empirically robust to interposed activity — its signal lives in a
// PC-indexed bimodal counter — so the cache attacker carries this check).
func TestNoiseDegradesExtraction(t *testing.T) {
	sc, ok := scenario.Lookup("noise")
	if !ok {
		t.Fatal("noise not registered")
	}
	spec := scenario.Spec{Params: map[string]string{
		"trials": "16", "attackers": "cache", "archs": "baseline", "gaps": "0,512", "widths": "4"}}
	res, err := scenario.Run(sc, spec, scenario.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	strong := res.Rows[0].(attack.KeyRecovery)
	weak := res.Rows[1].(attack.KeyRecovery)
	if strong.Gap != 0 || weak.Gap != 512 {
		t.Fatalf("row order: gaps %d, %d", strong.Gap, weak.Gap)
	}
	if !strong.FullExtraction() {
		t.Errorf("gap 0: not a full extraction (%d/%d)", strong.BitsExtracted, strong.Width)
	}
	if weak.MinAccuracy >= strong.MinAccuracy && weak.BitsExtracted >= strong.BitsExtracted {
		t.Errorf("gap 512 (acc %.2f, %d bits) not degraded vs gap 0 (acc %.2f, %d bits)",
			weak.MinAccuracy, weak.BitsExtracted, strong.MinAccuracy, strong.BitsExtracted)
	}
}

func TestKeyExtractParamErrors(t *testing.T) {
	cases := []struct {
		params map[string]string
		want   string
	}{
		{map[string]string{"victim": "keyloop"}, "unknown parameter"},
		{map[string]string{"victims": "bogus"}, "victims:"},
		{map[string]string{"attackers": "bogus"}, "attackers:"},
		{map[string]string{"widths": "0"}, "widths:"},
		{map[string]string{"widths": "40"}, "widths:"},
		{map[string]string{"gaps": "-3"}, "gaps:"},
		{map[string]string{"archs": "fort-knox"}, "archs:"},
		{map[string]string{"trials": "many"}, "trials:"},
		{map[string]string{"seed": "x"}, "seed:"},
		{map[string]string{"noise": "-1"}, "noise:"},
	}
	for _, c := range cases {
		_, err := keyExtractSpecOf(scenario.Spec{Params: c.params}, DefaultKeyExtractSpec)
		if err == nil {
			t.Errorf("params %v: no error", c.params)
			continue
		}
		if !contains(err.Error(), c.want) {
			t.Errorf("params %v: error %q does not name the parameter (%q)", c.params, err, c.want)
		}
	}
}

// TestKeyExtractTypedEntryPoint: the Go-callable wrapper goes through the
// same sweep as the registry path.
func TestKeyExtractTypedEntryPoint(t *testing.T) {
	spec := DefaultKeyExtractSpec()
	spec.Attackers = []attack.Kind{attack.BPProbe}
	spec.Victims = []string{"keyloop"}
	spec.Widths = []int{2}
	spec.Archs = []bool{false}
	spec.Trials = 6
	rows, err := KeyExtractMatrix(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Victim != "keyloop" || rows[0].Width != 2 {
		t.Fatalf("rows = %+v", rows)
	}
}
