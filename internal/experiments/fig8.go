package experiments

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/cache"
	"repro/internal/compile"
	"repro/internal/jpegsim"
	"repro/internal/pipeline"
	"repro/internal/scenario"
	"repro/internal/stats"
)

// Fig8Row is one (format, size) cell of Fig. 8, carrying the Fig. 9 cache
// statistics from the same pair of runs. Fields are plain values (no live
// cores), so rows survive a JSON round trip — which is what lets the fig8
// grid shard across a cluster and persist in the on-disk row store.
type Fig8Row struct {
	Format jpegsim.Format
	Size   string
	Blocks int

	BaseCycles   uint64
	SecureCycles uint64

	// Per-level cache statistics for Fig. 9.
	BaseIL1, SecureIL1 cache.Stats
	BaseDL1, SecureDL1 cache.Stats
	BaseL2, SecureL2   cache.Stats

	Overhead float64 // SeMPE/Baseline - 1
}

// Fig8Spec parameterizes the djpeg sweep.
type Fig8Spec struct {
	Sparsity int
	Seed     uint64
	Sizes    []jpegsim.Size

	// Workers bounds the goroutine pool (see Fig10Spec.Workers).
	Workers int
}

// DefaultFig8Spec mirrors the paper's grid: three formats by four sizes.
// 60% busy blocks puts the decoder in the regime where the measured
// overheads land inside the paper's 31-87% band.
func DefaultFig8Spec() Fig8Spec {
	return Fig8Spec{Sparsity: 60, Seed: 11, Sizes: jpegsim.SizeLabels}
}

// fig8SpecOf decodes an engine spec. The "sizes" parameter accepts the
// paper's size labels ("256k,512k") or explicit label:blocks pairs
// ("tiny:8").
func fig8SpecOf(spec scenario.Spec) (Fig8Spec, error) {
	if err := checkParams(spec, "sparsity", "seed", "sizes"); err != nil {
		return Fig8Spec{}, err
	}
	f := DefaultFig8Spec()
	if spec.Quick {
		f.Sizes = f.Sizes[:2]
	}
	var err error
	if v, ok := spec.Params["sparsity"]; ok {
		if f.Sparsity, err = strconv.Atoi(v); err != nil {
			return Fig8Spec{}, fmt.Errorf("sparsity: %w", err)
		}
	}
	if v, ok := spec.Params["seed"]; ok {
		if f.Seed, err = strconv.ParseUint(v, 10, 64); err != nil {
			return Fig8Spec{}, fmt.Errorf("seed: %w", err)
		}
	}
	if v, ok := spec.Params["sizes"]; ok {
		f.Sizes = nil
		for _, field := range splitCSV(v) {
			field = strings.TrimSpace(field)
			if label, blocks, found := strings.Cut(field, ":"); found {
				n, err := strconv.Atoi(blocks)
				if err != nil || n <= 0 {
					return Fig8Spec{}, fmt.Errorf("sizes: bad block count in %q", field)
				}
				f.Sizes = append(f.Sizes, jpegsim.Size{Label: label, Blocks: n})
				continue
			}
			size, ok := jpegsim.SizeByLabel(field)
			if !ok {
				return Fig8Spec{}, fmt.Errorf("sizes: unknown size label %q", field)
			}
			f.Sizes = append(f.Sizes, size)
		}
	}
	f.Workers = spec.Workers
	return f, nil
}

// engineSpec encodes the typed spec as engine parameters (inverse of
// fig8SpecOf). Sizes are encoded as label:blocks pairs so custom grids
// round-trip.
func (f Fig8Spec) engineSpec() scenario.Spec {
	sizes := make([]string, len(f.Sizes))
	for i, s := range f.Sizes {
		sizes[i] = fmt.Sprintf("%s:%d", s.Label, s.Blocks)
	}
	return scenario.Spec{
		Workers: f.Workers,
		Params: map[string]string{
			"sparsity": strconv.Itoa(f.Sparsity),
			"seed":     strconv.FormatUint(f.Seed, 10),
			"sizes":    strings.Join(sizes, ","),
		},
	}
}

// fig8Sweep is the djpeg decoder grid shared by fig8 and fig9.
var fig8Sweep = &scenario.Sweep{
	ID: "fig8",
	Axes: func(spec scenario.Spec) ([]scenario.Axis, error) {
		f, err := fig8SpecOf(spec)
		if err != nil {
			return nil, err
		}
		formats := make([]string, 0, len(jpegsim.Formats()))
		for _, fm := range jpegsim.Formats() {
			formats = append(formats, fm.String())
		}
		sizes := make([]string, len(f.Sizes))
		for i, s := range f.Sizes {
			sizes[i] = s.Label
		}
		return []scenario.Axis{
			{Name: "format", Values: formats},
			{Name: "size", Values: sizes},
		}, nil
	},
	Run: func(spec scenario.Spec, p scenario.Point) (any, error) {
		f, err := fig8SpecOf(spec)
		if err != nil {
			return nil, err
		}
		return fig8Point(f, jpegsim.Formats()[p.Coords[0]], f.Sizes[p.Coords[1]])
	},
	DecodeRow: decodeRowAs[Fig8Row],
}

// fig8Point runs one (format, size) cell: the decoder on the unprotected
// core and on the secure core.
func fig8Point(spec Fig8Spec, format jpegsim.Format, size jpegsim.Size) (Fig8Row, error) {
	img := jpegsim.ImageSpec{Format: format, Blocks: size.Blocks, Sparsity: spec.Sparsity, Seed: spec.Seed}
	p := jpegsim.BuildProgram(img)
	base, err := mustRun(pipeline.DefaultConfig(), p, compile.Plain)
	if err != nil {
		return Fig8Row{}, fmt.Errorf("fig8 %v/%s base: %w", format, size.Label, err)
	}
	sec, err := mustRun(pipeline.SecureConfig(), p, compile.SeMPE)
	if err != nil {
		return Fig8Row{}, fmt.Errorf("fig8 %v/%s sempe: %w", format, size.Label, err)
	}
	row := Fig8Row{
		Format:       format,
		Size:         size.Label,
		Blocks:       size.Blocks,
		BaseCycles:   base.Stats.Cycles,
		SecureCycles: sec.Stats.Cycles,
		BaseIL1:      base.Hier.IL1.Stats,
		SecureIL1:    sec.Hier.IL1.Stats,
		BaseDL1:      base.Hier.DL1.Stats,
		SecureDL1:    sec.Hier.DL1.Stats,
		BaseL2:       base.Hier.L2.Stats,
		SecureL2:     sec.Hier.L2.Stats,
		Overhead:     float64(sec.Stats.Cycles)/float64(base.Stats.Cycles) - 1,
	}
	releaseCore(pipeline.DefaultConfig(), base)
	releaseCore(pipeline.SecureConfig(), sec)
	return row, nil
}

// Fig8 runs the decoder grid through the engine sweep.
func Fig8(spec Fig8Spec) ([]Fig8Row, error) {
	rows, err := scenario.SweepRows(fig8Sweep, spec.engineSpec(), scenario.RunOptions{})
	if err != nil {
		return nil, err
	}
	return fig8Rows(rows), nil
}

func fig8Rows(rows []any) []Fig8Row {
	out := make([]Fig8Row, len(rows))
	for i, r := range rows {
		out[i] = r.(Fig8Row)
	}
	return out
}

// RenderFig8 renders the execution-time overhead grid.
func RenderFig8(rows []Fig8Row) *stats.Table {
	t := &stats.Table{
		Title:  "Figure 8: libjpeg (djpeg) execution-time overhead of SeMPE vs. unprotected baseline",
		Header: []string{"format", "size", "base cycles", "SeMPE cycles", "overhead"},
	}
	for _, r := range rows {
		t.AddRow(r.Format.String(), r.Size,
			stats.Int(r.BaseCycles), stats.Int(r.SecureCycles),
			stats.Percent(r.Overhead))
	}
	t.AddNote("paper: overheads between 31%% and 87%% across formats (PPM > GIF > BMP), largely independent of input size")
	return t
}

// RenderFig9 renders the three cache miss-rate panels.
func RenderFig9(rows []Fig8Row) *stats.Table {
	t := &stats.Table{
		Title: "Figure 9: cache miss rates, baseline vs. SeMPE (IL1 / DL1 / L2)",
		Header: []string{"format", "size",
			"IL1 base", "IL1 SeMPE", "DL1 base", "DL1 SeMPE", "L2 base", "L2 SeMPE"},
	}
	for _, r := range rows {
		t.AddRow(r.Format.String(), r.Size,
			stats.Percent(r.BaseIL1.MissRate()),
			stats.Percent(r.SecureIL1.MissRate()),
			stats.Percent(r.BaseDL1.MissRate()),
			stats.Percent(r.SecureDL1.MissRate()),
			stats.Percent(r.BaseL2.MissRate()),
			stats.Percent(r.SecureL2.MissRate()))
	}
	t.AddNote("paper: IL1 miss rates low and size-insensitive; DL1/L2 similar between baseline and SeMPE, with slight locality benefits from dual-path execution")
	return t
}
