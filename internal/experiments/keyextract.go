package experiments

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/attack"
	"repro/internal/scenario"
	"repro/internal/stats"
	"repro/internal/victim"
)

// The key-extraction sweeps: multi-bit secret recovery over the pluggable
// victim matrix. Each grid point runs attack.ExtractKey — a full per-bit
// walk of a W-bit key — and yields one attack.KeyRecovery row, a flat
// JSON-round-trippable struct, so both sweeps are shardable through the
// cluster and persistable in the store.
//
// Two scenarios render the machinery:
//
//   - keyextract: the victim matrix (attacker x victim x width x gap x
//     arch) at the strongest-attacker default (gap 0).
//   - noise: the attacker-strength sweep — the same engine swept along
//     the gap axis, victim and width pinned, showing how extraction
//     degrades as the attacker loses control of the train-to-probe window.

// KeyExtractSpec parameterizes the key-extraction grid.
type KeyExtractSpec struct {
	Attackers []attack.Kind
	Victims   []string
	Widths    []int
	Gaps      []int
	Archs     []bool // false = baseline, true = SeMPE
	Trials    int    // per bit
	Seed      int64
	Noise     int
	Workers   int
}

// DefaultKeyExtractSpec is the keyextract scenario's default grid: both
// attacker families against the leaky multi-bit victims plus the
// constant-time negative control, 8-bit keys, strongest attacker.
func DefaultKeyExtractSpec() KeyExtractSpec {
	d := attack.DefaultKeyParams(attack.BPProbe, false)
	return KeyExtractSpec{
		Attackers: attack.AllKinds(),
		Victims:   []string{"keyloop", "modexp", "ctcompare"},
		Widths:    []int{8},
		Gaps:      []int{0},
		Archs:     []bool{false, true},
		Trials:    d.Trials,
		Seed:      d.Seed,
		Noise:     d.Noise,
	}
}

// DefaultNoiseSpec is the noise scenario's default grid: the keyloop
// victim at width 4 swept along the attacker-strength axis.
func DefaultNoiseSpec() KeyExtractSpec {
	s := DefaultKeyExtractSpec()
	s.Victims = []string{"keyloop"}
	s.Widths = []int{4}
	s.Gaps = []int{0, 16, 64, 256, 512}
	s.Trials = 30
	return s
}

// keyExtractSpecOf parses spec params over the given defaults (keyextract
// and noise share the parser; only their defaults differ).
func keyExtractSpecOf(spec scenario.Spec, defaults func() KeyExtractSpec) (KeyExtractSpec, error) {
	if err := checkParams(spec, "attackers", "victims", "widths", "gaps", "archs", "trials", "seed", "noise"); err != nil {
		return KeyExtractSpec{}, err
	}
	f := defaults()
	if spec.Quick {
		f.Trials = 12
		f.Widths = []int{4}
		if len(f.Gaps) > 1 {
			f.Gaps = []int{0, 64, 512}
		}
	}
	var err error
	if v, ok := spec.Params["attackers"]; ok {
		f.Attackers = f.Attackers[:0]
		for _, s := range splitCSV(v) {
			k, err := attack.ParseKind(s)
			if err != nil {
				return KeyExtractSpec{}, fmt.Errorf("attackers: %w", err)
			}
			f.Attackers = append(f.Attackers, k)
		}
	}
	if v, ok := spec.Params["victims"]; ok {
		f.Victims = f.Victims[:0]
		for _, s := range splitCSV(v) {
			if _, err := victim.Lookup(s); err != nil {
				return KeyExtractSpec{}, fmt.Errorf("victims: %w", err)
			}
			f.Victims = append(f.Victims, s)
		}
	}
	if v, ok := spec.Params["widths"]; ok {
		if f.Widths, err = parseInts(v); err != nil {
			return KeyExtractSpec{}, fmt.Errorf("widths: %w", err)
		}
	}
	for _, w := range f.Widths {
		if w < 1 || w > victim.MaxWidth {
			return KeyExtractSpec{}, fmt.Errorf("widths: %d out of range [1,%d]", w, victim.MaxWidth)
		}
	}
	if v, ok := spec.Params["gaps"]; ok {
		if f.Gaps, err = parseInts(v); err != nil {
			return KeyExtractSpec{}, fmt.Errorf("gaps: %w", err)
		}
	}
	for _, g := range f.Gaps {
		if g < 0 {
			return KeyExtractSpec{}, fmt.Errorf("gaps: %d must be >= 0", g)
		}
	}
	if v, ok := spec.Params["archs"]; ok {
		f.Archs = f.Archs[:0]
		for _, s := range splitCSV(v) {
			secure, err := attack.ParseArch(s)
			if err != nil {
				return KeyExtractSpec{}, fmt.Errorf("archs: %w", err)
			}
			f.Archs = append(f.Archs, secure)
		}
	}
	if v, ok := spec.Params["trials"]; ok {
		if f.Trials, err = strconv.Atoi(v); err != nil {
			return KeyExtractSpec{}, fmt.Errorf("trials: bad integer %q", v)
		}
	}
	if f.Trials <= 0 {
		return KeyExtractSpec{}, fmt.Errorf("trials: must be >= 1, have %d", f.Trials)
	}
	if v, ok := spec.Params["seed"]; ok {
		if f.Seed, err = strconv.ParseInt(v, 10, 64); err != nil {
			return KeyExtractSpec{}, fmt.Errorf("seed: bad integer %q", v)
		}
	}
	if v, ok := spec.Params["noise"]; ok {
		if f.Noise, err = strconv.Atoi(v); err != nil {
			return KeyExtractSpec{}, fmt.Errorf("noise: bad integer %q", v)
		}
	}
	if f.Noise < 0 {
		return KeyExtractSpec{}, fmt.Errorf("noise: must be >= 0, have %d", f.Noise)
	}
	return f, nil
}

// intNames renders an int axis.
func intNames(xs []int) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = strconv.Itoa(x)
	}
	return out
}

// newKeyExtractSweep builds a key-extraction sweep over the given
// defaults. keyextract and noise get separate sweep IDs (they expand
// different default grids, and the store keys rows by sweep ID), but
// share every line of behavior.
func newKeyExtractSweep(id string, defaults func() KeyExtractSpec) *scenario.Sweep {
	return &scenario.Sweep{
		ID: id,
		Axes: func(spec scenario.Spec) ([]scenario.Axis, error) {
			f, err := keyExtractSpecOf(spec, defaults)
			if err != nil {
				return nil, err
			}
			return []scenario.Axis{
				{Name: "attacker", Values: attackerNames(f.Attackers)},
				{Name: "victim", Values: f.Victims},
				{Name: "width", Values: intNames(f.Widths)},
				{Name: "gap", Values: intNames(f.Gaps)},
				{Name: "arch", Values: archNames(f.Archs)},
			}, nil
		},
		Run: func(spec scenario.Spec, p scenario.Point) (any, error) {
			f, err := keyExtractSpecOf(spec, defaults)
			if err != nil {
				return nil, err
			}
			return attack.ExtractKey(attack.KeyParams{
				Kind:   f.Attackers[p.Coords[0]],
				Victim: f.Victims[p.Coords[1]],
				Width:  f.Widths[p.Coords[2]],
				Gap:    f.Gaps[p.Coords[3]],
				Secure: f.Archs[p.Coords[4]],
				Trials: f.Trials,
				Seed:   f.Seed,
				Noise:  f.Noise,
				Key:    -1,
			})
		},
		DecodeRow: decodeRowAs[attack.KeyRecovery],
	}
}

var (
	keyExtractSweep = newKeyExtractSweep("keyextract", DefaultKeyExtractSpec)
	noiseSweep      = newKeyExtractSweep("keynoise", DefaultNoiseSpec)
)

// keyRows narrows the engine's rows.
func keyRows(rows []any) []attack.KeyRecovery {
	out := make([]attack.KeyRecovery, len(rows))
	for i, r := range rows {
		out[i] = r.(attack.KeyRecovery)
	}
	return out
}

func (f KeyExtractSpec) engineSpec() scenario.Spec {
	return scenario.Spec{
		Workers: f.Workers,
		Params: map[string]string{
			"attackers": strings.Join(attackerNames(f.Attackers), ","),
			"victims":   strings.Join(f.Victims, ","),
			"widths":    strings.Join(intNames(f.Widths), ","),
			"gaps":      strings.Join(intNames(f.Gaps), ","),
			"archs":     strings.Join(archNames(f.Archs), ","),
			"trials":    strconv.Itoa(f.Trials),
			"seed":      strconv.FormatInt(f.Seed, 10),
			"noise":     strconv.Itoa(f.Noise),
		},
	}
}

// KeyExtractMatrix runs the keyextract sweep through the engine — the
// typed entry point for Go callers.
func KeyExtractMatrix(spec KeyExtractSpec) ([]attack.KeyRecovery, error) {
	rows, err := scenario.SweepRows(keyExtractSweep, spec.engineSpec(), scenario.RunOptions{})
	if err != nil {
		return nil, err
	}
	return keyRows(rows), nil
}

// tteCell renders mean trials-to-extraction; "-" when nothing extracted.
func tteCell(k attack.KeyRecovery) any {
	if k.BitsExtracted == 0 {
		return "-"
	}
	return stats.Float(k.MeanTTE, 1)
}

// RenderKeyExtract renders the victim-matrix view.
func RenderKeyExtract(rows []attack.KeyRecovery) *stats.Table {
	t := &stats.Table{
		Title:  "Key extraction: multi-bit secret recovery over the victim matrix, baseline vs. SeMPE",
		Header: []string{"attacker", "victim", "arch", "W", "gap", "bits", "key", "recovered", "min acc", "mean TTE", "max |t|", "verdict"},
	}
	for _, k := range rows {
		t.AddRow(k.Attacker, k.Victim, k.Arch, stats.Int(uint64(k.Width)), stats.Int(uint64(k.Gap)),
			fmt.Sprintf("%d/%d", k.BitsExtracted, k.Width),
			fmt.Sprintf("%#x", k.Key), fmt.Sprintf("%#x", k.Recovered),
			stats.Percent(k.MinAccuracy), tteCell(k), stats.Float(k.MaxAbsT, 1), k.Verdict())
	}
	t.AddNote("bits = confidently extracted bits (per-bit random-secret CI clears 50%% AND majority guess correct)")
	t.AddNote("min acc = worst per-bit accuracy over informative trials; mean TTE = mean trials until a bit's CI clears chance")
	t.AddNote("expected: baseline extracts whole keys from leaky victims; ctcompare (constant-time control) and every SeMPE row stay SECURE")
	return t
}

// RenderNoise renders the attacker-strength view: extraction quality as a
// function of the gap activity between train and probe.
func RenderNoise(rows []attack.KeyRecovery) *stats.Table {
	t := &stats.Table{
		Title:  "Attacker-strength sweep: key extraction vs. train-to-probe gap activity",
		Header: []string{"attacker", "victim", "arch", "W", "gap", "bits", "min acc", "mean recovery", "mean TTE", "verdict"},
	}
	for _, k := range rows {
		t.AddRow(k.Attacker, k.Victim, k.Arch, stats.Int(uint64(k.Width)), stats.Int(uint64(k.Gap)),
			fmt.Sprintf("%d/%d", k.BitsExtracted, k.Width),
			stats.Percent(k.MinAccuracy), stats.Percent(k.MeanRecovery), tteCell(k), k.Verdict())
	}
	t.AddNote("gap = units of uncalibratable branch/memory activity injected between the victim's training and the probe")
	t.AddNote("expected: extraction quality degrades (accuracy down, TTE up) as gap grows; SeMPE stays at chance at every strength")
	return t
}
