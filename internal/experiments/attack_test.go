package experiments

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/attack"
	"repro/internal/scenario"
	"repro/internal/stattest"
)

// TestSpectreAcceptance is the attack lab's acceptance grid through the
// registry: on the unprotected baseline both attackers recover the secret
// bit with >= 99% success and TVLA |t| >= 4.5; under SeMPE the same
// attacks report recovery at chance and |t| < 4.5. Fixed seed, quick grid.
func TestSpectreAcceptance(t *testing.T) {
	sc, ok := scenario.Lookup("spectre")
	if !ok {
		t.Fatal("spectre not registered")
	}
	res, err := scenario.Run(sc, scenario.Spec{Quick: true, Params: map[string]string{"trials": "120"}}, scenario.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 (2 attackers x 2 archs)", len(res.Rows))
	}
	for _, r := range res.Rows {
		a := r.(attack.Assessment)
		switch a.Arch {
		case "baseline":
			if a.Recovery < 0.99 {
				t.Errorf("%s/%s: recovery %.3f, want >= 0.99", a.Attacker, a.Arch, a.Recovery)
			}
			if a.MaxAbsT < stattest.TVLAThreshold {
				t.Errorf("%s/%s: max |t| %.2f, want >= %.1f", a.Attacker, a.Arch, a.MaxAbsT, stattest.TVLAThreshold)
			}
		case "sempe":
			if a.Recovery < 0.35 || a.Recovery > 0.65 || a.Recovered() {
				t.Errorf("%s/%s: recovery %.3f (CI %.3f..%.3f), want chance", a.Attacker, a.Arch, a.Recovery, a.CILo, a.CIHi)
			}
			if a.MaxAbsT >= stattest.TVLAThreshold {
				t.Errorf("%s/%s: max |t| %.2f, want < %.1f", a.Attacker, a.Arch, a.MaxAbsT, stattest.TVLAThreshold)
			}
		default:
			t.Errorf("unexpected arch %q", a.Arch)
		}
	}
}

// The attack sweep must be shardable: rows survive a JSON round trip
// exactly, which is what cluster distribution and store persistence rely
// on.
func TestAttackRowRoundTrip(t *testing.T) {
	if !attackSweep.Shardable() {
		t.Fatal("attack sweep is not shardable")
	}
	spec := scenario.Spec{Quick: true, Params: map[string]string{"trials": "10", "attackers": "bp", "archs": "baseline"}}
	rows, err := scenario.SweepRows(attackSweep, spec, scenario.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range rows {
		raw, err := json.Marshal(row)
		if err != nil {
			t.Fatal(err)
		}
		back, err := attackSweep.DecodeRow(raw)
		if err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		if !reflect.DeepEqual(row, back) {
			t.Errorf("row %d did not round-trip:\n%+v\n%+v", i, row, back)
		}
	}
}

// Both attack scenarios render from the same sweep, so a RowCache-equipped
// run simulates the grid once.
func TestSpectreTVLAShareSweep(t *testing.T) {
	spectre, _ := scenario.Lookup("spectre")
	tvla, ok := scenario.Lookup("tvla")
	if !ok {
		t.Fatal("tvla not registered")
	}
	if spectre.Sweep != tvla.Sweep {
		t.Error("spectre and tvla do not share a sweep")
	}
	spec := scenario.Spec{Quick: true, Params: map[string]string{"trials": "8", "attackers": "cache", "archs": "sempe"}}
	cache := scenario.NewRowCache()
	r1, err := scenario.Run(spectre, spec, scenario.RunOptions{Rows: cache})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := scenario.Run(tvla, spec, scenario.RunOptions{Rows: cache})
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Tables) != 1 || len(r2.Tables) != 1 {
		t.Fatalf("tables: %d, %d", len(r1.Tables), len(r2.Tables))
	}
	// Identical rows prove the cache hit (one simulated grid, two renders).
	if !reflect.DeepEqual(r1.Rows, r2.Rows) {
		t.Error("tvla run did not reuse spectre's cached rows")
	}
}

func TestAttackParamErrors(t *testing.T) {
	cases := []struct {
		params map[string]string
		want   string
	}{
		{map[string]string{"attacker": "bp"}, "unknown parameter"},
		{map[string]string{"attackers": "bogus"}, "attackers:"},
		{map[string]string{"archs": "fort-knox"}, "archs:"},
		{map[string]string{"trials": "many"}, "trials:"},
		{map[string]string{"seed": "x"}, "seed:"},
		{map[string]string{"noise": "loud"}, "noise:"},
	}
	for _, c := range cases {
		_, err := attackSpecOf(scenario.Spec{Params: c.params})
		if err == nil {
			t.Errorf("params %v: no error", c.params)
			continue
		}
		if !contains(err.Error(), c.want) {
			t.Errorf("params %v: error %q does not name the parameter (%q)", c.params, err, c.want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
