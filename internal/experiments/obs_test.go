package experiments

import (
	"encoding/json"
	"io"
	"reflect"
	"testing"

	"repro/internal/compile"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/scenario"
	"repro/internal/workloads"
)

// TestObservabilityDifferential is the instrumentation-inertness gate:
// every registered scenario, run with the span journal attached and
// without, must produce byte-identical stable JSON and identical typed
// rows. Observability claims to be a pure observer — metrics are
// scrape-time reads and journal writes happen outside the simulated
// machine — and this asserts that claim over the full evaluation surface,
// reusing the superblock differential's reduced grids.
func TestObservabilityDifferential(t *testing.T) {
	for _, sc := range scenario.Scenarios() {
		spec, ok := superblockDiffSpecs[sc.Name]
		if !ok {
			t.Errorf("scenario %q has no differential spec; add one to superblockDiffSpecs", sc.Name)
			continue
		}
		t.Run(sc.Name, func(t *testing.T) {
			plain, err := scenario.Run(sc, spec, scenario.RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			j := obs.NewJournal()
			observed, err := scenario.Run(sc, spec, scenario.RunOptions{Journal: j})
			if err != nil {
				t.Fatal(err)
			}

			plainJSON, err := json.MarshalIndent(plain.Stable(), "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			observedJSON, err := json.MarshalIndent(observed.Stable(), "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			if string(plainJSON) != string(observedJSON) {
				t.Errorf("stable JSON differs with the journal attached:\n--- plain ---\n%s\n--- observed ---\n%s", plainJSON, observedJSON)
			}
			if !reflect.DeepEqual(plain.Rows, observed.Rows) {
				t.Errorf("typed rows differ with the journal attached")
			}

			// The journal actually observed the run: one sweep span and one
			// point span per grid point, properly paired.
			counts := map[string]int{}
			for _, e := range j.Events() {
				counts[e.Name+"/"+e.Phase]++
			}
			if counts["sweep/begin"] != 1 || counts["sweep/end"] != 1 {
				t.Errorf("sweep spans = %v, want one begin/end pair", counts)
			}
			if counts["point/begin"] != observed.Points || counts["point/end"] != observed.Points {
				t.Errorf("point spans = %v, want %d begin/end pairs", counts, observed.Points)
			}
		})
	}
}

// TestSteadyStateZeroAllocWithMetrics guards the 0 allocs/op contract of
// the simulator's fetch-to-commit loop with the observability layer active:
// the process-wide metric families are registered (the attack counters come
// in with this package's imports) and a scrape runs mid-measurement
// set-up. Metrics are scrape-time reads of existing atomics, so the hot
// loop must stay allocation-free.
func TestSteadyStateZeroAllocWithMetrics(t *testing.T) {
	spec := workloads.HarnessSpec{Kind: workloads.Quicksort, W: 2, I: 1 << 20}
	out, err := compile.Compile(workloads.Harness(spec), compile.Plain)
	if err != nil {
		t.Fatal(err)
	}
	core := pipeline.New(pipeline.DefaultConfig(), out.Prog)
	for i := 0; i < 10_000; i++ {
		if err := core.StepCycle(); err != nil {
			t.Fatal(err)
		}
	}

	// Scrape the full registry between warm-up and measurement: rendering
	// must not make the simulator loop allocate afterwards.
	obs.Default().WriteText(io.Discard)

	var stepErr error
	allocs := testing.AllocsPerRun(100, func() {
		if core.Halted() {
			stepErr = io.ErrUnexpectedEOF
			return
		}
		if err := core.StepCycle(); err != nil {
			stepErr = err
		}
	})
	if stepErr != nil {
		t.Fatal(stepErr)
	}
	if allocs != 0 {
		t.Errorf("steady-state StepCycle with metrics registered: %.1f allocs/op, want 0", allocs)
	}
}
