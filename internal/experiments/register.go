package experiments

import (
	"repro/internal/scenario"
	"repro/internal/stats"
)

// The paper's artifacts and the security sweep, registered in the order
// `-exp all` renders them. Fig. 10a/b and Table I are three renderings of
// one microbenchmark sweep, and Fig. 8/9 two renderings of one djpeg grid:
// sharing the Sweep lets a RowCache-equipped invocation simulate each grid
// once.
func init() {
	scenario.Register(&scenario.Scenario{
		Name:        "table2",
		Description: "Table II: baseline microarchitecture configuration echo",
		Sweep:       table2Sweep,
		Render: func(scenario.Spec, []any) []*stats.Table {
			return []*stats.Table{Table2()}
		},
	})
	scenario.Register(&scenario.Scenario{
		Name:        "fig8",
		Description: "Fig. 8: djpeg execution-time overhead grid (formats x sizes); params: sparsity, seed, sizes",
		Sweep:       fig8Sweep,
		Render: func(_ scenario.Spec, rows []any) []*stats.Table {
			return []*stats.Table{RenderFig8(fig8Rows(rows))}
		},
	})
	scenario.Register(&scenario.Scenario{
		Name:        "fig9",
		Description: "Fig. 9: cache miss rates over the djpeg grid; params: sparsity, seed, sizes",
		Sweep:       fig8Sweep,
		Render: func(_ scenario.Spec, rows []any) []*stats.Table {
			return []*stats.Table{RenderFig9(fig8Rows(rows))}
		},
	})
	scenario.Register(&scenario.Scenario{
		Name:        "fig10a",
		Description: "Fig. 10a: microbenchmark slowdown vs. baseline (kernels x W); params: kinds, ws, iters, secret",
		Sweep:       fig10Sweep,
		Render: func(_ scenario.Spec, rows []any) []*stats.Table {
			return []*stats.Table{RenderFig10a(fig10Rows(rows))}
		},
	})
	scenario.Register(&scenario.Scenario{
		Name:        "fig10b",
		Description: "Fig. 10b: slowdown normalized to the ideal W+1; params: kinds, ws, iters, secret",
		Sweep:       fig10Sweep,
		Render: func(_ scenario.Spec, rows []any) []*stats.Table {
			return []*stats.Table{RenderFig10b(fig10Rows(rows))}
		},
	})
	scenario.Register(&scenario.Scenario{
		Name:        "table1",
		Description: "Table I: approach comparison with measured worst-case overheads; params: kinds, ws, iters, secret",
		Sweep:       fig10Sweep,
		Render: func(_ scenario.Spec, rows []any) []*stats.Table {
			return []*stats.Table{Table1(fig10Rows(rows))}
		},
	})
	scenario.Register(&scenario.Scenario{
		Name:        "ablation",
		Description: "SPM geometry ablation: jbTable depth (slots) x SPM bandwidth, with §IV-E overflow downgrades; params: kind, w, iters, slots, bws",
		Sweep:       ablationSweep,
		Render: func(spec scenario.Spec, rows []any) []*stats.Table {
			return []*stats.Table{RenderAblation(spec, ablationRows(rows))}
		},
	})
	scenario.Register(&scenario.Scenario{
		Name:        "spectre",
		Description: "attack lab: Spectre-PHT predictor probe + DL1 prime+probe secret recovery, baseline vs. SeMPE; params: attackers, archs, trials, seed, noise",
		Sweep:       attackSweep,
		Render: func(_ scenario.Spec, rows []any) []*stats.Table {
			return []*stats.Table{RenderSpectre(attackRows(rows))}
		},
	})
	scenario.Register(&scenario.Scenario{
		Name:        "tvla",
		Description: "attack lab: TVLA fixed-vs-random leakage assessment per observable (same sweep as spectre); params: attackers, archs, trials, seed, noise",
		Sweep:       attackSweep,
		Render: func(_ scenario.Spec, rows []any) []*stats.Table {
			return []*stats.Table{RenderTVLA(attackRows(rows))}
		},
	})
	scenario.Register(&scenario.Scenario{
		Name:        "keyextract",
		Description: "attack lab: multi-bit key extraction over the victim matrix (attacker x victim x width x gap x arch); params: attackers, victims, widths, gaps, archs, trials, seed, noise",
		Sweep:       keyExtractSweep,
		Render: func(_ scenario.Spec, rows []any) []*stats.Table {
			return []*stats.Table{RenderKeyExtract(keyRows(rows))}
		},
	})
	scenario.Register(&scenario.Scenario{
		Name:        "noise",
		Description: "attack lab: attacker-strength sweep — key extraction vs. train-to-probe gap activity; params: attackers, victims, widths, gaps, archs, trials, seed, noise",
		Sweep:       noiseSweep,
		Render: func(_ scenario.Spec, rows []any) []*stats.Table {
			return []*stats.Table{RenderNoise(keyRows(rows))}
		},
	})
	scenario.Register(&scenario.Scenario{
		Name:        "leakmatrix",
		Description: "security sweep: observable-channel distinguisher, baseline vs. SeMPE (kernels x W); params: kinds, ws, iters, secrets",
		Sweep:       leakSweep,
		Render: func(_ scenario.Spec, rows []any) []*stats.Table {
			lrs := make([]LeakRow, len(rows))
			for i, r := range rows {
				lrs[i] = r.(LeakRow)
			}
			return []*stats.Table{RenderLeakMatrix(lrs)}
		},
	})
}
