package experiments

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/attack"
	"repro/internal/scenario"
	"repro/internal/stats"
	"repro/internal/stattest"
)

// The attack-lab sweep: run every requested attacker against every
// requested architecture, each grid point producing one
// attack.Assessment (TVLA fixed-vs-random batches plus the
// secret-recovery experiment). The row is a flat struct of primitives, so
// the sweep is shardable: `spectre` and `tvla` both render it, and the
// cluster coordinator and result store round-trip it through JSON.

// AttackSpec parameterizes the attack sweep.
type AttackSpec struct {
	Attackers []attack.Kind
	Archs     []bool // false = baseline, true = SeMPE
	Trials    int
	Seed      int64
	Noise     int
	Workers   int
}

// DefaultAttackSpec runs both attackers against both architectures with
// the attack package's default trial budget.
func DefaultAttackSpec() AttackSpec {
	d := attack.DefaultParams(attack.BPProbe, false)
	return AttackSpec{
		Attackers: attack.AllKinds(),
		Archs:     []bool{false, true},
		Trials:    d.Trials,
		Seed:      d.Seed,
		Noise:     d.Noise,
	}
}

func attackSpecOf(spec scenario.Spec) (AttackSpec, error) {
	if err := checkParams(spec, "attackers", "archs", "trials", "seed", "noise"); err != nil {
		return AttackSpec{}, err
	}
	f := DefaultAttackSpec()
	if spec.Quick {
		f.Trials = 30
	}
	var err error
	if v, ok := spec.Params["attackers"]; ok {
		f.Attackers = f.Attackers[:0]
		for _, s := range splitCSV(v) {
			k, err := attack.ParseKind(s)
			if err != nil {
				return AttackSpec{}, fmt.Errorf("attackers: %w", err)
			}
			f.Attackers = append(f.Attackers, k)
		}
	}
	if v, ok := spec.Params["archs"]; ok {
		f.Archs = f.Archs[:0]
		for _, s := range splitCSV(v) {
			secure, err := attack.ParseArch(s)
			if err != nil {
				return AttackSpec{}, fmt.Errorf("archs: %w", err)
			}
			f.Archs = append(f.Archs, secure)
		}
	}
	if v, ok := spec.Params["trials"]; ok {
		if f.Trials, err = strconv.Atoi(v); err != nil {
			return AttackSpec{}, fmt.Errorf("trials: bad integer %q", v)
		}
	}
	if f.Trials <= 0 {
		return AttackSpec{}, fmt.Errorf("trials: must be >= 1, have %d", f.Trials)
	}
	if v, ok := spec.Params["seed"]; ok {
		if f.Seed, err = strconv.ParseInt(v, 10, 64); err != nil {
			return AttackSpec{}, fmt.Errorf("seed: bad integer %q", v)
		}
	}
	if v, ok := spec.Params["noise"]; ok {
		if f.Noise, err = strconv.Atoi(v); err != nil {
			return AttackSpec{}, fmt.Errorf("noise: bad integer %q", v)
		}
	}
	if f.Noise < 0 {
		return AttackSpec{}, fmt.Errorf("noise: must be >= 0, have %d", f.Noise)
	}
	return f, nil
}

// attackerNames and archNames are the single axis-value mapping shared by
// the sweep's Axes and AttackSpec.engineSpec, so the two can never
// desynchronize.
func attackerNames(kinds []attack.Kind) []string {
	out := make([]string, len(kinds))
	for i, k := range kinds {
		out[i] = k.String()
	}
	return out
}

func archNames(archs []bool) []string {
	out := make([]string, len(archs))
	for i, secure := range archs {
		out[i] = attack.ArchName(secure)
	}
	return out
}

var attackSweep = &scenario.Sweep{
	ID: "attack",
	Axes: func(spec scenario.Spec) ([]scenario.Axis, error) {
		f, err := attackSpecOf(spec)
		if err != nil {
			return nil, err
		}
		return []scenario.Axis{
			{Name: "attacker", Values: attackerNames(f.Attackers)},
			{Name: "arch", Values: archNames(f.Archs)},
		}, nil
	},
	Run: func(spec scenario.Spec, p scenario.Point) (any, error) {
		f, err := attackSpecOf(spec)
		if err != nil {
			return nil, err
		}
		params := attack.Params{
			Kind:   f.Attackers[p.Coords[0]],
			Secure: f.Archs[p.Coords[1]],
			Trials: f.Trials,
			Seed:   f.Seed,
			Noise:  f.Noise,
		}
		return attack.RunAssessment(params)
	},
	DecodeRow: decodeRowAs[attack.Assessment],
}

// attackRows narrows the engine's rows.
func attackRows(rows []any) []attack.Assessment {
	out := make([]attack.Assessment, len(rows))
	for i, r := range rows {
		out[i] = r.(attack.Assessment)
	}
	return out
}

func (f AttackSpec) engineSpec() scenario.Spec {
	return scenario.Spec{
		Workers: f.Workers,
		Params: map[string]string{
			"attackers": strings.Join(attackerNames(f.Attackers), ","),
			"archs":     strings.Join(archNames(f.Archs), ","),
			"trials":    strconv.Itoa(f.Trials),
			"seed":      strconv.FormatInt(f.Seed, 10),
			"noise":     strconv.Itoa(f.Noise),
		},
	}
}

// AttackMatrix runs the attack sweep through the engine — the typed entry
// point for Go callers.
func AttackMatrix(spec AttackSpec) ([]attack.Assessment, error) {
	rows, err := scenario.SweepRows(attackSweep, spec.engineSpec(), scenario.RunOptions{})
	if err != nil {
		return nil, err
	}
	return attackRows(rows), nil
}

// RenderSpectre renders the secret-recovery view of the attack sweep.
func RenderSpectre(rows []attack.Assessment) *stats.Table {
	t := &stats.Table{
		Title:  "Spectre-style attack lab: secret recovery, baseline vs. SeMPE",
		Header: []string{"attacker", "arch", "trials", "recovery", "95% CI", "max |t|", "MI (bits)", "verdict"},
	}
	for _, a := range rows {
		verdict := "SECURE"
		if a.Leaks() {
			verdict = "LEAK"
		}
		t.AddRow(a.Attacker, a.Arch, stats.Int(uint64(a.Trials)),
			stats.Percent(a.Recovery),
			fmt.Sprintf("%.1f%%..%.1f%%", 100*a.CILo, 100*a.CIHi),
			stats.Float(a.MaxAbsT, 1), stats.Float(a.MIBits, 2), verdict)
	}
	t.AddNote("attackers: bp = Spectre-PHT branch-predictor probe; cache = DL1 prime+probe")
	t.AddNote("expected: baseline recovers the secret bit (CI above 50%%); SeMPE sits at chance")
	return t
}

// RenderTVLA renders the leakage-assessment view: one row per observation
// column, with the fixed-vs-random Welch t.
func RenderTVLA(rows []attack.Assessment) *stats.Table {
	t := &stats.Table{
		Title:  "TVLA leakage assessment: fixed-vs-random Welch t per observable",
		Header: []string{"attacker", "arch", "observable", "t", "|t| >= 4.5"},
	}
	for _, a := range rows {
		for _, c := range a.Columns {
			leak := "no"
			if c.T >= stattest.TVLAThreshold || -c.T >= stattest.TVLAThreshold {
				leak = "LEAK"
			}
			t.AddRow(a.Attacker, a.Arch, c.Column, stats.Float(c.T, 1), leak)
		}
	}
	t.AddNote("t is Welch's statistic between a fixed-secret and a random-secret trial batch; |t| >= %.1f rejects 'no leakage' (TVLA)", stattest.TVLAThreshold)
	t.AddNote("a saturated |t| of %.0g marks a deterministic, perfectly repeatable difference", stattest.TCap)
	t.AddNote("expected: every baseline probe observable leaks; every SeMPE observable reports t = 0")
	return t
}
