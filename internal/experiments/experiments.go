// Package experiments defines the paper's evaluation (§VI) as scenarios on
// the declarative sweep engine (internal/scenario): Fig. 8 (djpeg
// execution-time overhead), Fig. 9 (cache miss rates), Fig. 10a/b
// (microbenchmark slowdowns vs. nesting depth, SeMPE vs. FaCT-style CTE),
// Table I (approach comparison), Table II (the baseline configuration
// echo), and the leakmatrix security sweep (the side-channel distinguisher
// over every kernel and nesting depth).
//
// Each scenario registers itself into the scenario registry at init time;
// cmd/sempe-bench and cmd/sempe-serve resolve them by name, so the cmd
// layer never grows per-figure code. The typed entry points (Fig10, Fig8)
// run through the same engine sweeps as the registry path and are kept for
// Go callers: tests, benchmarks, and the examples.
package experiments

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"repro/internal/compile"
	"repro/internal/isa"
	"repro/internal/lang"
	"repro/internal/pipeline"
	"repro/internal/scenario"
	"repro/internal/workloads"
)

// protoPools recycles cores per configuration for the point functions,
// which harvest their row fields from the finished core and hand it back
// via releaseCore. Pooled spin-up is a Reset — cycle- and event-identical
// to a fresh construction (pipeline's TestCoreResetDifferential) — so
// sweep workers pay core construction once per configuration, not once per
// grid point.
var protoPools sync.Map // pipeline.Config -> *pipeline.Prototype

func protoFor(cfg pipeline.Config) *pipeline.Prototype {
	pi, _ := protoPools.LoadOrStore(cfg, pipeline.NewPrototype(cfg, nil))
	return pi.(*pipeline.Prototype)
}

// Run executes a compiled program on a core and returns it. The core comes
// from the per-configuration pool; callers that finish reading its state
// should return it with releaseCore (dropping it is safe, just unpooled).
func Run(cfg pipeline.Config, prog *isa.Program) (*pipeline.Core, error) {
	core := protoFor(cfg).NewCoreFor(prog)
	if err := core.Run(); err != nil {
		return nil, err
	}
	return core, nil
}

// releaseCore returns a core obtained from Run/mustRun to its
// configuration's pool. The caller must have copied out every field it
// needs; the core must not be used afterwards.
func releaseCore(cfg pipeline.Config, core *pipeline.Core) {
	if core != nil {
		protoFor(cfg).Recycle(core)
	}
}

func mustRun(cfg pipeline.Config, p *lang.Program, mode compile.Mode) (*pipeline.Core, error) {
	out, err := compile.Compile(p, mode)
	if err != nil {
		return nil, err
	}
	return Run(cfg, out.Prog)
}

// decodeRowAs is the row codec shardable sweeps install as DecodeRow: it
// inverts json.Marshal on the sweep's typed row, which is what lets the
// cluster coordinator and the on-disk store rehydrate rows computed
// elsewhere. Row types used here must round-trip exactly (primitive
// fields only; float64 survives encoding/json bit-for-bit).
func decodeRowAs[T any](raw json.RawMessage) (any, error) {
	var row T
	if err := json.Unmarshal(raw, &row); err != nil {
		return nil, err
	}
	return row, nil
}

// ------------------------------------------------- spec parameter plumbing

// checkParams rejects unknown parameter keys so a typo ("kind" for
// "kinds") fails loudly instead of silently running the default grid.
func checkParams(spec scenario.Spec, known ...string) error {
	for k := range spec.Params {
		ok := false
		for _, want := range known {
			if k == want {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("unknown parameter %q (have %s)", k, strings.Join(known, ", "))
		}
	}
	return nil
}

// splitCSV splits a comma-separated parameter; the empty string is an
// empty list.
func splitCSV(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range splitCSV(s) {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", f)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseUints(s string) ([]uint64, error) {
	var out []uint64
	for _, f := range splitCSV(s) {
		v, err := strconv.ParseUint(strings.TrimSpace(f), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad unsigned integer %q", f)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseKinds(s string) ([]workloads.Kind, error) {
	var out []workloads.Kind
	for _, f := range splitCSV(s) {
		k, err := workloads.Parse(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, k)
	}
	return out, nil
}

func kindNames(kinds []workloads.Kind) string {
	names := make([]string, len(kinds))
	for i, k := range kinds {
		names[i] = k.String()
	}
	return strings.Join(names, ",")
}

func intsCSV(vs []int) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = strconv.Itoa(v)
	}
	return strings.Join(parts, ",")
}

func uintsCSV(vs []uint64) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = strconv.FormatUint(v, 10)
	}
	return strings.Join(parts, ",")
}
