// Package experiments regenerates every table and figure of the paper's
// evaluation (§VI): Fig. 8 (djpeg execution-time overhead), Fig. 9 (cache
// miss rates), Fig. 10a/b (microbenchmark slowdowns vs. nesting depth,
// SeMPE vs. FaCT-style CTE), Table I (approach comparison), and Table II
// (the baseline configuration echo). The cmd/sempe-bench tool and the
// repository-level benchmarks are thin wrappers around this package.
package experiments

import (
	"fmt"
	"sync"

	"repro/internal/compile"
	"repro/internal/isa"
	"repro/internal/jpegsim"
	"repro/internal/lang"
	"repro/internal/pipeline"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// runGrid evaluates fn(i) for every i in [0, n), fanning the calls across a
// bounded pool of worker goroutines. Every grid point of the evaluation
// constructs an independent Core, so points are embarrassingly parallel; the
// caller writes results into a pre-sized slice indexed by i, which keeps the
// output order deterministic regardless of scheduling. The returned error is
// the lowest-indexed failure, so error reporting is deterministic too.
// workers <= 1 runs serially.
func runGrid(n, workers int, fn func(i int) error) error {
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Run executes a compiled program on a core and returns it.
func Run(cfg pipeline.Config, prog *isa.Program) (*pipeline.Core, error) {
	core := pipeline.New(cfg, prog)
	if err := core.Run(); err != nil {
		return nil, err
	}
	return core, nil
}

func mustRun(cfg pipeline.Config, p *lang.Program, mode compile.Mode) (*pipeline.Core, error) {
	out, err := compile.Compile(p, mode)
	if err != nil {
		return nil, err
	}
	return Run(cfg, out.Prog)
}

// ---------------------------------------------------------------- Fig. 10

// Fig10Row is one (kernel, W) point of Fig. 10.
type Fig10Row struct {
	Kind        workloads.Kind
	W           int
	BaseCycles  uint64
	SeMPECycles uint64
	CTECycles   uint64
	// Slowdowns relative to the unprotected baseline (Fig. 10a).
	SeMPESlowdown float64
	CTESlowdown   float64
	// Ideal slowdown = sum of all branch-path times / baseline ≈ W+1
	// (paper §IV-A); Fig. 10b normalizes to it.
	Ideal float64
}

// Fig10Spec parameterizes the microbenchmark sweep.
type Fig10Spec struct {
	Kinds  []workloads.Kind
	Ws     []int
	Iters  int
	Secret uint64 // baseline input; 0 = fall through to the last path

	// Workers bounds the goroutine pool the sweep fans out over; each
	// (kernel, W) point runs on its own Core, so results are identical to a
	// serial sweep. <= 1 runs serially.
	Workers int
}

// DefaultFig10Spec covers the paper's full W axis.
func DefaultFig10Spec() Fig10Spec {
	return Fig10Spec{
		Kinds: workloads.All(),
		Ws:    []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
		Iters: 8,
	}
}

// Fig10 measures every (kernel, W) point: the baseline binary on the
// unprotected core, the SeMPE binary on the secure core, and the
// hand-written constant-time program on the unprotected core.
func Fig10(spec Fig10Spec) ([]Fig10Row, error) {
	type point struct {
		kind workloads.Kind
		w    int
	}
	var pts []point
	for _, kind := range spec.Kinds {
		for _, w := range spec.Ws {
			pts = append(pts, point{kind, w})
		}
	}
	rows := make([]Fig10Row, len(pts))
	err := runGrid(len(pts), spec.Workers, func(i int) error {
		kind, w := pts[i].kind, pts[i].w
		hs := workloads.HarnessSpec{Kind: kind, W: w, I: spec.Iters, Secret: spec.Secret}
		structured := workloads.Harness(hs)
		base, err := mustRun(pipeline.DefaultConfig(), structured, compile.Plain)
		if err != nil {
			return fmt.Errorf("fig10 %v W=%d base: %w", kind, w, err)
		}
		sec, err := mustRun(pipeline.SecureConfig(), structured, compile.SeMPE)
		if err != nil {
			return fmt.Errorf("fig10 %v W=%d sempe: %w", kind, w, err)
		}
		cte, err := mustRun(pipeline.DefaultConfig(), workloads.HarnessCT(hs), compile.Plain)
		if err != nil {
			return fmt.Errorf("fig10 %v W=%d cte: %w", kind, w, err)
		}
		row := Fig10Row{
			Kind:        kind,
			W:           w,
			BaseCycles:  base.Stats.Cycles,
			SeMPECycles: sec.Stats.Cycles,
			CTECycles:   cte.Stats.Cycles,
			Ideal:       float64(w + 1),
		}
		row.SeMPESlowdown = float64(sec.Stats.Cycles) / float64(base.Stats.Cycles)
		row.CTESlowdown = float64(cte.Stats.Cycles) / float64(base.Stats.Cycles)
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderFig10a renders the slowdown-vs-baseline series (log-scale plot in
// the paper; we print the series values).
func RenderFig10a(rows []Fig10Row) *stats.Table {
	t := &stats.Table{
		Title:  "Figure 10a: execution-time slowdown vs. baseline (SeMPE solid, FaCT/CTE dashed)",
		Header: []string{"workload", "W", "SeMPE", "CTE(FaCT)", "CTE/SeMPE"},
	}
	for _, r := range rows {
		t.AddRow(r.Kind.String(), fmt.Sprintf("%d", r.W),
			stats.Ratio(r.SeMPESlowdown), stats.Ratio(r.CTESlowdown),
			stats.Ratio(r.CTESlowdown/r.SeMPESlowdown))
	}
	t.AddNote("paper: SeMPE 8.4-10.6x at W=10 (≈ the W+1 branch paths); CTE 3-32x at W=1, 12.9-187.3x at W=10; CTE up to 18x slower than SeMPE")
	return t
}

// RenderFig10b renders the slowdown normalized to the ideal (sum of all
// branch-path execution times).
func RenderFig10b(rows []Fig10Row) *stats.Table {
	t := &stats.Table{
		Title:  "Figure 10b: average slowdown normalized to ideal (= sum of all path times ≈ W+1)",
		Header: []string{"workload", "W", "SeMPE/ideal", "CTE/ideal"},
	}
	for _, r := range rows {
		t.AddRow(r.Kind.String(), fmt.Sprintf("%d", r.W),
			stats.Float(r.SeMPESlowdown/r.Ideal, 2),
			stats.Float(r.CTESlowdown/r.Ideal, 2))
	}
	t.AddNote("paper: SeMPE sits at or slightly below 1.0 (prefetching effect); CTE grows super-linearly above it")
	return t
}

// ----------------------------------------------------------- Fig. 8 and 9

// Fig8Row is one (format, size) cell of Fig. 8, carrying the Fig. 9 cache
// statistics from the same pair of runs.
type Fig8Row struct {
	Format   jpegsim.Format
	Size     string
	Blocks   int
	Base     *pipeline.Core
	Secure   *pipeline.Core
	Overhead float64 // SeMPE/Baseline - 1
}

// Fig8Spec parameterizes the djpeg sweep.
type Fig8Spec struct {
	Sparsity int
	Seed     uint64
	Sizes    []struct {
		Label  string
		Blocks int
	}

	// Workers bounds the goroutine pool (see Fig10Spec.Workers).
	Workers int
}

// DefaultFig8Spec mirrors the paper's grid: three formats by four sizes.
// 60% busy blocks puts the decoder in the regime where the measured
// overheads land inside the paper's 31-87% band.
func DefaultFig8Spec() Fig8Spec {
	return Fig8Spec{Sparsity: 60, Seed: 11, Sizes: jpegsim.SizeLabels}
}

// Fig8 runs the decoder grid.
func Fig8(spec Fig8Spec) ([]Fig8Row, error) {
	type cell struct {
		format jpegsim.Format
		label  string
		blocks int
	}
	var cells []cell
	for _, f := range jpegsim.Formats() {
		for _, size := range spec.Sizes {
			cells = append(cells, cell{f, size.Label, size.Blocks})
		}
	}
	rows := make([]Fig8Row, len(cells))
	err := runGrid(len(cells), spec.Workers, func(i int) error {
		cl := cells[i]
		img := jpegsim.ImageSpec{Format: cl.format, Blocks: cl.blocks, Sparsity: spec.Sparsity, Seed: spec.Seed}
		p := jpegsim.BuildProgram(img)
		base, err := mustRun(pipeline.DefaultConfig(), p, compile.Plain)
		if err != nil {
			return fmt.Errorf("fig8 %v/%s base: %w", cl.format, cl.label, err)
		}
		sec, err := mustRun(pipeline.SecureConfig(), p, compile.SeMPE)
		if err != nil {
			return fmt.Errorf("fig8 %v/%s sempe: %w", cl.format, cl.label, err)
		}
		rows[i] = Fig8Row{
			Format:   cl.format,
			Size:     cl.label,
			Blocks:   cl.blocks,
			Base:     base,
			Secure:   sec,
			Overhead: float64(sec.Stats.Cycles)/float64(base.Stats.Cycles) - 1,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderFig8 renders the execution-time overhead grid.
func RenderFig8(rows []Fig8Row) *stats.Table {
	t := &stats.Table{
		Title:  "Figure 8: libjpeg (djpeg) execution-time overhead of SeMPE vs. unprotected baseline",
		Header: []string{"format", "size", "base cycles", "SeMPE cycles", "overhead"},
	}
	for _, r := range rows {
		t.AddRow(r.Format.String(), r.Size,
			stats.Int(r.Base.Stats.Cycles), stats.Int(r.Secure.Stats.Cycles),
			stats.Percent(r.Overhead))
	}
	t.AddNote("paper: overheads between 31%% and 87%% across formats (PPM > GIF > BMP), largely independent of input size")
	return t
}

// RenderFig9 renders the three cache miss-rate panels.
func RenderFig9(rows []Fig8Row) *stats.Table {
	t := &stats.Table{
		Title: "Figure 9: cache miss rates, baseline vs. SeMPE (IL1 / DL1 / L2)",
		Header: []string{"format", "size",
			"IL1 base", "IL1 SeMPE", "DL1 base", "DL1 SeMPE", "L2 base", "L2 SeMPE"},
	}
	for _, r := range rows {
		t.AddRow(r.Format.String(), r.Size,
			stats.Percent(r.Base.Hier.IL1.Stats.MissRate()),
			stats.Percent(r.Secure.Hier.IL1.Stats.MissRate()),
			stats.Percent(r.Base.Hier.DL1.Stats.MissRate()),
			stats.Percent(r.Secure.Hier.DL1.Stats.MissRate()),
			stats.Percent(r.Base.Hier.L2.Stats.MissRate()),
			stats.Percent(r.Secure.Hier.L2.Stats.MissRate()))
	}
	t.AddNote("paper: IL1 miss rates low and size-insensitive; DL1/L2 similar between baseline and SeMPE, with slight locality benefits from dual-path execution")
	return t
}

// ----------------------------------------------------------------- Tables

// Table1 reproduces the qualitative comparison of approaches, substituting
// this repository's measured worst-case overheads for CTE and SeMPE (the
// GhostRider and Raccoon columns quote the numbers reported in the paper,
// as the paper itself does).
func Table1(rows []Fig10Row) *stats.Table {
	worstSeMPE, worstCTE := 0.0, 0.0
	for _, r := range rows {
		if r.SeMPESlowdown > worstSeMPE {
			worstSeMPE = r.SeMPESlowdown
		}
		if r.CTESlowdown > worstCTE {
			worstCTE = r.CTESlowdown
		}
	}
	t := &stats.Table{
		Title:  "Table I: comparing approaches to eliminate SDBCB",
		Header: []string{"aspect", "CTE", "GhostRider", "Raccoon", "SeMPE"},
	}
	t.AddRow("approach", "elim. cond. branch", "equalize path", "execute both paths", "execute both paths")
	t.AddRow("technique", "SW", "HW/SW", "SW", "HW/SW")
	t.AddRow("programming complexity", "High", "Low", "Low", "Low")
	t.AddRow("overheads (paper)", "187.3x", "1987x", "452x", "10.6x")
	t.AddRow("overheads (measured here)", stats.Ratio(worstCTE), "n/a", "n/a", stats.Ratio(worstSeMPE))
	t.AddRow("simple architecture", "Yes", "No", "Yes", "Yes")
	t.AddRow("backward compatible", "Yes", "No", "No", "Yes")
	t.AddNote("measured values are the worst case over the Fig. 10 sweep on this repository's simulator")
	return t
}

// Table2 echoes the simulated baseline configuration and checks it against
// the paper's Table II values.
func Table2() *stats.Table {
	cfg := pipeline.DefaultConfig()
	t := &stats.Table{
		Title:  "Table II: baseline microarchitecture model",
		Header: []string{"parameter", "value", "paper"},
	}
	t.AddRow("fetch", fmt.Sprintf("%d instructions/cycle", cfg.FetchWidth), "8")
	t.AddRow("decode", fmt.Sprintf("%d uops/cycle", cfg.DecodeWidth), "8")
	t.AddRow("rename", fmt.Sprintf("%d uops/cycle", cfg.RenameWidth), "8")
	t.AddRow("issue", fmt.Sprintf("%d uops/cycle", cfg.IssueWidth), "8")
	t.AddRow("load issue", fmt.Sprintf("%d loads/cycle", cfg.NumLoad), "2")
	t.AddRow("retire", fmt.Sprintf("%d uops/cycle", cfg.RetireWidth), "12")
	t.AddRow("reorder buffer", fmt.Sprintf("%d uops", cfg.ROBSize), "192")
	t.AddRow("physical registers", fmt.Sprintf("%d INT", cfg.PhysRegs), "256 INT, 256 FP")
	t.AddRow("issue buffers", fmt.Sprintf("%d uops", cfg.IQSize), "60 INT / 60 FP")
	t.AddRow("load/store queue", fmt.Sprintf("%d+%d entries", cfg.LQSize, cfg.SQSize), "32+32")
	t.AddRow("branch predictor", "TAGE ~31KB, ITTAGE ~6KB", "31KB TAGE, 6KB ITTAGE")
	t.AddRow("DL1 cache", fmt.Sprintf("%dKB, %d-way", cfg.Caches.DL1.SizeBytes>>10, cfg.Caches.DL1.Ways), "32KB, 2-way")
	t.AddRow("IL1 cache", fmt.Sprintf("%dKB, %d-way", cfg.Caches.IL1.SizeBytes>>10, cfg.Caches.IL1.Ways), "16KB, 2-way")
	t.AddRow("L2 cache", fmt.Sprintf("%dKB, %d-way", cfg.Caches.L2.SizeBytes>>10, cfg.Caches.L2.Ways), "256KB, 2-way")
	t.AddRow("prefetcher", "stride (DL1), stream (L2)", "stride (L1), stream (L2)")
	t.AddRow("SPM", fmt.Sprintf("%d snapshots, %d B/cycle", cfg.SPM.Slots, cfg.SPM.Bandwidth), "216KB / 30 snapshots, 64 B/cycle")
	t.AddNote("no FP pipeline or TLB is modeled; the ISA is integer-only (see DESIGN.md)")
	return t
}
