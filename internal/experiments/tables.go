package experiments

import (
	"fmt"

	"repro/internal/pipeline"
	"repro/internal/scenario"
	"repro/internal/stats"
)

// Table1 reproduces the qualitative comparison of approaches, substituting
// this repository's measured worst-case overheads for CTE and SeMPE (the
// GhostRider and Raccoon columns quote the numbers reported in the paper,
// as the paper itself does).
func Table1(rows []Fig10Row) *stats.Table {
	worstSeMPE, worstCTE := 0.0, 0.0
	for _, r := range rows {
		if r.SeMPESlowdown > worstSeMPE {
			worstSeMPE = r.SeMPESlowdown
		}
		if r.CTESlowdown > worstCTE {
			worstCTE = r.CTESlowdown
		}
	}
	t := &stats.Table{
		Title:  "Table I: comparing approaches to eliminate SDBCB",
		Header: []string{"aspect", "CTE", "GhostRider", "Raccoon", "SeMPE"},
	}
	t.AddRow("approach", "elim. cond. branch", "equalize path", "execute both paths", "execute both paths")
	t.AddRow("technique", "SW", "HW/SW", "SW", "HW/SW")
	t.AddRow("programming complexity", "High", "Low", "Low", "Low")
	t.AddRow("overheads (paper)", "187.3x", "1987x", "452x", "10.6x")
	t.AddRow("overheads (measured here)", stats.Ratio(worstCTE), "n/a", "n/a", stats.Ratio(worstSeMPE))
	t.AddRow("simple architecture", "Yes", "No", "Yes", "Yes")
	t.AddRow("backward compatible", "Yes", "No", "No", "Yes")
	t.AddNote("measured values are the worst case over the Fig. 10 sweep on this repository's simulator")
	return t
}

// Table2 echoes the simulated baseline configuration and checks it against
// the paper's Table II values.
func Table2() *stats.Table {
	cfg := pipeline.DefaultConfig()
	t := &stats.Table{
		Title:  "Table II: baseline microarchitecture model",
		Header: []string{"parameter", "value", "paper"},
	}
	t.AddRow("fetch", fmt.Sprintf("%d instructions/cycle", cfg.FetchWidth), "8")
	t.AddRow("decode", fmt.Sprintf("%d uops/cycle", cfg.DecodeWidth), "8")
	t.AddRow("rename", fmt.Sprintf("%d uops/cycle", cfg.RenameWidth), "8")
	t.AddRow("issue", fmt.Sprintf("%d uops/cycle", cfg.IssueWidth), "8")
	t.AddRow("load issue", fmt.Sprintf("%d loads/cycle", cfg.NumLoad), "2")
	t.AddRow("retire", fmt.Sprintf("%d uops/cycle", cfg.RetireWidth), "12")
	t.AddRow("reorder buffer", fmt.Sprintf("%d uops", cfg.ROBSize), "192")
	t.AddRow("physical registers", fmt.Sprintf("%d INT", cfg.PhysRegs), "256 INT, 256 FP")
	t.AddRow("issue buffers", fmt.Sprintf("%d uops", cfg.IQSize), "60 INT / 60 FP")
	t.AddRow("load/store queue", fmt.Sprintf("%d+%d entries", cfg.LQSize, cfg.SQSize), "32+32")
	t.AddRow("branch predictor", "TAGE ~31KB, ITTAGE ~6KB", "31KB TAGE, 6KB ITTAGE")
	t.AddRow("DL1 cache", fmt.Sprintf("%dKB, %d-way", cfg.Caches.DL1.SizeBytes>>10, cfg.Caches.DL1.Ways), "32KB, 2-way")
	t.AddRow("IL1 cache", fmt.Sprintf("%dKB, %d-way", cfg.Caches.IL1.SizeBytes>>10, cfg.Caches.IL1.Ways), "16KB, 2-way")
	t.AddRow("L2 cache", fmt.Sprintf("%dKB, %d-way", cfg.Caches.L2.SizeBytes>>10, cfg.Caches.L2.Ways), "256KB, 2-way")
	t.AddRow("prefetcher", "stride (DL1), stream (L2)", "stride (L1), stream (L2)")
	t.AddRow("SPM", fmt.Sprintf("%d snapshots, %d B/cycle", cfg.SPM.Slots, cfg.SPM.Bandwidth), "216KB / 30 snapshots, 64 B/cycle")
	t.AddNote("no FP pipeline or TLB is modeled; the ISA is integer-only (see DESIGN.md)")
	return t
}

// table2Sweep is the degenerate sweep behind the table2 scenario: no axes,
// one point, no simulation — the configuration echo.
var table2Sweep = &scenario.Sweep{
	ID: "table2",
	Axes: func(spec scenario.Spec) ([]scenario.Axis, error) {
		if err := checkParams(spec); err != nil {
			return nil, err
		}
		return nil, nil
	},
	Run: func(scenario.Spec, scenario.Point) (any, error) { return nil, nil },
}
