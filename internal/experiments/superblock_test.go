package experiments

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/scenario"
)

// superblockDiffSpecs maps every registered scenario to a reduced grid fast
// enough to simulate twice. TestSuperblockDifferential fails if a scenario
// registers without an entry here, so new evaluations cannot silently skip
// differential coverage.
var superblockDiffSpecs = map[string]scenario.Spec{
	"table2": {},
	"fig8":   {Params: map[string]string{"sizes": "tiny:8"}},
	"fig9":   {Params: map[string]string{"sizes": "tiny:8"}},
	"fig10a": {Params: map[string]string{"kinds": "fibonacci,ones", "ws": "1,2", "iters": "2"}},
	"fig10b": {Params: map[string]string{"kinds": "fibonacci,ones", "ws": "1,2", "iters": "2"}},
	"table1": {Params: map[string]string{"kinds": "fibonacci,ones", "ws": "1,2", "iters": "2"}},
	"ablation": {Params: map[string]string{
		"kind": "ones", "w": "2", "iters": "1", "slots": "2,30", "bws": "64"}},
	"spectre": {Quick: true, Params: map[string]string{"trials": "6"}},
	"tvla":    {Quick: true, Params: map[string]string{"trials": "6"}},
	"keyextract": {Quick: true, Params: map[string]string{
		"trials": "4", "attackers": "bp", "victims": "keyloop", "widths": "2", "gaps": "0", "archs": "baseline,sempe"}},
	"noise": {Params: map[string]string{
		"trials": "4", "attackers": "cache", "victims": "keyloop", "widths": "2", "gaps": "0,64", "archs": "baseline"}},
	"leakmatrix": {Params: map[string]string{"kinds": "fibonacci,ones", "ws": "1,2", "iters": "2", "secrets": "2"}},
}

// diffScenarios runs every registered scenario twice — once as-is, once
// with toggle applied — and asserts byte-identical stable JSON and
// identical typed rows.
func diffScenarios(t *testing.T, toggle func() (restore func())) {
	t.Helper()
	for _, sc := range scenario.Scenarios() {
		spec, ok := superblockDiffSpecs[sc.Name]
		if !ok {
			t.Errorf("scenario %q has no differential spec; add one to superblockDiffSpecs", sc.Name)
			continue
		}
		t.Run(sc.Name, func(t *testing.T) {
			on, err := scenario.Run(sc, spec, scenario.RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			restore := toggle()
			defer restore()
			off, err := scenario.Run(sc, spec, scenario.RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			onJSON, err := json.MarshalIndent(on.Stable(), "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			offJSON, err := json.MarshalIndent(off.Stable(), "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			if string(onJSON) != string(offJSON) {
				t.Errorf("stable JSON differs with the toggle applied:\n--- on ---\n%s\n--- off ---\n%s", onJSON, offJSON)
			}
			if !reflect.DeepEqual(on.Rows, off.Rows) {
				t.Errorf("typed rows differ with the toggle applied")
			}
		})
	}
}

// TestSuperblockDifferential is the superblock engine's end-to-end
// correctness gate: every registered scenario, run with the cached-trace
// front end enabled and then force-disabled, must produce byte-identical
// stable JSON and identical typed rows. The engine claims to change no
// observable — cycle counts, cache statistics, predictor state, leakage
// digests — and this asserts that claim over the full evaluation surface.
func TestSuperblockDifferential(t *testing.T) {
	diffScenarios(t, func() func() {
		prev := pipeline.SetSuperblockDefault(false)
		return func() { pipeline.SetSuperblockDefault(prev) }
	})
}

// TestWrongPathReplayDifferential is the wrong-path replay machinery's
// end-to-end gate: every registered scenario, run with superblock replay
// allowed through speculative fetch and then with wrong-path replay
// force-disabled (fetch diverts to the legacy walk while any control op is
// unresolved), must produce byte-identical stable JSON and identical typed
// rows. This exercises the replay↔legacy handoff at every flush boundary
// of the full evaluation surface.
func TestWrongPathReplayDifferential(t *testing.T) {
	diffScenarios(t, func() func() {
		prev := pipeline.SetWrongPathReplayDefault(false)
		return func() { pipeline.SetWrongPathReplayDefault(prev) }
	})
}
