package experiments

import (
	"fmt"
	"strconv"

	"repro/internal/compile"
	"repro/internal/pipeline"
	"repro/internal/scenario"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// Fig10Row is one (kernel, W) point of Fig. 10.
type Fig10Row struct {
	Kind        workloads.Kind
	W           int
	BaseCycles  uint64
	SeMPECycles uint64
	CTECycles   uint64
	// Slowdowns relative to the unprotected baseline (Fig. 10a).
	SeMPESlowdown float64
	CTESlowdown   float64
	// Ideal slowdown = sum of all branch-path times / baseline ≈ W+1
	// (paper §IV-A); Fig. 10b normalizes to it.
	Ideal float64
}

// Fig10Spec parameterizes the microbenchmark sweep.
type Fig10Spec struct {
	Kinds  []workloads.Kind
	Ws     []int
	Iters  int
	Secret uint64 // baseline input; 0 = fall through to the last path

	// Workers bounds the goroutine pool the sweep fans out over; each
	// (kernel, W) point runs on its own Core, so results are identical to a
	// serial sweep. <= 1 runs serially.
	Workers int
}

// DefaultFig10Spec covers the paper's full W axis.
func DefaultFig10Spec() Fig10Spec {
	return Fig10Spec{
		Kinds: workloads.All(),
		Ws:    []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
		Iters: 8,
	}
}

// QuickFig10Spec is the reduced sweep (-quick): the W axis endpoints plus
// one midpoint, at half the iterations.
func QuickFig10Spec() Fig10Spec {
	s := DefaultFig10Spec()
	s.Ws = []int{1, 4, 10}
	s.Iters = 4
	return s
}

// fig10SpecOf decodes an engine spec: the default (or quick) grid with
// per-parameter overrides.
func fig10SpecOf(spec scenario.Spec) (Fig10Spec, error) {
	if err := checkParams(spec, "kinds", "ws", "iters", "secret"); err != nil {
		return Fig10Spec{}, err
	}
	f := DefaultFig10Spec()
	if spec.Quick {
		f = QuickFig10Spec()
	}
	var err error
	if v, ok := spec.Params["kinds"]; ok {
		if f.Kinds, err = parseKinds(v); err != nil {
			return Fig10Spec{}, fmt.Errorf("kinds: %w", err)
		}
	}
	if v, ok := spec.Params["ws"]; ok {
		if f.Ws, err = parseInts(v); err != nil {
			return Fig10Spec{}, fmt.Errorf("ws: %w", err)
		}
	}
	if v, ok := spec.Params["iters"]; ok {
		if f.Iters, err = strconv.Atoi(v); err != nil {
			return Fig10Spec{}, fmt.Errorf("iters: %w", err)
		}
	}
	if v, ok := spec.Params["secret"]; ok {
		if f.Secret, err = strconv.ParseUint(v, 10, 64); err != nil {
			return Fig10Spec{}, fmt.Errorf("secret: %w", err)
		}
	}
	f.Workers = spec.Workers
	return f, nil
}

// engineSpec encodes the typed spec as engine parameters — the inverse of
// fig10SpecOf, so typed callers and registry clients share one sweep path.
func (f Fig10Spec) engineSpec() scenario.Spec {
	return scenario.Spec{
		Workers: f.Workers,
		Params: map[string]string{
			"kinds":  kindNames(f.Kinds),
			"ws":     intsCSV(f.Ws),
			"iters":  strconv.Itoa(f.Iters),
			"secret": strconv.FormatUint(f.Secret, 10),
		},
	}
}

// fig10Sweep is the microbenchmark grid shared by fig10a, fig10b, and
// table1.
var fig10Sweep = &scenario.Sweep{
	ID: "fig10",
	Axes: func(spec scenario.Spec) ([]scenario.Axis, error) {
		f, err := fig10SpecOf(spec)
		if err != nil {
			return nil, err
		}
		kinds := make([]string, len(f.Kinds))
		for i, k := range f.Kinds {
			kinds[i] = k.String()
		}
		ws := make([]string, len(f.Ws))
		for i, w := range f.Ws {
			ws[i] = strconv.Itoa(w)
		}
		return []scenario.Axis{
			{Name: "workload", Values: kinds},
			{Name: "W", Values: ws},
		}, nil
	},
	Run: func(spec scenario.Spec, p scenario.Point) (any, error) {
		f, err := fig10SpecOf(spec)
		if err != nil {
			return nil, err
		}
		return fig10Point(f, f.Kinds[p.Coords[0]], f.Ws[p.Coords[1]])
	},
	DecodeRow: decodeRowAs[Fig10Row],
}

// fig10Point measures one (kernel, W) point: the baseline binary on the
// unprotected core, the SeMPE binary on the secure core, and the
// hand-written constant-time program on the unprotected core.
func fig10Point(spec Fig10Spec, kind workloads.Kind, w int) (Fig10Row, error) {
	hs := workloads.HarnessSpec{Kind: kind, W: w, I: spec.Iters, Secret: spec.Secret}
	structured := workloads.Harness(hs)
	base, err := mustRun(pipeline.DefaultConfig(), structured, compile.Plain)
	if err != nil {
		return Fig10Row{}, fmt.Errorf("fig10 %v W=%d base: %w", kind, w, err)
	}
	sec, err := mustRun(pipeline.SecureConfig(), structured, compile.SeMPE)
	if err != nil {
		return Fig10Row{}, fmt.Errorf("fig10 %v W=%d sempe: %w", kind, w, err)
	}
	cte, err := mustRun(pipeline.DefaultConfig(), workloads.HarnessCT(hs), compile.Plain)
	if err != nil {
		return Fig10Row{}, fmt.Errorf("fig10 %v W=%d cte: %w", kind, w, err)
	}
	row := Fig10Row{
		Kind:        kind,
		W:           w,
		BaseCycles:  base.Stats.Cycles,
		SeMPECycles: sec.Stats.Cycles,
		CTECycles:   cte.Stats.Cycles,
		Ideal:       float64(w + 1),
	}
	row.SeMPESlowdown = float64(sec.Stats.Cycles) / float64(base.Stats.Cycles)
	row.CTESlowdown = float64(cte.Stats.Cycles) / float64(base.Stats.Cycles)
	releaseCore(pipeline.DefaultConfig(), base)
	releaseCore(pipeline.SecureConfig(), sec)
	releaseCore(pipeline.DefaultConfig(), cte)
	return row, nil
}

// Fig10 measures every (kernel, W) point of the spec through the engine
// sweep.
func Fig10(spec Fig10Spec) ([]Fig10Row, error) {
	rows, err := scenario.SweepRows(fig10Sweep, spec.engineSpec(), scenario.RunOptions{})
	if err != nil {
		return nil, err
	}
	return fig10Rows(rows), nil
}

func fig10Rows(rows []any) []Fig10Row {
	out := make([]Fig10Row, len(rows))
	for i, r := range rows {
		out[i] = r.(Fig10Row)
	}
	return out
}

// RenderFig10a renders the slowdown-vs-baseline series (log-scale plot in
// the paper; we print the series values).
func RenderFig10a(rows []Fig10Row) *stats.Table {
	t := &stats.Table{
		Title:  "Figure 10a: execution-time slowdown vs. baseline (SeMPE solid, FaCT/CTE dashed)",
		Header: []string{"workload", "W", "SeMPE", "CTE(FaCT)", "CTE/SeMPE"},
	}
	for _, r := range rows {
		t.AddRow(r.Kind.String(), fmt.Sprintf("%d", r.W),
			stats.Ratio(r.SeMPESlowdown), stats.Ratio(r.CTESlowdown),
			stats.Ratio(r.CTESlowdown/r.SeMPESlowdown))
	}
	t.AddNote("paper: SeMPE 8.4-10.6x at W=10 (≈ the W+1 branch paths); CTE 3-32x at W=1, 12.9-187.3x at W=10; CTE up to 18x slower than SeMPE")
	return t
}

// RenderFig10b renders the slowdown normalized to the ideal (sum of all
// branch-path execution times).
func RenderFig10b(rows []Fig10Row) *stats.Table {
	t := &stats.Table{
		Title:  "Figure 10b: average slowdown normalized to ideal (= sum of all path times ≈ W+1)",
		Header: []string{"workload", "W", "SeMPE/ideal", "CTE/ideal"},
	}
	for _, r := range rows {
		t.AddRow(r.Kind.String(), fmt.Sprintf("%d", r.W),
			stats.Float(r.SeMPESlowdown/r.Ideal, 2),
			stats.Float(r.CTESlowdown/r.Ideal, 2))
	}
	t.AddNote("paper: SeMPE sits at or slightly below 1.0 (prefetching effect); CTE grows super-linearly above it")
	return t
}
