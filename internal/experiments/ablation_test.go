package experiments

import (
	"encoding/json"
	"testing"

	"repro/internal/scenario"
	"repro/internal/workloads"
)

// TestAblationGeometryEffects pins the two effects the ablation axes
// isolate, on a tiny grid: a slot count below the kernel's nesting depth
// downgrades regions (§IV-E permissive overflow, counted and unprotected),
// while the Table II geometry absorbs the same kernel with zero
// overflows; and starving the SPM's bandwidth can only add snapshot-stall
// cycles.
func TestAblationGeometryEffects(t *testing.T) {
	rows, err := Ablation(AblationSpec{
		Kind:  workloads.Fibonacci,
		W:     6,
		Iters: 2,
		Slots: []int{2, 30},
		Bws:   []int{8, 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	byPoint := map[[2]int]AblationRow{}
	for _, r := range rows {
		byPoint[[2]int{r.Slots, r.Bandwidth}] = r
		if r.Slowdown <= 1.0 {
			t.Errorf("slots=%d bw=%d: slowdown %.2f, want > 1 (SeMPE executes both paths)", r.Slots, r.Bandwidth, r.Slowdown)
		}
	}
	if r := byPoint[[2]int{2, 64}]; r.NestOverflows == 0 {
		t.Errorf("2-slot SPM under W=6 nesting reported no overflows: %+v", r)
	}
	if r := byPoint[[2]int{30, 64}]; r.NestOverflows != 0 {
		t.Errorf("Table II geometry overflowed: %+v", r)
	}
	if starved, full := byPoint[[2]int{30, 8}], byPoint[[2]int{30, 64}]; starved.SPMStallCycles < full.SPMStallCycles {
		t.Errorf("8 B/cyc stalls (%d) below 64 B/cyc stalls (%d)", starved.SPMStallCycles, full.SPMStallCycles)
	}
}

// TestAblationRowCodec: the ablation rows round-trip through the sweep's
// JSON codec bit-identically — the property cluster distribution and the
// on-disk store rely on.
func TestAblationRowCodec(t *testing.T) {
	spec := scenario.Spec{Params: map[string]string{
		"kind": "ones", "w": "2", "iters": "1", "slots": "2", "bws": "32"}}
	rows, err := scenario.SweepRows(ablationSweep, spec, scenario.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range rows {
		raw, err := json.Marshal(row)
		if err != nil {
			t.Fatal(err)
		}
		back, err := ablationSweep.DecodeRow(raw)
		if err != nil {
			t.Fatal(err)
		}
		if back != row {
			t.Errorf("row %d: %+v did not round-trip (got %+v)", i, row, back)
		}
	}
}

// TestAblationBadParams: malformed or non-positive geometry parameters
// fail the run.
func TestAblationBadParams(t *testing.T) {
	for _, params := range []map[string]string{
		{"slots": "many"},
		{"slots": "0"},
		{"bws": "-8"},
		{"kind": "bogosort"},
		{"slot": "2"}, // typo'd key
	} {
		spec := scenario.Spec{Params: params}
		if _, err := scenario.SweepRows(ablationSweep, spec, scenario.RunOptions{}); err == nil {
			t.Errorf("params %v: no error", params)
		}
	}
}
