package experiments

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/compile"
	"repro/internal/isa"
	"repro/internal/leak"
	"repro/internal/pipeline"
	"repro/internal/scenario"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// LeakRow is one (kernel, W) cell of the leak-distinguisher matrix: which
// observable channels tell a family of secrets apart on the unprotected
// baseline versus under SeMPE. A correct implementation leaks on the
// baseline (the side channel the paper sets out to close exists) and on no
// channel under SeMPE.
type LeakRow struct {
	Kind     workloads.Kind
	W        int
	Secrets  []uint64
	Baseline []leak.Channel
	SeMPE    []leak.Channel
}

// Secure reports whether SeMPE closed every channel for this cell.
func (r LeakRow) Secure() bool { return len(r.SeMPE) == 0 }

// LeakMatrixSpec parameterizes the security sweep.
type LeakMatrixSpec struct {
	Kinds   []workloads.Kind
	Ws      []int
	Iters   int
	Secrets []uint64 // per point, the all-paths secret (1<<W)-1 is appended
	Workers int
}

// DefaultLeakMatrixSpec sweeps every kernel over the W axis endpoints and
// midpoint — the grid the security regression tests pin down.
func DefaultLeakMatrixSpec() LeakMatrixSpec {
	return LeakMatrixSpec{
		Kinds:   workloads.All(),
		Ws:      []int{1, 4, 10},
		Iters:   2,
		Secrets: []uint64{0, 1, 3},
	}
}

func leakSpecOf(spec scenario.Spec) (LeakMatrixSpec, error) {
	if err := checkParams(spec, "kinds", "ws", "iters", "secrets"); err != nil {
		return LeakMatrixSpec{}, err
	}
	f := DefaultLeakMatrixSpec()
	if spec.Quick {
		f.Ws = []int{1, 4}
	}
	var err error
	if v, ok := spec.Params["kinds"]; ok {
		if f.Kinds, err = parseKinds(v); err != nil {
			return LeakMatrixSpec{}, fmt.Errorf("kinds: %w", err)
		}
	}
	if v, ok := spec.Params["ws"]; ok {
		if f.Ws, err = parseInts(v); err != nil {
			return LeakMatrixSpec{}, fmt.Errorf("ws: %w", err)
		}
	}
	if v, ok := spec.Params["iters"]; ok {
		if f.Iters, err = strconv.Atoi(v); err != nil {
			return LeakMatrixSpec{}, fmt.Errorf("iters: %w", err)
		}
	}
	if v, ok := spec.Params["secrets"]; ok {
		if f.Secrets, err = parseUints(v); err != nil {
			return LeakMatrixSpec{}, fmt.Errorf("secrets: %w", err)
		}
	}
	f.Workers = spec.Workers
	return f, nil
}

func (f LeakMatrixSpec) engineSpec() scenario.Spec {
	return scenario.Spec{
		Workers: f.Workers,
		Params: map[string]string{
			"kinds":   kindNames(f.Kinds),
			"ws":      intsCSV(f.Ws),
			"iters":   strconv.Itoa(f.Iters),
			"secrets": uintsCSV(f.Secrets),
		},
	}
}

var leakSweep = &scenario.Sweep{
	ID: "leakmatrix",
	Axes: func(spec scenario.Spec) ([]scenario.Axis, error) {
		f, err := leakSpecOf(spec)
		if err != nil {
			return nil, err
		}
		kinds := make([]string, len(f.Kinds))
		for i, k := range f.Kinds {
			kinds[i] = k.String()
		}
		ws := make([]string, len(f.Ws))
		for i, w := range f.Ws {
			ws[i] = strconv.Itoa(w)
		}
		return []scenario.Axis{
			{Name: "workload", Values: kinds},
			{Name: "W", Values: ws},
		}, nil
	},
	Run: func(spec scenario.Spec, p scenario.Point) (any, error) {
		f, err := leakSpecOf(spec)
		if err != nil {
			return nil, err
		}
		return leakPoint(f, f.Kinds[p.Coords[0]], f.Ws[p.Coords[1]])
	},
	DecodeRow: decodeRowAs[LeakRow],
}

// leakPoint runs the distinguisher for one (kernel, W) cell: the same
// family of secrets on the unprotected baseline (Plain binary, default
// core) and under SeMPE (sJMP binary, secure core).
func leakPoint(spec LeakMatrixSpec, kind workloads.Kind, w int) (LeakRow, error) {
	// The spec's secret family, plus the all-paths-taken secret for this
	// depth; secrets beyond one iteration's W bits fold onto earlier paths,
	// which is harmless (the distinguisher unions over all pairs).
	secrets := append([]uint64(nil), spec.Secrets...)
	all := uint64(1)<<uint(w) - 1
	dup := false
	for _, s := range secrets {
		if s == all {
			dup = true
		}
	}
	if !dup {
		secrets = append(secrets, all)
	}
	build := func(mode compile.Mode) func(uint64) (*isa.Program, error) {
		return func(secret uint64) (*isa.Program, error) {
			hs := workloads.HarnessSpec{Kind: kind, W: w, I: spec.Iters, Secret: secret}
			out, err := compile.Compile(workloads.Harness(hs), mode)
			if err != nil {
				return nil, err
			}
			return out.Prog, nil
		}
	}
	base, err := leak.DistinguishMany(pipeline.DefaultConfig(), build(compile.Plain), secrets)
	if err != nil {
		return LeakRow{}, fmt.Errorf("leakmatrix %v W=%d baseline: %w", kind, w, err)
	}
	sec, err := leak.DistinguishMany(pipeline.SecureConfig(), build(compile.SeMPE), secrets)
	if err != nil {
		return LeakRow{}, fmt.Errorf("leakmatrix %v W=%d sempe: %w", kind, w, err)
	}
	return LeakRow{
		Kind:     kind,
		W:        w,
		Secrets:  secrets,
		Baseline: base.Leaking,
		SeMPE:    sec.Leaking,
	}, nil
}

// LeakMatrix runs the security sweep through the engine.
func LeakMatrix(spec LeakMatrixSpec) ([]LeakRow, error) {
	rows, err := scenario.SweepRows(leakSweep, spec.engineSpec(), scenario.RunOptions{})
	if err != nil {
		return nil, err
	}
	out := make([]LeakRow, len(rows))
	for i, r := range rows {
		out[i] = r.(LeakRow)
	}
	return out, nil
}

// RenderLeakMatrix renders the distinguisher matrix.
func RenderLeakMatrix(rows []LeakRow) *stats.Table {
	t := &stats.Table{
		Title:  "Leak matrix: observable channels distinguishing secrets, baseline vs. SeMPE",
		Header: []string{"workload", "W", "secrets", "baseline leaks", "SeMPE leaks", "verdict"},
	}
	for _, r := range rows {
		verdict := "SECURE"
		if !r.Secure() {
			verdict = "LEAK"
		}
		t.AddRow(r.Kind.String(), fmt.Sprintf("%d", r.W),
			uintsCSV(r.Secrets), channelList(r.Baseline), channelList(r.SeMPE), verdict)
	}
	t.AddNote("channels compared: %s", channelList(leak.AllChannels()))
	t.AddNote("expected: the unprotected baseline leaks on at least the pc-trace channel; SeMPE leaks on none")
	return t
}

func channelList(chs []leak.Channel) string {
	if len(chs) == 0 {
		return "none"
	}
	parts := make([]string, len(chs))
	for i, ch := range chs {
		parts[i] = string(ch)
	}
	return strings.Join(parts, " ")
}
