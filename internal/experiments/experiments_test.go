package experiments

import (
	"strings"
	"testing"

	"repro/internal/workloads"
)

// TestFig10Shape runs a reduced sweep and asserts the paper's qualitative
// results: SeMPE slowdown grows roughly linearly with the number of branch
// paths and stays near the ideal; CTE is always costlier than SeMPE and
// grows super-linearly; quicksort/queens carry larger CTE constants than
// fibonacci.
func TestFig10Shape(t *testing.T) {
	spec := Fig10Spec{
		Kinds: []workloads.Kind{workloads.Fibonacci, workloads.Quicksort},
		Ws:    []int{1, 4},
		Iters: 4,
	}
	rows, err := Fig10(spec)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]Fig10Row{}
	for _, r := range rows {
		byKey[r.Kind.String()+string(rune('0'+r.W))] = r
	}
	fib1, fib4 := byKey["fibonacci1"], byKey["fibonacci4"]
	qs1, qs4 := byKey["quicksort1"], byKey["quicksort4"]

	// SeMPE grows with W.
	if fib4.SeMPESlowdown <= fib1.SeMPESlowdown || qs4.SeMPESlowdown <= qs1.SeMPESlowdown {
		t.Errorf("SeMPE slowdown not increasing with W: fib %.2f->%.2f qs %.2f->%.2f",
			fib1.SeMPESlowdown, fib4.SeMPESlowdown, qs1.SeMPESlowdown, qs4.SeMPESlowdown)
	}
	// SeMPE near ideal (within 2x either way).
	for _, r := range rows {
		n := r.SeMPESlowdown / r.Ideal
		if n < 0.3 || n > 2.0 {
			t.Errorf("%v W=%d: SeMPE/ideal = %.2f, expected near 1", r.Kind, r.W, n)
		}
	}
	// CTE always costs more than SeMPE.
	for _, r := range rows {
		if r.CTESlowdown <= r.SeMPESlowdown {
			t.Errorf("%v W=%d: CTE %.2f <= SeMPE %.2f", r.Kind, r.W, r.CTESlowdown, r.SeMPESlowdown)
		}
	}
	// Quicksort's CTE constant dwarfs fibonacci's (the oblivious-sort
	// penalty, paper: fib ~3x vs queens ~32x at W=1).
	if qs1.CTESlowdown < 2*fib1.CTESlowdown {
		t.Errorf("CTE at W=1: quicksort %.2f not >> fibonacci %.2f",
			qs1.CTESlowdown, fib1.CTESlowdown)
	}
}

// TestFig8Shape asserts the djpeg results: positive overheads under ~100%,
// ordered PPM > GIF > BMP, and approximately size-independent.
func TestFig8Shape(t *testing.T) {
	spec := DefaultFig8Spec()
	spec.Sizes = spec.Sizes[:2] // 16 and 32 blocks keep the test fast
	rows, err := Fig8(spec)
	if err != nil {
		t.Fatal(err)
	}
	byFmt := map[string][]Fig8Row{}
	for _, r := range rows {
		byFmt[r.Format.String()] = append(byFmt[r.Format.String()], r)
		if r.Overhead < 0.05 || r.Overhead > 1.2 {
			t.Errorf("%v/%s overhead %.2f outside the plausible band", r.Format, r.Size, r.Overhead)
		}
	}
	if byFmt["PPM"][0].Overhead <= byFmt["GIF"][0].Overhead {
		t.Errorf("PPM overhead %.2f <= GIF %.2f", byFmt["PPM"][0].Overhead, byFmt["GIF"][0].Overhead)
	}
	if byFmt["GIF"][0].Overhead <= byFmt["BMP"][0].Overhead {
		t.Errorf("GIF overhead %.2f <= BMP %.2f", byFmt["GIF"][0].Overhead, byFmt["BMP"][0].Overhead)
	}
	// Size insensitivity: the two sizes agree within 15 points.
	for f, rs := range byFmt {
		if len(rs) == 2 {
			d := rs[0].Overhead - rs[1].Overhead
			if d < -0.15 || d > 0.15 {
				t.Errorf("%s: overhead varies with size: %.2f vs %.2f", f, rs[0].Overhead, rs[1].Overhead)
			}
		}
	}
}

func TestRenderers(t *testing.T) {
	rows := []Fig10Row{{
		Kind: workloads.Fibonacci, W: 1,
		BaseCycles: 100, SeMPECycles: 190, CTECycles: 400,
		SeMPESlowdown: 1.9, CTESlowdown: 4.0, Ideal: 2,
	}}
	var sb strings.Builder
	RenderFig10a(rows).Render(&sb)
	RenderFig10b(rows).Render(&sb)
	Table1(rows).Render(&sb)
	Table2().Render(&sb)
	out := sb.String()
	for _, want := range []string{"Figure 10a", "Figure 10b", "Table I", "Table II",
		"1.90x", "4.00x", "TAGE", "Raccoon", "192"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q", want)
		}
	}
}
