package experiments

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/scenario"
)

var update = flag.Bool("update", false, "rewrite golden files")

func lookup(t *testing.T, name string) *scenario.Scenario {
	t.Helper()
	sc, ok := scenario.Lookup(name)
	if !ok {
		t.Fatalf("scenario %q not registered", name)
	}
	return sc
}

// TestRegisteredScenarios: every paper artifact plus the security sweep
// resolves through the registry.
func TestRegisteredScenarios(t *testing.T) {
	for _, name := range []string{"fig8", "fig9", "fig10a", "fig10b", "table1", "table2", "ablation", "leakmatrix"} {
		sc := lookup(t, name)
		if sc.Description == "" {
			t.Errorf("%s: empty description", name)
		}
	}
}

// TestEngineParallelMatchesSerial asserts parallel == serial through the
// engine, once, for all scenarios — every grid point simulates on an
// independent core, so rows (cycle counts included) and rendered tables
// must be bit-identical and identically ordered at any worker count.
func TestEngineParallelMatchesSerial(t *testing.T) {
	cases := []struct {
		name string
		spec scenario.Spec
	}{
		{"fig10a", scenario.Spec{Params: map[string]string{
			"kinds": "fibonacci,ones", "ws": "1,2", "iters": "2"}}},
		{"fig8", scenario.Spec{Params: map[string]string{"sizes": "256k"}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := lookup(t, tc.name)
			serialSpec, parSpec := tc.spec, tc.spec
			serialSpec.Workers = 1
			parSpec.Workers = 4
			serial, err := scenario.Run(sc, serialSpec, scenario.RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			par, err := scenario.Run(sc, parSpec, scenario.RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(serial.Tables, par.Tables) {
				t.Errorf("rendered tables differ between serial and parallel runs")
			}
			if len(serial.Rows) != len(par.Rows) {
				t.Fatalf("row counts differ: %d vs %d", len(serial.Rows), len(par.Rows))
			}
			// Both row types are plain comparable values; compare exactly
			// (cycle counts and cache statistics included).
			for i := range serial.Rows {
				switch s := serial.Rows[i].(type) {
				case Fig10Row:
					if s != par.Rows[i].(Fig10Row) {
						t.Errorf("row %d differs:\nserial:   %+v\nparallel: %+v", i, s, par.Rows[i])
					}
				case Fig8Row:
					if s != par.Rows[i].(Fig8Row) {
						t.Errorf("row %d differs:\nserial:   %+v\nparallel: %+v", i, s, par.Rows[i])
					}
				default:
					t.Fatalf("row %d: unexpected type %T", i, s)
				}
			}
		})
	}
}

// goldenFig10Spec is the pinned quick sweep the golden file captures: the
// quick grid narrowed to two kernels so the file stays reviewable.
func goldenFig10Spec() scenario.Spec {
	return scenario.Spec{
		Quick:  true,
		Params: map[string]string{"kinds": "fibonacci,quicksort", "ws": "1,4"},
	}
}

// stableResultJSON marshals the result's stable form (wall times and
// worker count zeroed — the only nondeterminism in a Result).
func stableResultJSON(t *testing.T, res *scenario.Result) []byte {
	t.Helper()
	out, err := json.MarshalIndent(res.Stable(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(out, '\n')
}

// TestGoldenFig10QuickJSON pins the structured output of a quick Fig. 10
// sweep — spec, axes, and every typed cell including exact cycle counts —
// against testdata/fig10a_quick.golden.json. A simulator change that moves
// cycle counts legitimately regenerates it with `go test ./internal/experiments
// -run TestGolden -update`.
func TestGoldenFig10QuickJSON(t *testing.T) {
	res, err := scenario.Run(lookup(t, "fig10a"), goldenFig10Spec(), scenario.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got := stableResultJSON(t, res)
	golden := filepath.Join("testdata", "fig10a_quick.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if string(got) != string(want) {
		t.Errorf("golden mismatch for %s (regenerate with -update if the simulator legitimately changed):\ngot:\n%s", golden, got)
	}
}

// TestResultJSONRoundTrip: a Result survives the JSON wire format — what
// sempe-serve clients consume — with every typed cell intact.
func TestResultJSONRoundTrip(t *testing.T) {
	res, err := scenario.Run(lookup(t, "table2"), scenario.Spec{}, scenario.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	buf, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back scenario.Result
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if back.Scenario != res.Scenario || back.Points != res.Points {
		t.Errorf("round trip header mismatch: %+v", back)
	}
	if !reflect.DeepEqual(res.Tables, back.Tables) {
		t.Errorf("tables did not round-trip:\nin:  %+v\nout: %+v", res.Tables, back.Tables)
	}
}

// TestSweepSharing: fig10a, fig10b, and table1 declare the same sweep, so
// a row-cached invocation simulates the microbenchmark grid once; the
// scenario identity still differs per result.
func TestSweepSharing(t *testing.T) {
	spec := scenario.Spec{Params: map[string]string{"kinds": "fibonacci", "ws": "1", "iters": "1"}}
	rows := scenario.NewRowCache()
	var first []any
	for _, name := range []string{"fig10a", "fig10b", "table1"} {
		res, err := scenario.Run(lookup(t, name), spec, scenario.RunOptions{Rows: rows})
		if err != nil {
			t.Fatal(err)
		}
		if res.Scenario != name {
			t.Errorf("result names %q, want %q", res.Scenario, name)
		}
		if first == nil {
			first = res.Rows
		} else if !reflect.DeepEqual(first, res.Rows) {
			t.Errorf("%s: rows not shared from the cache", name)
		}
	}
}

// TestBadParamsRejected: a typo'd or malformed parameter fails the run
// instead of silently sweeping the default grid.
func TestBadParamsRejected(t *testing.T) {
	cases := []struct {
		name string
		spec scenario.Spec
	}{
		{"fig10a", scenario.Spec{Params: map[string]string{"kind": "fibonacci"}}}, // typo
		{"fig10a", scenario.Spec{Params: map[string]string{"ws": "one"}}},
		{"fig10a", scenario.Spec{Params: map[string]string{"kinds": "bogosort"}}},
		{"fig8", scenario.Spec{Params: map[string]string{"sizes": "17k"}}},
		{"leakmatrix", scenario.Spec{Params: map[string]string{"secrets": "-1"}}},
	}
	for _, tc := range cases {
		if _, err := scenario.Run(lookup(t, tc.name), tc.spec, scenario.RunOptions{}); err == nil {
			t.Errorf("%s with %v: no error", tc.name, tc.spec.Params)
		}
	}
}
