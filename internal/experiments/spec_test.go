package experiments

import (
	"encoding/json"
	"io"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/compile"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/scenario"
	"repro/internal/workloads"
)

// TestSpecTraceDifferential is the spec-window observability inertness gate:
// every registered scenario, run with a process-wide spec watch armed and
// without, must produce byte-identical stable JSON (cycle counts included)
// and identical typed rows. Arming the watch diverts every core — pooled
// trial cores included — onto the legacy fetch walk and fires an event
// callback on all in-flight work, so this asserts both halves of the design
// claim at once: the legacy walk is cycle-identical to the superblock replay
// path, and the emission points are pure observers. The sink only counts
// (atomically: the trial engines run cores on parallel workers); the count
// also proves the hooks actually fired across the grid.
func TestSpecTraceDifferential(t *testing.T) {
	var events atomic.Uint64
	for _, sc := range scenario.Scenarios() {
		spec, ok := superblockDiffSpecs[sc.Name]
		if !ok {
			t.Errorf("scenario %q has no differential spec; add one to superblockDiffSpecs", sc.Name)
			continue
		}
		t.Run(sc.Name, func(t *testing.T) {
			off, err := scenario.Run(sc, spec, scenario.RunOptions{})
			if err != nil {
				t.Fatal(err)
			}

			prev := pipeline.SetSpecWatchDefault(func(pipeline.SpecEvent) { events.Add(1) })
			defer pipeline.SetSpecWatchDefault(prev)
			on, err := scenario.Run(sc, spec, scenario.RunOptions{})
			pipeline.SetSpecWatchDefault(prev)
			if err != nil {
				t.Fatal(err)
			}

			offJSON, err := json.MarshalIndent(off.Stable(), "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			onJSON, err := json.MarshalIndent(on.Stable(), "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			if string(offJSON) != string(onJSON) {
				t.Errorf("stable JSON differs with the spec watch armed:\n--- off ---\n%s\n--- armed ---\n%s", offJSON, onJSON)
			}
			if !reflect.DeepEqual(off.Rows, on.Rows) {
				t.Errorf("typed rows differ with the spec watch armed")
			}
		})
	}
	// Vacuity guard: across the whole grid the armed runs must actually have
	// delivered events (table2 alone runs no simulation, so the assertion is
	// grid-wide rather than per scenario).
	if events.Load() == 0 {
		t.Error("spec watch armed across all scenarios but no events fired")
	}
}

// TestSteadyStateZeroAllocSpecDisarmed guards the other half of the
// allocation contract: with the spec-trace metric families registered (this
// package's imports pull in internal/attack's obs registrations) but every
// tracer disarmed, the fetch-to-commit loop must stay at 0 allocs/op — the
// spec hooks may only cost nil checks on the hot path.
func TestSteadyStateZeroAllocSpecDisarmed(t *testing.T) {
	spec := workloads.HarnessSpec{Kind: workloads.Quicksort, W: 2, I: 1 << 20}
	out, err := compile.Compile(workloads.Harness(spec), compile.Plain)
	if err != nil {
		t.Fatal(err)
	}
	core := pipeline.New(pipeline.DefaultConfig(), out.Prog)
	if core.SpecWatchArmed() {
		t.Fatal("spec watch unexpectedly armed; another test leaked a default")
	}
	for i := 0; i < 10_000; i++ {
		if err := core.StepCycle(); err != nil {
			t.Fatal(err)
		}
	}

	// The spec families must be registered and scrapeable before measuring.
	var text strings.Builder
	if err := obs.Default().WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "sempe_spec_wrong_path_fetches_total") {
		t.Fatal("spec metric families not registered on the default registry")
	}

	var stepErr error
	allocs := testing.AllocsPerRun(100, func() {
		if core.Halted() {
			stepErr = io.ErrUnexpectedEOF
			return
		}
		if err := core.StepCycle(); err != nil {
			stepErr = err
		}
	})
	if stepErr != nil {
		t.Fatal(stepErr)
	}
	if allocs != 0 {
		t.Errorf("steady-state StepCycle with tracer families registered but disarmed: %.1f allocs/op, want 0", allocs)
	}
}
