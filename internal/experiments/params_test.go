package experiments

import (
	"strings"
	"testing"

	"repro/internal/scenario"
)

// Scenario parameter parsing must fail loudly with the offending parameter
// named — never fall back to a silently-applied zero value. Covered edge
// cases per sweep: an unknown key (typo), and a wrong value type for each
// typed parameter.
func TestScenarioParamEdgeCases(t *testing.T) {
	type c struct {
		sweep  string
		params map[string]string
		want   string // substring the error must contain
	}
	cases := []c{
		// Unknown keys: the classic singular/plural typo per sweep.
		{"fig10", map[string]string{"kind": "ones"}, "unknown parameter"},
		{"fig8", map[string]string{"size": "tiny"}, "unknown parameter"},
		{"leakmatrix", map[string]string{"secret": "3"}, "unknown parameter"},
		{"ablation", map[string]string{"slot": "4"}, "unknown parameter"},
		{"attack", map[string]string{"trial": "9"}, "unknown parameter"},
		// Wrong value types, each naming the parameter.
		{"fig10", map[string]string{"ws": "one,two"}, "ws:"},
		{"fig10", map[string]string{"iters": "3.5"}, "iters:"},
		{"fig10", map[string]string{"kinds": "fibonachos"}, "kinds:"},
		{"fig10", map[string]string{"secret": "-1"}, "secret:"},
		{"fig8", map[string]string{"sparsity": "half"}, "sparsity:"},
		{"fig8", map[string]string{"seed": "abc"}, "seed:"},
		{"leakmatrix", map[string]string{"secrets": "zero"}, "secrets:"},
		{"leakmatrix", map[string]string{"ws": ""}, ""}, // empty axis: allowed, must not error
		{"ablation", map[string]string{"bws": "wide"}, "bws:"},
		{"ablation", map[string]string{"w": "deep"}, "w:"},
		{"attack", map[string]string{"archs": "citadel"}, "archs:"},
		{"attack", map[string]string{"noise": "lots"}, "noise:"},
		// Out-of-range values must fail loudly too, not fall back to a
		// default under a key that misdescribes the computed result.
		{"attack", map[string]string{"trials": "0"}, "trials:"},
		{"attack", map[string]string{"noise": "-1"}, "noise:"},
	}
	specOf := map[string]func(scenario.Spec) error{
		"fig10":      func(s scenario.Spec) error { _, err := fig10SpecOf(s); return err },
		"fig8":       func(s scenario.Spec) error { _, err := fig8SpecOf(s); return err },
		"leakmatrix": func(s scenario.Spec) error { _, err := leakSpecOf(s); return err },
		"ablation":   func(s scenario.Spec) error { _, err := ablationSpecOf(s); return err },
		"attack":     func(s scenario.Spec) error { _, err := attackSpecOf(s); return err },
	}
	for _, tc := range cases {
		err := specOf[tc.sweep](scenario.Spec{Params: tc.params})
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s %v: unexpected error %v", tc.sweep, tc.params, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s %v: no error, want one naming %q", tc.sweep, tc.params, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s %v: error %q does not name the parameter (%q)", tc.sweep, tc.params, err, tc.want)
		}
	}
}

// A bad parameter must also surface through the engine (axes expansion),
// not only through the typed spec helpers.
func TestBadParamFailsThroughEngine(t *testing.T) {
	sc, ok := scenario.Lookup("spectre")
	if !ok {
		t.Fatal("spectre not registered")
	}
	_, err := scenario.Run(sc, scenario.Spec{Params: map[string]string{"trials": "NaN"}}, scenario.RunOptions{})
	if err == nil || !strings.Contains(err.Error(), "trials:") {
		t.Errorf("engine run error = %v, want one naming trials", err)
	}
}

// Malformed -param flags (no '=', empty key) are rejected at the flag
// layer, before any scenario sees them.
func TestParamFlagMalformed(t *testing.T) {
	p := scenario.ParamFlag{}
	for _, bad := range []string{"ws", "=3", ""} {
		if err := p.Set(bad); err == nil {
			t.Errorf("ParamFlag.Set(%q): no error", bad)
		}
	}
	if err := p.Set("ws=1,2"); err != nil {
		t.Errorf("ParamFlag.Set(valid): %v", err)
	}
	if err := p.Set("empty="); err != nil {
		t.Errorf("ParamFlag.Set with empty value should be allowed (explicit empty axis): %v", err)
	}
	if p["ws"] != "1,2" || p["empty"] != "" {
		t.Errorf("ParamFlag contents wrong: %v", p)
	}
}
