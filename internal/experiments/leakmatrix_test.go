package experiments

import (
	"runtime"
	"strings"
	"testing"

	"repro/internal/leak"
	"repro/internal/workloads"
)

// TestLeakMatrix is the security regression for the paper's central claim,
// swept over the full matrix: all four kernels at W ∈ {1, 4, 10}. For
// every cell, every observable channel must be bit-identical across the
// whole secret family under SeMPE, while the unprotected baseline must be
// distinguishable on at least one channel — and specifically on the
// committed-PC trace, the SDBCB channel itself.
func TestLeakMatrix(t *testing.T) {
	spec := DefaultLeakMatrixSpec()
	spec.Workers = runtime.NumCPU()
	rows, err := LeakMatrix(spec)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(workloads.All()) * 3; len(rows) != want {
		t.Fatalf("matrix has %d cells, want %d", len(rows), want)
	}
	seen := map[workloads.Kind]map[int]bool{}
	for _, r := range rows {
		if seen[r.Kind] == nil {
			seen[r.Kind] = map[int]bool{}
		}
		seen[r.Kind][r.W] = true

		// SeMPE: no channel — timing, pc-trace, mem-trace, predictor, or
		// any cache level — distinguishes any pair of secrets.
		if !r.Secure() {
			t.Errorf("%v W=%d: SeMPE leaks on %v (secrets %v)", r.Kind, r.W, r.SeMPE, r.Secrets)
		}
		// Baseline: the side channel exists, and includes the PC trace.
		if len(r.Baseline) == 0 {
			t.Errorf("%v W=%d: baseline does not leak; the matrix is vacuous", r.Kind, r.W)
		}
		pcTrace := false
		for _, ch := range r.Baseline {
			if ch == leak.ChannelPCTrace {
				pcTrace = true
			}
		}
		if !pcTrace {
			t.Errorf("%v W=%d: baseline leak misses the pc-trace channel: %v", r.Kind, r.W, r.Baseline)
		}
	}
	for _, kind := range workloads.All() {
		for _, w := range []int{1, 4, 10} {
			if !seen[kind][w] {
				t.Errorf("matrix missing cell %v W=%d", kind, w)
			}
		}
	}

	// The rendered matrix reports the verdicts.
	var sb strings.Builder
	RenderLeakMatrix(rows).Render(&sb)
	if !strings.Contains(sb.String(), "SECURE") || strings.Contains(sb.String(), "LEAK\n") {
		t.Errorf("rendered matrix verdicts off:\n%s", sb.String())
	}
}
