package sempe

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestJBTableLIFO(t *testing.T) {
	jb := NewJBTable(30)
	if err := jb.Push(0x100, true); err != nil {
		t.Fatal(err)
	}
	if err := jb.Push(0x200, false); err != nil {
		t.Fatal(err)
	}
	top, err := jb.Top()
	if err != nil {
		t.Fatal(err)
	}
	if top.Target != 0x200 || top.Taken || !top.Valid {
		t.Errorf("top = %+v", *top)
	}
	top.JB = true
	if err := jb.Pop(); err != nil {
		t.Fatal(err)
	}
	top, _ = jb.Top()
	if top.Target != 0x100 || !top.Taken {
		t.Errorf("after pop, top = %+v", *top)
	}
	if top.JB {
		t.Error("outer entry inherited the inner jb bit")
	}
}

func TestJBTableOverflowUnderflow(t *testing.T) {
	jb := NewJBTable(2)
	_ = jb.Push(1, true)
	_ = jb.Push(2, true)
	if err := jb.Push(3, true); !errors.Is(err, ErrOverflow) {
		t.Errorf("overflow push: %v", err)
	}
	_ = jb.Pop()
	_ = jb.Pop()
	if err := jb.Pop(); !errors.Is(err, ErrUnderflow) {
		t.Errorf("underflow pop: %v", err)
	}
	if _, err := jb.Top(); !errors.Is(err, ErrUnderflow) {
		t.Errorf("empty top: %v", err)
	}
}

func TestJBTableSize(t *testing.T) {
	// The paper: even with 30 entries the jbTable is under 256 bytes.
	jb := NewJBTable(30)
	if jb.SizeBytes() >= 256 {
		t.Errorf("jbTable size %d bytes, want < 256", jb.SizeBytes())
	}
}

func TestJBTableInTPathFlags(t *testing.T) {
	jb := NewJBTable(4)
	_ = jb.Push(1, true)
	top, _ := jb.Top()
	top.JB = true // level 0 now in T path
	_ = jb.Push(2, false)
	flags := jb.InTPathFlags(nil)
	if len(flags) != 2 || !flags[0] || flags[1] {
		t.Errorf("flags = %v, want [true false]", flags)
	}
}

func TestJBTableDropNewest(t *testing.T) {
	jb := NewJBTable(4)
	_ = jb.Push(1, true)
	_ = jb.Push(2, true)
	jb.DropNewest()
	if jb.Depth() != 1 {
		t.Errorf("depth = %d", jb.Depth())
	}
	jb.DropNewest()
	jb.DropNewest() // extra drop on empty is a no-op
	if jb.Depth() != 0 {
		t.Errorf("depth = %d", jb.Depth())
	}
}

// TestJBTableLIFOProperty: a random push/pop sequence behaves exactly like a
// reference slice stack.
func TestJBTableLIFOProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		jb := NewJBTable(8)
		var ref []uint64
		for i, op := range ops {
			if op%2 == 0 && len(ref) < 8 {
				v := uint64(i) * 16
				if err := jb.Push(v, op%4 == 0); err != nil {
					return false
				}
				ref = append(ref, v)
			} else if len(ref) > 0 {
				top, err := jb.Top()
				if err != nil || top.Target != ref[len(ref)-1] {
					return false
				}
				if err := jb.Pop(); err != nil {
					return false
				}
				ref = ref[:len(ref)-1]
			}
			if jb.Depth() != len(ref) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(12))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestJBTableStats(t *testing.T) {
	jb := NewJBTable(8)
	for i := 0; i < 5; i++ {
		_ = jb.Push(uint64(i), false)
	}
	if jb.MaxDepth != 5 || jb.Pushes != 5 {
		t.Errorf("stats: max=%d pushes=%d", jb.MaxDepth, jb.Pushes)
	}
	jb.Reset()
	if jb.Depth() != 0 || jb.MaxDepth != 0 || jb.Pushes != 0 {
		t.Error("reset incomplete")
	}
}
