// Package sempe implements the architectural state of Secure Multi-Path
// Execution: the Jump-Back Table (jbTable) — the hardware LIFO that drives
// dual-path execution of secure branches — and the controller bookkeeping
// shared by the functional and cycle-level machines.
//
// Per the paper (§IV-E, Fig. 5), each jbTable entry holds the sJMP
// destination address, the real branch outcome (T/NT bit), a Valid bit set
// when the sJMP commits and its target is known, and a Jump-Back (jb) bit
// set when the first eosJMP redirects execution into the taken path. The
// LIFO discipline is what lets SeMPE handle nested secure branches with a
// structure of well under 256 bytes instead of a random-access table.
package sempe

import (
	"errors"
	"fmt"
)

// Entry is one jbTable row.
type Entry struct {
	Target uint64 // sJMP destination address (start of the taken path)
	Taken  bool   // real branch outcome (the T/NT bit field)
	Valid  bool   // target has been written (sJMP committed)
	JB     bool   // first eosJMP has jumped back already
}

// ErrOverflow reports secure-branch nesting beyond the table capacity. The
// paper proposes rejecting such programs at compile time or raising a
// runtime exception; the simulator surfaces the exception.
var ErrOverflow = errors.New("sempe: jbTable overflow (secure nesting too deep)")

// ErrUnderflow reports an eosJMP with no live sJMP, i.e. a malformed binary.
var ErrUnderflow = errors.New("sempe: jbTable underflow (eosJMP without sJMP)")

// JBTable is the LIFO of live secure branches.
type JBTable struct {
	entries []Entry
	depth   int

	// Stats
	Pushes   uint64
	MaxDepth int
}

// NewJBTable builds a table with the given number of entries. The paper uses
// 30 (one per SPM snapshot slot).
func NewJBTable(capacity int) *JBTable {
	if capacity <= 0 {
		panic(fmt.Sprintf("sempe: bad jbTable capacity %d", capacity))
	}
	return &JBTable{entries: make([]Entry, capacity)}
}

// Depth returns the number of live entries.
func (t *JBTable) Depth() int { return t.depth }

// Cap returns the table capacity (max supported sJMP nesting).
func (t *JBTable) Cap() int { return len(t.entries) }

// Push allocates a new entry for a committing sJMP. Valid is set
// immediately because the destination address is written at commit.
func (t *JBTable) Push(target uint64, taken bool) error {
	if t.depth >= len(t.entries) {
		return fmt.Errorf("%w: capacity %d", ErrOverflow, len(t.entries))
	}
	t.entries[t.depth] = Entry{Target: target, Taken: taken, Valid: true}
	t.depth++
	t.Pushes++
	if t.depth > t.MaxDepth {
		t.MaxDepth = t.depth
	}
	return nil
}

// Top returns a pointer to the most recent entry.
func (t *JBTable) Top() (*Entry, error) {
	if t.depth == 0 {
		return nil, ErrUnderflow
	}
	return &t.entries[t.depth-1], nil
}

// Pop removes the most recent entry (second eosJMP commit).
func (t *JBTable) Pop() error {
	if t.depth == 0 {
		return ErrUnderflow
	}
	t.depth--
	return nil
}

// DropNewest removes the newest entry without protocol checks; used when a
// pipeline flush squashes an sJMP that had allocated an entry. Entries are
// removed newest-to-oldest exactly as the paper describes for ROB squashes.
func (t *JBTable) DropNewest() {
	if t.depth > 0 {
		t.depth--
	}
}

// InTPathFlags fills buf with one flag per live nesting level: true when
// that level is currently executing its taken path (jb already set). Used
// to attribute register modifications to the correct per-path bit-vector.
func (t *JBTable) InTPathFlags(buf []bool) []bool {
	buf = buf[:0]
	for i := 0; i < t.depth; i++ {
		buf = append(buf, t.entries[i].JB)
	}
	return buf
}

// SizeBytes returns the hardware cost of the table: 64-bit address plus
// T/NT, Valid and jb bits per entry. With 30 entries this is well under the
// 256-byte bound quoted in the paper.
func (t *JBTable) SizeBytes() int {
	bits := len(t.entries) * (64 + 3)
	return (bits + 7) / 8
}

// Reset clears all entries and statistics.
func (t *JBTable) Reset() {
	t.depth = 0
	t.Pushes = 0
	t.MaxDepth = 0
}
