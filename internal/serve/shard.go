// The cluster worker endpoint: POST /shards simulates an arbitrary subset
// of a scenario's expanded grid and returns one JSON row per point. It is
// mounted only in worker mode (Options.Worker / sempe-serve -worker) and
// shares the server's simulation semaphore with /runs, so a process that
// is both a worker and an interactive server stays bounded.
package serve

import (
	"encoding/json"
	"net/http"
	"time"

	"repro/internal/cluster"
	"repro/internal/scenario"
)

const shardPath = cluster.ShardPath

func (s *Server) handleShard(w http.ResponseWriter, r *http.Request) {
	var req cluster.ShardRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad shard body: %v", err)
		return
	}
	if req.Version != s.opts.ShardVersion {
		httpError(w, http.StatusConflict, "code version mismatch: worker %q, coordinator %q",
			s.opts.ShardVersion, req.Version)
		return
	}
	sc, ok := scenario.Lookup(req.Scenario)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown scenario %q; registered: %v", req.Scenario, scenario.Names())
		return
	}
	if req.Spec.Workers <= 0 || req.Spec.Workers > s.opts.MaxWorkers {
		req.Spec.Workers = s.opts.MaxWorkers
	}
	axes, err := sc.Sweep.Axes(req.Spec)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad spec: %v", err)
		return
	}
	pts := scenario.Expand(axes)
	if req.Total != len(pts) {
		httpError(w, http.StatusConflict, "grid mismatch: worker expands %d points, coordinator %d", len(pts), req.Total)
		return
	}
	for _, idx := range req.Indices {
		if idx < 0 || idx >= len(pts) {
			httpError(w, http.StatusBadRequest, "point index %d out of range [0,%d)", idx, len(pts))
			return
		}
	}

	s.metrics.shardRequests.Inc()

	// A coordinator that gave up (or died) frees the slot immediately.
	ctx := r.Context()
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		return
	}
	defer func() { <-s.sem }()

	start := time.Now()
	rows := make([]json.RawMessage, len(req.Indices))
	err = scenario.Grid(len(req.Indices), req.Spec.Workers, func(j int) error {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		row, err := sc.Sweep.Run(req.Spec, pts[req.Indices[j]])
		if err != nil {
			return err
		}
		raw, err := json.Marshal(row)
		if err != nil {
			return err
		}
		rows[j] = raw
		return nil
	})
	if err != nil {
		httpError(w, http.StatusInternalServerError, "shard failed: %v", err)
		return
	}
	s.metrics.shardPoints.Add(uint64(len(req.Indices)))
	writeJSON(w, http.StatusOK, cluster.ShardResponse{
		Rows:   rows,
		Millis: float64(time.Since(start)) / float64(time.Millisecond),
	})
}
