// Package serve implements the sempe-serve evaluation service: the
// scenario registry over HTTP. It exposes the registered scenarios, runs
// parameterized sweeps with bounded concurrency, reports per-run progress,
// and memoizes completed results in an LRU cache keyed by (scenario, spec)
// so repeated queries never re-simulate. With a Store configured the cache
// gains a persistent tier: completed results are written to disk and a
// cache miss falls through to it, so a restarted server answers warm.
//
//	GET  /scenarios        -> registered scenarios with their axes
//	POST /runs             -> start (or instantly answer from cache) a run
//	GET  /runs             -> all runs, newest first
//	GET  /runs/{id}        -> one run: status, progress, and result when done
//	GET  /runs/{id}/events -> the run's ordered span journal (engine + cluster)
//	POST /runs/{id}/cancel -> stop an in-flight run between grid points
//	POST /shards           -> simulate a grid subset (worker mode only)
//	GET  /metrics          -> Prometheus text exposition (HTTP, runs, caches, simulator counters)
//	GET  /healthz          -> liveness
//	/debug/pprof/*         -> pprof profiles (opt-in: Options.EnablePprof)
//
// POST /runs accepts {"scenario": "fig10a", "spec": {"quick": true,
// "workers": 4, "params": {"kinds": "fibonacci"}}, "wait": true}; with
// "wait" the response carries the finished run, otherwise 202 Accepted
// returns immediately and the run is polled via its id.
package serve

import (
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/scenario"
	"repro/internal/store"
)

// Options tunes the server.
type Options struct {
	// MaxWorkers caps a run's requested worker pool; 0 means NumCPU.
	MaxWorkers int
	// MaxConcurrentRuns bounds how many sweeps simulate at once; further
	// runs queue. 0 means 2.
	MaxConcurrentRuns int
	// CacheEntries is the LRU result-cache capacity; 0 means 64.
	CacheEntries int
	// MaxTrackedRuns bounds the run records (and their pinned results)
	// kept for GET /runs; the oldest finished runs are dropped beyond it.
	// 0 means 256.
	MaxTrackedRuns int
	// Store, when set, persists completed results on disk and serves LRU
	// misses from it — warm restarts, shared result directories.
	Store *store.Store
	// Worker enables the cluster shard endpoint (POST /shards), making
	// this process dispatchable by a cluster coordinator (sempe-sweep).
	Worker bool
	// ShardVersion overrides the code version the shard endpoint accepts;
	// empty means store.CodeVersion. Tests only.
	ShardVersion string
	// ClusterWorkers, when non-empty, turns this server into a cluster
	// front end: shardable runs are dispatched across these worker base
	// URLs through the cluster coordinator instead of simulating locally,
	// and the run's journal records per-shard dispatch/retry/merge spans
	// (GET /runs/{id}/events). Non-shardable scenarios still run locally.
	ClusterWorkers []string
	// ClusterShardSize is the grid points per dispatched shard; 0 means
	// the coordinator default.
	ClusterShardSize int
	// EnablePprof mounts net/http/pprof under /debug/pprof/ — opt-in,
	// because profiles expose internals and cost CPU while sampling.
	EnablePprof bool
	// Logger receives structured run-lifecycle and dispatch logs; nil
	// means slog.Default().
	Logger *slog.Logger
}

// Server is the evaluation service. Create with New, mount via Handler.
type Server struct {
	opts    Options
	sem     chan struct{}
	metrics *serverMetrics
	log     *slog.Logger

	mu     sync.Mutex
	runs   map[string]*run
	order  []string // creation order, for GET /runs
	nextID int
	cache  *lruCache
	rows   *scenario.RowCache

	// computes counts engine executions (cache misses); the serve tests
	// assert a repeated spec does not increment it. storeHits counts LRU
	// misses answered by the persistent store.
	computes  int
	storeHits int
}

// run is one tracked sweep execution.
type run struct {
	id       string
	scenario string
	spec     scenario.Spec
	status   string // "queued" | "running" | "done" | "canceled" | "error"
	cached   bool
	created  time.Time
	done     int
	total    int
	errMsg   string
	result   *scenario.Result
	finished chan struct{}
	cancel   context.CancelFunc
	// journal is the run's event stream: engine sweep/point spans, and for
	// cluster-dispatched runs the coordinator's dispatch/retry/merge spans.
	journal *obs.Journal
	// report is the cluster provenance report for distributed runs.
	report *cluster.Report
}

// New builds a server.
func New(opts Options) *Server {
	if opts.MaxWorkers <= 0 {
		opts.MaxWorkers = runtime.NumCPU()
	}
	if opts.MaxConcurrentRuns <= 0 {
		opts.MaxConcurrentRuns = 2
	}
	if opts.CacheEntries <= 0 {
		opts.CacheEntries = 64
	}
	if opts.MaxTrackedRuns <= 0 {
		opts.MaxTrackedRuns = 256
	}
	if opts.ShardVersion == "" {
		opts.ShardVersion = store.CodeVersion
	}
	if opts.Logger == nil {
		opts.Logger = slog.Default()
	}
	s := &Server{
		opts:  opts,
		sem:   make(chan struct{}, opts.MaxConcurrentRuns),
		log:   opts.Logger,
		runs:  map[string]*run{},
		cache: newLRU(opts.CacheEntries),
		rows:  scenario.NewRowCache(),
	}
	s.metrics = newServerMetrics(s)
	return s
}

// Handler returns the service's HTTP handler. Every route is wrapped with
// the request-metrics middleware; /debug/pprof/ is mounted only when
// Options.EnablePprof is set.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	s.route(mux, "GET /scenarios", s.handleScenarios)
	s.route(mux, "POST /runs", s.handleCreateRun)
	s.route(mux, "GET /runs", s.handleListRuns)
	s.route(mux, "GET /runs/{id}", s.handleGetRun)
	s.route(mux, "GET /runs/{id}/events", s.handleGetRunEvents)
	s.route(mux, "POST /runs/{id}/cancel", s.handleCancelRun)
	if s.opts.Worker {
		s.route(mux, "POST "+shardPath, s.handleShard)
	}
	s.route(mux, "GET /metrics", s.handleMetrics)
	s.route(mux, "GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "worker": fmt.Sprintf("%t", s.opts.Worker)})
	})
	if s.opts.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// scenarioInfo is one GET /scenarios entry.
type scenarioInfo struct {
	Name        string          `json:"name"`
	Description string          `json:"description"`
	Axes        []scenario.Axis `json:"axes,omitempty"`
}

func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	var out []scenarioInfo
	for _, sc := range scenario.Scenarios() {
		info := scenarioInfo{Name: sc.Name, Description: sc.Description}
		// Default-spec axes; scenarios whose axes depend on params still
		// list their default grid.
		if axes, err := sc.Sweep.Axes(scenario.Spec{}); err == nil {
			info.Axes = axes
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, out)
}

// createRequest is the POST /runs body.
type createRequest struct {
	Scenario string        `json:"scenario"`
	Spec     scenario.Spec `json:"spec"`
	Wait     bool          `json:"wait,omitempty"`
}

// runView is the wire form of a run. AgeSeconds is time since creation —
// GET /runs exists so cluster debugging can see every run with its status
// and age at a glance instead of guessing run IDs.
type runView struct {
	ID         string           `json:"id"`
	Scenario   string           `json:"scenario"`
	Spec       scenario.Spec    `json:"spec"`
	Status     string           `json:"status"`
	Cached     bool             `json:"cached"`
	AgeSeconds float64          `json:"age_seconds"`
	Progress   progressView     `json:"progress"`
	Error      string           `json:"error,omitempty"`
	Result     *scenario.Result `json:"result,omitempty"`
	// Report is the cluster provenance report for runs dispatched across a
	// worker fleet (Options.ClusterWorkers): per-shard durations and retry
	// counts, per-worker throughput. Its embedded event journal is served
	// by GET /runs/{id}/events instead of being duplicated here.
	Report *cluster.Report `json:"report,omitempty"`
}

type progressView struct {
	Done  int `json:"done"`
	Total int `json:"total"`
}

func (s *Server) handleCreateRun(w http.ResponseWriter, r *http.Request) {
	var req createRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	sc, ok := scenario.Lookup(req.Scenario)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown scenario %q; registered: %v", req.Scenario, scenario.Names())
		return
	}
	if req.Spec.Workers <= 0 || req.Spec.Workers > s.opts.MaxWorkers {
		req.Spec.Workers = s.opts.MaxWorkers
	}
	// Validate the spec before tracking a run: a bad parameter is the
	// caller's error, not a failed run.
	if _, err := sc.Sweep.Axes(req.Spec); err != nil {
		httpError(w, http.StatusBadRequest, "bad spec: %v", err)
		return
	}

	key := cacheKey(sc.Name, req.Spec)
	ctx, cancel := context.WithCancel(context.Background())
	s.metrics.runsCreated.Inc()
	s.mu.Lock()
	s.nextID++
	rn := &run{
		id:       fmt.Sprintf("run-%d", s.nextID),
		scenario: sc.Name,
		spec:     req.Spec,
		status:   "queued", // published before the cache/store lookup settles
		created:  time.Now(),
		finished: make(chan struct{}),
		cancel:   cancel,
		journal:  obs.NewJournal(),
	}
	rn.journal.Event("created", obs.Fields{"scenario": sc.Name, "spec": req.Spec.Key()})
	s.runs[rn.id] = rn
	s.order = append(s.order, rn.id)
	s.pruneRuns()
	res, hit := s.cache.get(key)
	if hit {
		s.metrics.cacheHits.Inc()
		rn.journal.Event("cache_hit", nil)
		s.finishCached(w, rn, res)
		return
	}
	s.mu.Unlock()
	if s.opts.Store != nil {
		// LRU miss: fall through to the persistent store (a result from a
		// previous process lifetime) before paying for a simulation. The
		// disk read happens outside s.mu so progress polls and other runs
		// never stall behind I/O; two identical concurrent requests may
		// both read the entry, which is a benign duplicate.
		if stored, ok := s.opts.Store.GetResult(sc.Name, req.Spec); ok {
			s.metrics.storeHits.Inc()
			rn.journal.Event("store_hit", nil)
			s.mu.Lock()
			s.cache.put(key, stored)
			s.storeHits++
			s.finishCached(w, rn, stored)
			return
		}
	}
	go s.execute(ctx, sc, rn, key)

	if req.Wait {
		<-rn.finished
	}
	s.mu.Lock()
	view := rn.view()
	s.mu.Unlock()
	status := http.StatusAccepted
	if view.Status == "done" || view.Status == "error" {
		status = http.StatusOK
	}
	writeJSON(w, status, view)
}

// finishCached completes a run from an already-available result and
// writes the response. The caller holds s.mu; finishCached releases it.
func (s *Server) finishCached(w http.ResponseWriter, rn *run, res *scenario.Result) {
	rn.cancel()
	rn.status = "done"
	rn.cached = true
	rn.result = res
	rn.done, rn.total = res.Points, res.Points
	close(rn.finished)
	view := rn.view()
	s.mu.Unlock()
	s.metrics.runsFinished.With("done").Inc()
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) execute(ctx context.Context, sc *scenario.Scenario, rn *run, key string) {
	defer rn.cancel() // release the context's resources however we exit

	// A run canceled while queued never occupies a simulation slot.
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		s.mu.Lock()
		rn.status = "canceled"
		close(rn.finished)
		s.mu.Unlock()
		return
	}
	defer func() { <-s.sem }()

	s.mu.Lock()
	rn.status = "running"
	s.computes++
	s.mu.Unlock()
	s.metrics.computes.Inc()
	rn.journal.Event("running", nil)
	s.log.Info("run started", "run", rn.id, "scenario", rn.scenario, "spec", rn.spec.Key())

	// Speculative-window accounting snapshot: the delta across this run's
	// compute is journaled as a spec_summary event. The counters are
	// process-wide, so on a server computing runs concurrently the delta can
	// include overlapping runs' work — it is a profile of the machine while
	// this run computed, not an exact attribution; cluster-sharded runs
	// simulate on the workers, so their local delta is near zero by design.
	specBefore := pipeline.GlobalSpecCounters()

	var res *scenario.Result
	var err error
	if len(s.opts.ClusterWorkers) > 0 && sc.Sweep.Shardable() {
		// Cluster front end: dispatch the grid across the worker fleet.
		// The coordinator journals into the run's journal, so the
		// dispatch/retry/merge spans surface on GET /runs/{id}/events,
		// and its provenance report is kept on the run.
		var rep *cluster.Report
		res, rep, err = cluster.New(cluster.Options{
			Workers:   s.opts.ClusterWorkers,
			ShardSize: s.opts.ClusterShardSize,
			Store:     s.opts.Store,
			Journal:   rn.journal,
			Logger:    s.log,
		}).Run(ctx, sc, rn.spec)
		s.mu.Lock()
		rn.report = rep
		if res != nil {
			rn.done, rn.total = res.Points, res.Points
		}
		s.mu.Unlock()
	} else {
		for attempt := 0; attempt < 3; attempt++ {
			res, err = scenario.Run(sc, rn.spec, scenario.RunOptions{
				Rows:    s.rows,
				Context: ctx,
				Journal: rn.journal,
				Progress: func(done, total int) {
					s.mu.Lock()
					rn.done, rn.total = done, total
					s.mu.Unlock()
				},
			})
			// Two concurrent runs of the same spec share one single-flight
			// RowCache compute, which runs under whichever context got there
			// first. If THAT run was canceled, this one sees context.Canceled
			// without its own client having asked for it — the failed entry
			// has been dropped from the cache, so recompute under our own
			// still-live context instead of reporting a spurious error.
			if err == nil || ctx.Err() != nil || !errors.Is(err, context.Canceled) {
				break
			}
		}
	}

	if err == nil && s.opts.Store != nil {
		// Best-effort: a failed disk write must not fail a computed run.
		s.opts.Store.PutResult(res)
	}

	s.mu.Lock()
	switch {
	case ctx.Err() != nil && err != nil:
		rn.status = "canceled"
	case err != nil:
		rn.status = "error"
		rn.errMsg = err.Error()
	default:
		rn.status = "done"
		rn.result = res
		rn.done, rn.total = res.Points, res.Points
		s.cache.put(key, res)
	}
	status := rn.status
	close(rn.finished)
	s.mu.Unlock()
	s.metrics.runsFinished.With(status).Inc()
	specAfter := pipeline.GlobalSpecCounters()
	rn.journal.Event("spec_summary", obs.Fields{
		"wrong_path_fetches":      specAfter.WrongPathFetches - specBefore.WrongPathFetches,
		"squashed_uops":           specAfter.SquashedUops - specBefore.SquashedUops,
		"flushes_mispredict":      specAfter.FlushMispredicts - specBefore.FlushMispredicts,
		"flushes_secure_redirect": specAfter.FlushSecRedirects - specBefore.FlushSecRedirects,
		"flushes_overflow":        specAfter.FlushOverflows - specBefore.FlushOverflows,
	})
	rn.journal.Event(status, nil)
	switch status {
	case "error":
		s.log.Warn("run failed", "run", rn.id, "scenario", rn.scenario, "reason", err.Error())
	default:
		s.log.Info("run finished", "run", rn.id, "scenario", rn.scenario, "status", status)
	}
}

// handleCancelRun stops an in-flight run between grid points. Cancelling
// a finished (or already canceled) run is a no-op; the response always
// carries the run's current view, so cancellation is idempotent.
func (s *Server) handleCancelRun(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	rn, ok := s.runs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "unknown run %q", r.PathValue("id"))
		return
	}
	rn.cancel()
	s.mu.Lock()
	view := rn.view()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) handleGetRun(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	rn, ok := s.runs[r.PathValue("id")]
	var view runView
	if ok {
		view = rn.view()
	}
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "unknown run %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, view)
}

// eventsView is the GET /runs/{id}/events wire form: the run's journal so
// far, ordered by sequence number. Polling an in-flight run streams the
// journal incrementally — each poll returns every event appended so far.
type eventsView struct {
	ID       string      `json:"id"`
	Scenario string      `json:"scenario"`
	Status   string      `json:"status"`
	Count    int         `json:"count"`
	Events   []obs.Event `json:"events"`
}

func (s *Server) handleGetRunEvents(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	rn, ok := s.runs[r.PathValue("id")]
	var view eventsView
	if ok {
		view = eventsView{ID: rn.id, Scenario: rn.scenario, Status: rn.status}
	}
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "unknown run %q", r.PathValue("id"))
		return
	}
	// The journal has its own lock; events are read outside s.mu so a
	// large journal never stalls run polls.
	view.Events = rn.journal.Events()
	view.Count = len(view.Events)
	writeJSON(w, http.StatusOK, view)
}

// pruneRuns drops the oldest finished run records beyond MaxTrackedRuns
// so a long-lived server's memory stays bounded (queued and running runs
// are never dropped). The caller holds s.mu.
func (s *Server) pruneRuns() {
	excess := len(s.order) - s.opts.MaxTrackedRuns
	if excess <= 0 {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		rn := s.runs[id]
		if excess > 0 && (rn.status == "done" || rn.status == "error" || rn.status == "canceled") {
			delete(s.runs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

func (s *Server) handleListRuns(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	// s.order is creation order; report newest first.
	views := make([]runView, 0, len(s.order))
	for i := len(s.order) - 1; i >= 0; i-- {
		v := s.runs[s.order[i]].view()
		v.Result = nil // list view stays small; fetch a run by id for the tables
		views = append(views, v)
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, views)
}

// view snapshots the run; the caller holds s.mu.
func (rn *run) view() runView {
	v := runView{
		ID:         rn.id,
		Scenario:   rn.scenario,
		Spec:       rn.spec,
		Status:     rn.status,
		Cached:     rn.cached,
		AgeSeconds: time.Since(rn.created).Seconds(),
		Progress:   progressView{Done: rn.done, Total: rn.total},
		Error:      rn.errMsg,
		Result:     rn.result,
	}
	if rn.report != nil {
		rep := *rn.report
		rep.Events = nil // the journal is GET /runs/{id}/events
		v.Report = &rep
	}
	return v
}

func cacheKey(name string, spec scenario.Spec) string {
	return name + "|" + spec.Key()
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// lruCache is a small LRU of completed results keyed by (scenario, spec).
type lruCache struct {
	cap   int
	ll    *list.List // front = most recent; values are *lruEntry
	items map[string]*list.Element
}

type lruEntry struct {
	key string
	res *scenario.Result
}

func newLRU(capacity int) *lruCache {
	return &lruCache{cap: capacity, ll: list.New(), items: map[string]*list.Element{}}
}

// get returns the cached result and marks it most recently used. Callers
// hold the server mutex.
func (c *lruCache) get(key string) (*scenario.Result, bool) {
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).res, true
}

func (c *lruCache) put(key string, res *scenario.Result) {
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).res = res
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, res: res})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}
