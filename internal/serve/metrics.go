// Server metrics: every HTTP route is wrapped with a latency/status
// middleware, run lifecycle and cache/store effectiveness are counted at
// their existing transition points, and live state (runs by status,
// semaphore occupancy) is computed at scrape time via OnScrape collectors
// so no request-path bookkeeping is added for it. GET /metrics renders
// this server's registry followed by the process-wide obs.Default()
// registry (simulator counters: template memo, core pool, superblocks).
package serve

import (
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
)

// runStatuses is the closed set of run states, so the sempe_runs gauge
// family always exposes every status (zeros included) and dashboards
// never see series flicker in and out.
var runStatuses = []string{"queued", "running", "done", "canceled", "error"}

type serverMetrics struct {
	reg *obs.Registry

	httpRequests obs.CounterVec   // route, method, code
	httpLatency  obs.HistogramVec // route

	runsCreated  obs.Counter
	runsFinished obs.CounterVec // status

	cacheHits obs.Counter
	storeHits obs.Counter
	computes  obs.Counter

	shardRequests obs.Counter
	shardPoints   obs.Counter
}

// newServerMetrics registers the server's metric families and the
// scrape-time collectors reading live server state.
func newServerMetrics(s *Server) *serverMetrics {
	reg := obs.NewRegistry()
	m := &serverMetrics{
		reg: reg,
		httpRequests: reg.CounterVec("sempe_http_requests_total",
			"HTTP requests served, by route pattern, method, and status code.",
			"route", "method", "code"),
		httpLatency: reg.HistogramVec("sempe_http_request_seconds",
			"HTTP request latency in seconds, by route pattern.", nil, "route"),
		runsCreated: reg.Counter("sempe_runs_created_total",
			"Runs accepted by POST /runs (cached answers included)."),
		runsFinished: reg.CounterVec("sempe_runs_finished_total",
			"Runs reaching a terminal state, by status.", "status"),
		cacheHits: reg.Counter("sempe_serve_cache_hits_total",
			"Runs answered from the in-memory LRU result cache."),
		storeHits: reg.Counter("sempe_serve_store_hits_total",
			"LRU misses answered from the persistent on-disk store."),
		computes: reg.Counter("sempe_serve_computes_total",
			"Runs that paid for an engine execution (cache and store misses)."),
		shardRequests: reg.Counter("sempe_shard_requests_total",
			"Cluster shard requests accepted by POST /shards (worker mode)."),
		shardPoints: reg.Counter("sempe_shard_points_total",
			"Grid points simulated for cluster shard requests (worker mode)."),
	}
	runsGauge := reg.GaugeVec("sempe_runs",
		"Tracked runs by current status.", "status")
	semOcc := reg.Gauge("sempe_sim_semaphore_occupancy",
		"Simulation slots currently in use (runs + shards executing).")
	semCap := reg.Gauge("sempe_sim_semaphore_capacity",
		"Total simulation slots (Options.MaxConcurrentRuns).")
	reg.OnScrape(func() {
		semOcc.Set(float64(len(s.sem)))
		semCap.Set(float64(cap(s.sem)))
		counts := map[string]int{}
		s.mu.Lock()
		for _, rn := range s.runs {
			counts[rn.status]++
		}
		s.mu.Unlock()
		for _, st := range runStatuses {
			runsGauge.With(st).Set(float64(counts[st]))
		}
	})
	return m
}

// statusRecorder captures the status code a handler writes, for the
// request counter. An unwritten header counts as 200, matching net/http.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// route registers a handler wrapped with the request metrics middleware.
// The registered pattern is the route label, so cardinality is bounded by
// the route table, never by request paths.
func (s *Server) route(mux *http.ServeMux, pattern string, h http.HandlerFunc) {
	mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(rec, r)
		s.metrics.httpRequests.With(pattern, r.Method, strconv.Itoa(rec.code)).Inc()
		s.metrics.httpLatency.With(pattern).Observe(time.Since(t0).Seconds())
	})
}

// handleMetrics renders the Prometheus text exposition: this server's
// families, then the process-wide simulator counters.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.reg.WriteText(w)
	obs.Default().WriteText(w)
}
