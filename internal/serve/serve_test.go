package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	_ "repro/internal/experiments" // registers the paper's scenarios
	"repro/internal/scenario"
	"repro/internal/stats"
	"repro/internal/store"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(Options{MaxWorkers: 2, MaxConcurrentRuns: 2, CacheEntries: 8})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postRun(t *testing.T, ts *httptest.Server, body string) (runView, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/runs", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var view runView
	if resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			t.Fatal(err)
		}
	}
	return view, resp.StatusCode
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// TestScenariosEndpoint: the registry is visible over HTTP, axes included.
func TestScenariosEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	var infos []scenarioInfo
	if code := getJSON(t, ts.URL+"/scenarios", &infos); code != http.StatusOK {
		t.Fatalf("GET /scenarios = %d", code)
	}
	byName := map[string]scenarioInfo{}
	for _, in := range infos {
		byName[in.Name] = in
	}
	for _, want := range []string{"fig8", "fig9", "fig10a", "fig10b", "table1", "table2", "leakmatrix"} {
		if _, ok := byName[want]; !ok {
			t.Errorf("scenario %q missing from listing", want)
		}
	}
	if axes := byName["fig10a"].Axes; len(axes) != 2 || axes[0].Name != "workload" {
		t.Errorf("fig10a axes = %+v", axes)
	}
}

// TestFig10QuickSweepOverHTTPWithCache is the acceptance path: the Fig. 10
// quick sweep comes back as structured JSON over HTTP, and a second
// identical request is served from the LRU cache without re-simulating.
func TestFig10QuickSweepOverHTTPWithCache(t *testing.T) {
	srv, ts := newTestServer(t)
	body := `{"scenario": "fig10a", "spec": {"quick": true}, "wait": true}`

	first, code := postRun(t, ts, body)
	if code != http.StatusOK {
		t.Fatalf("POST /runs = %d", code)
	}
	if first.Status != "done" || first.Cached {
		t.Fatalf("first run: status=%s cached=%t", first.Status, first.Cached)
	}
	if first.Result == nil || len(first.Result.Tables) != 1 {
		t.Fatal("first run carries no result tables")
	}
	tb := first.Result.Tables[0]
	// The quick sweep: 4 kernels x W in {1,4,10}, typed ratio cells.
	if len(tb.Rows) != 12 {
		t.Errorf("quick sweep has %d rows, want 12", len(tb.Rows))
	}
	if c := tb.Rows[0][2]; c.Kind != stats.KindRatio || c.Num <= 1.0 {
		t.Errorf("SeMPE slowdown cell = %+v, want a ratio > 1", c)
	}
	if first.Progress.Done != 12 || first.Progress.Total != 12 {
		t.Errorf("progress = %+v, want 12/12", first.Progress)
	}

	second, code := postRun(t, ts, body)
	if code != http.StatusOK {
		t.Fatalf("second POST /runs = %d", code)
	}
	if second.Status != "done" || !second.Cached {
		t.Fatalf("second run: status=%s cached=%t, want done from cache", second.Status, second.Cached)
	}
	if !reflect.DeepEqual(first.Result.Tables, second.Result.Tables) {
		t.Error("cached result differs from the computed one")
	}
	srv.mu.Lock()
	computes := srv.computes
	srv.mu.Unlock()
	if computes != 1 {
		t.Errorf("engine ran %d times, want 1 (second request must hit the cache)", computes)
	}

	// A different spec misses the cache (workers alone must NOT).
	third, _ := postRun(t, ts, `{"scenario": "fig10a", "spec": {"quick": true, "workers": 1}, "wait": true}`)
	if !third.Cached {
		t.Error("worker count changed the cache key; results are worker-independent")
	}
	fourth, _ := postRun(t, ts, `{"scenario": "fig10a", "spec": {"quick": true, "params": {"kinds": "fibonacci"}}, "wait": true}`)
	if fourth.Cached {
		t.Error("different params served from cache")
	}
}

// TestAsyncRunWithProgress: without "wait" the POST returns 202 and the
// run is polled to completion via GET /runs/{id}.
func TestAsyncRunWithProgress(t *testing.T) {
	_, ts := newTestServer(t)
	view, code := postRun(t, ts,
		`{"scenario": "fig10b", "spec": {"params": {"kinds": "fibonacci", "ws": "1", "iters": "1"}}}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST /runs = %d, want 202", code)
	}
	deadline := time.Now().Add(30 * time.Second)
	var got runView
	for {
		if getJSON(t, ts.URL+"/runs/"+view.ID, &got) != http.StatusOK {
			t.Fatalf("GET /runs/%s failed", view.ID)
		}
		if got.Status == "done" || got.Status == "error" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("run %s stuck in %q", view.ID, got.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got.Status != "done" || got.Result == nil {
		t.Fatalf("run ended %q (error %q)", got.Status, got.Error)
	}
	if got.Progress.Done != got.Progress.Total || got.Progress.Total != 1 {
		t.Errorf("progress = %+v", got.Progress)
	}

	var listing []runView
	if getJSON(t, ts.URL+"/runs", &listing) != http.StatusOK || len(listing) == 0 {
		t.Fatal("GET /runs empty")
	}
	if listing[0].Result != nil {
		t.Error("list view should omit results")
	}
}

// TestRequestValidation: unknown scenarios, bad specs, and unknown run ids
// are client errors, not runs.
func TestRequestValidation(t *testing.T) {
	_, ts := newTestServer(t)
	if _, code := postRun(t, ts, `{"scenario": "nope"}`); code != http.StatusNotFound {
		t.Errorf("unknown scenario = %d, want 404", code)
	}
	if _, code := postRun(t, ts, `{"scenario": "fig10a", "spec": {"params": {"ws": "ten"}}}`); code != http.StatusBadRequest {
		t.Errorf("bad param = %d, want 400", code)
	}
	if _, code := postRun(t, ts, `not json`); code != http.StatusBadRequest {
		t.Errorf("bad body = %d, want 400", code)
	}
	if code := getJSON(t, ts.URL+"/runs/run-999", nil); code != http.StatusNotFound {
		t.Errorf("unknown run = %d, want 404", code)
	}
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Errorf("healthz = %d", code)
	}
}

// TestRunPruningAndOrdering: GET /runs reports newest first, and run
// records beyond MaxTrackedRuns are pruned oldest-finished-first so a
// long-lived server stays bounded.
func TestRunPruningAndOrdering(t *testing.T) {
	srv := New(Options{MaxWorkers: 1, MaxTrackedRuns: 2})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	for i := 0; i < 3; i++ {
		if _, code := postRun(t, ts, `{"scenario": "table2", "spec": {}, "wait": true}`); code != http.StatusOK {
			t.Fatalf("POST %d = %d", i, code)
		}
	}
	var listing []runView
	if getJSON(t, ts.URL+"/runs", &listing) != http.StatusOK {
		t.Fatal("GET /runs failed")
	}
	if len(listing) != 2 || listing[0].ID != "run-3" || listing[1].ID != "run-2" {
		ids := make([]string, len(listing))
		for i, v := range listing {
			ids[i] = v.ID
		}
		t.Errorf("listing = %v, want [run-3 run-2]", ids)
	}
	if code := getJSON(t, ts.URL+"/runs/run-1", nil); code != http.StatusNotFound {
		t.Errorf("pruned run = %d, want 404", code)
	}
}

// TestListRunsStatusAndAge: GET /runs reports every run with its status
// and age — the cluster-debugging view, so operators never have to guess
// run IDs. Ages grow monotonically with run age (newest first in the
// listing, so ages ascend down the list) and the list view stays small
// (no result payloads).
func TestListRunsStatusAndAge(t *testing.T) {
	_, ts := newTestServer(t)
	if _, code := postRun(t, ts, `{"scenario": "table2", "spec": {}, "wait": true}`); code != http.StatusOK {
		t.Fatalf("POST = %d", code)
	}
	time.Sleep(20 * time.Millisecond) // separate the creation times measurably
	if _, code := postRun(t, ts, `{"scenario": "table2", "spec": {}, "wait": true}`); code != http.StatusOK {
		t.Fatalf("POST = %d", code)
	}
	var listing []runView
	if getJSON(t, ts.URL+"/runs", &listing) != http.StatusOK {
		t.Fatal("GET /runs failed")
	}
	if len(listing) != 2 {
		t.Fatalf("listing has %d runs, want 2", len(listing))
	}
	for _, v := range listing {
		if v.Status != "done" {
			t.Errorf("%s: status %q, want done", v.ID, v.Status)
		}
		if v.AgeSeconds <= 0 {
			t.Errorf("%s: age %v, want > 0", v.ID, v.AgeSeconds)
		}
		if v.Result != nil {
			t.Errorf("%s: list view carries a result payload", v.ID)
		}
	}
	// Newest first: run-2 leads and is younger than run-1.
	if listing[0].ID != "run-2" || listing[1].ID != "run-1" {
		t.Fatalf("order = [%s %s], want [run-2 run-1]", listing[0].ID, listing[1].ID)
	}
	if listing[0].AgeSeconds >= listing[1].AgeSeconds {
		t.Errorf("ages not ascending down the list: %v then %v", listing[0].AgeSeconds, listing[1].AgeSeconds)
	}
	// The single-run view carries the age too.
	var one runView
	if getJSON(t, ts.URL+"/runs/run-1", &one) != http.StatusOK {
		t.Fatal("GET /runs/run-1 failed")
	}
	if one.AgeSeconds < listing[1].AgeSeconds {
		t.Errorf("run-1 age shrank between requests: %v then %v", listing[1].AgeSeconds, one.AgeSeconds)
	}
}

// TestLRUEviction: the result cache holds CacheEntries completed runs and
// evicts the least recently used.
func TestLRUEviction(t *testing.T) {
	lru := newLRU(2)
	mk := func(name string) *scenario.Result { return &scenario.Result{Scenario: name} }
	lru.put("a", mk("a"))
	lru.put("b", mk("b"))
	if _, ok := lru.get("a"); !ok { // touch a: b becomes LRU
		t.Fatal("a missing")
	}
	lru.put("c", mk("c"))
	if _, ok := lru.get("b"); ok {
		t.Error("b survived eviction; want LRU out")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := lru.get(k); !ok {
			t.Errorf("%s evicted wrongly", k)
		}
	}
}

// TestServeSmallSweepMatchesDirectRun: the HTTP path returns exactly what
// the engine computes locally.
func TestServeSmallSweepMatchesDirectRun(t *testing.T) {
	_, ts := newTestServer(t)
	spec := scenario.Spec{Params: map[string]string{"kinds": "ones", "ws": "2", "iters": "1"}}
	sc, _ := scenario.Lookup("fig10a")
	direct, err := scenario.Run(sc, spec, scenario.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(map[string]any{"scenario": "fig10a", "spec": spec, "wait": true})
	view, code := postRun(t, ts, string(body))
	if code != http.StatusOK || view.Result == nil {
		t.Fatalf("POST = %d, result %v", code, view.Result)
	}
	if !reflect.DeepEqual(direct.Tables, view.Result.Tables) {
		t.Errorf("HTTP result differs from direct engine run:\ndirect: %+v\nhttp:   %+v",
			direct.Tables, view.Result.Tables)
	}
}

// TestCancelRun: POST /runs/{id}/cancel stops an in-flight sweep between
// grid points; the run reports status "canceled" with partial progress,
// and a later identical request recomputes (a canceled run must poison no
// cache).
func TestCancelRun(t *testing.T) {
	srv, ts := newTestServer(t)
	// A long sweep of many small points: cancellation latency is bounded
	// by one point's wall time, while the whole sweep takes long enough
	// that the test cannot lose the race.
	body := `{"scenario": "fig10a", "spec": {"workers": 1, "params": {"ws": "3", "iters": "4"}}}`
	view, code := postRun(t, ts, body)
	if code != http.StatusAccepted {
		t.Fatalf("POST /runs = %d, want 202", code)
	}

	// Wait for the first point to land so the cancel provably hits a
	// running sweep.
	deadline := time.Now().Add(30 * time.Second)
	var got runView
	for {
		if getJSON(t, ts.URL+"/runs/"+view.ID, &got) != http.StatusOK {
			t.Fatalf("GET /runs/%s failed", view.ID)
		}
		if got.Status == "running" && got.Progress.Done >= 1 {
			break
		}
		if got.Status == "done" || got.Status == "error" {
			t.Fatalf("run finished (%s) before it could be canceled; enlarge the sweep", got.Status)
		}
		if time.Now().After(deadline) {
			t.Fatalf("run stuck in %q", got.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Post(ts.URL+"/runs/"+view.ID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST cancel = %d", resp.StatusCode)
	}

	for {
		getJSON(t, ts.URL+"/runs/"+view.ID, &got)
		if got.Status != "queued" && got.Status != "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("run never left %q after cancel", got.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got.Status != "canceled" {
		t.Fatalf("status = %q, want canceled", got.Status)
	}
	if got.Result != nil {
		t.Error("canceled run carries a result")
	}
	if got.Progress.Done >= got.Progress.Total {
		t.Errorf("progress = %+v; cancel should have cut the sweep short", got.Progress)
	}

	// Canceling a finished run is an idempotent no-op.
	resp, err = http.Post(ts.URL+"/runs/"+view.ID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("second cancel = %d", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/runs/nope/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("cancel unknown run = %d, want 404", resp.StatusCode)
	}

	// The canceled sweep left no poisoned cache entry behind: the same
	// spec runs to completion afterwards.
	small := `{"scenario": "fig10a", "spec": {"params": {"kinds": "ones", "ws": "1", "iters": "1"}}, "wait": true}`
	done, code := postRun(t, ts, small)
	if code != http.StatusOK || done.Status != "done" {
		t.Fatalf("post-cancel run = %d %q", code, done.Status)
	}
	srv.mu.Lock()
	computes := srv.computes
	srv.mu.Unlock()
	if computes < 2 {
		t.Errorf("computes = %d, want the canceled run plus the follow-up", computes)
	}
}

// TestStoreBackedCacheAcrossRestart: with a Store configured, a completed
// result survives a server restart — the second process answers from disk
// without simulating.
func TestStoreBackedCacheAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	body := `{"scenario": "fig10a", "spec": {"params": {"kinds": "ones", "ws": "1", "iters": "1"}}, "wait": true}`

	st1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv1 := New(Options{MaxWorkers: 2, Store: st1})
	ts1 := httptest.NewServer(srv1.Handler())
	first, code := postRun(t, ts1, body)
	ts1.Close() // the "restart"
	if code != http.StatusOK || first.Status != "done" || first.Cached {
		t.Fatalf("first run: %d %q cached=%t", code, first.Status, first.Cached)
	}

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := New(Options{MaxWorkers: 2, Store: st2})
	ts2 := httptest.NewServer(srv2.Handler())
	t.Cleanup(ts2.Close)
	second, code := postRun(t, ts2, body)
	if code != http.StatusOK || second.Status != "done" {
		t.Fatalf("second run: %d %q", code, second.Status)
	}
	if !second.Cached {
		t.Error("restarted server did not answer from the store")
	}
	srv2.mu.Lock()
	computes, storeHits := srv2.computes, srv2.storeHits
	srv2.mu.Unlock()
	if computes != 0 || storeHits != 1 {
		t.Errorf("computes=%d storeHits=%d, want 0 and 1", computes, storeHits)
	}
	if !reflect.DeepEqual(first.Result.Tables, second.Result.Tables) {
		t.Error("store-served tables differ from the computed ones")
	}

	// Once warmed, the in-memory LRU answers; the store is not re-read.
	third, _ := postRun(t, ts2, body)
	srv2.mu.Lock()
	storeHits = srv2.storeHits
	srv2.mu.Unlock()
	if !third.Cached || storeHits != 1 {
		t.Errorf("third run cached=%t storeHits=%d, want LRU hit without another store read", third.Cached, storeHits)
	}
}

// TestShardEndpointDisabledOutsideWorkerMode: /shards exists only when
// worker mode is on.
func TestShardEndpointDisabledOutsideWorkerMode(t *testing.T) {
	_, ts := newTestServer(t) // not a worker
	resp, err := http.Post(ts.URL+"/shards", "application/json", bytes.NewBufferString(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("POST /shards without worker mode = %d, want 404", resp.StatusCode)
	}
}

// TestCancelDoesNotContaminateConcurrentIdenticalRun: two concurrent
// runs of the same spec share one single-flight RowCache compute;
// canceling one must not fail the other — it recomputes under its own
// context and finishes "done".
func TestCancelDoesNotContaminateConcurrentIdenticalRun(t *testing.T) {
	_, ts := newTestServer(t)
	body := `{"scenario": "fig10a", "spec": {"workers": 1, "params": {"ws": "2", "iters": "4"}}}`

	a, code := postRun(t, ts, body)
	if code != http.StatusAccepted {
		t.Fatalf("POST A = %d", code)
	}
	// Wait until A is actually simulating so B will join A's in-flight
	// compute rather than win the single-flight itself.
	deadline := time.Now().Add(30 * time.Second)
	var got runView
	for {
		getJSON(t, ts.URL+"/runs/"+a.ID, &got)
		if got.Status == "running" && got.Progress.Done >= 1 {
			break
		}
		if got.Status != "queued" && got.Status != "running" {
			t.Fatalf("run A ended %q before the test could race it", got.Status)
		}
		if time.Now().After(deadline) {
			t.Fatal("run A never started")
		}
		time.Sleep(5 * time.Millisecond)
	}

	b, code := postRun(t, ts, body)
	if code != http.StatusAccepted {
		t.Fatalf("POST B = %d", code)
	}

	resp, err := http.Post(ts.URL+"/runs/"+a.ID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	for {
		getJSON(t, ts.URL+"/runs/"+b.ID, &got)
		if got.Status == "done" || got.Status == "error" || got.Status == "canceled" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("run B stuck in %q", got.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got.Status != "done" || got.Result == nil {
		t.Fatalf("run B ended %q (error %q); canceling A must not fail B", got.Status, got.Error)
	}
	// A itself reports canceled (or, if the race resolved the other way
	// and B's context owned the compute, A may have completed).
	getJSON(t, ts.URL+"/runs/"+a.ID, &got)
	if got.Status != "canceled" && got.Status != "done" {
		t.Errorf("run A ended %q", got.Status)
	}
}
