package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/scenario"
)

// sampleLine matches one Prometheus text-exposition sample:
// name{labels} value, the labels being optional.
var sampleLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? (NaN|[+-]?Inf|-?[0-9][0-9eE.+-]*)$`)

// scrape fetches url and parses the exposition into samples keyed by the
// full sample name (labels included), validating every line on the way.
func scrape(t *testing.T, url string) (map[string]float64, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q, want text/plain exposition", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	samples := map[string]float64{}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !sampleLine.MatchString(line) {
			t.Fatalf("invalid exposition line %q", line)
		}
		sp := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("bad sample value in %q: %v", line, err)
		}
		samples[line[:sp]] = v
	}
	return samples, body
}

// onePointBody is a single-point fig10a run, the cheapest real sweep.
const onePointBody = `{"scenario": "fig10a", "spec": {"params": {"kinds": "fibonacci", "ws": "1", "iters": "2"}}, "wait": true}`

// TestMetricsExposition pins the families and values GET /metrics reports
// after a known request sequence: one computed run, one LRU cache hit.
func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t)

	if code := getJSON(t, ts.URL+"/scenarios", nil); code != http.StatusOK {
		t.Fatalf("GET /scenarios = %d", code)
	}
	for i := 0; i < 2; i++ {
		if view, code := postRun(t, ts, onePointBody); code != http.StatusOK || view.Status != "done" {
			t.Fatalf("POST /runs #%d = %d, status %q", i, code, view.Status)
		}
	}

	samples, body := scrape(t, ts.URL+"/metrics")

	// Every family must carry both exposition headers.
	for _, fam := range []string{
		"sempe_http_requests_total", "sempe_http_request_seconds",
		"sempe_runs_created_total", "sempe_runs_finished_total",
		"sempe_serve_cache_hits_total", "sempe_serve_store_hits_total",
		"sempe_serve_computes_total", "sempe_runs",
		"sempe_sim_semaphore_occupancy", "sempe_sim_semaphore_capacity",
	} {
		for _, header := range []string{"# HELP ", "# TYPE "} {
			if !strings.Contains(body, header+fam+" ") {
				t.Errorf("exposition missing %s%s", header, fam)
			}
		}
	}

	want := map[string]float64{
		`sempe_runs_created_total`:                                                  2,
		`sempe_serve_computes_total`:                                                1,
		`sempe_serve_cache_hits_total`:                                              1,
		`sempe_serve_store_hits_total`:                                              0,
		`sempe_runs_finished_total{status="done"}`:                                  2,
		`sempe_runs{status="done"}`:                                                 2,
		`sempe_runs{status="running"}`:                                              0,
		`sempe_sim_semaphore_occupancy`:                                             0,
		`sempe_sim_semaphore_capacity`:                                              2,
		`sempe_http_requests_total{route="POST /runs",method="POST",code="200"}`:    2,
		`sempe_http_requests_total{route="GET /scenarios",method="GET",code="200"}`: 1,
		`sempe_http_request_seconds_count{route="POST /runs"}`:                      2,
	}
	for name, v := range want {
		if got, ok := samples[name]; !ok || got != v {
			t.Errorf("%s = %v (present %t), want %v", name, got, ok, v)
		}
	}
	if sum := samples[`sempe_http_request_seconds_sum{route="POST /runs"}`]; sum <= 0 {
		t.Errorf("request-latency sum for POST /runs = %v, want > 0", sum)
	}
	if inf := samples[`sempe_http_request_seconds_bucket{route="POST /runs",le="+Inf"}`]; inf != 2 {
		t.Errorf("+Inf latency bucket for POST /runs = %v, want 2", inf)
	}
}

// TestMetricsConcurrentScrape exercises /metrics under concurrent load for
// the race detector: scrapes race run creation, polls, and each other.
func TestMetricsConcurrentScrape(t *testing.T) {
	_, ts := newTestServer(t)
	var wg sync.WaitGroup
	get := func(path string) { // goroutine-safe: t.Error, never t.Fatal
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Error(err)
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				get("/metrics")
			}
		}()
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/runs", "application/json", strings.NewReader(onePointBody))
			if err != nil {
				t.Error(err)
			} else {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			get("/runs")
		}()
	}
	wg.Wait()
	samples, _ := scrape(t, ts.URL+"/metrics")
	if got := samples[`sempe_runs_created_total`]; got != 4 {
		t.Fatalf("sempe_runs_created_total = %v, want 4", got)
	}
}

// TestRunEventsEndpoint: a local run's journal streams over GET
// /runs/{id}/events with the engine's sweep and point spans in order.
func TestRunEventsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	view, code := postRun(t, ts, onePointBody)
	if code != http.StatusOK || view.Status != "done" {
		t.Fatalf("POST /runs = %d, status %q", code, view.Status)
	}

	var ev eventsView
	if code := getJSON(t, ts.URL+"/runs/"+view.ID+"/events", &ev); code != http.StatusOK {
		t.Fatalf("GET /runs/%s/events = %d", view.ID, code)
	}
	if ev.ID != view.ID || ev.Status != "done" || ev.Count != len(ev.Events) {
		t.Fatalf("events view = %+v", ev)
	}
	counts := map[string]int{}
	for i, e := range ev.Events {
		if e.Seq != i {
			t.Fatalf("event %d has seq %d, want dense ordering", i, e.Seq)
		}
		counts[e.Name+"/"+e.Phase]++
	}
	for _, want := range []string{
		"created/", "running/", "sweep/begin", "sweep/end",
		"point/begin", "point/end", "done/",
	} {
		if counts[want] == 0 {
			t.Errorf("journal missing %q event; got %v", want, counts)
		}
	}
	if got := counts["point/begin"]; got != 1 {
		t.Errorf("point begin spans = %d, want 1 (single-point grid)", got)
	}

	if code := getJSON(t, ts.URL+"/runs/nope/events", nil); code != http.StatusNotFound {
		t.Fatalf("GET /runs/nope/events = %d, want 404", code)
	}
}

// TestPprofOptIn: the profile endpoints exist only behind EnablePprof.
func TestPprofOptIn(t *testing.T) {
	_, plain := newTestServer(t)
	if code := getJSON(t, plain.URL+"/debug/pprof/cmdline", nil); code != http.StatusNotFound {
		t.Fatalf("pprof without opt-in = %d, want 404", code)
	}
	srv := New(Options{MaxWorkers: 2, EnablePprof: true})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if code := getJSON(t, ts.URL+"/debug/pprof/cmdline", nil); code != http.StatusOK {
		t.Fatalf("pprof with opt-in = %d, want 200", code)
	}
}

// TestDistributedRunThroughServe: a server fronting two workers dispatches
// a shardable run through the cluster coordinator. The run must match a
// serial engine run byte-for-byte, carry the provenance report with
// per-shard and per-worker stats, and stream the coordinator's
// dispatch/merge spans on the events endpoint.
func TestDistributedRunThroughServe(t *testing.T) {
	w1 := httptest.NewServer(New(Options{MaxWorkers: 2, Worker: true}).Handler())
	defer w1.Close()
	w2 := httptest.NewServer(New(Options{MaxWorkers: 2, Worker: true}).Handler())
	defer w2.Close()

	front := New(Options{
		MaxWorkers:       2,
		ClusterWorkers:   []string{w1.URL, w2.URL},
		ClusterShardSize: 1, // every point crosses the wire
	})
	ts := httptest.NewServer(front.Handler())
	defer ts.Close()

	body := `{"scenario": "fig10a", "spec": {"params": {"kinds": "fibonacci,ones", "ws": "1,2", "iters": "2"}}, "wait": true}`
	view, code := postRun(t, ts, body)
	if code != http.StatusOK || view.Status != "done" {
		t.Fatalf("POST /runs = %d, status %q (err %q)", code, view.Status, view.Error)
	}

	// Byte-identical to the serial engine: the front end is a pure
	// transport.
	sc, _ := scenario.Lookup("fig10a")
	serial, err := scenario.Run(sc, view.Spec, scenario.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := stableString(t, view.Result), stableString(t, serial); got != want {
		t.Fatalf("distributed stable JSON differs from serial run:\n%s\nvs\n%s", got, want)
	}

	rep := view.Report
	if rep == nil {
		t.Fatal("distributed run has no cluster report")
	}
	if rep.Shards != 4 || rep.Points != 4 || rep.Retries != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if len(rep.Events) != 0 {
		t.Fatalf("run view embeds %d journal events; the events endpoint owns them", len(rep.Events))
	}
	if len(rep.ShardStats) != 4 {
		t.Fatalf("ShardStats = %+v, want 4 entries", rep.ShardStats)
	}
	for _, ss := range rep.ShardStats {
		if ss.Attempts != 1 || ss.Points != 1 || ss.Millis <= 0 {
			t.Errorf("shard stat %+v: want 1 attempt, 1 point, positive duration", ss)
		}
		if ss.Worker != w1.URL && ss.Worker != w2.URL {
			t.Errorf("shard stat %+v: unknown worker", ss)
		}
	}
	if len(rep.WorkerStats) != 2 {
		t.Fatalf("WorkerStats = %+v, want 2 entries", rep.WorkerStats)
	}
	points := 0
	for _, ws := range rep.WorkerStats {
		if !ws.Healthy || ws.Dropped || ws.Failures != 0 {
			t.Errorf("worker stat %+v: want healthy, not dropped, no failures", ws)
		}
		if ws.Points > 0 && ws.PointsPerSec <= 0 {
			t.Errorf("worker stat %+v: busy worker with no throughput", ws)
		}
		points += ws.Points
	}
	if points != 4 {
		t.Errorf("worker stats account for %d points, want 4", points)
	}

	// The coordinator journaled into the run's journal: per-shard dispatch
	// and merge spans are on the events endpoint.
	var ev eventsView
	if code := getJSON(t, ts.URL+"/runs/"+view.ID+"/events", &ev); code != http.StatusOK {
		t.Fatalf("GET /runs/%s/events = %d", view.ID, code)
	}
	counts := map[string]int{}
	for _, e := range ev.Events {
		counts[e.Name+"/"+e.Phase]++
	}
	for name, want := range map[string]int{
		"cluster_sweep/begin": 1, "cluster_sweep/end": 1,
		"probe/begin": 1, "probe/end": 1,
		"dispatch/begin": 4, "dispatch/end": 4,
		"merge/begin": 4, "merge/end": 4,
	} {
		if counts[name] != want {
			t.Errorf("journal has %d %q events, want %d (all: %v)", counts[name], name, want, counts)
		}
	}

	// Worker-side metrics: the shard endpoint counted the dispatched work.
	shardReqs, shardPoints := 0.0, 0.0
	for _, w := range []*httptest.Server{w1, w2} {
		samples, _ := scrape(t, w.URL+"/metrics")
		shardReqs += samples["sempe_shard_requests_total"]
		shardPoints += samples["sempe_shard_points_total"]
	}
	if shardReqs != 4 || shardPoints != 4 {
		t.Errorf("worker shard metrics: %v requests / %v points, want 4 / 4", shardReqs, shardPoints)
	}
}

func stableString(t *testing.T, res *scenario.Result) string {
	t.Helper()
	if res == nil {
		t.Fatal("nil result")
	}
	out, err := json.MarshalIndent(res.Stable(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}
