package attack

import (
	"fmt"
	"math"

	"repro/internal/stattest"
)

// MIBins is the bin count of the mutual-information estimate over the
// recovery statistic.
const MIBins = 8

// ColumnT is one observation column's fixed-vs-random Welch t.
type ColumnT struct {
	Column string  `json:"column"`
	T      float64 `json:"t"`
}

// Assessment is the statistical verdict over a fixed batch and a random
// batch of the same attacker/architecture/seed: the TVLA t per observation
// column, the binned mutual-information estimate between the recovery
// statistic and the secret, and the calibrated classifier's recovery rate
// with its 95% Wilson interval.
type Assessment struct {
	Attacker string    `json:"attacker"`
	Arch     string    `json:"arch"`
	Trials   int       `json:"trials"`
	Seed     int64     `json:"seed"`
	Noise    int       `json:"noise"`
	Columns  []ColumnT `json:"columns"`
	MaxAbsT  float64   `json:"max_abs_t"`
	TVLALeak bool      `json:"tvla_leak"` // max |t| >= stattest.TVLAThreshold
	MIBits   float64   `json:"mi_bits"`
	Recovery float64   `json:"recovery"`
	CILo     float64   `json:"ci_lo"`
	CIHi     float64   `json:"ci_hi"`
}

// Recovered reports whether the attack extracts the secret: the whole 95%
// confidence interval sits above chance.
func (a Assessment) Recovered() bool { return a.CILo > 0.5 }

// Leaks is the overall verdict — TVLA fired or the secret was recovered —
// shared by the report renderers and the cmd/sempe-attack -check gate so
// they can never drift apart.
func (a Assessment) Leaks() bool { return a.TVLALeak || a.Recovered() }

// String renders the one-line verdict cmd/sempe-attack prints.
func (a Assessment) String() string {
	verdict := "SECURE"
	if a.Leaks() {
		verdict = "LEAK"
	}
	return fmt.Sprintf("%s on %s: recovery %.1f%% (95%% CI %.1f%%..%.1f%%), max |t| %.1f, MI %.2f bits -> %s",
		a.Attacker, a.Arch, 100*a.Recovery, 100*a.CILo, 100*a.CIHi, a.MaxAbsT, a.MIBits, verdict)
}

// Assess computes the statistical verdict from a TVLA fixed batch and a
// random batch. The batches must agree on attacker, architecture, trial
// count, and seed — the pairing that makes fixed-vs-random sound (their
// per-trial environmental noise draws are identical; only the secrets
// differ).
func Assess(fixed, random *Batch) (Assessment, error) {
	pf, pr := fixed.Params, random.Params
	if pf.Kind != pr.Kind || pf.Secure != pr.Secure || pf.Seed != pr.Seed ||
		pf.Noise != pr.Noise || len(fixed.Trials) != len(random.Trials) {
		return Assessment{}, fmt.Errorf("attack: fixed/random batches not paired: %s/%s/seed %d/noise %d/%d trials vs %s/%s/seed %d/noise %d/%d",
			pf.Kind, ArchName(pf.Secure), pf.Seed, pf.Noise, len(fixed.Trials),
			pr.Kind, ArchName(pr.Secure), pr.Seed, pr.Noise, len(random.Trials))
	}
	if pf.FixedSecret < 0 {
		return Assessment{}, fmt.Errorf("attack: fixed batch has no fixed secret")
	}
	if pr.FixedSecret >= 0 {
		return Assessment{}, fmt.Errorf("attack: random batch has a fixed secret")
	}
	a := Assessment{
		Attacker: pf.Kind.String(),
		Arch:     ArchName(pf.Secure),
		Trials:   len(random.Trials),
		Seed:     pf.Seed,
		Noise:    pf.Noise,
	}
	for i, name := range fixed.Columns {
		t := stattest.WelchT(fixed.Column(i), random.Column(i))
		a.Columns = append(a.Columns, ColumnT{Column: name, T: t})
		if abs := math.Abs(t); abs > a.MaxAbsT {
			a.MaxAbsT = abs
		}
	}
	a.TVLALeak = a.MaxAbsT >= stattest.TVLAThreshold
	a.MIBits = stattest.BinnedMI(random.Column(signColumn(pr.Kind)), random.Secrets(), MIBins)
	a.Recovery = random.RecoveryRate()
	a.CILo, a.CIHi = stattest.WilsonInterval(random.Recovered(), len(random.Trials), 1.96)
	return a, nil
}

// RunAssessment runs the full experiment for one attacker/architecture:
// the TVLA fixed batch (secret pinned to 1) and the random batch (fresh
// secret bit per trial), then the assessment over the pair. The two
// batches draw identical per-trial environments by construction, so their
// calibration simulations are shared — each trial's pair is simulated
// once and feeds both batches, producing bit-identical results to two
// independent Run calls at half the cost.
func RunAssessment(p Params) (Assessment, error) {
	pf := p
	pf.FixedSecret = 1
	pr := p
	pr.FixedSecret = -1
	if err := pr.validate(); err != nil {
		return Assessment{}, err
	}
	if err := pr.rejectGap(); err != nil {
		return Assessment{}, err
	}
	pairs, err := runCalibPairs(p)
	if err != nil {
		return Assessment{}, err
	}
	fixed := &Batch{Params: pf, Columns: columns(p.Kind)}
	random := &Batch{Params: pr, Columns: columns(p.Kind)}
	secRng := secretRNG(p.effSeed())
	for _, c := range pairs {
		secret := uint64(secRng.Intn(2))
		fixed.Trials = append(fixed.Trials, makeTrial(p.Kind, 1, c.c0, c.c1))
		random.Trials = append(random.Trials, makeTrial(p.Kind, secret, c.c0, c.c1))
	}
	return Assess(fixed, random)
}
