package attack

import (
	"repro/internal/pipeline"
)

// TraceTrial runs one attack trial program — the named victim's fragment for
// (key, width, bit) inside the attacker's measurement scaffold, with the
// trial's deterministic environment draw — with fn armed as the process-wide
// spec watch, and returns the attacker's observation vector. It exists for
// cmd/sempe-trace: the batch engines never trace (arming a watch diverts the
// superblock fast path), but a single traced trial shows exactly which
// wrong-path work the attacker's probe reads back.
//
// The watch is installed as the process default for the duration of the call
// and the previous default restored before returning; concurrent simulations
// in the same process would also be traced, so callers are expected to be
// CLI-style single-threaded. When p.Gap > 0 the trial replays the live
// measurement (independent gap seed), not a calibration replay.
func TraceTrial(p Params, trial int, key uint64, fn func(pipeline.SpecEvent)) ([]float64, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	d := newDraw(trialRNG(p.effSeed(), trial), p)
	prev := pipeline.SetSpecWatchDefault(fn)
	defer pipeline.SetSpecWatchDefault(prev)
	return runTrial(p, d, d.gapMeas, key)
}
