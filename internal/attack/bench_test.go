package attack

import (
	"fmt"
	"testing"
)

// BenchmarkAttackTrials measures serial trial throughput through the real
// engine path: one op is one trial's calibration pair (the unit every batch
// and key-extraction loop is built from). The trials/s metric is the number
// BENCH_sim.json tracks pre/post per perf PR; the allocs/op gate pins the
// steady-state trial loop.
func BenchmarkAttackTrials(b *testing.B) {
	for _, kind := range AllKinds() {
		for _, secure := range []bool{false, true} {
			b.Run(fmt.Sprintf("%s/%s", kind, ArchName(secure)), func(b *testing.B) {
				p := DefaultParams(kind, secure)
				r, err := newRunner(p)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, _, _, err := r.calibPair(i); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "trials/s")
			})
		}
	}
}

// BenchmarkKeyExtractQuick is the keyextract-quick wall-clock entry: the
// experiments registry's quick grid point (4-bit keyloop, 12 trials/bit)
// through the full extraction engine, baseline arch.
func BenchmarkKeyExtractQuick(b *testing.B) {
	p := DefaultKeyParams(BPProbe, false)
	p.Width = 4
	p.Trials = 12
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ExtractKey(p); err != nil {
			b.Fatal(err)
		}
	}
}
