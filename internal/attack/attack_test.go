package attack

import (
	"encoding/json"
	"testing"

	"repro/internal/stattest"
)

// The acceptance property of the whole lab, per attacker: on the
// unprotected baseline the secret bit is recovered essentially always and
// TVLA screams; under SeMPE recovery sits at chance and TVLA is silent.
// Everything is deterministic under the fixed seed, so these are exact
// regression pins with slack only for robustness against future simulator
// tuning.

func acceptanceParams(kind Kind, secure bool) Params {
	p := DefaultParams(kind, secure)
	p.Trials = 120
	return p
}

func TestBaselineLeaks(t *testing.T) {
	for _, kind := range AllKinds() {
		a, err := RunAssessment(acceptanceParams(kind, false))
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		t.Logf("%s", a)
		if a.Recovery < 0.99 {
			t.Errorf("%v baseline: recovery %.3f, want >= 0.99", kind, a.Recovery)
		}
		if !a.Recovered() {
			t.Errorf("%v baseline: CI [%.3f, %.3f] does not clear chance", kind, a.CILo, a.CIHi)
		}
		if a.MaxAbsT < stattest.TVLAThreshold {
			t.Errorf("%v baseline: max |t| = %.2f, want >= %.1f", kind, a.MaxAbsT, stattest.TVLAThreshold)
		}
		if !a.TVLALeak {
			t.Errorf("%v baseline: TVLA did not flag a leak", kind)
		}
		if a.MIBits < 0.5 {
			t.Errorf("%v baseline: MI = %.3f bits, want >= 0.5", kind, a.MIBits)
		}
	}
}

func TestSeMPECloses(t *testing.T) {
	for _, kind := range AllKinds() {
		a, err := RunAssessment(acceptanceParams(kind, true))
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		t.Logf("%s", a)
		if a.Recovery < 0.35 || a.Recovery > 0.65 {
			t.Errorf("%v sempe: recovery %.3f, want chance (0.35..0.65)", kind, a.Recovery)
		}
		if a.Recovered() {
			t.Errorf("%v sempe: CI [%.3f, %.3f] clears chance", kind, a.CILo, a.CIHi)
		}
		if a.MaxAbsT >= stattest.TVLAThreshold {
			t.Errorf("%v sempe: max |t| = %.2f, want < %.1f", kind, a.MaxAbsT, stattest.TVLAThreshold)
		}
		if a.MIBits > 0.1 {
			t.Errorf("%v sempe: MI = %.3f bits, want ~0", kind, a.MIBits)
		}
	}
}

// Under SeMPE every trial's observation vector must be bit-identical
// across the two secrets — the per-trial form of the paper's
// indistinguishability claim, and the reason the classifier degenerates to
// a tie.
func TestSeMPEObservationsSecretIndependent(t *testing.T) {
	for _, kind := range AllKinds() {
		p := DefaultParams(kind, true)
		for trial := 0; trial < 8; trial++ {
			rng := trialRNG(p.Seed, trial)
			d := newDraw(rng, p)
			o0, err := runTrial(p, d, d.gapCal, 0)
			if err != nil {
				t.Fatalf("%v trial %d: %v", kind, trial, err)
			}
			o1, err := runTrial(p, d, d.gapCal, 1)
			if err != nil {
				t.Fatalf("%v trial %d: %v", kind, trial, err)
			}
			for i := range o0 {
				if o0[i] != o1[i] {
					t.Errorf("%v trial %d col %d: %v (s=0) != %v (s=1)", kind, trial, i, o0[i], o1[i])
				}
			}
		}
	}
}

// On the baseline the same per-trial comparison must differ on the
// recovery statistic — the signal whose existence the recovery rate
// measures.
func TestBaselineObservationsDiffer(t *testing.T) {
	for _, kind := range AllKinds() {
		p := DefaultParams(kind, false)
		rec := recoveryColumn(kind)
		for trial := 0; trial < 8; trial++ {
			rng := trialRNG(p.Seed, trial)
			d := newDraw(rng, p)
			o0, err := runTrial(p, d, d.gapCal, 0)
			if err != nil {
				t.Fatalf("%v trial %d: %v", kind, trial, err)
			}
			o1, err := runTrial(p, d, d.gapCal, 1)
			if err != nil {
				t.Fatalf("%v trial %d: %v", kind, trial, err)
			}
			if o0[rec] == o1[rec] {
				t.Errorf("%v trial %d: recovery statistic identical (%v) for both secrets", kind, trial, o0[rec])
			}
		}
	}
}

func TestBatchDeterministic(t *testing.T) {
	p := DefaultParams(BPProbe, false)
	p.Trials = 10
	b1, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := json.Marshal(b1)
	j2, _ := json.Marshal(b2)
	if string(j1) != string(j2) {
		t.Errorf("same params, different batches:\n%s\n%s", j1, j2)
	}
	for _, tr := range b1.Trials {
		if len(tr.Obs) != len(b1.Columns) {
			t.Fatalf("obs width %d, columns %d", len(tr.Obs), len(b1.Columns))
		}
	}
}

// The fixed and random batches must draw identical per-trial environments
// so TVLA compares like with like: trials with the same secret must have
// identical observations across the two batches.
func TestFixedRandomPairing(t *testing.T) {
	p := DefaultParams(PrimeProbe, false)
	p.Trials = 12
	pf := p
	pf.FixedSecret = 1
	fixed, err := Run(pf)
	if err != nil {
		t.Fatal(err)
	}
	random, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	paired := 0
	for i := range random.Trials {
		if random.Trials[i].Secret == 1 {
			paired++
			for c := range random.Trials[i].Obs {
				if random.Trials[i].Obs[c] != fixed.Trials[i].Obs[c] {
					t.Errorf("trial %d col %d: random %v != fixed %v despite same secret and seed",
						i, c, random.Trials[i].Obs[c], fixed.Trials[i].Obs[c])
				}
			}
		}
	}
	if paired == 0 {
		t.Fatal("no secret=1 trials in the random batch; widen the check")
	}
}

func TestAssessRejectsUnpaired(t *testing.T) {
	p := DefaultParams(BPProbe, false)
	p.Trials = 4
	pf := p
	pf.FixedSecret = 1
	fixed, err := Run(pf)
	if err != nil {
		t.Fatal(err)
	}
	random, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Assess(random, random); err == nil {
		t.Error("Assess accepted a random batch as fixed")
	}
	if _, err := Assess(fixed, fixed); err == nil {
		t.Error("Assess accepted a fixed batch as random")
	}
	other := p
	other.Seed = 99
	otherRandom, err := Run(other)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Assess(fixed, otherRandom); err == nil {
		t.Error("Assess accepted batches with different seeds")
	}
	if _, err := Assess(fixed, random); err != nil {
		t.Errorf("Assess rejected a valid pair: %v", err)
	}
}

func TestRunRejectsBadParams(t *testing.T) {
	p := DefaultParams(BPProbe, false)
	p.Trials = 0
	if _, err := Run(p); err == nil {
		t.Error("Run accepted trials=0")
	}
	p = DefaultParams(BPProbe, false)
	p.Noise = -1
	if _, err := Run(p); err == nil {
		t.Error("Run accepted noise=-1")
	}
	// The gap axis only does anything through ExtractKey's live
	// measurement; the batch entry points must refuse it rather than
	// silently report a fully-calibrated attacker.
	p = DefaultParams(BPProbe, false)
	p.Gap = 8
	if _, err := Run(p); err == nil {
		t.Error("Run accepted gap>0 despite never simulating the live measurement")
	}
	if _, err := RunAssessment(p); err == nil {
		t.Error("RunAssessment accepted gap>0")
	}
}

func TestParseRoundTrips(t *testing.T) {
	for _, k := range AllKinds() {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Error("ParseKind accepted garbage")
	}
	for _, secure := range []bool{false, true} {
		got, err := ParseArch(ArchName(secure))
		if err != nil || got != secure {
			t.Errorf("ParseArch(%q) = %v, %v", ArchName(secure), got, err)
		}
	}
	if _, err := ParseArch("nope"); err == nil {
		t.Error("ParseArch accepted garbage")
	}
}
