package attack

import (
	"fmt"
	"math/rand"

	"repro/internal/stattest"
)

// This file is the multi-bit key-extraction engine: it walks a W-bit key
// bit by bit (LSB first), runs one trial batch per bit against the chosen
// victim, and aggregates the per-bit assessments into a KeyRecovery. The
// per-bit walk mirrors real Spectre-style extraction: the attacker's
// already-recovered prefix parameterizes the victim's setup for the next
// bit, so a wrong early guess propagates — exactly the failure mode a
// strength sweep (the Gap axis) is measuring.

// KeyParams parameterizes one key-extraction experiment.
type KeyParams struct {
	Kind   Kind   `json:"kind"`
	Secure bool   `json:"secure"`
	Victim string `json:"victim"` // victim name; empty = "bit"
	Width  int    `json:"width"`  // key width in bits; 0 = 1
	Trials int    `json:"trials"` // trials per bit
	Seed   int64  `json:"seed"`
	Noise  int    `json:"noise"` // in-window jitter (see Params.Noise)
	Gap    int    `json:"gap"`   // attacker-strength gap activity (see Params.Gap)
	// Key pins the true key; negative derives a deterministic key from the
	// seed (the usual case — all-zeros or all-ones keys are edge-case
	// tests, not representative sweeps).
	Key int64 `json:"key"`
	// Workers bounds the per-bit trial worker pool (see Params.Workers);
	// results are bit-identical at any value. Excluded from JSON so stored
	// result keys are parallelism-independent.
	Workers int `json:"-"`
}

// DefaultKeyParams is the configuration the keyextract scenario and
// cmd/sempe-attack start from: an 8-bit key, the strongest attacker.
func DefaultKeyParams(kind Kind, secure bool) KeyParams {
	d := DefaultParams(kind, secure)
	return KeyParams{
		Kind:   kind,
		Secure: secure,
		Victim: "keyloop",
		Width:  8,
		Trials: 40,
		Seed:   d.Seed,
		Noise:  d.Noise,
		Key:    -1,
	}
}

// bitParams builds the per-bit trial batch parameters for attacking bit b
// with recovered prefix bits.
func (p KeyParams) bitParams(b int, prefix uint64) Params {
	return Params{
		Kind:        p.Kind,
		Secure:      p.Secure,
		Trials:      p.Trials,
		Seed:        p.Seed,
		Noise:       p.Noise,
		FixedSecret: -1,
		Victim:      p.Victim,
		Width:       p.width(),
		Bit:         b,
		KeyPrefix:   prefix,
		Gap:         p.Gap,
		Workers:     p.Workers,
	}
}

func (p KeyParams) width() int {
	if p.Width == 0 {
		return 1
	}
	return p.Width
}

// TrueKey resolves the key the experiment hides from the attacker: the
// pinned Key when non-negative, otherwise a deterministic seed-derived
// value (guaranteed to mix zero and one bits for widths >= 2, so a
// guess-zero-everywhere classifier can never fake a full extraction).
func (p KeyParams) TrueKey() uint64 {
	w := p.width()
	mask := uint64(1)<<uint(w) - 1
	if p.Key >= 0 {
		return uint64(p.Key) & mask
	}
	rng := rand.New(rand.NewSource(p.Seed*0x9E3779B9 + 0x7F4A7C15))
	k := rng.Uint64() & mask
	if w >= 2 {
		// Force a mixed key: at least one set and one clear bit.
		if k == 0 {
			k = 1
		} else if k == mask {
			k &^= 2
		}
	}
	return k
}

func (p KeyParams) validate() error {
	if p.Trials <= 0 {
		return fmt.Errorf("attack: trials must be >= 1, have %d", p.Trials)
	}
	// The per-bit batch parameters carry the rest of the constraints.
	return p.bitParams(0, 0).validate()
}

// BitResult is one attacked bit's verdict: the extraction outcome (guess,
// accuracy against the true bit, trials-to-extraction) plus the per-bit
// statistical assessment over the paired fixed/random batches (TVLA t,
// mutual information, random-secret recovery with its Wilson interval).
type BitResult struct {
	Bit     int    `json:"bit"`
	TrueBit uint64 `json:"true_bit"`
	Guess   uint64 `json:"guess"`
	Correct bool   `json:"correct"`
	// Accuracy is the per-trial accuracy on the true bit over informative
	// trials; AccLo/AccHi is its 95% Wilson interval. A trial is
	// informative when the attacker's own calibration pair shows contrast
	// on the recovery statistic — computable without the secret, so
	// discarding the rest is legitimate attacker practice (it is how real
	// prime+probe copes with speculative wrong-path pollution). Discarded
	// counts the dropped trials; with no informative trials (SeMPE, the
	// constant-time control) Accuracy is 0 and the Extracted verdict
	// carries the result.
	Accuracy  float64 `json:"accuracy"`
	AccLo     float64 `json:"acc_lo"`
	AccHi     float64 `json:"acc_hi"`
	Discarded int     `json:"discarded"`
	// TrialsToExtract is the smallest number of leading trials whose
	// Wilson interval already clears chance on the correct side — the
	// attacker's cost to be confident in this bit. -1 when the bit is
	// never confidently extracted within the trial budget.
	TrialsToExtract int `json:"trials_to_extract"`
	// Extracted is the per-bit verdict: the random-batch recovery interval
	// clears chance AND the majority guess matches the true bit.
	Extracted bool    `json:"extracted"`
	MaxAbsT   float64 `json:"max_abs_t"`
	TVLALeak  bool    `json:"tvla_leak"`
	MIBits    float64 `json:"mi_bits"`
	Recovery  float64 `json:"recovery"` // random-secret recovery rate
	RecLo     float64 `json:"rec_lo"`
	RecHi     float64 `json:"rec_hi"`
}

// KeyRecovery is the aggregate verdict of one key-extraction experiment.
type KeyRecovery struct {
	Victim   string `json:"victim"`
	Attacker string `json:"attacker"`
	Arch     string `json:"arch"`
	Width    int    `json:"width"`
	Trials   int    `json:"trials"` // per bit
	Seed     int64  `json:"seed"`
	Noise    int    `json:"noise"`
	Gap      int    `json:"gap"`
	Key      uint64 `json:"key"`
	// Recovered is the attacker's reconstructed key: the per-bit majority
	// guesses, LSB first.
	Recovered     uint64      `json:"recovered"`
	BitsCorrect   int         `json:"bits_correct"`
	BitsExtracted int         `json:"bits_extracted"`
	MinAccuracy   float64     `json:"min_accuracy"`
	MeanRecovery  float64     `json:"mean_recovery"`
	MaxAbsT       float64     `json:"max_abs_t"`
	MeanTTE       float64     `json:"mean_tte"` // mean trials-to-extraction over extracted bits; 0 when none
	Bits          []BitResult `json:"bits"`
}

// FullExtraction reports whether every bit was confidently and correctly
// extracted — the attacker holds the whole key.
func (k KeyRecovery) FullExtraction() bool {
	return k.BitsExtracted == k.Width && k.Recovered == k.Key
}

// Leaks is the overall leakage verdict: any bit extracted, or TVLA firing
// on any bit.
func (k KeyRecovery) Leaks() bool {
	return k.BitsExtracted > 0 || k.MaxAbsT >= stattest.TVLAThreshold
}

// MeetsExpectation is the shared -check gate: on SeMPE every victim must
// be secure; on the baseline a leaky victim must yield the full key and a
// constant-time victim (leaky == false) must stay secure. Report renderers
// and cmd/sempe-attack -check both call this, so they can never drift.
func (k KeyRecovery) MeetsExpectation(leaky bool) bool {
	if k.Arch == ArchName(true) || !leaky {
		return !k.Leaks()
	}
	return k.FullExtraction()
}

// Verdict is the three-way row verdict shared by the CLI's String and the
// keyextract/noise table renderers, so the two can never drift.
func (k KeyRecovery) Verdict() string {
	switch {
	case k.FullExtraction():
		return "KEY EXTRACTED"
	case k.Leaks():
		return "PARTIAL LEAK"
	}
	return "SECURE"
}

// String renders the one-line verdict cmd/sempe-attack prints.
func (k KeyRecovery) String() string {
	return fmt.Sprintf("%s vs %s on %s (W=%d, gap %d): key %#x -> recovered %#x, %d/%d bits extracted, min bit accuracy %.1f%%, max |t| %.1f -> %s",
		k.Victim, k.Attacker, k.Arch, k.Width, k.Gap, k.Key, k.Recovered,
		k.BitsExtracted, k.Width, 100*k.MinAccuracy, k.MaxAbsT, k.Verdict())
}

// ExtractKey runs the key-extraction experiment: per bit, a trial batch
// (whose calibration pairs also feed the per-bit TVLA assessment), then
// the majority-vote bit decision that seeds the next bit's prefix.
func ExtractKey(p KeyParams) (KeyRecovery, error) {
	if err := p.validate(); err != nil {
		return KeyRecovery{}, err
	}
	v, err := p.bitParams(0, 0).victimImpl()
	if err != nil {
		return KeyRecovery{}, err
	}
	key := p.TrueKey()
	kr := KeyRecovery{
		Victim:      v.Name(),
		Attacker:    p.Kind.String(),
		Arch:        ArchName(p.Secure),
		Width:       p.width(),
		Trials:      p.Trials,
		Seed:        p.Seed,
		Noise:       p.Noise,
		Gap:         p.Gap,
		Key:         key,
		MinAccuracy: 1,
	}
	prefix := uint64(0)
	sumRec, sumTTE := 0.0, 0
	for b := 0; b < kr.Width; b++ {
		br, err := extractBit(p.bitParams(b, prefix), key)
		if err != nil {
			return KeyRecovery{}, fmt.Errorf("attack: extracting bit %d: %w", b, err)
		}
		kr.Bits = append(kr.Bits, br)
		prefix |= br.Guess << uint(b)
		if br.Correct {
			kr.BitsCorrect++
		}
		if br.Extracted {
			kr.BitsExtracted++
			sumTTE += br.TrialsToExtract
		}
		if br.Accuracy < kr.MinAccuracy {
			kr.MinAccuracy = br.Accuracy
		}
		if br.MaxAbsT > kr.MaxAbsT {
			kr.MaxAbsT = br.MaxAbsT
		}
		sumRec += br.Recovery
	}
	kr.Recovered = prefix
	kr.MeanRecovery = sumRec / float64(kr.Width)
	if kr.BitsExtracted > 0 {
		kr.MeanTTE = float64(sumTTE) / float64(kr.BitsExtracted)
	}
	return kr, nil
}

// extractBit runs one bit's trial batch. Each trial simulates the two
// calibration replays (attacked bit forced to 0 and 1 over the recovered
// prefix) and the live measurement of the true key. With no gap activity
// and a correct prefix the live measurement is program-identical to the
// matching calibration, so its simulation is skipped — the PR-4
// optimization, now load-bearing for sweep cost. The calibration pairs
// double as the per-bit TVLA fixed/random batches, exactly as in
// RunAssessment.
func extractBit(bp Params, key uint64) (BitResult, error) {
	trueBit := (key >> uint(bp.Bit)) & 1
	br := BitResult{Bit: bp.Bit, TrueBit: trueBit, TrialsToExtract: -1}

	pf := bp
	pf.FixedSecret = 1
	fixed := &Batch{Params: pf, Columns: columns(bp.Kind)}
	random := &Batch{Params: bp, Columns: columns(bp.Kind)}
	secRng := secretRNG(bp.effSeed())
	rec := recoveryColumn(bp.Kind)
	prefixCorrect := bp.KeyPrefix == key&(uint64(1)<<uint(bp.Bit)-1)

	// Phase 1: simulate every trial's runs on the worker pool. A trial is
	// three independent simulations at most — calib0, calib1, and (when the
	// gap axis or a wrong prefix makes the live measurement distinct) the
	// measurement — so trials parallelize perfectly; per-trial results land
	// in trial-order slots.
	needMeas := !(bp.Gap == 0 && prefixCorrect)
	type trialRuns struct {
		c0, c1, m []float64
	}
	res := make([]trialRuns, bp.Trials)
	err := runTrials(bp, bp.Trials, bp.Workers, func(r *runner, t int) error {
		d := r.trialDraw(t)
		c0, err := r.run(d, d.gapCal, bp.KeyPrefix, &r.c0buf)
		if err != nil {
			return fmt.Errorf("trial %d calib0: %w", t, err)
		}
		c1, err := r.run(d, d.gapCal, bp.KeyPrefix|1<<uint(bp.Bit), &r.c1buf)
		if err != nil {
			return fmt.Errorf("trial %d calib1: %w", t, err)
		}
		res[t] = trialRuns{c0: cloneObs(c0), c1: cloneObs(c1)}
		// The live measurement — the true key's program under the
		// measurement's own gap activity — is only simulated for
		// informative trials (see below; an uninformative one never gets
		// measured) and only when it cannot be selected from the pair.
		if needMeas && c0[rec] != c1[rec] {
			m, err := r.measure(d, key&(uint64(1)<<uint(bp.Bit+1)-1))
			if err != nil {
				return fmt.Errorf("trial %d measurement: %w", t, err)
			}
			res[t].m = cloneObs(m)
		}
		return nil
	})
	if err != nil {
		return br, err
	}

	// Phase 2: all cross-trial statistics, in trial order, exactly as the
	// serial loop computed them — worker count cannot change any output.
	correct := 0
	ones := 0
	informative := 0
	for t := 0; t < bp.Trials; t++ {
		secret := uint64(secRng.Intn(2))
		c0, c1 := res[t].c0, res[t].c1
		fixed.Trials = append(fixed.Trials, makeTrial(bp.Kind, 1, c0, c1))
		random.Trials = append(random.Trials, makeTrial(bp.Kind, secret, c0, c1))

		// An uninformative trial — the attacker's own calibration shows no
		// contrast (e.g. speculative wrong-path pollution evicted both
		// probed sets) — is detected and discarded before measurement,
		// exactly as a real attacker repeats a spoiled measurement.
		if c0[rec] == c1[rec] {
			br.Discarded++
			continue
		}
		informative++

		// With no gap activity and a correct prefix the live measurement is
		// program-identical to the matching calibration: selected, not
		// re-simulated (the PR-4 optimization).
		m := res[t].m
		if m == nil {
			m = c0
			if trueBit == 1 {
				m = c1
			}
		}
		g := classify(m[rec], c0[rec], c1[rec])
		if g == trueBit {
			correct++
		}
		if g == 1 {
			ones++
		}
		// Trials-to-extraction: the first prefix of trials (discarded ones
		// included — they cost the attacker time too) whose accuracy
		// Wilson interval clears chance on the correct side.
		if br.TrialsToExtract < 0 {
			if lo, _ := stattest.WilsonInterval(correct, informative, 1.96); lo > 0.5 {
				br.TrialsToExtract = t + 1
			}
		}
	}

	a, err := Assess(fixed, random)
	if err != nil {
		return br, err
	}
	br.Guess = 0
	if 2*ones > informative {
		br.Guess = 1
	}
	br.Correct = br.Guess == trueBit
	if informative > 0 {
		br.Accuracy = float64(correct) / float64(informative)
	}
	br.AccLo, br.AccHi = stattest.WilsonInterval(correct, informative, 1.96)
	// Extracted requires the attacker's own confidence to have converged
	// (the live-accuracy interval cleared chance at some prefix of trials),
	// not just the channel existing: on a noisy mid-gap row the random-batch
	// CI can clear 50% while the live classifier never does, and a majority
	// guess that is right by coin flip must not count as an extraction.
	br.Extracted = a.Recovered() && br.Correct && br.TrialsToExtract >= 0
	br.MaxAbsT = a.MaxAbsT
	br.TVLALeak = a.TVLALeak
	br.MIBits = a.MIBits
	br.Recovery = a.Recovery
	br.RecLo, br.RecHi = a.CILo, a.CIHi
	if !br.Extracted {
		br.TrialsToExtract = -1
	}
	return br, nil
}
