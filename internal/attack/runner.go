package attack

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/compile"
	"repro/internal/isa"
	"repro/internal/lang"
	"repro/internal/pipeline"
	"repro/internal/victim"
)

// This file is the trial-throughput engine. The naive trial path (runTrial)
// rebuilds the attacker program's AST, recompiles it, constructs a fresh
// pipeline core, and computes every leak-channel digest per run — all of
// which is pure overhead for the attack drivers, which consume only the
// cycle count and the marker stamps. A runner removes all three costs:
//
//   - one pooled core per runner, Reset (not reallocated) between runs, with
//     the marker watch hook installed once — Core.Reset preserves hooks and
//     TestCoreResetDifferential pins reset==fresh equality;
//   - one compiled template per trial-invariant program shape, patched per
//     trial by rewriting only the prologue's load-immediate operands (see
//     compile.Template); any shape the patcher cannot prove data-only falls
//     back to a full recompilation;
//   - no digest computation: the runner reads Core.Cycles() directly, which
//     is exactly Observation.Cycles.
//
// Every random stream (trial draws, secrets) is reproduced exactly — the
// runner reseeds one owned rand.Rand per trial instead of allocating a new
// one — so batches are bit-identical to the legacy path at any worker
// count; TestRunnerMatchesLegacy and TestParallelMatchesSerial pin this.

// tmplKey captures everything the attacker program's SHAPE depends on. Two
// trials with equal keys build structurally identical programs that differ
// only in scalar initial values (the patch slots): the key/prefix, the
// noise-chain seed, the gap-activity seed, and the prime+probe probed-set
// offsets ("pla"/"plb") are all data, while the draw fields that steer
// statement emission (noise op counts) and the batch geometry (victim,
// width, bit, gap) are part of the key.
type tmplKey struct {
	kind     Kind
	secure   bool
	victim   string
	width    int
	bit      int
	noisePre int
	noiseWin int
	gap      int
}

// tmplMemo is the process-wide template cache, shared by every runner.
var tmplMemo = compile.NewMemo[tmplKey]()

// Perf is a snapshot of the throughput engine's cumulative counters, the
// observability surface behind sempe-attack's perf block: template-cache
// effectiveness, core recycling, fallbacks to full recompilation, and the
// superblock engine's build/replay/legacy mix across all attack runs.
type Perf struct {
	TemplateHits      uint64 `json:"template_hits"`
	TemplateMisses    uint64 `json:"template_misses"`
	TemplateEvictions uint64 `json:"template_evictions"`
	// TemplateFallbacks counts full recompilations forced by a shape the
	// patcher could not prove data-only (non-patchable prologue, missing
	// slot, immediate overflow, or a victim without the KeyInits contract).
	TemplateFallbacks uint64 `json:"template_fallbacks"`
	CoreBuilds        uint64 `json:"core_builds"`
	CoreResets        uint64 `json:"core_resets"`
	SBBuilds          uint64 `json:"sb_builds"`
	SBReplays         uint64 `json:"sb_replays"`
	SBLegacyOps       uint64 `json:"sb_legacy_ops"`
	// SBWrongPathBuilds/SBWrongPathReplays are the slices of the above that
	// the flush logic attributed to squashed (never-committed) paths: work
	// the wrong-path replay engine ran at superblock speed instead of
	// diverting to the legacy walk.
	SBWrongPathBuilds  uint64 `json:"sb_wrongpath_builds"`
	SBWrongPathReplays uint64 `json:"sb_wrongpath_replays"`
	// Trials and TrialSeconds measure batch throughput: trials completed
	// across all runTrials batches and the wall-clock seconds those batches
	// took (summed per batch, so parallel batches count once). Trials /
	// TrialSeconds is the engine's trials/s.
	Trials       uint64  `json:"trials"`
	TrialSeconds float64 `json:"trial_seconds"`
}

var perfCounters struct {
	fallbacks  atomic.Uint64
	coreBuilds atomic.Uint64
	coreResets atomic.Uint64
	sbBuilds   atomic.Uint64
	sbReplays  atomic.Uint64
	sbLegacy   atomic.Uint64
	sbWPBuilds atomic.Uint64
	sbWPReplay atomic.Uint64
	trials     atomic.Uint64
	trialNS    atomic.Uint64
}

// PerfSnapshot returns the cumulative throughput-engine counters.
func PerfSnapshot() Perf {
	h, m, e := tmplMemo.Counters()
	return Perf{
		TemplateHits:       h,
		TemplateMisses:     m,
		TemplateEvictions:  e,
		TemplateFallbacks:  perfCounters.fallbacks.Load(),
		CoreBuilds:         perfCounters.coreBuilds.Load(),
		CoreResets:         perfCounters.coreResets.Load(),
		SBBuilds:           perfCounters.sbBuilds.Load(),
		SBReplays:          perfCounters.sbReplays.Load(),
		SBLegacyOps:        perfCounters.sbLegacy.Load(),
		SBWrongPathBuilds:  perfCounters.sbWPBuilds.Load(),
		SBWrongPathReplays: perfCounters.sbWPReplay.Load(),
		Trials:             perfCounters.trials.Load(),
		TrialSeconds:       float64(perfCounters.trialNS.Load()) / 1e9,
	}
}

// runner owns one pooled core and all per-trial scratch. It is not safe for
// concurrent use; parallel batches run one runner per worker.
type runner struct {
	p    Params
	v    victim.Victim
	ki   victim.KeyInits // nil: victim lacks the patch contract, always fall back
	mode compile.Mode
	cfg  pipeline.Config

	core *pipeline.Core
	// prog is the program value the core executes; the fast path points its
	// Code at codeBuf (the patched copy) while sharing the template's data
	// segments, which the core only reads at load time.
	prog    isa.Program
	codeBuf []byte
	vals    []int64
	curTmpl *compile.Template
	putVal  func(name string, val int64)

	rng    *rand.Rand
	mrk    uint64
	stamps []uint64

	c0buf, c1buf, mbuf []float64
}

func newRunner(p Params) (*runner, error) {
	v, err := p.victimImpl()
	if err != nil {
		return nil, err
	}
	r := &runner{
		p:    p,
		v:    v,
		mode: compile.Plain,
		cfg:  pipeline.DefaultConfig(),
		rng:  rand.New(rand.NewSource(1)),
	}
	if p.Secure {
		r.mode, r.cfg = compile.SeMPE, pipeline.SecureConfig()
	}
	r.ki, _ = v.(victim.KeyInits)
	r.stamps = make([]uint64, 0, 8)
	// putVal is allocated once so the per-trial KeyInits callback does not
	// allocate a closure in the hot loop.
	r.putVal = func(name string, val int64) {
		if i, ok := r.curTmpl.SlotIndex(name); ok {
			r.vals[i] = val
		}
	}
	return r, nil
}

// trialDraw reproduces newDraw(trialRNG(effSeed, t), p) without allocating:
// reseeding the runner's rand.Rand yields the exact stream a fresh
// rand.New(rand.NewSource(seed)) would.
func (r *runner) trialDraw(t int) draw {
	r.rng.Seed(r.p.effSeed() ^ (int64(t)+1)*0x5E3779B97F4A7C15)
	return newDraw(r.rng, r.p)
}

// calibPair is runner's version of the package-level calibPair: trial t's
// two calibration runs. The returned slices alias runner-owned buffers and
// are valid until the next runner call.
func (r *runner) calibPair(t int) (d draw, c0, c1 []float64, err error) {
	d = r.trialDraw(t)
	if c0, err = r.run(d, d.gapCal, r.p.KeyPrefix, &r.c0buf); err != nil {
		return d, nil, nil, err
	}
	if c1, err = r.run(d, d.gapCal, r.p.KeyPrefix|1<<uint(r.p.Bit), &r.c1buf); err != nil {
		return d, nil, nil, err
	}
	return d, c0, c1, nil
}

// measure runs the live measurement for trial draw d against the true key.
func (r *runner) measure(d draw, key uint64) ([]float64, error) {
	return r.run(d, d.gapMeas, key, &r.mbuf)
}

// run executes one attacker program and fills *buf with the observation
// vector (reusing its backing array). The program comes from the template
// fast path when possible, from a full rebuild+recompile otherwise.
func (r *runner) run(d draw, gapSeed int64, key uint64, buf *[]float64) ([]float64, error) {
	out, wantStamps, err := r.prepare(d, gapSeed, key)
	if err != nil {
		return nil, err
	}
	mrk, ok := out.ArrayAddrs[markerArray]
	if !ok {
		return nil, fmt.Errorf("program has no %q marker array", markerArray)
	}
	r.mrk = mrk
	if r.core == nil {
		r.core = pipeline.New(r.cfg, &r.prog)
		r.core.MemWatch = func(addr uint64, write bool, cycle uint64) {
			if write && addr == r.mrk && len(r.stamps) < cap(r.stamps) {
				r.stamps = append(r.stamps, cycle)
			}
		}
		perfCounters.coreBuilds.Add(1)
	} else {
		r.core.Reset(&r.prog)
		perfCounters.coreResets.Add(1)
	}
	r.stamps = r.stamps[:0]
	if err := r.core.Run(); err != nil {
		return nil, err
	}
	sb := r.core.SBStats
	perfCounters.sbBuilds.Add(sb.Builds)
	perfCounters.sbReplays.Add(sb.Replays)
	perfCounters.sbLegacy.Add(sb.LegacyOps)
	perfCounters.sbWPBuilds.Add(sb.WrongPathBuilds)
	perfCounters.sbWPReplay.Add(sb.WrongPathReplays)
	if len(r.stamps) != wantStamps {
		return nil, fmt.Errorf("got %d marker stamps, want %d", len(r.stamps), wantStamps)
	}
	total := float64(r.core.Cycles())
	switch r.p.Kind {
	case BPProbe:
		*buf = append((*buf)[:0], float64(r.stamps[3]-r.stamps[2]), total)
	default: // PrimeProbe
		tA := float64(r.stamps[1] - r.stamps[0])
		tB := float64(r.stamps[2] - r.stamps[1])
		*buf = append((*buf)[:0], tA, tB, tA-tB, total)
	}
	return *buf, nil
}

// prepare points r.prog at the trial's program: a patched template copy on
// the fast path, a freshly compiled program otherwise.
func (r *runner) prepare(d draw, gapSeed int64, key uint64) (*compile.Output, int, error) {
	wantStamps := 4
	if r.p.Kind == PrimeProbe {
		wantStamps = 3
	}
	k := tmplKey{
		kind:     r.p.Kind,
		secure:   r.p.Secure,
		victim:   r.v.Name(),
		width:    r.p.width(),
		bit:      r.p.Bit,
		noisePre: d.noisePre,
		noiseWin: d.noiseWin,
		gap:      r.p.Gap,
	}
	if r.ki == nil {
		// No patch contract: full rebuild per trial, and no point caching.
		perfCounters.fallbacks.Add(1)
		out, err := r.compileFull(d, gapSeed, key)
		return out, wantStamps, err
	}
	tmpl := tmplMemo.Get(k)
	if tmpl == nil {
		prog, err := r.buildProgram(d, gapSeed, key)
		if err != nil {
			return nil, 0, err
		}
		tmpl, err = compile.NewTemplate(prog, r.mode)
		if err != nil {
			return nil, 0, err
		}
		if !r.templateUsable(tmpl) {
			perfCounters.fallbacks.Add(1)
			r.prog = *tmpl.Out.Prog
			return tmpl.Out, wantStamps, nil
		}
		tmplMemo.Put(k, tmpl)
		// The template was compiled with exactly this trial's values, so it
		// runs unpatched.
		r.prog = *tmpl.Out.Prog
		return tmpl.Out, wantStamps, nil
	}
	// Fast path: gather this trial's scalar values and patch them in.
	r.curTmpl = tmpl
	r.vals = append(r.vals[:0], tmpl.BaseInits()...)
	r.ki.KeyInits(key, r.p.width(), r.p.Bit, r.putVal)
	r.putVal("nv", d.seed0)
	if r.p.Kind == PrimeProbe {
		idxVals := cacheIdxVals(d.la, d.lb)
		for i, name := range cacheIdxNames {
			r.putVal(name, idxVals[i])
		}
	}
	if r.p.Gap > 0 {
		r.putVal("gv", gapSeed)
	}
	code, ok := tmpl.Specialize(r.vals, r.codeBuf)
	if !ok {
		perfCounters.fallbacks.Add(1)
		out, err := r.compileFull(d, gapSeed, key)
		return out, wantStamps, err
	}
	r.codeBuf = code
	r.prog = *tmpl.Out.Prog
	r.prog.Code = code
	return tmpl.Out, wantStamps, nil
}

// templateUsable verifies the one-time conditions the patch fast path needs
// beyond raw prologue patchability: every value KeyInits reports, the
// noise-chain seed, and (when active) the gap seed must each have a patch
// slot. A template failing this is used once and never cached, so the batch
// degrades to full per-trial compilation instead of silently mispatching.
func (r *runner) templateUsable(t *compile.Template) bool {
	if !t.Patchable() {
		return false
	}
	ok := true
	need := func(name string) {
		if _, found := t.SlotIndex(name); !found {
			ok = false
		}
	}
	r.ki.KeyInits(0, r.p.width(), r.p.Bit, func(name string, _ int64) { need(name) })
	need("nv")
	if r.p.Kind == PrimeProbe {
		for _, name := range cacheIdxNames {
			need(name)
		}
	}
	if r.p.Gap > 0 {
		need("gv")
	}
	return ok
}

// buildProgram builds the trial's lang program, the shared source of the
// template and fallback paths (and of the legacy runTrial oracle).
func (r *runner) buildProgram(d draw, gapSeed int64, key uint64) (*lang.Program, error) {
	frag := r.v.Fragment(key, r.p.width(), r.p.Bit)
	switch r.p.Kind {
	case BPProbe:
		return bpProgram(frag, d, gapSeed, r.p.Gap), nil
	case PrimeProbe:
		return cacheProgram(frag, d, gapSeed, r.p.Gap), nil
	}
	return nil, fmt.Errorf("unknown attacker kind %d", int(r.p.Kind))
}

func (r *runner) compileFull(d draw, gapSeed int64, key uint64) (*compile.Output, error) {
	prog, err := r.buildProgram(d, gapSeed, key)
	if err != nil {
		return nil, err
	}
	out, err := compile.Compile(prog, r.mode)
	if err != nil {
		return nil, err
	}
	r.prog = *out.Prog
	return out, nil
}

// runTrials drives trial indices [0, n) through fn on a pool of workers,
// one runner each. fn must be safe to call concurrently for distinct t and
// must confine its effects to per-t slots; all cross-trial statistics run
// serially after the pool drains, which is what keeps results bit-identical
// to the serial path at any worker count. workers <= 1 runs inline.
func runTrials(p Params, n, workers int, fn func(r *runner, t int) error) error {
	if workers > n {
		workers = n
	}
	// Throughput accounting: trials completed plus the batch's wall time
	// feed the sempe_attack_trials_total / _trial_seconds_total metric
	// families (trials/s). One atomic add per worker plus one per batch —
	// nothing allocates and nothing is added to the per-trial fast path,
	// so the zero-alloc and determinism gates are untouched.
	batchStart := time.Now()
	defer func() {
		perfCounters.trialNS.Add(uint64(time.Since(batchStart)))
	}()
	if workers <= 1 {
		r, err := newRunner(p)
		if err != nil {
			return err
		}
		for t := 0; t < n; t++ {
			if err := fn(r, t); err != nil {
				perfCounters.trials.Add(uint64(t))
				return err
			}
		}
		perfCounters.trials.Add(uint64(n))
		return nil
	}
	runners := make([]*runner, workers)
	for i := range runners {
		r, err := newRunner(p)
		if err != nil {
			return err
		}
		runners[i] = r
	}
	var (
		next atomic.Int64
		wg   sync.WaitGroup
		errs = make([]error, workers)
	)
	for i, r := range runners {
		wg.Add(1)
		go func(i int, r *runner) {
			defer wg.Done()
			completed := 0
			defer func() { perfCounters.trials.Add(uint64(completed)) }()
			for {
				t := int(next.Add(1)) - 1
				if t >= n {
					return
				}
				if err := fn(r, t); err != nil {
					errs[i] = err
					return
				}
				completed++
			}
		}(i, r)
	}
	wg.Wait()
	// First error by worker index; which trials ran after a failure is
	// worker-timing dependent, but the error surfaced is not load-bearing
	// beyond aborting the batch.
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// cloneObs copies an observation vector out of a runner-owned buffer into a
// per-trial slot that survives the runner's next run.
func cloneObs(src []float64) []float64 {
	return append([]float64(nil), src...)
}
