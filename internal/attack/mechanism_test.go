package attack

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/compile"
	"repro/internal/leak"
	"repro/internal/pipeline"
	"repro/internal/victim"
)

// bitFrag is the direct one-bit victim's fragment — the mechanism tests
// probe the attacker scaffolds with the PR-4 victim.
func bitFrag(t *testing.T, secret uint64) victim.Fragment {
	t.Helper()
	v, err := victim.Lookup("bit")
	if err != nil {
		t.Fatal(err)
	}
	return v.Fragment(secret&1, 1, 0)
}

// TestBPProbeMechanism pins the microarchitectural story behind the bp
// attacker using the core's observability hooks directly: the probed
// branch (the one static conditional that commits exactly twice — victim
// then probe) mispredicts on its probe execution exactly when the secret
// is 1, and the TAGE bimodal counter it leaves behind reflects the
// victim's direction.
func TestBPProbeMechanism(t *testing.T) {
	p := DefaultParams(BPProbe, false)
	for trial := 0; trial < 4; trial++ {
		rng := trialRNG(p.Seed, trial)
		d := newDraw(rng, p)
		for _, secret := range []uint64{0, 1} {
			out, err := compile.Compile(bpProgram(bitFrag(t, secret), d, 0, 0), compile.Plain)
			if err != nil {
				t.Fatal(err)
			}
			type commit struct{ taken, misp bool }
			byPC := map[uint64][]commit{}
			_, core, err := leak.ObserveWith(pipeline.DefaultConfig(), out.Prog, func(c *pipeline.Core) {
				c.BranchWatch = func(pc uint64, taken, misp bool, cycle uint64) {
					byPC[pc] = append(byPC[pc], commit{taken, misp})
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			var target uint64
			for pc, cs := range byPC {
				if len(cs) == 2 {
					if target != 0 {
						t.Fatalf("trial %d s=%d: two branch PCs commit exactly twice (%#x, %#x)", trial, secret, target, pc)
					}
					target = pc
				}
			}
			if target == 0 {
				t.Fatalf("trial %d s=%d: no branch PC commits exactly twice", trial, secret)
			}
			victim, probe := byPC[target][0], byPC[target][1]
			// The branch is not-taken when the condition (the secret) is 1.
			if victim.taken != (secret == 0) {
				t.Errorf("trial %d s=%d: victim taken=%v", trial, secret, victim.taken)
			}
			if !probe.taken {
				t.Errorf("trial %d s=%d: probe execution should be taken (condition 0)", trial, secret)
			}
			if probe.misp != (secret == 1) {
				t.Errorf("trial %d s=%d: probe mispredicted=%v, want %v — the predictor channel",
					trial, secret, probe.misp, secret == 1)
			}
			// The bimodal counter keeps the victim's direction: s=0 trains
			// it taken (0 -> 1, and the correctly-predicted probe keeps it
			// saturated); s=1 trains it not-taken (0 -> -1) and the probe's
			// own update lands on the tagged entry its mispredict
			// allocated, so the base counter stays non-positive.
			got := core.BP.TAGE.BaseCounter(target)
			if secret == 0 && got <= 0 {
				t.Errorf("trial %d s=0: BaseCounter=%d, want > 0 (victim trained taken)", trial, got)
			}
			if secret == 1 && got > 0 {
				t.Errorf("trial %d s=1: BaseCounter=%d, want <= 0 (victim trained not-taken)", trial, got)
			}
		}
	}
}

// TestPrimeProbeMechanism replays the cache attacker's protocol against a
// bare hierarchy with the program's real addresses and checks the state
// oracle the timing measurement rests on: after prime both R0 lines probe
// at the DL1 hit latency; after the victim's secret-selected conflict
// load, exactly the targeted set's R0 line probes slow (evicted).
func TestPrimeProbeMechanism(t *testing.T) {
	p := DefaultParams(PrimeProbe, false)
	rng := trialRNG(p.Seed, 0)
	d := newDraw(rng, p)
	out, err := compile.Compile(cacheProgram(bitFrag(t, 1), d, 0, 0), compile.Plain)
	if err != nil {
		t.Fatal(err)
	}
	parr := out.ArrayAddrs["parr"]
	addr := func(region, line int) uint64 { return parr + 8*uint64(region*cacheRegionElems+8*line) }

	for _, secret := range []uint64{0, 1} {
		h := cache.NewHierarchy(cache.DefaultHierarchyConfig())
		// Derive the resident-probe latency from a real fill.
		h.DL1.Access(addr(0, d.la), false)
		hit := h.DL1.ProbeLatency(addr(0, d.la))

		// Prime: both ways of both probed sets, R0 before R1 (R0 is LRU).
		for _, a := range []uint64{addr(0, d.la), addr(1, d.la), addr(0, d.lb), addr(1, d.lb)} {
			h.DL1.Access(a, false)
		}
		if got := h.DL1.ProbeLatency(addr(0, d.la)); got != hit {
			t.Fatalf("primed R0[la] probes at %d, want hit latency %d", got, hit)
		}
		if got := h.DL1.ProbeLatency(addr(0, d.lb)); got != hit {
			t.Fatalf("primed R0[lb] probes at %d, want hit latency %d", got, hit)
		}

		// Victim: one conflict load selected by the secret.
		victimLine := d.lb
		if secret == 1 {
			victimLine = d.la
		}
		h.DL1.Access(addr(2, victimLine), false)

		evicted, resident := addr(0, victimLine), addr(0, d.la)
		if victimLine == d.la {
			resident = addr(0, d.lb)
		}
		if got := h.DL1.ProbeLatency(evicted); got <= hit {
			t.Errorf("s=%d: victim-targeted R0 line still probes at %d (hit %d); expected eviction", secret, got, hit)
		}
		if got := h.DL1.ProbeLatency(resident); got != hit {
			t.Errorf("s=%d: untargeted R0 line probes at %d, want hit latency %d", secret, got, hit)
		}
		if h.DL1.Contains(evicted) || !h.DL1.Contains(resident) {
			t.Errorf("s=%d: Contains disagrees with ProbeLatency", secret)
		}
		// ProbeLatency must not have perturbed state: probing the evicted
		// line repeatedly keeps reporting a miss.
		if h.DL1.Contains(evicted) {
			t.Errorf("s=%d: ProbeLatency filled the probed line", secret)
		}
	}
}
