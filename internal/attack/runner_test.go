package attack

import (
	"encoding/json"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/victim"
)

// TestRunnerMatchesLegacy: the runner's pooled-core, template-patched run
// must produce exactly the observation vector the legacy path (fresh build,
// fresh compile, fresh core, digest-bearing leak.ObserveWith run) produces,
// for every attacker kind, architecture, victim contract, and gap setting —
// the runner is a pure throughput optimization, never a semantic change.
func TestRunnerMatchesLegacy(t *testing.T) {
	for _, kind := range AllKinds() {
		for _, secure := range []bool{false, true} {
			for _, vic := range []string{"", "keyloop"} {
				for _, gap := range []int{0, 6} {
					name := fmt.Sprintf("%s/%s/%s/gap%d", kind, ArchName(secure), orBit(vic), gap)
					t.Run(name, func(t *testing.T) {
						p := DefaultParams(kind, secure)
						p.Gap = gap
						if vic != "" {
							p.Victim, p.Width, p.Bit, p.KeyPrefix = vic, 3, 1, 1
						}
						r, err := newRunner(p)
						if err != nil {
							t.Fatal(err)
						}
						var buf []float64
						for trial := 0; trial < 3; trial++ {
							d := newDraw(trialRNG(p.effSeed(), trial), p)
							if rd := r.trialDraw(trial); rd != d {
								t.Fatalf("trial %d: runner draw %+v != legacy draw %+v", trial, rd, d)
							}
							for _, key := range []uint64{p.KeyPrefix, p.KeyPrefix | 1<<uint(p.Bit)} {
								want, err := runTrial(p, d, d.gapCal, key)
								if err != nil {
									t.Fatal(err)
								}
								got, err := r.run(d, d.gapCal, key, &buf)
								if err != nil {
									t.Fatal(err)
								}
								if !reflect.DeepEqual(got, want) {
									t.Errorf("trial %d key %#x: runner %v != legacy %v", trial, key, got, want)
								}
							}
							if gap > 0 {
								want, err := runTrial(p, d, d.gapMeas, p.KeyPrefix|1<<uint(p.Bit))
								if err != nil {
									t.Fatal(err)
								}
								got, err := r.measure(d, p.KeyPrefix|1<<uint(p.Bit))
								if err != nil {
									t.Fatal(err)
								}
								if !reflect.DeepEqual(got, want) {
									t.Errorf("trial %d measurement: runner %v != legacy %v", trial, got, want)
								}
							}
						}
					})
				}
			}
		}
	}
}

func orBit(v string) string {
	if v == "" {
		return "bit"
	}
	return v
}

// TestTemplatePatchMatchesFreshCompile pins the victim.KeyInits contract:
// for every registered victim, a cached template patched for a different key
// must be byte-identical — code, data segments, entry, symbols — to a fresh
// compilation for that key. A victim whose program STRUCTURE depends on the
// key (not just its prologue immediates) would fail here, which is the test
// the KeyInits doc tells implementers about.
func TestTemplatePatchMatchesFreshCompile(t *testing.T) {
	h0, _, _ := tmplMemo.Counters()
	for _, v := range victim.All() {
		for _, kind := range AllKinds() {
			for _, secure := range []bool{false, true} {
				for _, gap := range []int{0, 6} {
					name := fmt.Sprintf("%s/%s/%s/gap%d", v.Name(), kind, ArchName(secure), gap)
					t.Run(name, func(t *testing.T) {
						p := DefaultParams(kind, secure)
						p.Victim, p.Width, p.Bit, p.KeyPrefix, p.Gap = v.Name(), 4, 2, 2, gap
						prod, err := newRunner(p) // production path: template + patch
						if err != nil {
							t.Fatal(err)
						}
						ref, err := newRunner(p) // reference: always full compile
						if err != nil {
							t.Fatal(err)
						}
						if prod.ki == nil {
							t.Fatalf("victim %s does not implement victim.KeyInits", v.Name())
						}
						for trial := 0; trial < 2; trial++ {
							d := prod.trialDraw(trial)
							for _, key := range []uint64{p.KeyPrefix, p.KeyPrefix | 4, 7, 0} {
								if _, _, err := prod.prepare(d, d.gapCal, key); err != nil {
									t.Fatal(err)
								}
								if _, err := ref.compileFull(d, d.gapCal, key); err != nil {
									t.Fatal(err)
								}
								if !reflect.DeepEqual(prod.prog, ref.prog) {
									t.Errorf("trial %d key %#x: patched program != fresh compilation", trial, key)
								}
							}
						}
					})
				}
			}
		}
	}
	if h1, _, _ := tmplMemo.Counters(); h1 == h0 {
		t.Error("template cache recorded no hits; the patch fast path never engaged")
	}

	// The probed-set draw is patch data, not shape: prime+probe trials that
	// differ only in (la, lb) must share one cached template. Drive prepare
	// with hand-built draws that pin every shape field and vary only the
	// probed pair, and require at most one miss (the initial build — zero
	// when an earlier subtest already cached this shape), a hit for every
	// other draw, and no evictions. Before the probed-set offsets moved
	// into patch slots, each pair was its own key and every draw missed.
	t.Run("probedset-memo", func(t *testing.T) {
		p := DefaultParams(PrimeProbe, false)
		p.Victim, p.Width, p.Bit, p.KeyPrefix = "keyloop", 4, 2, 2
		r, err := newRunner(p)
		if err != nil {
			t.Fatal(err)
		}
		h0, m0, e0 := tmplMemo.Counters()
		pairs := [][2]int{{16, 17}, {40, 200}, {77, 33}, {120, 121}, {18, 239}, {90, 16}}
		for i, pair := range pairs {
			d := draw{seed0: int64(1000 + i), noisePre: 5, la: pair[0], lb: pair[1]}
			if _, _, err := r.prepare(d, 0, p.KeyPrefix); err != nil {
				t.Fatal(err)
			}
		}
		h1, m1, e1 := tmplMemo.Counters()
		hits, misses := h1-h0, m1-m0
		if misses > 1 {
			t.Errorf("%d probed-set pairs caused %d template misses, want at most 1", len(pairs), misses)
		}
		if hits+misses != uint64(len(pairs)) || hits < uint64(len(pairs)-1) {
			t.Errorf("template hits %d + misses %d across %d draws; want every draw after the build to hit", hits, misses, len(pairs))
		}
		if e1 != e0 {
			t.Errorf("template evictions changed (%d -> %d)", e0, e1)
		}
	})
}

// TestParallelMatchesSerial: batch and key-extraction output must be
// byte-identical (as JSON, the storage encoding) at any worker count.
func TestParallelMatchesSerial(t *testing.T) {
	for _, kind := range AllKinds() {
		t.Run(fmt.Sprintf("run/%s", kind), func(t *testing.T) {
			p := DefaultParams(kind, false)
			p.Trials = 10
			want := mustJSON(t, mustRunBatch(t, p))
			for _, w := range []int{2, 4} {
				p.Workers = w
				if got := mustJSON(t, mustRunBatch(t, p)); got != want {
					t.Errorf("workers=%d batch differs from serial", w)
				}
			}
		})
	}
	// Key extraction with gap activity exercises the measurement path and the
	// prefix walk on top of the calibration pairs.
	kp := DefaultKeyParams(BPProbe, false)
	kp.Width, kp.Trials, kp.Gap = 3, 6, 4
	t.Run("extract/bp", func(t *testing.T) {
		want := mustJSON(t, mustExtract(t, kp))
		for _, w := range []int{2, 4} {
			kp.Workers = w
			if got := mustJSON(t, mustExtract(t, kp)); got != want {
				t.Errorf("workers=%d key recovery differs from serial", w)
			}
		}
	})
}

func mustRunBatch(t *testing.T, p Params) *Batch {
	t.Helper()
	b, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func mustExtract(t *testing.T, p KeyParams) KeyRecovery {
	t.Helper()
	kr, err := ExtractKey(p)
	if err != nil {
		t.Fatal(err)
	}
	return kr
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestTrialLoopZeroAlloc gates the steady-state trial loop at zero
// allocations per calibration pair: once the template is cached and the
// pooled core, patch buffer, and observation buffers are warm, a trial costs
// simulation only — no garbage. This is the allocs/op gate BENCH_sim.json's
// attack-trial entries track.
func TestTrialLoopZeroAlloc(t *testing.T) {
	for _, kind := range AllKinds() {
		for _, secure := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/%s", kind, ArchName(secure)), func(t *testing.T) {
				p := DefaultParams(kind, secure)
				r, err := newRunner(p)
				if err != nil {
					t.Fatal(err)
				}
				const trial = 3
				// Two warm-up pairs: the first compiles and caches the
				// template and builds the core; the second settles every
				// growable buffer at its steady-state capacity.
				for i := 0; i < 2; i++ {
					if _, _, _, err := r.calibPair(trial); err != nil {
						t.Fatal(err)
					}
				}
				var runErr error
				allocs := testing.AllocsPerRun(10, func() {
					if _, _, _, err := r.calibPair(trial); err != nil {
						runErr = err
					}
				})
				if runErr != nil {
					t.Fatal(runErr)
				}
				if allocs != 0 {
					t.Errorf("steady-state calibration pair allocates: %.1f allocs/op, want 0", allocs)
				}
			})
		}
	}
}
