package attack

import (
	"repro/internal/lang"
	"repro/internal/victim"
)

// bpPathLen is the number of dependent ALU operations in each branch path.
// The two paths are instruction-for-instruction symmetric (same opcodes,
// different immediates), so the probe's own execution cost is identical
// whichever path it takes — the only secret-dependent effect left on the
// baseline is the predictor's verdict on the probe branch.
const bpPathLen = 4

// bpGapIters is the trip count of the serializing spin loop between the
// victim iteration and the probe iteration. It solves two races at once:
//
//   - visibility: the predictor trains at commit, but fetch runs ahead —
//     without separation the probe branch is predicted before the victim
//     commits. The spin loop's final iteration mispredicts (its bimodal
//     counter saturates "taken" after two iterations, so the exit is
//     always the surprise), and the resulting flush refetches everything
//     after the loop at exit-resolve time, long after the victim's commit.
//   - clean measurement: the loop body is a short dependent chain, so
//     commit keeps pace with execution and the ROB is nearly empty when
//     the probe window starts — the probe's own flush penalty lands in the
//     measured segment instead of hiding under a commit backlog.
const bpGapIters = 48

// bpGapLines sizes the gap activity's scratch array (in 64-bit words).
const bpGapLines = 8

// bpProgram builds the branch-predictor probe trial around a victim
// fragment: a two-iteration loop around one static conditional branch.
//
//	iteration 0 (victim): the branch condition is the victim's attacked-bit
//	    condition (frag.Cond) — on the unprotected baseline this is the
//	    in-place Spectre-PHT training step, writing the secret into the
//	    TAGE bimodal counter (and, on a mispredict, an allocated tagged
//	    entry) at the branch's PC;
//	iteration 1 (probe): the same static branch runs with the known input
//	    0. Every predictor path now agrees with whatever direction the
//	    victim committed, so the probe mispredicts — and eats the flush —
//	    exactly when the victim's direction differed from the probe's.
//
// The victim's setup statements run once, before the loop: a realistic
// victim computes on the earlier key bits (its own secret branches, at
// their own PCs) before reaching the attacked one. Marker stores bracket
// the branch in both iterations; the iteration-1 segment is the attacker's
// measurement. The condition is selected branch-free (lang.Sel), so the
// probed branch is the only secret-dependent control flow in the measured
// window. Under SeMPE the same source compiles to an sJMP region that
// never consults the predictor, which closes the channel.
//
// With gap > 0, gap units of dummy branch/memory activity run right after
// the victim's window — between training and probe — modeling a weaker
// attacker; see gapLoop.
func bpProgram(frag victim.Fragment, d draw, gapSeed int64, gap int) *lang.Program {
	pathBody := func(mul, add int64) []lang.Stmt {
		out := make([]lang.Stmt, 0, bpPathLen)
		for j := 0; j < bpPathLen; j++ {
			out = append(out, lang.Set("acc",
				lang.B(lang.Add, lang.B(lang.Mul, lang.V("acc"), lang.N(mul)), lang.N(add))))
		}
		return out
	}

	var iter []lang.Stmt
	// c = (i == 0) ? victim's attacked-bit condition : 0, computed
	// branch-free.
	iter = append(iter, lang.Set("c", lang.Sel(lang.B(lang.Eq, lang.V("i"), lang.N(0)),
		frag.Cond, lang.N(0))))
	// Environmental noise outside the measured window: shifts alignment,
	// fetch phase, and global history between trials.
	iter = append(iter, noiseOps(d.noisePre)...)
	// The serializing spin loop (see bpGapIters). It is the LAST thing
	// before the measured window: its exit flush re-fetches the window
	// with an empty pipe, so nothing older is left committing under the
	// window and the probe's own flush penalty stays visible. Anything
	// slow between the spin loop and the start marker (the noise chain,
	// say) would re-create a commit backlog that swallows the signal.
	iter = append(iter, lang.Set("gi", lang.N(bpGapIters)))
	iter = append(iter, lang.Loop(lang.B(lang.Gt, lang.V("gi"), lang.N(0)), []lang.Stmt{
		lang.Set("nv", lang.B(lang.Add, lang.V("nv"), lang.B(lang.Shr, lang.V("nv"), lang.N(3)))),
		// The "- (nv & 0)" couples the trip counter to the noise chain, so
		// the loop's branches — and in particular its exit mispredict —
		// resolve at the slow chain's pace, safely after the older victim
		// branch has committed its predictor update.
		lang.Set("gi", lang.B(lang.Sub, lang.B(lang.Sub, lang.V("gi"), lang.N(1)),
			lang.B(lang.And, lang.V("nv"), lang.N(0)))),
	}))
	iter = append(iter, lang.Put(markerArray, lang.N(0), lang.V("i"))) // window start
	iter = append(iter, noiseOps(d.noiseWin)...)                       // in-window jitter
	iter = append(iter, lang.SecretIf(lang.V("c"), pathBody(3, 1), pathBody(5, 7)))
	iter = append(iter, lang.Put(markerArray, lang.N(0),
		lang.B(lang.Add, lang.V("i"), lang.N(4)))) // window end
	// Attacker-strength gap activity: after the victim's committed
	// training, before the next iteration's spin loop and probe. The trip
	// count is gated branch-free on the iteration counter so the activity
	// runs only between train and probe — a second pass after the probe
	// could affect nothing and would only cost simulation time.
	iter = append(iter, gapLoop(gap,
		lang.Sel(lang.B(lang.Eq, lang.V("i"), lang.N(0)), lang.N(int64(gap)), lang.N(0)),
		"gna", func(x lang.Expr) lang.Expr {
			return lang.B(lang.And, x, lang.N(bpGapLines-1))
		})...)
	iter = append(iter, lang.Set("i", lang.B(lang.Add, lang.V("i"), lang.N(1))))

	vars := append([]*lang.VarDecl{}, frag.Vars...)
	vars = append(vars,
		&lang.VarDecl{Name: "i"},
		&lang.VarDecl{Name: "c"},
		&lang.VarDecl{Name: "gi"},
		&lang.VarDecl{Name: "acc", Init: 7},
		&lang.VarDecl{Name: "nv", Init: d.seed0},
	)
	arrays := []*lang.ArrayDecl{{Name: markerArray, Len: 8}}
	if gap > 0 {
		vars = append(vars, gapVars(gapSeed)...)
		arrays = append(arrays, &lang.ArrayDecl{Name: "gna", Len: bpGapLines})
	}
	arrays = append(arrays, frag.Arrays...)

	body := append([]lang.Stmt{}, frag.Setup...)
	body = append(body, lang.Loop(lang.B(lang.Lt, lang.V("i"), lang.N(2)), iter))

	return &lang.Program{
		Name:   "attack_bp",
		Vars:   vars,
		Arrays: arrays,
		Body:   body,
	}
}
