package attack

import (
	"repro/internal/lang"
	"repro/internal/victim"
)

// The prime+probe array is three DL1-sized regions of 256 lines each.
// Element R_k[i] = parr[k*cacheRegionElems + 8*i] lives exactly 256 cache
// lines after R_{k-1}[i], so all three map to the same DL1 set (the DL1 is
// 32 KiB, 2-way, 64-byte lines: 256 sets): R0/R1 are the attacker's two
// priming ways and R2 is the victim's conflicting line.
const (
	cacheRegionLines = 256
	cacheRegionElems = cacheRegionLines * 8 // 8 words per 64-byte line
)

// cacheIdxNames are the named template patch slots carrying the probed-set
// element offsets: plaR/plbR is the draw's set-A/set-B element offset in
// region R. Keeping the offsets in patch slots (rewritten per trial by the
// runner) instead of plain literals makes the program shape draw-independent,
// so every prime+probe trial of a batch shares one compiled template — while
// the emitted code stays byte-for-byte what the plain-literal program
// produced, since a slotted literal lowers to the same load-immediate.
var cacheIdxNames = [...]string{"pla0", "pla1", "pla2", "plb0", "plb1", "plb2"}

// cacheIdxVals returns the values for cacheIdxNames given a draw's probed
// lines, in matching order.
func cacheIdxVals(la, lb int) [6]int64 {
	la8, lb8 := int64(8*la), int64(8*lb)
	return [6]int64{
		la8, cacheRegionElems + la8, 2*cacheRegionElems + la8,
		lb8, cacheRegionElems + lb8, 2*cacheRegionElems + lb8,
	}
}

// cacheProgram builds the prime+probe trial around a victim fragment's
// secret-selected load.
//
//	setup:  the victim's own computation on the earlier key bits, before
//	        the attacker's protocol starts.
//	prime:  load R0[la], R1[la], R0[lb], R1[lb] — both ways of the two
//	        probed sets are attacker lines, R0 older (LRU victim).
//	victim: if (cond) load R2[la] else load R2[lb], where cond is the
//	        victim's attacked-bit condition — on the baseline exactly one
//	        path executes, evicting R0 from exactly one set.
//	probe:  reload R0[la] and R0[lb], each bracketed by a marker store;
//	        the evicted one misses (>= L2 latency), the other hits.
//
// Each probe load's address carries a dummy data dependency on the
// previous load's value ("& 0"), which serializes the probe chain behind
// the victim so the miss latency lands inside the measured windows instead
// of hiding under earlier out-of-order work. Under SeMPE both victim paths
// execute regardless of the secret, so both probed sets are evicted and
// the per-set probe difference carries no information.
//
// With gap > 0, gap units of dummy branch/memory activity run between the
// victim's load and the probe — their loads fall in the probed-set pool,
// so an unlucky (and uncalibratable) gap load can evict a primed line and
// corrupt the probe; see gapLoop.
//
// The probed element offsets (8*la and 8*lb plus their region bases) are
// named patch slots (lang.NS, cacheIdxNames), so the program's SHAPE is
// independent of the probed-set draw: every prime+probe trial of a batch
// patches the same compile.Template instead of recompiling per (la, lb)
// pair. The slot names only mark the load-immediates for patching — the
// compiled trial is byte-identical to the plain-literal program.
func cacheProgram(frag victim.Fragment, d draw, gapSeed int64, gap int) *lang.Program {
	idx := cacheIdxVals(d.la, d.lb)
	slot := func(i int) lang.Expr { return lang.NS(cacheIdxNames[i], idx[i]) }
	// dep adds a dummy dependency on the accumulator so the out-of-order
	// backend cannot reorder the prime/victim/probe protocol: each access
	// address waits for the previous access's value.
	dep := func(idx lang.Expr, on string) lang.Expr {
		return lang.B(lang.Add, idx, lang.B(lang.And, lang.V(on), lang.N(0)))
	}
	prime := func(idx lang.Expr) lang.Stmt {
		return lang.Set("acc", lang.B(lang.Add, lang.V("acc"), lang.At("parr", dep(idx, "acc"))))
	}

	body := append([]lang.Stmt{}, frag.Setup...)
	body = append(body,
		prime(slot(0)), // R0[la]
		prime(slot(1)), // R1[la]
		prime(slot(3)), // R0[lb]
		prime(slot(4)), // R1[lb]
	)
	body = append(body, noiseOps(d.noisePre)...)
	body = append(body, lang.Set("vv", lang.N(0)))
	body = append(body, lang.SecretIf(frag.Cond,
		[]lang.Stmt{lang.Set("vv", lang.At("parr", dep(slot(2), "acc")))}, // R2[la]
		[]lang.Stmt{lang.Set("vv", lang.At("parr", dep(slot(5), "acc")))}, // R2[lb]
	))
	// Attacker-strength gap activity between the victim's access and the
	// probe: its loads land in the probed-set pool of region 2.
	body = append(body, gapLoop(gap, lang.N(int64(gap)), "parr", func(x lang.Expr) lang.Expr {
		return lang.B(lang.Add, lang.N(2*cacheRegionElems+8*cacheProbeMin),
			lang.B(lang.Mul, lang.N(8), lang.B(lang.Rem, x, lang.N(cacheProbePool))))
	})...)
	body = append(body, lang.Put(markerArray, lang.N(0), lang.N(1))) // probe start
	body = append(body, noiseOps(d.noiseWin)...)
	body = append(body, lang.Set("p1", lang.At("parr", dep(slot(0), "vv"))))
	body = append(body, lang.Put(markerArray, lang.N(0), lang.N(2))) // after set-A reload
	body = append(body, noiseOps(d.noiseWin)...)
	body = append(body, lang.Set("p2", lang.At("parr", dep(slot(3), "p1"))))
	body = append(body, lang.Put(markerArray, lang.N(0), lang.N(3))) // after set-B reload
	body = append(body, lang.Set("acc", lang.B(lang.Add, lang.V("acc"), lang.V("p2"))))

	vars := append([]*lang.VarDecl{}, frag.Vars...)
	vars = append(vars,
		&lang.VarDecl{Name: "acc", Init: 1},
		&lang.VarDecl{Name: "nv", Init: d.seed0},
		&lang.VarDecl{Name: "vv"},
		&lang.VarDecl{Name: "p1"},
		&lang.VarDecl{Name: "p2"},
	)
	if gap > 0 {
		vars = append(vars, gapVars(gapSeed)...)
	}

	// The marker array is declared first so it owns the data segment's
	// first line; parr starts one line later, and the probed line pool
	// [cacheProbeMin, cacheProbeMin+cacheProbePool) keeps every probed
	// set clear of the marker's set and of the result block (whose
	// lines alias parr's first lines: the array spans exactly 3*256
	// lines, a multiple of the DL1 set count). Victim arrays, if any,
	// come after parr, so they cannot disturb this layout.
	arrays := []*lang.ArrayDecl{
		{Name: markerArray, Len: 8},
		{Name: "parr", Len: 3 * cacheRegionElems},
	}
	arrays = append(arrays, frag.Arrays...)

	return &lang.Program{
		Name:   "attack_cache",
		Vars:   vars,
		Arrays: arrays,
		Body:   body,
	}
}
