// Package attack is the attack lab: concrete microarchitectural attackers
// that run *attacker programs* on the simulated core against a victim
// parameterized by a one-bit secret, and measure what a realistic adversary
// measures — per-trial timing vectors, not digest equality.
//
// Two attackers are implemented:
//
//   - BPProbe, a Spectre-PHT-style branch-predictor probe: the victim's
//     secret branch trains the TAGE bimodal state in place, and the
//     attacker then re-executes the same static branch with a known input,
//     timing the mispredict-dependent probe segment (Kocher et al.;
//     Chowdhuryy & Yao, "Leaking Secrets through Modern Branch
//     Predictors").
//   - PrimeProbe, a prime+probe DL1 conflict attack: the attacker fills
//     both ways of two chosen cache sets, the victim performs one
//     secret-selected load that evicts the attacker's line from one of
//     them, and the attacker times a per-set reload.
//
// Timing is measured the way the paper's threat model allows: marker
// stores in the attacker program are timestamped at commit through the
// core's MemWatch hook, so a trial yields the cycle length of each probe
// segment. Every trial builds, compiles, and runs fresh programs with
// per-trial public randomness (noise work, probed-set selection) drawn
// from a seeded deterministic stream, so batches are exactly reproducible
// and pairable across architectures.
//
// internal/stattest turns trial batches into the statistical verdicts
// (TVLA fixed-vs-random, mutual information, recovery rate); assess.go
// bundles them into one Assessment.
package attack

import (
	"fmt"
	"math/rand"

	"repro/internal/compile"
	"repro/internal/lang"
	"repro/internal/leak"
	"repro/internal/pipeline"
)

// Kind identifies an attacker implementation.
type Kind int

// The implemented attackers.
const (
	BPProbe    Kind = iota // branch-predictor probe (Spectre-PHT style)
	PrimeProbe             // DL1 prime+probe conflict attack
)

// AllKinds returns every attacker, in report order.
func AllKinds() []Kind { return []Kind{BPProbe, PrimeProbe} }

func (k Kind) String() string {
	switch k {
	case BPProbe:
		return "bp"
	case PrimeProbe:
		return "cache"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// ParseKind is the inverse of Kind.String.
func ParseKind(s string) (Kind, error) {
	for _, k := range AllKinds() {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("attack: unknown attacker %q (have bp|cache)", s)
}

// ArchName names the attacked architecture for reports: the unprotected
// baseline or the SeMPE-protected core.
func ArchName(secure bool) string {
	if secure {
		return "sempe"
	}
	return "baseline"
}

// ParseArch is the inverse of ArchName.
func ParseArch(s string) (secure bool, err error) {
	switch s {
	case "baseline":
		return false, nil
	case "sempe":
		return true, nil
	}
	return false, fmt.Errorf("attack: unknown arch %q (have baseline|sempe)", s)
}

// Params parameterizes one trial batch.
type Params struct {
	Kind   Kind  `json:"kind"`
	Secure bool  `json:"secure"` // false = unprotected baseline, true = SeMPE
	Trials int   `json:"trials"`
	Seed   int64 `json:"seed"`
	// Noise bounds the per-trial in-window public noise work (operations
	// inside the measured probe segment), drawn uniformly from [0, Noise].
	// It models environmental jitter a real measurement would see; the
	// default keeps it below half the microarchitectural signal so the
	// calibrated classifier stays reliable on the baseline.
	Noise int `json:"noise"`
	// FixedSecret pins every trial's secret bit (0 or 1) — the TVLA
	// "fixed" batch. Negative means a fresh random bit per trial (the
	// "random" batch and the recovery experiment).
	FixedSecret int64 `json:"fixed_secret"`
}

// DefaultParams returns the batch configuration the spectre/tvla scenarios
// and cmd/sempe-attack start from.
func DefaultParams(kind Kind, secure bool) Params {
	return Params{Kind: kind, Secure: secure, Trials: 100, Seed: 1, Noise: 2, FixedSecret: -1}
}

// validate rejects out-of-range parameters loudly — silently substituting
// a default would let a store entry's key disagree with what was actually
// computed.
func (p Params) validate() error {
	switch p.Kind {
	case BPProbe, PrimeProbe:
	default:
		return fmt.Errorf("attack: unknown attacker kind %d", int(p.Kind))
	}
	if p.Trials <= 0 {
		return fmt.Errorf("attack: trials must be >= 1, have %d", p.Trials)
	}
	if p.Noise < 0 {
		return fmt.Errorf("attack: noise must be >= 0, have %d", p.Noise)
	}
	return nil
}

// Trial is one attack trial: the victim's secret bit, the attacker's
// observation vector, and the attacker's guess after calibration.
type Trial struct {
	Secret uint64    `json:"secret"`
	Obs    []float64 `json:"obs"`
	Guess  uint64    `json:"guess"`
}

// Batch is a completed set of trials under one Params.
type Batch struct {
	Params  Params   `json:"params"`
	Columns []string `json:"columns"`
	Trials  []Trial  `json:"trials"`
}

// Column extracts one observation column across trials.
func (b *Batch) Column(i int) []float64 {
	out := make([]float64, len(b.Trials))
	for j, t := range b.Trials {
		out[j] = t.Obs[i]
	}
	return out
}

// Secrets extracts the per-trial secret bits.
func (b *Batch) Secrets() []uint64 {
	out := make([]uint64, len(b.Trials))
	for j, t := range b.Trials {
		out[j] = t.Secret
	}
	return out
}

// Recovered counts trials whose guess matched the secret.
func (b *Batch) Recovered() int {
	n := 0
	for _, t := range b.Trials {
		if t.Guess == t.Secret {
			n++
		}
	}
	return n
}

// RecoveryRate is the fraction of trials whose guess matched the secret.
func (b *Batch) RecoveryRate() float64 {
	if len(b.Trials) == 0 {
		return 0
	}
	return float64(b.Recovered()) / float64(len(b.Trials))
}

// draw is the public per-trial randomness baked into a trial's programs:
// the attacker-chosen state (probed sets) and the trial's environment
// (noise-work amounts, noise seed). The measurement and its calibration
// runs share one draw — the attacker replays its exact environment with
// known inputs — so layout and fetch effects cancel in the classifier.
type draw struct {
	seed0    int64 // noise-chain seed
	noisePre int   // public noise ops outside the measured windows
	noiseWin int   // public noise ops inside the measured windows
	la, lb   int   // prime+probe: the two probed DL1 line indices
}

// noisePreMax bounds the out-of-window public noise work per trial. It
// varies alignment, predictor history, and fetch phase between trials
// without touching the measured segments.
const noisePreMax = 24

// cacheProbeLines is the pool of DL1 line offsets the prime+probe attacker
// draws its two probed sets from: [cacheProbeMin, cacheProbeMin+cacheProbePool).
// The pool stays clear of the marker array's set and of the sets aliased
// by the result block (see cacheProgram).
const (
	cacheProbeMin  = 16
	cacheProbePool = 224
)

func newDraw(rng *rand.Rand, p Params) draw {
	d := draw{
		seed0:    int64(rng.Intn(1 << 20)),
		noisePre: rng.Intn(noisePreMax + 1),
		noiseWin: rng.Intn(p.Noise + 1),
	}
	d.la = cacheProbeMin + rng.Intn(cacheProbePool)
	d.lb = cacheProbeMin + rng.Intn(cacheProbePool)
	for d.lb == d.la {
		d.lb = cacheProbeMin + rng.Intn(cacheProbePool)
	}
	return d
}

// trialRNG derives the deterministic per-trial stream. It depends only on
// (seed, trial index), so the fixed and random TVLA batches draw identical
// noise and attacker state and differ only in the secret.
func trialRNG(seed int64, trial int) *rand.Rand {
	return rand.New(rand.NewSource(seed ^ (int64(trial)+1)*0x5E3779B97F4A7C15))
}

// secretRNG is the separate stream secrets come from, so adding or
// removing a noise draw never changes which secrets a seed produces.
func secretRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed*0x51F2B7 + 11))
}

// Run executes the batch: per trial it builds and runs the measurement
// program plus two calibration programs (attacker dry runs with known
// branch input 0 and 1 under fresh environmental noise), classifies the
// measurement against the calibration pair, and records the observation
// vector and guess.
func Run(p Params) (*Batch, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	b := &Batch{Params: p, Columns: columns(p.Kind)}
	secRng := secretRNG(p.Seed)
	for t := 0; t < p.Trials; t++ {
		secret := uint64(secRng.Intn(2))
		if p.FixedSecret >= 0 {
			secret = uint64(p.FixedSecret) & 1
		}
		c0, c1, err := calibPair(p, t)
		if err != nil {
			return nil, err
		}
		b.Trials = append(b.Trials, makeTrial(p.Kind, secret, c0, c1))
	}
	return b, nil
}

// calibPair runs trial t's two calibration programs — replays of the
// trial's exact environment (same draw, so the same program layout and
// noise) with each known input. Code placement and fetch effects cancel
// exactly between them, leaving only the microarchitectural signal — or,
// under SeMPE, nothing, in which case the classifier degenerates to a
// secret-independent tie.
func calibPair(p Params, t int) (c0, c1 []float64, err error) {
	d := newDraw(trialRNG(p.Seed, t), p)
	if c0, err = runTrial(p, d, 0); err != nil {
		return nil, nil, fmt.Errorf("attack %s/%s trial %d calib0: %w", p.Kind, ArchName(p.Secure), t, err)
	}
	if c1, err = runTrial(p, d, 1); err != nil {
		return nil, nil, fmt.Errorf("attack %s/%s trial %d calib1: %w", p.Kind, ArchName(p.Secure), t, err)
	}
	return c0, c1, nil
}

// makeTrial assembles one trial from its calibration pair. The
// measurement run is the same deterministic program as the matching
// calibration (same draw, same secret), so its observation is that
// calibration's — selected, not re-simulated.
// TestBaselineObservationsDiffer and TestSeMPEObservationsSecretIndependent
// pin the equality this relies on at the runTrial level.
//
// The appended derived columns are the attacker's post-processing: the
// recovery statistic centered on the calibration midpoint (cancels the
// trial's layout- and fetch-dependent baseline, leaving the signed
// microarchitectural signal), and its sign (the decoded verdict). These
// are what make the TVLA t saturate on a leaking target: the raw columns'
// inter-trial variance is calibration noise, not signal.
func makeTrial(k Kind, secret uint64, c0, c1 []float64) Trial {
	recCol := recoveryColumn(k)
	src := c0
	if secret == 1 {
		src = c1
	}
	obs := append([]float64(nil), src...)
	mid := (c0[recCol] + c1[recCol]) / 2
	centered := obs[recCol] - mid
	sign := 0.0
	switch {
	case centered > 0:
		sign = 1
	case centered < 0:
		sign = -1
	}
	obs = append(obs, centered, sign)
	return Trial{
		Secret: secret,
		Obs:    obs,
		Guess:  classify(obs[recCol], c0[recCol], c1[recCol]),
	}
}

// classify is the attacker's nearest-calibration classifier on the
// recovery statistic. Ties (including the fully degenerate SeMPE case
// where measurement and both calibrations coincide) resolve to 0, which
// keeps the guess independent of the secret when there is no signal.
func classify(x, c0, c1 float64) uint64 {
	d0, d1 := x-c0, x-c1
	if d0 < 0 {
		d0 = -d0
	}
	if d1 < 0 {
		d1 = -d1
	}
	if d1 < d0 {
		return 1
	}
	return 0
}

// columns names the observation vector per attacker. The last two are the
// derived post-processing columns appended by Run.
func columns(k Kind) []string {
	switch k {
	case BPProbe:
		return []string{"probe-cycles", "total-cycles", "probe-centered", "probe-sign"}
	case PrimeProbe:
		return []string{"probe-a-cycles", "probe-b-cycles", "probe-diff", "total-cycles", "diff-centered", "diff-sign"}
	}
	panic("attack: unknown kind")
}

// recoveryColumn indexes the observation column the classifier uses: the
// probe-segment time for the predictor attack, the per-set probe
// difference for prime+probe.
func recoveryColumn(k Kind) int {
	switch k {
	case BPProbe:
		return 0
	case PrimeProbe:
		return 2
	}
	panic("attack: unknown kind")
}

// signColumn indexes the decoded-sign column (always last) — the
// mutual-information estimate runs over it.
func signColumn(k Kind) int { return len(columns(k)) - 1 }

// runTrial builds, compiles, and runs one attacker program and extracts
// the observation vector from its marker timestamps.
func runTrial(p Params, d draw, secret uint64) ([]float64, error) {
	var prog *lang.Program
	wantStamps := 0
	switch p.Kind {
	case BPProbe:
		prog = bpProgram(d, secret)
		wantStamps = 4
	case PrimeProbe:
		prog = cacheProgram(d, secret)
		wantStamps = 3
	default:
		return nil, fmt.Errorf("unknown attacker kind %d", int(p.Kind))
	}
	mode, cfg := compile.Plain, pipeline.DefaultConfig()
	if p.Secure {
		mode, cfg = compile.SeMPE, pipeline.SecureConfig()
	}
	out, err := compile.Compile(prog, mode)
	if err != nil {
		return nil, err
	}
	mrk, ok := out.ArrayAddrs[markerArray]
	if !ok {
		return nil, fmt.Errorf("program has no %q marker array", markerArray)
	}
	var stamps []uint64
	obs, _, err := leak.ObserveWith(cfg, out.Prog, func(c *pipeline.Core) {
		c.MemWatch = func(addr uint64, write bool, cycle uint64) {
			if write && addr == mrk {
				stamps = append(stamps, cycle)
			}
		}
	})
	if err != nil {
		return nil, err
	}
	if len(stamps) != wantStamps {
		return nil, fmt.Errorf("got %d marker stamps, want %d", len(stamps), wantStamps)
	}
	total := float64(obs.Cycles)
	switch p.Kind {
	case BPProbe:
		// stamps = [victim start, victim end, probe start, probe end].
		return []float64{float64(stamps[3] - stamps[2]), total}, nil
	default: // PrimeProbe
		// stamps = [probe start, after set-A reload, after set-B reload].
		tA := float64(stamps[1] - stamps[0])
		tB := float64(stamps[2] - stamps[1])
		return []float64{tA, tB, tA - tB, total}, nil
	}
}

// markerArray names the one-line array whose committed stores timestamp
// the measured segments. Declared first so it owns the first data line and
// its cache set never collides with the probed sets.
const markerArray = "mrk"

// noiseOps appends n cheap dependent ALU operations on the public noise
// chain nv — about two cycles each, so in-window jitter stays well under
// the microarchitectural signals (a ~8-cycle mispredict flush, a
// >=12-cycle probe miss).
func noiseOps(n int) []lang.Stmt {
	out := make([]lang.Stmt, 0, n)
	for j := 0; j < n; j++ {
		out = append(out, lang.Set("nv",
			lang.B(lang.Add, lang.V("nv"), lang.B(lang.Shr, lang.V("nv"), lang.N(3)))))
	}
	return out
}
