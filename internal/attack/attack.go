// Package attack is the attack lab: concrete microarchitectural attackers
// that run *attacker programs* on the simulated core against a victim
// parameterized by a secret, and measure what a realistic adversary
// measures — per-trial timing vectors, not digest equality.
//
// Two attacker families are implemented:
//
//   - BPProbe, a Spectre-PHT-style branch-predictor probe: the victim's
//     secret branch trains the TAGE bimodal state in place, and the
//     attacker then re-executes the same static branch with a known input,
//     timing the mispredict-dependent probe segment (Kocher et al.;
//     Chowdhuryy & Yao, "Leaking Secrets through Modern Branch
//     Predictors").
//   - PrimeProbe, a prime+probe DL1 conflict attack: the attacker fills
//     both ways of two chosen cache sets, the victim performs one
//     secret-selected load that evicts the attacker's line from one of
//     them, and the attacker times a per-set reload.
//
// The victim is pluggable (internal/victim): each attacker is a scaffold
// that wraps a victim's secret-dependent fragment — its setup computation
// and the attacked bit's condition — in the measurement protocol. A trial
// batch attacks one bit of a W-bit key; attack.ExtractKey (key.go) walks
// the whole key bit by bit and aggregates per-bit assessments into a
// KeyRecovery.
//
// Timing is measured the way the paper's threat model allows: marker
// stores in the attacker program are timestamped at commit through the
// core's MemWatch hook, so a trial yields the cycle length of each probe
// segment. Every trial builds, compiles, and runs fresh programs with
// per-trial public randomness (noise work, probed-set selection) drawn
// from a seeded deterministic stream, so batches are exactly reproducible
// and pairable across architectures.
//
// internal/stattest turns trial batches into the statistical verdicts
// (TVLA fixed-vs-random, mutual information, recovery rate); assess.go
// bundles them into one Assessment.
package attack

import (
	"fmt"
	"math/rand"

	"repro/internal/compile"
	"repro/internal/lang"
	"repro/internal/leak"
	"repro/internal/pipeline"
	"repro/internal/victim"
)

// Kind identifies an attacker implementation.
type Kind int

// The implemented attackers.
const (
	BPProbe    Kind = iota // branch-predictor probe (Spectre-PHT style)
	PrimeProbe             // DL1 prime+probe conflict attack
)

// AllKinds returns every attacker, in report order.
func AllKinds() []Kind { return []Kind{BPProbe, PrimeProbe} }

func (k Kind) String() string {
	switch k {
	case BPProbe:
		return "bp"
	case PrimeProbe:
		return "cache"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// ParseKind is the inverse of Kind.String.
func ParseKind(s string) (Kind, error) {
	for _, k := range AllKinds() {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("attack: unknown attacker %q (have bp|cache)", s)
}

// ArchName names the attacked architecture for reports: the unprotected
// baseline or the SeMPE-protected core.
func ArchName(secure bool) string {
	if secure {
		return "sempe"
	}
	return "baseline"
}

// ParseArch is the inverse of ArchName.
func ParseArch(s string) (secure bool, err error) {
	switch s {
	case "baseline":
		return false, nil
	case "sempe":
		return true, nil
	}
	return false, fmt.Errorf("attack: unknown arch %q (have baseline|sempe)", s)
}

// Params parameterizes one trial batch — the attack on one bit of a key.
// The zero values of the victim fields reproduce the PR-4 behavior (the
// direct one-bit victim, no gap noise), so stored spectre/tvla results
// stay valid.
type Params struct {
	Kind   Kind  `json:"kind"`
	Secure bool  `json:"secure"` // false = unprotected baseline, true = SeMPE
	Trials int   `json:"trials"`
	Seed   int64 `json:"seed"`
	// Noise bounds the per-trial in-window public noise work (operations
	// inside the measured probe segment), drawn uniformly from [0, Noise].
	// It models environmental jitter a real measurement would see; the
	// default keeps it below half the microarchitectural signal so the
	// calibrated classifier stays reliable on the baseline.
	Noise int `json:"noise"`
	// FixedSecret pins every trial's secret bit (0 or 1) — the TVLA
	// "fixed" batch. Negative means a fresh random bit per trial (the
	// "random" batch and the recovery experiment).
	FixedSecret int64 `json:"fixed_secret"`
	// Victim names the victim implementation (internal/victim); empty
	// means "bit", the PR-4 direct one-bit victim.
	Victim string `json:"victim,omitempty"`
	// Width is the victim's key width in bits; 0 means 1.
	Width int `json:"width,omitempty"`
	// Bit is the attacked bit position (0-based, LSB first).
	Bit int `json:"bit,omitempty"`
	// KeyPrefix carries the already-recovered key bits below Bit; the
	// victim's setup runs on them. Bits at and above Bit must be clear.
	KeyPrefix uint64 `json:"key_prefix,omitempty"`
	// Gap is the attacker-strength axis: the number of units of dummy
	// branch/memory activity injected between the victim's training and
	// the attacker's probe. 0 models the strongest attacker (immediate
	// probe); larger values model an attacker that cannot schedule its
	// probe tightly, so uncontrolled activity pollutes predictor and cache
	// state in between. The activity is deterministic per run but drawn
	// independently for the live measurement and its calibration replays,
	// which is what makes it degrade the calibrated classifier.
	Gap int `json:"gap,omitempty"`
	// Workers bounds the trial worker pool: trials simulate concurrently on
	// up to Workers pooled cores, with all statistics still computed in
	// trial order, so results are bit-identical to the serial path at any
	// value. <= 1 runs serially. Excluded from JSON so stored batch keys
	// and reports are identical whatever parallelism produced them.
	Workers int `json:"-"`
}

// DefaultParams returns the batch configuration the spectre/tvla scenarios
// and cmd/sempe-attack start from.
func DefaultParams(kind Kind, secure bool) Params {
	return Params{Kind: kind, Secure: secure, Trials: 100, Seed: 1, Noise: 2, FixedSecret: -1}
}

// width is Width with its documented default applied.
func (p Params) width() int {
	if p.Width == 0 {
		return 1
	}
	return p.Width
}

// victimImpl resolves the victim, defaulting to the direct one-bit victim.
func (p Params) victimImpl() (victim.Victim, error) {
	name := p.Victim
	if name == "" {
		name = "bit"
	}
	return victim.Lookup(name)
}

// effSeed derives the per-bit trial stream seed: bit 0 (and the whole
// legacy single-bit path) uses Seed unchanged, so PR-4 batches replay
// bit-identically; higher bits get independent deterministic streams.
func (p Params) effSeed() int64 {
	return p.Seed ^ int64(p.Bit)*0x6A09E667F3BCC909
}

// validate rejects out-of-range parameters loudly — silently substituting
// a default would let a store entry's key disagree with what was actually
// computed.
func (p Params) validate() error {
	switch p.Kind {
	case BPProbe, PrimeProbe:
	default:
		return fmt.Errorf("attack: unknown attacker kind %d", int(p.Kind))
	}
	if p.Trials <= 0 {
		return fmt.Errorf("attack: trials must be >= 1, have %d", p.Trials)
	}
	if p.Noise < 0 {
		return fmt.Errorf("attack: noise must be >= 0, have %d", p.Noise)
	}
	if p.Gap < 0 {
		return fmt.Errorf("attack: gap must be >= 0, have %d", p.Gap)
	}
	w := p.width()
	if w < 1 || w > victim.MaxWidth {
		return fmt.Errorf("attack: width must be in [1,%d], have %d", victim.MaxWidth, w)
	}
	if p.Bit < 0 || p.Bit >= w {
		return fmt.Errorf("attack: bit %d out of range for width %d", p.Bit, w)
	}
	if p.KeyPrefix>>uint(p.Bit) != 0 {
		return fmt.Errorf("attack: key prefix %#x has bits at or above attacked bit %d", p.KeyPrefix, p.Bit)
	}
	if _, err := p.victimImpl(); err != nil {
		return err
	}
	return nil
}

// rejectGap guards the batch entry points (Run, RunAssessment): their
// trials are built from calibration pairs alone, so the gap axis — whose
// whole point is a live measurement with an independent gap seed — would
// be silently inert there. Only the key-extraction engine (ExtractKey)
// simulates the live measurement; fail loudly rather than overstate a
// weak attacker as fully calibrated.
func (p Params) rejectGap() error {
	if p.Gap > 0 {
		return fmt.Errorf("attack: gap %d requires the key-extraction engine (ExtractKey); batch runs never simulate the live measurement", p.Gap)
	}
	return nil
}

// Trial is one attack trial: the victim's secret bit, the attacker's
// observation vector, and the attacker's guess after calibration.
type Trial struct {
	Secret uint64    `json:"secret"`
	Obs    []float64 `json:"obs"`
	Guess  uint64    `json:"guess"`
}

// Batch is a completed set of trials under one Params.
type Batch struct {
	Params  Params   `json:"params"`
	Columns []string `json:"columns"`
	Trials  []Trial  `json:"trials"`
}

// Column extracts one observation column across trials.
func (b *Batch) Column(i int) []float64 {
	out := make([]float64, len(b.Trials))
	for j, t := range b.Trials {
		out[j] = t.Obs[i]
	}
	return out
}

// Secrets extracts the per-trial secret bits.
func (b *Batch) Secrets() []uint64 {
	out := make([]uint64, len(b.Trials))
	for j, t := range b.Trials {
		out[j] = t.Secret
	}
	return out
}

// Recovered counts trials whose guess matched the secret.
func (b *Batch) Recovered() int {
	n := 0
	for _, t := range b.Trials {
		if t.Guess == t.Secret {
			n++
		}
	}
	return n
}

// RecoveryRate is the fraction of trials whose guess matched the secret.
func (b *Batch) RecoveryRate() float64 {
	if len(b.Trials) == 0 {
		return 0
	}
	return float64(b.Recovered()) / float64(len(b.Trials))
}

// draw is the public per-trial randomness baked into a trial's programs:
// the attacker-chosen state (probed sets) and the trial's environment
// (noise-work amounts, noise seed). The measurement and its calibration
// runs share one draw — the attacker replays its exact environment with
// known inputs — so layout and fetch effects cancel in the classifier.
// The gap-activity seeds are the exception: the live measurement's gap
// activity (gapMeas) is drawn independently of the calibration replays'
// (gapCal), because that activity is exactly what the attacker cannot
// reproduce.
type draw struct {
	seed0    int64 // noise-chain seed
	noisePre int   // public noise ops outside the measured windows
	noiseWin int   // public noise ops inside the measured windows
	la, lb   int   // prime+probe: the two probed DL1 line indices
	gapCal   int64 // gap-activity seed shared by the calibration replays
	gapMeas  int64 // gap-activity seed of the live measurement
}

// noisePreMax bounds the out-of-window public noise work per trial. It
// varies alignment, predictor history, and fetch phase between trials
// without touching the measured segments.
const noisePreMax = 24

// cacheProbeLines is the pool of DL1 line offsets the prime+probe attacker
// draws its two probed sets from: [cacheProbeMin, cacheProbeMin+cacheProbePool).
// The pool stays clear of the marker array's set and of the sets aliased
// by the result block (see cacheProgram).
const (
	cacheProbeMin  = 16
	cacheProbePool = 224
)

func newDraw(rng *rand.Rand, p Params) draw {
	d := draw{
		seed0:    int64(rng.Intn(1 << 20)),
		noisePre: rng.Intn(noisePreMax + 1),
		noiseWin: rng.Intn(p.Noise + 1),
	}
	d.la = cacheProbeMin + rng.Intn(cacheProbePool)
	d.lb = cacheProbeMin + rng.Intn(cacheProbePool)
	for d.lb == d.la {
		d.lb = cacheProbeMin + rng.Intn(cacheProbePool)
	}
	// Drawn only when the gap axis is active, so legacy (Gap == 0) streams
	// are untouched and PR-4 batches replay bit-identically.
	if p.Gap > 0 {
		d.gapCal = int64(rng.Intn(1 << 20))
		d.gapMeas = int64(rng.Intn(1 << 20))
	}
	return d
}

// trialRNG derives the deterministic per-trial stream. It depends only on
// (seed, trial index), so the fixed and random TVLA batches draw identical
// noise and attacker state and differ only in the secret.
func trialRNG(seed int64, trial int) *rand.Rand {
	return rand.New(rand.NewSource(seed ^ (int64(trial)+1)*0x5E3779B97F4A7C15))
}

// secretRNG is the separate stream secrets come from, so adding or
// removing a noise draw never changes which secrets a seed produces.
func secretRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed*0x51F2B7 + 11))
}

// Run executes the batch: per trial it builds and runs the measurement
// program plus two calibration programs (attacker dry runs with known
// branch input 0 and 1 under fresh environmental noise), classifies the
// measurement against the calibration pair, and records the observation
// vector and guess. Trials simulate on the runner's pooled-core fast path
// (see runner.go), in parallel when p.Workers > 1; classification and batch
// assembly stay in trial order, so output is identical at any worker count.
func Run(p Params) (*Batch, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if err := p.rejectGap(); err != nil {
		return nil, err
	}
	pairs, err := runCalibPairs(p)
	if err != nil {
		return nil, err
	}
	b := &Batch{Params: p, Columns: columns(p.Kind)}
	secRng := secretRNG(p.effSeed())
	for _, pr := range pairs {
		secret := uint64(secRng.Intn(2))
		if p.FixedSecret >= 0 {
			secret = uint64(p.FixedSecret) & 1
		}
		b.Trials = append(b.Trials, makeTrial(p.Kind, secret, pr.c0, pr.c1))
	}
	return b, nil
}

// calib is one trial's simulated calibration pair.
type calib struct {
	c0, c1 []float64
}

// runCalibPairs simulates every trial's calibration pair on the worker
// pool, returning them in trial order.
func runCalibPairs(p Params) ([]calib, error) {
	pairs := make([]calib, p.Trials)
	err := runTrials(p, p.Trials, p.Workers, func(r *runner, t int) error {
		_, c0, c1, err := r.calibPair(t)
		if err != nil {
			return fmt.Errorf("attack %s/%s trial %d: %w", p.Kind, ArchName(p.Secure), t, err)
		}
		pairs[t] = calib{cloneObs(c0), cloneObs(c1)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return pairs, nil
}

// calibPair runs trial t's two calibration programs — replays of the
// trial's exact environment (same draw, so the same program layout and
// noise) with each known value of the attacked bit. Code placement and
// fetch effects cancel exactly between them, leaving only the
// microarchitectural signal — or, under SeMPE, nothing, in which case the
// classifier degenerates to a secret-independent tie.
func calibPair(p Params, t int) (c0, c1 []float64, err error) {
	d := newDraw(trialRNG(p.effSeed(), t), p)
	if c0, err = runTrial(p, d, d.gapCal, p.KeyPrefix); err != nil {
		return nil, nil, fmt.Errorf("attack %s/%s trial %d calib0: %w", p.Kind, ArchName(p.Secure), t, err)
	}
	if c1, err = runTrial(p, d, d.gapCal, p.KeyPrefix|1<<uint(p.Bit)); err != nil {
		return nil, nil, fmt.Errorf("attack %s/%s trial %d calib1: %w", p.Kind, ArchName(p.Secure), t, err)
	}
	return c0, c1, nil
}

// makeTrial assembles one trial from its calibration pair. The
// measurement run is the same deterministic program as the matching
// calibration (same draw, same secret), so its observation is that
// calibration's — selected, not re-simulated.
// TestBaselineObservationsDiffer and TestSeMPEObservationsSecretIndependent
// pin the equality this relies on at the runTrial level.
//
// The appended derived columns are the attacker's post-processing: the
// recovery statistic centered on the calibration midpoint (cancels the
// trial's layout- and fetch-dependent baseline, leaving the signed
// microarchitectural signal), and its sign (the decoded verdict). These
// are what make the TVLA t saturate on a leaking target: the raw columns'
// inter-trial variance is calibration noise, not signal.
func makeTrial(k Kind, secret uint64, c0, c1 []float64) Trial {
	recCol := recoveryColumn(k)
	src := c0
	if secret == 1 {
		src = c1
	}
	obs := append([]float64(nil), src...)
	mid := (c0[recCol] + c1[recCol]) / 2
	centered := obs[recCol] - mid
	sign := 0.0
	switch {
	case centered > 0:
		sign = 1
	case centered < 0:
		sign = -1
	}
	obs = append(obs, centered, sign)
	return Trial{
		Secret: secret,
		Obs:    obs,
		Guess:  classify(obs[recCol], c0[recCol], c1[recCol]),
	}
}

// classify is the attacker's nearest-calibration classifier on the
// recovery statistic. Ties (including the fully degenerate SeMPE case
// where measurement and both calibrations coincide) resolve to 0, which
// keeps the guess independent of the secret when there is no signal.
func classify(x, c0, c1 float64) uint64 {
	d0, d1 := x-c0, x-c1
	if d0 < 0 {
		d0 = -d0
	}
	if d1 < 0 {
		d1 = -d1
	}
	if d1 < d0 {
		return 1
	}
	return 0
}

// columns names the observation vector per attacker. The last two are the
// derived post-processing columns appended by Run.
func columns(k Kind) []string {
	switch k {
	case BPProbe:
		return []string{"probe-cycles", "total-cycles", "probe-centered", "probe-sign"}
	case PrimeProbe:
		return []string{"probe-a-cycles", "probe-b-cycles", "probe-diff", "total-cycles", "diff-centered", "diff-sign"}
	}
	panic("attack: unknown kind")
}

// recoveryColumn indexes the observation column the classifier uses: the
// probe-segment time for the predictor attack, the per-set probe
// difference for prime+probe.
func recoveryColumn(k Kind) int {
	switch k {
	case BPProbe:
		return 0
	case PrimeProbe:
		return 2
	}
	panic("attack: unknown kind")
}

// signColumn indexes the decoded-sign column (always last) — the
// mutual-information estimate runs over it.
func signColumn(k Kind) int { return len(columns(k)) - 1 }

// runTrial builds, compiles, and runs one attacker program — the victim's
// fragment for (key, width, bit) wrapped in the attacker's measurement
// scaffold, with gap activity seeded by gapSeed — and extracts the
// observation vector from its marker timestamps.
func runTrial(p Params, d draw, gapSeed int64, key uint64) ([]float64, error) {
	v, err := p.victimImpl()
	if err != nil {
		return nil, err
	}
	frag := v.Fragment(key, p.width(), p.Bit)
	var prog *lang.Program
	wantStamps := 0
	switch p.Kind {
	case BPProbe:
		prog = bpProgram(frag, d, gapSeed, p.Gap)
		wantStamps = 4
	case PrimeProbe:
		prog = cacheProgram(frag, d, gapSeed, p.Gap)
		wantStamps = 3
	default:
		return nil, fmt.Errorf("unknown attacker kind %d", int(p.Kind))
	}
	mode, cfg := compile.Plain, pipeline.DefaultConfig()
	if p.Secure {
		mode, cfg = compile.SeMPE, pipeline.SecureConfig()
	}
	out, err := compile.Compile(prog, mode)
	if err != nil {
		return nil, err
	}
	mrk, ok := out.ArrayAddrs[markerArray]
	if !ok {
		return nil, fmt.Errorf("program has no %q marker array", markerArray)
	}
	var stamps []uint64
	obs, _, err := leak.ObserveWith(cfg, out.Prog, func(c *pipeline.Core) {
		c.MemWatch = func(addr uint64, write bool, cycle uint64) {
			if write && addr == mrk {
				stamps = append(stamps, cycle)
			}
		}
	})
	if err != nil {
		return nil, err
	}
	if len(stamps) != wantStamps {
		return nil, fmt.Errorf("got %d marker stamps, want %d", len(stamps), wantStamps)
	}
	total := float64(obs.Cycles)
	switch p.Kind {
	case BPProbe:
		// stamps = [victim start, victim end, probe start, probe end].
		return []float64{float64(stamps[3] - stamps[2]), total}, nil
	default: // PrimeProbe
		// stamps = [probe start, after set-A reload, after set-B reload].
		tA := float64(stamps[1] - stamps[0])
		tB := float64(stamps[2] - stamps[1])
		return []float64{tA, tB, tA - tB, total}, nil
	}
}

// markerArray names the one-line array whose committed stores timestamp
// the measured segments. Declared first so it owns the first data line and
// its cache set never collides with the probed sets.
const markerArray = "mrk"

// noiseOps appends n cheap dependent ALU operations on the public noise
// chain nv — about two cycles each, so in-window jitter stays well under
// the microarchitectural signals (a ~8-cycle mispredict flush, a
// >=12-cycle probe miss).
func noiseOps(n int) []lang.Stmt {
	out := make([]lang.Stmt, 0, n)
	for j := 0; j < n; j++ {
		out = append(out, lang.Set("nv",
			lang.B(lang.Add, lang.V("nv"), lang.B(lang.Shr, lang.V("nv"), lang.N(3)))))
	}
	return out
}

// gapLoop builds the attacker-strength gap activity: dummy branch +
// memory work between the victim's training and the attacker's probe.
// Each unit advances a public LCG, takes a data-dependent public branch
// on one of its bits (predictor-table and history pressure), and loads
// one element computed by `index` from `arr` (cache pressure). The LCG
// seed comes from the trial draw — independently for the measurement and
// its calibration replays — so the activity is deterministic per run but
// uncorrelated between them, exactly like background activity a weak
// attacker cannot control. `trip` is the trip-count expression (usually
// the constant n; the bp scaffold gates it branch-free on its iteration
// counter so the activity runs only between train and probe, not again
// after the probe).
func gapLoop(n int, trip lang.Expr, arr string, index func(gv lang.Expr) lang.Expr) []lang.Stmt {
	if n <= 0 {
		return nil
	}
	return []lang.Stmt{
		lang.Set("gj", trip),
		lang.Loop(lang.B(lang.Gt, lang.V("gj"), lang.N(0)), []lang.Stmt{
			lang.Set("gv", lang.B(lang.Add,
				lang.B(lang.Mul, lang.V("gv"), lang.N(48271)), lang.N(11))),
			lang.PublicIf(lang.B(lang.And, lang.B(lang.Shr, lang.V("gv"), lang.N(5)), lang.N(1)),
				[]lang.Stmt{lang.Set("ga", lang.B(lang.Add, lang.B(lang.Mul, lang.V("ga"), lang.N(3)), lang.N(1)))},
				[]lang.Stmt{lang.Set("ga", lang.B(lang.Add, lang.B(lang.Mul, lang.V("ga"), lang.N(5)), lang.N(7)))}),
			lang.Set("gl", index(lang.B(lang.And, lang.B(lang.Shr, lang.V("gv"), lang.N(3)), lang.N(0x7FFF)))),
			lang.Set("ga", lang.B(lang.Add, lang.V("ga"), lang.At(arr, lang.V("gl")))),
			lang.Set("gj", lang.B(lang.Sub, lang.V("gj"), lang.N(1))),
		}),
	}
}

// gapVars declares the gap activity's scalars; gapSeed differs between the
// live measurement and the calibration replays.
func gapVars(gapSeed int64) []*lang.VarDecl {
	return []*lang.VarDecl{
		{Name: "gv", Init: gapSeed},
		{Name: "gj"},
		{Name: "gl"},
		{Name: "ga", Init: 3},
	}
}
