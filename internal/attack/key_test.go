package attack

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/stattest"
)

// TestKeyExtractionBaseline is the acceptance pin of the key-extraction
// engine: on the unprotected baseline, both attacker families extract
// every bit of an 8-bit key from both leaky multi-bit victims at 100%
// per-bit accuracy (>= the 99% gate), and reconstruct the key exactly.
func TestKeyExtractionBaseline(t *testing.T) {
	for _, kind := range AllKinds() {
		for _, vic := range []string{"keyloop", "modexp"} {
			p := DefaultKeyParams(kind, false)
			p.Victim = vic
			p.Trials = 36 // TVLA |t| grows ~sqrt(trials); 36 clears 4.5 with margin on every bit
			kr, err := ExtractKey(p)
			if err != nil {
				t.Fatalf("%v/%s: %v", kind, vic, err)
			}
			t.Logf("%s", kr)
			if !kr.FullExtraction() {
				t.Errorf("%v/%s baseline: extracted %d/%d bits, recovered %#x want %#x",
					kind, vic, kr.BitsExtracted, kr.Width, kr.Recovered, kr.Key)
			}
			if kr.MinAccuracy < 0.99 {
				t.Errorf("%v/%s baseline: min per-bit accuracy %.3f, want >= 0.99", kind, vic, kr.MinAccuracy)
			}
			if kr.MaxAbsT < stattest.TVLAThreshold {
				t.Errorf("%v/%s baseline: max |t| %.2f, want >= %.1f", kind, vic, kr.MaxAbsT, stattest.TVLAThreshold)
			}
			if !kr.MeetsExpectation(true) {
				t.Errorf("%v/%s baseline: check gate rejected a full extraction", kind, vic)
			}
		}
	}
}

// TestKeyExtractionSeMPE: under SeMPE the same experiments sit at per-bit
// chance — the random-secret recovery interval straddles 50%, no bit is
// extracted, and every TVLA t is silent.
func TestKeyExtractionSeMPE(t *testing.T) {
	for _, kind := range AllKinds() {
		p := DefaultKeyParams(kind, true)
		p.Width = 4
		p.Trials = 24
		kr, err := ExtractKey(p)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		t.Logf("%s", kr)
		if kr.BitsExtracted != 0 {
			t.Errorf("%v sempe: %d bits extracted, want 0", kind, kr.BitsExtracted)
		}
		if kr.MaxAbsT >= stattest.TVLAThreshold {
			t.Errorf("%v sempe: max |t| %.2f, want < %.1f", kind, kr.MaxAbsT, stattest.TVLAThreshold)
		}
		for _, br := range kr.Bits {
			// Per-bit chance: the random-secret recovery interval must not
			// clear 50% on the high side (the point estimate wanders with
			// only 24 trials, so the interval is the principled check).
			if br.RecLo > 0.5 {
				t.Errorf("%v sempe bit %d: recovery %.3f (CI %.3f..%.3f) clears chance",
					kind, br.Bit, br.Recovery, br.RecLo, br.RecHi)
			}
			if br.Extracted {
				t.Errorf("%v sempe bit %d: marked extracted", kind, br.Bit)
			}
			if br.Discarded != kr.Trials {
				t.Errorf("%v sempe bit %d: %d trials discarded, want all %d (no calibration contrast)",
					kind, br.Bit, br.Discarded, kr.Trials)
			}
		}
		if !kr.MeetsExpectation(true) {
			t.Errorf("%v sempe: check gate rejected a secure result", kind)
		}
	}
}

// TestCTCompareNegativeControl: the constant-time compare victim must
// report SECURE even on the unprotected baseline — its secret never
// reaches a branch, so an attack that "extracts" anything from it is a
// harness artifact.
func TestCTCompareNegativeControl(t *testing.T) {
	for _, kind := range AllKinds() {
		for _, secure := range []bool{false, true} {
			p := DefaultKeyParams(kind, secure)
			p.Victim = "ctcompare"
			p.Width = 4
			p.Trials = 20
			kr, err := ExtractKey(p)
			if err != nil {
				t.Fatalf("%v/%s: %v", kind, ArchName(secure), err)
			}
			t.Logf("%s", kr)
			if kr.Leaks() {
				t.Errorf("%v/%s: ctcompare leaks (bits %d, max |t| %.1f)",
					kind, ArchName(secure), kr.BitsExtracted, kr.MaxAbsT)
			}
			if !kr.MeetsExpectation(false) {
				t.Errorf("%v/%s: check gate rejected the negative control", kind, ArchName(secure))
			}
		}
	}
}

// TestSeMPEVictimObservationsKeyIndependent is the per-trial form of the
// indistinguishability claim, generalized to every victim: under SeMPE a
// trial's observation vector is bit-identical whatever the key — attacked
// bit flipped, or a completely different recovered prefix.
func TestSeMPEVictimObservationsKeyIndependent(t *testing.T) {
	for _, kind := range AllKinds() {
		for _, vic := range []string{"bit", "keyloop", "modexp", "ctcompare"} {
			w := 4
			if vic == "bit" {
				w = 1
			}
			p := DefaultParams(kind, true)
			p.Victim = vic
			p.Width = w
			p.Bit = w - 1
			for trial := 0; trial < 3; trial++ {
				d := newDraw(trialRNG(p.effSeed(), trial), p)
				var ref []float64
				for _, key := range []uint64{0, 1<<uint(p.Bit) - 1, 1 << uint(p.Bit), 1<<uint(w) - 1} {
					obs, err := runTrial(p, d, d.gapCal, key)
					if err != nil {
						t.Fatalf("%v/%s key %#x: %v", kind, vic, key, err)
					}
					if ref == nil {
						ref = obs
						continue
					}
					for i := range obs {
						if obs[i] != ref[i] {
							t.Errorf("%v/%s trial %d key %#x col %d: %v != %v",
								kind, vic, trial, key, i, obs[i], ref[i])
						}
					}
				}
			}
		}
	}
}

// TestWidthOneMatchesSpectre: a width-1 extraction with the direct bit
// victim runs the same per-trial machinery as the PR-4 single-bit
// assessment, so its per-bit statistics must equal RunAssessment's field
// for field — the refactor changed the plumbing, not the experiment.
func TestWidthOneMatchesSpectre(t *testing.T) {
	for _, kind := range AllKinds() {
		ap := DefaultParams(kind, false)
		ap.Trials = 30
		a, err := RunAssessment(ap)
		if err != nil {
			t.Fatal(err)
		}
		kp := KeyParams{Kind: kind, Victim: "bit", Width: 1, Trials: 30, Seed: ap.Seed, Noise: ap.Noise, Key: -1}
		kr, err := ExtractKey(kp)
		if err != nil {
			t.Fatal(err)
		}
		if len(kr.Bits) != 1 {
			t.Fatalf("%v: %d bit results, want 1", kind, len(kr.Bits))
		}
		br := kr.Bits[0]
		if br.Recovery != a.Recovery || br.RecLo != a.CILo || br.RecHi != a.CIHi {
			t.Errorf("%v: recovery %v (CI %v..%v) != assessment %v (CI %v..%v)",
				kind, br.Recovery, br.RecLo, br.RecHi, a.Recovery, a.CILo, a.CIHi)
		}
		if br.MaxAbsT != a.MaxAbsT || br.TVLALeak != a.TVLALeak || br.MIBits != a.MIBits {
			t.Errorf("%v: per-bit stats (t %v, leak %v, mi %v) != assessment (t %v, leak %v, mi %v)",
				kind, br.MaxAbsT, br.TVLALeak, br.MIBits, a.MaxAbsT, a.TVLALeak, a.MIBits)
		}
	}
}

// TestAllZerosAllOnesKeys: extraction must be exact at the key-space
// corners. The all-zeros key in particular is where a tie-biased
// classifier (guesses 0 when there is no signal) could fake a full
// extraction if the per-bit Extracted verdict did not require the
// random-batch interval to clear chance.
func TestAllZerosAllOnesKeys(t *testing.T) {
	for _, key := range []int64{0, 0xF} {
		p := DefaultKeyParams(BPProbe, false)
		p.Victim = "keyloop"
		p.Width = 4
		p.Trials = 20
		p.Key = key
		kr, err := ExtractKey(p)
		if err != nil {
			t.Fatal(err)
		}
		if kr.Key != uint64(key) {
			t.Fatalf("key %#x: TrueKey resolved to %#x", key, kr.Key)
		}
		if !kr.FullExtraction() || kr.Recovered != uint64(key) {
			t.Errorf("key %#x: recovered %#x, %d/%d bits extracted",
				key, kr.Recovered, kr.BitsExtracted, kr.Width)
		}
		if kr.MinAccuracy < 0.99 {
			t.Errorf("key %#x: min accuracy %.3f", key, kr.MinAccuracy)
		}
	}
}

// TestWrongBitFailsCheckGate: a deliberately corrupted per-bit result —
// one bit flipped in the recovered key — must fail the shared -check
// gate for a leaky victim on the baseline.
func TestWrongBitFailsCheckGate(t *testing.T) {
	p := DefaultKeyParams(BPProbe, false)
	p.Victim = "keyloop"
	p.Width = 4
	p.Trials = 20
	kr, err := ExtractKey(p)
	if err != nil {
		t.Fatal(err)
	}
	if !kr.MeetsExpectation(true) {
		t.Fatal("clean extraction failed the gate; cannot test corruption")
	}
	bad := kr
	bad.Recovered ^= 1 << 2 // one wrong bit
	if bad.MeetsExpectation(true) {
		t.Error("gate accepted a recovery with a wrong bit")
	}
	bad2 := kr
	bad2.BitsExtracted--
	if bad2.MeetsExpectation(true) {
		t.Error("gate accepted a recovery with an unextracted bit")
	}
	// And on SeMPE the gate must reject any extraction at all.
	sempe := kr
	sempe.Arch = ArchName(true)
	if sempe.MeetsExpectation(true) {
		t.Error("gate accepted an extraction attributed to SeMPE")
	}
}

// TestKeyRecoveryRoundTrip: KeyRecovery is the keyextract sweep's row, so
// it must survive a JSON round trip exactly (cluster sharding and the
// on-disk store depend on it).
func TestKeyRecoveryRoundTrip(t *testing.T) {
	p := DefaultKeyParams(PrimeProbe, false)
	p.Width = 2
	p.Trials = 6
	kr, err := ExtractKey(p)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(kr)
	if err != nil {
		t.Fatal(err)
	}
	var back KeyRecovery
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(kr, back) {
		t.Errorf("round trip mismatch:\n%+v\n%+v", kr, back)
	}
}

// TestKeyParamsValidation: out-of-range key parameters fail loudly.
func TestKeyParamsValidation(t *testing.T) {
	base := DefaultKeyParams(BPProbe, false)
	cases := []func(*KeyParams){
		func(p *KeyParams) { p.Trials = 0 },
		func(p *KeyParams) { p.Width = 40 },
		func(p *KeyParams) { p.Gap = -1 },
		func(p *KeyParams) { p.Victim = "nope" },
	}
	for i, mod := range cases {
		p := base
		mod(&p)
		if _, err := ExtractKey(p); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

// TestGapNoiseDegradesCacheAttack: the attacker-strength axis must do
// something — with heavy uncalibratable gap activity between the victim's
// access and the probe, the prime+probe attacker's per-bit accuracy drops
// below the perfect extraction it achieves at gap 0.
func TestGapNoiseDegradesCacheAttack(t *testing.T) {
	strong := DefaultKeyParams(PrimeProbe, false)
	strong.Victim = "keyloop"
	strong.Width = 4
	strong.Trials = 16
	weakest := strong
	weakest.Gap = 512
	s, err := ExtractKey(strong)
	if err != nil {
		t.Fatal(err)
	}
	w, err := ExtractKey(weakest)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("gap 0:   %s", s)
	t.Logf("gap 512: %s", w)
	if s.MinAccuracy != 1 {
		t.Errorf("gap 0: min accuracy %.3f, want 1.0", s.MinAccuracy)
	}
	if w.MinAccuracy >= s.MinAccuracy {
		t.Errorf("gap 512 accuracy %.3f not below gap 0 accuracy %.3f — the strength axis is inert",
			w.MinAccuracy, s.MinAccuracy)
	}
}
