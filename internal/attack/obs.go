// Attack throughput counters exported as metric families. Registration is
// scrape-time only: each family is a CounterFunc reading the existing
// process-wide atomics (template memo, core pool, superblock engine, trial
// throughput), so importing this package adds zero cost to the simulation
// and trial hot paths. The same numbers back PerfSnapshot (-sbstats), a
// /metrics scrape from a serving process, and the -metrics exposition dump
// of sempe-attack — one snapshot API, three read paths.
package attack

import (
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/pipeline"
)

func init() {
	reg := obs.Default()
	u64 := func(c *atomic.Uint64) func() float64 {
		return func() float64 { return float64(c.Load()) }
	}
	reg.CounterFunc("sempe_attack_template_hits_total",
		"Compiled-template memo hits across all attack runners.",
		func() float64 { h, _, _ := tmplMemo.Counters(); return float64(h) })
	reg.CounterFunc("sempe_attack_template_misses_total",
		"Compiled-template memo misses (templates compiled).",
		func() float64 { _, m, _ := tmplMemo.Counters(); return float64(m) })
	reg.CounterFunc("sempe_attack_template_evictions_total",
		"Compiled templates evicted from the memo.",
		func() float64 { _, _, e := tmplMemo.Counters(); return float64(e) })
	reg.CounterFunc("sempe_attack_template_fallbacks_total",
		"Trials that fell back to uncached compilation.",
		u64(&perfCounters.fallbacks))
	reg.CounterFunc("sempe_attack_core_builds_total",
		"Simulator cores built from scratch (core-pool misses).",
		u64(&perfCounters.coreBuilds))
	reg.CounterFunc("sempe_attack_core_resets_total",
		"Simulator cores reused via reset (core-pool hits).",
		u64(&perfCounters.coreResets))
	reg.CounterFunc("sempe_superblock_builds_total",
		"Superblocks decoded and cached by the execution engine.",
		u64(&perfCounters.sbBuilds))
	reg.CounterFunc("sempe_superblock_replayed_ops_total",
		"Operations executed via memoized superblock fast paths.",
		u64(&perfCounters.sbReplays))
	reg.CounterFunc("sempe_superblock_legacy_ops_total",
		"Operations executed via the legacy per-op decode path.",
		u64(&perfCounters.sbLegacy))
	reg.CounterFunc("sempe_sb_wrongpath_builds_total",
		"Superblock builds attributed to squashed (wrong-path) fetch regions.",
		u64(&perfCounters.sbWPBuilds))
	reg.CounterFunc("sempe_sb_wrongpath_replays_total",
		"Replayed micro-ops later squashed by a flush: wrong-path work the "+
			"engine ran at superblock speed instead of the legacy walk.",
		u64(&perfCounters.sbWPReplay))
	reg.CounterFunc("sempe_attack_trials_total",
		"Attack trials completed across all batches.",
		u64(&perfCounters.trials))
	reg.CounterFunc("sempe_attack_trial_seconds_total",
		"Cumulative wall-clock seconds spent inside trial batches; "+
			"sempe_attack_trials_total divided by this is trials/s.",
		func() float64 { return float64(perfCounters.trialNS.Load()) / 1e9 })

	// Speculative-window families: process-wide wrong-path accounting
	// published by every completed Run (pipeline.GlobalSpecCounters). Like the
	// families above, these are scrape-time reads of existing atomics; the
	// underlying Stats counters are always on, armed tracer or not.
	spec := func(pick func(pipeline.SpecCounters) uint64) func() float64 {
		return func() float64 { return float64(pick(pipeline.GlobalSpecCounters())) }
	}
	reg.CounterFunc("sempe_spec_wrong_path_fetches_total",
		"Fetched micro-ops discarded without committing, across all runs.",
		spec(func(c pipeline.SpecCounters) uint64 { return c.WrongPathFetches }))
	reg.CounterFunc("sempe_spec_squashed_uops_total",
		"Renamed in-flight micro-ops squashed by pipeline flushes.",
		spec(func(c pipeline.SpecCounters) uint64 { return c.SquashedUops }))
	reg.CounterFunc("sempe_spec_flushes_mispredict_total",
		"Pipeline flushes caused by branch or indirect-target mispredictions.",
		spec(func(c pipeline.SpecCounters) uint64 { return c.FlushMispredicts }))
	reg.CounterFunc("sempe_spec_flushes_secure_redirect_total",
		"Front-end redirects from SeMPE eosJMP commit-time jump-backs.",
		spec(func(c pipeline.SpecCounters) uint64 { return c.FlushSecRedirects }))
	reg.CounterFunc("sempe_spec_flushes_overflow_total",
		"Pipeline flushes from nesting-overflow-downgraded secure branches.",
		spec(func(c pipeline.SpecCounters) uint64 { return c.FlushOverflows }))
	reg.CounterFunc("sempe_spec_events_total",
		"SpecEvents delivered to armed speculative-window watches.",
		spec(func(c pipeline.SpecCounters) uint64 { return c.SpecEvents }))
}
