// The store garbage collector. Entries are never overwritten in place — a
// simulator bump changes CodeVersion and therefore every address — so a
// long-lived result directory accumulates entries no current process can
// ever hit. GC walks the directory and prunes them.
package store

import (
	"encoding/json"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// GCReport summarizes one collection pass.
type GCReport struct {
	Scanned        int `json:"scanned"`         // entry files examined
	RemovedVersion int `json:"removed_version"` // embedded code version != current
	RemovedAge     int `json:"removed_age"`     // older than the age cutoff
	RemovedCorrupt int `json:"removed_corrupt"` // undecodable envelope
	Kept           int `json:"kept"`
}

// Removed is the total number of entries deleted.
func (r GCReport) Removed() int { return r.RemovedVersion + r.RemovedAge + r.RemovedCorrupt }

// GC prunes the store directory: every entry whose embedded code version
// differs from the store's current version is removed (it can never be
// addressed again), as is — when maxAge > 0 — every entry whose file is
// older than maxAge, and every file whose envelope does not decode.
// Current-version entries within the age cutoff are untouched. Concurrent
// readers are safe: removal of a live entry is indistinguishable from a
// miss, and writers re-create entries atomically.
func (s *Store) GC(maxAge time.Duration) (GCReport, error) {
	var rep GCReport
	now := time.Now()
	err := filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".json") {
			return err
		}
		rep.Scanned++
		data, err := os.ReadFile(path)
		if err != nil {
			return nil // raced with a concurrent remove; nothing to do
		}
		var e entry
		if json.Unmarshal(data, &e) != nil {
			os.Remove(path)
			rep.RemovedCorrupt++
			return nil
		}
		// The full key is "version|kind|...": everything before the first
		// separator names the simulator version that wrote the entry.
		version, _, ok := strings.Cut(e.Key, "|")
		if !ok || version != s.version {
			os.Remove(path)
			rep.RemovedVersion++
			return nil
		}
		if maxAge > 0 {
			if info, err := d.Info(); err == nil && now.Sub(info.ModTime()) > maxAge {
				os.Remove(path)
				rep.RemovedAge++
				return nil
			}
		}
		rep.Kept++
		return nil
	})
	return rep, err
}
