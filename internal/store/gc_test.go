package store

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestGCPrunesStaleVersions(t *testing.T) {
	dir := t.TempDir()
	old, err := OpenVersion(dir, "sempe-sim-v0")
	if err != nil {
		t.Fatal(err)
	}
	cur, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, kv := range [][2]string{{"a", `1`}, {"b", `2`}, {"c", `3`}} {
		if err := old.Put(kv[0], []byte(kv[1])); err != nil {
			t.Fatal(err)
		}
		if err := cur.Put(kv[0], []byte(kv[1])); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := cur.GC(0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scanned != 6 || rep.RemovedVersion != 3 || rep.Kept != 3 || rep.RemovedAge != 0 {
		t.Fatalf("report = %+v, want 6 scanned, 3 removed by version, 3 kept", rep)
	}
	// Current entries survive and still hit; stale ones are gone.
	for _, k := range []string{"a", "b", "c"} {
		if _, ok := cur.Get(k); !ok {
			t.Errorf("current entry %q lost by GC", k)
		}
		if _, ok := old.Get(k); ok {
			t.Errorf("stale-version entry %q survived GC", k)
		}
	}
	// A second pass finds nothing to do.
	rep, err = cur.GC(0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Removed() != 0 || rep.Kept != 3 {
		t.Fatalf("second pass report = %+v, want nothing removed", rep)
	}
}

func TestGCAgeCutoff(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("fresh", []byte(`1`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("aged", []byte(`2`)); err != nil {
		t.Fatal(err)
	}
	// Backdate the aged entry's file.
	past := time.Now().Add(-48 * time.Hour)
	if err := os.Chtimes(s.path("aged"), past, past); err != nil {
		t.Fatal(err)
	}
	rep, err := s.GC(24 * time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RemovedAge != 1 || rep.Kept != 1 {
		t.Fatalf("report = %+v, want 1 removed by age, 1 kept", rep)
	}
	if _, ok := s.Get("fresh"); !ok {
		t.Error("fresh entry lost")
	}
	if _, ok := s.Get("aged"); ok {
		t.Error("aged entry survived")
	}
	// maxAge 0 disables the age cutoff.
	if err := s.Put("aged2", []byte(`3`)); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(s.path("aged2"), past, past); err != nil {
		t.Fatal(err)
	}
	rep, err = s.GC(0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Removed() != 0 {
		t.Fatalf("report = %+v, want nothing removed with maxAge 0", rep)
	}
}

func TestGCRemovesCorrupt(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("ok", []byte(`1`)); err != nil {
		t.Fatal(err)
	}
	junk := s.path("junk")
	if err := os.MkdirAll(filepath.Dir(junk), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(junk, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := s.GC(0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RemovedCorrupt != 1 || rep.Kept != 1 {
		t.Fatalf("report = %+v, want 1 corrupt removed, 1 kept", rep)
	}
}
