package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/scenario"
	"repro/internal/stats"
)

func open(t *testing.T, dir, version string) *Store {
	t.Helper()
	s, err := OpenVersion(dir, version)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// entryFiles returns every entry file under the store directory.
func entryFiles(t *testing.T, dir string) []string {
	t.Helper()
	var files []string
	err := filepath.Walk(dir, func(p string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && filepath.Ext(p) == ".json" {
			files = append(files, p)
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return files
}

// TestRoundTrip: a put entry comes back bit-identical; a missing key is a
// clean miss; counters track both.
func TestRoundTrip(t *testing.T) {
	s := open(t, t.TempDir(), "v1")
	payload := []byte(`{"cycles": 12345, "w": 4}`)
	if err := s.Put("row|fig10|quick=true|0", payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("row|fig10|quick=true|0")
	if !ok || string(got) != string(payload) {
		t.Fatalf("Get = %q, %t; want payload back", got, ok)
	}
	if _, ok := s.Get("row|fig10|quick=true|1"); ok {
		t.Error("unknown key hit")
	}
	c := s.Counters()
	if c.Hits != 1 || c.Misses != 1 || c.Puts != 1 || c.Corrupt != 0 {
		t.Errorf("counters = %+v", c)
	}
}

// TestVersionIsolation: the same key under a different code version is a
// different entry — a bumped simulator never reads stale results.
func TestVersionIsolation(t *testing.T) {
	dir := t.TempDir()
	old := open(t, dir, "sim-v1")
	if err := old.Put("k", []byte(`1`)); err != nil {
		t.Fatal(err)
	}
	if _, ok := open(t, dir, "sim-v2").Get("k"); ok {
		t.Error("new code version read an old version's entry")
	}
	if _, ok := open(t, dir, "sim-v1").Get("k"); !ok {
		t.Error("same version missed its own entry")
	}
}

// TestCorruptionDetected: flipped payload bytes and truncation are both
// detected on read, reported as misses, counted, and healed by deletion.
func TestCorruptionDetected(t *testing.T) {
	for name, corrupt := range map[string]func([]byte) []byte{
		"bitflip":  func(b []byte) []byte { b[len(b)/2] ^= 0x40; return b },
		"truncate": func(b []byte) []byte { return b[:len(b)/2] },
		"empty":    func([]byte) []byte { return nil },
	} {
		t.Run(name, func(t *testing.T) {
			s := open(t, t.TempDir(), "v1")
			if err := s.Put("k", []byte(`{"cycles": 999}`)); err != nil {
				t.Fatal(err)
			}
			files := entryFiles(t, s.Dir())
			if len(files) != 1 {
				t.Fatalf("entry files = %v", files)
			}
			data, err := os.ReadFile(files[0])
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(files[0], corrupt(data), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, ok := s.Get("k"); ok {
				t.Fatal("corrupted entry served as a hit")
			}
			if c := s.Counters(); c.Corrupt != 1 {
				t.Errorf("corrupt counter = %d, want 1", c.Corrupt)
			}
			if left := entryFiles(t, s.Dir()); len(left) != 0 {
				t.Errorf("corrupted entry not deleted: %v", left)
			}
			// The slot heals: a fresh put and get work again.
			if err := s.Put("k", []byte(`{"cycles": 999}`)); err != nil {
				t.Fatal(err)
			}
			if _, ok := s.Get("k"); !ok {
				t.Error("healed entry missed")
			}
		})
	}
}

// TestRejectsNonJSON: payloads must be valid JSON (the envelope embeds
// them raw).
func TestRejectsNonJSON(t *testing.T) {
	s := open(t, t.TempDir(), "v1")
	if err := s.Put("k", []byte("not json")); err == nil {
		t.Error("non-JSON payload accepted")
	}
}

// TestResultRoundTrip: a scenario result with typed cells survives the
// persistent tier, and its key ignores the worker count (results are
// worker-independent).
func TestResultRoundTrip(t *testing.T) {
	s := open(t, t.TempDir(), "v1")
	tbl := &stats.Table{Title: "t", Header: []string{"w", "x"}}
	tbl.AddRow("4", stats.Ratio(5.25))
	res := &scenario.Result{
		Scenario: "fig10a",
		Spec:     scenario.Spec{Quick: true, Workers: 8, Params: map[string]string{"ws": "4"}},
		Axes:     []scenario.Axis{{Name: "W", Values: []string{"4"}}},
		Points:   1,
		Tables:   []*stats.Table{tbl},
	}
	if err := s.PutResult(res); err != nil {
		t.Fatal(err)
	}
	back, ok := s.GetResult("fig10a", scenario.Spec{Quick: true, Workers: 1, Params: map[string]string{"ws": "4"}})
	if !ok {
		t.Fatal("stored result missed (worker count must not affect the key)")
	}
	if back.Scenario != "fig10a" || back.Points != 1 || !reflect.DeepEqual(back.Tables, res.Tables) {
		t.Errorf("round trip mismatch: %+v", back)
	}
	if _, ok := s.GetResult("fig10a", scenario.Spec{Quick: false, Params: map[string]string{"ws": "4"}}); ok {
		t.Error("different spec hit")
	}
}

// TestRowKeys: row entries are addressed by (sweep, spec, index) — shard
// boundaries never appear, so re-chunked sweeps reuse rows.
func TestRowKeys(t *testing.T) {
	s := open(t, t.TempDir(), "v1")
	specKey := (scenario.Spec{Quick: true}).Key()
	for i := 0; i < 3; i++ {
		raw, _ := json.Marshal(map[string]int{"i": i})
		if err := s.PutRow("fig10", specKey, i, raw); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		raw, ok := s.GetRow("fig10", specKey, i)
		if !ok {
			t.Fatalf("row %d missed", i)
		}
		var m map[string]int
		if json.Unmarshal(raw, &m) != nil || m["i"] != i {
			t.Errorf("row %d = %s", i, raw)
		}
	}
	if _, ok := s.GetRow("fig8", specKey, 0); ok {
		t.Error("row hit under the wrong sweep")
	}
}
