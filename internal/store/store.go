// Package store is the persistent on-disk result store behind sempe-serve
// and the cluster coordinator. Entries are content-addressed: a key names
// what was computed — a whole scenario result or one sweep row — and the
// entry file's name is the SHA-256 of (code version | key), so different
// simulator versions never collide and a directory can be shared by many
// processes. Each entry carries a checksum of its payload; a corrupted or
// truncated entry is detected on read, deleted, and reported as a miss, so
// callers simply recompute.
//
// Writes are atomic (temp file + rename), which makes concurrent writers
// of the same key safe: both write a full entry, one rename wins, and the
// payloads are identical because the key fully determines the computation.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
)

// CodeVersion names the simulator's current output-affecting behavior and
// is folded into every entry's address. Bump it whenever a change moves
// cycle counts, row shapes, or rendered tables: old entries then miss and
// everything recomputes, instead of a warm store silently serving results
// from a previous simulator. The cluster shard protocol carries the same
// string, so a mixed-version fleet fails loudly instead of merging
// incompatible rows.
const CodeVersion = "sempe-sim-v4"

// Counters reports store traffic. Corrupt counts entries that failed
// validation on read (bad checksum, truncation, key mismatch) and were
// deleted.
type Counters struct {
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Puts    int64 `json:"puts"`
	Corrupt int64 `json:"corrupt"`
}

// Store is one on-disk entry directory under one code version. Safe for
// concurrent use.
type Store struct {
	dir     string
	version string

	hits    atomic.Int64
	misses  atomic.Int64
	puts    atomic.Int64
	corrupt atomic.Int64
}

// Open opens (creating if needed) the store rooted at dir under the
// current CodeVersion.
func Open(dir string) (*Store, error) { return OpenVersion(dir, CodeVersion) }

// OpenVersion opens the store under an explicit code version — tests and
// migration tooling; everything else uses Open.
func OpenVersion(dir, version string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{dir: dir, version: version}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Counters snapshots the traffic counters.
func (s *Store) Counters() Counters {
	return Counters{
		Hits:    s.hits.Load(),
		Misses:  s.misses.Load(),
		Puts:    s.puts.Load(),
		Corrupt: s.corrupt.Load(),
	}
}

// entry is the on-disk envelope: the full key it answers for (guards
// against hash collisions and misplaced files) and a checksum of the
// payload (guards against torn or bit-rotted writes). Payload is encoded
// base64 so the stored bytes round-trip exactly — encoding/json would
// otherwise compact and HTML-escape an embedded raw message, and the
// checksum must cover precisely what Get returns.
type entry struct {
	Key     string `json:"key"`
	Sum     string `json:"sha256"`
	Payload []byte `json:"payload"`
}

func (s *Store) fullKey(key string) string { return s.version + "|" + key }

func (s *Store) path(key string) string {
	h := sha256.Sum256([]byte(s.fullKey(key)))
	name := hex.EncodeToString(h[:])
	return filepath.Join(s.dir, name[:2], name+".json")
}

// Get returns the payload stored under key. A missing, corrupted, or
// truncated entry is a miss; corrupted entries are deleted so the slot
// heals on the next Put.
func (s *Store) Get(key string) ([]byte, bool) {
	p := s.path(key)
	data, err := os.ReadFile(p)
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	var e entry
	if json.Unmarshal(data, &e) != nil || e.Key != s.fullKey(key) || checksum(e.Payload) != e.Sum {
		os.Remove(p)
		s.corrupt.Add(1)
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return e.Payload, true
}

// Put stores payload under key atomically. payload must be valid JSON
// (every store client persists JSON-encoded rows or results).
func (s *Store) Put(key string, payload []byte) error {
	if !json.Valid(payload) {
		return fmt.Errorf("store: payload for %q is not valid JSON", key)
	}
	data, err := json.Marshal(entry{Key: s.fullKey(key), Sum: checksum(payload), Payload: payload})
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	p := s.path(key)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), ".put-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	s.puts.Add(1)
	return nil
}

func checksum(b []byte) string {
	h := sha256.Sum256(b)
	return hex.EncodeToString(h[:])
}
