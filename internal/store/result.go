// Typed entry kinds on top of the raw byte store: whole scenario results
// (the sempe-serve cache's persistent tier) and single sweep rows (the
// coordinator's unit of re-use — shard boundaries never appear in keys, so
// a re-chunked sweep still hits every point it has already simulated).
package store

import (
	"encoding/json"
	"strconv"

	"repro/internal/scenario"
)

// ResultKey addresses a completed scenario run. Spec.Key excludes the
// worker count, so results hit across parallelism settings.
func ResultKey(name string, spec scenario.Spec) string {
	return "result|" + name + "|" + spec.Key()
}

// RowKey addresses one grid point of a sweep under a spec key (the value
// of scenario.Spec.Key). It is keyed by sweep ID, not scenario name, so
// scenarios sharing a sweep (fig10a, fig10b, table1) share stored rows.
func RowKey(sweepID, specKey string, index int) string {
	return "row|" + sweepID + "|" + specKey + "|" + strconv.Itoa(index)
}

// GetResult rehydrates a stored scenario result. The result's Rows are
// not persisted (they are the in-memory typed form); everything a client
// of sempe-serve consumes — spec, axes, tables, timing — survives.
func (s *Store) GetResult(name string, spec scenario.Spec) (*scenario.Result, bool) {
	raw, ok := s.Get(ResultKey(name, spec))
	if !ok {
		return nil, false
	}
	var res scenario.Result
	if err := json.Unmarshal(raw, &res); err != nil {
		return nil, false
	}
	return &res, true
}

// PutResult persists a completed scenario result.
func (s *Store) PutResult(res *scenario.Result) error {
	raw, err := json.Marshal(res)
	if err != nil {
		return err
	}
	return s.Put(ResultKey(res.Scenario, res.Spec), raw)
}

// GetRow returns one persisted sweep row's JSON.
func (s *Store) GetRow(sweepID, specKey string, index int) (json.RawMessage, bool) {
	raw, ok := s.Get(RowKey(sweepID, specKey, index))
	return raw, ok
}

// PutRow persists one sweep row's JSON.
func (s *Store) PutRow(sweepID, specKey string, index int, row json.RawMessage) error {
	return s.Put(RowKey(sweepID, specKey, index), row)
}
