// Package jpegsim is the repository's stand-in for the paper's real-world
// benchmark: libjpeg's djpeg decompressing to PPM, GIF, or BMP. The paper
// exploits the fact that djpeg's per-block decoding steps contain
// conditional branches on the (secret) image content — the classic
// end-of-block/skip structure that makes busy image regions take longer to
// decode than flat ones, revealing image detail — while the output-format
// back-ends add differing amounts of content-independent work.
//
// We reproduce that structure rather than the codec: a synthetic compressed
// image is a sequence of 8x8 coefficient blocks; the decoder takes one
// secret-dependent branch per block decoding step (busy block -> full
// dequantize/accumulate pass over all 64 coefficients, flat block -> cheap
// skip), then runs a format-specific amount of public post-processing.
// Input size scales the block count only, which is why the paper's
// overheads are insensitive to image size (Fig. 8); the output format
// changes both the secret-dependent decode depth and the public back-end
// work, which is why overheads order PPM > GIF > BMP. DESIGN.md records
// this substitution.
package jpegsim

import (
	"fmt"

	"repro/internal/lang"
)

// Format is the djpeg output format.
type Format int

// Output formats, ordered as in the paper's figures.
const (
	PPM Format = iota
	GIF
	BMP
)

// Formats returns all output formats in figure order.
func Formats() []Format { return []Format{PPM, GIF, BMP} }

// ParseFormat returns the format named s ("ppm", "gif", "bmp"; case
// matters only in that upper-case figure labels are accepted too) — the
// inverse of Format.String, shared by the scenario specs and cmd tools.
func ParseFormat(s string) (Format, error) {
	switch s {
	case "ppm", "PPM":
		return PPM, nil
	case "gif", "GIF":
		return GIF, nil
	case "bmp", "BMP":
		return BMP, nil
	}
	return 0, fmt.Errorf("jpegsim: unknown format %q (have ppm|gif|bmp)", s)
}

func (f Format) String() string {
	switch f {
	case PPM:
		return "PPM"
	case GIF:
		return "GIF"
	case BMP:
		return "BMP"
	}
	return fmt.Sprintf("format(%d)", int(f))
}

// Params returns the format's work profile: the number of dequantize/
// accumulate steps per coefficient inside the secret decode path (PPM's
// full-quality pipeline performs more secret-dependent decode work) and the
// public post-processing iterations per block (BMP's row padding and
// reordering are heavy but content-independent; GIF's palette mapping sits
// in between; PPM's raw triplet output is cheap). The ratio of secret to
// public work is what produces the paper's PPM > GIF > BMP overhead
// ordering in Fig. 8.
func (f Format) Params() (secretReps, publicOps int) {
	switch f {
	case PPM:
		return 6, 8
	case GIF:
		return 2, 42
	case BMP:
		return 2, 92
	}
	panic("jpegsim: unknown format")
}

// CoeffsPerBlock is the number of coefficients per 8x8 block.
const CoeffsPerBlock = 64

// ImageSpec describes one synthetic compressed image. The coefficient
// contents are the secret.
type ImageSpec struct {
	Format   Format
	Blocks   int    // number of 8x8 blocks
	Sparsity int    // percentage of busy blocks (0..100)
	Seed     uint64 // content generator seed: different seed = different image
}

func (s ImageSpec) String() string {
	return fmt.Sprintf("%v/blocks=%d/busy=%d%%", s.Format, s.Blocks, s.Sparsity)
}

// Size is one position on the input-size axis: the paper's label and the
// scaled block count this repository simulates for it.
type Size struct {
	Label  string
	Blocks int
}

// SizeLabels maps the paper's input-size axis (Fig. 8/9) to block counts.
// The paper decompresses 256k..2048k images; we scale each label to a
// proportional number of blocks so a full sweep simulates quickly. The
// size-insensitivity result depends only on proportionality.
var SizeLabels = []Size{
	{"256k", 16},
	{"512k", 32},
	{"1024k", 64},
	{"2048k", 128},
}

// SizeByLabel resolves one label of the input-size axis.
func SizeByLabel(label string) (Size, bool) {
	for _, s := range SizeLabels {
		if s.Label == label {
			return s, true
		}
	}
	return Size{}, false
}

// Coefficients deterministically generates the image content with an
// xorshift64 generator seeded by Seed. Exactly Sparsity% of the blocks are
// busy (nonzero DC coefficient, dense AC content); which blocks those are
// is a seeded shuffle, so different seeds give different images whose busy
// layout — the property the decode-skip branch leaks — differs, while the
// busy *fraction* (and hence aggregate decode work) is held constant so the
// Fig. 8 overhead comparison is not hostage to sampling noise.
func Coefficients(spec ImageSpec) []uint64 {
	out := make([]uint64, spec.Blocks*CoeffsPerBlock)
	x := spec.Seed*2685821657736338717 + 1442695040888963407
	if x == 0 {
		x = 88172645463325252
	}
	next := func() uint64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return x
	}
	// Choose exactly round(Blocks*Sparsity/100) busy blocks by a seeded
	// Fisher-Yates shuffle of the block indices.
	perm := make([]int, spec.Blocks)
	for i := range perm {
		perm[i] = i
	}
	for i := len(perm) - 1; i > 0; i-- {
		j := int(next() % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	busyCount := (spec.Blocks*spec.Sparsity + 50) / 100
	for _, b := range perm[:busyCount] {
		base := b * CoeffsPerBlock
		out[base] = next()>>32%255 + 1 // nonzero DC marks a busy block
		for i := 1; i < CoeffsPerBlock; i++ {
			out[base+i] = next() >> 32 % 256
		}
	}
	return out
}

// QuantTable returns a fixed public dequantization table (larger divisors
// at higher frequencies, like the standard luminance table).
func QuantTable() []uint64 {
	q := make([]uint64, CoeffsPerBlock)
	for i := range q {
		q[i] = uint64(16 + 2*i)
	}
	return q
}

// BuildProgram emits the decoder for the given image as a lang program.
// The per-block decode branch is marked secret; everything else is public.
// The checksum accumulates decoded pixel state so the output is observable.
func BuildProgram(spec ImageSpec) *lang.Program {
	if spec.Blocks <= 0 {
		panic("jpegsim: no blocks")
	}
	reps, pubOps := spec.Format.Params()

	coeffs := Coefficients(spec)
	vars := []*lang.VarDecl{
		{Name: "iter"}, // reserved: mirrors the harness convention
		{Name: "cksum"},
		{Name: "bi"}, {Name: "ci"}, {Name: "c"}, {Name: "dc"},
		{Name: "acc"}, {Name: "pix"}, {Name: "pj"}, {Name: "qv"},
	}
	arrays := []*lang.ArrayDecl{
		{Name: "coeffs", Len: len(coeffs), Init: coeffs, Secret: true},
		{Name: "quant", Len: CoeffsPerBlock, Init: QuantTable()},
	}

	coeffIdx := lang.B(lang.Add,
		lang.B(lang.Mul, lang.V("bi"), lang.N(CoeffsPerBlock)), lang.V("ci"))

	// Busy path: a full dequantize/accumulate pass over the block, with
	// `reps` decode steps per coefficient.
	accStep := func(r int) lang.Stmt {
		return lang.Set("acc",
			lang.B(lang.And,
				lang.B(lang.Add, lang.V("acc"),
					lang.B(lang.Shr, lang.B(lang.Mul, lang.V("c"), lang.V("qv")), lang.N(int64(r+1)))),
				lang.N(0xFFFFFF)))
	}
	decodeBody := []lang.Stmt{
		lang.Set("c", lang.At("coeffs", coeffIdx)),
		lang.Set("qv", lang.At("quant", lang.V("ci"))),
	}
	for r := 0; r < reps; r++ {
		decodeBody = append(decodeBody, accStep(r))
	}
	decodeBody = append(decodeBody,
		lang.Set("ci", lang.B(lang.Add, lang.V("ci"), lang.N(1))))
	busy := []lang.Stmt{
		lang.Set("ci", lang.N(0)),
		lang.Loop(lang.B(lang.Lt, lang.V("ci"), lang.N(CoeffsPerBlock)), decodeBody),
	}

	// Flat path: the end-of-block skip — a short fixed pass.
	flat := []lang.Stmt{
		lang.Set("ci", lang.N(0)),
		lang.Loop(lang.B(lang.Lt, lang.V("ci"), lang.N(8)), []lang.Stmt{
			lang.Set("acc", lang.B(lang.And, lang.B(lang.Add, lang.V("acc"), lang.N(1)), lang.N(0xFFFFFF))),
			lang.Set("ci", lang.B(lang.Add, lang.V("ci"), lang.N(1))),
		}),
	}

	publicLoop := lang.Loop(lang.B(lang.Lt, lang.V("pj"), lang.N(int64(pubOps))), []lang.Stmt{
		lang.Set("pix", lang.B(lang.And,
			lang.B(lang.Add, lang.B(lang.Mul, lang.V("pix"), lang.N(31)), lang.V("acc")),
			lang.N(0xFFFFFF))),
		lang.Set("pj", lang.B(lang.Add, lang.V("pj"), lang.N(1))),
	})

	blockLoop := lang.Loop(lang.B(lang.Lt, lang.V("bi"), lang.N(int64(spec.Blocks))), []lang.Stmt{
		// The DC coefficient decides the block class: the secret branch.
		lang.Set("dc", lang.At("coeffs",
			lang.B(lang.Mul, lang.V("bi"), lang.N(CoeffsPerBlock)))),
		lang.SecretIf(lang.B(lang.Ne, lang.V("dc"), lang.N(0)), busy, flat),
		lang.Set("pj", lang.N(0)),
		publicLoop,
		lang.Set("cksum", lang.B(lang.And,
			lang.B(lang.Add, lang.V("cksum"), lang.B(lang.Add, lang.V("pix"), lang.V("acc"))),
			lang.N(0x7FFFFFFF))),
		lang.Set("bi", lang.B(lang.Add, lang.V("bi"), lang.N(1))),
	})

	return &lang.Program{
		Name:   fmt.Sprintf("djpeg_%s", spec.Format),
		Vars:   vars,
		Arrays: arrays,
		Body:   []lang.Stmt{blockLoop},
	}
}

// ReferenceChecksum decodes the image with a direct Go model of the same
// algorithm, for validating the compiled program's result.
func ReferenceChecksum(spec ImageSpec) uint64 {
	reps, pubOps := spec.Format.Params()
	coeffs := Coefficients(spec)
	quant := QuantTable()
	var cksum, acc, pix uint64
	for b := 0; b < spec.Blocks; b++ {
		base := b * CoeffsPerBlock
		if coeffs[base] != 0 {
			for ci := 0; ci < CoeffsPerBlock; ci++ {
				c := coeffs[base+ci]
				qv := quant[ci]
				for r := 0; r < reps; r++ {
					acc = (acc + (c*qv)>>(uint(r)+1)) & 0xFFFFFF
				}
			}
		} else {
			for ci := 0; ci < 8; ci++ {
				acc = (acc + 1) & 0xFFFFFF
			}
		}
		for j := 0; j < pubOps; j++ {
			pix = (pix*31 + acc) & 0xFFFFFF
		}
		cksum = (cksum + pix + acc) & 0x7FFFFFFF
	}
	return cksum
}
