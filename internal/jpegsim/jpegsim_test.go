package jpegsim

import (
	"testing"

	"repro/internal/compile"
	"repro/internal/emu"
	"repro/internal/lang"
)

func runDecoder(t *testing.T, spec ImageSpec, mode compile.Mode, secure bool) uint64 {
	t.Helper()
	out, err := compile.Compile(BuildProgram(spec), mode)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	m := emu.Legacy
	if secure {
		m = emu.SeMPE
	}
	mach := emu.New(m, out.Prog)
	mach.MaxInsts = 100_000_000
	if err := mach.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	addr, err := out.ResultAddr("cksum")
	if err != nil {
		t.Fatal(err)
	}
	return mach.Mem.Read64(addr)
}

func TestDecoderMatchesReference(t *testing.T) {
	for _, f := range Formats() {
		spec := ImageSpec{Format: f, Blocks: 4, Sparsity: 30, Seed: 7}
		want := ReferenceChecksum(spec)
		if got := runDecoder(t, spec, compile.Plain, false); got != want {
			t.Errorf("%v plain cksum = %d, want %d", f, got, want)
		}
		if got := runDecoder(t, spec, compile.SeMPE, true); got != want {
			t.Errorf("%v SeMPE cksum = %d, want %d", f, got, want)
		}
		// Backward compatibility: SeMPE binary on a legacy machine.
		out, err := compile.Compile(BuildProgram(spec), compile.SeMPE)
		if err != nil {
			t.Fatal(err)
		}
		mach := emu.New(emu.Legacy, out.Prog)
		if err := mach.Run(); err != nil {
			t.Fatal(err)
		}
		addr, _ := out.ResultAddr("cksum")
		if got := mach.Mem.Read64(addr); got != want {
			t.Errorf("%v SeMPE-on-legacy cksum = %d, want %d", f, got, want)
		}
	}
}

func TestCoefficientsDeterministicAndSparse(t *testing.T) {
	spec := ImageSpec{Format: PPM, Blocks: 64, Sparsity: 25, Seed: 3}
	a := Coefficients(spec)
	b := Coefficients(spec)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("coefficients not deterministic at %d", i)
		}
	}
	busy := 0
	for blk := 0; blk < spec.Blocks; blk++ {
		if a[blk*CoeffsPerBlock] != 0 {
			busy++
		}
	}
	frac := float64(busy) / float64(spec.Blocks)
	if frac < 0.12 || frac > 0.40 {
		t.Errorf("busy-block fraction %.2f, want ~0.25", frac)
	}
	// Different seeds must give different images.
	c := Coefficients(ImageSpec{Format: PPM, Blocks: 64, Sparsity: 25, Seed: 4})
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical images")
	}
}

func TestDecoderTaintClean(t *testing.T) {
	for _, f := range Formats() {
		spec := ImageSpec{Format: f, Blocks: 2, Sparsity: 50, Seed: 1}
		if rep := lang.AnalyzeTaint(BuildProgram(spec)); !rep.Clean() {
			t.Errorf("%v decoder tainted: %+v", f, rep)
		}
	}
}

func TestSecretBranchPerCoefficient(t *testing.T) {
	spec := ImageSpec{Format: GIF, Blocks: 3, Sparsity: 50, Seed: 1}
	out, err := compile.Compile(BuildProgram(spec), compile.SeMPE)
	if err != nil {
		t.Fatal(err)
	}
	sjmp, eos := out.Prog.CountSecure()
	if sjmp != 1 || eos != 1 {
		t.Errorf("static secure counts sjmp=%d eos=%d, want 1,1", sjmp, eos)
	}
	// Dynamically the branch runs once per block decoding step.
	mach := emu.New(emu.SeMPE, out.Prog)
	if err := mach.Run(); err != nil {
		t.Fatal(err)
	}
	want := uint64(spec.Blocks)
	if mach.SJmps != want {
		t.Errorf("dynamic sJMPs = %d, want %d", mach.SJmps, want)
	}
	if mach.EOSJmps != 2*want {
		t.Errorf("dynamic eosJMPs = %d, want %d", mach.EOSJmps, 2*want)
	}
}
