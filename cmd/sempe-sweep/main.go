// Command sempe-sweep runs one scenario through the cluster coordinator:
// it shards the expanded grid across a fleet of sempe-serve -worker
// processes, merges the rows back in deterministic grid order, and prints
// the same tables a local sempe-bench run would — byte-identical in
// -format json, which is diffed in CI against the serial run.
//
//	sempe-sweep -scenario fig10a -quick \
//	    -workers http://host-a:8080,http://host-b:8080 -store results/
//
// With -workers empty the sweep computes in-process, still reading and
// writing the store — useful to pre-warm or verify a result directory
// without a fleet. Points already present in -store are never
// re-simulated; the provenance report on stderr says how many were served
// from disk and how many shards were dispatched (and retried, when a
// worker died mid-sweep).
//
// Maintenance: `sempe-sweep -store results/ -gc [-gc-age 720h]` prunes
// entries written by other simulator versions (and, with -gc-age, entries
// older than the cutoff) and exits.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	_ "repro/internal/experiments" // registers the paper's scenarios
	"repro/internal/scenario"
	"repro/internal/store"
)

func main() {
	params := scenario.ParamFlag{}
	var (
		name      = flag.String("scenario", "", "scenario to sweep (see sempe-bench -list)")
		workersF  = flag.String("workers", "", "comma-separated worker base URLs (empty = compute in-process)")
		storeDir  = flag.String("store", "", "persistent result-store directory (points found there are not re-simulated)")
		shardSize = flag.Int("shard", 8, "grid points per dispatched shard")
		attempts  = flag.Int("attempts", 3, "dispatch attempts per shard before the sweep fails")
		timeout   = flag.Duration("timeout", 10*time.Minute, "per-shard request timeout")
		quick     = flag.Bool("quick", false, "reduced sweep (seconds, not minutes)")
		parallel  = flag.Int("parallel", runtime.NumCPU(), "per-worker point parallelism")
		format    = flag.String("format", "json", "output encoding: text|json|csv")
		gc        = flag.Bool("gc", false, "garbage-collect the -store directory (stale code versions; see -gc-age) and exit")
		gcAge     = flag.Duration("gc-age", 0, "with -gc, also prune entries older than this (0 = version-based pruning only)")
	)
	flag.Var(params, "param", "scenario parameter key=value (repeatable)")
	flag.Parse()

	if *gc {
		if *storeDir == "" {
			fatal("-gc requires -store")
		}
		st, err := store.Open(*storeDir)
		if err != nil {
			fatal("%v", err)
		}
		rep, err := st.GC(*gcAge)
		if err != nil {
			fatal("gc: %v", err)
		}
		fmt.Fprintf(os.Stderr, "gc %s: scanned %d, removed %d (%d stale-version, %d aged, %d corrupt), kept %d\n",
			*storeDir, rep.Scanned, rep.Removed(), rep.RemovedVersion, rep.RemovedAge, rep.RemovedCorrupt, rep.Kept)
		return
	}

	if *name == "" {
		fatal("-scenario is required; registered: %s", strings.Join(scenario.Names(), ", "))
	}
	sc, ok := scenario.Lookup(*name)
	if !ok {
		fatal("unknown scenario %q; registered: %s", *name, strings.Join(scenario.Names(), ", "))
	}
	switch *format {
	case "text", "json", "csv":
	default:
		fatal("unknown format %q (want text, json, or csv)", *format)
	}

	opts := cluster.Options{
		ShardSize:   *shardSize,
		MaxAttempts: *attempts,
		Timeout:     *timeout,
	}
	workers, err := cluster.ParseWorkers(*workersF)
	if err != nil {
		fatal("%v", err)
	}
	opts.Workers = workers
	if *storeDir != "" {
		st, err := store.Open(*storeDir)
		if err != nil {
			fatal("%v", err)
		}
		opts.Store = st
	}

	spec := scenario.Spec{Quick: *quick, Workers: *parallel, Params: params}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	where := "in-process"
	if n := len(opts.Workers); n > 0 {
		where = fmt.Sprintf("%d workers", n)
	}
	fmt.Fprintf(os.Stderr, "sweeping %s across %s (shard size %d)...\n", sc.Name, where, *shardSize)
	start := time.Now()
	res, rep, err := cluster.New(opts).Run(ctx, sc, spec)
	if err != nil {
		fatal("%v", err)
	}

	// Stable output: two sweeps of the same spec — or a sweep and a serial
	// `sempe-bench -stable` run — encode byte-identically.
	stable := res.Stable()
	switch *format {
	case "text":
		for _, t := range stable.Tables {
			t.Render(os.Stdout)
		}
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(stable); err != nil {
			fatal("json: %v", err)
		}
	case "csv":
		for _, t := range stable.Tables {
			if err := t.WriteCSV(os.Stdout); err != nil {
				fatal("csv: %v", err)
			}
			fmt.Println()
		}
	}

	fmt.Fprintf(os.Stderr, "done in %v: %d points, %d from store, %d shards in %d dispatches, %d retries\n",
		time.Since(start).Round(time.Millisecond),
		rep.Points, rep.StorePoints, rep.Shards, rep.Dispatched, rep.Retries)
	for _, w := range rep.DroppedWorkers {
		fmt.Fprintf(os.Stderr, "dropped worker: %s\n", w)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sempe-sweep: "+format+"\n", args...)
	os.Exit(1)
}
