// Command sempe-sweep runs one scenario through the cluster coordinator:
// it shards the expanded grid across a fleet of sempe-serve -worker
// processes, merges the rows back in deterministic grid order, and prints
// the same tables a local sempe-bench run would — byte-identical in
// -format json, which is diffed in CI against the serial run.
//
//	sempe-sweep -scenario fig10a -quick \
//	    -workers http://host-a:8080,http://host-b:8080 -store results/
//
// With -workers empty the sweep computes in-process, still reading and
// writing the store — useful to pre-warm or verify a result directory
// without a fleet. Points already present in -store are never
// re-simulated; the provenance report on stderr says how many were served
// from disk and how many shards were dispatched (and retried, when a
// worker died mid-sweep).
//
// Observability: -verbose prints per-shard dispatch timings and per-worker
// throughput (points/s) after the sweep; -events FILE writes the full span
// journal (probe, dispatch, retry, merge events with microsecond
// timestamps) as JSON for offline analysis. Worker drops and shard retries
// are logged via log/slog at -log-level.
//
// Maintenance: `sempe-sweep -store results/ -gc [-gc-age 720h]` prunes
// entries written by other simulator versions (and, with -gc-age, entries
// older than the cutoff) and exits.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	_ "repro/internal/experiments" // registers the paper's scenarios
	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/store"
)

func main() {
	params := scenario.ParamFlag{}
	var (
		name      = flag.String("scenario", "", "scenario to sweep (see sempe-bench -list)")
		workersF  = flag.String("workers", "", "comma-separated worker base URLs (empty = compute in-process)")
		storeDir  = flag.String("store", "", "persistent result-store directory (points found there are not re-simulated)")
		shardSize = flag.Int("shard", 8, "grid points per dispatched shard")
		attempts  = flag.Int("attempts", 3, "dispatch attempts per shard before the sweep fails")
		timeout   = flag.Duration("timeout", 10*time.Minute, "per-shard request timeout")
		quick     = flag.Bool("quick", false, "reduced sweep (seconds, not minutes)")
		parallel  = flag.Int("parallel", runtime.NumCPU(), "per-worker point parallelism")
		format    = flag.String("format", "json", "output encoding: text|json|csv")
		gc        = flag.Bool("gc", false, "garbage-collect the -store directory (stale code versions; see -gc-age) and exit")
		gcAge     = flag.Duration("gc-age", 0, "with -gc, also prune entries older than this (0 = version-based pruning only)")
		logLevel  = flag.String("log-level", "warn", "log verbosity: debug|info|warn|error")
		verbose   = flag.Bool("verbose", false, "print per-shard timings and per-worker throughput after the sweep")
		eventsF   = flag.String("events", "", "write the sweep's span journal (JSON events) to this file")
	)
	flag.Var(params, "param", "scenario parameter key=value (repeatable)")
	flag.Parse()

	lvl := slog.LevelWarn
	switch *logLevel {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		fatal("unknown -log-level %q (want debug, info, warn, or error)", *logLevel)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl}))

	if *gc {
		if *storeDir == "" {
			fatal("-gc requires -store")
		}
		st, err := store.Open(*storeDir)
		if err != nil {
			fatal("%v", err)
		}
		rep, err := st.GC(*gcAge)
		if err != nil {
			fatal("gc: %v", err)
		}
		fmt.Fprintf(os.Stderr, "gc %s: scanned %d, removed %d (%d stale-version, %d aged, %d corrupt), kept %d\n",
			*storeDir, rep.Scanned, rep.Removed(), rep.RemovedVersion, rep.RemovedAge, rep.RemovedCorrupt, rep.Kept)
		return
	}

	if *name == "" {
		fatal("-scenario is required; registered: %s", strings.Join(scenario.Names(), ", "))
	}
	sc, ok := scenario.Lookup(*name)
	if !ok {
		fatal("unknown scenario %q; registered: %s", *name, strings.Join(scenario.Names(), ", "))
	}
	switch *format {
	case "text", "json", "csv":
	default:
		fatal("unknown format %q (want text, json, or csv)", *format)
	}

	opts := cluster.Options{
		ShardSize:   *shardSize,
		MaxAttempts: *attempts,
		Timeout:     *timeout,
		Journal:     obs.NewJournal(),
		Logger:      logger,
	}
	workers, err := cluster.ParseWorkers(*workersF)
	if err != nil {
		fatal("%v", err)
	}
	opts.Workers = workers
	if *storeDir != "" {
		st, err := store.Open(*storeDir)
		if err != nil {
			fatal("%v", err)
		}
		opts.Store = st
	}

	spec := scenario.Spec{Quick: *quick, Workers: *parallel, Params: params}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	where := "in-process"
	if n := len(opts.Workers); n > 0 {
		where = fmt.Sprintf("%d workers", n)
	}
	fmt.Fprintf(os.Stderr, "sweeping %s across %s (shard size %d)...\n", sc.Name, where, *shardSize)
	start := time.Now()
	res, rep, err := cluster.New(opts).Run(ctx, sc, spec)
	if err != nil {
		fatal("%v", err)
	}

	// Stable output: two sweeps of the same spec — or a sweep and a serial
	// `sempe-bench -stable` run — encode byte-identically.
	stable := res.Stable()
	switch *format {
	case "text":
		for _, t := range stable.Tables {
			t.Render(os.Stdout)
		}
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(stable); err != nil {
			fatal("json: %v", err)
		}
	case "csv":
		for _, t := range stable.Tables {
			if err := t.WriteCSV(os.Stdout); err != nil {
				fatal("csv: %v", err)
			}
			fmt.Println()
		}
	}

	fmt.Fprintf(os.Stderr, "done in %v: %d points, %d from store, %d shards in %d dispatches, %d retries\n",
		time.Since(start).Round(time.Millisecond),
		rep.Points, rep.StorePoints, rep.Shards, rep.Dispatched, rep.Retries)
	for _, w := range rep.DroppedWorkers {
		fmt.Fprintf(os.Stderr, "dropped worker: %s\n", w)
	}
	if *verbose {
		for _, ss := range rep.ShardStats {
			fmt.Fprintf(os.Stderr, "shard %d [%s]: %d points on %s, %d attempt(s), %.1fms\n",
				ss.Shard, ss.Indices, ss.Points, ss.Worker, ss.Attempts, ss.Millis)
		}
		for _, ws := range rep.WorkerStats {
			state := "healthy"
			if ws.Dropped {
				state = "dropped"
			} else if !ws.Healthy {
				state = "unreachable"
			}
			fmt.Fprintf(os.Stderr, "worker %s: %s, %d shards, %d points, %d failures, %.1fms busy, %.0f points/s\n",
				ws.URL, state, ws.Shards, ws.Points, ws.Failures, ws.BusyMillis, ws.PointsPerSec)
		}
	}
	if *eventsF != "" {
		f, err := os.Create(*eventsF)
		if err != nil {
			fatal("events: %v", err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep.Events); err != nil {
			fatal("events: %v", err)
		}
		if err := f.Close(); err != nil {
			fatal("events: %v", err)
		}
		fmt.Fprintf(os.Stderr, "journal: %d events written to %s\n", len(rep.Events), *eventsF)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sempe-sweep: "+format+"\n", args...)
	os.Exit(1)
}
