// Command sempe-bench regenerates the paper's tables and figures:
//
//	sempe-bench -exp table2            # baseline configuration echo
//	sempe-bench -exp fig8              # djpeg overhead grid
//	sempe-bench -exp fig9              # cache miss rates
//	sempe-bench -exp fig10a -quick     # microbenchmark slowdowns (subset)
//	sempe-bench -exp fig10b
//	sempe-bench -exp table1
//	sempe-bench -exp all
//
// Each grid point of a sweep simulates on an independent core, so the sweeps
// fan out across -parallel worker goroutines (default: all CPUs) with
// bit-identical results to a serial run. -cpuprofile writes a pprof profile
// of the whole run for simulator performance work.
//
// Absolute cycle counts come from this repository's simulator, not the
// authors' gem5 testbed; EXPERIMENTS.md compares the shapes.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/experiments"
	"repro/internal/workloads"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "table1|table2|fig8|fig9|fig10a|fig10b|all")
		quick      = flag.Bool("quick", false, "reduced sweep (W in {1,4,10}, fewer iterations)")
		parallel   = flag.Int("parallel", runtime.NumCPU(), "worker goroutines for the sweeps (1 = serial)")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	)
	flag.Parse()
	start := time.Now()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal("cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal("cpuprofile: %v", err)
		}
		// fatal() exits via os.Exit, which skips defers; route the profile
		// flush through stopProfile so a failed sweep still writes a
		// parseable profile of everything that ran.
		stopProfile = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
		defer stopProfile()
	}

	fig10Spec := experiments.DefaultFig10Spec()
	fig10Spec.Workers = *parallel
	if *quick {
		fig10Spec.Ws = []int{1, 4, 10}
		fig10Spec.Iters = 4
	}

	needFig10 := *exp == "fig10a" || *exp == "fig10b" || *exp == "table1" || *exp == "all"
	needFig8 := *exp == "fig8" || *exp == "fig9" || *exp == "all"

	var fig10Rows []experiments.Fig10Row
	if needFig10 {
		var err error
		fmt.Fprintf(os.Stderr, "running Fig. 10 sweep (%d workloads x %d depths x 3 variants, %d workers)...\n",
			len(fig10Spec.Kinds), len(fig10Spec.Ws), *parallel)
		fig10Rows, err = experiments.Fig10(fig10Spec)
		if err != nil {
			fatal("fig10: %v", err)
		}
	}
	var fig8Rows []experiments.Fig8Row
	if needFig8 {
		var err error
		fig8Spec := experiments.DefaultFig8Spec()
		fig8Spec.Workers = *parallel
		fmt.Fprintf(os.Stderr, "running Fig. 8/9 djpeg grid (%d workers)...\n", *parallel)
		fig8Rows, err = experiments.Fig8(fig8Spec)
		if err != nil {
			fatal("fig8: %v", err)
		}
	}

	switch *exp {
	case "table2":
		experiments.Table2().Render(os.Stdout)
	case "table1":
		experiments.Table1(fig10Rows).Render(os.Stdout)
	case "fig8":
		experiments.RenderFig8(fig8Rows).Render(os.Stdout)
	case "fig9":
		experiments.RenderFig9(fig8Rows).Render(os.Stdout)
	case "fig10a":
		experiments.RenderFig10a(fig10Rows).Render(os.Stdout)
	case "fig10b":
		experiments.RenderFig10b(fig10Rows).Render(os.Stdout)
	case "all":
		experiments.Table2().Render(os.Stdout)
		experiments.RenderFig8(fig8Rows).Render(os.Stdout)
		experiments.RenderFig9(fig8Rows).Render(os.Stdout)
		experiments.RenderFig10a(fig10Rows).Render(os.Stdout)
		experiments.RenderFig10b(fig10Rows).Render(os.Stdout)
		experiments.Table1(fig10Rows).Render(os.Stdout)
	default:
		fatal("unknown experiment %q", *exp)
	}
	fmt.Fprintf(os.Stderr, "done in %v (workload kinds: %v)\n", time.Since(start), workloads.All())
}

// stopProfile flushes the CPU profile, if one is active. Replaced by main
// when -cpuprofile is set.
var stopProfile = func() {}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sempe-bench: "+format+"\n", args...)
	stopProfile()
	os.Exit(1)
}
