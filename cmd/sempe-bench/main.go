// Command sempe-bench regenerates the paper's tables and figures — and any
// other registered evaluation scenario — through the scenario registry:
//
//	sempe-bench -list                   # registered scenarios and their axes
//	sempe-bench -exp table2             # baseline configuration echo
//	sempe-bench -exp fig8               # djpeg overhead grid
//	sempe-bench -exp fig9               # cache miss rates
//	sempe-bench -exp fig10a -quick      # microbenchmark slowdowns (subset)
//	sempe-bench -exp fig10b,table1      # several scenarios in one run
//	sempe-bench -exp leakmatrix         # side-channel distinguisher matrix
//	sempe-bench -exp all
//
// Scenarios are parameterized with repeated -param flags (axes and knobs
// are scenario-specific; -list names them):
//
//	sempe-bench -exp fig10a -param kinds=fibonacci,queens -param ws=1,4
//
// -format selects the output encoding: text (the paper-shaped tables),
// json (structured results, typed cells), or csv. Each grid point of a
// sweep simulates on an independent core, so the sweeps fan out across
// -parallel worker goroutines (default: all CPUs) with bit-identical
// results to a serial run; scenarios sharing a sweep (fig10a/fig10b/table1,
// fig8/fig9) simulate their grid once per invocation. -cpuprofile writes a
// pprof profile of the whole run for simulator performance work.
//
// Absolute cycle counts come from this repository's simulator, not the
// authors' gem5 testbed; EXPERIMENTS.md compares the shapes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	_ "repro/internal/experiments" // registers the paper's scenarios
	"repro/internal/scenario"
)

func main() {
	params := scenario.ParamFlag{}
	var (
		exp        = flag.String("exp", "all", "scenario name(s), comma separated, or \"all\" (see -list)")
		list       = flag.Bool("list", false, "list registered scenarios and exit")
		format     = flag.String("format", "text", "output encoding: text|json|csv")
		quick      = flag.Bool("quick", false, "reduced sweeps (seconds, not minutes)")
		stable     = flag.Bool("stable", false, "zero timing and worker-count fields so identical specs diff byte-for-byte (json)")
		parallel   = flag.Int("parallel", runtime.NumCPU(), "worker goroutines for the sweeps (1 = serial)")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	)
	flag.Var(params, "param", "scenario parameter key=value (repeatable)")
	flag.Parse()
	start := time.Now()

	if *list {
		listScenarios()
		return
	}

	var scenarios []*scenario.Scenario
	if *exp == "all" {
		scenarios = scenario.Scenarios()
	} else {
		for _, name := range strings.Split(*exp, ",") {
			sc, ok := scenario.Lookup(strings.TrimSpace(name))
			if !ok {
				fatal("unknown experiment %q; registered scenarios: %s",
					name, strings.Join(scenario.Names(), ", "))
			}
			scenarios = append(scenarios, sc)
		}
	}
	switch *format {
	case "text", "json", "csv":
	default:
		fatal("unknown format %q (want text, json, or csv)", *format)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal("cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal("cpuprofile: %v", err)
		}
		// fatal() exits via os.Exit, which skips defers; route the profile
		// flush through stopProfile so a failed sweep still writes a
		// parseable profile of everything that ran.
		stopProfile = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
		defer stopProfile()
	}

	spec := scenario.Spec{Quick: *quick, Workers: *parallel, Params: params}
	// One row cache per invocation: scenarios sharing a sweep (fig10a,
	// fig10b, table1) simulate their grid once.
	rows := scenario.NewRowCache()
	var results []*scenario.Result
	for _, sc := range scenarios {
		fmt.Fprintf(os.Stderr, "running %s (%d workers)...\n", sc.Name, *parallel)
		res, err := scenario.Run(sc, spec, scenario.RunOptions{Rows: rows})
		if err != nil {
			fatal("%v", err)
		}
		if *stable {
			res = res.Stable()
		}
		results = append(results, res)
	}

	switch *format {
	case "text":
		for _, res := range results {
			for _, t := range res.Tables {
				t.Render(os.Stdout)
			}
		}
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if len(results) == 1 {
			err := enc.Encode(results[0])
			if err != nil {
				fatal("json: %v", err)
			}
		} else if err := enc.Encode(results); err != nil {
			fatal("json: %v", err)
		}
	case "csv":
		for _, res := range results {
			for _, t := range res.Tables {
				if err := t.WriteCSV(os.Stdout); err != nil {
					fatal("csv: %v", err)
				}
				fmt.Println()
			}
		}
	}
	fmt.Fprintf(os.Stderr, "done in %v\n", time.Since(start))
}

func listScenarios() {
	for _, sc := range scenario.Scenarios() {
		fmt.Printf("%-12s %s\n", sc.Name, sc.Description)
		if axes, err := sc.Sweep.Axes(scenario.Spec{}); err == nil && len(axes) > 0 {
			for _, a := range axes {
				fmt.Printf("             axis %s: %s\n", a.Name, strings.Join(a.Values, " "))
			}
		}
	}
}

// stopProfile flushes the CPU profile, if one is active. Replaced by main
// when -cpuprofile is set.
var stopProfile = func() {}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sempe-bench: "+format+"\n", args...)
	stopProfile()
	os.Exit(1)
}
