// Command sempe-bench regenerates the paper's tables and figures:
//
//	sempe-bench -exp table2            # baseline configuration echo
//	sempe-bench -exp fig8              # djpeg overhead grid
//	sempe-bench -exp fig9              # cache miss rates
//	sempe-bench -exp fig10a -quick     # microbenchmark slowdowns (subset)
//	sempe-bench -exp fig10b
//	sempe-bench -exp table1
//	sempe-bench -exp all
//
// Absolute cycle counts come from this repository's simulator, not the
// authors' gem5 testbed; EXPERIMENTS.md compares the shapes.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/workloads"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "table1|table2|fig8|fig9|fig10a|fig10b|all")
		quick = flag.Bool("quick", false, "reduced sweep (W in {1,4,10}, fewer iterations)")
	)
	flag.Parse()
	start := time.Now()

	fig10Spec := experiments.DefaultFig10Spec()
	if *quick {
		fig10Spec.Ws = []int{1, 4, 10}
		fig10Spec.Iters = 4
	}

	needFig10 := *exp == "fig10a" || *exp == "fig10b" || *exp == "table1" || *exp == "all"
	needFig8 := *exp == "fig8" || *exp == "fig9" || *exp == "all"

	var fig10Rows []experiments.Fig10Row
	if needFig10 {
		var err error
		fmt.Fprintf(os.Stderr, "running Fig. 10 sweep (%d workloads x %d depths x 3 variants)...\n",
			len(fig10Spec.Kinds), len(fig10Spec.Ws))
		fig10Rows, err = experiments.Fig10(fig10Spec)
		if err != nil {
			fatal("fig10: %v", err)
		}
	}
	var fig8Rows []experiments.Fig8Row
	if needFig8 {
		var err error
		fmt.Fprintf(os.Stderr, "running Fig. 8/9 djpeg grid...\n")
		fig8Rows, err = experiments.Fig8(experiments.DefaultFig8Spec())
		if err != nil {
			fatal("fig8: %v", err)
		}
	}

	switch *exp {
	case "table2":
		experiments.Table2().Render(os.Stdout)
	case "table1":
		experiments.Table1(fig10Rows).Render(os.Stdout)
	case "fig8":
		experiments.RenderFig8(fig8Rows).Render(os.Stdout)
	case "fig9":
		experiments.RenderFig9(fig8Rows).Render(os.Stdout)
	case "fig10a":
		experiments.RenderFig10a(fig10Rows).Render(os.Stdout)
	case "fig10b":
		experiments.RenderFig10b(fig10Rows).Render(os.Stdout)
	case "all":
		experiments.Table2().Render(os.Stdout)
		experiments.RenderFig8(fig8Rows).Render(os.Stdout)
		experiments.RenderFig9(fig8Rows).Render(os.Stdout)
		experiments.RenderFig10a(fig10Rows).Render(os.Stdout)
		experiments.RenderFig10b(fig10Rows).Render(os.Stdout)
		experiments.Table1(fig10Rows).Render(os.Stdout)
	default:
		fatal("unknown experiment %q", *exp)
	}
	fmt.Fprintf(os.Stderr, "done in %v (workload kinds: %v)\n", time.Since(start), workloads.All())
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sempe-bench: "+format+"\n", args...)
	os.Exit(1)
}
